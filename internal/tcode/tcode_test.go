package tcode

import (
	"math/rand"
	"testing"

	"clear/internal/isa"
)

// randWords yields a deterministic mix of structured and raw random
// instruction words so every opcode, format, and the invalid space all get
// exercised.
func randWords(n int) []uint32 {
	rng := rand.New(rand.NewSource(0x7C0DE))
	words := make([]uint32, n)
	for i := range words {
		switch i % 3 {
		case 0: // fully random — mostly invalid opcodes
			words[i] = rng.Uint32()
		case 1: // valid opcode, random fields
			words[i] = uint32(rng.Intn(64))<<26 | rng.Uint32()&((1<<26)-1)
		default: // valid opcode, small fields (typical code)
			words[i] = uint32(rng.Intn(64))<<26 | uint32(rng.Intn(1<<16))
		}
	}
	return words
}

// TestCompileMatchesDecode pins every translated fact to the decode it
// summarizes: the embedded isa.Inst and each predicate must agree with
// isa.Decode over a large word sample.
func TestCompileMatchesDecode(t *testing.T) {
	for _, w := range randWords(20000) {
		d := Compile(w)
		in := isa.Decode(w)
		if d.In != in {
			t.Fatalf("word %#08x: Compile embedded %+v, isa.Decode gives %+v", w, d.In, in)
		}
		if d.Valid != in.Op.Valid() || d.WritesReg != in.Op.WritesReg() ||
			d.IsControl != in.Op.IsControl() || d.IsBranch != in.Op.IsBranch() ||
			d.IsJump != in.Op.IsJump() {
			t.Fatalf("word %#08x (%v): predicate mismatch vs opcode methods", w, in.Op)
		}
		wantRs1, wantRs2 := false, false
		switch in.Op.Fmt() {
		case isa.FmtR, isa.FmtStore, isa.FmtBranch:
			wantRs1, wantRs2 = true, true
		case isa.FmtI, isa.FmtLoad, isa.FmtJALR, isa.FmtOut:
			wantRs1 = true
		}
		if d.NeedsRs1 != wantRs1 || d.NeedsRs2 != wantRs2 {
			t.Fatalf("word %#08x (%v, fmt %v): NeedsRs1/2 = %v/%v, want %v/%v",
				w, in.Op, in.Op.Fmt(), d.NeedsRs1, d.NeedsRs2, wantRs1, wantRs2)
		}
		if d.Exec == nil || d.ALU == nil {
			t.Fatalf("word %#08x: nil execute closure", w)
		}
		if (d.Br != nil) != d.IsControl {
			t.Fatalf("word %#08x (%v): Br nil-ness %v disagrees with IsControl %v",
				w, in.Op, d.Br != nil, d.IsControl)
		}
	}
}

// TestTranslateAtPC pins the per-PC fast path's contract: a hit requires
// both an in-range pc and the exact load-time word; any corrupted latch
// word must miss so it gets compiled from its actual bits.
func TestTranslateAtPC(t *testing.T) {
	words := randWords(40)
	tp := Translate(words)
	if len(tp.ByPC) != len(words) {
		t.Fatalf("ByPC has %d entries for %d words", len(tp.ByPC), len(words))
	}
	for pc, w := range words {
		d := tp.AtPC(uint32(pc), w)
		if d == nil {
			t.Fatalf("pc %d: miss with the original word", pc)
		}
		if d.In != isa.Decode(w) {
			t.Fatalf("pc %d: translation decodes %+v, want %+v", pc, d.In, isa.Decode(w))
		}
		if tp.AtPC(uint32(pc), w^1) != nil {
			t.Fatalf("pc %d: hit with a corrupted word — stale semantics would execute", pc)
		}
	}
	if tp.AtPC(uint32(len(words)), 0) != nil {
		t.Fatal("out-of-range pc hit the translation table")
	}
	if tp.AtPC(^uint32(0), 0) != nil {
		t.Fatal("pc -1 hit the translation table")
	}
}

// TestCacheDecode pins the fallback cache: every lookup must return the
// exact compilation of the requested word (purity), across repeats, index
// collisions, and evictions.
func TestCacheDecode(t *testing.T) {
	var c Cache
	words := randWords(4096) // 8x the cache size: plenty of collisions
	for round := 0; round < 2; round++ {
		for _, w := range words {
			d := c.Decode(w)
			if d == nil {
				t.Fatalf("word %#08x: nil decode", w)
			}
			if d.In != isa.Decode(w) {
				t.Fatalf("word %#08x: cache returned decode of %#08x — collision served stale entry",
					w, isa.Encode(d.In))
			}
		}
	}
	// Interleave two words that share a cache index to force eviction
	// thrash; semantics must stay exact.
	a, b := words[0], words[0]^0x80000000
	for i := 0; i < 64; i++ {
		if d := c.Decode(a); d.In != isa.Decode(a) {
			t.Fatalf("thrash round %d: wrong decode for %#08x", i, a)
		}
		if d := c.Decode(b); d.In != isa.Decode(b) {
			t.Fatalf("thrash round %d: wrong decode for %#08x", i, b)
		}
	}
}

// TestEnabledGate covers the process-wide gate used by the -compiled flag.
func TestEnabledGate(t *testing.T) {
	if !Enabled() {
		t.Fatal("compiled execution must default to on")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) did not take")
	}
}
