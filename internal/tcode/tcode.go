// Package tcode pre-translates assembled CRV32 programs into threaded
// code: every instruction word is decoded exactly once, at load time, into
// a DInst — the fully resolved decode product (operand registers, sign- or
// zero-extended immediate, format-derived control facts) plus per-core
// execute closures with the opcode dispatch and immediate already baked in.
// The per-cycle hot loops of internal/ino and internal/ooo then execute
// closures instead of re-running the decode switches of package isa on
// every pipeline stage of every cycle.
//
// Translation is a pure function of the 32-bit instruction word, which is
// what makes compiled execution bit-identical to the interpreter even under
// fault injection: a flipped bit in an instruction latch produces a word
// that simply misses the per-PC translation table and is compiled on demand
// (memoized in a small per-core Cache), yielding exactly the semantics
// isa.Decode plus the interpreter switches would give the corrupted word.
// The equivalence is pinned by fuzz and campaign-level tests
// (FuzzThreadedEquivalence, TestCompiledCampaignEquivalence).
//
// Compiled execution is on by default and gated by SetEnabled — the
// `-compiled=false` escape hatch on cmd/{clearsweep,precompute,faultinject}
// — so any suspected translation bug can be cross-checked against the
// decode-switch interpreter, which remains untouched.
package tcode

import (
	"sync/atomic"

	"clear/internal/isa"
)

// enabled gates compiled execution process-wide. Cores consult it when they
// (re)bind to a program, never mid-run, so toggling affects subsequently
// reset cores only. Atomic because campaign workers construct cores
// concurrently while tests elsewhere may flip the gate.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns compiled (threaded-code) execution on or off for cores
// bound after the call. The interpreter and compiled paths are bit-identical;
// the switch exists as a perf escape hatch and for equivalence testing.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether cores should execute threaded code.
func Enabled() bool { return enabled.Load() }

// ExecFn is the in-order core's execute-stage semantics of one instruction:
// ALU result, store value, the Y byproduct, and trap information. It mirrors
// ino's execALU contract exactly.
type ExecFn func(op1, op2, pc uint32) (result, storeVal, y uint32, trap bool, tt uint64)

// ALUFn is the out-of-order core's single-cycle ALU semantics (loads,
// stores, multiplies and control flow run on dedicated units there). It
// mirrors ooo's execALU contract exactly.
type ALUFn func(s1, s2 uint32) (val uint32, exc bool)

// BranchFn resolves a control instruction: taken and target. It mirrors the
// cores' (identical) resolveBranch contract.
type BranchFn func(op1, op2, pc uint32) (taken bool, target uint32)

// DInst is one instruction's complete translation: the decoded form, every
// format-derived predicate the pipelines consult per cycle, and the execute
// closures. A DInst depends only on the instruction word it was compiled
// from, so translations are immutable and freely shared across cores and
// goroutines.
type DInst struct {
	In    isa.Inst
	Valid bool // In.Op.Valid()

	WritesReg bool // In.Op.WritesReg() (false for invalid opcodes)
	NeedsRs1  bool // format reads rs1
	NeedsRs2  bool // format reads rs2 (FmtR, FmtStore, FmtBranch)
	IsControl bool
	IsBranch  bool
	IsJump    bool

	Exec ExecFn   // in-order execute stage
	ALU  ALUFn    // out-of-order ALU port
	Br   BranchFn // branch resolution; nil unless IsControl
}

// Compile translates a single instruction word. It is the one place the
// decode switches run for compiled execution; everything downstream is
// field reads and closure calls.
func Compile(w uint32) DInst {
	in := isa.Decode(w)
	d := DInst{
		In:        in,
		Valid:     in.Op.Valid(),
		WritesReg: in.Op.WritesReg(),
		IsControl: in.Op.IsControl(),
		IsBranch:  in.Op.IsBranch(),
		IsJump:    in.Op.IsJump(),
	}
	switch in.Op.Fmt() {
	case isa.FmtR, isa.FmtStore, isa.FmtBranch:
		d.NeedsRs1, d.NeedsRs2 = true, true
	case isa.FmtI, isa.FmtLoad, isa.FmtJALR, isa.FmtOut:
		d.NeedsRs1 = true
	}
	d.Exec = compileExec(in)
	d.ALU = compileALU(in)
	if d.IsControl {
		d.Br = compileBranch(in)
	}
	return d
}

// Shared zero-operand closures: ops with no captured state reuse one
// package-level function, so compiling them never allocates.
var (
	execZero ExecFn = func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
		return 0, 0, 0, false, 0
	}
	aluZero ALUFn = func(s1, s2 uint32) (uint32, bool) { return 0, false }
)

// compileExec bakes the in-order execute-stage semantics of in into a
// closure. The case list mirrors ino.execALU instruction for instruction;
// ops outside the list (nop, halt, trapd, branches) fall through to zeros
// exactly as the interpreter's switch default does.
func compileExec(in isa.Inst) ExecFn {
	imm := uint32(in.Imm)
	simm := in.Imm
	switch in.Op {
	case isa.ADD:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 + op2, 0, 0, false, 0
		}
	case isa.SUB:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 - op2, 0, 0, false, 0
		}
	case isa.AND:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 & op2, 0, 0, false, 0
		}
	case isa.OR:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 | op2, 0, 0, false, 0
		}
	case isa.XOR:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 ^ op2, 0, 0, false, 0
		}
	case isa.SLL:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 << (op2 & 31), 0, 0, false, 0
		}
	case isa.SRL:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 >> (op2 & 31), 0, 0, false, 0
		}
	case isa.SRA:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return uint32(int32(op1) >> (op2 & 31)), 0, 0, false, 0
		}
	case isa.SLT:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return b2u32(int32(op1) < int32(op2)), 0, 0, false, 0
		}
	case isa.SLTU:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return b2u32(op1 < op2), 0, 0, false, 0
		}
	case isa.MUL:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			p := int64(int32(op1)) * int64(int32(op2))
			return uint32(p), 0, uint32(uint64(p) >> 32), false, 0
		}
	case isa.MULH:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			p := int64(int32(op1)) * int64(int32(op2))
			hi := uint32(uint64(p) >> 32)
			return hi, 0, hi, false, 0
		}
	case isa.DIV:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			if op2 == 0 {
				return 0, 0, 0, true, 10
			}
			return uint32(int32(op1) / int32(op2)), 0, 0, false, 0
		}
	case isa.REM:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			if op2 == 0 {
				return 0, 0, 0, true, 10
			}
			return uint32(int32(op1) % int32(op2)), 0, 0, false, 0
		}
	case isa.ADDI:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 + imm, 0, 0, false, 0
		}
	case isa.ANDI:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 & imm, 0, 0, false, 0
		}
	case isa.ORI:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 | imm, 0, 0, false, 0
		}
	case isa.XORI:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 ^ imm, 0, 0, false, 0
		}
	case isa.SLLI:
		sh := imm & 31
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 << sh, 0, 0, false, 0
		}
	case isa.SRLI:
		sh := imm & 31
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1 >> sh, 0, 0, false, 0
		}
	case isa.SRAI:
		sh := imm & 31
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return uint32(int32(op1) >> sh), 0, 0, false, 0
		}
	case isa.SLTI:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return b2u32(int32(op1) < simm), 0, 0, false, 0
		}
	case isa.LUI:
		v := imm << 16
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return v, 0, 0, false, 0
		}
	case isa.LW:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return uint32(int32(op1) + simm), 0, 0, false, 0 // effective address
		}
	case isa.SW:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return uint32(int32(op1) + simm), op2, 0, false, 0
		}
	case isa.JAL, isa.JALR:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return pc + 1, 0, 0, false, 0
		}
	case isa.OUT:
		return func(op1, op2, pc uint32) (uint32, uint32, uint32, bool, uint64) {
			return op1, 0, 0, false, 0
		}
	}
	return execZero
}

// compileALU bakes the out-of-order ALU-port semantics of in into a
// closure, mirroring ooo.execALU: multiplies, memory ops and control flow
// are absent (dedicated units handle them) and fall through to zeros.
func compileALU(in isa.Inst) ALUFn {
	imm := uint32(in.Imm)
	simm := in.Imm
	switch in.Op {
	case isa.ADD:
		return func(s1, s2 uint32) (uint32, bool) { return s1 + s2, false }
	case isa.SUB:
		return func(s1, s2 uint32) (uint32, bool) { return s1 - s2, false }
	case isa.AND:
		return func(s1, s2 uint32) (uint32, bool) { return s1 & s2, false }
	case isa.OR:
		return func(s1, s2 uint32) (uint32, bool) { return s1 | s2, false }
	case isa.XOR:
		return func(s1, s2 uint32) (uint32, bool) { return s1 ^ s2, false }
	case isa.SLL:
		return func(s1, s2 uint32) (uint32, bool) { return s1 << (s2 & 31), false }
	case isa.SRL:
		return func(s1, s2 uint32) (uint32, bool) { return s1 >> (s2 & 31), false }
	case isa.SRA:
		return func(s1, s2 uint32) (uint32, bool) { return uint32(int32(s1) >> (s2 & 31)), false }
	case isa.SLT:
		return func(s1, s2 uint32) (uint32, bool) { return b2u32(int32(s1) < int32(s2)), false }
	case isa.SLTU:
		return func(s1, s2 uint32) (uint32, bool) { return b2u32(s1 < s2), false }
	case isa.DIV:
		return func(s1, s2 uint32) (uint32, bool) {
			if s2 == 0 {
				return 0, true
			}
			return uint32(int32(s1) / int32(s2)), false
		}
	case isa.REM:
		return func(s1, s2 uint32) (uint32, bool) {
			if s2 == 0 {
				return 0, true
			}
			return uint32(int32(s1) % int32(s2)), false
		}
	case isa.ADDI:
		return func(s1, s2 uint32) (uint32, bool) { return s1 + imm, false }
	case isa.ANDI:
		return func(s1, s2 uint32) (uint32, bool) { return s1 & imm, false }
	case isa.ORI:
		return func(s1, s2 uint32) (uint32, bool) { return s1 | imm, false }
	case isa.XORI:
		return func(s1, s2 uint32) (uint32, bool) { return s1 ^ imm, false }
	case isa.SLLI:
		sh := imm & 31
		return func(s1, s2 uint32) (uint32, bool) { return s1 << sh, false }
	case isa.SRLI:
		sh := imm & 31
		return func(s1, s2 uint32) (uint32, bool) { return s1 >> sh, false }
	case isa.SRAI:
		sh := imm & 31
		return func(s1, s2 uint32) (uint32, bool) { return uint32(int32(s1) >> sh), false }
	case isa.SLTI:
		return func(s1, s2 uint32) (uint32, bool) { return b2u32(int32(s1) < simm), false }
	case isa.LUI:
		v := imm << 16
		return func(s1, s2 uint32) (uint32, bool) { return v, false }
	case isa.OUT:
		return func(s1, s2 uint32) (uint32, bool) { return s1, false }
	}
	return aluZero
}

// compileBranch bakes branch resolution into a closure, mirroring the
// cores' resolveBranch. Only control instructions receive one.
func compileBranch(in isa.Inst) BranchFn {
	imm := uint32(in.Imm)
	simm := in.Imm
	switch in.Op {
	case isa.BEQ:
		return func(op1, op2, pc uint32) (bool, uint32) { return op1 == op2, pc + imm }
	case isa.BNE:
		return func(op1, op2, pc uint32) (bool, uint32) { return op1 != op2, pc + imm }
	case isa.BLT:
		return func(op1, op2, pc uint32) (bool, uint32) { return int32(op1) < int32(op2), pc + imm }
	case isa.BGE:
		return func(op1, op2, pc uint32) (bool, uint32) { return int32(op1) >= int32(op2), pc + imm }
	case isa.BLTU:
		return func(op1, op2, pc uint32) (bool, uint32) { return op1 < op2, pc + imm }
	case isa.BGEU:
		return func(op1, op2, pc uint32) (bool, uint32) { return op1 >= op2, pc + imm }
	case isa.JAL:
		return func(op1, op2, pc uint32) (bool, uint32) { return true, pc + imm }
	case isa.JALR:
		return func(op1, op2, pc uint32) (bool, uint32) { return true, uint32(int32(op1) + simm) }
	}
	return func(op1, op2, pc uint32) (bool, uint32) { return false, pc + imm }
}

// Program is the threaded-code translation of one assembled program: the
// program text plus one DInst per word. Immutable after Translate; shared
// read-only by every core bound to the program.
type Program struct {
	Words []uint32
	ByPC  []DInst
}

// Translate compiles every word of an assembled program. Cost is linear in
// program size and paid once per (program, software-variant) pair — the
// engine's program memo hands the same *prog.Program (and therefore the
// same translation) to every campaign of a sweep.
func Translate(words []uint32) *Program {
	t := &Program{Words: words, ByPC: make([]DInst, len(words))}
	for i, w := range words {
		t.ByPC[i] = Compile(w)
	}
	return t
}

// AtPC returns the pre-translated instruction at pc when the latch word w
// matches the program text there — the uncorrupted case, hit on virtually
// every decode of a fault-free cycle. A mismatch (injected bit flip in an
// instruction or PC latch, bubble word, out-of-range fetch) returns nil and
// the caller falls back to its Cache. Because ByPC[pc] was compiled from
// Words[pc] == w, the result is a pure function of w, exactly like Compile.
func (t *Program) AtPC(pc, w uint32) *DInst {
	if uint(pc) < uint(len(t.Words)) && t.Words[pc] == w {
		return &t.ByPC[pc]
	}
	return nil
}

// cacheBits sizes the per-core fallback decode cache (direct-mapped,
// 1<<cacheBits entries). Corrupted words seen after an injection recur for
// a handful of cycles while they drain the pipeline, so even a small cache
// absorbs nearly all fallback decodes.
const cacheBits = 9

// Cache memoizes Compile for words outside (or corrupted away from) the
// per-PC translation: a direct-mapped, word-tagged table. Each core owns
// one — it is mutable and must not be shared across goroutines. Entries are
// pure functions of the word, so the cache survives Reset and program
// rebinds unchanged.
type Cache struct {
	tags [1 << cacheBits]uint32
	ents [1 << cacheBits]*DInst
}

// Decode returns the translation of w, compiling and caching on miss.
func (dc *Cache) Decode(w uint32) *DInst {
	i := (w * 2654435761) >> (32 - cacheBits)
	if d := dc.ents[i]; d != nil && dc.tags[i] == w {
		return d
	}
	d := new(DInst)
	*d = Compile(w)
	dc.tags[i] = w
	dc.ents[i] = d
	return d
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
