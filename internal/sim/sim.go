// Package sim defines the interfaces shared by the cycle-level processor
// cores (internal/ino, internal/ooo) and consumed by the fault-injection
// engine and the architecture-level checkers.
package sim

import (
	"clear/internal/ff"
	"clear/internal/prog"
)

// CommitEvent describes one instruction retiring in program order.
// Architecture-level checkers (DFC, monitor core) observe the commit stream
// through these events — the same vantage point the hardware checkers have.
type CommitEvent struct {
	PC       uint32
	Word     uint32 // instruction encoding as committed (possibly corrupted)
	Result   uint32 // value written to the register file (if any)
	StoreVal uint32
	Addr     uint32 // effective address for loads/stores
}

// CommitHook observes retiring instructions; returning true signals that an
// architecture-level checker detected an error, ending the run with
// prog.StatusDetected.
type CommitHook func(ev CommitEvent) bool

// InFlightInst describes one instruction occupying a pipeline structure at a
// clock boundary: the structure's functional-unit name (matching the unit
// strings of the core's ff.Space), the slot inside it (the entry index for
// multi-entry structures such as a reorder buffer; -1 for single-occupant
// stages), and the static instruction's PC. The fault-injection engine uses
// these observations to attribute a strike to the instruction whose state it
// corrupted (CFA-style root-cause analysis).
type InFlightInst struct {
	Unit string
	Slot int
	PC   uint32
}

// Checkpoint is a complete capture of a core's simulation state at a clock
// boundary: flip-flop bits, architectural register file, data memory, the
// output stream emitted so far, and the cycle/retired counters. Extra holds
// core-specific microarchitectural state outside the flip-flop space
// (e.g. predictor and cache-tag SRAMs) so that restoring a checkpoint
// reproduces the exact cycle-by-cycle future of the captured run.
//
// A Checkpoint is bound to the (core design, program) pair it was taken
// from; restoring it into a core bound to a different program is undefined.
// Checkpoints are immutable once taken and safe to share across goroutines.
type Checkpoint struct {
	FF      *ff.State
	Regs    [32]uint32
	Mem     []uint32
	Out     []uint32
	Cycles  int
	Retired int64
	Done    bool
	Status  prog.Status
	Extra   any // core-specific non-flip-flop state (SRAM structures)
}

// Core is a cycle-level processor core with flip-flop-resolution state.
type Core interface {
	// Reset rebinds the core to p and clears all state.
	Reset(p *prog.Program)
	// Step advances one clock cycle.
	Step()
	// Done reports whether the program has finished.
	Done() bool
	// Run steps until done or maxCycles, returning the result (a cutoff
	// reports prog.StatusMaxSteps).
	Run(maxCycles int) prog.Result
	// Result summarizes the finished run.
	Result() prog.Result
	// State exposes the flip-flop state for fault injection.
	State() *ff.State
	// SpaceOf returns the core's flip-flop space.
	SpaceOf() *ff.Space
	// Cycles returns cycles simulated so far.
	Cycles() int
	// Retired returns committed instruction count.
	Retired() int64
	// Output returns the output stream emitted so far.
	Output() []uint32
	// SetCommitHook installs an architecture-level commit observer.
	SetCommitHook(h CommitHook)
	// Snapshot captures the full simulation state at the current cycle.
	Snapshot() *Checkpoint
	// Restore rewinds the core to a previously captured checkpoint taken
	// from the same (design, program) pair. The installed commit hook is
	// left untouched.
	Restore(ck *Checkpoint)
	// Matches reports whether the core's current state is bit-for-bit
	// identical to the checkpoint, without allocating. Two identical states
	// provably share the same deterministic future.
	Matches(ck *Checkpoint) bool
	// InFlight appends one entry per instruction currently occupying a
	// pipeline structure (stage latches, buffers, queues, rename mappings)
	// to dst and returns the extended slice. It is a pure observation — the
	// simulated future is unchanged — and reads the same packed flip-flop
	// state as State(), so interpreter and compiled/mirror execution report
	// identical occupancies. Callers pass a reusable dst to keep the
	// injection hot path allocation-free.
	InFlight(dst []InFlightInst) []InFlightInst
}

// Divergence classes reported by GangCore.DiffFrom, ordered by detection
// priority: a diff is classified by the first group that differs, so a
// DiffState result says nothing about the aux group. A zero result means
// every group — control, latch/register state, and side state — is
// bit-for-bit identical, which carries the same guarantee as Matches: two
// identical states of a deterministic core share the same future.
const (
	// DiffCtl: execution has left the reference trajectory's control path —
	// done flag, status, cycle/retired counters, or the fetch PC differ.
	DiffCtl uint8 = 1 << iota
	// DiffState: flip-flop (latch mirror) or register-file state differs.
	DiffState
	// DiffAux: memory, output stream, or core-specific SRAM side state
	// (predictors, cache tags) differs while control and latch state match.
	DiffAux
)

// GangCore is the optional capability the packed fault-injection engine
// (internal/inject, DESIGN.md §14) needs from a core: zero-allocation
// core-to-core state cloning to fork an injection lane off a fault-free
// carrier, and a cheap classified comparison against that carrier to detect
// reconvergence (gang pruning) and control-flow divergence (lane eviction)
// every cycle instead of only at checkpoint boundaries.
type GangCore interface {
	Core

	// CopyStateFrom makes this core's simulation state bit-for-bit
	// identical to src — the core-to-core analogue of Restore(src.Snapshot())
	// without allocating a Checkpoint. Both cores must be of the same
	// design and bound to the same program; like Restore, the installed
	// commit hook is left untouched.
	CopyStateFrom(src Core)

	// DiffFrom compares this core's full state against ref and returns the
	// first divergence class found (checked in DiffCtl, DiffState, DiffAux
	// order), or 0 when the states are identical. Like Matches it may
	// materialize the packed flip-flop view of either core but never
	// changes the simulated future.
	DiffFrom(ref Core) uint8
}
