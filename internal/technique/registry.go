package technique

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"clear/internal/power"
	"clear/internal/recovery"
)

// Registry holds registered techniques in deterministic canonical order
// (registration order). The default registry is seeded with the paper's
// library in the canonical display order; third-party techniques append
// after the built-ins.
type Registry struct {
	mu     sync.RWMutex
	order  []Technique
	byName map[string]Technique
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Technique)}
}

var std = NewRegistry()

// Default returns the process-wide registry the engine consults.
func Default() *Registry { return std }

// Register adds a technique at the end of the canonical order. It returns
// an error (never panics) for a nil technique, an invalid name, or a
// duplicate registration.
func (r *Registry) Register(t Technique) error {
	if t == nil {
		return fmt.Errorf("technique: register nil technique")
	}
	name := t.Name()
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("technique: register with empty name")
	}
	if strings.ContainsAny(name, "+()") {
		return fmt.Errorf("technique: name %q contains a combination-label separator", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("technique: %q already registered", name)
	}
	r.byName[name] = t
	r.order = append(r.order, t)
	return nil
}

// mustRegister is Register for the built-in seeding, where failure is a
// programming error.
func (r *Registry) mustRegister(t Technique) {
	if err := r.Register(t); err != nil {
		panic(err)
	}
}

// Unregister removes a technique by name, reporting whether it existed.
// Intended for tests and short-lived experiment registrations; removing a
// built-in leaves the engine unable to express its combinations.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return false
	}
	delete(r.byName, name)
	for i, t := range r.order {
		if t.Name() == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the technique registered under name, or an error (never a
// panic) listing the known names.
func (r *Registry) Lookup(name string) (Technique, error) {
	r.mu.RLock()
	t, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("technique: unknown technique %q (registered: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return t, nil
}

// All returns every registered technique (recoveries included) in canonical
// order.
func (r *Registry) All() []Technique {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Technique(nil), r.order...)
}

// Techniques returns the registered non-recovery techniques in canonical
// order.
func (r *Registry) Techniques() []Technique {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Technique, 0, len(r.order))
	for _, t := range r.order {
		if t.Layer() != Recovery {
			out = append(out, t)
		}
	}
	return out
}

// Recoveries returns the registered recovery mechanisms in canonical order.
func (r *Registry) Recoveries() []RecoveryTechnique {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []RecoveryTechnique
	for _, t := range r.order {
		if rt, ok := t.(RecoveryTechnique); ok && t.Layer() == Recovery {
			out = append(out, rt)
		}
	}
	return out
}

// Recovery returns the registered recovery technique implementing kind k,
// or nil (recovery.None has no technique).
func (r *Registry) Recovery(k recovery.Kind) RecoveryTechnique {
	for _, rt := range r.Recoveries() {
		if rt.Kind() == k {
			return rt
		}
	}
	return nil
}

// Names returns the canonical-order name list.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, t := range r.order {
		out[i] = t.Name()
	}
	return out
}

// Validate checks every registered technique's contract: a layer within
// the stack, at least one applicable core kind, and a well-formed (finite,
// non-NaN) cost contribution on each applicable core. It returns the first
// violation, or nil.
func (r *Registry) Validate() error {
	for _, t := range r.All() {
		if t.Layer() < Circuit || t.Layer() > Recovery {
			return fmt.Errorf("technique %q: invalid layer %d", t.Name(), t.Layer())
		}
		models := map[string]power.Model{"InO": power.InO(), "OoO": power.OoO()}
		applies := false
		for _, core := range CoreKinds {
			if !t.AppliesTo(core) {
				continue
			}
			applies = true
			c := t.Cost(models[core], core)
			for _, v := range []float64{c.Area, c.Power, c.ExecTime} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("technique %q: non-finite cost contribution on %s", t.Name(), core)
				}
			}
		}
		if !applies {
			return fmt.Errorf("technique %q: applies to no core kind", t.Name())
		}
	}
	return nil
}
