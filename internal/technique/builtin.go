package technique

import (
	"fmt"

	"clear/internal/abft"
	"clear/internal/archres"
	"clear/internal/circuitlib"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/recovery"
	"clear/internal/sim"
	"clear/internal/swres"
)

// The built-in library registers in the canonical display order: algorithm
// and software techniques top-down as they transform the program, then the
// architecture checkers, then circuit/logic insertion, then the recovery
// mechanisms. Combination labels, campaign construction, and enumeration
// all derive their ordering from this sequence.
func init() {
	registerBuiltins(std)
}

func registerBuiltins(r *Registry) {
	r.mustRegister(abftTech{
		Info: Info{TechName: NameABFTCorrection, TechLayer: Algorithm},
		mode: abft.Correction, tag: "abftc", allRecoveries: true,
	})
	r.mustRegister(abftTech{
		Info: Info{TechName: NameABFTDetection, TechLayer: Algorithm},
		mode: abft.Detection, tag: "abftd",
	})
	r.mustRegister(cfcssTech{Info{TechName: NameCFCSS, TechLayer: Software, Cores: []string{"InO"}}})
	r.mustRegister(assertTech{Info{TechName: NameAssertions, TechLayer: Software, Cores: []string{"InO"}}})
	r.mustRegister(eddiTech{Info{TechName: NameEDDI, TechLayer: Software, Cores: []string{"InO"},
		Note: "w/ store-readback"}})
	r.mustRegister(monitorTech{Info{TechName: NameMonitor, TechLayer: Architecture, Cores: []string{"OoO"}}})
	r.mustRegister(dfcTech{Info{TechName: NameDFC, TechLayer: Architecture}})
	r.mustRegister(diceTech{Info{TechName: NameLEAPDICE, TechLayer: Circuit}})
	r.mustRegister(parityTech{detectorCell{Info{TechName: NameParity, TechLayer: Logic}}})
	r.mustRegister(edsTech{detectorCell{Info{TechName: NameEDS, TechLayer: Circuit}}})
	for _, k := range []recovery.Kind{recovery.Flush, recovery.RoB, recovery.IR, recovery.EIR} {
		r.mustRegister(recTech{Info: Info{TechName: k.String(), TechLayer: Recovery}, kind: k})
	}
}

// versionSuffix renders a checker version into a cache-tag suffix; version
// 1 is the empty suffix so existing campaign caches stay valid.
func versionSuffix(v int) string {
	if v <= 1 {
		return ""
	}
	return fmt.Sprintf(".v%d", v)
}

// ---- algorithm layer ----

type abftTech struct {
	Info
	mode          abft.Mode
	tag           string
	allRecoveries bool
}

// Transform swaps in the ABFT kernel when the benchmark admits this mode;
// benchmarks without an ABFT variant keep the incoming program (the paper's
// Sec 3.2.1 fallback).
func (t abftTech) Transform(p *prog.Program, env *Env) (*prog.Program, error) {
	if abft.Supports(env.Bench, t.mode) {
		return abft.Program(env.Bench, t.mode)
	}
	return p, nil
}

// CompatibleWith: ABFT correction composes with every recovery; ABFT
// detection has unbounded detection latency and composes with none.
func (t abftTech) CompatibleWith(recovery.Kind, string) bool { return t.allRecoveries }

func (t abftTech) CampaignTag(Options) string { return t.tag }
func (abftTech) TagRank() int                 { return TagRankAlgorithm }

// ---- software layer ----

type cfcssTech struct{ Info }

func (cfcssTech) Transform(p *prog.Program, env *Env) (*prog.Program, error) {
	return swres.CFCSS(p)
}
func (cfcssTech) CampaignTag(Options) string { return "cfcss" }
func (cfcssTech) TagRank() int               { return TagRankSoftware }

type assertTech struct{ Info }

// Transform trains assertion invariants on the alternate input set as well
// when the engine provides one (multi-input training); a benchmark without
// an alternate input trains single-input.
func (assertTech) Transform(p *prog.Program, env *Env) (*prog.Program, error) {
	var trainers []*prog.Program
	if env.AltTrainer != nil {
		alt, err := env.AltTrainer()
		if err != nil {
			return nil, err
		}
		if alt != nil {
			trainers = append(trainers, alt)
		}
	}
	return swres.AssertionsTrained(p, trainers, env.Opt.AssertK)
}
func (assertTech) CampaignTag(o Options) string { return "assert-" + o.AssertK.String() }
func (assertTech) TagRank() int                 { return TagRankSoftware }

type eddiTech struct{ Info }

func (eddiTech) Transform(p *prog.Program, env *Env) (*prog.Program, error) {
	if env.Opt.SelEDDI {
		return swres.SelectiveEDDI(p)
	}
	return swres.EDDI(p, env.Opt.EDDISrb)
}
func (eddiTech) CampaignTag(o Options) string {
	switch {
	case o.SelEDDI:
		return "seddi"
	case o.EDDISrb:
		return "eddisrb"
	}
	return "eddi"
}
func (eddiTech) TagRank() int { return TagRankSoftware }

// ---- architecture layer ----

type dfcTech struct{ Info }

func (dfcTech) Cost(m power.Model, core string) power.Cost { return archres.DFCCost(m) }
func (dfcTech) GammaFF(core string) float64                { return archres.DFCFFOverhead(core) }
func (dfcTech) GammaExec(core string) float64 {
	if core == "InO" {
		return archres.DFCExecImpactInO
	}
	return archres.DFCExecImpactOoO
}
func (dfcTech) Hook(p *prog.Program) sim.CommitHook { return archres.NewDFC(p) }
func (dfcTech) CompatibleWith(k recovery.Kind, core string) bool {
	return k == recovery.IR || k == recovery.EIR
}
func (dfcTech) CampaignTag(Options) string { return "dfc" + versionSuffix(archres.DFCVersion) }
func (dfcTech) TagRank() int               { return TagRankDFC }

// PairsWith: the paper evaluates DFC standalone and with the extended
// instruction replay built for it (EIR carries the DFC buffers).
func (dfcTech) PairsWith(core string) recovery.Kind { return recovery.EIR }
func (dfcTech) StandsAlone() bool                   { return true }

type monitorTech struct{ Info }

func (monitorTech) Cost(m power.Model, core string) power.Cost { return archres.MonitorCost(m) }
func (monitorTech) GammaFF(core string) float64                { return archres.MonitorFFOverhead }
func (monitorTech) GammaExec(core string) float64              { return 0 }
func (monitorTech) Hook(p *prog.Program) sim.CommitHook        { return archres.NewMonitor(p) }
func (monitorTech) CompatibleWith(k recovery.Kind, core string) bool {
	return k == recovery.RoB || k == recovery.IR || k == recovery.EIR
}
func (monitorTech) CampaignTag(Options) string { return "mon" + versionSuffix(archres.MonitorVersion) }
func (monitorTech) TagRank() int               { return TagRankMonitor }

// PairsWith: the monitor core's checking is coupled to reorder-buffer
// rollback; the paper reports it with RoB recovery only.
func (monitorTech) PairsWith(core string) recovery.Kind { return recovery.RoB }
func (monitorTech) StandsAlone() bool                   { return false }

// ---- circuit / logic layers ----

type diceTech struct{ Info }

func (diceTech) Corrects() bool { return true }

// AppliesToModel: a LEAP-DICE cell hardens the storage nodes against
// particle strikes (ssb, mbu clusters, uncore strikes) but a single-event
// transient arrives through the combinational D input and is latched like
// any ordinary flip-flop — the cell offers no protection under "set".
func (diceTech) AppliesToModel(model string) bool { return model != "set" }

// Residual: a LEAP-DICE cell scales every error class by its SER ratio.
func (diceTech) Residual(n, sdc, due float64, recovered bool) (float64, float64) {
	f := circuitlib.Get(circuitlib.LEAPDICE).SERRatio
	return sdc * f, due * f
}

type detectorCell struct{ Info }

func (detectorCell) Corrects() bool { return false }

// Residual: detection with usable recovery erases the error (detect and
// replay); without it every injected flip becomes a detected DUE — even
// flips that would have vanished.
func (detectorCell) Residual(n, sdc, due float64, recovered bool) (float64, float64) {
	if recovered {
		return 0, 0
	}
	return 0, n
}

// CompatibleWith: circuit/logic detection drives every recovery mechanism.
func (detectorCell) CompatibleWith(recovery.Kind, string) bool { return true }

type parityTech struct{ detectorCell }

// AppliesToModel: the parity tree checks the latched state, so a transient
// latched through the D input corrupts data and check bit consistently —
// parity sees a valid codeword and detects nothing under "set". (Razor-like
// EDS samples the combinational output twice in time and does catch
// transients, so edsTech deliberately has no ModelCompat.)
func (parityTech) AppliesToModel(model string) bool { return model != "set" }

type edsTech struct{ detectorCell }

// ---- recovery mechanisms ----

type recTech struct {
	Info
	kind recovery.Kind
}

func (t recTech) Kind() recovery.Kind { return t.kind }
func (t recTech) AppliesTo(core string) bool {
	return recovery.Valid(t.kind, core)
}
func (t recTech) Cost(m power.Model, core string) power.Cost {
	return recovery.Cost(t.kind, core)
}
func (t recTech) GammaFF(core string) float64 { return RecoveryFFOverhead(t.kind, core) }

// GammaExec: pipeline-flush recovery squashes and refetches on every
// detection, a fixed execution-time overhead; the replay buffers are free
// of it. (The lookup is calibrated against the in-order core's flush cost,
// matching the engine's historical arithmetic bit-for-bit.)
func (t recTech) GammaExec(core string) float64 {
	if t.kind == recovery.Flush {
		return recovery.Cost(recovery.Flush, "InO").ExecTime
	}
	return 0
}

// RecoveryFFOverhead is the γ flip-flop overhead of recovery hardware
// (calibrated so parity+IR on the in-order core gives the paper's γ≈1.4
// and the OoO recovery units are nearly free). This is the single source
// for the table that used to be duplicated in core and experiments.
func RecoveryFFOverhead(k recovery.Kind, core string) float64 {
	if core == "InO" {
		switch k {
		case recovery.IR:
			return 0.35
		case recovery.EIR:
			return 0.42
		case recovery.Flush:
			return 0.01
		}
		return 0
	}
	switch k {
	case recovery.IR, recovery.EIR:
		return 0.055
	case recovery.RoB:
		return 0.001
	}
	return 0
}
