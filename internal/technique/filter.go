package technique

import (
	"fmt"
	"strings"
)

// Filter restricts an enumeration to a subset of the registered
// techniques. A spec is a comma-separated name list: bare names form an
// include set (only combinations built entirely from those techniques
// enumerate), "-name" entries exclude a technique from an otherwise full
// enumeration. Include and exclude entries may be mixed; exclusion wins.
// Recovery mechanisms are not filterable — they attach to detectors, and
// the enumeration constraints already bound them.
type Filter struct {
	include map[string]bool // nil = include everything
	exclude map[string]bool
	spec    string // canonical normalized spec
}

// ParseFilter builds a Filter over a registry from a CLI-style spec. An
// empty spec returns nil (no filtering). Names resolve case-insensitively
// against the registry; unknown names and recovery names are errors.
func ParseFilter(spec string, r *Registry) (*Filter, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	f := &Filter{exclude: map[string]bool{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		negate := strings.HasPrefix(part, "-")
		name := strings.TrimPrefix(part, "-")
		t, err := resolveName(name, r)
		if err != nil {
			return nil, err
		}
		if t.Layer() == Recovery {
			return nil, fmt.Errorf("technique: recovery %q is not filterable (recoveries attach to detectors)", t.Name())
		}
		if negate {
			f.exclude[t.Name()] = true
		} else {
			if f.include == nil {
				f.include = map[string]bool{}
			}
			f.include[t.Name()] = true
		}
	}
	if f.include == nil && len(f.exclude) == 0 {
		return nil, nil
	}
	f.spec = f.canonicalSpec(r)
	return f, nil
}

// resolveName matches a user-supplied name against the registry,
// case-insensitively.
func resolveName(name string, r *Registry) (Technique, error) {
	if t, err := r.Lookup(name); err == nil {
		return t, nil
	}
	for _, t := range r.All() {
		if strings.EqualFold(t.Name(), name) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("technique: unknown technique %q (registered: %s)",
		name, strings.Join(r.Names(), ", "))
}

// Allows reports whether a technique name passes the filter. A nil Filter
// allows everything.
func (f *Filter) Allows(name string) bool {
	if f == nil {
		return true
	}
	if f.exclude[name] {
		return false
	}
	return f.include == nil || f.include[name]
}

// Spec returns the canonical normalized spec string: the filter's identity
// for sweep-state keying. A nil Filter has the empty spec.
func (f *Filter) Spec() string {
	if f == nil {
		return ""
	}
	return f.spec
}

// canonicalSpec renders names in registry canonical order with registered
// spelling, includes first, so equivalent specs compare equal.
func (f *Filter) canonicalSpec(r *Registry) string {
	var inc, exc []string
	for _, t := range r.Techniques() {
		if f.include != nil && f.include[t.Name()] {
			inc = append(inc, t.Name())
		}
		if f.exclude[t.Name()] {
			exc = append(exc, "-"+t.Name())
		}
	}
	return strings.Join(append(inc, exc...), ",")
}
