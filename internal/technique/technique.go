// Package technique is the pluggable cross-layer resilience library behind
// the CLEAR exploration engine: every technique of the paper's Fig 1c —
// LEAP-DICE, parity, EDS, DFC, the monitor core, assertions, CFCSS, EDDI,
// ABFT correction/detection — and the four hardware recovery mechanisms is
// a registered implementation of one Technique interface, and the engine
// (enumeration, campaign construction, γ arithmetic, cost model, CLI
// surfaces) consults the registry instead of hardcoding the library.
//
// A Technique declares its identity (name, stack layer, applicable core
// kinds) and its hardware cost; everything else is an optional capability
// interface the engine probes for:
//
//   - GammaContributor — flip-flop / execution-time γ overheads (Sec 2.1);
//   - Transformer      — program transformation (software/algorithm layers);
//   - Hooker           — a commit-stream checker (architecture layer);
//   - RecoveryCompat   — which recovery mechanisms the technique's
//     detections can drive (the enumeration constraints of Table 18);
//   - FFProtector      — participates in Heuristic 1 selective circuit/
//     logic insertion, with the residual-outcome composition rules;
//   - Tagger           — a frozen campaign cache tag fragment.
//
// The registry's registration order is the single canonical technique
// order: combination names, campaign tags, program-transform application,
// and enumeration subsets are all derived from it, so the ordering that
// used to be duplicated across Combo.Name(), enumerate.go, and Variant.Tag
// now has exactly one source of truth.
package technique

import (
	"strings"

	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/recovery"
	"clear/internal/sim"
	"clear/internal/stack"
	"clear/internal/swres"
)

// Layer is the system-stack layer a technique belongs to (stack.Layer plus
// the Recovery pseudo-layer).
type Layer = stack.Layer

// Stack layers re-exported for registrants.
const (
	Circuit      = stack.Circuit
	Logic        = stack.Logic
	Architecture = stack.Architecture
	Software     = stack.Software
	Algorithm    = stack.Algorithm
	Recovery     = stack.Recovery
)

// Canonical names of the built-in techniques (these are the display names
// used in combination labels; campaign cache tags are separate and frozen).
const (
	NameABFTCorrection = "ABFT-c"
	NameABFTDetection  = "ABFT-d"
	NameCFCSS          = "CFCSS"
	NameAssertions     = "Assertions"
	NameEDDI           = "EDDI"
	NameMonitor        = "Monitor"
	NameDFC            = "DFC"
	NameLEAPDICE       = "LEAP-DICE"
	NameParity         = "Parity"
	NameEDS            = "EDS"
)

// CoreKinds are the processor designs a technique can apply to.
var CoreKinds = []string{"InO", "OoO"}

// Options carries the per-combination knobs of the software techniques
// (which assertion checks, which EDDI variant). It is part of a campaign's
// identity: Taggers fold the relevant options into their cache tag.
type Options struct {
	AssertK swres.AssertKind
	EDDISrb bool // EDDI store-readback
	SelEDDI bool // selective EDDI
}

// Env is the context a program transform runs in.
type Env struct {
	Core  string // "InO" or "OoO"
	Bench string // benchmark name (algorithm techniques key on it)
	Opt   Options
	// AltTrainer returns the benchmark's alternate-input program with
	// every transform preceding the current one already applied (the
	// paper's multi-input assertion training, tracked through the same
	// transform stack so check sites line up). It returns (nil, nil) when
	// the benchmark has no alternate input, and is nil itself when an
	// algorithm-layer technique is active in the variant.
	AltTrainer func() (*prog.Program, error)
}

// Technique is one resilience technique: identity, applicability, and
// hardware cost. Everything else is an optional capability interface.
type Technique interface {
	// Name is the canonical display name (must be unique, non-empty, and
	// free of the "+" combination separator).
	Name() string
	// Layer is the stack layer the technique occupies.
	Layer() Layer
	// AppliesTo reports whether the technique exists for a core kind
	// ("InO" or "OoO").
	AppliesTo(core string) bool
	// Cost is the technique's fixed hardware cost contribution on a core.
	// Techniques whose cost is measured (software execution overhead) or
	// assembled per flip-flop by the implementation plan return the zero
	// Cost.
	Cost(m power.Model, core string) power.Cost
}

// GammaContributor contributes γ overhead factors (Sec 2.1): extra
// flip-flops and longer execution enlarge the design's exposure to soft
// errors.
type GammaContributor interface {
	// GammaFF is the fractional flip-flop overhead on a core.
	GammaFF(core string) float64
	// GammaExec is the fixed fractional execution-time overhead on a core
	// (measured overheads are added by the engine, not declared here).
	GammaExec(core string) float64
}

// Transformer rewrites the benchmark program (software and algorithm
// layers). Transforms are applied in canonical registry order; a transform
// that does not apply to the benchmark returns p unchanged.
type Transformer interface {
	Transform(p *prog.Program, env *Env) (*prog.Program, error)
}

// Hooker attaches a commit-stream checker to injection runs (architecture
// layer). The hook is instantiated once per run on the transformed program.
type Hooker interface {
	Hook(p *prog.Program) sim.CommitHook
}

// RecoveryCompat declares which hardware recovery mechanisms a technique's
// detections can drive (the Table 18 enumeration constraints, e.g.
// "ABFT detection has unbounded latency, so it composes with no recovery").
// A technique that does not implement RecoveryCompat only enumerates in
// no-recovery combinations.
type RecoveryCompat interface {
	CompatibleWith(k recovery.Kind, core string) bool
}

// FFProtector marks a circuit/logic technique that Heuristic 1 can assign
// to individual flip-flops, and defines how a protected flip-flop's
// campaign statistics compose into residual outcomes (Sec 2.1 semantics).
type FFProtector interface {
	// Corrects reports in-place correction (no recovery needed); false
	// means detect-only.
	Corrects() bool
	// Residual returns the (SDC, DUE) expected-count contribution of one
	// protected flip-flop given its per-flip-flop campaign counts.
	// recovered reports whether the attached recovery can replay this
	// flip-flop's detections.
	Residual(n, sdc, due float64, recovered bool) (outSDC, outDUE float64)
}

// Tagger contributes a frozen fragment to campaign cache tags. Tag order is
// part of the on-disk campaign cache identity and therefore frozen
// independently of the registry's display order (see TagRank).
type Tagger interface {
	// CampaignTag renders the cache-tag fragment under the variant options.
	CampaignTag(o Options) string
	// TagRank fixes the fragment's position in the joined tag; fragments
	// sort by (TagRank, registry order). Built-ins use ranks 0–3; see
	// DefaultTagRank.
	TagRank() int
}

// Pairing declares the recovery mechanism a technique is designed to
// operate with — a presentation/evaluation hint for the standalone-
// technique tables (Table 3), not an enumeration constraint (those come
// from RecoveryCompat). StandsAlone reports whether the technique is also
// meaningful without any recovery attached.
type Pairing interface {
	PairsWith(core string) recovery.Kind
	StandsAlone() bool
}

// RecoveryTechnique is implemented by the registered recovery mechanisms.
type RecoveryTechnique interface {
	Technique
	Kind() recovery.Kind
}

// Tag ranks of the built-in fragments. Third-party techniques without a
// Tagger get DefaultTagRank and a sanitized name fragment.
const (
	TagRankAlgorithm = 0
	TagRankSoftware  = 1
	TagRankDFC       = 2
	TagRankMonitor   = 3
	DefaultTagRank   = 100
)

// AffectsCampaign reports whether a technique changes injection-campaign
// outcomes (it transforms the program or checks the commit stream). Only
// campaign-affecting techniques appear in campaign cache tags; a purely
// structural technique (circuit cell, cost-only) reuses the base campaign.
func AffectsCampaign(t Technique) bool {
	if _, ok := t.(Transformer); ok {
		return true
	}
	_, ok := t.(Hooker)
	return ok
}

// CompatibleWith reports whether a technique may enumerate alongside a
// recovery mechanism on a core. Every technique is compatible with "no
// recovery"; anything else requires an explicit RecoveryCompat.
func CompatibleWith(t Technique, k recovery.Kind, core string) bool {
	if k == recovery.None {
		return true
	}
	rc, ok := t.(RecoveryCompat)
	return ok && rc.CompatibleWith(k, core)
}

// ModelCompat declares which fault models (inject.ModelNames) a technique
// remains effective against. A technique without ModelCompat is assumed
// effective under every model: most techniques observe corrupted state the
// same way regardless of how the corruption arrived. The interface exists
// for the exceptions — e.g. a flip-flop hardening cell (LEAP-DICE) stops
// particle strikes on the storage node but latches a single-event
// transient arriving through the D input like any ordinary flip-flop.
type ModelCompat interface {
	AppliesToModel(model string) bool
}

// AppliesToModel reports whether a technique is effective under a fault
// model. The empty model and the ssb default are universal; otherwise the
// technique's ModelCompat decides, defaulting to effective when absent.
func AppliesToModel(t Technique, model string) bool {
	if model == "" || model == "ssb" {
		return true
	}
	mc, ok := t.(ModelCompat)
	return !ok || mc.AppliesToModel(model)
}

// CampaignTagOf returns a technique's cache-tag fragment: its Tagger
// fragment, or a sanitized lowercase name for techniques without one.
func CampaignTagOf(t Technique, o Options) string {
	if tg, ok := t.(Tagger); ok {
		return tg.CampaignTag(o)
	}
	s := strings.ToLower(t.Name())
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '-'
	}, s)
}

// TagRankOf returns a technique's tag rank (DefaultTagRank without a
// Tagger).
func TagRankOf(t Technique) int {
	if tg, ok := t.(Tagger); ok {
		return tg.TagRank()
	}
	return DefaultTagRank
}

// Info is an embeddable identity block satisfying the Technique interface's
// identity methods plus a zero hardware cost; override Cost for techniques
// with fixed hardware contributions.
type Info struct {
	TechName  string
	TechLayer Layer
	// Cores restricts applicability ("InO"/"OoO"); empty means both.
	Cores []string
	// Note is an optional display annotation for the standalone-technique
	// tables (e.g. "w/ store-readback").
	Note string
}

// Name implements Technique.
func (i Info) Name() string { return i.TechName }

// Layer implements Technique.
func (i Info) Layer() Layer { return i.TechLayer }

// AppliesTo implements Technique.
func (i Info) AppliesTo(core string) bool {
	if len(i.Cores) == 0 {
		return core == "InO" || core == "OoO"
	}
	for _, c := range i.Cores {
		if c == core {
			return true
		}
	}
	return false
}

// Cost implements Technique with a zero fixed hardware cost.
func (Info) Cost(power.Model, string) power.Cost { return power.Cost{} }

// NoteOf returns a technique's display annotation, if it carries one.
func NoteOf(t Technique) string {
	type noter interface{ note() string }
	if n, ok := t.(noter); ok {
		return n.note()
	}
	return ""
}

func (i Info) note() string { return i.Note }
