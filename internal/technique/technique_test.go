package technique

import (
	"strings"
	"testing"

	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/swres"
)

func TestDefaultRegistryValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default registry invalid: %v", err)
	}
}

func TestBuiltinsRegisteredInCanonicalOrder(t *testing.T) {
	want := []string{
		NameABFTCorrection, NameABFTDetection, NameCFCSS, NameAssertions,
		NameEDDI, NameMonitor, NameDFC, NameLEAPDICE, NameParity, NameEDS,
	}
	ts := Default().Techniques()
	if len(ts) < len(want) {
		t.Fatalf("registry has %d techniques, want at least %d", len(ts), len(want))
	}
	for i, n := range want {
		if ts[i].Name() != n {
			t.Errorf("technique %d = %q, want %q", i, ts[i].Name(), n)
		}
	}
	recs := Default().Recoveries()
	wantRec := []recovery.Kind{recovery.Flush, recovery.RoB, recovery.IR, recovery.EIR}
	if len(recs) != len(wantRec) {
		t.Fatalf("registry has %d recoveries, want %d", len(recs), len(wantRec))
	}
	for i, k := range wantRec {
		if recs[i].Kind() != k {
			t.Errorf("recovery %d = %v, want %v", i, recs[i].Kind(), k)
		}
	}
}

// Every technique must declare a layer, at least one applicable core kind,
// and a well-formed cost contribution (the registry contract of the
// Validate method, asserted per technique for sharper failure messages).
func TestBuiltinContracts(t *testing.T) {
	models := map[string]power.Model{"InO": power.InO(), "OoO": power.OoO()}
	for _, tech := range Default().All() {
		if l := tech.Layer(); l < Circuit || l > Recovery {
			t.Errorf("%s: layer %d out of range", tech.Name(), l)
		}
		applies := 0
		for _, core := range CoreKinds {
			if !tech.AppliesTo(core) {
				continue
			}
			applies++
			c := tech.Cost(models[core], core)
			if c.Area < 0 || c.Power < 0 || c.ExecTime < 0 {
				t.Errorf("%s: negative cost contribution on %s: %+v", tech.Name(), core, c)
			}
		}
		if applies == 0 {
			t.Errorf("%s: applies to no core kind", tech.Name())
		}
	}
}

func TestRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("registering nil should error")
	}
	if err := r.Register(Info{TechName: "", TechLayer: Software, Cores: []string{"InO"}}); err == nil {
		t.Error("registering empty name should error")
	}
	if err := r.Register(Info{TechName: "a+b", TechLayer: Software, Cores: []string{"InO"}}); err == nil {
		t.Error("registering a name with '+' should error")
	}
	ok := Info{TechName: "X", TechLayer: Software, Cores: []string{"InO"}}
	if err := r.Register(ok); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate registration should error, not panic")
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Default().Lookup("NoSuchTechnique")
	if err == nil {
		t.Fatal("unknown lookup should error, not panic")
	}
	if !strings.Contains(err.Error(), NameLEAPDICE) {
		t.Errorf("error should list known names, got: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	if r.Unregister("ghost") {
		t.Error("unregistering a missing name should report false")
	}
	r.mustRegister(Info{TechName: "Tmp", TechLayer: Software, Cores: []string{"InO"}})
	if !r.Unregister("Tmp") {
		t.Error("unregister should report true")
	}
	if _, err := r.Lookup("Tmp"); err == nil {
		t.Error("lookup after unregister should error")
	}
}

func TestValidateCatchesBadTechniques(t *testing.T) {
	r := NewRegistry()
	r.mustRegister(Info{TechName: "NoCore", TechLayer: Software, Cores: []string{"XYZ"}})
	if err := r.Validate(); err == nil {
		t.Error("technique applicable to no core should fail validation")
	}
}

func TestCampaignTags(t *testing.T) {
	reg := Default()
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{NameABFTCorrection, Options{}, "abftc"},
		{NameABFTDetection, Options{}, "abftd"},
		{NameCFCSS, Options{}, "cfcss"},
		{NameAssertions, Options{AssertK: swres.AssertCombined}, "assert-combined"},
		{NameEDDI, Options{EDDISrb: true}, "eddisrb"},
		{NameEDDI, Options{SelEDDI: true}, "seddi"},
		{NameEDDI, Options{}, "eddi"},
		{NameDFC, Options{}, "dfc"},
		{NameMonitor, Options{}, "mon.v2"},
	}
	for _, tc := range cases {
		tech, err := reg.Lookup(tc.name)
		if err != nil {
			t.Fatalf("lookup %s: %v", tc.name, err)
		}
		if got := CampaignTagOf(tech, tc.opt); got != tc.want {
			t.Errorf("%s tag = %q, want %q (frozen cache key)", tc.name, got, tc.want)
		}
	}
	// a third-party technique without a Tagger gets a sanitized name
	if got := CampaignTagOf(Info{TechName: "My Tech!", TechLayer: Software}, Options{}); got != "my-tech-" {
		t.Errorf("sanitized tag = %q, want %q", got, "my-tech-")
	}
}

func TestRecoveryCompatibilityTable(t *testing.T) {
	reg := Default()
	// Table 18 constraints as expressed through RecoveryCompat.
	cases := []struct {
		name string
		kind recovery.Kind
		core string
		want bool
	}{
		{NameParity, recovery.Flush, "InO", true},
		{NameEDS, recovery.IR, "InO", true},
		{NameDFC, recovery.IR, "InO", true},
		{NameDFC, recovery.EIR, "InO", true},
		{NameDFC, recovery.Flush, "InO", false},
		{NameMonitor, recovery.RoB, "OoO", true},
		{NameMonitor, recovery.Flush, "InO", false},
		{NameABFTCorrection, recovery.EIR, "InO", true},
		{NameABFTDetection, recovery.Flush, "InO", false},
		{NameABFTDetection, recovery.IR, "InO", false},
		{NameCFCSS, recovery.IR, "InO", false},
		{NameEDDI, recovery.IR, "InO", false},
		{NameAssertions, recovery.Flush, "InO", false},
		{NameLEAPDICE, recovery.IR, "InO", false},
	}
	for _, tc := range cases {
		tech, err := reg.Lookup(tc.name)
		if err != nil {
			t.Fatalf("lookup %s: %v", tc.name, err)
		}
		if got := CompatibleWith(tech, tc.kind, tc.core); got != tc.want {
			t.Errorf("CompatibleWith(%s, %v, %s) = %v, want %v",
				tc.name, tc.kind, tc.core, got, tc.want)
		}
		if !CompatibleWith(tech, recovery.None, tc.core) {
			t.Errorf("%s must be compatible with no-recovery", tc.name)
		}
	}
}

func TestFilterParse(t *testing.T) {
	reg := Default()
	if f, err := ParseFilter("", reg); err != nil || f != nil {
		t.Errorf("empty spec should yield nil filter, got %v, %v", f, err)
	}
	if _, err := ParseFilter("Bogus", reg); err == nil {
		t.Error("unknown name should error")
	}
	if _, err := ParseFilter("IR", reg); err == nil {
		t.Error("recovery names should not be filterable")
	}

	f, err := ParseFilter("parity,leap-dice", reg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !f.Allows(NameParity) || !f.Allows(NameLEAPDICE) {
		t.Error("included techniques should be allowed")
	}
	if f.Allows(NameEDS) || f.Allows(NameDFC) {
		t.Error("non-included techniques should be rejected by an include list")
	}
	// canonical spec: registry order, registered spelling
	if got := f.Spec(); got != "LEAP-DICE,Parity" {
		t.Errorf("Spec() = %q, want %q", got, "LEAP-DICE,Parity")
	}
	f2, err := ParseFilter("LEAP-DICE,  Parity", reg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.Spec() != f2.Spec() {
		t.Errorf("equivalent specs should normalize equal: %q vs %q", f.Spec(), f2.Spec())
	}

	ex, err := ParseFilter("-EDS", reg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if ex.Allows(NameEDS) {
		t.Error("excluded technique should be rejected")
	}
	if !ex.Allows(NameParity) || !ex.Allows(NameABFTCorrection) {
		t.Error("exclude-only filter should allow everything else")
	}
	if got := ex.Spec(); got != "-EDS" {
		t.Errorf("Spec() = %q, want %q", got, "-EDS")
	}

	// exclusion wins over inclusion
	both, err := ParseFilter("Parity,EDS,-EDS", reg)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if both.Allows(NameEDS) {
		t.Error("exclusion should win over inclusion")
	}
	if !both.Allows(NameParity) {
		t.Error("Parity should remain allowed")
	}
	var nilF *Filter
	if !nilF.Allows(NameEDS) || nilF.Spec() != "" {
		t.Error("nil filter should allow everything with empty spec")
	}
}

func TestRecoveryFFOverheadTable(t *testing.T) {
	cases := []struct {
		k    recovery.Kind
		core string
		want float64
	}{
		{recovery.IR, "InO", 0.35},
		{recovery.EIR, "InO", 0.42},
		{recovery.Flush, "InO", 0.01},
		{recovery.RoB, "InO", 0},
		{recovery.IR, "OoO", 0.055},
		{recovery.EIR, "OoO", 0.055},
		{recovery.RoB, "OoO", 0.001},
		{recovery.None, "InO", 0},
		{recovery.None, "OoO", 0},
	}
	for _, tc := range cases {
		if got := RecoveryFFOverhead(tc.k, tc.core); got != tc.want {
			t.Errorf("RecoveryFFOverhead(%v, %s) = %v, want %v", tc.k, tc.core, got, tc.want)
		}
	}
}
