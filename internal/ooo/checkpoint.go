package ooo

import "clear/internal/sim"

// extra is the out-of-order core's non-flip-flop state: the predictor and
// cache-metadata SRAM structures. They carry no architectural values but
// determine access latencies and fetch redirects, so they are part of the
// checkpoint — restoring must reproduce the exact cycle-by-cycle future.
type extra struct {
	btbTag   [btbSize]uint32
	btbTgt   [btbSize]uint32
	btbValid [btbSize]bool
	gshare   [gshareSize]uint8
	cacheTag [CacheLines]uint32
	cacheVld [CacheLines]bool
}

// Snapshot captures the full simulation state at the current cycle.
func (c *Core) Snapshot() *sim.Checkpoint {
	if c.uValid {
		// materialize the packed view; the mirror stays current, so a
		// subsequent compiled step needn't re-unpack
		c.packU()
	}
	return &sim.Checkpoint{
		FF:      c.st.Clone(),
		Regs:    c.arf,
		Mem:     append([]uint32(nil), c.mem...),
		Out:     append([]uint32(nil), c.out...),
		Cycles:  c.cycles,
		Retired: c.retired,
		Done:    c.done,
		Status:  c.status,
		Extra: &extra{
			btbTag:   c.btbTag,
			btbTgt:   c.btbTgt,
			btbValid: c.btbValid,
			gshare:   c.gshare,
			cacheTag: c.cacheTag,
			cacheVld: c.cacheVld,
		},
	}
}

// Restore rewinds the core to ck, which must have been taken from an
// out-of-order core bound to the same program.
func (c *Core) Restore(ck *sim.Checkpoint) {
	c.uValid = false // packed state becomes authoritative
	c.st.CopyFrom(ck.FF)
	c.arf = ck.Regs
	if cap(c.mem) >= len(ck.Mem) {
		c.mem = c.mem[:len(ck.Mem)]
	} else {
		c.mem = make([]uint32, len(ck.Mem))
	}
	copy(c.mem, ck.Mem)
	c.out = append(c.out[:0], ck.Out...)
	c.cycles = ck.Cycles
	c.retired = ck.Retired
	c.done = ck.Done
	c.status = ck.Status
	e := ck.Extra.(*extra)
	c.btbTag = e.btbTag
	c.btbTgt = e.btbTgt
	c.btbValid = e.btbValid
	c.gshare = e.gshare
	c.cacheTag = e.cacheTag
	c.cacheVld = e.cacheVld
}

// Matches reports whether the core's current state equals ck bit-for-bit.
func (c *Core) Matches(ck *sim.Checkpoint) bool {
	e, ok := ck.Extra.(*extra)
	if !ok {
		return false
	}
	if c.uValid {
		c.packU() // compare against the live mirror's packed view
	}
	return c.cycles == ck.Cycles &&
		c.retired == ck.Retired &&
		c.done == ck.Done &&
		c.status == ck.Status &&
		c.arf == ck.Regs &&
		c.btbTag == e.btbTag &&
		c.btbTgt == e.btbTgt &&
		c.btbValid == e.btbValid &&
		c.gshare == e.gshare &&
		c.cacheTag == e.cacheTag &&
		c.cacheVld == e.cacheVld &&
		c.st.Equal(ck.FF) &&
		wordsEqual(c.out, ck.Out) &&
		wordsEqual(c.mem, ck.Mem)
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
