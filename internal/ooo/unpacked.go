package ooo

// uLatches mirrors every flip-flop field of regs as a plain machine word.
// Compiled execution (threaded.go) runs the whole
// fetch/rename/issue/execute/writeback/commit loop on this struct and
// touches the packed ff.State only at observation points: State(),
// Snapshot(), Matches(), Restore() and Reset() synchronize the two
// representations, so every external view of the core — fault injection,
// checkpointing, convergence pruning, state-equality tests — still sees the
// exact bit layout the interpreter maintains. The round trip is lossless
// because the ff.Space allocates fields back to back with no padding bits,
// and all values stored here are kept within their field widths (unpack
// masks through ff.Field.Get; every pipeline write below either copies an
// already-masked value, computes one that fits by construction, or — for
// lhist's shift register — masks explicitly where the interpreter relied on
// ff.Field.Set truncation).
//
// Every field is a uint64 carrying exactly the value the interpreter's
// ff.Field.Get would return, so the compiled loop's arithmetic (modular ROB
// ages, wrap-around head/tail pointers) is bit-identical to the
// interpreter's uint64 arithmetic even for corrupted (injected) values.
type uLatches struct {
	// fetch
	pc        uint64
	lhist     uint64 // 12 bits: shift-register writes mask explicitly
	takenAddr uint64
	rasInv    uint64

	// fetch buffer
	fbInst                  [FBSize]uint64
	fbPC                    [FBSize]uint64
	fbPred                  [FBSize]uint64
	fbPTgt                  [FBSize]uint64
	fbHead, fbTail, fbCount uint64

	// rename table
	rat [32]uint64

	// reorder buffer
	robHead, robTail, robCount uint64
	robInst                    [RobSize]uint64
	robPC                      [RobSize]uint64
	robDone                    [RobSize]uint64
	robExc                     [RobSize]uint64
	robVal                     [RobSize]uint64
	robFlags                   [RobSize]uint64
	robPTgt                    [RobSize]uint64

	// issue queue
	iqValid [IQSize]uint64
	iqInst  [IQSize]uint64
	iqRob   [IQSize]uint64
	iqS1Tag [IQSize]uint64
	iqS1Rdy [IQSize]uint64
	iqS1Val [IQSize]uint64
	iqS2Tag [IQSize]uint64
	iqS2Rdy [IQSize]uint64
	iqS2Val [IQSize]uint64

	// store queue
	sqHead, sqTail, sqCount uint64
	sqValid                 [SQSize]uint64
	sqRob                   [SQSize]uint64
	sqAddr                  [SQSize]uint64
	sqData                  [SQSize]uint64
	sqDone                  [SQSize]uint64

	// L1 D-cache access unit
	ldValid, ldRob, ldAddr, ldCnt, ldData uint64
	ldAddrIn                              [4]uint64
	ldDataIn                              [4]uint64
	ldAddrOut                             [2]uint64

	// pipelined multiplier
	muA   [4]uint64
	muB   [4]uint64
	muV   [4]uint64
	muRob [4]uint64
	muHi  [4]uint64

	// branch unit staging
	caBr uint64
	caP  [3]uint64

	// writeback/bypass staging registers (architecturally inert)
	rrEx  [6]uint64
	exWb  [6]uint64
	wbRet [8]uint64
}

// unpackU loads the unpacked mirror from the packed flip-flop state.
func (c *Core) unpackU() {
	st := c.st
	r := &c.r
	u := &c.u
	u.pc = r.pc.Get(st)
	u.lhist = r.lhist.Get(st)
	u.takenAddr = r.takenAddr.Get(st)
	u.rasInv = r.rasInv.Get(st)
	for i := 0; i < FBSize; i++ {
		u.fbInst[i] = r.fbInst[i].Get(st)
		u.fbPC[i] = r.fbPC[i].Get(st)
		u.fbPred[i] = r.fbPred[i].Get(st)
		u.fbPTgt[i] = r.fbPTgt[i].Get(st)
	}
	u.fbHead = r.fbHead.Get(st)
	u.fbTail = r.fbTail.Get(st)
	u.fbCount = r.fbCount.Get(st)
	for i := 0; i < 32; i++ {
		u.rat[i] = r.rat[i].Get(st)
	}
	u.robHead = r.robHead.Get(st)
	u.robTail = r.robTail.Get(st)
	u.robCount = r.robCount.Get(st)
	for i := 0; i < RobSize; i++ {
		u.robInst[i] = r.robInst[i].Get(st)
		u.robPC[i] = r.robPC[i].Get(st)
		u.robDone[i] = r.robDone[i].Get(st)
		u.robExc[i] = r.robExc[i].Get(st)
		u.robVal[i] = r.robVal[i].Get(st)
		u.robFlags[i] = r.robFlags[i].Get(st)
		u.robPTgt[i] = r.robPTgt[i].Get(st)
	}
	for i := 0; i < IQSize; i++ {
		u.iqValid[i] = r.iqValid[i].Get(st)
		u.iqInst[i] = r.iqInst[i].Get(st)
		u.iqRob[i] = r.iqRob[i].Get(st)
		u.iqS1Tag[i] = r.iqS1Tag[i].Get(st)
		u.iqS1Rdy[i] = r.iqS1Rdy[i].Get(st)
		u.iqS1Val[i] = r.iqS1Val[i].Get(st)
		u.iqS2Tag[i] = r.iqS2Tag[i].Get(st)
		u.iqS2Rdy[i] = r.iqS2Rdy[i].Get(st)
		u.iqS2Val[i] = r.iqS2Val[i].Get(st)
	}
	u.sqHead = r.sqHead.Get(st)
	u.sqTail = r.sqTail.Get(st)
	u.sqCount = r.sqCount.Get(st)
	for i := 0; i < SQSize; i++ {
		u.sqValid[i] = r.sqValid[i].Get(st)
		u.sqRob[i] = r.sqRob[i].Get(st)
		u.sqAddr[i] = r.sqAddr[i].Get(st)
		u.sqData[i] = r.sqData[i].Get(st)
		u.sqDone[i] = r.sqDone[i].Get(st)
	}
	u.ldValid = r.ldValid.Get(st)
	u.ldRob = r.ldRob.Get(st)
	u.ldAddr = r.ldAddr.Get(st)
	u.ldCnt = r.ldCnt.Get(st)
	u.ldData = r.ldData.Get(st)
	for i := 0; i < 4; i++ {
		u.ldAddrIn[i] = r.ldAddrIn[i].Get(st)
		u.ldDataIn[i] = r.ldDataIn[i].Get(st)
	}
	for i := 0; i < 2; i++ {
		u.ldAddrOut[i] = r.ldAddrOut[i].Get(st)
	}
	for i := 0; i < 4; i++ {
		u.muA[i] = r.muA[i].Get(st)
		u.muB[i] = r.muB[i].Get(st)
		u.muV[i] = r.muV[i].Get(st)
		u.muRob[i] = r.muRob[i].Get(st)
		u.muHi[i] = r.muHi[i].Get(st)
	}
	u.caBr = r.caBr.Get(st)
	for i := 0; i < 3; i++ {
		u.caP[i] = r.caP[i].Get(st)
	}
	for i := 0; i < 6; i++ {
		u.rrEx[i] = r.rrEx[i].Get(st)
		u.exWb[i] = r.exWb[i].Get(st)
	}
	for i := 0; i < 8; i++ {
		u.wbRet[i] = r.wbRet[i].Get(st)
	}
}

// packU stores the unpacked mirror back into the packed flip-flop state.
func (c *Core) packU() {
	st := c.st
	r := &c.r
	u := &c.u
	r.pc.Set(st, u.pc)
	r.lhist.Set(st, u.lhist)
	r.takenAddr.Set(st, u.takenAddr)
	r.rasInv.Set(st, u.rasInv)
	for i := 0; i < FBSize; i++ {
		r.fbInst[i].Set(st, u.fbInst[i])
		r.fbPC[i].Set(st, u.fbPC[i])
		r.fbPred[i].Set(st, u.fbPred[i])
		r.fbPTgt[i].Set(st, u.fbPTgt[i])
	}
	r.fbHead.Set(st, u.fbHead)
	r.fbTail.Set(st, u.fbTail)
	r.fbCount.Set(st, u.fbCount)
	for i := 0; i < 32; i++ {
		r.rat[i].Set(st, u.rat[i])
	}
	r.robHead.Set(st, u.robHead)
	r.robTail.Set(st, u.robTail)
	r.robCount.Set(st, u.robCount)
	for i := 0; i < RobSize; i++ {
		r.robInst[i].Set(st, u.robInst[i])
		r.robPC[i].Set(st, u.robPC[i])
		r.robDone[i].Set(st, u.robDone[i])
		r.robExc[i].Set(st, u.robExc[i])
		r.robVal[i].Set(st, u.robVal[i])
		r.robFlags[i].Set(st, u.robFlags[i])
		r.robPTgt[i].Set(st, u.robPTgt[i])
	}
	for i := 0; i < IQSize; i++ {
		r.iqValid[i].Set(st, u.iqValid[i])
		r.iqInst[i].Set(st, u.iqInst[i])
		r.iqRob[i].Set(st, u.iqRob[i])
		r.iqS1Tag[i].Set(st, u.iqS1Tag[i])
		r.iqS1Rdy[i].Set(st, u.iqS1Rdy[i])
		r.iqS1Val[i].Set(st, u.iqS1Val[i])
		r.iqS2Tag[i].Set(st, u.iqS2Tag[i])
		r.iqS2Rdy[i].Set(st, u.iqS2Rdy[i])
		r.iqS2Val[i].Set(st, u.iqS2Val[i])
	}
	r.sqHead.Set(st, u.sqHead)
	r.sqTail.Set(st, u.sqTail)
	r.sqCount.Set(st, u.sqCount)
	for i := 0; i < SQSize; i++ {
		r.sqValid[i].Set(st, u.sqValid[i])
		r.sqRob[i].Set(st, u.sqRob[i])
		r.sqAddr[i].Set(st, u.sqAddr[i])
		r.sqData[i].Set(st, u.sqData[i])
		r.sqDone[i].Set(st, u.sqDone[i])
	}
	r.ldValid.Set(st, u.ldValid)
	r.ldRob.Set(st, u.ldRob)
	r.ldAddr.Set(st, u.ldAddr)
	r.ldCnt.Set(st, u.ldCnt)
	r.ldData.Set(st, u.ldData)
	for i := 0; i < 4; i++ {
		r.ldAddrIn[i].Set(st, u.ldAddrIn[i])
		r.ldDataIn[i].Set(st, u.ldDataIn[i])
	}
	for i := 0; i < 2; i++ {
		r.ldAddrOut[i].Set(st, u.ldAddrOut[i])
	}
	for i := 0; i < 4; i++ {
		r.muA[i].Set(st, u.muA[i])
		r.muB[i].Set(st, u.muB[i])
		r.muV[i].Set(st, u.muV[i])
		r.muRob[i].Set(st, u.muRob[i])
		r.muHi[i].Set(st, u.muHi[i])
	}
	r.caBr.Set(st, u.caBr)
	for i := 0; i < 3; i++ {
		r.caP[i].Set(st, u.caP[i])
	}
	for i := 0; i < 6; i++ {
		r.rrEx[i].Set(st, u.rrEx[i])
		r.exWb[i].Set(st, u.exWb[i])
	}
	for i := 0; i < 8; i++ {
		r.wbRet[i].Set(st, u.wbRet[i])
	}
}

// syncU flushes the unpacked mirror into the packed state and invalidates
// the mirror, so the caller (or external code holding the *ff.State) may
// mutate packed bits freely; the next compiled step re-unpacks.
func (c *Core) syncU() {
	if c.uValid {
		c.packU()
		c.uValid = false
	}
}
