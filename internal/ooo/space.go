// Package ooo implements the out-of-order processor core (the paper's Alpha
// IVM stand-in): a 2-wide superscalar with branch prediction, register
// renaming through a RAT, a unified issue queue (sched0), a reorder buffer,
// a store queue with store-to-load forwarding, a pipelined multiplier, and
// an L1 data-cache access unit with variable latency.
//
// As in internal/ino, every piece of sequential state is a named field in a
// ff.Space using the paper's Appendix A naming conventions (rob.*, sched0.*,
// exec.mu0.*, mem.l1dcache.*, RF0.*, ...). Soft errors are single bit flips
// of that space; outcome classes emerge from execution. RAMs (architectural
// register file, predictor tables, cache data) are excluded, matching the
// paper's flip-flop-only error model.
package ooo

import "clear/internal/ff"

// Microarchitectural dimensions of the core.
const (
	FetchWidth  = 2
	IssueWidth  = 2
	CommitWidth = 2

	RobSize = 48
	IQSize  = 16
	SQSize  = 8
	FBSize  = 8

	// cache geometry and latencies
	CacheLines  = 64
	HitLatency  = 2
	MissLatency = 12

	btbSize    = 256
	gshareSize = 1024
)

// regs holds every flip-flop field handle of the OoO core.
type regs struct {
	// fetch
	pc        ff.Field // RF0.PCreg
	lhist     ff.Field // RF0.F1.lhist: global branch history
	takenAddr ff.Field // RF0.F1.takenAddress
	rasInv    ff.Field // RF0.F1.ras.ret.inv

	// fetch buffer (RF1.F2.*)
	fbInst                  [FBSize]ff.Field
	fbPC                    [FBSize]ff.Field
	fbPred                  [FBSize]ff.Field // bit0: predicted taken
	fbPTgt                  [FBSize]ff.Field
	fbHead, fbTail, fbCount ff.Field

	// rename table (one mapping per architectural register)
	rat [32]ff.Field // bit6: valid, bits5..0: ROB index

	// reorder buffer
	robHead, robTail, robCount ff.Field
	robInst                    [RobSize]ff.Field
	robPC                      [RobSize]ff.Field
	robDone                    [RobSize]ff.Field
	robExc                     [RobSize]ff.Field // 0 none, 1 trap
	robVal                     [RobSize]ff.Field
	robFlags                   [RobSize]ff.Field // bit0 isStore, bit1 isBranch, bit2 predTaken
	robPTgt                    [RobSize]ff.Field

	// issue queue (sched0.*)
	iqValid [IQSize]ff.Field
	iqInst  [IQSize]ff.Field
	iqRob   [IQSize]ff.Field
	iqS1Tag [IQSize]ff.Field
	iqS1Rdy [IQSize]ff.Field
	iqS1Val [IQSize]ff.Field
	iqS2Tag [IQSize]ff.Field
	iqS2Rdy [IQSize]ff.Field
	iqS2Val [IQSize]ff.Field

	// store queue (mem.stq.* / mem.stb.*)
	sqHead, sqTail, sqCount ff.Field
	sqValid                 [SQSize]ff.Field
	sqRob                   [SQSize]ff.Field
	sqAddr                  [SQSize]ff.Field
	sqData                  [SQSize]ff.Field
	sqDone                  [SQSize]ff.Field

	// L1 D-cache access unit (mem.l1dcache.*)
	ldValid ff.Field
	ldRob   ff.Field
	ldAddr  ff.Field
	ldCnt   ff.Field
	ldData  ff.Field
	// staging registers exercised by every access; architecturally inert
	// (the paper's always-vanish mem.l1dcache.addr.in*/data.in* registers)
	ldAddrIn  [4]ff.Field
	ldDataIn  [4]ff.Field
	ldAddrOut [2]ff.Field

	// pipelined multiplier (exec.mu0.*): 4 stages
	muA   [4]ff.Field // a01, a12, a23, a34
	muB   [4]ff.Field // b01, b12, b23, b34
	muV   [4]ff.Field // i0..i3 valid
	muRob [4]ff.Field
	muHi  [4]ff.Field // computing MULH?

	// branch unit staging (exec.ca0.*)
	caBr ff.Field
	caP  [3]ff.Field

	// writeback/bypass staging registers (regs.rr.ex.*, regs.ex.wb.*,
	// regs.wb.wb.ret*): written with pass-through copies of results each
	// cycle and never read — the always-vanish structures of Appendix A.
	rrEx  [6]ff.Field
	exWb  [6]ff.Field
	wbRet [8]ff.Field
}

func allocInto(s *ff.Space, r *regs) {
	r.pc = s.Alloc("fetch", "RF0.PCreg", 32)
	r.lhist = s.Alloc("fetch", "RF0.F1.lhist", 12)
	r.takenAddr = s.Alloc("fetch", "RF0.F1.takenAddress", 32)
	r.rasInv = s.Alloc("fetch", "RF0.F1.ras.ret.inv", 1)

	for i := 0; i < FBSize; i++ {
		r.fbInst[i] = s.Alloc("fetchbuf", name("RF1.F2.inst", i), 32)
		r.fbPC[i] = s.Alloc("fetchbuf", name("RF1.F2.pc", i), 32)
		r.fbPred[i] = s.Alloc("fetchbuf", name("RF1.F2.pred", i), 1)
		r.fbPTgt[i] = s.Alloc("fetchbuf", name("RF1.F2.ptgt", i), 32)
	}
	r.fbHead = s.Alloc("fetchbuf", "RF1.F2.head", 3)
	r.fbTail = s.Alloc("fetchbuf", "RF1.F2.tail", 3)
	r.fbCount = s.Alloc("fetchbuf", "RF1.F2.count", 4)

	for i := 0; i < 32; i++ {
		r.rat[i] = s.Alloc("rename", name("rename.rat", i), 7)
	}

	r.robHead = s.Alloc("rob", "rob.head.reg", 6)
	r.robTail = s.Alloc("rob", "rob.tail.reg", 6)
	r.robCount = s.Alloc("rob", "rob.count.reg", 6)
	for i := 0; i < RobSize; i++ {
		r.robInst[i] = s.Alloc("rob", name("rob.inst", i), 32)
		r.robPC[i] = s.Alloc("rob", name("rob.pc", i), 32)
		r.robDone[i] = s.Alloc("rob", name("rob.done", i), 1)
		r.robExc[i] = s.Alloc("rob", name("rob.exc", i), 2)
		r.robVal[i] = s.Alloc("rob", name("rob.val", i), 32)
		r.robFlags[i] = s.Alloc("rob", name("rob.flags", i), 3)
		r.robPTgt[i] = s.Alloc("rob", name("rob.ptgt", i), 32)
	}

	for i := 0; i < IQSize; i++ {
		r.iqValid[i] = s.Alloc("sched", name("sched0.valid", i), 1)
		r.iqInst[i] = s.Alloc("sched", name("sched0.inst.array.reg", i), 32)
		r.iqRob[i] = s.Alloc("sched", name("sched0.rob", i), 6)
		r.iqS1Tag[i] = s.Alloc("sched", name("sched0.s1tag", i), 6)
		r.iqS1Rdy[i] = s.Alloc("sched", name("sched0.s1rdy", i), 1)
		r.iqS1Val[i] = s.Alloc("sched", name("sched0.s1val", i), 32)
		r.iqS2Tag[i] = s.Alloc("sched", name("sched0.s2tag", i), 6)
		r.iqS2Rdy[i] = s.Alloc("sched", name("sched0.s2rdy", i), 1)
		r.iqS2Val[i] = s.Alloc("sched", name("sched0.s2val", i), 32)
	}

	r.sqHead = s.Alloc("stq", "mem.stq.head.reg", 3)
	r.sqTail = s.Alloc("stq", "mem.stq.tail.reg", 3)
	r.sqCount = s.Alloc("stq", "mem.stq.count.reg", 4)
	for i := 0; i < SQSize; i++ {
		r.sqValid[i] = s.Alloc("stq", name("mem.stq.valid", i), 1)
		r.sqRob[i] = s.Alloc("stq", name("mem.stq.rob", i), 6)
		r.sqAddr[i] = s.Alloc("stq", name("mem.stq.address", i), 32)
		r.sqData[i] = s.Alloc("stq", name("mem.stq.data", i), 32)
		r.sqDone[i] = s.Alloc("stq", name("mem.stq.done", i), 1)
	}

	r.ldValid = s.Alloc("l1dcache", "mem.l1dcache.access.valid", 1)
	r.ldRob = s.Alloc("l1dcache", "mem.l1dcache.access.rob", 6)
	r.ldAddr = s.Alloc("l1dcache", "mem.l1dcache.accessaddr0.reg", 32)
	r.ldCnt = s.Alloc("l1dcache", "mem.l1dcache.access.cnt", 4)
	r.ldData = s.Alloc("l1dcache", "mem.l1dcache.accessfulldata0.reg", 32)
	for i := 0; i < 4; i++ {
		r.ldAddrIn[i] = s.Alloc("l1dcache", name("mem.l1dcache.addr.in", i), 32)
		r.ldDataIn[i] = s.Alloc("l1dcache", name("mem.l1dcache.data.in", i), 32)
	}
	for i := 0; i < 2; i++ {
		r.ldAddrOut[i] = s.Alloc("l1dcache", name("mem.l1dcache.addr.out", i), 32)
	}

	mu := [4]string{"a01", "a12", "a23", "a34"}
	mb := [4]string{"b01", "b12", "b23", "b34"}
	for i := 0; i < 4; i++ {
		r.muA[i] = s.Alloc("mul", "exec.mu0."+mu[i], 32)
		r.muB[i] = s.Alloc("mul", "exec.mu0."+mb[i], 32)
		r.muV[i] = s.Alloc("mul", name("exec.mu0.i", i), 1)
		r.muRob[i] = s.Alloc("mul", name("exec.mu0.rob", i), 6)
		r.muHi[i] = s.Alloc("mul", name("exec.mu0.hi", i), 1)
	}

	r.caBr = s.Alloc("branchunit", "exec.ca0.br", 1)
	for i := 0; i < 3; i++ {
		r.caP[i] = s.Alloc("branchunit", name("exec.ca0.p", i), 32)
	}

	for i := 0; i < 6; i++ {
		r.rrEx[i] = s.Alloc("bypass", name("regs.rr.ex.i", i), 32)
		r.exWb[i] = s.Alloc("bypass", name("regs.ex.wb.i", i), 32)
	}
	for i := 0; i < 8; i++ {
		r.wbRet[i] = s.Alloc("bypass", name("regs.wb.wb.ret", i+1), 32)
	}
}

func name(base string, i int) string {
	// small, allocation-light integer suffix
	if i < 10 {
		return base + string(rune('0'+i))
	}
	return base + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// NewSpace builds the OoO core's flip-flop space.
func NewSpace() *ff.Space {
	s := ff.NewSpace()
	var r regs
	allocInto(s, &r)
	s.Freeze()
	return s
}

var sharedSpace = NewSpace()
var sharedRegs = func() regs {
	s := ff.NewSpace()
	var r regs
	allocInto(s, &r)
	return r
}()

// Space returns the OoO core's flip-flop space (shared across instances).
func Space() *ff.Space { return sharedSpace }
