package ooo

import (
	"testing"

	"clear/internal/isa"
)

// TestSnapshotRestoreRoundTrip snapshots mid-run (with loads, stores,
// branches and the multiplier in flight), finishes, restores, and requires
// the replayed future — including predictor-dependent timing — to be
// cycle-for-cycle identical.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	data := []uint32{3, 5, 7, 9}
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 60)
	b.Label("loop")
	b.Lw(4, 1, 0)
	b.Mul(5, 4, 4)
	b.Add(2, 2, 5)
	b.Sw(2, 0, 8)
	b.Addi(1, 1, 1)
	b.Andi(1, 1, 3)
	b.Addi(3, 3, -1)
	b.Bne(3, 0, "loop")
	b.Out(2)
	b.Halt()
	p := mustProg(t, "ckpt", b, data, 32)

	c := New(p)
	for i := 0; i < 120; i++ {
		c.Step()
	}
	ck := c.Snapshot()
	if !c.Matches(ck) {
		t.Fatal("fresh snapshot does not match its own core")
	}
	r1 := c.Run(5_000_000)
	cyc1 := c.Cycles()

	c.Restore(ck)
	if !c.Matches(ck) {
		t.Fatal("restored core does not match the checkpoint")
	}
	r2 := c.Run(5_000_000)
	if r1.Status != r2.Status || r1.Steps != r2.Steps || c.Cycles() != cyc1 {
		t.Fatalf("replay diverged: %+v vs %+v", r1, r2)
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatalf("output[%d] diverged", i)
		}
	}
}

// TestMatchesDetectsDivergence requires Matches to catch flip-flop,
// predictor-SRAM and cycle-counter differences.
func TestMatchesDetectsDivergence(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(3, 50)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Bne(1, 3, "loop")
	b.Out(1)
	b.Halt()
	p := mustProg(t, "ckpt2", b, nil, 16)

	c := New(p)
	for i := 0; i < 40; i++ {
		c.Step()
	}
	ck := c.Snapshot()
	c.State().FlipBit(11)
	if c.Matches(ck) {
		t.Fatal("Matches missed a flipped flip-flop")
	}
	c.State().FlipBit(11)
	if !c.Matches(ck) {
		t.Fatal("Matches false negative after undoing the flip")
	}
	c.gshare[5] ^= 1
	if c.Matches(ck) {
		t.Fatal("Matches missed a predictor-SRAM difference")
	}
	c.Restore(ck)
	c.Step()
	if c.Matches(ck) {
		t.Fatal("Matches missed a cycle-count difference")
	}
}
