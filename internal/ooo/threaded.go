package ooo

import (
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/tcode"
)

// This file holds the compiled-execution twins of every stage in core.go:
// the same machine, cycle for cycle and bit for bit, with every isa.Decode
// call and execute switch replaced by a pre-translated tcode.DInst lookup,
// and every ROB/IQ/SQ/rename/latch access running on the unpacked mirror
// (unpacked.go) instead of the packed bit array — packed state is
// materialized only at observation points. The interpreter in core.go is
// deliberately left untouched so the two paths stay independently checkable
// (FuzzThreadedEquivalence pins them to each other) and `-compiled=false`
// falls back to genuinely different code.

// dec returns the translation of instruction word w that the machine
// associates with pc. Uncorrupted program text hits the per-PC table;
// everything else compiles through the core's decode cache. Both are pure
// functions of w, so corrupted words decode exactly as under isa.Decode.
func (c *Core) dec(pc, w uint32) *tcode.DInst {
	if d := c.tp.AtPC(pc, w); d != nil {
		return d
	}
	return c.dcache.Decode(w)
}

// stepThreaded advances the machine one clock cycle on the unpacked latch
// mirror, mirroring Step unit for unit.
func (c *Core) stepThreaded() {
	if c.done {
		return
	}
	if !c.uValid {
		c.unpackU()
		c.uValid = true
	}
	c.cycles++
	c.commitU()
	if c.done {
		return
	}
	c.loadUnitTickU()
	c.mulPipeTickU()
	c.executeU()
	c.dispatchU()
	c.fetchU()
}

// commitU is the compiled twin of commit.
func (c *Core) commitU() {
	u := &c.u
	for n := 0; n < CommitWidth; n++ {
		count := u.robCount
		if count == 0 {
			return
		}
		head := u.robHead % RobSize
		if u.robDone[head] == 0 {
			return
		}
		c.retired++
		if u.robExc[head] != 0 {
			c.done = true
			c.status = prog.StatusTrap
			return
		}
		word := uint32(u.robInst[head])
		pc := uint32(u.robPC[head])
		d := c.dec(pc, word)
		val := uint32(u.robVal[head])
		flags := u.robFlags[head]
		var addr, storeVal uint32
		switch {
		case d.In.Op == isa.HALT:
			c.done = true
			c.status = prog.StatusHalted
			return
		case d.In.Op == isa.TRAPD:
			c.done = true
			c.status = prog.StatusDetected
			return
		case d.In.Op == isa.OUT:
			c.out = append(c.out, val)
		case flags&1 != 0: // store: drain the store queue into memory
			sqh := u.sqHead % SQSize
			if u.sqValid[sqh] == 1 && u.sqRob[sqh] == head {
				addr = uint32(u.sqAddr[sqh])
				storeVal = uint32(u.sqData[sqh])
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					c.done = true
					c.status = prog.StatusTrap
					return
				}
				c.mem[int32(addr)] = storeVal
				u.sqValid[sqh] = 0
				u.sqHead = (sqh + 1) % SQSize
				if u.sqCount > 0 {
					u.sqCount--
				}
			}
		default:
			if d.Valid && d.WritesReg && d.In.Rd != 0 {
				c.arf[d.In.Rd] = val
				// release the rename mapping if it still points here
				if m := u.rat[d.In.Rd]; m&0x40 != 0 && m&0x3F == head {
					u.rat[d.In.Rd] = 0
				}
			}
		}
		// retire the entry
		u.robHead = (head + 1) % RobSize
		u.robCount = count - 1
		// architecturally-inert retirement staging registers
		u.wbRet[int(head)%8] = uint64(val)
		if c.hook != nil {
			ev := sim.CommitEvent{PC: pc, Word: word,
				Result: val, StoreVal: storeVal, Addr: addr}
			if c.hook(ev) {
				c.done = true
				c.status = prog.StatusDetected
				return
			}
		}
	}
}

// broadcastU is the compiled twin of broadcast.
func (c *Core) broadcastU(tag uint64, val uint32) {
	u := &c.u
	for i := 0; i < IQSize; i++ {
		if u.iqValid[i] == 0 {
			continue
		}
		if u.iqS1Rdy[i] == 0 && u.iqS1Tag[i] == tag {
			u.iqS1Val[i] = uint64(val)
			u.iqS1Rdy[i] = 1
		}
		if u.iqS2Rdy[i] == 0 && u.iqS2Tag[i] == tag {
			u.iqS2Val[i] = uint64(val)
			u.iqS2Rdy[i] = 1
		}
	}
}

// completeU is the compiled twin of complete.
func (c *Core) completeU(tag uint64, val uint32) {
	u := &c.u
	tag %= RobSize
	u.robVal[tag] = uint64(val)
	u.robDone[tag] = 1
	c.broadcastU(tag, val)
	// bypass staging churn (architecturally inert)
	u.exWb[int(tag)%6] = uint64(val)
}

// loadUnitTickU is the compiled twin of loadUnitTick.
func (c *Core) loadUnitTickU() {
	u := &c.u
	if u.ldValid == 0 {
		return
	}
	if cnt := u.ldCnt; cnt > 0 {
		u.ldCnt = cnt - 1
		return
	}
	addr := uint32(u.ldAddr)
	var data uint32
	if int(int32(addr)) >= 0 && int(int32(addr)) < len(c.mem) {
		data = c.mem[int32(addr)]
	}
	u.ldData = uint64(data)
	u.ldDataIn[int(addr)%4] = uint64(data)
	c.completeU(u.ldRob, data)
	u.ldValid = 0
}

// mulPipeTickU is the compiled twin of mulPipeTick.
func (c *Core) mulPipeTickU() {
	u := &c.u
	// retire from the last stage
	if u.muV[3] == 1 {
		a := uint32(u.muA[3])
		b := uint32(u.muB[3])
		p := int64(int32(a)) * int64(int32(b))
		var val uint32
		if u.muHi[3] == 1 {
			val = uint32(uint64(p) >> 32)
		} else {
			val = uint32(p)
		}
		c.completeU(u.muRob[3], val)
		u.muV[3] = 0
	}
	// shift earlier stages forward
	for i := 3; i > 0; i-- {
		if u.muV[i-1] == 1 && u.muV[i] == 0 {
			u.muA[i] = u.muA[i-1]
			u.muB[i] = u.muB[i-1]
			u.muRob[i] = u.muRob[i-1]
			u.muHi[i] = u.muHi[i-1]
			u.muV[i] = 1
			u.muV[i-1] = 0
		}
	}
}

// executeU is the compiled twin of execute.
func (c *Core) executeU() {
	u := &c.u
	head := u.robHead % RobSize

	// Oldest-first select of ready entries.
	var ready [IQSize]readyEntry
	nReady := 0
	for i := 0; i < IQSize; i++ {
		if u.iqValid[i] == 0 {
			continue
		}
		if u.iqS1Rdy[i] == 0 || u.iqS2Rdy[i] == 0 {
			continue
		}
		ready[nReady] = readyEntry{iq: i, age: c.age(head, u.iqRob[i]%RobSize)}
		nReady++
	}
	// insertion sort by age (nReady <= 16)
	for i := 1; i < nReady; i++ {
		for j := i; j > 0 && ready[j].age < ready[j-1].age; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}

	issued := 0
	loadPortBusy := u.ldValid == 1
	mulPortBusy := u.muV[0] == 1
	for k := 0; k < nReady && issued < IssueWidth; k++ {
		i := ready[k].iq
		word := uint32(u.iqInst[i])
		tag := u.iqRob[i] % RobSize
		d := c.dec(uint32(u.robPC[tag]), word)
		s1 := uint32(u.iqS1Val[i])
		s2 := uint32(u.iqS2Val[i])

		switch {
		case d.In.Op == isa.LW:
			if loadPortBusy {
				continue // structural hazard: try again next cycle
			}
			if !c.tryIssueLoadU(i, tag, d.In.Imm, s1, head) {
				continue
			}
			loadPortBusy = true
		case d.In.Op == isa.MUL || d.In.Op == isa.MULH:
			if mulPortBusy {
				continue
			}
			u.muA[0] = uint64(s1)
			u.muB[0] = uint64(s2)
			u.muRob[0] = tag
			if d.In.Op == isa.MULH {
				u.muHi[0] = 1
			} else {
				u.muHi[0] = 0
			}
			u.muV[0] = 1
			mulPortBusy = true
			u.iqValid[i] = 0
		case d.In.Op == isa.SW:
			addr := uint32(int32(s1) + d.In.Imm)
			if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
				u.robExc[tag] = 1
			}
			// fill this store's queue entry
			for q := 0; q < SQSize; q++ {
				if u.sqValid[q] == 1 && u.sqRob[q] == tag && u.sqDone[q] == 0 {
					u.sqAddr[q] = uint64(addr)
					u.sqData[q] = uint64(s2)
					u.sqDone[q] = 1
					break
				}
			}
			c.completeU(tag, addr)
			u.iqValid[i] = 0
		case d.IsControl:
			c.executeBranchU(i, tag, d, s1, s2)
			// executeBranchU may squash the whole window, including our
			// ready list; stop selecting this cycle.
			issued++
			if u.iqValid[i] == 1 {
				u.iqValid[i] = 0
			}
			return
		default:
			val, exc := d.ALU(s1, s2)
			if exc {
				u.robExc[tag] = 1
				u.robDone[tag] = 1
			} else {
				c.completeU(tag, val)
			}
			u.iqValid[i] = 0
			u.rrEx[i%6] = uint64(val)
		}
		issued++
	}
}

// tryIssueLoadU is the compiled twin of tryIssueLoad; imm is the load's
// pre-decoded immediate.
func (c *Core) tryIssueLoadU(iq int, tag uint64, imm int32, s1 uint32, head uint64) bool {
	u := &c.u
	loadAge := c.age(head, tag)
	// memory-ordering check: any older store not yet executed blocks us
	for a := uint64(0); a < loadAge; a++ {
		idx := (head + a) % RobSize
		if u.robFlags[idx]&1 != 0 && u.robDone[idx] == 0 {
			return false
		}
	}
	addr := uint32(int32(s1) + imm)
	u.ldAddrIn[int(addr)%4] = uint64(addr)
	if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
		u.robExc[tag] = 1
		u.robDone[tag] = 1
		u.iqValid[iq] = 0
		return true
	}
	// store-to-load forwarding: youngest older store to the same address
	bestAge := uint64(RobSize)
	var bestData uint32
	found := false
	for q := 0; q < SQSize; q++ {
		if u.sqValid[q] == 0 || u.sqDone[q] == 0 {
			continue
		}
		sAge := c.age(head, u.sqRob[q]%RobSize)
		if sAge >= loadAge {
			continue
		}
		if uint32(u.sqAddr[q]) == addr {
			// youngest older = largest age below loadAge
			if !found || sAge > bestAge || (bestAge == uint64(RobSize)) {
				if !found || sAge > bestAge {
					bestAge = sAge
					bestData = uint32(u.sqData[q])
				}
				found = true
			}
		}
	}
	if found {
		c.completeU(tag, bestData)
		u.iqValid[iq] = 0
		return true
	}
	// cache access with variable latency
	line := (addr >> 2) % CacheLines
	blk := addr >> 2
	lat := uint64(MissLatency)
	if c.cacheVld[line] && c.cacheTag[line] == blk {
		lat = HitLatency
	} else {
		c.cacheVld[line] = true
		c.cacheTag[line] = blk
	}
	u.ldValid = 1
	u.ldRob = tag
	u.ldAddr = uint64(addr)
	u.ldCnt = lat
	u.ldAddrOut[int(line)%2] = uint64(addr)
	u.iqValid[iq] = 0
	return true
}

// executeBranchU is the compiled twin of executeBranch.
func (c *Core) executeBranchU(iq int, tag uint64, d *tcode.DInst, s1, s2 uint32) {
	u := &c.u
	pc := uint32(u.robPC[tag])
	taken, target := d.Br(s1, s2, pc)
	link := pc + 1

	// result value (link for jumps)
	var val uint32
	if d.IsJump {
		val = link
	}
	c.completeU(tag, val)
	u.iqValid[iq] = 0
	u.caBr = b2u(taken)
	u.caP[0] = uint64(target)

	// predictor updates (performance-only state)
	if d.IsBranch {
		h := (uint64(pc) ^ u.lhist) % gshareSize
		ctr := c.gshare[h]
		if taken && ctr < 3 {
			c.gshare[h] = ctr + 1
		} else if !taken && ctr > 0 {
			c.gshare[h] = ctr - 1
		}
		// the packed field is 12 bits wide; mask the shift register exactly
		// as ff.Field.Set truncates it on the interpreter path
		u.lhist = (u.lhist<<1 | b2u(taken)) & 0xFFF
	}
	if taken {
		c.btbTag[pc%btbSize] = pc
		c.btbTgt[pc%btbSize] = target
		c.btbValid[pc%btbSize] = true
		u.takenAddr = uint64(target)
	}

	predTaken := u.robFlags[tag]&4 != 0
	predTgt := uint32(u.robPTgt[tag])
	mispredict := taken != predTaken || (taken && target != predTgt)
	if !mispredict {
		return
	}

	// ---- squash everything younger than the branch ----
	head := u.robHead % RobSize
	bAge := c.age(head, tag)
	u.robTail = (tag + 1) % RobSize
	u.robCount = bAge + 1
	// issue queue
	for i := 0; i < IQSize; i++ {
		if u.iqValid[i] == 1 && c.age(head, u.iqRob[i]%RobSize) > bAge {
			u.iqValid[i] = 0
		}
	}
	// store queue: pop younger entries from the tail
	for u.sqCount > 0 {
		t := (u.sqTail + SQSize - 1) % SQSize
		if u.sqValid[t] == 1 && c.age(head, u.sqRob[t]%RobSize) > bAge {
			u.sqValid[t] = 0
			u.sqTail = t
			u.sqCount--
		} else {
			break
		}
	}
	// in-flight load
	if u.ldValid == 1 && c.age(head, u.ldRob%RobSize) > bAge {
		u.ldValid = 0
	}
	// multiplier pipeline
	for i := 0; i < 4; i++ {
		if u.muV[i] == 1 && c.age(head, u.muRob[i]%RobSize) > bAge {
			u.muV[i] = 0
		}
	}
	// rebuild the rename table from the surviving window
	for a := 0; a < 32; a++ {
		u.rat[a] = 0
	}
	for a := uint64(0); a <= bAge; a++ {
		idx := (head + a) % RobSize
		wd := c.dec(uint32(u.robPC[idx]), uint32(u.robInst[idx]))
		if wd.Valid && wd.WritesReg && wd.In.Rd != 0 {
			u.rat[wd.In.Rd] = 0x40 | idx
		}
	}
	// flush the fetch buffer and redirect
	u.fbHead = 0
	u.fbTail = 0
	u.fbCount = 0
	var next uint32
	if taken {
		next = target
	} else {
		next = pc + 1
	}
	u.pc = uint64(next)
}

// dispatchU is the compiled twin of dispatch.
func (c *Core) dispatchU() {
	u := &c.u
	for n := 0; n < FetchWidth; n++ {
		if u.fbCount == 0 {
			return
		}
		if u.robCount >= RobSize {
			return
		}
		fh := u.fbHead % FBSize
		word := uint32(u.fbInst[fh])
		pcv := u.fbPC[fh]
		d := c.dec(uint32(pcv), word)

		needIQ := d.Valid && d.In.Op != isa.NOP && d.In.Op != isa.HALT && d.In.Op != isa.TRAPD
		if needIQ {
			if c.freeIQU() < 0 {
				return
			}
			if d.In.Op == isa.SW && u.sqCount >= SQSize {
				return
			}
		}

		// allocate ROB entry
		tail := u.robTail % RobSize
		u.robInst[tail] = uint64(word)
		u.robPC[tail] = pcv
		u.robVal[tail] = 0
		var flags uint64
		if d.In.Op == isa.SW {
			flags |= 1
		}
		if d.IsControl {
			flags |= 2
			if u.fbPred[fh] == 1 {
				flags |= 4
			}
			u.robPTgt[tail] = u.fbPTgt[fh]
		}
		u.robFlags[tail] = flags

		if !d.Valid {
			u.robExc[tail] = 1
			u.robDone[tail] = 1
		} else if !needIQ {
			u.robExc[tail] = 0
			u.robDone[tail] = 1
		} else {
			u.robExc[tail] = 0
			u.robDone[tail] = 0
			iq := c.freeIQU()
			u.iqValid[iq] = 1
			u.iqInst[iq] = uint64(word)
			u.iqRob[iq] = tail
			c.renameSourceU(iq, 0, d)
			c.renameSourceU(iq, 1, d)
			if d.In.Op == isa.SW {
				// allocate a store-queue slot in program order
				sqt := u.sqTail % SQSize
				u.sqValid[sqt] = 1
				u.sqRob[sqt] = tail
				u.sqDone[sqt] = 0
				u.sqTail = (sqt + 1) % SQSize
				u.sqCount++
			}
		}

		// rename destination
		if d.Valid && d.WritesReg && d.In.Rd != 0 {
			u.rat[d.In.Rd] = 0x40 | tail
		}

		u.robTail = (tail + 1) % RobSize
		u.robCount++
		u.fbHead = (fh + 1) % FBSize
		u.fbCount--
	}
}

// renameSourceU is the compiled twin of renameSource.
func (c *Core) renameSourceU(iq, k int, d *tcode.DInst) {
	u := &c.u
	var reg uint8
	var used bool
	if k == 0 {
		reg, used = d.In.Rs1, d.NeedsRs1
	} else {
		reg, used = d.In.Rs2, d.NeedsRs2
	}
	var tagV, rdyV, valV uint64
	setSlot := func() {
		if k == 0 {
			u.iqS1Tag[iq], u.iqS1Rdy[iq], u.iqS1Val[iq] = tagV, rdyV, valV
		} else {
			u.iqS2Tag[iq], u.iqS2Rdy[iq], u.iqS2Val[iq] = tagV, rdyV, valV
		}
	}
	// the interpreter leaves the tag slot untouched on the ready paths;
	// preserve the stale tag bits so the packed layouts stay identical
	if k == 0 {
		tagV = u.iqS1Tag[iq]
	} else {
		tagV = u.iqS2Tag[iq]
	}
	if !used || reg == 0 {
		rdyV = 1
		valV = uint64(c.arf[reg&31])
		if reg == 0 {
			valV = 0
		}
		setSlot()
		return
	}
	m := u.rat[reg]
	if m&0x40 == 0 {
		valV = uint64(c.arf[reg])
		rdyV = 1
		setSlot()
		return
	}
	t := m & 0x3F % RobSize
	if u.robDone[t] == 1 && u.robExc[t] == 0 {
		valV = u.robVal[t]
		rdyV = 1
		setSlot()
		return
	}
	tagV = t
	rdyV = 0
	valV = 0
	setSlot()
}

// freeIQU is the compiled twin of freeIQ.
func (c *Core) freeIQU() int {
	for i := 0; i < IQSize; i++ {
		if c.u.iqValid[i] == 0 {
			return i
		}
	}
	return -1
}

// fetchU is the compiled twin of fetch.
func (c *Core) fetchU() {
	u := &c.u
	for n := 0; n < FetchWidth; n++ {
		if u.fbCount >= FBSize {
			return
		}
		pc := uint32(u.pc)
		var word uint32 = illegalWord
		if int(pc) < len(c.program.Words) {
			word = c.program.Words[pc]
		}
		// branch prediction: BTB hit + gshare direction
		predTaken := false
		var predTgt uint32
		bi := pc % btbSize
		if c.btbValid[bi] && c.btbTag[bi] == pc {
			h := (uint64(pc) ^ u.lhist) % gshareSize
			d := c.dec(pc, word)
			if d.IsJump || c.gshare[h] >= 2 {
				predTaken = true
				predTgt = c.btbTgt[bi]
			}
		}
		ft := u.fbTail % FBSize
		u.fbInst[ft] = uint64(word)
		u.fbPC[ft] = uint64(pc)
		u.fbPred[ft] = b2u(predTaken)
		u.fbPTgt[ft] = uint64(predTgt)
		u.fbTail = (ft + 1) % FBSize
		u.fbCount++
		if predTaken {
			u.pc = uint64(predTgt)
			return // redirected: stop fetching this cycle
		}
		u.pc = uint64(pc + 1)
	}
}
