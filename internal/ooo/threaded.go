package ooo

import (
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/tcode"
)

// This file holds the compiled-execution twins of the decode-bearing stages
// in core.go (commit, execute, dispatch, fetch): the same machine, cycle
// for cycle and bit for bit, with every isa.Decode call and execute switch
// replaced by a pre-translated tcode.DInst lookup. The decode-free units
// (loadUnitTick, mulPipeTick, tryIssueLoad, broadcast/complete, freeIQ) are
// shared with the interpreter, which stays untouched so the two paths
// remain independently checkable.

// dec returns the translation of instruction word w that the machine
// associates with pc. Uncorrupted program text hits the per-PC table;
// everything else compiles through the core's decode cache. Both are pure
// functions of w, so corrupted words decode exactly as under isa.Decode.
func (c *Core) dec(pc, w uint32) *tcode.DInst {
	if d := c.tp.AtPC(pc, w); d != nil {
		return d
	}
	return c.dcache.Decode(w)
}

// commitT is the threaded twin of commit.
func (c *Core) commitT() {
	st := c.st
	r := &c.r
	for n := 0; n < CommitWidth; n++ {
		count := r.robCount.Get(st)
		if count == 0 {
			return
		}
		head := r.robHead.Get(st) % RobSize
		if r.robDone[head].Get(st) == 0 {
			return
		}
		c.retired++
		if r.robExc[head].Get(st) != 0 {
			c.done = true
			c.status = prog.StatusTrap
			return
		}
		word := uint32(r.robInst[head].Get(st))
		pc := uint32(r.robPC[head].Get(st))
		d := c.dec(pc, word)
		val := uint32(r.robVal[head].Get(st))
		flags := r.robFlags[head].Get(st)
		var addr, storeVal uint32
		switch {
		case d.In.Op == isa.HALT:
			c.done = true
			c.status = prog.StatusHalted
			return
		case d.In.Op == isa.TRAPD:
			c.done = true
			c.status = prog.StatusDetected
			return
		case d.In.Op == isa.OUT:
			c.out = append(c.out, val)
		case flags&1 != 0: // store: drain the store queue into memory
			sqh := r.sqHead.Get(st) % SQSize
			if r.sqValid[sqh].Get(st) == 1 && r.sqRob[sqh].Get(st) == head {
				addr = uint32(r.sqAddr[sqh].Get(st))
				storeVal = uint32(r.sqData[sqh].Get(st))
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					c.done = true
					c.status = prog.StatusTrap
					return
				}
				c.mem[int32(addr)] = storeVal
				r.sqValid[sqh].Set(st, 0)
				r.sqHead.Set(st, (sqh+1)%SQSize)
				if cnt := r.sqCount.Get(st); cnt > 0 {
					r.sqCount.Set(st, cnt-1)
				}
			}
		default:
			if d.Valid && d.WritesReg && d.In.Rd != 0 {
				c.arf[d.In.Rd] = val
				// release the rename mapping if it still points here
				m := r.rat[d.In.Rd].Get(st)
				if m&0x40 != 0 && m&0x3F == head {
					r.rat[d.In.Rd].Set(st, 0)
				}
			}
		}
		// retire the entry
		r.robHead.Set(st, (head+1)%RobSize)
		r.robCount.Set(st, count-1)
		// architecturally-inert retirement staging registers
		r.wbRet[int(head)%8].Set(st, uint64(val))
		if c.hook != nil {
			ev := sim.CommitEvent{PC: pc, Word: word,
				Result: val, StoreVal: storeVal, Addr: addr}
			if c.hook(ev) {
				c.done = true
				c.status = prog.StatusDetected
				return
			}
		}
	}
}

// executeT is the threaded twin of execute.
func (c *Core) executeT() {
	st := c.st
	r := &c.r
	head := r.robHead.Get(st) % RobSize

	// Oldest-first select of ready entries.
	var ready [IQSize]readyEntry
	nReady := 0
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 0 {
			continue
		}
		if r.iqS1Rdy[i].Get(st) == 0 || r.iqS2Rdy[i].Get(st) == 0 {
			continue
		}
		ready[nReady] = readyEntry{iq: i, age: c.age(head, r.iqRob[i].Get(st)%RobSize)}
		nReady++
	}
	// insertion sort by age (nReady <= 16)
	for i := 1; i < nReady; i++ {
		for j := i; j > 0 && ready[j].age < ready[j-1].age; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}

	issued := 0
	loadPortBusy := r.ldValid.Get(st) == 1
	mulPortBusy := r.muV[0].Get(st) == 1
	for k := 0; k < nReady && issued < IssueWidth; k++ {
		i := ready[k].iq
		word := uint32(r.iqInst[i].Get(st))
		tag := r.iqRob[i].Get(st) % RobSize
		d := c.dec(uint32(r.robPC[tag].Get(st)), word)
		s1 := uint32(r.iqS1Val[i].Get(st))
		s2 := uint32(r.iqS2Val[i].Get(st))

		switch {
		case d.In.Op == isa.LW:
			if loadPortBusy {
				continue // structural hazard: try again next cycle
			}
			if !c.tryIssueLoad(i, tag, d.In, s1, head) {
				continue
			}
			loadPortBusy = true
		case d.In.Op == isa.MUL || d.In.Op == isa.MULH:
			if mulPortBusy {
				continue
			}
			r.muA[0].Set(st, uint64(s1))
			r.muB[0].Set(st, uint64(s2))
			r.muRob[0].Set(st, tag)
			if d.In.Op == isa.MULH {
				r.muHi[0].Set(st, 1)
			} else {
				r.muHi[0].Set(st, 0)
			}
			r.muV[0].Set(st, 1)
			mulPortBusy = true
			r.iqValid[i].Set(st, 0)
		case d.In.Op == isa.SW:
			addr := uint32(int32(s1) + d.In.Imm)
			if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
				r.robExc[tag].Set(st, 1)
			}
			// fill this store's queue entry
			for q := 0; q < SQSize; q++ {
				if r.sqValid[q].Get(st) == 1 && r.sqRob[q].Get(st) == tag && r.sqDone[q].Get(st) == 0 {
					r.sqAddr[q].Set(st, uint64(addr))
					r.sqData[q].Set(st, uint64(s2))
					r.sqDone[q].Set(st, 1)
					break
				}
			}
			c.complete(tag, addr)
			r.iqValid[i].Set(st, 0)
		case d.IsControl:
			c.executeBranchT(i, tag, d, s1, s2)
			// executeBranchT may squash the whole window, including our
			// ready list; stop selecting this cycle.
			issued++
			if r.iqValid[i].Get(st) == 1 {
				r.iqValid[i].Set(st, 0)
			}
			return
		default:
			val, exc := d.ALU(s1, s2)
			if exc {
				r.robExc[tag].Set(st, 1)
				r.robDone[tag].Set(st, 1)
			} else {
				c.complete(tag, val)
			}
			r.iqValid[i].Set(st, 0)
			r.rrEx[i%6].Set(st, uint64(val))
		}
		issued++
	}
}

// executeBranchT is the threaded twin of executeBranch.
func (c *Core) executeBranchT(iq int, tag uint64, d *tcode.DInst, s1, s2 uint32) {
	st := c.st
	r := &c.r
	pc := uint32(r.robPC[tag].Get(st))
	taken, target := d.Br(s1, s2, pc)
	link := pc + 1

	// result value (link for jumps)
	var val uint32
	if d.IsJump {
		val = link
	}
	c.complete(tag, val)
	r.iqValid[iq].Set(st, 0)
	r.caBr.Set(st, b2u(taken))
	r.caP[0].Set(st, uint64(target))

	// predictor updates (performance-only state)
	if d.IsBranch {
		h := (uint64(pc) ^ r.lhist.Get(st)) % gshareSize
		ctr := c.gshare[h]
		if taken && ctr < 3 {
			c.gshare[h] = ctr + 1
		} else if !taken && ctr > 0 {
			c.gshare[h] = ctr - 1
		}
		r.lhist.Set(st, r.lhist.Get(st)<<1|b2u(taken))
	}
	if taken {
		c.btbTag[pc%btbSize] = pc
		c.btbTgt[pc%btbSize] = target
		c.btbValid[pc%btbSize] = true
		r.takenAddr.Set(st, uint64(target))
	}

	predTaken := r.robFlags[tag].Get(st)&4 != 0
	predTgt := uint32(r.robPTgt[tag].Get(st))
	mispredict := taken != predTaken || (taken && target != predTgt)
	if !mispredict {
		return
	}

	// ---- squash everything younger than the branch ----
	head := r.robHead.Get(st) % RobSize
	bAge := c.age(head, tag)
	r.robTail.Set(st, (tag+1)%RobSize)
	r.robCount.Set(st, bAge+1)
	// issue queue
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 1 && c.age(head, r.iqRob[i].Get(st)%RobSize) > bAge {
			r.iqValid[i].Set(st, 0)
		}
	}
	// store queue: pop younger entries from the tail
	for r.sqCount.Get(st) > 0 {
		t := (r.sqTail.Get(st) + SQSize - 1) % SQSize
		if r.sqValid[t].Get(st) == 1 && c.age(head, r.sqRob[t].Get(st)%RobSize) > bAge {
			r.sqValid[t].Set(st, 0)
			r.sqTail.Set(st, t)
			r.sqCount.Set(st, r.sqCount.Get(st)-1)
		} else {
			break
		}
	}
	// in-flight load
	if r.ldValid.Get(st) == 1 && c.age(head, r.ldRob.Get(st)%RobSize) > bAge {
		r.ldValid.Set(st, 0)
	}
	// multiplier pipeline
	for i := 0; i < 4; i++ {
		if r.muV[i].Get(st) == 1 && c.age(head, r.muRob[i].Get(st)%RobSize) > bAge {
			r.muV[i].Set(st, 0)
		}
	}
	// rebuild the rename table from the surviving window
	for a := 0; a < 32; a++ {
		r.rat[a].Set(st, 0)
	}
	for a := uint64(0); a <= bAge; a++ {
		idx := (head + a) % RobSize
		wd := c.dec(uint32(r.robPC[idx].Get(st)), uint32(r.robInst[idx].Get(st)))
		if wd.Valid && wd.WritesReg && wd.In.Rd != 0 {
			r.rat[wd.In.Rd].Set(st, 0x40|idx)
		}
	}
	// flush the fetch buffer and redirect
	r.fbHead.Set(st, 0)
	r.fbTail.Set(st, 0)
	r.fbCount.Set(st, 0)
	var next uint32
	if taken {
		next = target
	} else {
		next = pc + 1
	}
	r.pc.Set(st, uint64(next))
}

// dispatchT is the threaded twin of dispatch.
func (c *Core) dispatchT() {
	st := c.st
	r := &c.r
	for n := 0; n < FetchWidth; n++ {
		if r.fbCount.Get(st) == 0 {
			return
		}
		if r.robCount.Get(st) >= RobSize {
			return
		}
		fh := r.fbHead.Get(st) % FBSize
		word := uint32(r.fbInst[fh].Get(st))
		pcv := r.fbPC[fh].Get(st)
		d := c.dec(uint32(pcv), word)

		needIQ := d.Valid && d.In.Op != isa.NOP && d.In.Op != isa.HALT && d.In.Op != isa.TRAPD
		if needIQ {
			if c.freeIQ() < 0 {
				return
			}
			if d.In.Op == isa.SW && r.sqCount.Get(st) >= SQSize {
				return
			}
		}

		// allocate ROB entry
		tail := r.robTail.Get(st) % RobSize
		r.robInst[tail].Set(st, uint64(word))
		r.robPC[tail].Set(st, pcv)
		r.robVal[tail].Set(st, 0)
		var flags uint64
		if d.In.Op == isa.SW {
			flags |= 1
		}
		if d.IsControl {
			flags |= 2
			if r.fbPred[fh].Get(st) == 1 {
				flags |= 4
			}
			r.robPTgt[tail].Set(st, r.fbPTgt[fh].Get(st))
		}
		r.robFlags[tail].Set(st, flags)

		if !d.Valid {
			r.robExc[tail].Set(st, 1)
			r.robDone[tail].Set(st, 1)
		} else if !needIQ {
			r.robExc[tail].Set(st, 0)
			r.robDone[tail].Set(st, 1)
		} else {
			r.robExc[tail].Set(st, 0)
			r.robDone[tail].Set(st, 0)
			iq := c.freeIQ()
			r.iqValid[iq].Set(st, 1)
			r.iqInst[iq].Set(st, uint64(word))
			r.iqRob[iq].Set(st, tail)
			c.renameSourceT(iq, 0, d)
			c.renameSourceT(iq, 1, d)
			if d.In.Op == isa.SW {
				// allocate a store-queue slot in program order
				sqt := r.sqTail.Get(st) % SQSize
				r.sqValid[sqt].Set(st, 1)
				r.sqRob[sqt].Set(st, tail)
				r.sqDone[sqt].Set(st, 0)
				r.sqTail.Set(st, (sqt+1)%SQSize)
				r.sqCount.Set(st, r.sqCount.Get(st)+1)
			}
		}

		// rename destination
		if d.Valid && d.WritesReg && d.In.Rd != 0 {
			r.rat[d.In.Rd].Set(st, 0x40|tail)
		}

		r.robTail.Set(st, (tail+1)%RobSize)
		r.robCount.Set(st, r.robCount.Get(st)+1)
		r.fbHead.Set(st, (fh+1)%FBSize)
		r.fbCount.Set(st, r.fbCount.Get(st)-1)
	}
}

// renameSourceT is the threaded twin of renameSource.
func (c *Core) renameSourceT(iq, k int, d *tcode.DInst) {
	st := c.st
	r := &c.r
	tagF, rdyF, valF := r.iqS1Tag[iq], r.iqS1Rdy[iq], r.iqS1Val[iq]
	if k == 1 {
		tagF, rdyF, valF = r.iqS2Tag[iq], r.iqS2Rdy[iq], r.iqS2Val[iq]
	}
	var reg uint8
	var used bool
	if k == 0 {
		reg, used = d.In.Rs1, d.NeedsRs1
	} else {
		reg, used = d.In.Rs2, d.NeedsRs2
	}
	if !used || reg == 0 {
		rdyF.Set(st, 1)
		valF.Set(st, uint64(c.arf[reg&31]))
		if reg == 0 {
			valF.Set(st, 0)
		}
		return
	}
	m := r.rat[reg].Get(st)
	if m&0x40 == 0 {
		valF.Set(st, uint64(c.arf[reg]))
		rdyF.Set(st, 1)
		return
	}
	t := m & 0x3F % RobSize
	if r.robDone[t].Get(st) == 1 && r.robExc[t].Get(st) == 0 {
		valF.Set(st, r.robVal[t].Get(st))
		rdyF.Set(st, 1)
		return
	}
	tagF.Set(st, t)
	rdyF.Set(st, 0)
	valF.Set(st, 0)
}

// fetchT is the threaded twin of fetch.
func (c *Core) fetchT() {
	st := c.st
	r := &c.r
	for n := 0; n < FetchWidth; n++ {
		if r.fbCount.Get(st) >= FBSize {
			return
		}
		pc := uint32(r.pc.Get(st))
		var word uint32 = illegalWord
		if int(pc) < len(c.program.Words) {
			word = c.program.Words[pc]
		}
		// branch prediction: BTB hit + gshare direction
		predTaken := false
		var predTgt uint32
		bi := pc % btbSize
		if c.btbValid[bi] && c.btbTag[bi] == pc {
			h := (uint64(pc) ^ r.lhist.Get(st)) % gshareSize
			d := c.dec(pc, word)
			if d.IsJump || c.gshare[h] >= 2 {
				predTaken = true
				predTgt = c.btbTgt[bi]
			}
		}
		ft := r.fbTail.Get(st) % FBSize
		r.fbInst[ft].Set(st, uint64(word))
		r.fbPC[ft].Set(st, uint64(pc))
		r.fbPred[ft].Set(st, b2u(predTaken))
		r.fbPTgt[ft].Set(st, uint64(predTgt))
		r.fbTail.Set(st, (ft+1)%FBSize)
		r.fbCount.Set(st, r.fbCount.Get(st)+1)
		if predTaken {
			r.pc.Set(st, uint64(predTgt))
			return // redirected: stop fetching this cycle
		}
		r.pc.Set(st, uint64(pc+1))
	}
}
