package ooo

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/prog"
)

func classify(t *testing.T, p *prog.Program, bit, cycle, nom int) string {
	t.Helper()
	c := New(p)
	for i := 0; i < cycle && !c.Done(); i++ {
		c.Step()
	}
	c.State().FlipBit(bit)
	res := c.Run(2 * nom)
	switch {
	case res.Status == prog.StatusHalted && p.OutputsEqual(res.Output):
		return "vanish"
	case res.Status == prog.StatusHalted:
		return "omm"
	case res.Status == prog.StatusTrap:
		return "ut"
	default:
		return "hang"
	}
}

// The Appendix-A analogue for the OoO core: bypass staging and cache
// staging registers are written every cycle and never read.
func TestAlwaysVanishStructures(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	for _, name := range []string{
		"regs.wb.wb.ret1", "regs.rr.ex.i0", "regs.ex.wb.i3",
		"exec.ca0.p0", "exec.ca0.p1",
		"mem.l1dcache.addr.in0", "mem.l1dcache.data.in2",
		"RF0.F1.takenAddress", "RF0.F1.ras.ret.inv",
	} {
		bits := Space().BitsOf(name)
		if bits == nil {
			t.Fatalf("missing structure %s", name)
		}
		for i := 0; i < len(bits); i += 8 {
			for _, cycle := range []int{nom / 5, nom / 2, 3 * nom / 4} {
				if got := classify(t, p, bits[i], cycle, nom); got != "vanish" {
					t.Fatalf("%s bit %d cycle %d: %s, want vanish", name, bits[i], cycle, got)
				}
			}
		}
	}
}

// Branch-predictor state is performance-only: corrupting the global
// history register must never change architectural results.
func TestPredictorStateIsPerformanceOnly(t *testing.T) {
	p := bench.ByName("parser").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	for _, bit := range Space().BitsOf("RF0.F1.lhist") {
		for _, cycle := range []int{nom / 4, nom / 2} {
			if got := classify(t, p, bit, cycle, nom); got != "vanish" {
				t.Fatalf("lhist bit %d cycle %d: %s — predictor corruption must vanish", bit, cycle, got)
			}
		}
	}
}

// Core bookkeeping structures must be genuinely vulnerable.
func TestVulnerableStructures(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	// Pointer structures are hot every cycle; data entries (rob.val*) have
	// narrow live windows and need denser sampling to observe.
	for _, tc := range []struct {
		name  string
		every int
	}{
		{"rob.head.reg", 13}, {"rob.tail.reg", 13}, {"RF0.PCreg", 13},
		{"rob.val5", 1},
	} {
		bits := Space().BitsOf(tc.name)
		bad := 0
		for cycle := 1; cycle < nom; cycle += tc.every {
			bit := bits[cycle%len(bits)]
			if classify(t, p, bit, cycle, nom) != "vanish" {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("%s: every injection vanished; expected vulnerability", tc.name)
		}
	}
}

// A corrupted ROB pointer must never crash the simulator itself — chaos is
// fine (hang/trap/OMM), a Go panic is not.
func TestCorruptionNeverPanics(t *testing.T) {
	p := bench.ByName("mcf").MustProgram()
	nom := New(p).Run(2_000_000).Steps
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("simulator panicked under corruption: %v", r)
		}
	}()
	targets := []string{"rob.head.reg", "rob.tail.reg", "rob.count.reg",
		"mem.stq.head.reg", "mem.stq.tail.reg", "RF1.F2.head", "RF1.F2.count",
		"sched0.rob0", "mem.l1dcache.access.rob"}
	for _, name := range targets {
		for _, bit := range Space().BitsOf(name) {
			classify(t, p, bit, nom/3, nom)
		}
	}
}
