package ooo

import (
	"clear/internal/ff"
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/tcode"
)

const illegalWord = 0xFFFFFFFF

// Core is an instance of the out-of-order core bound to a program.
type Core struct {
	space *ff.Space
	r     regs
	st    *ff.State

	program *prog.Program
	arf     [32]uint32 // architectural register file (RAM: not injected)
	mem     []uint32
	out     []uint32

	// predictor and cache metadata (SRAM structures: not injected)
	btbTag   [btbSize]uint32
	btbTgt   [btbSize]uint32
	btbValid [btbSize]bool
	gshare   [gshareSize]uint8
	cacheTag [CacheLines]uint32
	cacheVld [CacheLines]bool

	cycles  int
	retired int64
	done    bool
	status  prog.Status

	// tp is the program's threaded-code translation when compiled execution
	// is enabled (nil runs the decode-switch interpreter); dcache memoizes
	// decodes of words that miss the per-PC translation (corrupted state,
	// out-of-range fetch words).
	tp     *tcode.Program
	dcache tcode.Cache

	// u is the unpacked latch mirror (unpacked.go) the compiled path runs
	// on; uValid marks it current. While uValid, the mirror is authoritative
	// and c.st is stale until an observation point packs it back.
	u      uLatches
	uValid bool

	hook sim.CommitHook
}

var _ sim.Core = (*Core)(nil)

// New returns an OoO core reset to run p.
func New(p *prog.Program) *Core {
	c := &Core{space: sharedSpace, r: sharedRegs}
	c.st = c.space.NewState()
	c.Reset(p)
	return c
}

// Reset rebinds the core to p and clears all state.
func (c *Core) Reset(p *prog.Program) {
	c.program = p
	c.st.Reset()
	c.arf = [32]uint32{}
	if cap(c.mem) >= p.MemWords {
		c.mem = c.mem[:p.MemWords]
		for i := range c.mem {
			c.mem[i] = 0
		}
	} else {
		c.mem = make([]uint32, p.MemWords)
	}
	copy(c.mem, p.Data)
	c.out = c.out[:0]
	c.btbTag = [btbSize]uint32{}
	c.btbTgt = [btbSize]uint32{}
	c.btbValid = [btbSize]bool{}
	c.gshare = [gshareSize]uint8{}
	c.cacheTag = [CacheLines]uint32{}
	c.cacheVld = [CacheLines]bool{}
	c.cycles = 0
	c.retired = 0
	c.done = false
	c.status = prog.StatusHalted
	c.uValid = false // packed state is authoritative after reset
	c.tp = nil
	if tcode.Enabled() {
		c.tp = p.Threaded()
	}
}

// State exposes the flip-flop state for fault injection. The caller may
// mutate the returned state (FlipBit), so the unpacked mirror is flushed and
// invalidated first; the next compiled step re-unpacks whatever the caller
// left behind.
func (c *Core) State() *ff.State {
	c.syncU()
	return c.st
}

// SpaceOf returns the core's flip-flop space.
func (c *Core) SpaceOf() *ff.Space { return c.space }

// SetCommitHook installs an architecture-level commit observer.
func (c *Core) SetCommitHook(h sim.CommitHook) { c.hook = h }

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// Cycles returns cycles simulated so far.
func (c *Core) Cycles() int { return c.cycles }

// Retired returns committed instruction count.
func (c *Core) Retired() int64 { return c.retired }

// Output returns the output stream emitted so far.
func (c *Core) Output() []uint32 { return c.out }

// Result summarizes a finished run.
func (c *Core) Result() prog.Result {
	return prog.Result{Status: c.status, Output: c.out, Steps: c.cycles}
}

// Run steps the core until completion or the cycle budget.
func (c *Core) Run(maxCycles int) prog.Result {
	for !c.done && c.cycles < maxCycles {
		c.Step()
	}
	if !c.done {
		return prog.Result{Status: prog.StatusMaxSteps, Output: c.out, Steps: c.cycles}
	}
	return c.Result()
}

// age returns the distance of ROB index i from the current head; smaller is
// older. Under corrupted pointers this degrades gracefully (mod arithmetic).
func (c *Core) age(head, i uint64) uint64 {
	return (i - head + RobSize) % RobSize
}

// Step advances the machine one clock cycle.
func (c *Core) Step() {
	if c.tp != nil {
		// compiled execution runs every stage on the unpacked latch mirror
		// (threaded.go / unpacked.go)
		c.stepThreaded()
		return
	}
	if c.done {
		return
	}
	c.cycles++
	c.commit()
	if c.done {
		return
	}
	c.loadUnitTick()
	c.mulPipeTick()
	c.execute()
	c.dispatch()
	c.fetch()
}

// ---- commit ----

func (c *Core) commit() {
	st := c.st
	r := &c.r
	for n := 0; n < CommitWidth; n++ {
		count := r.robCount.Get(st)
		if count == 0 {
			return
		}
		head := r.robHead.Get(st) % RobSize
		if r.robDone[head].Get(st) == 0 {
			return
		}
		c.retired++
		if r.robExc[head].Get(st) != 0 {
			c.done = true
			c.status = prog.StatusTrap
			return
		}
		word := uint32(r.robInst[head].Get(st))
		in := isa.Decode(word)
		val := uint32(r.robVal[head].Get(st))
		flags := r.robFlags[head].Get(st)
		var addr, storeVal uint32
		switch {
		case in.Op == isa.HALT:
			c.done = true
			c.status = prog.StatusHalted
			return
		case in.Op == isa.TRAPD:
			c.done = true
			c.status = prog.StatusDetected
			return
		case in.Op == isa.OUT:
			c.out = append(c.out, val)
		case flags&1 != 0: // store: drain the store queue into memory
			sqh := r.sqHead.Get(st) % SQSize
			if r.sqValid[sqh].Get(st) == 1 && r.sqRob[sqh].Get(st) == head {
				addr = uint32(r.sqAddr[sqh].Get(st))
				storeVal = uint32(r.sqData[sqh].Get(st))
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					c.done = true
					c.status = prog.StatusTrap
					return
				}
				c.mem[int32(addr)] = storeVal
				r.sqValid[sqh].Set(st, 0)
				r.sqHead.Set(st, (sqh+1)%SQSize)
				if cnt := r.sqCount.Get(st); cnt > 0 {
					r.sqCount.Set(st, cnt-1)
				}
			}
		default:
			if in.Op.Valid() && in.Op.WritesReg() && in.Rd != 0 {
				c.arf[in.Rd] = val
				// release the rename mapping if it still points here
				m := r.rat[in.Rd].Get(st)
				if m&0x40 != 0 && m&0x3F == head {
					r.rat[in.Rd].Set(st, 0)
				}
			}
		}
		// retire the entry
		r.robHead.Set(st, (head+1)%RobSize)
		r.robCount.Set(st, count-1)
		// architecturally-inert retirement staging registers
		r.wbRet[int(head)%8].Set(st, uint64(val))
		if c.hook != nil {
			ev := sim.CommitEvent{PC: uint32(r.robPC[head].Get(st)), Word: word,
				Result: val, StoreVal: storeVal, Addr: addr}
			if c.hook(ev) {
				c.done = true
				c.status = prog.StatusDetected
				return
			}
		}
	}
}

// ---- completion: broadcast a result to waiting consumers ----

func (c *Core) broadcast(tag uint64, val uint32) {
	st := c.st
	r := &c.r
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 0 {
			continue
		}
		if r.iqS1Rdy[i].Get(st) == 0 && r.iqS1Tag[i].Get(st) == tag {
			r.iqS1Val[i].Set(st, uint64(val))
			r.iqS1Rdy[i].Set(st, 1)
		}
		if r.iqS2Rdy[i].Get(st) == 0 && r.iqS2Tag[i].Get(st) == tag {
			r.iqS2Val[i].Set(st, uint64(val))
			r.iqS2Rdy[i].Set(st, 1)
		}
	}
}

func (c *Core) complete(tag uint64, val uint32) {
	st := c.st
	r := &c.r
	tag %= RobSize
	r.robVal[tag].Set(st, uint64(val))
	r.robDone[tag].Set(st, 1)
	c.broadcast(tag, val)
	// bypass staging churn (architecturally inert)
	r.exWb[int(tag)%6].Set(st, uint64(val))
}

// ---- load unit ----

func (c *Core) loadUnitTick() {
	st := c.st
	r := &c.r
	if r.ldValid.Get(st) == 0 {
		return
	}
	cnt := r.ldCnt.Get(st)
	if cnt > 0 {
		r.ldCnt.Set(st, cnt-1)
		return
	}
	addr := uint32(r.ldAddr.Get(st))
	var data uint32
	if int(int32(addr)) >= 0 && int(int32(addr)) < len(c.mem) {
		data = c.mem[int32(addr)]
	}
	r.ldData.Set(st, uint64(data))
	r.ldDataIn[int(addr)%4].Set(st, uint64(data))
	c.complete(r.ldRob.Get(st), data)
	r.ldValid.Set(st, 0)
}

// ---- multiplier pipeline ----

func (c *Core) mulPipeTick() {
	st := c.st
	r := &c.r
	// retire from the last stage
	if r.muV[3].Get(st) == 1 {
		a := uint32(r.muA[3].Get(st))
		b := uint32(r.muB[3].Get(st))
		p := int64(int32(a)) * int64(int32(b))
		var val uint32
		if r.muHi[3].Get(st) == 1 {
			val = uint32(uint64(p) >> 32)
		} else {
			val = uint32(p)
		}
		c.complete(r.muRob[3].Get(st), val)
		r.muV[3].Set(st, 0)
	}
	// shift earlier stages forward
	for i := 3; i > 0; i-- {
		if r.muV[i-1].Get(st) == 1 && r.muV[i].Get(st) == 0 {
			r.muA[i].Set(st, r.muA[i-1].Get(st))
			r.muB[i].Set(st, r.muB[i-1].Get(st))
			r.muRob[i].Set(st, r.muRob[i-1].Get(st))
			r.muHi[i].Set(st, r.muHi[i-1].Get(st))
			r.muV[i].Set(st, 1)
			r.muV[i-1].Set(st, 0)
		}
	}
}

// ---- execute ----

// readyEntry describes an issue-queue entry eligible for selection.
type readyEntry struct {
	iq  int
	age uint64
}

func (c *Core) execute() {
	st := c.st
	r := &c.r
	head := r.robHead.Get(st) % RobSize

	// Oldest-first select of ready entries.
	var ready [IQSize]readyEntry
	nReady := 0
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 0 {
			continue
		}
		if r.iqS1Rdy[i].Get(st) == 0 || r.iqS2Rdy[i].Get(st) == 0 {
			continue
		}
		ready[nReady] = readyEntry{iq: i, age: c.age(head, r.iqRob[i].Get(st)%RobSize)}
		nReady++
	}
	// insertion sort by age (nReady <= 16)
	for i := 1; i < nReady; i++ {
		for j := i; j > 0 && ready[j].age < ready[j-1].age; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}

	issued := 0
	loadPortBusy := r.ldValid.Get(st) == 1
	mulPortBusy := r.muV[0].Get(st) == 1
	for k := 0; k < nReady && issued < IssueWidth; k++ {
		i := ready[k].iq
		word := uint32(r.iqInst[i].Get(st))
		in := isa.Decode(word)
		tag := r.iqRob[i].Get(st) % RobSize
		s1 := uint32(r.iqS1Val[i].Get(st))
		s2 := uint32(r.iqS2Val[i].Get(st))

		switch {
		case in.Op == isa.LW:
			if loadPortBusy {
				continue // structural hazard: try again next cycle
			}
			if !c.tryIssueLoad(i, tag, in, s1, head) {
				continue
			}
			loadPortBusy = true
		case in.Op == isa.MUL || in.Op == isa.MULH:
			if mulPortBusy {
				continue
			}
			r.muA[0].Set(st, uint64(s1))
			r.muB[0].Set(st, uint64(s2))
			r.muRob[0].Set(st, tag)
			if in.Op == isa.MULH {
				r.muHi[0].Set(st, 1)
			} else {
				r.muHi[0].Set(st, 0)
			}
			r.muV[0].Set(st, 1)
			mulPortBusy = true
			r.iqValid[i].Set(st, 0)
		case in.Op == isa.SW:
			addr := uint32(int32(s1) + in.Imm)
			if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
				r.robExc[tag].Set(st, 1)
			}
			// fill this store's queue entry
			for q := 0; q < SQSize; q++ {
				if r.sqValid[q].Get(st) == 1 && r.sqRob[q].Get(st) == tag && r.sqDone[q].Get(st) == 0 {
					r.sqAddr[q].Set(st, uint64(addr))
					r.sqData[q].Set(st, uint64(s2))
					r.sqDone[q].Set(st, 1)
					break
				}
			}
			c.complete(tag, addr)
			r.iqValid[i].Set(st, 0)
		case in.Op.IsControl():
			c.executeBranch(i, tag, in, s1, s2)
			// executeBranch may squash the whole window, including our
			// ready list; stop selecting this cycle.
			issued++
			if r.iqValid[i].Get(st) == 1 {
				r.iqValid[i].Set(st, 0)
			}
			return
		default:
			val, exc := execALU(in, s1, s2)
			if exc {
				r.robExc[tag].Set(st, 1)
				r.robDone[tag].Set(st, 1)
			} else {
				c.complete(tag, val)
			}
			r.iqValid[i].Set(st, 0)
			r.rrEx[i%6].Set(st, uint64(val))
		}
		issued++
	}
}

// tryIssueLoad attempts to issue a load: it requires that no older store is
// still unexecuted; it forwards from the youngest matching older store in
// the store queue, else starts a cache access.
func (c *Core) tryIssueLoad(iq int, tag uint64, in isa.Inst, s1 uint32, head uint64) bool {
	st := c.st
	r := &c.r
	loadAge := c.age(head, tag)
	// memory-ordering check: any older store not yet executed blocks us
	for a := uint64(0); a < loadAge; a++ {
		idx := (head + a) % RobSize
		if r.robFlags[idx].Get(st)&1 != 0 && r.robDone[idx].Get(st) == 0 {
			return false
		}
	}
	addr := uint32(int32(s1) + in.Imm)
	r.ldAddrIn[int(addr)%4].Set(st, uint64(addr))
	if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
		r.robExc[tag].Set(st, 1)
		r.robDone[tag].Set(st, 1)
		r.iqValid[iq].Set(st, 0)
		return true
	}
	// store-to-load forwarding: youngest older store to the same address
	bestAge := uint64(RobSize)
	var bestData uint32
	found := false
	for q := 0; q < SQSize; q++ {
		if r.sqValid[q].Get(st) == 0 || r.sqDone[q].Get(st) == 0 {
			continue
		}
		sAge := c.age(head, r.sqRob[q].Get(st)%RobSize)
		if sAge >= loadAge {
			continue
		}
		if uint32(r.sqAddr[q].Get(st)) == addr {
			// youngest older = largest age below loadAge
			if !found || sAge > bestAge || (bestAge == uint64(RobSize)) {
				if !found || sAge > bestAge {
					bestAge = sAge
					bestData = uint32(r.sqData[q].Get(st))
				}
				found = true
			}
		}
	}
	if found {
		c.complete(tag, bestData)
		r.iqValid[iq].Set(st, 0)
		return true
	}
	// cache access with variable latency
	line := (addr >> 2) % CacheLines
	blk := addr >> 2
	lat := uint64(MissLatency)
	if c.cacheVld[line] && c.cacheTag[line] == blk {
		lat = HitLatency
	} else {
		c.cacheVld[line] = true
		c.cacheTag[line] = blk
	}
	r.ldValid.Set(st, 1)
	r.ldRob.Set(st, tag)
	r.ldAddr.Set(st, uint64(addr))
	r.ldCnt.Set(st, lat)
	r.ldAddrOut[int(line)%2].Set(st, uint64(addr))
	r.iqValid[iq].Set(st, 0)
	return true
}

// executeBranch resolves a control instruction, updates the predictors, and
// squashes the window on mispredict.
func (c *Core) executeBranch(iq int, tag uint64, in isa.Inst, s1, s2 uint32) {
	st := c.st
	r := &c.r
	pc := uint32(r.robPC[tag].Get(st))
	taken, target := resolveBranch(in, s1, s2, pc)
	link := pc + 1

	// result value (link for jumps)
	var val uint32
	if in.Op.IsJump() {
		val = link
	}
	c.complete(tag, val)
	r.iqValid[iq].Set(st, 0)
	r.caBr.Set(st, b2u(taken))
	r.caP[0].Set(st, uint64(target))

	// predictor updates (performance-only state)
	if in.Op.IsBranch() {
		h := (uint64(pc) ^ r.lhist.Get(st)) % gshareSize
		ctr := c.gshare[h]
		if taken && ctr < 3 {
			c.gshare[h] = ctr + 1
		} else if !taken && ctr > 0 {
			c.gshare[h] = ctr - 1
		}
		r.lhist.Set(st, r.lhist.Get(st)<<1|b2u(taken))
	}
	if taken {
		c.btbTag[pc%btbSize] = pc
		c.btbTgt[pc%btbSize] = target
		c.btbValid[pc%btbSize] = true
		r.takenAddr.Set(st, uint64(target))
	}

	predTaken := r.robFlags[tag].Get(st)&4 != 0
	predTgt := uint32(r.robPTgt[tag].Get(st))
	mispredict := taken != predTaken || (taken && target != predTgt)
	if !mispredict {
		return
	}

	// ---- squash everything younger than the branch ----
	head := r.robHead.Get(st) % RobSize
	bAge := c.age(head, tag)
	r.robTail.Set(st, (tag+1)%RobSize)
	r.robCount.Set(st, bAge+1)
	// issue queue
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 1 && c.age(head, r.iqRob[i].Get(st)%RobSize) > bAge {
			r.iqValid[i].Set(st, 0)
		}
	}
	// store queue: pop younger entries from the tail
	for r.sqCount.Get(st) > 0 {
		t := (r.sqTail.Get(st) + SQSize - 1) % SQSize
		if r.sqValid[t].Get(st) == 1 && c.age(head, r.sqRob[t].Get(st)%RobSize) > bAge {
			r.sqValid[t].Set(st, 0)
			r.sqTail.Set(st, t)
			r.sqCount.Set(st, r.sqCount.Get(st)-1)
		} else {
			break
		}
	}
	// in-flight load
	if r.ldValid.Get(st) == 1 && c.age(head, r.ldRob.Get(st)%RobSize) > bAge {
		r.ldValid.Set(st, 0)
	}
	// multiplier pipeline
	for i := 0; i < 4; i++ {
		if r.muV[i].Get(st) == 1 && c.age(head, r.muRob[i].Get(st)%RobSize) > bAge {
			r.muV[i].Set(st, 0)
		}
	}
	// rebuild the rename table from the surviving window
	for a := 0; a < 32; a++ {
		r.rat[a].Set(st, 0)
	}
	for a := uint64(0); a <= bAge; a++ {
		idx := (head + a) % RobSize
		w := isa.Decode(uint32(r.robInst[idx].Get(st)))
		if w.Op.Valid() && w.Op.WritesReg() && w.Rd != 0 {
			r.rat[w.Rd].Set(st, 0x40|idx)
		}
	}
	// flush the fetch buffer and redirect
	r.fbHead.Set(st, 0)
	r.fbTail.Set(st, 0)
	r.fbCount.Set(st, 0)
	var next uint32
	if taken {
		next = target
	} else {
		next = pc + 1
	}
	r.pc.Set(st, uint64(next))
}

// ---- dispatch (rename + allocate) ----

func (c *Core) dispatch() {
	st := c.st
	r := &c.r
	for n := 0; n < FetchWidth; n++ {
		if r.fbCount.Get(st) == 0 {
			return
		}
		if r.robCount.Get(st) >= RobSize {
			return
		}
		fh := r.fbHead.Get(st) % FBSize
		word := uint32(r.fbInst[fh].Get(st))
		in := isa.Decode(word)

		needIQ := in.Op.Valid() && in.Op != isa.NOP && in.Op != isa.HALT && in.Op != isa.TRAPD
		if needIQ {
			if c.freeIQ() < 0 {
				return
			}
			if in.Op == isa.SW && r.sqCount.Get(st) >= SQSize {
				return
			}
		}

		// allocate ROB entry
		tail := r.robTail.Get(st) % RobSize
		pcv := r.fbPC[fh].Get(st)
		r.robInst[tail].Set(st, uint64(word))
		r.robPC[tail].Set(st, pcv)
		r.robVal[tail].Set(st, 0)
		var flags uint64
		if in.Op == isa.SW {
			flags |= 1
		}
		if in.Op.IsControl() {
			flags |= 2
			if r.fbPred[fh].Get(st) == 1 {
				flags |= 4
			}
			r.robPTgt[tail].Set(st, r.fbPTgt[fh].Get(st))
		}
		r.robFlags[tail].Set(st, flags)

		if !in.Op.Valid() {
			r.robExc[tail].Set(st, 1)
			r.robDone[tail].Set(st, 1)
		} else if !needIQ {
			r.robExc[tail].Set(st, 0)
			r.robDone[tail].Set(st, 1)
		} else {
			r.robExc[tail].Set(st, 0)
			r.robDone[tail].Set(st, 0)
			iq := c.freeIQ()
			r.iqValid[iq].Set(st, 1)
			r.iqInst[iq].Set(st, uint64(word))
			r.iqRob[iq].Set(st, tail)
			c.renameSource(iq, 0, in)
			c.renameSource(iq, 1, in)
			if in.Op == isa.SW {
				// allocate a store-queue slot in program order
				sqt := r.sqTail.Get(st) % SQSize
				r.sqValid[sqt].Set(st, 1)
				r.sqRob[sqt].Set(st, tail)
				r.sqDone[sqt].Set(st, 0)
				r.sqTail.Set(st, (sqt+1)%SQSize)
				r.sqCount.Set(st, r.sqCount.Get(st)+1)
			}
		}

		// rename destination
		if in.Op.Valid() && in.Op.WritesReg() && in.Rd != 0 {
			r.rat[in.Rd].Set(st, 0x40|tail)
		}

		r.robTail.Set(st, (tail+1)%RobSize)
		r.robCount.Set(st, r.robCount.Get(st)+1)
		r.fbHead.Set(st, (fh+1)%FBSize)
		r.fbCount.Set(st, r.fbCount.Get(st)-1)
	}
}

// renameSource fills IQ source slot k (0 or 1) for instruction in.
func (c *Core) renameSource(iq, k int, in isa.Inst) {
	st := c.st
	r := &c.r
	tagF, rdyF, valF := r.iqS1Tag[iq], r.iqS1Rdy[iq], r.iqS1Val[iq]
	if k == 1 {
		tagF, rdyF, valF = r.iqS2Tag[iq], r.iqS2Rdy[iq], r.iqS2Val[iq]
	}
	var reg uint8
	var used bool
	n1, n2 := needsRs(in.Op)
	if k == 0 {
		reg, used = in.Rs1, n1
	} else {
		reg, used = in.Rs2, n2
	}
	if !used || reg == 0 {
		rdyF.Set(st, 1)
		valF.Set(st, uint64(c.arf[reg&31]))
		if reg == 0 {
			valF.Set(st, 0)
		}
		return
	}
	m := r.rat[reg].Get(st)
	if m&0x40 == 0 {
		valF.Set(st, uint64(c.arf[reg]))
		rdyF.Set(st, 1)
		return
	}
	t := m & 0x3F % RobSize
	if r.robDone[t].Get(st) == 1 && r.robExc[t].Get(st) == 0 {
		valF.Set(st, r.robVal[t].Get(st))
		rdyF.Set(st, 1)
		return
	}
	tagF.Set(st, t)
	rdyF.Set(st, 0)
	valF.Set(st, 0)
}

func (c *Core) freeIQ() int {
	for i := 0; i < IQSize; i++ {
		if c.r.iqValid[i].Get(c.st) == 0 {
			return i
		}
	}
	return -1
}

// needsRs reports which source registers an instruction format reads.
func needsRs(op isa.Op) (rs1, rs2 bool) {
	switch op.Fmt() {
	case isa.FmtR, isa.FmtStore, isa.FmtBranch:
		return true, true
	case isa.FmtI, isa.FmtLoad, isa.FmtJALR, isa.FmtOut:
		return true, false
	}
	return false, false
}

// ---- fetch ----

func (c *Core) fetch() {
	st := c.st
	r := &c.r
	for n := 0; n < FetchWidth; n++ {
		if r.fbCount.Get(st) >= FBSize {
			return
		}
		pc := uint32(r.pc.Get(st))
		var word uint32 = illegalWord
		if int(pc) < len(c.program.Words) {
			word = c.program.Words[pc]
		}
		// branch prediction: BTB hit + gshare direction
		predTaken := false
		var predTgt uint32
		bi := pc % btbSize
		if c.btbValid[bi] && c.btbTag[bi] == pc {
			h := (uint64(pc) ^ r.lhist.Get(st)) % gshareSize
			in := isa.Decode(word)
			if in.Op.IsJump() || c.gshare[h] >= 2 {
				predTaken = true
				predTgt = c.btbTgt[bi]
			}
		}
		ft := r.fbTail.Get(st) % FBSize
		r.fbInst[ft].Set(st, uint64(word))
		r.fbPC[ft].Set(st, uint64(pc))
		r.fbPred[ft].Set(st, b2u(predTaken))
		r.fbPTgt[ft].Set(st, uint64(predTgt))
		r.fbTail.Set(st, (ft+1)%FBSize)
		r.fbCount.Set(st, r.fbCount.Get(st)+1)
		if predTaken {
			r.pc.Set(st, uint64(predTgt))
			return // redirected: stop fetching this cycle
		}
		r.pc.Set(st, uint64(pc+1))
	}
}

// execALU computes single-cycle ALU results; exc reports a trap condition.
func execALU(in isa.Inst, s1, s2 uint32) (val uint32, exc bool) {
	switch in.Op {
	case isa.ADD:
		val = s1 + s2
	case isa.SUB:
		val = s1 - s2
	case isa.AND:
		val = s1 & s2
	case isa.OR:
		val = s1 | s2
	case isa.XOR:
		val = s1 ^ s2
	case isa.SLL:
		val = s1 << (s2 & 31)
	case isa.SRL:
		val = s1 >> (s2 & 31)
	case isa.SRA:
		val = uint32(int32(s1) >> (s2 & 31))
	case isa.SLT:
		val = b2u32(int32(s1) < int32(s2))
	case isa.SLTU:
		val = b2u32(s1 < s2)
	case isa.DIV:
		if s2 == 0 {
			return 0, true
		}
		val = uint32(int32(s1) / int32(s2))
	case isa.REM:
		if s2 == 0 {
			return 0, true
		}
		val = uint32(int32(s1) % int32(s2))
	case isa.ADDI:
		val = s1 + uint32(in.Imm)
	case isa.ANDI:
		val = s1 & uint32(in.Imm)
	case isa.ORI:
		val = s1 | uint32(in.Imm)
	case isa.XORI:
		val = s1 ^ uint32(in.Imm)
	case isa.SLLI:
		val = s1 << (uint32(in.Imm) & 31)
	case isa.SRLI:
		val = s1 >> (uint32(in.Imm) & 31)
	case isa.SRAI:
		val = uint32(int32(s1) >> (uint32(in.Imm) & 31))
	case isa.SLTI:
		val = b2u32(int32(s1) < in.Imm)
	case isa.LUI:
		val = uint32(in.Imm) << 16
	case isa.OUT:
		val = s1
	}
	return val, false
}

// resolveBranch decides taken/target for control instructions.
func resolveBranch(in isa.Inst, s1, s2, pc uint32) (taken bool, target uint32) {
	switch in.Op {
	case isa.BEQ:
		taken = s1 == s2
	case isa.BNE:
		taken = s1 != s2
	case isa.BLT:
		taken = int32(s1) < int32(s2)
	case isa.BGE:
		taken = int32(s1) >= int32(s2)
	case isa.BLTU:
		taken = s1 < s2
	case isa.BGEU:
		taken = s1 >= s2
	case isa.JAL:
		return true, pc + uint32(in.Imm)
	case isa.JALR:
		return true, uint32(int32(s1) + in.Imm)
	}
	return taken, pc + uint32(in.Imm)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
