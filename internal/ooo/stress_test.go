package ooo

import (
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
)

// Store-queue pressure: a burst of stores longer than SQSize must stall
// dispatch but still retire correctly in order.
func TestStoreBurst(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	for i := int32(0); i < 3*SQSize; i++ {
		b.Addi(2, 0, i+100)
		b.Sw(2, 1, i)
	}
	// read everything back
	b.Li(9, 0)
	b.Li(3, 0)
	b.Li(4, 3*SQSize)
	b.Label("rd")
	b.Lw(5, 3, 0)
	b.Add(9, 9, 5)
	b.Addi(3, 3, 1)
	b.Bne(3, 4, "rd")
	b.Out(9)
	b.Halt()
	p, err := prog.New("burst", b.Items(), nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeExpected(100000); err != nil {
		t.Fatal(err)
	}
	res := New(p).Run(100000)
	if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
		t.Fatalf("store burst: %v %v (want %v)", res.Status, res.Output, p.Expected)
	}
}

// ROB wraparound: run far more instructions than RobSize with tight
// dependencies; indices must wrap without state corruption.
func TestRobWraparound(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, int32(RobSize*7))
	b.Li(3, 1)
	b.Label("loop")
	b.Add(3, 3, 3)
	b.Srli(3, 3, 1) // keep r3 stable but data-dependent
	b.Addi(3, 3, 1)
	b.Addi(3, 3, -1)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Out(3)
	b.Halt()
	p, _ := prog.New("wrap", b.Items(), nil, 16)
	p.ComputeExpected(1_000_000)
	res := New(p).Run(1_000_000)
	if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
		t.Fatalf("wraparound: %v %v", res.Status, res.Output)
	}
}

// Store-to-load forwarding across a mispredicted branch: squashed stores
// must not forward to later loads.
func TestSquashedStoreDoesNotForward(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 5)
	b.Li(2, 10)
	b.Li(3, 0) // address
	b.Li(4, 42)
	b.Sw(4, 3, 0) // mem[0] = 42 (committed)
	b.Li(5, 0)    // loop counter
	b.Label("loop")
	b.Blt(1, 2, "skip") // always taken
	b.Li(6, 666)
	b.Sw(6, 3, 0) // wrong path: must never land or forward
	b.Label("skip")
	b.Lw(7, 3, 0) // must see 42
	b.Li(8, 42)
	b.Beq(7, 8, "good")
	b.Out(7) // leak the wrong value for diagnosis
	b.Halt()
	b.Label("good")
	b.Addi(5, 5, 1)
	b.Slti(9, 5, 25)
	b.Bne(9, 0, "loop")
	b.Li(10, 1)
	b.Out(10)
	b.Halt()
	p, _ := prog.New("fwd", b.Items(), nil, 16)
	p.ComputeExpected(100000)
	res := New(p).Run(100000)
	if res.Status != prog.StatusHalted || len(res.Output) != 1 || res.Output[0] != 1 {
		t.Fatalf("squashed store forwarded: %v %v", res.Status, res.Output)
	}
}

// Cache behavior: repeated access to the same line should run faster than
// a stride that misses every access.
func TestCacheLocalityAffectsCycles(t *testing.T) {
	mk := func(stride int32) *prog.Program {
		b := isa.NewBuilder()
		b.Li(1, 0)
		b.Li(2, 200)
		b.Li(3, 0)
		b.Li(9, 0)
		b.Label("loop")
		b.Lw(5, 3, 0)
		b.Add(9, 9, 5)
		b.Addi(3, 3, stride)
		b.Andi(3, 3, 1023)
		b.Addi(1, 1, 1)
		b.Bne(1, 2, "loop")
		b.Out(9)
		b.Halt()
		p, _ := prog.New("cache", b.Items(), nil, 1024)
		p.ComputeExpected(1_000_000)
		return p
	}
	hot := New(mk(0)).Run(1_000_000)
	cold := New(mk(260)).Run(1_000_000) // a prime-ish stride thrashing lines
	if hot.Status != prog.StatusHalted || cold.Status != prog.StatusHalted {
		t.Fatal("cache runs failed")
	}
	if cold.Steps <= hot.Steps {
		t.Fatalf("cache model inert: hot %d cycles vs cold %d", hot.Steps, cold.Steps)
	}
	t.Logf("hot-line loop %d cycles, thrashing loop %d cycles", hot.Steps, cold.Steps)
}

// Deep dependent multiply chain through the pipelined multiplier.
func TestMulChain(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 3)
	b.Li(2, 7)
	for i := 0; i < 12; i++ {
		b.Mul(1, 1, 2)
		b.Andi(1, 1, 0x3FFF)
		b.Ori(1, 1, 1)
	}
	b.Out(1)
	b.Halt()
	p, _ := prog.New("mulchain", b.Items(), nil, 16)
	p.ComputeExpected(100000)
	res := New(p).Run(100000)
	if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
		t.Fatalf("mul chain: %v %v want %v", res.Status, res.Output, p.Expected)
	}
}
