package ooo

import (
	"math/rand"
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
)

func mustProg(t testing.TB, name string, b *isa.Builder, data []uint32, mem int) *prog.Program {
	t.Helper()
	p, err := prog.New(name, b.Items(), data, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeExpected(2_000_000); err != nil {
		t.Fatal(err)
	}
	return p
}

func runBoth(t *testing.T, p *prog.Program) prog.Result {
	t.Helper()
	c := New(p)
	res := c.Run(5_000_000)
	if res.Status != prog.StatusHalted {
		t.Fatalf("%s: status %v after %d cycles", p.Name, res.Status, res.Steps)
	}
	if !p.OutputsEqual(res.Output) {
		t.Fatalf("%s: output %v != golden %v", p.Name, res.Output, p.Expected)
	}
	return res
}

func TestSumLoop(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 300)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p := mustProg(t, "sum", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 45150 {
		t.Fatalf("sum = %d", res.Output[0])
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	// Store followed closely by a load to the same address must forward.
	data := []uint32{11, 22, 33, 44}
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 100)
	b.Sw(2, 1, 2)  // mem[2] = 100
	b.Lw(3, 1, 2)  // must see 100 (forwarded or ordered)
	b.Lw(4, 1, 0)  // 11
	b.Add(5, 3, 4) // 111
	b.Out(5)
	b.Sw(5, 1, 3)
	b.Lw(6, 1, 3)
	b.Out(6) // 111
	b.Halt()
	p := mustProg(t, "memdis", b, data, 64)
	res := runBoth(t, p)
	if res.Output[0] != 111 || res.Output[1] != 111 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestBranchMispredictSquash(t *testing.T) {
	// Data-dependent branches; wrong-path OUT/SW must never commit.
	b := isa.NewBuilder()
	b.Li(1, 0)  // i
	b.Li(2, 20) // n
	b.Li(3, 0)  // sum of even i
	b.Label("loop")
	b.Andi(4, 1, 1)
	b.Bne(4, 0, "odd")
	b.Add(3, 3, 1)
	b.Label("odd")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Out(3) // 0+2+...+18 = 90
	b.Halt()
	p := mustProg(t, "brsq", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 90 {
		t.Fatalf("sum = %d", res.Output[0])
	}
}

func TestMulPipelined(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 12345)
	b.Li(2, 6789)
	b.Mul(3, 1, 2)
	b.Mulh(4, 1, 2)
	b.Mul(5, 3, 2) // dependent on pipelined result
	b.Out(3)
	b.Out(4)
	b.Out(5)
	b.Halt()
	p := mustProg(t, "mul", b, nil, 16)
	runBoth(t, p)
}

func TestCallReturnJALR(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(5, 1)
	b.Jal(31, "inc")
	b.Jal(31, "inc")
	b.Jal(31, "inc")
	b.Out(5) // 8
	b.Halt()
	b.Label("inc")
	b.Add(5, 5, 5)
	b.Ret(31)
	p := mustProg(t, "jalr", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 8 {
		t.Fatalf("got %d", res.Output[0])
	}
}

func TestTraps(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 1<<20)
	b.Lw(2, 1, 0)
	b.Out(2)
	b.Halt()
	p, _ := prog.New("oob", b.Items(), nil, 16)
	if res := New(p).Run(100000); res.Status != prog.StatusTrap {
		t.Fatalf("oob load: %v", res.Status)
	}

	b = isa.NewBuilder()
	b.Li(1, 7)
	b.Li(2, 0)
	b.Div(3, 1, 2)
	b.Out(3)
	b.Halt()
	p, _ = prog.New("div0", b.Items(), nil, 16)
	if res := New(p).Run(100000); res.Status != prog.StatusTrap {
		t.Fatalf("div0: %v", res.Status)
	}

	b = isa.NewBuilder()
	b.Li(1, 1<<20)
	b.Li(2, 9)
	b.Sw(2, 1, 0)
	b.Halt()
	p, _ = prog.New("oobsw", b.Items(), nil, 16)
	if res := New(p).Run(100000); res.Status != prog.StatusTrap {
		t.Fatalf("oob store: %v", res.Status)
	}

	b = isa.NewBuilder()
	b.Trapd()
	p, _ = prog.New("td", b.Items(), nil, 16)
	if res := New(p).Run(100000); res.Status != prog.StatusDetected {
		t.Fatalf("trapd: %v", res.Status)
	}
}

func TestWrongPathFaultsHarmless(t *testing.T) {
	// A taken branch guards an out-of-bounds load; speculation may execute
	// it, but it must never commit a trap.
	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Li(2, 1)
	b.Li(9, 1<<20)
	b.Li(3, 0) // loop counter
	b.Label("loop")
	b.Beq(1, 2, "skip") // always taken, predictor must learn
	b.Lw(4, 9, 0)       // wrong path: OOB load
	b.Out(4)            // wrong path
	b.Label("skip")
	b.Addi(3, 3, 1)
	b.Slti(5, 3, 30)
	b.Bne(5, 0, "loop")
	b.Li(6, 77)
	b.Out(6)
	b.Halt()
	p := mustProg(t, "wrongpath", b, nil, 16)
	res := runBoth(t, p)
	if len(res.Output) != 1 || res.Output[0] != 77 {
		t.Fatalf("output %v", res.Output)
	}
}

func randomProgram(rng *rand.Rand) *isa.Builder {
	b := isa.NewBuilder()
	for r := uint8(1); r <= 8; r++ {
		b.Li(r, int32(rng.Uint32()%1000))
	}
	nBlocks := 3 + rng.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		n := 4 + rng.Intn(10)
		for i := 0; i < n; i++ {
			rd := uint8(1 + rng.Intn(8))
			rs1 := uint8(1 + rng.Intn(8))
			rs2 := uint8(1 + rng.Intn(8))
			switch rng.Intn(9) {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Sub(rd, rs1, rs2)
			case 2:
				b.Xor(rd, rs1, rs2)
			case 3:
				b.Mul(rd, rs1, rs2)
			case 4:
				b.Sw(rs1, 0, int32(rng.Intn(16)))
				b.Lw(rd, 0, int32(rng.Intn(16)))
			case 5:
				b.Slt(rd, rs1, rs2)
			case 6:
				b.Srl(rd, rs1, rs2)
			case 7:
				b.Addi(rd, rs1, int32(rng.Intn(100)-50))
			case 8:
				b.Mulh(rd, rs1, rs2)
			}
		}
		b.Out(uint8(1 + rng.Intn(8)))
	}
	b.Halt()
	return b
}

func TestRandomProgramsMatchISS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		bb := randomProgram(rng)
		p, err := prog.New("rand", bb.Items(), nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ComputeExpected(100000); err != nil {
			t.Fatal(err)
		}
		res := New(p).Run(1_000_000)
		if res.Status != prog.StatusHalted {
			t.Fatalf("prog %d: status %v after %d cycles", i, res.Status, res.Steps)
		}
		if !p.OutputsEqual(res.Output) {
			t.Fatalf("prog %d: output mismatch\n got %v\nwant %v", i, res.Output, p.Expected)
		}
	}
}

// Loops with branches and loads: superscalar throughput should exceed the
// in-order core's on independent work.
func TestIPCReasonable(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 2000)
	b.Li(3, 0)
	b.Li(4, 0)
	b.Label("loop")
	b.Addi(3, 3, 2) // independent chains
	b.Addi(4, 4, 3)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Add(5, 3, 4)
	b.Out(5)
	b.Halt()
	p := mustProg(t, "ipc", b, nil, 16)
	c := New(p)
	res := c.Run(1_000_000)
	if res.Status != prog.StatusHalted {
		t.Fatalf("status %v", res.Status)
	}
	ipc := float64(c.Retired()) / float64(c.Cycles())
	if ipc < 0.8 {
		t.Fatalf("OoO IPC = %.2f; pipeline is not extracting parallelism", ipc)
	}
	t.Logf("OoO IPC = %.2f over %d cycles", ipc, c.Cycles())
}

func TestSpaceProperties(t *testing.T) {
	s := Space()
	if s.NumBits() < 8000 || s.NumBits() > 20000 {
		t.Fatalf("OoO flip-flop count %d outside the IVM-like range", s.NumBits())
	}
	for _, want := range []string{"rob.head.reg", "sched0.inst.array.reg0",
		"exec.mu0.a01", "mem.l1dcache.accessaddr0.reg", "RF0.PCreg", "regs.wb.wb.ret1"} {
		if _, ok := s.Lookup(want); !ok {
			t.Fatalf("missing field %s", want)
		}
	}
	t.Logf("OoO core: %d flip-flops in %d structures", s.NumBits(), s.NumFields())
}

func TestCommitHook(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 5)
	b.Li(2, 6)
	b.Add(3, 1, 2)
	b.Out(3)
	b.Halt()
	p := mustProg(t, "hook", b, nil, 16)
	c := New(p)
	var pcs []uint32
	c.SetCommitHook(func(ev sim.CommitEvent) bool {
		pcs = append(pcs, ev.PC)
		return false
	})
	c.Run(10000)
	for i, pc := range pcs {
		if int(pc) != i {
			t.Fatalf("commit order broken: %v", pcs)
		}
	}
	if len(pcs) < 4 {
		t.Fatalf("too few commits: %v", pcs)
	}

	c = New(p)
	c.SetCommitHook(func(ev sim.CommitEvent) bool { return ev.PC == 2 })
	if res := c.Run(10000); res.Status != prog.StatusDetected {
		t.Fatalf("hook detect: %v", res.Status)
	}
}

func TestInjectionProducesOutcomeDiversity(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 40)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Sw(1, 0, 3)
	b.Lw(4, 0, 3)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Out(4)
	b.Halt()
	p := mustProg(t, "inj", b, nil, 16)

	nominal := New(p).Run(100000)
	if nominal.Status != prog.StatusHalted {
		t.Fatalf("nominal: %v", nominal.Status)
	}
	nomCycles := nominal.Steps

	rng := rand.New(rand.NewSource(3))
	classes := map[string]int{}
	for k := 0; k < 300; k++ {
		c := New(p)
		cyc := rng.Intn(nomCycles)
		for i := 0; i < cyc; i++ {
			c.Step()
		}
		c.State().FlipBit(rng.Intn(Space().NumBits()))
		res := c.Run(2 * nomCycles)
		switch {
		case res.Status == prog.StatusHalted && p.OutputsEqual(res.Output):
			classes["vanish"]++
		case res.Status == prog.StatusHalted:
			classes["omm"]++
		case res.Status == prog.StatusTrap:
			classes["trap"]++
		case res.Status == prog.StatusMaxSteps:
			classes["hang"]++
		}
	}
	t.Logf("outcome classes over 300 injections: %v", classes)
	if classes["vanish"] == 0 {
		t.Fatal("expected some vanished errors")
	}
	if classes["omm"]+classes["trap"]+classes["hang"] == 0 {
		t.Fatal("expected some non-vanished errors")
	}
}

func TestResetReuse(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 11)
	b.Out(1)
	b.Halt()
	p := mustProg(t, "r1", b, nil, 16)
	c := New(p)
	r1 := c.Run(10000)
	c.Reset(p)
	r2 := c.Run(10000)
	if r1.Status != r2.Status || len(r2.Output) != 1 || r2.Output[0] != 11 {
		t.Fatalf("reset run differs: %v vs %v", r1, r2)
	}
}

func BenchmarkOoOCycles(b *testing.B) {
	bb := isa.NewBuilder()
	bb.Li(1, 0)
	bb.Li(2, 1000000)
	bb.Li(3, 0)
	bb.Label("loop")
	bb.Addi(3, 3, 2)
	bb.Addi(1, 1, 1)
	bb.Bne(1, 2, "loop")
	bb.Out(3)
	bb.Halt()
	p, _ := prog.New("bench", bb.Items(), nil, 16)
	c := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		if c.Done() {
			c.Reset(p)
		}
	}
}
