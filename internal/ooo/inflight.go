package ooo

import "clear/internal/sim"

// InFlight reports the instructions occupying the out-of-order machine at
// the current clock boundary: the fetch PC, the valid fetch-buffer entries,
// every allocated reorder-buffer entry, the valid issue-queue and
// store-queue entries, the load unit's outstanding access, the occupied
// multiplier stages, and the live rename-table mappings. Multi-entry
// structures report the entry index as Slot; single-occupant units use -1.
// Entries that only carry a ROB index (issue queue, store queue, load unit,
// multiplier, rename table) resolve their PC through the ROB, mirroring how
// the hardware would walk the tag — under corrupted pointers this degrades
// gracefully via modular indexing, exactly like the commit path.
//
// Architecturally inert staging registers (branch-unit pipeline, the
// write-back/bypass copies, the L1 line buffers) hold no attributable
// instruction and report nothing; strikes there fall back to unit-level
// attribution with no root instruction.
//
// The observation goes through syncU like State(), so interpreter and
// compiled/mirror execution report identical occupancies.
func (c *Core) InFlight(dst []sim.InFlightInst) []sim.InFlightInst {
	c.syncU()
	st := c.st
	r := &c.r
	dst = append(dst, sim.InFlightInst{Unit: "fetch", Slot: -1, PC: uint32(r.pc.Get(st))})
	fbHead, fbCnt := r.fbHead.Get(st), r.fbCount.Get(st)
	for k := uint64(0); k < fbCnt && k < FBSize; k++ {
		i := int((fbHead + k) % FBSize)
		dst = append(dst, sim.InFlightInst{Unit: "fetchbuf", Slot: i, PC: uint32(r.fbPC[i].Get(st))})
	}
	robHead, robCnt := r.robHead.Get(st), r.robCount.Get(st)
	for k := uint64(0); k < robCnt && k < RobSize; k++ {
		i := int((robHead + k) % RobSize)
		dst = append(dst, sim.InFlightInst{Unit: "rob", Slot: i, PC: uint32(r.robPC[i].Get(st))})
	}
	robPC := func(idx uint64) uint32 {
		return uint32(r.robPC[idx%RobSize].Get(st))
	}
	for i := 0; i < IQSize; i++ {
		if r.iqValid[i].Get(st) == 1 {
			dst = append(dst, sim.InFlightInst{Unit: "sched", Slot: i, PC: robPC(r.iqRob[i].Get(st))})
		}
	}
	for i := 0; i < SQSize; i++ {
		if r.sqValid[i].Get(st) == 1 {
			dst = append(dst, sim.InFlightInst{Unit: "stq", Slot: i, PC: robPC(r.sqRob[i].Get(st))})
		}
	}
	if r.ldValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "l1dcache", Slot: -1, PC: robPC(r.ldRob.Get(st))})
	}
	for i := 0; i < 4; i++ {
		if r.muV[i].Get(st) == 1 {
			dst = append(dst, sim.InFlightInst{Unit: "mul", Slot: i, PC: robPC(r.muRob[i].Get(st))})
		}
	}
	for i := 0; i < 32; i++ {
		if m := r.rat[i].Get(st); m&0x40 != 0 {
			dst = append(dst, sim.InFlightInst{Unit: "rename", Slot: i, PC: robPC(m & 0x3F)})
		}
	}
	return dst
}
