package ooo

import (
	"math/rand"
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
)

// TestMirrorRoundTrip asserts the unpacked mirror is lossless over arbitrary
// packed states: unpackU followed by packU must reproduce every bit,
// including values (corrupted head/tail pointers, out-of-range counts,
// garbage instruction words) no fault-free run would ever hold. This is the
// invariant that lets FlipBit target any flip-flop between compiled steps.
func TestMirrorRoundTrip(t *testing.T) {
	p := &prog.Program{Name: "rt", Words: []uint32{0}, MemWords: 4}
	c := New(p)
	rng := rand.New(rand.NewSource(0xC1EA5))
	bits := c.space.NumBits()
	for iter := 0; iter < 64; iter++ {
		for b := 0; b < bits; b++ {
			if rng.Intn(2) == 1 {
				c.st.FlipBit(b)
			}
		}
		want := c.st.Clone()
		c.unpackU()
		c.uValid = true
		c.syncU()
		if !c.st.Equal(want) {
			t.Fatalf("iter %d: pack(unpack(state)) != state", iter)
		}
	}
}

// TestMirrorStaysCoherentAcrossObservations runs a compiled core while
// hitting every observation point and asserts the packed view it exposes is
// always identical to a lockstep interpreter twin's.
func TestMirrorStaysCoherentAcrossObservations(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 12)
	b.Label("loop")
	b.Addi(1, 1, 3)
	b.Sw(1, 0, 2)
	b.Lw(3, 0, 2)
	b.Bne(1, 2, "loop")
	b.Out(3)
	b.Halt()
	p, err := prog.New("coherent", b.Items(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}

	ct := New(p) // compiled (tcode enabled by default)
	ci := New(p)
	ci.tp = nil // force the interpreter path on the twin

	for cyc := 1; cyc <= 300 && !ci.done; cyc++ {
		ct.Step()
		ci.Step()
		if !ct.State().Equal(ci.State()) {
			t.Fatalf("cycle %d: packed state diverged from interpreter", cyc)
		}
		if cyc%17 == 0 {
			if !ct.Matches(ci.Snapshot()) {
				t.Fatalf("cycle %d: Matches failed against interpreter snapshot", cyc)
			}
			ck := ct.Snapshot()
			ct.Restore(ck)
			if ct.uValid {
				t.Fatalf("cycle %d: Restore left the mirror marked valid", cyc)
			}
		}
	}
	if ci.status != ct.status || !ct.Matches(ci.Snapshot()) {
		t.Fatalf("final state diverged: interp %v vs compiled %v", ci.status, ct.status)
	}
}
