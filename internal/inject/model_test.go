package inject

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clear/internal/prog"
	"clear/internal/sim"
)

func TestModelRegistry(t *testing.T) {
	want := []string{"mbu", "set", "ssb", "uncore"}
	if got := ModelNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ModelNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		m := LookupModel(name)
		if m == nil {
			t.Fatalf("LookupModel(%q) = nil", name)
		}
		if m.Name() != name {
			t.Fatalf("LookupModel(%q).Name() = %q", name, m.Name())
		}
	}
	if LookupModel("nope") != nil {
		t.Fatal("LookupModel accepted an unregistered name")
	}
}

func TestRegisterModelValidation(t *testing.T) {
	cases := []string{"", "has/slash", "UPPER", "ssb"}
	for _, name := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterModel(%q) did not panic", name)
				}
			}()
			RegisterModel(badModel{name})
		}()
	}
}

type badModel struct{ name string }

func (m badModel) Name() string                              { return m.name }
func (badModel) Bits(*ModelEnv) []int                        { return nil }
func (badModel) Expand(*ModelEnv, int, int, uint64) Scenario { return nil }

func TestModelTagRoundTrip(t *testing.T) {
	cases := []struct {
		model, tag  string
		wantTag     string
		backModel   string
		backBaseTag string
	}{
		{"ssb", "base", "base", "ssb", "base"},
		{"", "base", "base", "ssb", "base"},
		{"mbu", "base", "mbu/base", "mbu", "base"},
		{"set", "eddi-srb", "set/eddi-srb", "set", "eddi-srb"},
		{"uncore", "", "uncore/", "uncore", ""},
	}
	for _, tc := range cases {
		if got := ModelTag(tc.model, tc.tag); got != tc.wantTag {
			t.Errorf("ModelTag(%q, %q) = %q, want %q", tc.model, tc.tag, got, tc.wantTag)
		}
		m, base := SplitModelTag(tc.wantTag)
		if m != tc.backModel || base != tc.backBaseTag {
			t.Errorf("SplitModelTag(%q) = (%q, %q), want (%q, %q)",
				tc.wantTag, m, base, tc.backModel, tc.backBaseTag)
		}
	}
	// A tag whose slash prefix is not a registered model stays ssb whole.
	if m, base := SplitModelTag("weird/tag"); m != "ssb" || base != "weird/tag" {
		t.Errorf("SplitModelTag(weird/tag) = (%q, %q)", m, base)
	}
	// An explicit "ssb/" prefix is not a model prefix (ssb is unprefixed).
	if m, base := SplitModelTag("ssb/base"); m != "ssb" || base != "ssb/base" {
		t.Errorf("SplitModelTag(ssb/base) = (%q, %q)", m, base)
	}
}

func TestMBUClusterExpansion(t *testing.T) {
	for _, kind := range []CoreKind{InO, OoO} {
		env := EnvFor(kind)
		model := LookupModel("mbu")
		nBits := SpaceBits(kind)
		for _, bit := range []int{0, 1, nBits / 2, nBits - 1} {
			cluster := env.Cluster(bit)
			sc := model.Expand(env, bit, 100, 12345)
			if len(sc) != len(cluster) {
				t.Fatalf("%v bit %d: scenario %d flips, cluster %d bits", kind, bit, len(sc), len(cluster))
			}
			seen := false
			for i, f := range sc {
				if f.Bit == bit {
					seen = true
				}
				if f.Delay != 0 {
					t.Fatalf("%v bit %d: mbu flip has delay %d", kind, bit, f.Delay)
				}
				if i > 0 && sc[i-1].Bit >= f.Bit {
					t.Fatalf("%v bit %d: cluster not ascending: %v", kind, bit, sc)
				}
				if d := env.Pl.WithinRadius(bit, 1.0); f.Bit != bit && !containsInt(d, f.Bit) {
					t.Fatalf("%v bit %d: flip %d outside the SEMU radius", kind, bit, f.Bit)
				}
			}
			if !seen {
				t.Fatalf("%v bit %d: struck bit missing from its own cluster %v", kind, bit, sc)
			}
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestUncoreBitsPopulation(t *testing.T) {
	wantUnits := map[CoreKind]map[string]bool{
		InO: {"memory": true, "icache": true, "dcache": true},
		OoO: {"fetchbuf": true, "stq": true, "l1dcache": true},
	}
	model := LookupModel("uncore")
	for _, kind := range []CoreKind{InO, OoO} {
		env := EnvFor(kind)
		bits := model.Bits(env)
		if len(bits) == 0 {
			t.Fatalf("%v: empty uncore strike population", kind)
		}
		if len(bits) >= SpaceBits(kind) {
			t.Fatalf("%v: uncore population is the whole space", kind)
		}
		for i, b := range bits {
			if u := env.Pl.Space.UnitOf(b); !wantUnits[kind][u] {
				t.Fatalf("%v: uncore bit %d is in unit %q", kind, b, u)
			}
			if i > 0 && bits[i-1] >= b {
				t.Fatalf("%v: uncore bits not ascending", kind)
			}
		}
		sc := model.Expand(env, bits[0], 5, 99)
		if len(sc) != 1 || sc[0] != (Flip{Bit: bits[0]}) {
			t.Fatalf("%v: uncore expansion %v, want single undelayed flip", kind, sc)
		}
	}
}

func TestSETSlackGate(t *testing.T) {
	env := EnvFor(InO)
	model := LookupModel("set")
	gated, passed := 0, 0
	for bit := 0; bit < SpaceBits(InO); bit++ {
		for h := uint64(0); h < 4; h++ {
			draw := h << 32 // pulse = 1 + (h>>32)%SETMaxPulse
			pulse := 1 + int(h%SETMaxPulse)
			sc := model.Expand(env, bit, 7, draw)
			if env.Pl.Slack[bit] < pulse {
				if len(sc) != 1 || sc[0].Bit != bit {
					t.Fatalf("bit %d slack %d pulse %d: want latch, got %v",
						bit, env.Pl.Slack[bit], pulse, sc)
				}
				passed++
			} else {
				if len(sc) != 0 {
					t.Fatalf("bit %d slack %d pulse %d: transient should vanish, got %v",
						bit, env.Pl.Slack[bit], pulse, sc)
				}
				gated++
			}
		}
	}
	if gated == 0 || passed == 0 {
		t.Fatalf("slack gate is degenerate: %d gated, %d passed", gated, passed)
	}
}

// TestScenarioWarmColdEquivalence pins the core scenario contract: the
// warm-started, convergence-pruned path must classify every scenario —
// including time-offset flips — identically to the from-reset path.
func TestScenarioWarmColdEquivalence(t *testing.T) {
	p := tinyProgram(t)
	ref, nomRes, err := BuildReference(InO, p, 16, 100000)
	if err != nil {
		t.Fatal(err)
	}
	nom := nomRes.Steps
	cold := NewCore(InO, p)
	warm := NewCore(InO, p)
	scenarios := []Scenario{
		{{Bit: 3}},
		{{Bit: 3}, {Bit: 9}},
		{{Bit: 3}, {Bit: 9, Delay: 2}},
		{{Bit: 1, Delay: 5}, {Bit: 2, Delay: 1}, {Bit: 3}},
		{{Bit: 7}, {Bit: 7}}, // double flip of one bit: a no-op
	}
	for _, sc := range scenarios {
		for _, cycle := range []int{1, nom / 3, nom - 2} {
			scCold := append(Scenario(nil), sc...)
			scWarm := append(Scenario(nil), sc...)
			o1, d1 := runScenarioCold(cold, p, scCold, cycle, nom, nil)
			o2, d2 := RunScenarioFrom(warm, p, ref, scWarm, cycle, nom, nil)
			if o1 != o2 || d1 != d2 {
				t.Fatalf("scenario %v cycle %d: cold (%v,%d) vs warm (%v,%d)",
					sc, cycle, o1, d1, o2, d2)
			}
		}
	}
}

func TestEmptyScenarioVanishesWithoutSimulation(t *testing.T) {
	p := tinyProgram(t)
	in := NewInjector()
	c := NewCore(InO, p)
	out, det := in.RunScenarioFrom(c, p, nil, nil, 10, 100, nil)
	if out != Vanished || det != -1 {
		t.Fatalf("empty scenario = (%v, %d), want (Vanished, -1)", out, det)
	}
	if got := in.injTotal.Value(); got != 1 {
		t.Fatalf("empty scenario tallied %d injections, want 1", got)
	}
}

// TestModelCampaignDeterminism runs one campaign per non-ssb model twice
// and requires identical results — the FaultModel purity contract the
// cache depends on.
func TestModelCampaignDeterminism(t *testing.T) {
	p := tinyProgram(t)
	for _, model := range []string{"mbu", "uncore", "set"} {
		cfg := Config{Core: InO, Bench: "tiny", Tag: ModelTag(model, "base"), SamplesPerFF: 1, Seed: 42}
		r1, err := Run(cfg, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(cfg, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s campaign not deterministic", model)
		}
		if r1.Totals.N == 0 {
			t.Fatalf("%s campaign ran no injections", model)
		}
		if len(r1.PerFF) != SpaceBits(InO) {
			t.Fatalf("%s campaign PerFF has %d entries, want the full space", model, len(r1.PerFF))
		}
	}
}

// TestUncoreCampaignOnlyStrikesUncore checks the population restriction
// reaches the campaign loop: every sampled injection lands on an uncore
// bit, core-datapath flip-flops get none.
func TestUncoreCampaignOnlyStrikesUncore(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", Tag: "uncore/base", SamplesPerFF: 1, Seed: 7}
	r, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := EnvFor(InO)
	uncore := map[int]bool{}
	for _, b := range env.UncoreBits() {
		uncore[b] = true
	}
	for bit, st := range r.PerFF {
		if st.N > 0 && !uncore[bit] {
			t.Fatalf("core bit %d (%s) was struck under the uncore model",
				bit, unitOfBit(env, bit))
		}
		if st.N == 0 && uncore[bit] {
			t.Fatalf("uncore bit %d got no samples", bit)
		}
	}
	if int(r.Totals.N) != len(env.UncoreBits())*cfg.SamplesPerFF {
		t.Fatalf("uncore campaign N = %d, want %d", r.Totals.N, len(env.UncoreBits())*cfg.SamplesPerFF)
	}
}

func unitOfBit(env *ModelEnv, bit int) string { return env.Pl.Space.UnitOf(bit) }

// TestCacheModelTrailerRoundTrip covers the CLRM trailer: a non-ssb result
// round-trips with its model, and renaming it into another model's slot is
// rejected by the Campaign validity check (model mismatch).
func TestCacheModelTrailerRoundTrip(t *testing.T) {
	r := &Result{
		Config:    Config{Core: InO, Bench: "x", Tag: "mbu/base", SamplesPerFF: 1, Seed: 5},
		NomCycles: 128,
		NomRet:    64,
		PerFF:     []FFStats{{N: 1, OMM: 1}},
		Totals:    Counts{N: 1, OMM: 1},
	}
	data, err := encodeCache(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[len(data)-8:len(data)-4]) != "CLRM" {
		t.Fatalf("non-ssb entry lacks the CLRM trailer: % x", data[len(data)-12:])
	}
	got, model, err := decodeCache(data)
	if err != nil {
		t.Fatal(err)
	}
	if model != "mbu" {
		t.Fatalf("decoded model %q, want mbu", model)
	}
	if got.Totals != r.Totals || got.Config != r.Config {
		t.Fatalf("CLRM round-trip mismatch: %+v", got)
	}
	// Bit-rot in the CRC-covered region — the payload, the model name
	// bytes, the length byte — must be caught. (Corrupting the magic
	// itself demotes the file to a legacy trailerless decode by design.)
	for _, i := range []int{0, len(data) - 9, len(data) - 10} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, _, err := decodeCache(bad); err == nil {
			t.Fatalf("decodeCache accepted a corrupted CLRM entry (byte %d)", i)
		}
	}
}

// TestCacheSSBFormatPinned freezes the legacy trailer: an ssb entry must
// end in CLRC with the CRC over the gob payload alone, so cache files
// written before fault models existed stay byte-compatible.
func TestCacheSSBFormatPinned(t *testing.T) {
	r := &Result{
		Config:    Config{Core: InO, Bench: "x", Tag: "base", SamplesPerFF: 1, Seed: 5},
		NomCycles: 128,
		NomRet:    64,
		PerFF:     []FFStats{{N: 1}},
		Totals:    Counts{N: 1, Vanished: 1},
	}
	data, err := encodeCache(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[len(data)-8:len(data)-4]) != "CLRC" {
		t.Fatalf("ssb entry lost its legacy CLRC trailer: % x", data[len(data)-8:])
	}
	if _, model, err := decodeCache(data); err != nil || model != "ssb" {
		t.Fatalf("ssb entry decoded as (%q, %v)", model, err)
	}
}

// TestPairCampaignDetLatency exercises the detection-latency accounting on
// the multi-flip path: with an always-detecting hook every pair injection
// is ED and must contribute to DetLatSum/DetN (the counters RunPair used
// to drop).
func TestPairCampaignDetLatency(t *testing.T) {
	p := tinyProgram(t)
	// A bounds checker: silent in the nominal run (tiny's values are
	// small), detecting whenever a corrupted register value retires.
	hf := func(*prog.Program) sim.CommitHook {
		n := 0
		return func(ev sim.CommitEvent) bool {
			n++
			return n > 1 && ev.Result > 1<<16
		}
	}
	nBits := SpaceBits(InO)
	var pairs [][2]int
	for i := 0; i+1 < nBits; i += 7 {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	cfg := PairConfig{Core: InO, Bench: "tiny", Tag: "hooked", SamplesPerPair: 2, Seed: 3}
	res, err := RunPairs(cfg, p, pairs, hf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.ED == 0 {
		t.Fatal("always-detecting hook produced no ED outcomes")
	}
	if res.DetN != int64(res.Totals.ED) {
		t.Fatalf("DetN = %d, want one entry per ED outcome (%d)", res.DetN, res.Totals.ED)
	}
	if res.DetLatSum < 0 {
		t.Fatalf("negative DetLatSum %d", res.DetLatSum)
	}
}

// FuzzScenarioDeterminism is the FaultModel purity fuzz target: for any
// (model, bit, cycle, hash) draw, Expand must return the same scenario
// twice, every flip must stay inside the flip-flop space with a
// non-negative delay, and ssb/mbu scenarios must contain the struck bit.
func FuzzScenarioDeterminism(f *testing.F) {
	f.Add(uint8(0), uint16(3), uint16(100), uint64(12345))
	f.Add(uint8(1), uint16(0), uint16(0), uint64(0))
	f.Add(uint8(2), uint16(900), uint16(7), uint64(1<<40))
	f.Add(uint8(3), uint16(65535), uint16(65535), ^uint64(0))
	names := ModelNames()
	env := EnvFor(InO)
	nBits := SpaceBits(InO)
	f.Fuzz(func(t *testing.T, mi uint8, bitRaw, cycleRaw uint16, h uint64) {
		model := LookupModel(names[int(mi)%len(names)])
		bit := int(bitRaw) % nBits
		if bits := model.Bits(env); bits != nil {
			bit = bits[int(bitRaw)%len(bits)]
		}
		cycle := int(cycleRaw)
		sc1 := model.Expand(env, bit, cycle, h)
		sc2 := model.Expand(env, bit, cycle, h)
		if !reflect.DeepEqual(sc1, sc2) {
			t.Fatalf("%s expansion not deterministic: %v vs %v", model.Name(), sc1, sc2)
		}
		struck := false
		for _, fl := range sc1 {
			if fl.Bit < 0 || fl.Bit >= nBits {
				t.Fatalf("%s flip outside the space: %v", model.Name(), fl)
			}
			if fl.Delay < 0 {
				t.Fatalf("%s flip with negative delay: %v", model.Name(), fl)
			}
			if fl.Bit == bit {
				struck = true
			}
		}
		if n := model.Name(); (n == "ssb" || n == "mbu" || n == "uncore") && !struck {
			t.Fatalf("%s scenario misses the struck bit %d: %v", n, bit, sc1)
		}
	})
}

// TestCampaignRejectsCrossModelCache plants an mbu result in the slot an
// ssb campaign would read (the hand-rename scenario the CLRM trailer
// exists for) and checks the campaign recomputes instead of trusting it.
func TestCampaignRejectsCrossModelCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)
	p := tinyProgram(t)

	mbuCfg := Config{Core: InO, Bench: "tiny", Tag: "mbu/base", SamplesPerFF: 1, Seed: 9}
	ssbCfg := Config{Core: InO, Bench: "tiny", Tag: "base", SamplesPerFF: 1, Seed: 9}
	mbuRes, err := Campaign(mbuCfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the attack: the mbu result re-labeled as the ssb campaign and
	// re-encoded into the ssb cache slot. The Config comparison alone
	// cannot catch this — only the model trailer disagrees.
	forged := *mbuRes
	forged.Config = ssbCfg
	data, err := encodeCacheAs(&forged, "mbu")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cacheKey(ssbCfg, p))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	in := NewInjector()
	got, err := in.Campaign(ssbCfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.cacheHits.Value() != 0 {
		t.Fatal("forged cross-model cache entry was served as a hit")
	}
	if reflect.DeepEqual(got.PerFF, mbuRes.PerFF) {
		t.Fatal("ssb campaign returned the planted mbu numbers")
	}
}

// encodeCacheAs gob-encodes r exactly as stored and hand-appends a CLRM
// trailer claiming the given model, regardless of what r's Tag implies —
// the test-only forgery encodeCache would refuse to produce.
func encodeCacheAs(r *Result, model string) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	buf.WriteString(model)
	buf.WriteByte(byte(len(model)))
	buf.Write(cacheModelMagic[:])
	sum := crc32.Checksum(buf.Bytes(), castagnoli)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	buf.Write(tr[:])
	return buf.Bytes(), nil
}
