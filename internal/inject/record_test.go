package inject

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"clear/internal/ff"
	"clear/internal/ino"
	"clear/internal/obs"
	"clear/internal/ooo"
	"clear/internal/prog"
	"clear/internal/sim"
)

// runSinkPair runs the same campaign twice on fresh injectors — once bare,
// once with a RecordBuffer attached — and returns both results plus the
// collected records.
func runSinkPair(t *testing.T, cfg Config, hookFactory func(*prog.Program) sim.CommitHook) (plain, sunk *Result, recs []Record) {
	t.Helper()
	p := tinyProgram(t)
	r1, err := NewInjector().Run(cfg, p, hookFactory)
	if err != nil {
		t.Fatal(err)
	}
	buf := &RecordBuffer{}
	in := NewInjector()
	in.Sink = buf
	r2, err := in.Run(cfg, p, hookFactory)
	if err != nil {
		t.Fatal(err)
	}
	return r1, r2, buf.Records()
}

// TestSinkDoesNotChangeResults is the attribution contract's equivalence
// half: attaching a RecordSink must change no campaign outcome, no Result
// field, and no cache byte, on both the warm-started and the hooked
// (cold, from-reset) paths.
func TestSinkDoesNotChangeResults(t *testing.T) {
	cfg := Config{Core: InO, Bench: "tiny-sink", Tag: "base", SamplesPerFF: 2, Seed: 0xC1EA5}
	for _, tc := range []struct {
		name string
		hook func(*prog.Program) sim.CommitHook
	}{
		{"warm", nil},
		{"hooked-cold", boundsHook(1 << 30)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain, sunk, recs := runSinkPair(t, cfg, tc.hook)
			if !reflect.DeepEqual(plain, sunk) {
				t.Fatalf("results differ with sink attached:\nplain: %+v\nsunk:  %+v", plain, sunk)
			}
			b1, err := encodeCache(plain)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := encodeCache(sunk)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("cache bytes differ with sink attached")
			}
			if len(recs) != plain.Totals.N {
				t.Fatalf("records = %d, want one per injection (%d)", len(recs), plain.Totals.N)
			}
		})
	}
}

// TestRecordsWellFormed checks every emitted record against the space and
// the campaign's own accounting: bits in range, units matching the space,
// cycles inside the nominal window, detection latencies only on ED, and
// per-outcome record tallies equal to the campaign totals.
func TestRecordsWellFormed(t *testing.T) {
	cfg := Config{Core: InO, Bench: "tiny-wf", Tag: "base", SamplesPerFF: 3, Seed: 0xC1EA5}
	res, _, recs := runSinkPair(t, cfg, nil)
	space := ino.Space()
	var got Counts
	for _, r := range recs {
		if r.Bit < 0 || r.Bit >= space.NumBits() {
			t.Fatalf("record bit %d out of range", r.Bit)
		}
		if want := space.UnitOf(r.Bit); r.Unit != want {
			t.Fatalf("record unit %q for bit %d, want %q", r.Unit, r.Bit, want)
		}
		if r.Cycle < 0 || r.Cycle >= res.NomCycles {
			t.Fatalf("record cycle %d outside nominal window [0,%d)", r.Cycle, res.NomCycles)
		}
		if r.Outcome == ED {
			if r.DetLat < 0 {
				t.Fatalf("ED record with DetLat %d", r.DetLat)
			}
		} else if r.DetLat != -1 {
			t.Fatalf("%v record with DetLat %d, want -1", r.Outcome, r.DetLat)
		}
		got.Add(r.Outcome)
	}
	if got != res.Totals {
		t.Fatalf("record outcome tallies %+v != campaign totals %+v", got, res.Totals)
	}
	// Most attributed roots must be real static instructions. A few
	// out-of-range PCs are legitimate — the fetch stage holds the
	// next-to-fetch PC, which runs past the last word while halt drains —
	// but the bulk of the attribution must land inside the program.
	p := tinyProgram(t)
	attributed, inRange := 0, 0
	for _, r := range recs {
		if r.RootPC == NoRootPC {
			continue
		}
		attributed++
		if int(r.RootPC) < len(p.Words) {
			inRange++
		}
	}
	if attributed == 0 {
		t.Fatal("no record attributed a root instruction")
	}
	if inRange*2 < attributed {
		t.Fatalf("only %d of %d attributed roots inside the program", inRange, attributed)
	}
}

// TestScenarioSinkOneRecord pins the scenario contract: one record per
// executed scenario with Bit = the first-applied flip, and nothing for the
// empty scenario.
func TestScenarioSinkOneRecord(t *testing.T) {
	p := tinyProgram(t)
	nom := NewCore(InO, p).Run(100000)
	ref, _, err := BuildReference(InO, p, 64, 100000)
	if err != nil {
		t.Fatal(err)
	}
	buf := &RecordBuffer{}
	in := NewInjector()
	in.Sink = buf
	c := NewCore(InO, p)
	sc := Scenario{{Bit: 9, Delay: 1}, {Bit: 3, Delay: 0}}
	in.RunScenarioFrom(c, p, ref, sc, 40, nom.Steps, nil)
	if buf.Len() != 1 {
		t.Fatalf("records = %d, want 1", buf.Len())
	}
	if got := buf.Records()[0].Bit; got != 3 {
		t.Fatalf("record bit = %d, want the first-applied flip 3", got)
	}
	in.RunScenarioFrom(c, p, ref, Scenario{}, 40, nom.Steps, nil)
	if buf.Len() != 1 {
		t.Fatal("empty scenario emitted a record")
	}
}

// TestRecordBufferDeterministicOrder checks Records() sorts by bit while
// preserving per-bit arrival order.
func TestRecordBufferDeterministicOrder(t *testing.T) {
	buf := &RecordBuffer{}
	buf.Record(Record{Bit: 5, Cycle: 2})
	buf.Record(Record{Bit: 1, Cycle: 9})
	buf.Record(Record{Bit: 5, Cycle: 1})
	got := buf.Records()
	want := []Record{{Bit: 1, Cycle: 9}, {Bit: 5, Cycle: 2}, {Bit: 5, Cycle: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Records() = %+v, want %+v", got, want)
	}
}

// TestTraceSinkSchema checks the JSONL export: one "injection" object per
// record with the NoRootPC sentinel mapped to -1.
func TestTraceSinkSchema(t *testing.T) {
	var out bytes.Buffer
	tr := obs.NewTracer(&out)
	s := TraceSink{T: tr}
	s.Record(Record{Bit: 7, Unit: "fetch", Cycle: 12, Outcome: OMM, DetLat: -1, RootPC: 3})
	s.Record(Record{Bit: 8, Unit: "rob", Cycle: 40, Outcome: ED, DetLat: 5, RootPC: NoRootPC})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec struct {
		Type    string `json:"type"`
		Bit     int    `json:"bit"`
		Unit    string `json:"unit"`
		Cycle   int    `json:"cycle"`
		Outcome string `json:"outcome"`
		DetLat  int    `json:"det_lat"`
		RootPC  int64  `json:"root_pc"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "injection" || rec.Unit != "fetch" || rec.RootPC != 3 {
		t.Fatalf("first line = %+v", rec)
	}
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.RootPC != -1 || rec.Outcome != "ED" || rec.DetLat != 5 {
		t.Fatalf("second line = %+v", rec)
	}
}

// TestTraceSinkZeroLatencyDetLat is the regression for the omitempty bug:
// an ED detection firing at the injection cycle has DetLat 0, and the JSONL
// export must still carry det_lat explicitly — dropping the field made an
// instant detection indistinguishable from the -1 of non-ED records.
func TestTraceSinkZeroLatencyDetLat(t *testing.T) {
	var out bytes.Buffer
	tr := obs.NewTracer(&out)
	s := TraceSink{T: tr}
	s.Record(Record{Bit: 3, Unit: "rob", Cycle: 21, Outcome: ED, DetLat: 0, RootPC: 9})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	line := bytes.TrimSpace(out.Bytes())
	if !bytes.Contains(line, []byte(`"det_lat":0`)) {
		t.Fatalf("zero-latency detection dropped det_lat from JSONL: %s", line)
	}
	var rec map[string]any
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatal(err)
	}
	v, present := rec["det_lat"]
	if !present {
		t.Fatalf("det_lat missing from decoded record: %v", rec)
	}
	if v.(float64) != 0 {
		t.Fatalf("det_lat = %v, want 0", v)
	}
}

// TestFFStatsAddSat checks saturation: merged counters clamp at the uint16
// bound instead of wrapping (the counter stays a conservative upper bound).
func TestFFStatsAddSat(t *testing.T) {
	a := FFStats{N: math.MaxUint16 - 1, OMM: 10, UT: math.MaxUint16}
	a.AddSat(FFStats{N: 5, OMM: 2, UT: 1, Hang: 3})
	want := FFStats{N: math.MaxUint16, OMM: 12, UT: math.MaxUint16, Hang: 3}
	if a != want {
		t.Fatalf("AddSat = %+v, want %+v", a, want)
	}
}

// TestCacheBytesGolden freezes the on-disk ssb cache encoding of a
// handcrafted Result. If this test fails, the gob layout of Result (or the
// CLRC trailer) changed and every existing campaign cache entry would be
// invalidated — Result must not gain, lose, or reorder exported fields.
func TestCacheBytesGolden(t *testing.T) {
	r := &Result{
		Config:    Config{Core: InO, Bench: "golden", Tag: "base", SamplesPerFF: 2, Seed: 0xC1EA5},
		NomCycles: 488,
		NomRet:    123,
		PerFF: []FFStats{
			{N: 2, OMM: 1},
			{N: 2, UT: 1, ED: 1},
			{N: 2},
		},
		Totals:    Counts{N: 6, Vanished: 3, OMM: 1, UT: 1, ED: 1},
		DetLatSum: 37,
		DetN:      1,
	}
	got, err := encodeCache(r)
	if err != nil {
		t.Fatal(err)
	}
	const golden = "667f03010106526573756c7401ff800001070106436f6e66696701ff820001094e6f6d4379636c657301040001064e6f6d5265740104000105506572464601ff86000106546f74616c7301ff880001094465744c617453756d01040001044465744e010400000049ff8103010106436f6e66696701ff820001050104436f7265010400010542656e6368010c000103546167010c00010c53616d706c6573506572464601040001045365656401060000001fff85020101105b5d696e6a6563742e4646537461747301ff860001ff8400003aff83030101074646537461747301ff8400010501014e01060001034f4d4d01060001025554010600010448616e6701060001024544010600000046ff8703010106436f756e747301ff8800010601014e010400010856616e697368656401040001034f4d4d01040001025554010400010448616e6701040001024544010400000042ff80010206676f6c64656e010462617365010401fd0c1ea50001fe03d001fff6010301020101000102020102010001020001010c010601020102020200014a010200434c5243e516c1d4"
	if hex.EncodeToString(got) != golden {
		t.Fatalf("cache encoding changed:\ngot  %s\nwant %s", hex.EncodeToString(got), golden)
	}
	back, model, err := decodeCache(got)
	if err != nil {
		t.Fatal(err)
	}
	if model != DefaultModel || !reflect.DeepEqual(back, r) {
		t.Fatalf("golden bytes did not round-trip: model %q, %+v", model, back)
	}
}

// TestInFlightCompiledMatchesInterpreter steps both cores through the tiny
// program under compiled and interpreter execution and requires identical
// in-flight observations at every sampled cycle — InFlight must read
// through the latch mirror exactly like State().
func TestInFlightCompiledMatchesInterpreter(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		sample := func(compiled bool) [][]sim.InFlightInst {
			setCompiled(t, compiled)
			c := NewCore(kind, p)
			var out [][]sim.InFlightInst
			for i := 0; i < 200 && !c.Done(); i++ {
				c.Step()
				if i%7 == 0 {
					out = append(out, c.InFlight(nil))
				}
			}
			return out
		}
		interp := sample(false)
		comp := sample(true)
		if !reflect.DeepEqual(interp, comp) {
			t.Fatalf("%v: in-flight observations differ between execution modes", kind)
		}
		if len(interp) == 0 || len(interp[0]) == 0 {
			t.Fatalf("%v: no in-flight instructions observed", kind)
		}
	}
}

// TestInFlightAppendsToDst checks the allocation contract: InFlight appends
// to the caller's buffer and always reports the fetch PC.
func TestInFlightAppendsToDst(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		c := NewCore(kind, p)
		for i := 0; i < 50; i++ {
			c.Step()
		}
		var buf [160]sim.InFlightInst
		flights := c.InFlight(buf[:0])
		if len(flights) == 0 {
			t.Fatalf("%v: empty in-flight list mid-run", kind)
		}
		if flights[0].Unit != "fetch" {
			t.Fatalf("%v: first entry unit %q, want fetch", kind, flights[0].Unit)
		}
		var sp *ff.Space
		if kind == InO {
			sp = ino.Space()
		} else {
			sp = ooo.Space()
		}
		units := map[string]bool{}
		for _, u := range sp.Units() {
			units[u] = true
		}
		for _, f := range flights {
			if !units[f.Unit] {
				t.Fatalf("%v: in-flight unit %q not in the space", kind, f.Unit)
			}
		}
	}
}

// TestAttrTrailingIndex pins the field-name suffix parser attribution
// tables are built from.
func TestAttrTrailingIndex(t *testing.T) {
	cases := map[string]int{
		"f.pc":             -1,
		"rob.pc17":         17,
		"sched0.s1val5":    5,
		"mem.stq.address0": 0,
		"exec.mu0.a12":     12,
		"42":               42,
	}
	for name, want := range cases {
		if got := trailingIndex(name); got != want {
			t.Errorf("trailingIndex(%q) = %d, want %d", name, got, want)
		}
	}
}
