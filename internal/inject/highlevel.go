package inject

import (
	"fmt"

	"clear/internal/isa"
	"clear/internal/prog"
)

// High-level (naive) injection modes, reproducing the paper's Tables 11 and
// 14: architecture-register and program-variable error injection performed
// on the functional simulator. The paper shows these can grossly mis-
// estimate improvements relative to flip-flop-level injection; the harness
// reproduces that comparison.

// Mode selects a high-level injection model.
type Mode int

// High-level injection modes (paper nomenclature).
const (
	RegUniform Mode = iota // regU: random register, random instruction
	RegWrite               // regW: corrupt a value as it is written to a register
	VarUniform             // varU: random program-variable word, random instruction
	VarWrite               // varW: corrupt a value as it is stored to a variable
)

func (m Mode) String() string {
	switch m {
	case RegUniform:
		return "regU"
	case RegWrite:
		return "regW"
	case VarUniform:
		return "varU"
	case VarWrite:
		return "varW"
	}
	return "?"
}

// writeEvent records a dynamic write target for the write-triggered modes.
type writeEvent struct {
	step int
	loc  int // register number or memory address
}

// profile collects the dynamic register-write and variable-store events of
// a program's nominal execution.
func profile(p *prog.Program, maxSteps int) (regWrites, varStores []writeEvent, steps int, err error) {
	inVar := func(addr int32) bool {
		for _, v := range p.Vars {
			if int(addr) >= v.Addr && int(addr) < v.Addr+v.Len {
				return true
			}
		}
		return false
	}
	s := prog.NewISS(p)
	s.Hook = func(s *prog.ISS, step int) {
		if s.PC < 0 || s.PC >= len(p.Code) {
			return
		}
		in := p.Code[s.PC]
		if in.Op.Valid() && in.Op.WritesReg() && in.Rd != 0 {
			regWrites = append(regWrites, writeEvent{step: step, loc: int(in.Rd)})
		}
		if in.Op == isa.SW {
			addr := int32(s.R[in.Rs1]) + in.Imm
			if inVar(addr) {
				varStores = append(varStores, writeEvent{step: step, loc: int(addr)})
			}
		}
	}
	res := s.Run(maxSteps)
	if res.Status != prog.StatusHalted {
		return nil, nil, 0, fmt.Errorf("inject: profile run of %s: %v", p.Name, res.Status)
	}
	return regWrites, varStores, res.Steps, nil
}

// RunHighLevel performs a high-level injection campaign on the functional
// simulator and returns outcome tallies. Programs injected in the Var modes
// must declare Vars.
func RunHighLevel(p *prog.Program, mode Mode, samples int, seed uint64) (Counts, error) {
	var counts Counts
	regWrites, varStores, steps, err := profile(p, 8_000_000)
	if err != nil {
		return counts, err
	}
	var varWords []int
	for _, v := range p.Vars {
		for a := v.Addr; a < v.Addr+v.Len; a++ {
			varWords = append(varWords, a)
		}
	}
	if (mode == VarUniform && len(varWords) == 0) ||
		(mode == VarWrite && len(varStores) == 0) {
		return counts, fmt.Errorf("inject: %s has no variables for mode %v", p.Name, mode)
	}
	if mode == RegWrite && len(regWrites) == 0 {
		return counts, fmt.Errorf("inject: %s has no register writes", p.Name)
	}

	for k := 0; k < samples; k++ {
		h := splitmix64(seed ^ uint64(k)<<24)
		h2 := splitmix64(h)
		bit := uint(h2 % 32)
		var atStep, loc int
		switch mode {
		case RegUniform:
			atStep = int(h % uint64(steps))
			loc = 1 + int(h2>>8%31)
		case RegWrite:
			ev := regWrites[h%uint64(len(regWrites))]
			atStep, loc = ev.step+1, ev.loc
		case VarUniform:
			atStep = int(h % uint64(steps))
			loc = varWords[int(h2>>8%uint64(len(varWords)))]
		case VarWrite:
			ev := varStores[h%uint64(len(varStores))]
			atStep, loc = ev.step+1, ev.loc
		}
		s := prog.NewISS(p)
		fired := false
		s.Hook = func(s *prog.ISS, step int) {
			if fired || step != atStep {
				return
			}
			fired = true
			switch mode {
			case RegUniform, RegWrite:
				s.R[loc&31] ^= 1 << bit
			default:
				if loc >= 0 && loc < len(s.Mem) {
					s.Mem[loc] ^= 1 << bit
				}
			}
		}
		res := s.Run(HangFactor * steps)
		counts.Add(Classify(p, res))
	}
	return counts, nil
}
