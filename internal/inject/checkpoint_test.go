package inject

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"clear/internal/bench"
	"clear/internal/prog"
	"clear/internal/sim"
)

// setInterval overrides CheckpointInterval for one test.
func setInterval(t testing.TB, v int) {
	t.Helper()
	old := CheckpointInterval
	CheckpointInterval = v
	t.Cleanup(func() { CheckpointInterval = old })
}

// boundsHook returns a stateful commit hook modeled on an architecture-level
// value checker: it tracks how many instructions retired and flags any
// committed result above a bound the fault-free run never reaches. The
// internal counter makes the hook impossible to warm-start from a mid-run
// checkpoint, exercising the exact-path fallback.
func boundsHook(bound uint32) func(*prog.Program) sim.CommitHook {
	return func(*prog.Program) sim.CommitHook {
		n := 0
		return func(ev sim.CommitEvent) bool {
			n++
			return n > 1 && ev.Result > bound
		}
	}
}

// TestRunOneFromEquivalence drives a randomized grid of (bit, cycle)
// injection points through both the from-reset and the checkpointed path on
// both cores and requires identical (Outcome, detectCycle) classifications.
func TestRunOneFromEquivalence(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		ref, nomRes, err := BuildReference(kind, p, 16, 100000)
		if err != nil {
			t.Fatalf("%v BuildReference: %v", kind, err)
		}
		if nomRes.Status != prog.StatusHalted {
			t.Fatalf("%v nominal run failed: %v", kind, nomRes.Status)
		}
		nom := nomRes.Steps
		if len(ref.Ckpts) < 2 {
			t.Fatalf("%v: want several checkpoints, got %d (nominal %d cycles)",
				kind, len(ref.Ckpts), nom)
		}
		direct := NewCore(kind, p)
		warm := NewCore(kind, p)
		nBits := SpaceBits(kind)
		for s := 0; s < 300; s++ {
			h := splitmix64(uint64(s) ^ 0xFEED)
			bit := int(h % uint64(nBits))
			cycle := int((h >> 24) % uint64(nom))
			o1, d1 := RunOne(direct, p, bit, cycle, nom, nil)
			o2, d2 := RunOneFrom(warm, p, ref, bit, cycle, nom, nil)
			if o1 != o2 || d1 != d2 {
				t.Fatalf("%v bit=%d cycle=%d: from-reset (%v,%d) vs checkpointed (%v,%d)",
					kind, bit, cycle, o1, d1, o2, d2)
			}
		}
		// hook-carrying runs must keep the exact from-reset path and still
		// agree classification-for-classification
		for s := 0; s < 50; s++ {
			h := splitmix64(uint64(s) ^ 0xB00F)
			bit := int(h % uint64(nBits))
			cycle := int((h >> 24) % uint64(nom))
			hf := boundsHook(1 << 20)
			o1, d1 := RunOne(direct, p, bit, cycle, nom, hf)
			o2, d2 := RunOneFrom(warm, p, ref, bit, cycle, nom, hf)
			if o1 != o2 || d1 != d2 {
				t.Fatalf("%v hooked bit=%d cycle=%d: (%v,%d) vs (%v,%d)",
					kind, bit, cycle, o1, d1, o2, d2)
			}
		}
	}
}

// TestCampaignBitIdentical asserts that a fixed-seed campaign produces a
// byte-identical Result whether checkpointing is disabled (the historical
// from-reset path), run at a non-default interval, or at the default — the
// cache-compatibility guarantee for the committed testdata/cache entries.
func TestCampaignBitIdentical(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 2, Seed: 0xC1EA5}
	encode := func(r *Result) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	setInterval(t, 0)
	r0, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(r0)
	for _, interval := range []int{64, 256, 1024} {
		CheckpointInterval = interval
		r, err := Run(cfg, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, encode(r)) {
			t.Fatalf("interval %d: campaign result differs from from-reset baseline", interval)
		}
	}
}

// TestCampaignBitIdenticalHooked covers the hook-carrying campaign: the
// checkpointed engine must leave it byte-identical too (it keeps the exact
// from-reset path).
func TestCampaignBitIdenticalHooked(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 7}
	hf := boundsHook(1 << 20)
	setInterval(t, 0)
	r0, err := Run(cfg, p, hf)
	if err != nil {
		t.Fatal(err)
	}
	CheckpointInterval = 256
	r1, err := Run(cfg, p, hf)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Totals != r1.Totals {
		t.Fatalf("hooked campaign differs: %+v vs %+v", r0.Totals, r1.Totals)
	}
}

func TestSamplesPerFFRange(t *testing.T) {
	p := tinyProgram(t)
	for _, n := range []int{70000, 1 << 16, -1} {
		cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: n, Seed: 1}
		if _, err := Run(cfg, p, nil); err == nil {
			t.Fatalf("SamplesPerFF=%d: want counter-range error, got nil", n)
		}
	}
}

// TestCampaignCacheRejectsForeign plants a decodable-but-foreign result at a
// campaign's cache path (simulating a key collision or a hand-edited file)
// and asserts the campaign is regenerated rather than silently served
// another configuration's statistics.
func TestCampaignCacheRejectsForeign(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)
	p := tinyProgram(t)

	cfgA := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 1}
	rA, err := Campaign(cfgA, p, nil)
	if err != nil {
		t.Fatal(err)
	}

	plant := func(r *Result, path string) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := gob.NewEncoder(f).Encode(r); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// foreign Config at cfgB's path: must be rejected and regenerated
	cfgB := cfgA
	cfgB.Seed = 2
	pathB := filepath.Join(dir, cacheKey(cfgB, p))
	plant(rA, pathB)
	rB, err := Campaign(cfgB, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rB.Config != cfgB {
		t.Fatalf("cache returned foreign campaign: Config %+v, want %+v", rB.Config, cfgB)
	}

	// matching Config but implausible NomCycles: also stale
	forged := *rB
	forged.NomCycles = 0
	plant(&forged, pathB)
	rB2, err := Campaign(cfgB, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rB2.NomCycles == 0 {
		t.Fatal("cache returned result with NomCycles=0")
	}
	if rB2.Totals != rB.Totals {
		t.Fatalf("regenerated campaign differs: %+v vs %+v", rB2.Totals, rB.Totals)
	}
}

// BenchmarkCampaignInO measures the full InO baseline campaign on a real
// benchmark program, from-reset versus checkpointed. The checkpointed
// engine's speedup (≥2x) comes from warm-starting each injection near its
// sampled cycle and from convergence pruning.
func BenchmarkCampaignInO(b *testing.B) {
	p := bench.ByName("gzip").MustProgram()
	cfg := Config{Core: InO, Bench: "gzip", SamplesPerFF: 1, Seed: 0xC1EA5}
	def := CheckpointInterval
	run := func(b *testing.B, interval int) {
		setInterval(b, interval)
		for i := 0; i < b.N; i++ {
			if _, err := Run(cfg, p, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("from-reset", func(b *testing.B) { run(b, 0) })
	b.Run("checkpointed", func(b *testing.B) { run(b, def) })
}

// TestBuildReferenceRejectsBadInterval checks that a non-positive interval
// returns an error instead of panicking with a division by zero.
func TestBuildReferenceRejectsBadInterval(t *testing.T) {
	p := tinyProgram(t)
	for _, interval := range []int{0, -1, -256} {
		if _, _, err := BuildReference(InO, p, interval, 100000); err == nil {
			t.Errorf("BuildReference(interval=%d): want error, got nil", interval)
		}
	}
	if _, _, err := BuildReference(InO, p, 16, 100000); err != nil {
		t.Errorf("BuildReference(interval=16): unexpected error %v", err)
	}
}
