package inject

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"clear/internal/prog"
	"clear/internal/sim"
)

// Campaign results are expensive (tens of seconds for the OoO core), so they
// are cached on disk keyed by a hash of the configuration and the exact
// program binary. Delete the cache directory (or set CLEAR_CACHE_DIR) to
// force re-runs.
//
// Entries are self-healing: each file carries a CRC32-C integrity trailer
// verified on every read, and a corrupt or truncated entry is quarantined
// (renamed *.corrupt, preserving the evidence) and recomputed instead of
// failing the campaign. See DESIGN.md §8.

var (
	cacheDirOnce sync.Once
	cacheDirPath string
)

// CacheDir returns the campaign cache directory: $CLEAR_CACHE_DIR if set
// (consulted on every call, so tests overriding it do not poison later
// lookups), else testdata/cache under the enclosing Go module root, else a
// temp dir (the fallback is memoized).
func CacheDir() string {
	if d := os.Getenv("CLEAR_CACHE_DIR"); d != "" {
		return d
	}
	cacheDirOnce.Do(func() {
		dir, err := os.Getwd()
		if err == nil {
			for {
				if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
					cacheDirPath = filepath.Join(dir, "testdata", "cache")
					return
				}
				parent := filepath.Dir(dir)
				if parent == dir {
					break
				}
				dir = parent
			}
		}
		cacheDirPath = filepath.Join(os.TempDir(), "clear-cache")
	})
	return cacheDirPath
}

func cacheKey(cfg Config, p *prog.Program) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d|", cfg.Core, cfg.Bench, cfg.Tag, cfg.SamplesPerFF, cfg.Seed)
	for _, w := range p.Words {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		h.Write(b[:])
	}
	for _, w := range p.Data {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		h.Write(b[:])
	}
	// The fault model rides inside Tag ("mbu/base"), so it is already part
	// of both the hash and the filename; only the path separator needs
	// flattening. Unprefixed (ssb) tags keep their exact legacy filenames.
	tag := strings.ReplaceAll(nonEmpty(cfg.Tag), "/", "_")
	return fmt.Sprintf("%s-%s-%s-%016x.gob", cfg.Core, cfg.Bench, tag, h.Sum64())
}

func nonEmpty(s string) string {
	if s == "" {
		return "base"
	}
	return s
}

// cacheMagic marks the 8-byte integrity trailer appended to every ssb
// cache entry: the 4 magic bytes followed by the little-endian CRC32-C of
// the gob payload. Entries written before the trailer existed lack it and
// fall back to a plain decode.
var cacheMagic = [4]byte{'C', 'L', 'R', 'C'}

// cacheModelMagic marks the model-carrying trailer of non-ssb entries:
// [gob payload][model bytes][1-byte model length]['C','L','R','M'][CRC32-C
// of everything preceding]. Recording the model in the trailer — not just
// the Tag inside the gob — means a file whose header disagrees with its
// payload (a hand-renamed or cross-model-copied entry) is rejected before
// its campaign numbers can leak into the wrong model's sweep. ssb entries
// keep the legacy CLRC format byte-for-byte, and legacy trailerless or
// CLRC files always decode as model "ssb".
var cacheModelMagic = [4]byte{'C', 'L', 'R', 'M'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeCache serializes a campaign result and appends the integrity
// trailer: CLRC for ssb results (the legacy byte-identical format), CLRM
// with the embedded model name for every other fault model.
func encodeCache(r *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	model, _ := SplitModelTag(r.Config.Tag)
	var sum uint32
	if model != DefaultModel {
		if len(model) > 255 {
			return nil, fmt.Errorf("inject: fault-model name %q too long for cache trailer", model)
		}
		buf.WriteString(model)
		buf.WriteByte(byte(len(model)))
		buf.Write(cacheModelMagic[:])
		// CLRM checksums payload + model + length + magic.
		sum = crc32.Checksum(buf.Bytes(), castagnoli)
	} else {
		// The legacy CLRC trailer checksums only the gob payload (magic
		// excluded) — frozen, so existing ssb entries stay byte-identical.
		sum = crc32.Checksum(buf.Bytes(), castagnoli)
		buf.Write(cacheMagic[:])
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	buf.Write(tr[:])
	return buf.Bytes(), nil
}

// decodeCache deserializes a cache entry body, returning the result and
// the fault model the entry was recorded under. When an integrity trailer
// is present the CRC is verified before gob sees a single byte;
// trailerless (legacy) entries decode directly, where gob's own framing is
// the only truncation defense. Legacy trailerless and CLRC entries are
// model "ssb" by definition.
func decodeCache(data []byte) (*Result, string, error) {
	payload := data
	model := DefaultModel
	n := len(data)
	switch {
	case n >= 8 && bytes.Equal(data[n-8:n-4], cacheMagic[:]):
		want := binary.LittleEndian.Uint32(data[n-4:])
		payload = data[:n-8]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, "", fmt.Errorf("inject: cache CRC mismatch (%08x != %08x)", got, want)
		}
	case n >= 9 && bytes.Equal(data[n-8:n-4], cacheModelMagic[:]):
		want := binary.LittleEndian.Uint32(data[n-4:])
		if got := crc32.Checksum(data[:n-4], castagnoli); got != want {
			return nil, "", fmt.Errorf("inject: cache CRC mismatch (%08x != %08x)", got, want)
		}
		mlen := int(data[n-9])
		if n < 9+mlen {
			return nil, "", fmt.Errorf("inject: cache model trailer truncated")
		}
		model = string(data[n-9-mlen : n-9])
		payload = data[:n-9-mlen]
	}
	var r Result
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
		return nil, "", fmt.Errorf("inject: cache decode: %w", err)
	}
	return &r, model, nil
}

// quarantine renames a corrupt cache entry to path+".corrupt" so the
// evidence survives for postmortems while the campaign recomputes. If the
// rename itself fails the entry is removed — recomputing must never be
// blocked by a bad file.
func (in *Injector) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err == nil {
		in.quarantined.Add(1)
	} else {
		os.Remove(path)
	}
}

// Campaign runs (or loads from cache) the injection campaign for cfg. Cache
// failures never fail the campaign: a corrupt or truncated entry is
// quarantined and the campaign recomputed; a decodable entry that does not
// demonstrably belong to this campaign (stored Config mismatch, implausible
// shape — a key collision or hand-edited file) is discarded as stale.
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute cache traffic (and the campaign
// trace record) to a specific scope.
func Campaign(cfg Config, p *prog.Program, hookFactory func(*prog.Program) sim.CommitHook) (*Result, error) {
	return std.Campaign(cfg, p, hookFactory)
}

// Campaign is the scoped form of the package-level Campaign.
func (in *Injector) Campaign(cfg Config, p *prog.Program, hookFactory func(*prog.Program) sim.CommitHook) (*Result, error) {
	start := time.Now()
	wantModel, _ := SplitModelTag(cfg.Tag)
	path := filepath.Join(CacheDir(), cacheKey(cfg, p))
	if data, err := os.ReadFile(path); err == nil {
		r, gotModel, derr := decodeCache(data)
		if derr == nil && r.Config == cfg && gotModel == wantModel && r.NomCycles > 0 &&
			len(r.PerFF) == SpaceBits(cfg.Core) {
			in.cacheHits.Add(1)
			in.traceCampaign(cfg, r, "cache", time.Since(start))
			return r, nil
		}
		if derr != nil {
			in.quarantine(path)
		} else {
			os.Remove(path) // stale, not corrupt: no evidence worth keeping
		}
	}
	in.cacheMisses.Add(1)
	r, err := in.Run(cfg, p, hookFactory)
	if err != nil {
		return nil, err
	}
	in.traceCampaign(cfg, r, "run", time.Since(start))
	if data, encErr := encodeCache(r); encErr == nil {
		if err := os.MkdirAll(CacheDir(), 0o755); err == nil {
			tmp, err := os.CreateTemp(CacheDir(), "campaign-*")
			if err == nil {
				name := tmp.Name()
				_, werr := tmp.Write(data)
				cerr := tmp.Close()
				// Caching is best-effort: on any failure (write, close, or
				// rename) the temp file is removed and the freshly computed
				// result is returned; the campaign simply re-runs next time.
				if werr != nil || cerr != nil || os.Rename(name, path) != nil {
					os.Remove(name)
				}
			}
		}
	}
	return r, nil
}
