package inject

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"clear/internal/prog"
	"clear/internal/sim"
)

// Campaign results are expensive (tens of seconds for the OoO core), so they
// are cached on disk keyed by a hash of the configuration and the exact
// program binary. Delete the cache directory (or set CLEAR_CACHE_DIR) to
// force re-runs.

var (
	cacheDirOnce sync.Once
	cacheDirPath string
)

// CacheDir returns the campaign cache directory: $CLEAR_CACHE_DIR if set
// (consulted on every call, so tests overriding it do not poison later
// lookups), else testdata/cache under the enclosing Go module root, else a
// temp dir (the fallback is memoized).
func CacheDir() string {
	if d := os.Getenv("CLEAR_CACHE_DIR"); d != "" {
		return d
	}
	cacheDirOnce.Do(func() {
		dir, err := os.Getwd()
		if err == nil {
			for {
				if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
					cacheDirPath = filepath.Join(dir, "testdata", "cache")
					return
				}
				parent := filepath.Dir(dir)
				if parent == dir {
					break
				}
				dir = parent
			}
		}
		cacheDirPath = filepath.Join(os.TempDir(), "clear-cache")
	})
	return cacheDirPath
}

func cacheKey(cfg Config, p *prog.Program) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d|", cfg.Core, cfg.Bench, cfg.Tag, cfg.SamplesPerFF, cfg.Seed)
	for _, w := range p.Words {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		h.Write(b[:])
	}
	for _, w := range p.Data {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		h.Write(b[:])
	}
	return fmt.Sprintf("%s-%s-%s-%016x.gob", cfg.Core, cfg.Bench, nonEmpty(cfg.Tag), h.Sum64())
}

func nonEmpty(s string) string {
	if s == "" {
		return "base"
	}
	return s
}

// Campaign runs (or loads from cache) the injection campaign for cfg.
func Campaign(cfg Config, p *prog.Program, hookFactory func(*prog.Program) sim.CommitHook) (*Result, error) {
	path := filepath.Join(CacheDir(), cacheKey(cfg, p))
	if f, err := os.Open(path); err == nil {
		var r Result
		err := gob.NewDecoder(f).Decode(&r)
		f.Close()
		// A decodable file is trusted only if it demonstrably belongs to
		// this campaign: the stored Config must equal the requested one and
		// the result must be internally plausible. A cache-key collision or
		// a hand-edited file is treated as stale, never silently returned
		// as another campaign's statistics.
		if err == nil && r.Config == cfg && r.NomCycles > 0 &&
			len(r.PerFF) == SpaceBits(cfg.Core) {
			return &r, nil
		}
		// stale or corrupt: fall through and regenerate
		os.Remove(path)
	}
	r, err := Run(cfg, p, hookFactory)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(CacheDir(), 0o755); err == nil {
		tmp, err := os.CreateTemp(CacheDir(), "campaign-*")
		if err == nil {
			encErr := gob.NewEncoder(tmp).Encode(r)
			name := tmp.Name()
			tmp.Close()
			// Caching is best-effort: on any failure (encode or rename) the
			// temp file is removed and the freshly computed result is
			// returned; the campaign simply re-runs next time.
			if encErr != nil || os.Rename(name, path) != nil {
				os.Remove(name)
			}
		}
	}
	return r, nil
}
