package inject

import (
	"fmt"

	"clear/internal/prog"
	"clear/internal/sim"
)

// CheckpointInterval is the spacing, in cycles, of the fault-free reference
// snapshots recorded during a campaign's nominal run. Each injection then
// restores the nearest preceding snapshot and steps at most
// CheckpointInterval-1 cycles to reach its injection point instead of
// replaying from reset, and the same snapshots drive convergence pruning
// (see RunOneFrom). Smaller intervals cut more warm-up cycles but cost more
// snapshot memory; 0 disables checkpointing entirely (every injection
// replays from reset, the pre-checkpoint behavior).
//
// The interval only affects campaign running time: results are bit-for-bit
// identical for any value, so it is deliberately not part of Config and
// does not key the on-disk campaign cache. The default suits this repo's
// workloads (nominal runs of a few hundred to a few thousand cycles); scale
// it with nominal length for longer programs.
var CheckpointInterval = 256

// Reference is the fault-free trajectory of one (core, program) pair:
// snapshots taken every Interval cycles during the nominal run. Ckpts[i]
// holds the state at cycle i*Interval; the last snapshot precedes the
// nominal halt. References are immutable and shared read-only by the
// campaign worker goroutines.
type Reference struct {
	Interval int
	Ckpts    []*sim.Checkpoint
}

// BuildReference performs the fault-free run of p on a fresh core of kind k,
// snapshotting every interval cycles (including cycle 0), and returns the
// reference trajectory together with the nominal run's result. The result is
// exactly what Core.Run(maxCycles) on a fresh core would report. A
// non-positive interval is rejected (it cannot space snapshots).
func BuildReference(k CoreKind, p *prog.Program, interval, maxCycles int) (*Reference, prog.Result, error) {
	ref, res, _, err := buildReferenceCore(k, p, interval, maxCycles)
	return ref, res, err
}

// buildReferenceCore is BuildReference, also exposing the finished nominal
// core (the campaign records its retired-instruction count).
func buildReferenceCore(k CoreKind, p *prog.Program, interval, maxCycles int) (*Reference, prog.Result, sim.Core, error) {
	if interval <= 0 {
		return nil, prog.Result{}, nil, fmt.Errorf("inject: checkpoint interval %d must be positive", interval)
	}
	c := NewCore(k, p)
	ref := &Reference{Interval: interval}
	for !c.Done() && c.Cycles() < maxCycles {
		if c.Cycles()%interval == 0 {
			ref.Ckpts = append(ref.Ckpts, c.Snapshot())
		}
		c.Step()
	}
	if !c.Done() {
		return ref, prog.Result{Status: prog.StatusMaxSteps, Output: c.Output(), Steps: c.Cycles()}, c, nil
	}
	return ref, c.Result(), c, nil
}

// RunOneFrom performs a single injection like RunOne but warm-starts from
// the reference trajectory: it restores the nearest snapshot at or before
// the injection cycle, steps the remaining cycle-mod-interval cycles, flips
// the bit, and runs to completion with convergence pruning — at every
// checkpoint boundary the injected state is compared against the fault-free
// snapshot for the same cycle, and an exact match ends the run immediately
// as Vanished (two bit-identical states of a deterministic core share the
// same future, and the reference future halts with the golden output).
//
// The returned (Outcome, detectCycle) is identical to RunOne's for the same
// (bit, cycle): restoring reproduces the exact pre-injection state, and
// pruning only replaces a suffix whose outcome is already decided. Runs that
// carry a commit hook fall back to RunOne — hook-internal state cannot be
// checkpointed, so they keep the exact from-reset path.
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute the injection to a specific scope.
func RunOneFrom(c sim.Core, p *prog.Program, ref *Reference, bit, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return std.RunOneFrom(c, p, ref, bit, cycle, nomCycles, hookFactory)
}

// RunOneFrom is the scoped form of the package-level RunOneFrom: the
// injection and any convergence prune are tallied on this injector.
func (in *Injector) RunOneFrom(c sim.Core, p *prog.Program, ref *Reference, bit, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	in.injTotal.Add(1)
	if hookFactory != nil || ref == nil || ref.Interval <= 0 || len(ref.Ckpts) == 0 {
		if in.Sink == nil {
			return RunOne(c, p, bit, cycle, nomCycles, hookFactory)
		}
		// The single-bit cold path is the one-flip scenario's (identical
		// stepping, flip, and classification), and the scenario path carries
		// the attribution observation.
		return runScenarioColdObs(in, c, p, Scenario{{Bit: bit}}, cycle, nomCycles, hookFactory)
	}
	return in.runOneWarm(c, p, ref, bit, cycle, nomCycles)
}

// runOneWarm is the warm-started single-flip injection body shared by
// RunOneFrom and the packed engine's spill replays (batch.go); the caller
// has already tallied the injection and ruled out the cold fallback.
func (in *Injector) runOneWarm(c sim.Core, p *prog.Program, ref *Reference, bit, cycle, nomCycles int) (Outcome, int) {
	idx := cycle / ref.Interval
	if idx >= len(ref.Ckpts) {
		idx = len(ref.Ckpts) - 1
	}
	c.Restore(ref.Ckpts[idx])
	c.SetCommitHook(nil)
	for c.Cycles() < cycle && !c.Done() {
		c.Step()
	}
	sinkOn := in.Sink != nil
	var rec Record
	if sinkOn {
		rec = observe(c, bit, cycle)
	}
	c.State().FlipBit(bit)
	out, det := in.finishInjected(c, p, ref, cycle, nomCycles)
	if sinkOn {
		in.emit(rec, out, det)
	}
	return out, det
}

// finishInjected runs the already-injected remainder of a warm-started run:
// step to each checkpoint boundary, end as Vanished the moment the state
// reconverges with the fault-free reference, classify at completion or the
// hang budget. It is the common tail of runOneWarm and runScenarioWarm, and
// the packed engine continues evicted lanes through it — an evicted lane
// holds exactly the state the scalar path would have at the same cycle
// (lanes step the same deterministic core), so the continuation's boundary
// checks and classification reproduce the scalar outcome bit for bit.
func (in *Injector) finishInjected(c sim.Core, p *prog.Program, ref *Reference, cycle, nomCycles int) (Outcome, int) {
	budget := HangFactor * nomCycles
	for !c.Done() && c.Cycles() < budget {
		next := (c.Cycles()/ref.Interval + 1) * ref.Interval
		if next > budget {
			next = budget
		}
		for !c.Done() && c.Cycles() < next {
			c.Step()
		}
		if c.Done() {
			break
		}
		if i := c.Cycles() / ref.Interval; c.Cycles()%ref.Interval == 0 && i < len(ref.Ckpts) &&
			c.Matches(ref.Ckpts[i]) {
			in.injPruned.Add(1)
			in.pruneCycles.Observe(int64(c.Cycles() - cycle))
			return Vanished, -1
		}
	}
	var res prog.Result
	if c.Done() {
		res = c.Result()
	} else {
		res = prog.Result{Status: prog.StatusMaxSteps, Output: c.Output(), Steps: c.Cycles()}
	}
	out := Classify(p, res)
	det := -1
	if out == ED {
		det = res.Steps
	}
	return out, det
}
