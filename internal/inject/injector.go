package inject

import (
	"sync"
	"time"

	"clear/internal/obs"
)

// Injector scopes the fault-injection engine's observability state to one
// campaign consumer — typically one core.Engine. Before it existed the
// prune and quarantine counters were process-global atomics, so two
// concurrent sweeps in one process conflated each other's numbers: an
// event from the in-order sweep could report prune work done by the
// out-of-order sweep. Each engine now owns an Injector; the package-level
// Campaign/Run/RunOneFrom functions and the PruneStats/QuarantineStats
// accessors remain as compatibility wrappers over a default instance and
// an aggregation across every instance, respectively.
//
// An Injector additionally carries the obs instruments of the injection
// hot path (per-outcome counters, the convergence-prune cycle histogram,
// cache hit/miss/quarantine counters) and an optional campaign trace sink.
// All instrument updates are single atomic operations (see internal/obs);
// an Injector with no registry attached and a nil Tracer adds no
// allocations to any injection.
//
// An Injector must not be copied after first use.
type Injector struct {
	// Tracer, when non-nil, receives one "campaign" JSONL record per
	// completed Campaign call (cache hits included, marked as such).
	Tracer *obs.Tracer

	// Sink, when non-nil, receives one attribution Record per injection
	// performed through RunOneFrom/RunScenarioFrom/RunPairFrom — and
	// therefore per campaign injection (see record.go). The sink observes
	// only: outcomes, Result contents, and cache bytes are identical with
	// or without one, and a nil Sink adds a single pointer check to the
	// hot path. Sinks must be safe for concurrent use (campaign workers
	// emit in parallel). Note that Campaign cache hits replay no
	// injections and thus emit no records; attach the sink and use Run to
	// (re)collect attribution.
	Sink RecordSink

	injTotal    obs.Counter   // injections performed (RunOneFrom entries)
	injPruned   obs.Counter   // injections ended early by convergence pruning
	pruneCycles obs.Histogram // cycles simulated post-injection before the prune hit

	outVanished obs.Counter // outcome tallies (computed campaigns + standalone pair probes)
	outOMM      obs.Counter
	outUT       obs.Counter
	outHang     obs.Counter
	outED       obs.Counter

	cacheHits   obs.Counter // campaigns served from the on-disk cache
	cacheMisses obs.Counter // campaigns computed (cache absent, stale, or corrupt)
	quarantined obs.Counter // corrupt cache entries renamed *.corrupt
}

// Every live Injector is tracked so the package-level accessors can
// aggregate across them — the pre-Injector reports stay correct no matter
// how many scoped instances exist. Injectors are few (one per engine) and
// live for the process, so the list never needs eviction.
var (
	injectorsMu sync.Mutex
	injectors   []*Injector
)

// NewInjector returns a fresh injection scope with zeroed counters.
func NewInjector() *Injector {
	in := &Injector{}
	injectorsMu.Lock()
	injectors = append(injectors, in)
	injectorsMu.Unlock()
	return in
}

// std is the default scope behind the package-level Campaign/Run/
// RunOneFrom wrappers.
var std = NewInjector()

// Snapshot is a point-in-time view of an injector's counters, taken with
// one atomic load per field.
type Snapshot struct {
	PrunedInjections int64
	TotalInjections  int64
	Quarantined      int64
	CacheHits        int64
	CacheMisses      int64
}

// Snapshot returns the injector's current counters.
func (in *Injector) Snapshot() Snapshot {
	return Snapshot{
		PrunedInjections: in.injPruned.Value(),
		TotalInjections:  in.injTotal.Value(),
		Quarantined:      in.quarantined.Value(),
		CacheHits:        in.cacheHits.Value(),
		CacheMisses:      in.cacheMisses.Value(),
	}
}

// PruneStats returns the injector's injection counters: how many
// injections ran and how many ended early through convergence pruning.
func (in *Injector) PruneStats() (pruned, total int64) {
	return in.injPruned.Value(), in.injTotal.Value()
}

// QuarantineStats reports how many corrupt cache entries this injector has
// quarantined (renamed *.corrupt) and recomputed.
func (in *Injector) QuarantineStats() int64 { return in.quarantined.Value() }

// Instrument publishes the injector's counters into reg under prefix
// (e.g. "inject.ino."). Instrument names are part of the observability
// contract (DESIGN.md §10):
//
//	<prefix>injections.total        counter
//	<prefix>injections.pruned       counter
//	<prefix>injections.prune_cycles histogram (cycles simulated before prune)
//	<prefix>outcome.vanished|omm|ut|hang|ed  counters
//	<prefix>cache.hits|misses|quarantined    counters
func (in *Injector) Instrument(reg *obs.Registry, prefix string) {
	reg.Attach(prefix+"injections.total", &in.injTotal)
	reg.Attach(prefix+"injections.pruned", &in.injPruned)
	reg.Attach(prefix+"injections.prune_cycles", &in.pruneCycles)
	reg.Attach(prefix+"outcome.vanished", &in.outVanished)
	reg.Attach(prefix+"outcome.omm", &in.outOMM)
	reg.Attach(prefix+"outcome.ut", &in.outUT)
	reg.Attach(prefix+"outcome.hang", &in.outHang)
	reg.Attach(prefix+"outcome.ed", &in.outED)
	reg.Attach(prefix+"cache.hits", &in.cacheHits)
	reg.Attach(prefix+"cache.misses", &in.cacheMisses)
	reg.Attach(prefix+"cache.quarantined", &in.quarantined)
}

// addOutcomes accumulates a computed campaign's outcome totals into the
// per-outcome counters (batched per campaign, not per injection, to keep
// the simulation loop free of even atomic traffic it does not need).
func (in *Injector) addOutcomes(c Counts) {
	in.outVanished.Add(int64(c.Vanished))
	in.outOMM.Add(int64(c.OMM))
	in.outUT.Add(int64(c.UT))
	in.outHang.Add(int64(c.Hang))
	in.outED.Add(int64(c.ED))
}

// campaignRecord is the JSONL trace schema of one Campaign call (type
// "campaign"). DurationMS is the only field expected to differ between
// two identical runs.
type campaignRecord struct {
	Type         string `json:"type"` // "campaign"
	Core         string `json:"core"`
	Bench        string `json:"bench"`
	Tag          string `json:"tag"`
	SamplesPerFF int    `json:"samples_per_ff"`
	Seed         uint64 `json:"seed"`
	Source       string `json:"source"` // "cache" or "run"
	NomCycles    int    `json:"nom_cycles"`
	Injections   int    `json:"injections"`
	Vanished     int    `json:"vanished"`
	OMM          int    `json:"omm"`
	UT           int    `json:"ut"`
	Hang         int    `json:"hang"`
	ED           int    `json:"ed"`
	DurationMS   int64  `json:"duration_ms"`
}

// traceCampaign emits the campaign trace record when a sink is attached.
func (in *Injector) traceCampaign(cfg Config, r *Result, source string, elapsed time.Duration) {
	if in.Tracer == nil {
		return
	}
	in.Tracer.Emit(campaignRecord{
		Type:         "campaign",
		Core:         cfg.Core.String(),
		Bench:        cfg.Bench,
		Tag:          nonEmpty(cfg.Tag),
		SamplesPerFF: cfg.SamplesPerFF,
		Seed:         cfg.Seed,
		Source:       source,
		NomCycles:    r.NomCycles,
		Injections:   r.Totals.N,
		Vanished:     r.Totals.Vanished,
		OMM:          r.Totals.OMM,
		UT:           r.Totals.UT,
		Hang:         r.Totals.Hang,
		ED:           r.Totals.ED,
		DurationMS:   elapsed.Milliseconds(),
	})
}

// PruneStats returns the injection counters aggregated across every
// injector in the process (the pre-Injector process-wide view): how many
// injections ran and how many ended early through convergence pruning.
func PruneStats() (pruned, total int64) {
	injectorsMu.Lock()
	defer injectorsMu.Unlock()
	for _, in := range injectors {
		p, t := in.PruneStats()
		pruned += p
		total += t
	}
	return pruned, total
}

// QuarantineStats reports how many corrupt cache entries this process has
// quarantined (renamed *.corrupt) and recomputed, aggregated across every
// injector.
func QuarantineStats() int64 {
	injectorsMu.Lock()
	defer injectorsMu.Unlock()
	var q int64
	for _, in := range injectors {
		q += in.QuarantineStats()
	}
	return q
}
