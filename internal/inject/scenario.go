package inject

import (
	"sort"

	"clear/internal/prog"
	"clear/internal/sim"
)

// Scenario execution: the k-flip generalization of RunOne/RunOneFrom. A
// scenario's delay-0 flips land together at the injection cycle; delayed
// flips land at cycle+Delay as the run proceeds. All flips go through the
// packed ff.State exactly like FlipBit, so the compiled-execution latch
// mirrors (DESIGN.md §11) observe them at the same State() boundary as
// single-bit injections.

// normalize sorts a scenario by (Delay, Bit) — the order flips are
// applied in — and reports the largest delay.
func (sc Scenario) normalize() (maxDelay int) {
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].Delay != sc[j].Delay {
			return sc[i].Delay < sc[j].Delay
		}
		return sc[i].Bit < sc[j].Bit
	})
	if len(sc) > 0 {
		maxDelay = sc[len(sc)-1].Delay
	}
	return maxDelay
}

// applyAt flips every scenario bit scheduled for the core's current cycle
// offset from the injection cycle, returning the count of flips consumed
// from position i.
func (sc Scenario) applyAt(c sim.Core, i, offset int) int {
	n := 0
	for i+n < len(sc) && sc[i+n].Delay == offset {
		c.State().FlipBit(sc[i+n].Bit)
		n++
	}
	return n
}

// runScenarioCold is the from-reset scenario injection: run to cycle,
// apply the flips at their scheduled offsets, run to completion or the
// hang cutoff, classify. The returned detect cycle mirrors RunOne's (-1
// unless the outcome is ED).
func runScenarioCold(c sim.Core, p *prog.Program, sc Scenario, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return runScenarioColdObs(nil, c, p, sc, cycle, nomCycles, hookFactory)
}

// runScenarioColdObs is runScenarioCold with optional attribution: when in
// carries a record sink, the in-flight occupancy is observed at the
// injection cycle (right before the first flip lands) and one Record is
// emitted after classification. The observation reads state the run was
// about to read anyway, so outcomes are identical with or without it.
func runScenarioColdObs(in *Injector, c sim.Core, p *prog.Program, sc Scenario, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	maxDelay := sc.normalize()
	c.Reset(p)
	if hookFactory != nil {
		c.SetCommitHook(hookFactory(p))
	} else {
		c.SetCommitHook(nil)
	}
	for i := 0; i < cycle && !c.Done(); i++ {
		c.Step()
	}
	sinkOn := in != nil && in.Sink != nil && len(sc) > 0
	var rec Record
	if sinkOn {
		rec = observe(c, sc[0].Bit, cycle)
	}
	applied := sc.applyAt(c, 0, 0)
	for off := 1; off <= maxDelay && applied < len(sc); off++ {
		if !c.Done() {
			c.Step()
		}
		applied += sc.applyAt(c, applied, off)
	}
	res := c.Run(HangFactor * nomCycles)
	out := Classify(p, res)
	det := -1
	if out == ED {
		det = res.Steps
	}
	if sinkOn {
		in.emit(rec, out, det)
	}
	return out, det
}

// RunScenarioFrom performs one scenario injection warm-started from the
// reference trajectory, generalizing RunOneFrom (one flip) and RunPairFrom
// (two same-cycle flips) to arbitrary flip sets. An empty scenario — a
// strike the fault model says latches nothing — is Vanished by
// construction and costs no simulation. Convergence pruning begins only
// after every flip has been applied: a state matching the reference before
// the last delayed flip lands is not provably Vanished, because the flip
// still to come would diverge it again.
//
// When the injector carries a record sink, one attribution Record is
// emitted per executed scenario, with Bit = the first-applied flip. An
// empty scenario latches nothing and emits nothing.
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute the injection to a specific scope.
func RunScenarioFrom(c sim.Core, p *prog.Program, ref *Reference, sc Scenario, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return std.RunScenarioFrom(c, p, ref, sc, cycle, nomCycles, hookFactory)
}

// RunScenarioFrom is the scoped form of the package-level RunScenarioFrom.
func (in *Injector) RunScenarioFrom(c sim.Core, p *prog.Program, ref *Reference, sc Scenario,
	cycle, nomCycles int, hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	in.injTotal.Add(1)
	if len(sc) == 0 {
		return Vanished, -1
	}
	if hookFactory != nil || ref == nil || ref.Interval <= 0 || len(ref.Ckpts) == 0 {
		return runScenarioColdObs(in, c, p, sc, cycle, nomCycles, hookFactory)
	}
	return in.runScenarioWarm(c, p, ref, sc, cycle, nomCycles)
}

// runScenarioWarm is the warm-started scenario injection body shared by
// RunScenarioFrom and the packed engine's spill replays (batch.go); the
// caller has already tallied the injection, ruled out the cold fallback,
// and ensured the scenario is non-empty.
func (in *Injector) runScenarioWarm(c sim.Core, p *prog.Program, ref *Reference, sc Scenario,
	cycle, nomCycles int) (Outcome, int) {
	maxDelay := sc.normalize()
	idx := cycle / ref.Interval
	if idx >= len(ref.Ckpts) {
		idx = len(ref.Ckpts) - 1
	}
	c.Restore(ref.Ckpts[idx])
	c.SetCommitHook(nil)
	for c.Cycles() < cycle && !c.Done() {
		c.Step()
	}
	sinkOn := in.Sink != nil
	var rec Record
	if sinkOn {
		rec = observe(c, sc[0].Bit, cycle)
	}
	applied := sc.applyAt(c, 0, 0)
	for off := 1; off <= maxDelay && applied < len(sc); off++ {
		if !c.Done() {
			c.Step()
		}
		applied += sc.applyAt(c, applied, off)
	}
	out, det := in.finishInjected(c, p, ref, cycle, nomCycles)
	if sinkOn {
		in.emit(rec, out, det)
	}
	return out, det
}
