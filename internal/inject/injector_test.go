package inject

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"clear/internal/obs"
)

// TestInjectorScopedCounters is the regression test for the counter
// conflation bug: two injection scopes running in one process must tally
// independently, while the package-level accessors aggregate across them.
func TestInjectorScopedCounters(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	p := tinyProgram(t)

	a, b := NewInjector(), NewInjector()
	cfgA := Config{Core: InO, Bench: "tiny", Tag: "scope-a", SamplesPerFF: 1, Seed: 21}
	cfgB := Config{Core: InO, Bench: "tiny", Tag: "scope-b", SamplesPerFF: 2, Seed: 22}

	beforePruned, beforeTotal := PruneStats()
	if _, err := a.Campaign(cfgA, p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Campaign(cfgB, p, nil); err != nil {
		t.Fatal(err)
	}

	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.TotalInjections == 0 || sb.TotalInjections == 0 {
		t.Fatalf("scopes tallied nothing: a=%+v b=%+v", sa, sb)
	}
	if sb.TotalInjections != 2*sa.TotalInjections {
		t.Fatalf("scopes conflated: a ran %d injections (1 sample/FF), b ran %d (2 samples/FF), want exactly double",
			sa.TotalInjections, sb.TotalInjections)
	}
	if sa.CacheMisses != 1 || sa.CacheHits != 0 {
		t.Fatalf("scope a cache counters = %+v, want exactly one miss", sa)
	}

	// The package-level wrappers aggregate every scope's work.
	afterPruned, afterTotal := PruneStats()
	if got, want := afterTotal-beforeTotal, sa.TotalInjections+sb.TotalInjections; got != want {
		t.Fatalf("aggregate total advanced by %d, want %d", got, want)
	}
	if dp := afterPruned - beforePruned; dp != sa.PrunedInjections+sb.PrunedInjections {
		t.Fatalf("aggregate pruned advanced by %d, want %d", dp, sa.PrunedInjections+sb.PrunedInjections)
	}

	// A cache hit on a fresh scope counts there and only there.
	c := NewInjector()
	if _, err := c.Campaign(cfgA, p, nil); err != nil {
		t.Fatal(err)
	}
	if sc := c.Snapshot(); sc.CacheHits != 1 || sc.CacheMisses != 0 || sc.TotalInjections != 0 {
		t.Fatalf("cache-hit scope = %+v, want one hit and no simulation", sc)
	}
}

// TestInjectorScopedResultsIdentical guards the observability invariant:
// a campaign computed through a scoped injector is bit-identical to the
// same campaign through the package-level path.
func TestInjectorScopedResultsIdentical(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 33}
	r1, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewInjector().Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("scoped Run result differs from package-level Run")
	}
}

// TestInjectorInstrumentNames pins the registry naming contract the debug
// endpoint (and the CI smoke test) rely on.
func TestInjectorInstrumentNames(t *testing.T) {
	reg := obs.NewRegistry()
	NewInjector().Instrument(reg, "inject.ino.")
	want := []string{
		"inject.ino.cache.hits",
		"inject.ino.cache.misses",
		"inject.ino.cache.quarantined",
		"inject.ino.injections.prune_cycles",
		"inject.ino.injections.pruned",
		"inject.ino.injections.total",
		"inject.ino.outcome.ed",
		"inject.ino.outcome.hang",
		"inject.ino.outcome.omm",
		"inject.ino.outcome.ut",
		"inject.ino.outcome.vanished",
	}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("instrument names = %v, want %v", got, want)
	}
}

// TestInjectorCampaignTrace checks the JSONL campaign records: one per
// Campaign call, source "run" for computed and "cache" for replayed, with
// outcome totals that match the result.
func TestInjectorCampaignTrace(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 44}

	var buf bytes.Buffer
	in := NewInjector()
	in.Tracer = obs.NewTracer(&buf)
	r, err := in.Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Campaign(cfg, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := in.Tracer.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace holds %d records, want 2:\n%s", len(lines), buf.String())
	}
	var recs []campaignRecord
	for _, l := range lines {
		var rec campaignRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("trace line %q is not JSON: %v", l, err)
		}
		recs = append(recs, rec)
	}
	if recs[0].Source != "run" || recs[1].Source != "cache" {
		t.Fatalf("sources = %q, %q; want run then cache", recs[0].Source, recs[1].Source)
	}
	for i, rec := range recs {
		if rec.Type != "campaign" || rec.Bench != "tiny" || rec.Core != "InO" {
			t.Fatalf("record %d identity wrong: %+v", i, rec)
		}
		if rec.Injections != r.Totals.N || rec.Vanished != r.Totals.Vanished || rec.OMM != r.Totals.OMM {
			t.Fatalf("record %d outcome totals diverge from the result: %+v vs %+v", i, rec, r.Totals)
		}
	}
}

// TestQuarantineScoped verifies disk-rot accounting lands on the scope
// that hit it.
func TestQuarantineScoped(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", Tag: "rot", SamplesPerFF: 1, Seed: 55}

	in := NewInjector()
	if _, err := in.Campaign(cfg, p, nil); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*rot*.gob"))
	if len(files) != 1 {
		t.Fatalf("cache files: %v", files)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	other := NewInjector()
	aggBefore := QuarantineStats()
	if _, err := in.Campaign(cfg, p, nil); err != nil {
		t.Fatal(err)
	}
	if got := in.QuarantineStats(); got != 1 {
		t.Fatalf("quarantine count on the hitting scope = %d, want 1", got)
	}
	if got := other.QuarantineStats(); got != 0 {
		t.Fatalf("unrelated scope saw %d quarantines, want 0", got)
	}
	if got := QuarantineStats() - aggBefore; got != 1 {
		t.Fatalf("aggregate quarantine advanced by %d, want 1", got)
	}
}
