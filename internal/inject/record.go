package inject

import (
	"math"
	"sort"
	"sync"

	"clear/internal/obs"
)

// Attribution-carrying injection records: the per-injection observation the
// campaign loop used to discard. Every warm-started injection
// (RunOneFrom / RunScenarioFrom / RunPairFrom, and therefore every
// campaign) emits one Record through the injector's pluggable Sink when one
// is attached; a nil Sink costs a single pointer check and keeps the
// engine's behavior — outcomes, Result contents, cache bytes — exactly as
// before. Records never enter Result or the on-disk cache: the gob format
// is frozen (DESIGN.md §13), so attribution flows only through the sink.

// NoRootPC marks a record whose struck structure held no attributable
// instruction at the injection cycle (an empty buffer slot, a
// configuration register, an architecturally inert staging latch). It is
// out of range for every program PC, which index the program's word array.
const NoRootPC = ^uint32(0)

// Record is the compact attribution of one injection: which flip-flop was
// struck, the pipeline structure it belongs to, when it was struck, how the
// fault resolved, the detection latency (cycles from injection to
// detection; -1 unless the outcome is ED), and the PC of the static
// instruction occupying the struck structure at the injection cycle
// (NoRootPC when the structure was empty). For multi-flip scenarios Bit is
// the first-applied flip.
type Record struct {
	Bit     int
	Unit    string
	Cycle   int
	Outcome Outcome
	DetLat  int
	RootPC  uint32
}

// RecordSink receives per-injection records. Campaign workers call Record
// concurrently, so implementations must be safe for concurrent use. A sink
// observes injections without influencing them: attaching one changes no
// outcome and no Result byte.
type RecordSink interface {
	Record(Record)
}

// RecordBuffer is a RecordSink that accumulates records in memory.
type RecordBuffer struct {
	mu   sync.Mutex
	recs []Record
}

// Record appends one record (safe for concurrent use).
func (b *RecordBuffer) Record(r Record) {
	b.mu.Lock()
	b.recs = append(b.recs, r)
	b.mu.Unlock()
}

// Len reports the number of buffered records.
func (b *RecordBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Records returns the buffered records in deterministic order: sorted by
// struck bit, preserving arrival order within a bit. A campaign runs every
// sample of one bit sequentially on one worker, so the per-bit suborder is
// the sample order and the full ordering is reproducible across runs
// regardless of worker interleaving.
func (b *RecordBuffer) Records() []Record {
	b.mu.Lock()
	out := append([]Record(nil), b.recs...)
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bit < out[j].Bit })
	return out
}

// injectionRecord is the JSONL schema TraceSink emits (type "injection"),
// composing injection records with the sweep/campaign records of the same
// obs.Tracer stream (DESIGN.md §10).
type injectionRecord struct {
	Type    string `json:"type"` // "injection"
	Bit     int    `json:"bit"`
	Unit    string `json:"unit"`
	Cycle   int    `json:"cycle"`
	Outcome string `json:"outcome"`
	// det_lat is emitted unconditionally: an omitempty here once hid the
	// DetLat 0 of an ED detection firing at the injection cycle, leaving
	// consumers unable to tell "detected instantly" (0) from "not
	// applicable" (-1, every non-ED record).
	DetLat int   `json:"det_lat"`
	RootPC int64 `json:"root_pc"` // -1 when no instruction occupied the structure
}

// TraceSink forwards records to an obs.Tracer as one JSONL line each,
// composing per-injection attribution with the existing event-trace stream
// (the tracer serializes concurrent emits). The zero-value/nil-tracer sink
// discards records.
type TraceSink struct {
	T *obs.Tracer
}

// Record emits the record as a JSONL "injection" event.
func (s TraceSink) Record(r Record) {
	root := int64(-1)
	if r.RootPC != NoRootPC {
		root = int64(r.RootPC)
	}
	s.T.Emit(injectionRecord{
		Type:    "injection",
		Bit:     r.Bit,
		Unit:    r.Unit,
		Cycle:   r.Cycle,
		Outcome: r.Outcome.String(),
		DetLat:  r.DetLat,
		RootPC:  root,
	})
}

// MultiSink fans every record out to each sink in order.
type MultiSink []RecordSink

// Record forwards to every sink.
func (m MultiSink) Record(r Record) {
	for _, s := range m {
		s.Record(r)
	}
}

// AddSat accumulates o into f, saturating every counter at the uint16
// maximum instead of wrapping. Per-campaign tallies cannot overflow (the
// campaign validates SamplesPerFF against the counter range), but
// re-aggregating records across merged campaigns can: a wrapped counter
// silently inverts a flip-flop's measured vulnerability, while a saturated
// one stays a conservative upper bound. Widening the fields is not an
// option — FFStats is part of the frozen on-disk cache format.
func (f *FFStats) AddSat(o FFStats) {
	f.N = satAdd16(f.N, o.N)
	f.OMM = satAdd16(f.OMM, o.OMM)
	f.UT = satAdd16(f.UT, o.UT)
	f.Hang = satAdd16(f.Hang, o.Hang)
	f.ED = satAdd16(f.ED, o.ED)
}

func satAdd16(a, b uint16) uint16 {
	if s := uint32(a) + uint32(b); s <= math.MaxUint16 {
		return uint16(s)
	}
	return math.MaxUint16
}
