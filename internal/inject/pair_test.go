package inject

import (
	"testing"

	"clear/internal/prog"
)

// TestRunPairFromEquivalence drives a randomized grid of (bitA, bitB, cycle)
// double-flip injection points through both the from-reset RunPair path and
// the warm-started RunPairFrom path on both cores and requires identical
// outcome classifications — the regression test for the SEMU cold-start bug.
func TestRunPairFromEquivalence(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		ref, nomRes, err := BuildReference(kind, p, 16, 100000)
		if err != nil {
			t.Fatalf("%v BuildReference: %v", kind, err)
		}
		if nomRes.Status != prog.StatusHalted {
			t.Fatalf("%v nominal run failed: %v", kind, nomRes.Status)
		}
		nom := nomRes.Steps
		if len(ref.Ckpts) < 2 {
			t.Fatalf("%v: want several checkpoints, got %d (nominal %d cycles)",
				kind, len(ref.Ckpts), nom)
		}
		cold := NewCore(kind, p)
		warm := NewCore(kind, p)
		nBits := SpaceBits(kind)
		for s := 0; s < 200; s++ {
			h := splitmix64(uint64(s) ^ 0x5EED)
			bitA := int(h % uint64(nBits))
			bitB := int((h >> 20) % uint64(nBits))
			cycle := int((h >> 40) % uint64(nom))
			o1, d1 := RunPair(cold, p, bitA, bitB, cycle, nom, nil)
			o2, d2 := RunPairFrom(warm, p, ref, bitA, bitB, cycle, nom, nil)
			if o1 != o2 || d1 != d2 {
				t.Fatalf("%v bits=(%d,%d) cycle=%d: from-reset (%v,%d) vs checkpointed (%v,%d)",
					kind, bitA, bitB, cycle, o1, d1, o2, d2)
			}
		}
		// hook-carrying pair injections must keep the exact from-reset path
		// (stateful hooks cannot warm-start) and still agree
		for s := 0; s < 40; s++ {
			h := splitmix64(uint64(s) ^ 0xD0B1E)
			bitA := int(h % uint64(nBits))
			bitB := int((h >> 20) % uint64(nBits))
			cycle := int((h >> 40) % uint64(nom))
			hf := boundsHook(1 << 20)
			o1, d1 := RunPair(cold, p, bitA, bitB, cycle, nom, hf)
			o2, d2 := RunPairFrom(warm, p, ref, bitA, bitB, cycle, nom, hf)
			if o1 != o2 || d1 != d2 {
				t.Fatalf("%v hooked bits=(%d,%d) cycle=%d: (%v,%d) vs (%v,%d)",
					kind, bitA, bitB, cycle, o1, d1, o2, d2)
			}
		}
	}
}

// TestRunPairsCampaign covers the SEMU campaign loop: per-pair tallies sum
// to the totals, every pair gets exactly SamplesPerPair injections, and a
// repeated run with the same seed is identical (determinism across the
// worker pool).
func TestRunPairsCampaign(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		nBits := SpaceBits(kind)
		pairs := [][2]int{{0, 1}, {1, 2}, {5, nBits - 1}, {nBits - 2, nBits - 1}}
		cfg := PairConfig{Core: kind, Bench: "tiny", SamplesPerPair: 3, Seed: 0x5E30}
		res, err := RunPairs(cfg, p, pairs, nil)
		if err != nil {
			t.Fatalf("%v RunPairs: %v", kind, err)
		}
		if len(res.PerPair) != len(pairs) {
			t.Fatalf("%v: PerPair length %d, want %d", kind, len(res.PerPair), len(pairs))
		}
		var sum Counts
		for i, c := range res.PerPair {
			if c.N != cfg.SamplesPerPair {
				t.Errorf("%v pair %d: %d samples, want %d", kind, i, c.N, cfg.SamplesPerPair)
			}
			sum.Merge(c)
		}
		if sum != res.Totals {
			t.Fatalf("%v: per-pair sum %+v != totals %+v", kind, sum, res.Totals)
		}
		if want := len(pairs) * cfg.SamplesPerPair; res.Totals.N != want {
			t.Fatalf("%v: totals.N = %d, want %d", kind, res.Totals.N, want)
		}
		again, err := RunPairs(cfg, p, pairs, nil)
		if err != nil {
			t.Fatalf("%v RunPairs repeat: %v", kind, err)
		}
		if again.Totals != res.Totals || again.NomCycles != res.NomCycles ||
			len(again.PerPair) != len(res.PerPair) {
			t.Fatalf("%v: repeated campaign differs", kind)
		}
		for i := range again.PerPair {
			if again.PerPair[i] != res.PerPair[i] {
				t.Fatalf("%v: repeated campaign pair %d differs: %+v vs %+v",
					kind, i, again.PerPair[i], res.PerPair[i])
			}
		}
	}
}

// TestRunPairsValidation pins the campaign's input checking: missing golden
// output, out-of-range pair bits, and an out-of-range sample count must all
// fail up front rather than mid-campaign.
func TestRunPairsValidation(t *testing.T) {
	p := tinyProgram(t)
	noGolden := &prog.Program{Name: "nogolden", MemWords: 16}
	if _, err := RunPairs(PairConfig{Core: InO, SamplesPerPair: 1}, noGolden, nil, nil); err == nil {
		t.Error("RunPairs accepted a program with no golden output")
	}
	if _, err := RunPairs(PairConfig{Core: InO, SamplesPerPair: 1}, p,
		[][2]int{{0, SpaceBits(InO)}}, nil); err == nil {
		t.Error("RunPairs accepted an out-of-range pair bit")
	}
	if _, err := RunPairs(PairConfig{Core: InO, SamplesPerPair: -1}, p, nil, nil); err == nil {
		t.Error("RunPairs accepted a negative sample count")
	}
}

// TestInjectorScopedPairCounters extends the scoped-injector coverage to
// pair injections: standalone RunPair probes and RunPairs campaigns must
// tally injections and outcomes on the owning Injector, not bypass it.
func TestInjectorScopedPairCounters(t *testing.T) {
	p := tinyProgram(t)
	in := NewInjector()
	nom := NewCore(InO, p).Run(100000).Steps

	c := NewCore(InO, p)
	out, _ := in.RunPair(c, p, 1, 2, nom/2, nom, nil)
	if got := in.Snapshot().TotalInjections; got != 1 {
		t.Fatalf("after one RunPair: TotalInjections = %d, want 1", got)
	}
	if got := in.outcomeTotal(); got != 1 {
		t.Fatalf("after one RunPair (%v): outcome tallies sum to %d, want 1", out, got)
	}

	pairs := [][2]int{{0, 1}, {2, 3}}
	cfg := PairConfig{Core: InO, Bench: "tiny", SamplesPerPair: 2, Seed: 7}
	res, err := in.RunPairs(cfg, p, pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantInj := int64(1 + len(pairs)*cfg.SamplesPerPair)
	if got := in.Snapshot().TotalInjections; got != wantInj {
		t.Fatalf("after RunPairs: TotalInjections = %d, want %d", got, wantInj)
	}
	if got, want := in.outcomeTotal(), int64(1+res.Totals.N); got != want {
		t.Fatalf("after RunPairs: outcome tallies sum to %d, want %d", got, want)
	}

	// The default scope must be untouched by the scoped campaign above:
	// run one probe through the package-level wrapper and check only std
	// moved.
	before := std.Snapshot().TotalInjections
	RunPair(c, p, 3, 4, nom/3, nom, nil) //nolint — probe for its counter effect
	if got := std.Snapshot().TotalInjections; got != before+1 {
		t.Fatalf("package RunPair: std TotalInjections %d -> %d, want +1", before, got)
	}
	if got := in.Snapshot().TotalInjections; got != wantInj {
		t.Fatalf("package RunPair leaked into scoped injector: %d, want %d", got, wantInj)
	}
}

// outcomeTotal sums the per-outcome counters — test-only visibility into
// the batched outcome tallies.
func (in *Injector) outcomeTotal() int64 {
	return in.outVanished.Value() + in.outOMM.Value() + in.outUT.Value() +
		in.outHang.Value() + in.outED.Value()
}
