package inject

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"clear/internal/ino"
	"clear/internal/layout"
	"clear/internal/ooo"
)

// Pluggable fault models (ROADMAP item 4): a FaultModel deterministically
// expands a sampled (flip-flop, cycle) point into a fault scenario — the
// set of simultaneous or time-offset bit flips one physical event causes.
// The sampling loop is model-independent (same splitmix64 stream, same
// uniform cycle draw); only the expansion differs, so two models disagree
// exactly where the physics says they should.
//
// Four models are registered:
//
//	ssb    — single-bit upset in core flip-flops: the paper's model and
//	         the default. Campaigns run the exact pre-model code path and
//	         are bit-identical (results, cache gobs) to it.
//	mbu    — spatial multi-bit upset: one particle flips the struck
//	         flip-flop and every neighbour within layout.SEMURadius of it
//	         (the Table 5/6 cluster population). This is the k-flip
//	         generalization of the RunPair SEMU machinery.
//	uncore — single flips restricted to memory-interface state (load
//	         unit, store queue, fetch buffer, cache interface registers),
//	         after Cho et al., "Understanding Soft Errors in Uncore
//	         Components".
//	set    — single-event transient in the combinational cone feeding the
//	         struck flip-flop: the wrong value is latched only when the
//	         flip-flop's timing slack is below the sampled transient pulse
//	         width (a long path has no margin to outwait the glitch);
//	         otherwise the transient dies before the capture edge and the
//	         scenario is empty (Vanished without simulation), after
//	         Azambuja et al.'s SEU/SET software-detection study.
//
// The model is carried inside Config.Tag as a "<model>/" prefix (ssb is
// the unprefixed legacy form), so the campaign cache, the sweep state
// identity, and every existing Config-keyed surface distinguish models
// without changing the gob schema — adding a Config field would alter the
// type descriptor of every cached campaign and break ssb byte-identity.

// Flip is one bit flip of a fault scenario: the flip-flop to flip and the
// cycle offset (>= 0) from the scenario's injection cycle at which it
// lands. Delay 0 flips are applied together at the injection point.
type Flip struct {
	Bit   int
	Delay int
}

// Scenario is the ordered flip set one fault event expands to, sorted by
// (Delay, Bit). An empty scenario is a strike that latches nothing: the
// run is Vanished by construction and never simulated.
type Scenario []Flip

// FaultModel deterministically expands sampled (bit, cycle) points into
// fault scenarios. Implementations must be pure: the same (env, bit,
// cycle, h) must always yield the same scenario, because campaign results
// — and the on-disk campaign cache keyed on Config — depend only on
// (Config, program).
type FaultModel interface {
	// Name is the model's registry key ("ssb", "mbu", ...): lowercase,
	// non-empty, free of the "/" tag separator.
	Name() string
	// Bits returns the strike population: the flip-flops the model samples
	// (nil = every flip-flop of the core). The sampling loop draws
	// SamplesPerFF cycles for each returned bit using the same per-bit
	// hash stream as the ssb model.
	Bits(env *ModelEnv) []int
	// Expand turns one sampled strike into its flip scenario. h is the
	// sample's splitmix64 draw (the same value that chose the cycle), the
	// model's only entropy source.
	Expand(env *ModelEnv, bit, cycle int, h uint64) Scenario
}

// ModelEnv is the per-core context models expand against: the flip-flop
// space, the physical placement, and derived neighbour/unit indexes. Envs
// are built once per core kind and shared read-only.
type ModelEnv struct {
	Kind CoreKind
	Pl   *layout.Placement

	neighbors  [][]int // per bit: bits within layout.SEMURadius, ascending
	uncoreBits []int   // bits of the memory-interface units, ascending
}

// Cluster returns the SEMU cluster of a strike at bit: the bit itself plus
// every flip-flop within layout.SEMURadius, in ascending bit order.
func (env *ModelEnv) Cluster(bit int) []int {
	if bit < 0 || bit >= len(env.neighbors) {
		return nil
	}
	nbrs := env.neighbors[bit]
	out := make([]int, 0, len(nbrs)+1)
	pos := 0
	for pos < len(nbrs) && nbrs[pos] < bit {
		out = append(out, nbrs[pos])
		pos++
	}
	out = append(out, bit)
	out = append(out, nbrs[pos:]...)
	return out
}

// UncoreBits returns the memory-interface strike population of the core.
func (env *ModelEnv) UncoreBits() []int { return env.uncoreBits }

// uncoreUnits lists the functional units that model the core's memory
// interface, per core kind: the load/store path and the fetch-side buffer
// state Cho et al. identify as the dominant uncore contributors. On the
// in-order core that is the memory stage plus both cache interfaces; on
// the out-of-order core the fetch buffer, store queue, and L1-D interface.
var uncoreUnits = map[CoreKind]map[string]bool{
	InO: {"memory": true, "icache": true, "dcache": true},
	OoO: {"fetchbuf": true, "stq": true, "l1dcache": true},
}

var (
	envOnce [2]sync.Once
	envs    [2]*ModelEnv
)

// EnvFor returns the shared model environment of a core kind, building it
// on first use (placement + neighbour lists, a few milliseconds).
func EnvFor(k CoreKind) *ModelEnv {
	i := 0
	if k == OoO {
		i = 1
	}
	envOnce[i].Do(func() {
		env := &ModelEnv{Kind: k}
		if k == InO {
			env.Pl = layout.Place(ino.Space(), layout.InOProfile())
		} else {
			env.Pl = layout.Place(ooo.Space(), layout.OoOProfile())
		}
		env.neighbors = env.Pl.NeighborLists(layout.SEMURadius)
		units := uncoreUnits[k]
		for bit := 0; bit < env.Pl.Space.NumBits(); bit++ {
			if units[env.Pl.Space.UnitOf(bit)] {
				env.uncoreBits = append(env.uncoreBits, bit)
			}
		}
		envs[i] = env
	})
	return envs[i]
}

// Model registry. Registration happens at init; lookups are read-only
// afterwards, so the map needs no locking on the campaign path.
var (
	modelsMu sync.Mutex
	models   = map[string]FaultModel{}
)

// RegisterModel adds a fault model to the registry. Names must be unique,
// lowercase, and free of "/" (the tag separator); violations panic, as
// misregistered models would silently corrupt cache keying.
func RegisterModel(m FaultModel) {
	name := m.Name()
	if name == "" || strings.Contains(name, "/") || name != strings.ToLower(name) {
		panic(fmt.Sprintf("inject: invalid fault-model name %q", name))
	}
	modelsMu.Lock()
	defer modelsMu.Unlock()
	if _, dup := models[name]; dup {
		panic(fmt.Sprintf("inject: fault model %q registered twice", name))
	}
	models[name] = m
}

// LookupModel returns a registered fault model, or nil.
func LookupModel(name string) FaultModel {
	modelsMu.Lock()
	defer modelsMu.Unlock()
	return models[name]
}

// ModelNames returns the registered fault-model names, sorted.
func ModelNames() []string {
	modelsMu.Lock()
	defer modelsMu.Unlock()
	out := make([]string, 0, len(models))
	for n := range models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultModel is the fault model campaigns run under when their tag
// carries no model prefix: the paper's single-bit upset model.
const DefaultModel = "ssb"

// ModelTag folds a fault model into a campaign tag: the ssb default keeps
// the tag untouched (legacy form — cache filenames, gobs, and sweep state
// stay bit-identical), any other model prefixes "<model>/".
func ModelTag(model, tag string) string {
	if model == "" || model == DefaultModel {
		return tag
	}
	return model + "/" + tag
}

// SplitModelTag recovers (model, baseTag) from a campaign tag: a prefix
// before the first "/" naming a registered non-ssb model is the model;
// anything else — no separator, or a prefix that is not a registered
// model — is the legacy single-bit form.
func SplitModelTag(tag string) (model, baseTag string) {
	if prefix, rest, ok := strings.Cut(tag, "/"); ok && prefix != DefaultModel {
		if LookupModel(prefix) != nil {
			return prefix, rest
		}
	}
	return DefaultModel, tag
}

// --- registered models ---

// ssbModel is the paper's single-bit upset model. Campaigns tagged with it
// never reach Expand: the campaign loop dispatches unprefixed tags to the
// exact legacy RunOneFrom path, keeping ssb results byte-identical. Expand
// is still implemented (one flip, no delay) so generic scenario tooling —
// the determinism fuzz target, external drivers — treats ssb uniformly.
type ssbModel struct{}

func (ssbModel) Name() string         { return "ssb" }
func (ssbModel) Bits(*ModelEnv) []int { return nil }
func (ssbModel) Expand(_ *ModelEnv, bit, _ int, _ uint64) Scenario {
	return Scenario{{Bit: bit}}
}

// mbuModel is the spatial multi-bit upset model: the strike flips the
// sampled flip-flop and every neighbour within layout.SEMURadius, all in
// the injection cycle — the k-flip generalization of the RunPair SEMU
// studies, over the Table 5/6 cluster population the placement produces.
type mbuModel struct{}

func (mbuModel) Name() string         { return "mbu" }
func (mbuModel) Bits(*ModelEnv) []int { return nil }
func (mbuModel) Expand(env *ModelEnv, bit, _ int, _ uint64) Scenario {
	cluster := env.Cluster(bit)
	sc := make(Scenario, len(cluster))
	for i, b := range cluster {
		sc[i] = Flip{Bit: b}
	}
	return sc
}

// uncoreModel restricts single-bit strikes to the memory-interface state
// (Cho et al.): the load/store path and fetch-side buffers. Expansion is
// the ssb single flip; the population is what changes.
type uncoreModel struct{}

func (uncoreModel) Name() string             { return "uncore" }
func (uncoreModel) Bits(env *ModelEnv) []int { return env.UncoreBits() }
func (uncoreModel) Expand(_ *ModelEnv, bit, _ int, _ uint64) Scenario {
	return Scenario{{Bit: bit}}
}

// SETMaxPulse is the widest transient pulse the set model samples, in gate
// delays. Pulse widths draw uniformly from [1, SETMaxPulse].
const SETMaxPulse = 12

// setModel is the single-event transient model: a glitch in the
// combinational cone feeding the sampled flip-flop. The wrong value is
// captured only when the flip-flop's timing slack is below the sampled
// pulse width — a path with more slack than the pulse absorbs it before
// the capture edge, and the scenario is empty (Vanished, never
// simulated). The pulse width draws from the upper half of the sample's
// hash so it is independent of the cycle draw's low bits.
type setModel struct{}

func (setModel) Name() string         { return "set" }
func (setModel) Bits(*ModelEnv) []int { return nil }
func (setModel) Expand(env *ModelEnv, bit, _ int, h uint64) Scenario {
	pulse := 1 + int((h>>32)%SETMaxPulse)
	if env.Pl.Slack[bit] >= pulse {
		return nil
	}
	return Scenario{{Bit: bit}}
}

func init() {
	RegisterModel(ssbModel{})
	RegisterModel(mbuModel{})
	RegisterModel(uncoreModel{})
	RegisterModel(setModel{})
}
