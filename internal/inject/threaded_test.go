package inject

import (
	"encoding/binary"
	"reflect"
	"testing"

	"clear/internal/ino"
	"clear/internal/ooo"
	"clear/internal/prog"
	"clear/internal/tcode"
)

// setCompiled flips compiled execution for one test and restores the
// default afterwards. Cores capture the mode at Reset, so each test must
// construct its cores after selecting the mode.
func setCompiled(t testing.TB, on bool) {
	t.Helper()
	tcode.SetEnabled(on)
	t.Cleanup(func() { tcode.SetEnabled(true) })
}

// mirrorFieldBits returns the flip-flop bit indices of named pipeline
// structures that live behind each core's unpacked latch mirror — ROB, issue
// queue and store queue entries on the OoO core, execute/memory latches on
// the InO core. Injections targeted here exercise the mirror's
// pack/unpack boundary rather than arbitrary bits.
func mirrorFieldBits(t testing.TB, kind CoreKind) []int {
	t.Helper()
	names := map[CoreKind][]string{
		InO: {"e.op1", "e.ctrl.inst", "w.s.icc"},
		OoO: {"rob.head.reg", "rob.inst5", "rob.done7", "rob.count.reg",
			"sched0.s1val3", "sched0.valid2", "sched0.rob9",
			"mem.stq.address2", "mem.stq.count.reg", "mem.stq.valid0"},
	}[kind]
	sp := ino.Space()
	if kind == OoO {
		sp = ooo.Space()
	}
	var bits []int
	for _, n := range names {
		bs := sp.BitsOf(n)
		if len(bs) == 0 {
			t.Fatalf("%v: field %q missing from space", kind, n)
		}
		bits = append(bits, bs...)
	}
	return bits
}

// FuzzThreadedEquivalence is the property pinning compiled execution to the
// decode-switch interpreter: for an arbitrary program image (any byte
// soup — valid instructions, illegal opcodes, accidental control flow) and
// an arbitrary single-bit injection, both execution modes must produce
// identical architectural state traces, cycle for cycle, on both cores.
func FuzzThreadedEquivalence(f *testing.F) {
	// Seed with an empty image, structured noise, and a halt-terminated
	// fragment; the fuzzer mutates from there.
	f.Add([]byte{}, uint32(3), uint32(0))
	f.Add([]byte{0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint32(40), uint32(5))
	f.Add([]byte{
		0x00, 0x00, 0x20, 0x48, // addi r1, r1, ...
		0x00, 0x00, 0x40, 0x10, // mix of R-type fields
		0x01, 0x00, 0x20, 0x74, // sw-ish
		0x00, 0x00, 0x00, 0x04, // halt
	}, uint32(100), uint32(2))
	f.Fuzz(func(t *testing.T, data []byte, bitSeed, cycleSeed uint32) {
		const maxWords = 32
		n := len(data) / 4
		if n > maxWords {
			n = maxWords
		}
		words := make([]uint32, n)
		for i := 0; i < n; i++ {
			words[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		p := &prog.Program{Name: "fuzz", Words: words, MemWords: 16}

		for _, kind := range []CoreKind{InO, OoO} {
			setCompiled(t, false)
			ci := NewCore(kind, p)
			setCompiled(t, true)
			ct := NewCore(kind, p)

			mirrorBits := mirrorFieldBits(t, kind)
			bit := int(bitSeed) % SpaceBits(kind)
			flipCycle := int(cycleSeed % 256)
			// obsCycle crosses the mirror's observation boundary mid-run:
			// Snapshot/Matches while the mirror is live, identity Restore,
			// a flip targeted into a mirrored ROB/IQ/SQ/pipeline field, and
			// (InO) FlushRecover — applied to both modes in lockstep.
			obsCycle := int((bitSeed ^ cycleSeed) % 256)
			const maxCycles = 512
			for cyc := 0; cyc < maxCycles; cyc++ {
				if cyc == flipCycle {
					ci.State().FlipBit(bit)
					ct.State().FlipBit(bit)
				}
				ci.Step()
				ct.Step()
				if !ci.State().Equal(ct.State()) {
					t.Fatalf("%v: flip-flop state diverged at cycle %d (bit=%d flipCycle=%d, %d words)",
						kind, cyc+1, bit, flipCycle, n)
				}
				if ci.Done() != ct.Done() || ci.Cycles() != ct.Cycles() || ci.Retired() != ct.Retired() {
					t.Fatalf("%v: run bookkeeping diverged at cycle %d: interp (done=%v cyc=%d ret=%d) vs compiled (done=%v cyc=%d ret=%d)",
						kind, cyc+1, ci.Done(), ci.Cycles(), ci.Retired(), ct.Done(), ct.Cycles(), ct.Retired())
				}
				if ci.Done() {
					break
				}
				if cyc == obsCycle {
					ckI, ckT := ci.Snapshot(), ct.Snapshot()
					if !ct.Matches(ckI) || !ci.Matches(ckT) {
						t.Fatalf("%v: cross-mode Matches failed at observation cycle %d", kind, cyc+1)
					}
					ci.Restore(ckI)
					ct.Restore(ckT)
					mb := mirrorBits[int(bitSeed>>8)%len(mirrorBits)]
					ci.State().FlipBit(mb)
					ct.State().FlipBit(mb)
					if kind == InO {
						ci.(interface{ FlushRecover() }).FlushRecover()
						ct.(interface{ FlushRecover() }).FlushRecover()
					}
					if !ci.State().Equal(ct.State()) {
						t.Fatalf("%v: state diverged across observation boundary at cycle %d (mirror bit %d)",
							kind, cyc+1, mb)
					}
				}
			}
			if !reflect.DeepEqual(ci.Output(), ct.Output()) {
				t.Fatalf("%v: output streams diverged: %v vs %v", kind, ci.Output(), ct.Output())
			}
			// Full-state check: flip-flops, register file, memory, status,
			// and core-specific SRAM structures (predictors, cache tags).
			if !ct.Matches(ci.Snapshot()) {
				t.Fatalf("%v: full simulation state diverged after %d cycles", kind, ci.Cycles())
			}
		}
	})
}

// TestThreadedNominalEquivalence pins the fault-free case explicitly: the
// tiny program's full run must agree between modes on both cores, including
// the final result and cycle count.
func TestThreadedNominalEquivalence(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		setCompiled(t, false)
		ri := NewCore(kind, p).Run(100000)
		setCompiled(t, true)
		rc := NewCore(kind, p).Run(100000)
		if !reflect.DeepEqual(ri, rc) {
			t.Fatalf("%v: nominal results differ: interp %+v vs compiled %+v", kind, ri, rc)
		}
	}
}

// TestCompiledCampaignEquivalence asserts fixed-seed campaigns are
// bit-identical between execution modes on both cores: same per-flip-flop
// statistics, same totals, same detection latencies. The two-samples config
// doubles the density of warm-start Restore/Matches/FlipBit crossings over
// the OoO mirror's observation boundary.
func TestCompiledCampaignEquivalence(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		for _, cfg := range []Config{
			{Core: kind, Bench: "tiny", SamplesPerFF: 1, Seed: 0xBEEF},
			{Core: kind, Bench: "tiny", SamplesPerFF: 2, Seed: 0x7E57},
		} {
			setCompiled(t, true)
			rc, err := Run(cfg, p, nil)
			if err != nil {
				t.Fatalf("%v compiled: %v", kind, err)
			}
			setCompiled(t, false)
			ri, err := Run(cfg, p, nil)
			if err != nil {
				t.Fatalf("%v interpreted: %v", kind, err)
			}
			if !reflect.DeepEqual(rc, ri) {
				t.Fatalf("%v (samples=%d): campaign results differ between execution modes:\ncompiled   %+v\ninterpreted %+v",
					kind, cfg.SamplesPerFF, rc.Totals, ri.Totals)
			}
		}
	}
}

// TestMirrorObservationBoundaries walks both cores through every observation
// point while the compiled path's unpacked mirror is live: mid-run Snapshot,
// cross-mode Matches, identity Restore, bit flips targeted into mirrored
// ROB/IQ/SQ (OoO) and pipeline-latch (InO) fields between materializations,
// and FlushRecover on the in-order core — asserting the interpreter twin
// never diverges.
func TestMirrorObservationBoundaries(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		setCompiled(t, false)
		ci := NewCore(kind, p)
		setCompiled(t, true)
		ct := NewCore(kind, p)

		mirrorBits := mirrorFieldBits(t, kind)
		const maxCycles = 400
		for cyc := 1; cyc <= maxCycles && !ci.Done(); cyc++ {
			ci.Step()
			ct.Step()
			if !ci.State().Equal(ct.State()) {
				t.Fatalf("%v: state diverged at cycle %d", kind, cyc)
			}
			switch {
			case cyc%32 == 0: // observation boundary: snapshot + identity restore
				ckI, ckT := ci.Snapshot(), ct.Snapshot()
				if !ct.Matches(ckI) {
					t.Fatalf("%v: compiled core does not match interpreter snapshot at cycle %d", kind, cyc)
				}
				if !ci.Matches(ckT) {
					t.Fatalf("%v: interpreter does not match compiled snapshot at cycle %d", kind, cyc)
				}
				ci.Restore(ckI)
				ct.Restore(ckT)
			case cyc%13 == 0: // inject into a mirrored structure mid-run
				mb := mirrorBits[(cyc/13)%len(mirrorBits)]
				ci.State().FlipBit(mb)
				ct.State().FlipBit(mb)
			case kind == InO && cyc%47 == 0: // flush recovery with mirror live
				ci.(interface{ FlushRecover() }).FlushRecover()
				ct.(interface{ FlushRecover() }).FlushRecover()
			}
		}
		if !ct.Matches(ci.Snapshot()) {
			t.Fatalf("%v: full state diverged after observation-boundary walk", kind)
		}
	}
}

// BenchmarkCampaignModes measures the full campaign loop in both execution
// modes on both cores — the before/after numbers behind BENCH_7.json and
// the CI gate that compiled mode must not be slower.
func BenchmarkCampaignModes(b *testing.B) {
	p := tinyProgram(b)
	for _, kind := range []CoreKind{InO, OoO} {
		for _, mode := range []struct {
			name string
			on   bool
		}{{"interpreted", false}, {"compiled", true}} {
			b.Run(kind.String()+"/"+mode.name, func(b *testing.B) {
				setCompiled(b, mode.on)
				cfg := Config{Core: kind, Bench: "tiny", SamplesPerFF: 1, Seed: 0xC1EA5}
				for i := 0; i < b.N; i++ {
					if _, err := Run(cfg, p, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
