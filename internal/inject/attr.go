package inject

import (
	"sync"

	"clear/internal/ff"
	"clear/internal/sim"
)

// Attribution tables: a per-space precomputed map from flip-flop bit to the
// (unit, slot) coordinates InFlight observations report, so the injection
// hot path resolves a strike's root instruction with two array reads and
// one scan of the in-flight list — no string parsing, no allocation.

// attrTable maps every bit of one flip-flop space to its functional unit
// and the entry index encoded in its field name ("rob.pc17" → slot 17;
// -1 when the name carries no trailing index, e.g. "f.pc").
type attrTable struct {
	unit []string
	slot []int
}

var (
	attrMu     sync.Mutex
	attrTables = map[*ff.Space]*attrTable{}
)

// attrOf returns (building and memoizing on first use) the attribution
// table of a space. Spaces are shared per core design, so at most two
// tables exist per process.
func attrOf(s *ff.Space) *attrTable {
	attrMu.Lock()
	defer attrMu.Unlock()
	if t, ok := attrTables[s]; ok {
		return t
	}
	n := s.NumBits()
	t := &attrTable{unit: make([]string, n), slot: make([]int, n)}
	for bit := 0; bit < n; bit++ {
		name, unit := s.NameOf(bit)
		t.unit[bit] = unit
		t.slot[bit] = trailingIndex(name)
	}
	attrTables[s] = t
	return t
}

// trailingIndex parses the decimal entry index a multi-entry structure's
// field names end with ("sched0.s1val5" → 5, "mem.stq.address12" → 12);
// names without trailing digits return -1.
func trailingIndex(name string) int {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) {
		return -1
	}
	v := 0
	for _, c := range name[i:] {
		v = v*10 + int(c-'0')
	}
	return v
}

// rootPC attributes a struck bit to the in-flight instruction whose state
// it corrupted: the occupant of the same (unit, slot) when one exists, else
// the oldest occupant of the same unit (field names whose numeric suffix is
// not an entry index — multiplier stage registers like "exec.mu0.a12" —
// and per-entry fields struck while their own slot is empty land here),
// else NoRootPC (the structure held no instruction).
func (t *attrTable) rootPC(flights []sim.InFlightInst, bit int) uint32 {
	unit, slot := t.unit[bit], t.slot[bit]
	root := NoRootPC
	for _, f := range flights {
		if f.Unit != unit {
			continue
		}
		if f.Slot == slot {
			return f.PC
		}
		if root == NoRootPC {
			root = f.PC
		}
	}
	return root
}

// observe captures the attribution half of a Record right before the flip
// lands: the struck structure and the PC occupying it at the injection
// cycle. Outcome and detection latency are filled in by emit once the run
// classifies.
func observe(c sim.Core, bit, cycle int) Record {
	t := attrOf(c.SpaceOf())
	var buf [160]sim.InFlightInst
	flights := c.InFlight(buf[:0])
	return Record{
		Bit:    bit,
		Unit:   t.unit[bit],
		Cycle:  cycle,
		DetLat: -1,
		RootPC: t.rootPC(flights, bit),
	}
}

// emit completes an observed record with the run's classification and
// forwards it to the sink. DetLat mirrors the campaign accounting: cycles
// from injection to detection, only meaningful for ED outcomes whose
// detection fired at or after the injection cycle.
func (in *Injector) emit(rec Record, out Outcome, det int) {
	rec.Outcome = out
	if out == ED && det >= rec.Cycle {
		rec.DetLat = det - rec.Cycle
	}
	in.Sink.Record(rec)
}
