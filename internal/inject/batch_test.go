package inject

import (
	"bytes"
	"reflect"
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
)

// setPacked flips the packed (gang-batched) campaign engine for one test
// and restores the default afterwards.
func setPacked(t testing.TB, on bool) {
	t.Helper()
	prev := Packed
	Packed = on
	t.Cleanup(func() { Packed = prev })
}

// runBothEngines runs the same campaign through the scalar loop and the
// packed engine and returns both results.
func runBothEngines(t testing.TB, cfg Config, p *prog.Program) (scalar, packed *Result) {
	t.Helper()
	setPacked(t, false)
	scalar, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatalf("scalar run: %v", err)
	}
	setPacked(t, true)
	packed, err = Run(cfg, p, nil)
	if err != nil {
		t.Fatalf("packed run: %v", err)
	}
	return scalar, packed
}

// requireIdentical asserts two campaign results are equal as values AND as
// cache bytes — the packed engine's contract is byte-identical results, so
// existing testdata/cache entries stay valid whichever engine computed them.
func requireIdentical(t testing.TB, label string, scalar, packed *Result) {
	t.Helper()
	if !reflect.DeepEqual(scalar, packed) {
		t.Fatalf("%s: packed result differs from scalar\nscalar: %+v\npacked: %+v",
			label, scalar.Totals, packed.Totals)
	}
	bs, err := encodeCache(scalar)
	if err != nil {
		t.Fatalf("%s: encode scalar: %v", label, err)
	}
	bp, err := encodeCache(packed)
	if err != nil {
		t.Fatalf("%s: encode packed: %v", label, err)
	}
	if !bytes.Equal(bs, bp) {
		t.Fatalf("%s: cache bytes differ between engines", label)
	}
}

// TestPackedCampaignEquivalence pins the tentpole contract: for fixed
// seeds, packed campaigns are bit-identical to scalar ones — DeepEqual
// results and identical cache bytes — on both cores and under every
// registered fault model.
func TestPackedCampaignEquivalence(t *testing.T) {
	p := tinyProgram(t)
	for _, kind := range []CoreKind{InO, OoO} {
		samples := 2
		if kind == OoO && testing.Short() {
			samples = 1
		}
		for _, tag := range []string{"", "mbu/x", "uncore/x", "set/x"} {
			cfg := Config{Core: kind, Bench: "tiny", Tag: tag, SamplesPerFF: samples, Seed: 0xC1EA5}
			scalar, packed := runBothEngines(t, cfg, p)
			requireIdentical(t, kind.String()+"/"+tag, scalar, packed)
			if packed.Totals.N == 0 {
				t.Fatalf("%v/%s: campaign ran no injections", kind, tag)
			}
		}
	}
}

// TestPackedCheckpointBoundaries stresses the gang scheduler's window
// edges: an interval of 1 makes every cycle a checkpoint boundary (every
// lane forks at its window's start and is evicted after one lockstep
// cycle), while 32 exercises multi-window gangs, mid-window forks, and
// window-end eviction of survivors.
func TestPackedCheckpointBoundaries(t *testing.T) {
	p := tinyProgram(t)
	for _, interval := range []int{1, 32} {
		setInterval(t, interval)
		for _, kind := range []CoreKind{InO, OoO} {
			cfg := Config{Core: kind, Bench: "tiny", SamplesPerFF: 1, Seed: 0xBEEF}
			scalar, packed := runBothEngines(t, cfg, p)
			requireIdentical(t, kind.String(), scalar, packed)
		}
	}
}

// TestPackedRestrictedPopulation checks the packed engine against the
// uncore model's restricted strike population: results match the scalar
// engine's and no tally lands outside the population (the compact
// per-worker tallies must scatter back to the right bits).
func TestPackedRestrictedPopulation(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", Tag: "uncore/x", SamplesPerFF: 3, Seed: 7}
	scalar, packed := runBothEngines(t, cfg, p)
	requireIdentical(t, "uncore", scalar, packed)

	pop := map[int]bool{}
	for _, bit := range LookupModel("uncore").Bits(EnvFor(InO)) {
		pop[bit] = true
	}
	if len(pop) == 0 || len(pop) == SpaceBits(InO) {
		t.Fatalf("uncore population degenerate: %d of %d bits", len(pop), SpaceBits(InO))
	}
	want := 0
	for bit, st := range packed.PerFF {
		if !pop[bit] {
			if st != (FFStats{}) {
				t.Fatalf("bit %d outside the strike population has tallies %+v", bit, st)
			}
			continue
		}
		if int(st.N) != cfg.SamplesPerFF {
			t.Fatalf("population bit %d has N=%d, want %d", bit, st.N, cfg.SamplesPerFF)
		}
		want += int(st.N)
	}
	if packed.Totals.N != want {
		t.Fatalf("Totals.N = %d, want %d", packed.Totals.N, want)
	}
}

// delaySpillModel is an unregistered fault model whose scenarios exercise
// the packed planner's spill paths: empty scenarios (Vanished by
// construction), delayed flips (unforkable, replayed scalar-style), and
// plain multi-flip strikes. No registered model emits delays, so this is
// the only way to pin the seam.
type delaySpillModel struct{ nBits int }

func (delaySpillModel) Name() string         { return "zdelayspill" }
func (delaySpillModel) Bits(*ModelEnv) []int { return nil }
func (m delaySpillModel) Expand(env *ModelEnv, bit, cycle int, h uint64) Scenario {
	switch bit % 5 {
	case 0:
		return nil
	case 1:
		return Scenario{{Bit: bit}, {Bit: (bit + 3) % m.nBits, Delay: 2}}
	default:
		return Scenario{{Bit: bit}, {Bit: (bit + 1) % m.nBits}}
	}
}

// TestPackedDelayedScenarioSpill drives runPacked directly with a model the
// registry does not carry, covering every planner disposition at once, and
// checks the result against a hand-rolled scalar loop over the identical
// sample stream.
func TestPackedDelayedScenarioSpill(t *testing.T) {
	p := tinyProgram(t)
	nBits := SpaceBits(InO)
	model := delaySpillModel{nBits: nBits}
	env := EnvFor(InO)
	cfg := Config{Core: InO, Bench: "tiny", Tag: "zdelayspill/x", SamplesPerFF: 1, Seed: 0xABCDE}

	ref, nomRes, err := BuildReference(InO, p, CheckpointInterval, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	nomCycles := nomRes.Steps

	packedRes := &Result{Config: cfg, NomCycles: nomCycles, PerFF: make([]FFStats, nBits)}
	inP := NewInjector()
	if !inP.runPacked(packedRes, cfg, p, ref, nomCycles, nBits, nil, false, model, env) {
		t.Fatal("runPacked reported no gang capability")
	}

	scalarRes := &Result{Config: cfg, NomCycles: nomCycles, PerFF: make([]FFStats, nBits)}
	inS := NewInjector()
	core := NewCore(InO, p)
	for bit := 0; bit < nBits; bit++ {
		for s := 0; s < cfg.SamplesPerFF; s++ {
			h := splitmix64(cfg.Seed ^ uint64(bit)<<20 ^ uint64(s))
			cycle := int(h % uint64(nomCycles))
			sc := model.Expand(env, bit, cycle, h)
			out, det := inS.RunScenarioFrom(core, p, ref, sc, cycle, nomCycles, nil)
			if out == ED && det >= cycle {
				scalarRes.DetLatSum += int64(det - cycle)
				scalarRes.DetN++
			}
			st := &scalarRes.PerFF[bit]
			st.N++
			switch out {
			case OMM:
				st.OMM++
			case UT:
				st.UT++
			case Hang:
				st.Hang++
			case ED:
				st.ED++
			}
			scalarRes.Totals.Add(out)
		}
	}
	if !reflect.DeepEqual(scalarRes, packedRes) {
		t.Fatalf("packed spill result differs from scalar\nscalar: %+v\npacked: %+v",
			scalarRes.Totals, packedRes.Totals)
	}
	pruned, total := inP.PruneStats()
	if total != int64(nBits*cfg.SamplesPerFF) {
		t.Fatalf("packed injTotal = %d, want %d (pruned %d)", total, nBits*cfg.SamplesPerFF, pruned)
	}
}

// fuzzCampaignProgram derives a small halting program from fuzz bytes: a
// bounded loop whose body is fuzz-chosen ALU/memory work, ending in an
// observable output. Every generated program assembles and halts, so the
// fuzzer explores campaign behavior, not assembler rejections.
func fuzzCampaignProgram(t testing.TB, data []byte) *prog.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Li(2, 5)
	b.Li(5, 0)
	b.Li(6, int32(2+len(data)%9)) // 2..10 iterations
	b.Label("loop")
	body := data
	if len(body) > 10 {
		body = body[:10]
	}
	for _, d := range body {
		rd := uint8(1 + (d>>3)%4) // r1..r4
		rs := uint8(1 + (d>>5)%4)
		switch d % 7 {
		case 0:
			b.Add(rd, rd, rs)
		case 1:
			b.Xor(rd, rd, rs)
		case 2:
			b.Addi(rd, rs, int32(d%16))
		case 3:
			b.Mul(rd, rd, rs)
		case 4:
			b.Sw(rd, 0, int32(d%8))
		case 5:
			b.Lw(rd, 0, int32(d%8))
		default:
			b.Slt(rd, rs, rd)
		}
	}
	b.Addi(5, 5, 1)
	b.Bne(5, 6, "loop")
	b.Out(1)
	b.Out(2)
	b.Out(3)
	b.Halt()
	p, err := prog.New("fuzzpacked", b.Items(), nil, 16)
	if err != nil {
		t.Fatalf("assemble fuzz program: %v", err)
	}
	if err := p.ComputeExpected(100_000); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return p
}

// FuzzPackedEquivalence is the property behind the packed engine: for an
// arbitrary generated program, core, registered fault model, and checkpoint
// interval — including interval 1, where every lane hits a window boundary
// after one cycle, and the divergence-eviction edges any failing lane takes —
// the packed campaign must equal the scalar one bit for bit.
func FuzzPackedEquivalence(f *testing.F) {
	f.Add([]byte{}, uint64(1), uint8(0))
	f.Add([]byte{0x11, 0x47, 0xA3, 0x09, 0xEE}, uint64(0xC1EA5), uint8(3))
	f.Add([]byte{0xFF, 0x80, 0x42}, uint64(99), uint8(5))
	f.Add([]byte{0x07, 0x31}, uint64(0xDEAD), uint8(14))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, sel uint8) {
		p := fuzzCampaignProgram(t, data)
		kind := InO
		if sel&1 != 0 {
			kind = OoO
		}
		tag := []string{"", "mbu/f", "uncore/f", "set/f"}[(sel>>1)%4]
		setInterval(t, []int{1, 32, 64, 256}[(sel>>3)%4])
		cfg := Config{Core: kind, Bench: "fuzzpacked", Tag: tag, SamplesPerFF: 1, Seed: seed}
		scalar, packed := runBothEngines(t, cfg, p)
		if !reflect.DeepEqual(scalar, packed) {
			t.Fatalf("%v/%s interval=%d: packed differs from scalar\nscalar: %+v\npacked: %+v",
				kind, tag, CheckpointInterval, scalar.Totals, packed.Totals)
		}
	})
}
