package inject

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignRecomputesTruncatedCache is the regression test for the
// self-healing cache: a valid entry truncated mid-file must not fail the
// campaign. The campaign recomputes (bit-identically), the bad file is
// quarantined as *.corrupt, and a fresh valid entry replaces it.
func TestCampaignRecomputesTruncatedCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)

	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 11}
	r1, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) != 1 {
		t.Fatalf("cache files: %v", files)
	}
	entry := files[0]
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	before := QuarantineStats()
	r2, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatalf("campaign failed on truncated cache entry: %v", err)
	}
	if r2.Totals != r1.Totals {
		t.Fatalf("recomputed campaign differs: %+v vs %+v", r2.Totals, r1.Totals)
	}
	if got := QuarantineStats() - before; got != 1 {
		t.Fatalf("quarantine counter advanced by %d, want 1", got)
	}
	corrupt, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(corrupt) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", corrupt)
	}
	// The rewritten entry round-trips cleanly.
	if _, err := Campaign(cfg, p, nil); err != nil {
		t.Fatalf("rewritten entry unreadable: %v", err)
	}
	if more, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(more) != 1 {
		t.Fatalf("clean reload quarantined again: %v", more)
	}
}

// TestCampaignDetectsBitrotViaCRC flips one payload byte of a valid entry:
// gob alone would often decode such damage into silently wrong statistics;
// the CRC trailer must reject and quarantine it.
func TestCampaignDetectsBitrotViaCRC(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)

	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 12}
	r1, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) != 1 {
		t.Fatalf("cache files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40 // rot one payload bit
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeCache(data); err == nil {
		t.Fatal("decodeCache accepted a bit-rotted payload under the CRC trailer")
	}
	r2, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Totals != r1.Totals {
		t.Fatalf("recomputed campaign differs after bitrot: %+v vs %+v", r2.Totals, r1.Totals)
	}
	if corrupt, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(corrupt) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", corrupt)
	}
}

// TestDecodeCacheLegacyTrailerless keeps the pre-trailer cache corpus
// (testdata/cache holds hundreds of such entries) readable: a plain gob
// encoding without the CRC trailer must still decode.
func TestDecodeCacheLegacyTrailerless(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 13}
	r, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeCache(r)
	if err != nil {
		t.Fatal(err)
	}
	legacy := data[:len(data)-8] // strip magic + CRC: the legacy format
	got, gotModel, err := decodeCache(legacy)
	if err != nil {
		t.Fatalf("legacy trailerless entry rejected: %v", err)
	}
	if got.Totals != r.Totals || got.Config != cfg {
		t.Fatalf("legacy decode mismatch: %+v", got.Totals)
	}
	if gotModel != DefaultModel {
		t.Fatalf("legacy trailerless entry decoded as model %q, want %q", gotModel, DefaultModel)
	}
}

// FuzzCacheDecode attacks the cache decoder with arbitrary bytes: it must
// never panic, and any successful decode must return a result object.
func FuzzCacheDecode(f *testing.F) {
	r := &Result{
		Config:    Config{Core: InO, Bench: "fuzz", Tag: "base", SamplesPerFF: 1, Seed: 5},
		NomCycles: 128,
		NomRet:    64,
		PerFF:     []FFStats{{N: 1, OMM: 1}, {N: 1}, {N: 1, Hang: 1}},
		Totals:    Counts{N: 3, OMM: 1, Hang: 1, Vanished: 1},
	}
	valid, err := encodeCache(r)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-8]) // legacy trailerless form
	f.Add([]byte{})
	f.Add([]byte("CLRC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("cap adversarial allocation")
		}
		r, _, err := decodeCache(data)
		if err == nil && r == nil {
			t.Fatal("decodeCache returned (nil, nil)")
		}
	})
}
