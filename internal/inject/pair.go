package inject

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"clear/internal/prog"
	"clear/internal/sim"
)

// This file is the single-event-multiple-upset (SEMU) side of the engine:
// double-bit injections (one particle, two flip-flops, same cycle) and the
// campaign loop over flip-flop pairs. A pair is the two-flip special case
// of a fault scenario (see scenario.go), so pair injections share the
// scenario machinery — the same Reference warm-start, the same convergence
// pruning, and the same per-Injector counters — and SEMU work is tallied
// and accelerated exactly like the single-flip campaigns.

// pairScenario builds the two-flip same-cycle scenario of a SEMU.
func pairScenario(bitA, bitB int) Scenario {
	return Scenario{{Bit: bitA}, {Bit: bitB}}
}

// runPairCold is the from-reset pair injection: run to cycle, flip both
// bits, run to completion or the hang cutoff, classify. The returned
// detect cycle is the cycle a detection fired at (-1 unless ED).
func runPairCold(c sim.Core, p *prog.Program, bitA, bitB, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return runScenarioCold(c, p, pairScenario(bitA, bitB), cycle, nomCycles, hookFactory)
}

// RunPair is the scoped form of the package-level RunPair: the injection
// and its outcome are tallied on this injector, so standalone SEMU probes
// are visible through the same inject.* counters as campaigns.
func (in *Injector) RunPair(c sim.Core, p *prog.Program, bitA, bitB, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	in.injTotal.Add(1)
	out, det := runPairCold(c, p, bitA, bitB, cycle, nomCycles, hookFactory)
	var one Counts
	one.Add(out)
	in.addOutcomes(one)
	return out, det
}

// RunPairFrom is the pair twin of RunOneFrom: it warm-starts the injection
// from the reference trajectory's nearest snapshot, flips both bits at the
// injection cycle, and applies convergence pruning at every checkpoint
// boundary. The (Outcome, detectCycle) is identical to RunPair's for the
// same (bitA, bitB, cycle); hook-carrying runs fall back to the exact
// from-reset path for the same reason RunOneFrom's do.
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute the injection to a specific scope.
func RunPairFrom(c sim.Core, p *prog.Program, ref *Reference, bitA, bitB, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return std.RunPairFrom(c, p, ref, bitA, bitB, cycle, nomCycles, hookFactory)
}

// RunPairFrom is the scoped form of the package-level RunPairFrom. Unlike
// the standalone RunPair it tallies only the injection and prune counters;
// outcome totals are batched by the campaign loop that owns it (RunPairs),
// mirroring the single-flip RunOneFrom/Run contract.
func (in *Injector) RunPairFrom(c sim.Core, p *prog.Program, ref *Reference, bitA, bitB, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return in.RunScenarioFrom(c, p, ref, pairScenario(bitA, bitB), cycle, nomCycles, hookFactory)
}

// PairConfig describes a SEMU campaign: a (core, program) pair, the sampling
// density per flip-flop pair, and the sampling seed. Tag distinguishes
// campaigns running transformed programs or hooks, as in Config.
type PairConfig struct {
	Core           CoreKind
	Bench          string
	Tag            string
	SamplesPerPair int
	Seed           uint64
}

// PairResult is a completed SEMU campaign over an explicit pair list:
// per-pair outcome tallies (indexed like the input pairs) plus totals and
// detection-latency statistics over the ED outcomes (cycles from injection
// to detection — the same accounting the single-flip Result carries).
type PairResult struct {
	Config    PairConfig
	NomCycles int
	PerPair   []Counts
	Totals    Counts
	DetLatSum int64
	DetN      int64
}

// RunPairs executes a SEMU campaign over pairs: SamplesPerPair
// uniform-random cycles for every flip-flop pair, warm-started and pruned
// through the same reference trajectory as single-flip campaigns. Pair
// lists come from the physical layout (e.g. Placement.AdjacentPairs — the
// pairs one particle can reach).
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute the campaign to a specific scope.
func RunPairs(cfg PairConfig, p *prog.Program, pairs [][2]int,
	hookFactory func(*prog.Program) sim.CommitHook) (*PairResult, error) {
	return std.RunPairs(cfg, p, pairs, hookFactory)
}

// RunPairs is the scoped form of the package-level RunPairs: injections,
// prunes, and outcome tallies land on this injector's counters.
func (in *Injector) RunPairs(cfg PairConfig, p *prog.Program, pairs [][2]int,
	hookFactory func(*prog.Program) sim.CommitHook) (*PairResult, error) {
	if p.Expected == nil {
		return nil, fmt.Errorf("inject: %s has no golden output", p.Name)
	}
	if cfg.SamplesPerPair < 0 || cfg.SamplesPerPair > math.MaxUint16 {
		return nil, fmt.Errorf("inject: SamplesPerPair %d outside [0, %d]",
			cfg.SamplesPerPair, math.MaxUint16)
	}
	nBits := SpaceBits(cfg.Core)
	for _, pr := range pairs {
		if pr[0] < 0 || pr[0] >= nBits || pr[1] < 0 || pr[1] >= nBits {
			return nil, fmt.Errorf("inject: pair %v outside the %d-bit flip-flop space", pr, nBits)
		}
	}
	var ref *Reference
	var nomRes prog.Result
	if hookFactory == nil && CheckpointInterval > 0 {
		var err error
		ref, nomRes, err = BuildReference(cfg.Core, p, CheckpointInterval, nomBudget)
		if err != nil {
			return nil, err
		}
	} else {
		nom := NewCore(cfg.Core, p)
		if hookFactory != nil {
			nom.SetCommitHook(hookFactory(p))
		}
		nomRes = nom.Run(nomBudget)
	}
	if nomRes.Status != prog.StatusHalted || !p.OutputsEqual(nomRes.Output) {
		return nil, fmt.Errorf("inject: nominal run of %s/%s failed: %v", cfg.Bench, cfg.Tag, nomRes.Status)
	}
	nomCycles := nomRes.Steps

	res := &PairResult{
		Config:    cfg,
		NomCycles: nomCycles,
		PerPair:   make([]Counts, len(pairs)),
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	type chunk struct{ lo, hi int }
	chunks := make(chan chunk, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			core := NewCore(cfg.Core, p)
			local := make([]Counts, len(pairs))
			var totals Counts
			var latSum, latN int64
			for ch := range chunks {
				for pi := ch.lo; pi < ch.hi; pi++ {
					for s := 0; s < cfg.SamplesPerPair; s++ {
						h := splitmix64(cfg.Seed ^ uint64(pi)<<20 ^ uint64(s))
						cycle := int(h % uint64(nomCycles))
						out, det := in.RunPairFrom(core, p, ref, pairs[pi][0], pairs[pi][1],
							cycle, nomCycles, hookFactory)
						if out == ED && det >= cycle {
							latSum += int64(det - cycle)
							latN++
						}
						local[pi].Add(out)
						totals.Add(out)
					}
				}
			}
			mu.Lock()
			for i := range local {
				res.PerPair[i].Merge(local[i])
			}
			res.Totals.Merge(totals)
			res.DetLatSum += latSum
			res.DetN += latN
			mu.Unlock()
		}()
	}
	const step = 16
	for lo := 0; lo < len(pairs); lo += step {
		hi := lo + step
		if hi > len(pairs) {
			hi = len(pairs)
		}
		chunks <- chunk{lo, hi}
	}
	close(chunks)
	wg.Wait()
	in.addOutcomes(res.Totals)
	return res, nil
}
