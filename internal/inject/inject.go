// Package inject is the fault-injection engine: it flips single flip-flop
// bits at uniformly sampled (flip-flop, cycle) points while a core runs an
// application benchmark, classifies each run's outcome, and aggregates
// per-flip-flop vulnerability statistics.
//
// Outcome classes follow the paper (Sec 2.1):
//
//	Vanished — normal termination, outputs match the error-free run
//	OMM      — normal termination, outputs differ (SDC-causing)
//	UT       — abnormal termination (DUE-causing)
//	Hang     — no termination within 2x nominal cycles (DUE-causing)
//	ED       — a resilience technique flagged the error (DUE-causing when
//	           no recovery is attached)
package inject

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"clear/internal/ino"
	"clear/internal/ooo"
	"clear/internal/prog"
	"clear/internal/sim"
)

// Outcome is the classification of a single injection run.
type Outcome int

// Injection outcome classes.
const (
	Vanished Outcome = iota
	OMM
	UT
	Hang
	ED
	numOutcomes
)

func (o Outcome) String() string {
	switch o {
	case Vanished:
		return "Vanished"
	case OMM:
		return "OMM"
	case UT:
		return "UT"
	case Hang:
		return "Hang"
	case ED:
		return "ED"
	}
	return "?"
}

// CoreKind selects which processor design is injected.
type CoreKind int

// The two processor designs studied.
const (
	InO CoreKind = iota
	OoO
)

func (k CoreKind) String() string {
	if k == InO {
		return "InO"
	}
	return "OoO"
}

// NewCore instantiates a fresh core of the given kind bound to p.
func NewCore(k CoreKind, p *prog.Program) sim.Core {
	if k == InO {
		return ino.New(p)
	}
	return ooo.New(p)
}

// SpaceBits returns the flip-flop count of a core kind.
func SpaceBits(k CoreKind) int {
	if k == InO {
		return ino.Space().NumBits()
	}
	return ooo.Space().NumBits()
}

// HangFactor is the hang cutoff multiplier over nominal execution time
// (the paper uses 2x).
const HangFactor = 2

// Classify maps a finished run to an outcome class.
func Classify(p *prog.Program, res prog.Result) Outcome {
	switch res.Status {
	case prog.StatusHalted:
		if p.OutputsEqual(res.Output) {
			return Vanished
		}
		return OMM
	case prog.StatusTrap:
		return UT
	case prog.StatusDetected:
		return ED
	default:
		return Hang
	}
}

// RunOne performs a single injection: run core to cycle, flip bit, run to
// completion or the hang cutoff, classify. hookFactory, when non-nil,
// supplies a fresh commit-stream checker for the run (its detections
// classify as ED). The returned detectCycle is the cycle at which a
// detection fired (-1 otherwise).
func RunOne(c sim.Core, p *prog.Program, bit, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	c.Reset(p)
	if hookFactory != nil {
		c.SetCommitHook(hookFactory(p))
	} else {
		c.SetCommitHook(nil)
	}
	for i := 0; i < cycle && !c.Done(); i++ {
		c.Step()
	}
	c.State().FlipBit(bit)
	res := c.Run(HangFactor * nomCycles)
	out := Classify(p, res)
	det := -1
	if out == ED {
		det = res.Steps
	}
	return out, det
}

// Counts aggregates outcome tallies.
type Counts struct {
	N        int
	Vanished int
	OMM      int
	UT       int
	Hang     int
	ED       int
}

// Add accumulates one outcome.
func (c *Counts) Add(o Outcome) {
	c.N++
	switch o {
	case Vanished:
		c.Vanished++
	case OMM:
		c.OMM++
	case UT:
		c.UT++
	case Hang:
		c.Hang++
	case ED:
		c.ED++
	}
}

// Merge accumulates other into c.
func (c *Counts) Merge(other Counts) {
	c.N += other.N
	c.Vanished += other.Vanished
	c.OMM += other.OMM
	c.UT += other.UT
	c.Hang += other.Hang
	c.ED += other.ED
}

// SDC returns the count of SDC-causing errors (output mismatches).
func (c Counts) SDC() int { return c.OMM }

// DUE returns the count of DUE-causing errors (UT + Hang + ED).
func (c Counts) DUE() int { return c.UT + c.Hang + c.ED }

// FFStats is the per-flip-flop outcome tally of a campaign.
type FFStats struct {
	N    uint16 // samples on this flip-flop
	OMM  uint16
	UT   uint16
	Hang uint16
	ED   uint16
}

// SDCFrac returns the fraction of errors in this flip-flop causing SDC.
func (f FFStats) SDCFrac() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.OMM) / float64(f.N)
}

// DUEFrac returns the fraction of errors in this flip-flop causing DUE.
func (f FFStats) DUEFrac() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.UT+f.Hang+f.ED) / float64(f.N)
}

// Config describes an injection campaign: a (core, program) pair plus
// sampling parameters. Tag distinguishes campaigns whose behavior differs
// through a commit hook or transformed program (e.g. "dfc", "eddi").
type Config struct {
	Core         CoreKind
	Bench        string
	Tag          string
	SamplesPerFF int
	Seed         uint64
}

// Result is a completed campaign: per-flip-flop statistics over uniform
// (flip-flop, cycle) samples.
type Result struct {
	Config    Config
	NomCycles int
	NomRet    int64 // retired instructions in the nominal run
	PerFF     []FFStats
	Totals    Counts
	// Detection latency statistics over ED outcomes (cycles from injection
	// to detection).
	DetLatSum int64
	DetN      int64
}

// SDCCount and DUECount report campaign-wide outcome totals.
func (r *Result) SDCCount() int { return r.Totals.SDC() }

// DUECount reports total DUE-causing errors in the campaign.
func (r *Result) DUECount() int { return r.Totals.DUE() }

// splitmix64 provides deterministic per-sample randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nomBudget is the cycle budget of a campaign's nominal (fault-free) run.
const nomBudget = 8_000_000

// Run executes a campaign: SamplesPerFF uniform-random cycles for every
// flip-flop bit of the strike population. The program may be a transformed
// (software-protected) variant; hookFactory attaches an architecture-level
// checker. A "<model>/" prefix on cfg.Tag selects a registered fault model
// (mbu, uncore, set — see model.go); the unprefixed form is the paper's
// single-bit model and runs the exact legacy path.
//
// Hookless campaigns amortize simulation work through the fault-free
// reference trajectory (see CheckpointInterval and RunOneFrom): each
// injection warm-starts from the nearest snapshot and prunes as soon as its
// state reconverges with the reference. Hookless, sinkless campaigns
// further batch up to 64 same-window injections into gangs that share one
// carrier replay of the window prefix and gang-prune reconverged lanes
// every cycle (see Packed and batch.go). Results are bit-for-bit identical
// to the from-reset path for a fixed Config.Seed.
//
// The package-level function counts against the default injection scope;
// use the Injector method to attribute the work to a specific scope.
func Run(cfg Config, p *prog.Program, hookFactory func(*prog.Program) sim.CommitHook) (*Result, error) {
	return std.Run(cfg, p, hookFactory)
}

// Run is the scoped form of the package-level Run: injections, prunes, and
// outcome tallies land on this injector's counters. Counters only observe
// the campaign — they never feed back into it, so results are identical
// whichever scope runs the campaign.
func (in *Injector) Run(cfg Config, p *prog.Program, hookFactory func(*prog.Program) sim.CommitHook) (*Result, error) {
	if p.Expected == nil {
		return nil, fmt.Errorf("inject: %s has no golden output", p.Name)
	}
	if cfg.SamplesPerFF < 0 || cfg.SamplesPerFF > math.MaxUint16 {
		return nil, fmt.Errorf("inject: SamplesPerFF %d outside the per-FF counter range [0, %d]",
			cfg.SamplesPerFF, math.MaxUint16)
	}
	// Resolve the fault model from the tag's "<model>/" prefix (see
	// model.go). The unprefixed legacy form is the ssb model and keeps the
	// exact pre-model code path, so ssb campaigns stay byte-identical.
	modelName, _ := SplitModelTag(cfg.Tag)
	model := LookupModel(modelName)
	ssb := modelName == DefaultModel
	var env *ModelEnv
	var strikes []int
	if !ssb {
		env = EnvFor(cfg.Core)
		strikes = model.Bits(env)
	}
	var ref *Reference
	var nomRes prog.Result
	var nomRet int64
	if hookFactory == nil && CheckpointInterval > 0 {
		var nomC sim.Core
		var refErr error
		ref, nomRes, nomC, refErr = buildReferenceCore(cfg.Core, p, CheckpointInterval, nomBudget)
		if refErr != nil {
			return nil, refErr
		}
		nomRet = nomC.Retired()
	} else {
		nom := NewCore(cfg.Core, p)
		if hookFactory != nil {
			nom.SetCommitHook(hookFactory(p))
		}
		nomRes = nom.Run(nomBudget)
		nomRet = nom.Retired()
	}
	if nomRes.Status != prog.StatusHalted || !p.OutputsEqual(nomRes.Output) {
		return nil, fmt.Errorf("inject: nominal run of %s/%s failed: %v", cfg.Bench, cfg.Tag, nomRes.Status)
	}
	nomCycles := nomRes.Steps
	nBits := SpaceBits(cfg.Core)
	// The strike population: every flip-flop, unless the model restricts
	// it (uncore). PerFF is always full-space sized and indexed by the
	// struck bit, so per-structure reporting works across models.
	nStrikes := nBits
	if strikes != nil {
		nStrikes = len(strikes)
	}

	res := &Result{
		Config:    cfg,
		NomCycles: nomCycles,
		NomRet:    nomRet,
		PerFF:     make([]FFStats, nBits),
	}

	// Eligible campaigns run on the packed (gang-batched) engine — see
	// batch.go for the eligibility reasoning. Results are bit-identical to
	// the scalar loop below, which remains both the -packed=false escape
	// hatch and the path for hooked or sink-carrying campaigns.
	if Packed && hookFactory == nil && in.Sink == nil &&
		ref != nil && ref.Interval > 0 && len(ref.Ckpts) > 0 {
		if in.runPacked(res, cfg, p, ref, nomCycles, nStrikes, strikes, ssb, model, env) {
			in.addOutcomes(res.Totals)
			return res, nil
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	type chunk struct{ lo, hi int }
	chunks := make(chan chunk, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			core := NewCore(cfg.Core, p)
			// Tallies are indexed by the compact strike population, not the
			// full flip-flop space: a restricted model (uncore) strikes a
			// few hundred bits and must not pay a full-space slice per
			// worker. The merge below scatters back to PerFF's bit indexing.
			local := make([]FFStats, nStrikes)
			var totals Counts
			var latSum, latN int64
			for ch := range chunks {
				for i := ch.lo; i < ch.hi; i++ {
					bit := i
					if strikes != nil {
						bit = strikes[i]
					}
					for s := 0; s < cfg.SamplesPerFF; s++ {
						h := splitmix64(cfg.Seed ^ uint64(bit)<<20 ^ uint64(s))
						cycle := int(h % uint64(nomCycles))
						var out Outcome
						var det int
						if ssb {
							out, det = in.RunOneFrom(core, p, ref, bit, cycle, nomCycles, hookFactory)
						} else {
							sc := model.Expand(env, bit, cycle, h)
							out, det = in.RunScenarioFrom(core, p, ref, sc, cycle, nomCycles, hookFactory)
						}
						if out == ED && det >= cycle {
							latSum += int64(det - cycle)
							latN++
						}
						st := &local[i]
						st.N++
						switch out {
						case OMM:
							st.OMM++
						case UT:
							st.UT++
						case Hang:
							st.Hang++
						case ED:
							st.ED++
						}
						totals.Add(out)
					}
				}
			}
			mu.Lock()
			for i := range local {
				bit := i
				if strikes != nil {
					bit = strikes[i]
				}
				res.PerFF[bit].N += local[i].N
				res.PerFF[bit].OMM += local[i].OMM
				res.PerFF[bit].UT += local[i].UT
				res.PerFF[bit].Hang += local[i].Hang
				res.PerFF[bit].ED += local[i].ED
			}
			res.Totals.Merge(totals)
			res.DetLatSum += latSum
			res.DetN += latN
			mu.Unlock()
		}()
	}
	const step = 64
	for lo := 0; lo < nStrikes; lo += step {
		hi := lo + step
		if hi > nStrikes {
			hi = nStrikes
		}
		chunks <- chunk{lo, hi}
	}
	close(chunks)
	wg.Wait()
	in.addOutcomes(res.Totals)
	return res, nil
}

// RunPair performs a single-event multiple-upset (SEMU) injection: two
// flip-flops struck by one particle flip in the same cycle. The paper's
// layout constraint (Tables 5/6) exists precisely because an even number
// of flips inside one parity group is invisible to an XOR tree. The
// returned detect cycle is the cycle a detection fired at (-1 unless the
// outcome is ED).
//
// The injection and its outcome are tallied on the default injection scope;
// use the Injector method (or RunPairFrom / RunPairs, see pair.go) to
// attribute SEMU work to a specific scope or to warm-start it from a
// reference trajectory.
func RunPair(c sim.Core, p *prog.Program, bitA, bitB, cycle, nomCycles int,
	hookFactory func(*prog.Program) sim.CommitHook) (Outcome, int) {
	return std.RunPair(c, p, bitA, bitB, cycle, nomCycles, hookFactory)
}
