package inject

import (
	"os"
	"path/filepath"
	"testing"

	"clear/internal/bench"
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
)

func tinyProgram(t testing.TB) *prog.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 30)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Sw(1, 0, 4)
	b.Bne(2, 3, "loop")
	b.Lw(4, 0, 4)
	b.Out(4)
	b.Halt()
	p, err := prog.New("tiny", b.Items(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.Vars = []prog.Var{{Name: "acc", Addr: 4, Len: 1}}
	if err := p.ComputeExpected(10000); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassify(t *testing.T) {
	p := tinyProgram(t)
	cases := []struct {
		res  prog.Result
		want Outcome
	}{
		{prog.Result{Status: prog.StatusHalted, Output: p.Expected}, Vanished},
		{prog.Result{Status: prog.StatusHalted, Output: []uint32{1}}, OMM},
		{prog.Result{Status: prog.StatusTrap}, UT},
		{prog.Result{Status: prog.StatusDetected}, ED},
		{prog.Result{Status: prog.StatusMaxSteps}, Hang},
	}
	for _, tc := range cases {
		if got := Classify(p, tc.res); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.res.Status, got, tc.want)
		}
	}
}

func TestCountsArithmetic(t *testing.T) {
	var c Counts
	for _, o := range []Outcome{Vanished, OMM, OMM, UT, Hang, ED} {
		c.Add(o)
	}
	if c.N != 6 || c.SDC() != 2 || c.DUE() != 3 || c.Vanished != 1 {
		t.Fatalf("counts %+v", c)
	}
	var d Counts
	d.Merge(c)
	d.Merge(c)
	if d.N != 12 || d.SDC() != 4 {
		t.Fatalf("merged %+v", d)
	}
}

func TestRunOneDeterministic(t *testing.T) {
	p := tinyProgram(t)
	c := NewCore(InO, p)
	nom := NewCore(InO, p).Run(100000)
	if nom.Status != prog.StatusHalted {
		t.Fatal("nominal failed")
	}
	for bit := 0; bit < 64; bit += 7 {
		o1, _ := RunOne(c, p, bit, 20, nom.Steps, nil)
		o2, _ := RunOne(c, p, bit, 20, nom.Steps, nil)
		if o1 != o2 {
			t.Fatalf("bit %d: nondeterministic outcome %v vs %v", bit, o1, o2)
		}
	}
}

func TestCampaignSmall(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 42}
	r, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	nBits := SpaceBits(InO)
	if len(r.PerFF) != nBits {
		t.Fatalf("PerFF len %d, want %d", len(r.PerFF), nBits)
	}
	if r.Totals.N != nBits {
		t.Fatalf("totals N %d, want %d", r.Totals.N, nBits)
	}
	sum := 0
	for _, f := range r.PerFF {
		sum += int(f.N)
	}
	if sum != nBits {
		t.Fatalf("per-FF sample total %d, want %d", sum, nBits)
	}
	if r.Totals.Vanished == 0 {
		t.Fatal("expected some vanished outcomes")
	}
	if r.Totals.SDC()+r.Totals.DUE() == 0 {
		t.Fatal("expected some SDC/DUE outcomes")
	}
	t.Logf("tiny campaign: %+v over %d cycles nominal", r.Totals, r.NomCycles)
}

func TestCampaignDeterminism(t *testing.T) {
	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 1}
	r1, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Totals != r2.Totals {
		t.Fatalf("nondeterministic campaign: %+v vs %+v", r1.Totals, r2.Totals)
	}
	for i := range r1.PerFF {
		if r1.PerFF[i] != r2.PerFF[i] {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestCampaignCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", dir)

	p := tinyProgram(t)
	cfg := Config{Core: InO, Bench: "tiny", SamplesPerFF: 1, Seed: 9}
	r1, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	if len(files) != 1 {
		t.Fatalf("cache files: %v", files)
	}
	r2, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Totals != r2.Totals {
		t.Fatalf("cache roundtrip mismatch: %+v vs %+v", r1.Totals, r2.Totals)
	}
	// corrupt cache: must regenerate, not fail
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3, err := Campaign(cfg, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Totals != r1.Totals {
		t.Fatalf("regenerated campaign differs")
	}
}

func TestHookClassifiesED(t *testing.T) {
	p := tinyProgram(t)
	c := NewCore(InO, p)
	nom := NewCore(InO, p).Run(100000)
	// A hook that flags everything: every injection (and the run itself)
	// detects immediately.
	out, det := RunOne(c, p, 3, 5, nom.Steps, func(*prog.Program) sim.CommitHook {
		return func(ev sim.CommitEvent) bool { return true }
	})
	if out != ED || det < 0 {
		t.Fatalf("got %v det=%d, want ED", out, det)
	}
}

func TestHighLevelModes(t *testing.T) {
	p := bench.ByName("gzip").MustProgram()
	for _, mode := range []Mode{RegUniform, RegWrite, VarUniform, VarWrite} {
		c, err := RunHighLevel(p, mode, 60, 7)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if c.N != 60 {
			t.Fatalf("%v: N=%d", mode, c.N)
		}
		t.Logf("%v: %+v", mode, c)
	}
	// Write-triggered modes should corrupt live values more often than
	// uniform ones corrupt dead state: regW must produce non-vanished
	// outcomes.
	c, err := RunHighLevel(p, RegWrite, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.N-c.Vanished == 0 {
		t.Fatal("regW produced no visible corruption at all")
	}
}

func TestHighLevelErrors(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Out(1)
	b.Halt()
	p, _ := prog.New("novars", b.Items(), nil, 8)
	p.ComputeExpected(100)
	if _, err := RunHighLevel(p, VarUniform, 5, 1); err == nil {
		t.Fatal("expected error for program without vars")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Vanished.String() != "Vanished" || ED.String() != "ED" || Outcome(99).String() != "?" {
		t.Fatal("Outcome.String broken")
	}
	if InO.String() != "InO" || OoO.String() != "OoO" {
		t.Fatal("CoreKind.String broken")
	}
}

func TestRunPairSEMU(t *testing.T) {
	p := tinyProgram(t)
	c := NewCore(InO, p)
	nom := NewCore(InO, p).Run(100000)
	// deterministic
	o1, _ := RunPair(c, p, 3, 40, 20, nom.Steps, nil)
	o2, _ := RunPair(c, p, 3, 40, 20, nom.Steps, nil)
	if o1 != o2 {
		t.Fatalf("RunPair nondeterministic: %v vs %v", o1, o2)
	}
	// flipping the same bit twice in one strike is the identity: outcome
	// must equal the fault-free classification
	if out, _ := RunPair(c, p, 7, 7, 10, nom.Steps, nil); out != Vanished {
		t.Fatalf("double flip of one bit should vanish, got %v", out)
	}
}
