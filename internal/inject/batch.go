package inject

// Packed (gang-batched) campaign execution — ROADMAP item 2(a), DESIGN.md
// §14. A campaign's injections are grouped by the checkpoint window their
// injection cycle falls in; each group is split into gangs of up to
// lanes.Width scenarios. One fault-free carrier core replays the window's
// shared prefix from the PR 1 reference checkpoint exactly once per gang;
// every lane forks off the carrier at its injection cycle with a
// zero-allocation state clone (sim.GangCore.CopyStateFrom), takes its
// flips, and then steps in lockstep with the carrier. Each cycle, a lane is
// compared against the carrier (sim.GangCore.DiffFrom):
//
//   - identical full state ⇒ the lane is gang-pruned Vanished immediately —
//     the same soundness argument as boundary pruning (two bit-identical
//     states of a deterministic core share the same future, and the
//     carrier's future is the fault-free run), detected within one cycle of
//     reconvergence instead of at the next checkpoint boundary;
//   - control-flow divergence (PC/done/status/counters) or side-state
//     divergence (memory/output/SRAMs) ⇒ the lane is evicted from the gang
//     and continued through finishInjected, the exact tail the scalar
//     RunOneFrom/RunScenarioFrom paths run — the lane already holds the
//     state the scalar path would have at that cycle, so outcomes stay bit
//     identical;
//   - pure latch divergence ⇒ the lane stays in lockstep, the state most
//     likely to reconverge (a struck value still draining through the
//     pipeline).
//
// Lanes still live at the window's end, and lanes that could not fork
// (carrier finished first, delayed flips, out-of-range checkpoint index)
// are likewise finished through the scalar warm bodies. Only hookless,
// sinkless campaigns run packed: commit hooks cannot be checkpointed, and
// the scalar per-worker-per-bit loop is what guarantees the record sink's
// deterministic per-bit arrival order.

import (
	"runtime"
	"sort"
	"sync"

	"clear/internal/lanes"
	"clear/internal/prog"
	"clear/internal/sim"
)

// Packed selects the gang-batched engine for eligible campaigns (hookless,
// sinkless, checkpointed). It only affects campaign running time: results
// are bit-for-bit identical either way for a fixed Config.Seed, so — like
// CheckpointInterval — it is deliberately not part of Config and does not
// key the on-disk campaign cache. The -packed=false flag on clearsweep,
// precompute and faultinject is the escape hatch back to per-injection
// scalar replay.
var Packed = true

// GangWidth is the number of fault scenarios one packed batch carries.
const GangWidth = lanes.Width

// packedLane is one planned injection: its compact strike-population index
// (the worker tally slot), the struck bit (first-applied flip for
// scenarios), the injection cycle, and the expanded scenario (nil for the
// ssb model's single-bit strike).
type packedLane struct {
	pop   int
	bit   int
	cycle int
	sc    Scenario
}

// laneGang is one batch of lanes sharing a checkpoint window. ckpt < 0
// marks a spill gang: lanes the packed engine cannot fork (delayed flips,
// out-of-range checkpoint index), replayed through the scalar warm bodies.
type laneGang struct {
	ckpt  int
	lanes []packedLane
}

// packedPlan is a campaign's sampled population sorted into gangs plus the
// empty-scenario strikes that are Vanished by construction.
type packedPlan struct {
	gangs    []laneGang
	vanished []packedLane
}

// planPacked samples the campaign's (bit, cycle) population — the identical
// splitmix64 stream the scalar loop draws — and groups the resulting lanes
// by checkpoint window, each window's lanes sorted by injection cycle and
// chunked into gangs of at most GangWidth. Sorting before chunking keeps
// each gang's forks inside a short time slice of the window, so a gang's
// carrier stops stepping as soon as its slice is decided.
func planPacked(cfg Config, ref *Reference, nomCycles, nStrikes int, strikes []int,
	ssb bool, model FaultModel, env *ModelEnv) packedPlan {
	var plan packedPlan
	byWindow := make(map[int][]packedLane)
	var spill []packedLane
	for i := 0; i < nStrikes; i++ {
		bit := i
		if strikes != nil {
			bit = strikes[i]
		}
		for s := 0; s < cfg.SamplesPerFF; s++ {
			h := splitmix64(cfg.Seed ^ uint64(bit)<<20 ^ uint64(s))
			cycle := int(h % uint64(nomCycles))
			ln := packedLane{pop: i, bit: bit, cycle: cycle}
			if !ssb {
				sc := model.Expand(env, bit, cycle, h)
				if len(sc) == 0 {
					plan.vanished = append(plan.vanished, ln)
					continue
				}
				ln.sc = sc
				if sc.normalize() > 0 {
					// Delayed flips re-diverge a lane after it may already
					// match the carrier, so they cannot be gang-pruned;
					// no registered model emits them, but the seam stays
					// correct if one does.
					spill = append(spill, ln)
					continue
				}
			}
			idx := cycle / ref.Interval
			if idx >= len(ref.Ckpts) {
				spill = append(spill, ln)
				continue
			}
			byWindow[idx] = append(byWindow[idx], ln)
		}
	}
	windows := make([]int, 0, len(byWindow))
	for idx := range byWindow {
		windows = append(windows, idx)
	}
	sort.Ints(windows)
	for _, idx := range windows {
		lns := byWindow[idx]
		sort.SliceStable(lns, func(i, j int) bool { return lns[i].cycle < lns[j].cycle })
		for lo := 0; lo < len(lns); lo += GangWidth {
			hi := lo + GangWidth
			if hi > len(lns) {
				hi = len(lns)
			}
			plan.gangs = append(plan.gangs, laneGang{ckpt: idx, lanes: lns[lo:hi]})
		}
	}
	for lo := 0; lo < len(spill); lo += GangWidth {
		hi := lo + GangWidth
		if hi > len(spill) {
			hi = len(spill)
		}
		plan.gangs = append(plan.gangs, laneGang{ckpt: -1, lanes: spill[lo:hi]})
	}
	return plan
}

// gangWorker is one campaign worker's packed execution state: the carrier,
// a lazily grown lane-core pool, a scalar core for spills and unforked
// lanes, and the compact per-population tallies merged into the Result
// under the campaign mutex.
type gangWorker struct {
	in        *Injector
	kind      CoreKind
	p         *prog.Program
	ref       *Reference
	nomCycles int

	carrier sim.Core
	cores   [GangWidth]sim.Core
	scalar  sim.Core

	local        []FFStats
	totals       Counts
	latSum, latN int64
}

// lane returns the pool core for a slot, creating it on first use so a
// campaign whose gangs never fill (small populations) never pays for 64
// cores per worker.
func (w *gangWorker) lane(slot int) sim.Core {
	if w.cores[slot] == nil {
		w.cores[slot] = NewCore(w.kind, w.p)
	}
	return w.cores[slot]
}

// tally accumulates one decided lane, mirroring the scalar campaign loop's
// accounting exactly (including the detection-latency guard).
func (w *gangWorker) tally(ln packedLane, out Outcome, det int) {
	if out == ED && det >= ln.cycle {
		w.latSum += int64(det - ln.cycle)
		w.latN++
	}
	st := &w.local[ln.pop]
	st.N++
	switch out {
	case OMM:
		st.OMM++
	case UT:
		st.UT++
	case Hang:
		st.Hang++
	case ED:
		st.ED++
	}
	w.totals.Add(out)
}

// replay finishes one lane through the scalar warm bodies (the injection
// itself was already counted by the gang).
func (w *gangWorker) replay(ln packedLane) {
	if w.scalar == nil {
		w.scalar = NewCore(w.kind, w.p)
	}
	var out Outcome
	var det int
	if ln.sc == nil {
		out, det = w.in.runOneWarm(w.scalar, w.p, w.ref, ln.bit, ln.cycle, w.nomCycles)
	} else {
		out, det = w.in.runScenarioWarm(w.scalar, w.p, w.ref, ln.sc, ln.cycle, w.nomCycles)
	}
	w.tally(ln, out, det)
}

// classifyDone classifies a lane that finished during lockstep, mirroring
// the scalar tail's Done branch.
func classifyDone(p *prog.Program, c sim.Core) (Outcome, int) {
	res := c.Result()
	out := Classify(p, res)
	det := -1
	if out == ED {
		det = res.Steps
	}
	return out, det
}

// runGang executes one gang: replay the window prefix on the carrier, fork
// each lane at its cycle, lockstep-and-classify until every lane is
// decided or the window ends, then finish the survivors scalar-style.
func (w *gangWorker) runGang(g laneGang) {
	w.in.injTotal.Add(int64(len(g.lanes)))
	if g.ckpt < 0 {
		for _, ln := range g.lanes {
			w.replay(ln)
		}
		return
	}
	if w.carrier == nil {
		w.carrier = NewCore(w.kind, w.p)
	}
	car := w.carrier
	car.Restore(w.ref.Ckpts[g.ckpt])
	car.SetCommitHook(nil)
	windowEnd := (g.ckpt + 1) * w.ref.Interval

	var live lanes.Mask
	var slot [GangWidth]packedLane
	next := 0
	for {
		t := car.Cycles()
		for next < len(g.lanes) && g.lanes[next].cycle == t && !car.Done() {
			s := live.FirstFree()
			lc := w.lane(s)
			lc.(sim.GangCore).CopyStateFrom(car)
			ln := g.lanes[next]
			if ln.sc == nil {
				lc.State().FlipBit(ln.bit)
			} else {
				// All flips are delay-0 (planPacked spills the rest), applied
				// in the scenario's normalized order like applyAt.
				for _, f := range ln.sc {
					lc.State().FlipBit(f.Bit)
				}
			}
			slot[s] = ln
			live.Set(s)
			next++
		}
		if car.Done() || t >= windowEnd || (live.Empty() && next >= len(g.lanes)) {
			break
		}
		car.Step()
		for m := live; !m.Empty(); {
			s := m.PopLowest()
			lc := w.lane(s)
			lc.Step()
			if lc.Done() {
				out, det := classifyDone(w.p, lc)
				w.tally(slot[s], out, det)
				live.Clear(s)
				continue
			}
			switch d := lc.(sim.GangCore).DiffFrom(car); {
			case d == 0:
				// Gang prune: bit-identical to the fault-free carrier at the
				// same cycle, so the lane's future is the reference future —
				// provably Vanished, same accounting as a boundary prune.
				w.in.injPruned.Add(1)
				w.in.pruneCycles.Observe(int64(lc.Cycles() - slot[s].cycle))
				w.tally(slot[s], Vanished, -1)
				live.Clear(s)
			case d&(sim.DiffCtl|sim.DiffAux) != 0:
				// Control flow left the reference trajectory, or side state
				// (memory/output/SRAMs) diverged: reconvergence is no longer
				// cheap to detect, so continue the lane scalar-style.
				out, det := w.in.finishInjected(lc, w.p, w.ref, slot[s].cycle, w.nomCycles)
				w.tally(slot[s], out, det)
				live.Clear(s)
			}
		}
	}
	// Window over (or carrier finished): survivors keep their exact lane
	// state and run the scalar tail from here.
	for m := live; !m.Empty(); {
		s := m.PopLowest()
		out, det := w.in.finishInjected(w.lane(s), w.p, w.ref, slot[s].cycle, w.nomCycles)
		w.tally(slot[s], out, det)
	}
	// Lanes whose fork point the carrier never reached (it halted first):
	// the scalar warm bodies reproduce the inject-into-finished-state case.
	for ; next < len(g.lanes); next++ {
		w.replay(g.lanes[next])
	}
}

// runPacked executes the campaign through the gang engine, filling res. It
// reports false — leaving res untouched — when the core design lacks the
// gang hooks, in which case the caller falls back to the scalar loop.
// Identical per-(bit, cycle) outcomes summed by commutative tallies make
// the filled Result byte-identical to the scalar loop's.
func (in *Injector) runPacked(res *Result, cfg Config, p *prog.Program, ref *Reference,
	nomCycles, nStrikes int, strikes []int, ssb bool, model FaultModel, env *ModelEnv) bool {
	if _, ok := NewCore(cfg.Core, p).(sim.GangCore); !ok {
		return false
	}
	plan := planPacked(cfg, ref, nomCycles, nStrikes, strikes, ssb, model, env)

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	gangs := make(chan laneGang, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &gangWorker{
				in: in, kind: cfg.Core, p: p, ref: ref, nomCycles: nomCycles,
				local: make([]FFStats, nStrikes),
			}
			for g := range gangs {
				w.runGang(g)
			}
			mu.Lock()
			for i := range w.local {
				bit := i
				if strikes != nil {
					bit = strikes[i]
				}
				res.PerFF[bit].N += w.local[i].N
				res.PerFF[bit].OMM += w.local[i].OMM
				res.PerFF[bit].UT += w.local[i].UT
				res.PerFF[bit].Hang += w.local[i].Hang
				res.PerFF[bit].ED += w.local[i].ED
			}
			res.Totals.Merge(w.totals)
			res.DetLatSum += w.latSum
			res.DetN += w.latN
			mu.Unlock()
		}()
	}
	for _, g := range plan.gangs {
		gangs <- g
	}
	close(gangs)
	wg.Wait()

	// Strikes the fault model says latch nothing: Vanished by construction,
	// no simulation — the same bookkeeping RunScenarioFrom's empty-scenario
	// path performs.
	for _, ln := range plan.vanished {
		in.injTotal.Add(1)
		res.PerFF[ln.bit].N++
		res.Totals.Add(Vanished)
	}
	return true
}
