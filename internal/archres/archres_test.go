package archres

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/ino"
	"clear/internal/ooo"
	"clear/internal/power"
	"clear/internal/prog"
)

// Error-free runs must never trip the checkers (no false positives).
func TestNoFalsePositives(t *testing.T) {
	for _, b := range bench.All() {
		p := b.MustProgram()
		c := ino.New(p)
		c.SetCommitHook(NewDFC(p))
		res := c.Run(5_000_000)
		if res.Status != prog.StatusHalted {
			t.Fatalf("DFC false positive on %s: %v", b.Name, res.Status)
		}
	}
	for _, b := range bench.ForOoO() {
		p := b.MustProgram()
		c := ooo.New(p)
		c.SetCommitHook(NewMonitor(p))
		res := c.Run(5_000_000)
		if res.Status != prog.StatusHalted {
			t.Fatalf("monitor false positive on %s: %v", b.Name, res.Status)
		}
		if !p.OutputsEqual(res.Output) {
			t.Fatalf("monitor changed output on %s", b.Name)
		}
	}
}

// DFC must detect instruction-stream corruption but miss pure data
// corruption — the paper's core observation about its limited coverage.
func TestDFCCoverageCharacter(t *testing.T) {
	p := bench.ByName("gzip").MustProgram()

	// corrupt the latched instruction word in the execute stage: the
	// committed word changes -> dataflow signature mismatch
	f, _ := ino.Space().Lookup("e.ctrl.inst")
	core := ino.New(p)
	nom := ino.New(p).Run(1_000_000)
	detInst := 0
	for cyc := 100; cyc < 400; cyc += 10 {
		out, _ := inject.RunOne(core, p, f.Offset()+3, cyc, nom.Steps, DFCHookFactory())
		if out == inject.ED {
			detInst++
		}
	}
	if detInst == 0 {
		t.Fatal("DFC never detected instruction corruption")
	}

	// corrupt a data operand: signature unchanged -> mostly undetected
	g, _ := ino.Space().Lookup("e.op1")
	detData, omm := 0, 0
	for cyc := 100; cyc < 400; cyc += 10 {
		out, _ := inject.RunOne(core, p, g.Offset()+20, cyc, nom.Steps, DFCHookFactory())
		switch out {
		case inject.ED:
			detData++
		case inject.OMM:
			omm++
		}
	}
	t.Logf("DFC: inst-corruption detected %d; data-corruption detected %d, escaped %d",
		detInst, detData, omm)
	if omm == 0 {
		t.Fatal("expected data corruption to escape DFC as OMM")
	}
}

// The monitor core re-executes everything, so it must catch data corruption
// that escapes DFC.
func TestMonitorCatchesDataCorruption(t *testing.T) {
	p := bench.ByName("inner_product").MustProgram()
	f, _ := ooo.Space().Lookup("sched0.s1val0")
	core := ooo.New(p)
	nom := ooo.New(p).Run(1_000_000)
	det, omm := 0, 0
	for cyc := 50; cyc < 350; cyc += 5 {
		for bit := 0; bit < 32; bit += 11 {
			out, _ := inject.RunOne(core, p, f.Offset()+bit, cyc, nom.Steps, MonitorHookFactory())
			switch out {
			case inject.ED:
				det++
			case inject.OMM:
				omm++
			}
		}
	}
	t.Logf("monitor: detected %d, escaped %d", det, omm)
	if det == 0 {
		t.Fatal("monitor detected nothing")
	}
	if omm > det {
		t.Fatalf("monitor escaped more than it caught (%d vs %d)", omm, det)
	}
}

func TestMonitorThroughput(t *testing.T) {
	// Table 9: the 2GHz/0.7-IPC monitor must not stall the 600MHz main core.
	if MonitorStallsMain(600, 1.3) {
		t.Fatal("monitor should sustain the OoO core's commit rate")
	}
	if !MonitorStallsMain(2000, 1.5) {
		t.Fatal("a fast main core should overwhelm the monitor")
	}
}

func TestCheckerCosts(t *testing.T) {
	dfcInO := DFCCost(power.InO())
	dfcOoO := DFCCost(power.OoO())
	if dfcInO.Area < 0.01 || dfcInO.Area > 0.08 {
		t.Fatalf("InO DFC area %.3f implausible (paper ~3%%)", dfcInO.Area)
	}
	if dfcOoO.Area > dfcInO.Area {
		t.Fatal("DFC should be relatively cheaper on the big core")
	}
	if dfcInO.ExecTime != DFCExecImpactInO {
		t.Fatal("exec impact not propagated")
	}
	mon := MonitorCost(power.OoO())
	if mon.Area < 0.03 || mon.Area > 0.2 {
		t.Fatalf("monitor area %.3f implausible (paper ~9%%)", mon.Area)
	}
	if mon.Energy() < 0.08 || mon.Energy() > 0.3 {
		t.Fatalf("monitor energy %.3f implausible (paper ~16.3%%)", mon.Energy())
	}
	t.Logf("DFC InO %+v, DFC OoO %+v, monitor %+v (energy %.3f)",
		dfcInO, dfcOoO, mon, mon.Energy())
}
