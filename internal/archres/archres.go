// Package archres implements the architecture-level resilience techniques:
// DFC (data-flow checking with control-flow checking, after [Meixner 07]'s
// Argus) and the monitor/checker core (after [Austin 99]'s DIVA). Both
// observe the commit stream of a core through sim.CommitHook — the same
// vantage point the hardware checkers have — so their coverage is measured,
// not assumed: DFC catches corrupted instruction identity and illegal
// control-flow edges but not corrupted data values, which is exactly why
// the paper finds it detects only ~30% of SDC/DUE-causing errors.
package archres

import (
	"clear/internal/isa"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/sim"
)

// Checker implementation versions: campaign cache tags embed these, so a
// change to a checker's detection semantics can never silently reuse stale
// campaign results (version 1 renders as an empty suffix for continuity).
const (
	DFCVersion     = 1
	MonitorVersion = 2
)

// ---- DFC: dataflow + control-flow signature checking ----

// dfc holds the checker state for one run.
type dfc struct {
	p        *prog.Program
	static   []uint32 // per-block static dataflow signature
	startOf  map[int]int
	lastPC   int
	curBlock int
	blockPos int // next expected pc within the current block
	runHash  uint32
	entered  bool
}

// dataflow signature: FNV-1a over the committed instruction encodings.
func sigStep(h, word uint32) uint32 {
	h ^= word
	h *= 16777619
	return h
}

// NewDFC returns a commit hook implementing DFC+CFC for p.
func NewDFC(p *prog.Program) sim.CommitHook {
	d := &dfc{p: p, startOf: map[int]int{}}
	d.static = make([]uint32, len(p.Blocks))
	for i, blk := range p.Blocks {
		h := uint32(2166136261)
		for pc := blk.Start; pc < blk.End; pc++ {
			h = sigStep(h, isa.Encode(p.Code[pc]))
		}
		d.static[i] = h
		d.startOf[blk.Start] = i
	}
	return d.observe
}

// DFCHookFactory adapts NewDFC for injection campaigns.
func DFCHookFactory() func(*prog.Program) sim.CommitHook {
	return func(p *prog.Program) sim.CommitHook { return NewDFC(p) }
}

// observe checks one committed instruction; true means "error detected".
func (d *dfc) observe(ev sim.CommitEvent) bool {
	pc := int(ev.PC)
	if !d.entered {
		// first commit must be the program entry
		if pc != 0 {
			return true
		}
		d.entered = true
		d.curBlock = 0
		d.blockPos = 0
		d.runHash = 2166136261
	} else if pc != d.blockPos {
		// Control transfer: legal only from the end of the current block
		// to the start of a successor block.
		if d.blockPos != d.p.Blocks[d.curBlock].End {
			return true // left the block early
		}
		nb, ok := d.startOf[pc]
		if !ok {
			return true // jumped into the middle of a block
		}
		legal := false
		for _, s := range d.p.Blocks[d.curBlock].Succs {
			if s == nb {
				legal = true
				break
			}
		}
		if !legal {
			return true
		}
		d.curBlock = nb
		d.runHash = 2166136261
	} else if bi, ok := d.startOf[pc]; ok && pc == d.p.Blocks[bi].Start && bi != d.curBlock {
		// sequential fall-through into the next block: check the edge
		legal := false
		for _, s := range d.p.Blocks[d.curBlock].Succs {
			if s == bi {
				legal = true
				break
			}
		}
		if !legal {
			return true
		}
		d.curBlock = bi
		d.runHash = 2166136261
	}

	// dataflow signature update and end-of-block check
	d.runHash = sigStep(d.runHash, ev.Word)
	d.blockPos = pc + 1
	if d.blockPos == d.p.Blocks[d.curBlock].End {
		want := d.static[d.curBlock]
		if d.runHash != want {
			return true
		}
	}
	return false
}

// DFC hardware parameters (checker signature registers and comparators),
// from the Argus-style implementation the paper costs out: the checker
// state adds ~20% flip-flops to the small in-order core but is negligible
// next to the out-of-order core.
const (
	dfcFFOverheadInO = 0.20
	dfcFFOverheadOoO = 0.018
	// Embedding static signatures costs fetch bandwidth; the paper
	// measures 6.2% (InO) / 7.1% (OoO) after delay-slot optimization.
	DFCExecImpactInO = 0.062
	DFCExecImpactOoO = 0.071
)

// DFCFFOverhead returns the flip-flop count overhead ratio for γ.
func DFCFFOverhead(core string) float64 {
	if core == "InO" {
		return dfcFFOverheadInO
	}
	return dfcFFOverheadOoO
}

// DFCCost returns DFC checker hardware + execution overheads for a core.
func DFCCost(m power.Model) power.Cost {
	ffs := int(DFCFFOverhead(m.Name) * float64(m.NumFFs))
	// comparator/signature logic roughly half the FF area again
	c := m.ExtraFFCost(ffs, float64(ffs)*0.5, float64(ffs)*0.1)
	if m.Name == "InO" {
		c.ExecTime = DFCExecImpactInO
	} else {
		c.ExecTime = DFCExecImpactOoO
	}
	// Signature fetch consumes energy beyond core power scaling.
	return c
}

// ---- Monitor core (DIVA-style checker core) ----

// monitor re-executes the committed instruction stream on shadow
// architectural state — registers AND memory, like DIVA's checker with its
// own L1 port — and flags divergence.
type monitor struct {
	p        *prog.Program
	regs     [32]uint32
	mem      []uint32
	expectPC int
	haveExp  bool
}

// NewMonitor returns a commit hook implementing a DIVA-style checker core.
func NewMonitor(p *prog.Program) sim.CommitHook {
	m := &monitor{p: p, mem: make([]uint32, p.MemWords)}
	copy(m.mem, p.Data)
	return m.observe
}

// MonitorHookFactory adapts NewMonitor for injection campaigns.
func MonitorHookFactory() func(*prog.Program) sim.CommitHook {
	return func(p *prog.Program) sim.CommitHook { return NewMonitor(p) }
}

func (m *monitor) observe(ev sim.CommitEvent) bool {
	pc := int(ev.PC)
	// control-flow check: the commit stream must follow the monitor's own
	// next-PC computation
	if m.haveExp && pc != m.expectPC {
		return true
	}
	in := isa.Decode(ev.Word)
	if !in.Op.Valid() {
		return true
	}
	// instruction-identity check against program memory
	if pc < 0 || pc >= len(m.p.Code) || isa.Encode(m.p.Code[pc]) != ev.Word {
		return true
	}
	s1 := m.regs[in.Rs1]
	s2 := m.regs[in.Rs2]
	next := pc + 1
	detect := false
	switch {
	case in.Op == isa.LW:
		// re-execute the load against the checker's shadow memory
		addr := int64(int32(s1) + in.Imm)
		if addr >= 0 && addr < int64(len(m.mem)) {
			want := m.mem[addr]
			if want != ev.Result {
				detect = true
			}
			m.regs[in.Rd] = want
		} else {
			// the main core should have trapped; a committed OOB load is
			// itself an error
			detect = true
			m.regs[in.Rd] = ev.Result
		}
	case in.Op == isa.SW:
		addr := int64(int32(s1) + in.Imm)
		if uint32(addr) != ev.Addr || s2 != ev.StoreVal {
			detect = true
		}
		if addr >= 0 && addr < int64(len(m.mem)) {
			m.mem[addr] = s2
		}
	case in.Op == isa.OUT:
		if s1 != ev.Result {
			detect = true
		}
	case in.Op.IsBranch():
		taken := false
		switch in.Op {
		case isa.BEQ:
			taken = s1 == s2
		case isa.BNE:
			taken = s1 != s2
		case isa.BLT:
			taken = int32(s1) < int32(s2)
		case isa.BGE:
			taken = int32(s1) >= int32(s2)
		case isa.BLTU:
			taken = s1 < s2
		case isa.BGEU:
			taken = s1 >= s2
		}
		if taken {
			next = pc + int(in.Imm)
		}
	case in.Op == isa.JAL:
		m.regs[in.Rd] = uint32(pc + 1)
		next = pc + int(in.Imm)
	case in.Op == isa.JALR:
		m.regs[in.Rd] = uint32(pc + 1)
		next = int(int32(s1) + in.Imm)
	case in.Op == isa.HALT || in.Op == isa.TRAPD || in.Op == isa.NOP:
	default:
		// re-execute ALU work and compare with the main core's result
		want, ok := reexec(in, s1, s2)
		if ok && want != ev.Result {
			detect = true
		}
		if in.Op.WritesReg() && in.Rd != 0 {
			m.regs[in.Rd] = want
		}
	}
	m.regs[0] = 0
	m.expectPC = next
	m.haveExp = true
	return detect
}

// reexec recomputes an ALU result; ok is false for ops the monitor defers.
func reexec(in isa.Inst, s1, s2 uint32) (uint32, bool) {
	switch in.Op {
	case isa.ADD:
		return s1 + s2, true
	case isa.SUB:
		return s1 - s2, true
	case isa.AND:
		return s1 & s2, true
	case isa.OR:
		return s1 | s2, true
	case isa.XOR:
		return s1 ^ s2, true
	case isa.SLL:
		return s1 << (s2 & 31), true
	case isa.SRL:
		return s1 >> (s2 & 31), true
	case isa.SRA:
		return uint32(int32(s1) >> (s2 & 31)), true
	case isa.SLT:
		if int32(s1) < int32(s2) {
			return 1, true
		}
		return 0, true
	case isa.SLTU:
		if s1 < s2 {
			return 1, true
		}
		return 0, true
	case isa.MUL:
		return uint32(int64(int32(s1)) * int64(int32(s2))), true
	case isa.MULH:
		return uint32(uint64(int64(int32(s1))*int64(int32(s2))) >> 32), true
	case isa.DIV:
		if s2 == 0 {
			return 0, false
		}
		return uint32(int32(s1) / int32(s2)), true
	case isa.REM:
		if s2 == 0 {
			return 0, false
		}
		return uint32(int32(s1) % int32(s2)), true
	case isa.ADDI:
		return s1 + uint32(in.Imm), true
	case isa.ANDI:
		return s1 & uint32(in.Imm), true
	case isa.ORI:
		return s1 | uint32(in.Imm), true
	case isa.XORI:
		return s1 ^ uint32(in.Imm), true
	case isa.SLLI:
		return s1 << (uint32(in.Imm) & 31), true
	case isa.SRLI:
		return s1 >> (uint32(in.Imm) & 31), true
	case isa.SRAI:
		return uint32(int32(s1) >> (uint32(in.Imm) & 31)), true
	case isa.SLTI:
		if int32(s1) < in.Imm {
			return 1, true
		}
		return 0, true
	case isa.LUI:
		return uint32(in.Imm) << 16, true
	}
	return 0, false
}

// Monitor-core hardware parameters: the checker core plus its lag buffer
// add ~38% flip-flops to the OoO design (the paper's γ = 1.38), and cost
// ~9% area / 16.3% power (Table 3); the buffer depth bounds detection
// latency at 128 cycles.
const (
	MonitorFFOverhead = 0.38
	MonitorLatency    = 128
	MonitorClockMHz   = 2000
	MonitorIPC        = 0.7
)

// MonitorCost returns the monitor core's hardware cost on the main core.
func MonitorCost(m power.Model) power.Cost {
	ffs := int(MonitorFFOverhead * float64(m.NumFFs))
	// The checker is a complete datapath (ALUs, regfile port, cache port)
	// validating every committed instruction: its combinational logic is a
	// multiple of its flip-flop budget and it is never idle.
	return m.ExtraFFCost(ffs, float64(ffs)*2.65, float64(ffs)*2.7)
}

// MonitorStallsMain reports whether the monitor core would stall the main
// core: it must retire at least the main core's commit throughput.
// (Table 9: a 2 GHz, IPC 0.7 checker against a 600 MHz, IPC~1.3 core.)
func MonitorStallsMain(mainClockMHz, mainIPC float64) bool {
	return MonitorClockMHz/mainClockMHz*MonitorIPC < mainIPC
}
