package sweep

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"clear/internal/core"
)

// TestLogObserverGolden pins the exact lines LogObserver renders for every
// event shape: start (with and without restored cells), a retry, a
// permanent failure, a throttled done line with engine counters and a
// quarantine marker, and the final summary.
func TestLogObserverGolden(t *testing.T) {
	var lines []string
	o := LogObserver{
		Printf: func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		},
		Every: 2,
	}

	o.Event(Event{Type: EventStart, Total: 10})
	o.Event(Event{Type: EventStart, Total: 10, Restored: 4})
	o.Event(Event{Type: EventCellRetry, Combo: "parity", Bench: "gzip",
		Attempt: 1, Kind: "timeout", Err: "cell watchdog expired",
		RetryDelay: 1500 * time.Millisecond})
	o.Event(Event{Type: EventCellFailed, Combo: "parity", Bench: "gzip",
		Attempt: 3, Kind: "panic", Err: "boom"})
	// Done=1 is throttled away (Every=2), Done=2 prints.
	o.Event(Event{Type: EventCellDone, Done: 1, Total: 10, Elapsed: time.Second})
	o.Event(Event{Type: EventCellDone, Done: 2, Total: 10, Restored: 4,
		Elapsed: 10 * time.Second, ETA: 20 * time.Second,
		Engine:           &core.EngineStats{CampaignsRun: 7, CampaignsCached: 5, CampaignsJoined: 1},
		PrunedInjections: 25, TotalInjections: 100, Quarantined: 2})
	o.Event(Event{Type: EventDone, Done: 6, Failed: 1, Elapsed: 65 * time.Second})

	want := []string{
		"sweep: 10 cells to run",
		"sweep: 10 cells (4 restored from state, 6 to run)",
		"sweep: cell parity/gzip attempt 1 failed [timeout]: cell watchdog expired — retrying in 1.5s",
		"sweep: cell parity/gzip failed [panic, 3 attempt(s)]: boom",
		"sweep: 6/10 cells (10s elapsed, ETA 20s) [campaigns: 7 run, 5 cached, 1 joined; prune 25%] [2 cache entries quarantined]",
		"sweep: finished 6 cells in 1m5s (1 failed)",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("LogObserver output diverged.\n got: %#v\nwant: %#v", lines, want)
	}
}

// TestLogObserverNilPrintf checks the zero-value observer is inert.
func TestLogObserverNilPrintf(t *testing.T) {
	LogObserver{}.Event(Event{Type: EventDone, Done: 1})
}

// TestETASanity runs a real (fake-eval) sweep and checks every reported
// ETA is finite and non-negative, and that the estimate trends to zero:
// by the final cell the remaining work is zero, so the last ETA must be 0.
func TestETASanity(t *testing.T) {
	sw := fakeSweep(10, 4, arithEval(200*time.Microsecond))
	var mu sync.Mutex
	var etas []time.Duration
	obsv := observerFunc(func(ev Event) {
		if ev.Type != EventCellDone && ev.Type != EventCellFailed {
			return
		}
		mu.Lock()
		etas = append(etas, ev.ETA)
		mu.Unlock()
	})
	if _, err := Run(context.Background(), sw, Options{Workers: 4, Observer: obsv}); err != nil {
		t.Fatal(err)
	}
	if len(etas) != 40 {
		t.Fatalf("saw %d ETAs, want 40", len(etas))
	}
	for i, eta := range etas {
		if eta < 0 {
			t.Fatalf("ETA %d is negative: %v", i, eta)
		}
		if eta > time.Hour {
			t.Fatalf("ETA %d is absurd for a sub-second sweep: %v", i, eta)
		}
	}
	if last := etas[len(etas)-1]; last != 0 {
		t.Fatalf("final cell reports ETA %v, want 0", last)
	}
	// The estimate must shrink overall: the tail of the run should predict
	// less remaining time than the head.
	if etas[len(etas)-2] >= etas[0] && etas[0] > 0 {
		t.Fatalf("ETA did not shrink: first %v, second-to-last %v", etas[0], etas[len(etas)-2])
	}
}
