package sweep

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/technique"
)

// TestF64RoundTrip checks lossless JSON round-trips for the values sweep
// outcomes actually contain: ordinary doubles bit-for-bit, plus the
// ±Inf/NaN encodings encoding/json rejects natively.
func TestF64RoundTrip(t *testing.T) {
	vals := []float64{
		0, 1, -1, 2, 0.1, 1.0 / 3.0, 1e-9, 1e300, math.Pi,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		math.Inf(1), math.Inf(-1),
	}
	for _, v := range vals {
		b, err := json.Marshal(F64(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var got F64
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.Float64bits(float64(got)) != math.Float64bits(v) {
			t.Fatalf("round-trip %g -> %s -> %g: bits differ", v, b, float64(got))
		}
	}
	// NaN round-trips as NaN (bits need not match).
	b, err := json.Marshal(F64(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	var got F64
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got)) {
		t.Fatalf("NaN round-tripped to %g", float64(got))
	}
	// Unknown string literals are rejected.
	if err := json.Unmarshal([]byte(`"huge"`), &got); err == nil {
		t.Fatal("bad literal accepted")
	}
}

func TestCellKeyParse(t *testing.T) {
	for _, tc := range []struct {
		ci, bi int
	}{{0, 0}, {416, 17}, {3, 9}} {
		ci, bi, ok := parseCellKey(cellKey(tc.ci, tc.bi))
		if !ok || ci != tc.ci || bi != tc.bi {
			t.Fatalf("round-trip (%d,%d) -> (%d,%d,%v)", tc.ci, tc.bi, ci, bi, ok)
		}
	}
	for _, bad := range []string{"", "3", "a:b", "3:", ":4"} {
		if _, _, ok := parseCellKey(bad); ok {
			t.Fatalf("parseCellKey(%q) accepted", bad)
		}
	}
}

// TestStateRejectsDifferentTechniqueFilter: sweep state persisted under one
// -techniques selection must not be restored into a sweep with another —
// the combination grids differ, so mixing would mis-index every cell.
func TestStateRejectsDifferentTechniqueFilter(t *testing.T) {
	e := core.NewEngine(inject.InO)
	e.SamplesBase, e.SamplesTech = 1, 1
	reg := technique.Default()
	fA, err := technique.ParseFilter("LEAP-DICE,Parity", reg)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := technique.ParseFilter("LEAP-DICE,Parity,EDS", reg)
	if err != nil {
		t.Fatal(err)
	}

	swA := New(e, bench.All()[:2], core.SDC, 5)
	swA.ApplyFilter(e, fA)
	if swA.Key.Techniques != "LEAP-DICE,Parity" {
		t.Fatalf("Key.Techniques = %q", swA.Key.Techniques)
	}
	cells := make([]*CellOutcome, len(swA.Combos)*len(swA.Benches))
	cells[0] = &CellOutcome{SDCImp: 5, TargetMet: true}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := saveState(path, swA, cells); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// same filter: restored
	swSame := New(e, bench.All()[:2], core.SDC, 5)
	swSame.ApplyFilter(e, fA)
	if got, ok := decodeState(data, swSame); !ok || len(got) != 1 {
		t.Fatalf("same-filter state not restored (ok=%v, cells=%d)", ok, len(got))
	}
	// different filter: rejected outright
	swB := New(e, bench.All()[:2], core.SDC, 5)
	swB.ApplyFilter(e, fB)
	if _, ok := decodeState(data, swB); ok {
		t.Fatal("state saved under a different technique filter was accepted")
	}
	// unfiltered sweep: rejected too
	swFull := New(e, bench.All()[:2], core.SDC, 5)
	if _, ok := decodeState(data, swFull); ok {
		t.Fatal("filtered state accepted by an unfiltered sweep")
	}
}

// TestStateRejectsDifferentFaultModel: sweep state persisted under one
// -fault-model must not be restored into a sweep running another — every
// campaign in the grid measures a different physical event, so mixing
// cells would silently blend the models' numbers.
func TestStateRejectsDifferentFaultModel(t *testing.T) {
	mk := func(model string) (*core.Engine, Sweep) {
		e := core.NewEngine(inject.InO)
		e.SamplesBase, e.SamplesTech = 1, 1
		e.FaultModel = model
		return e, New(e, bench.All()[:2], core.SDC, 5)
	}

	_, swMBU := mk("mbu")
	if swMBU.Key.FaultModel != "mbu" {
		t.Fatalf("Key.FaultModel = %q, want mbu", swMBU.Key.FaultModel)
	}
	cells := make([]*CellOutcome, len(swMBU.Combos)*len(swMBU.Benches))
	cells[0] = &CellOutcome{SDCImp: 5, TargetMet: true}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := saveState(path, swMBU, cells); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// same model: restored
	if _, swSame := mk("mbu"); true {
		if got, ok := decodeState(data, swSame); !ok || len(got) != 1 {
			t.Fatalf("same-model state not restored (ok=%v, cells=%d)", ok, len(got))
		}
	}
	// different model / the ssb default: rejected outright
	for _, model := range []string{"uncore", "ssb", ""} {
		_, sw := mk(model)
		if _, ok := decodeState(data, sw); ok {
			t.Fatalf("mbu state accepted by a %q sweep", model)
		}
	}

	// The ssb default and "" are one identity: state saved by an engine
	// with the explicit default must restore into one with the empty field
	// (and therefore into legacy state files, which predate the key).
	_, swSSB := mk("ssb")
	if swSSB.Key.FaultModel != "" {
		t.Fatalf(`explicit ssb normalized to %q, want ""`, swSSB.Key.FaultModel)
	}
	cellsB := make([]*CellOutcome, len(swSSB.Combos)*len(swSSB.Benches))
	cellsB[0] = &CellOutcome{SDCImp: 2}
	pathB := filepath.Join(t.TempDir(), "ssb.json")
	if err := saveState(pathB, swSSB, cellsB); err != nil {
		t.Fatal(err)
	}
	dataB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	_, swEmpty := mk("")
	if got, ok := decodeState(dataB, swEmpty); !ok || len(got) != 1 {
		t.Fatalf("ssb state not restored by the default engine (ok=%v, cells=%d)", ok, len(got))
	}
}
