package sweep

import (
	"encoding/json"
	"math"
	"testing"
)

// TestF64RoundTrip checks lossless JSON round-trips for the values sweep
// outcomes actually contain: ordinary doubles bit-for-bit, plus the
// ±Inf/NaN encodings encoding/json rejects natively.
func TestF64RoundTrip(t *testing.T) {
	vals := []float64{
		0, 1, -1, 2, 0.1, 1.0 / 3.0, 1e-9, 1e300, math.Pi,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		math.Inf(1), math.Inf(-1),
	}
	for _, v := range vals {
		b, err := json.Marshal(F64(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var got F64
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.Float64bits(float64(got)) != math.Float64bits(v) {
			t.Fatalf("round-trip %g -> %s -> %g: bits differ", v, b, float64(got))
		}
	}
	// NaN round-trips as NaN (bits need not match).
	b, err := json.Marshal(F64(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	var got F64
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got)) {
		t.Fatalf("NaN round-tripped to %g", float64(got))
	}
	// Unknown string literals are rejected.
	if err := json.Unmarshal([]byte(`"huge"`), &got); err == nil {
		t.Fatal("bad literal accepted")
	}
}

func TestCellKeyParse(t *testing.T) {
	for _, tc := range []struct {
		ci, bi int
	}{{0, 0}, {416, 17}, {3, 9}} {
		ci, bi, ok := parseCellKey(cellKey(tc.ci, tc.bi))
		if !ok || ci != tc.ci || bi != tc.bi {
			t.Fatalf("round-trip (%d,%d) -> (%d,%d,%v)", tc.ci, tc.bi, ci, bi, ok)
		}
	}
	for _, bad := range []string{"", "3", "a:b", "3:", ":4"} {
		if _, _, ok := parseCellKey(bad); ok {
			t.Fatalf("parseCellKey(%q) accepted", bad)
		}
	}
}
