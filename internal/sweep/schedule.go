package sweep

import (
	"context"
	"runtime"
	"sync"
)

// The sweep's cell grid is embarrassingly parallel but wildly uneven: a
// cell whose campaigns are memoized finishes in microseconds while a cold
// (benchmark, variant) cell runs a multi-second injection campaign. A
// static partition would leave workers idle behind one unlucky shard, so
// cells are scheduled with per-worker deques plus work stealing: each
// worker drains its own contiguous shard from the front and, when empty,
// steals the back half of the fullest victim's deque.

// deque is a mutex-guarded index queue owned by one worker.
type deque struct {
	mu    sync.Mutex
	items []int
}

// popFront removes and returns the first item.
func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	v := d.items[0]
	d.items = d.items[1:]
	return v, true
}

// stealHalf removes and returns the back half (at least one item) of the
// deque, leaving the front for the owner to keep draining in order.
func (d *deque) stealHalf() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	keep := n / 2
	stolen := append([]int(nil), d.items[keep:]...)
	d.items = d.items[:keep]
	return stolen
}

// push appends items to the back.
func (d *deque) push(items []int) {
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.mu.Unlock()
}

// size reports the current queue length.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// runWorkStealing executes fn(worker, task[i]) for every i in [0,n) across
// `workers` goroutines and blocks until all tasks ran or ctx was canceled.
// Tasks never spawn tasks, so a worker may retire once every deque is
// empty; a task "in flight" during the scan is already claimed and will
// complete. (A scan can race with an in-progress steal and see both deques
// momentarily empty — the stolen items still run on the thief, so no task
// is lost, only a little parallelism at the very tail.)
func runWorkStealing(ctx context.Context, n, workers int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Seed each deque with a contiguous shard of the index space.
	deques := make([]*deque, workers)
	per := n / workers
	rem := n % workers
	next := 0
	for w := 0; w < workers; w++ {
		count := per
		if w < rem {
			count++
		}
		items := make([]int, count)
		for i := range items {
			items[i] = next
			next++
		}
		deques[w] = &deque{items: items}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := deques[w]
			for {
				if ctx.Err() != nil {
					return
				}
				if idx, ok := own.popFront(); ok {
					fn(w, idx)
					continue
				}
				// Own deque empty: steal from the fullest victim.
				victim := -1
				best := 0
				for off := 1; off < workers; off++ {
					v := (w + off) % workers
					if s := deques[v].size(); s > best {
						best, victim = s, v
					}
				}
				if victim < 0 {
					return // nothing left anywhere
				}
				if stolen := deques[victim].stealHalf(); len(stolen) > 0 {
					own.push(stolen)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0,n) on the work-stealing pool and
// blocks until done. workers <= 0 uses one worker per available CPU. A
// canceled ctx stops scheduling further cells; cells already started still
// finish. fn must be safe for concurrent invocation; determinism is the
// caller's job (store results by index, aggregate in index order).
func ForEach(ctx context.Context, n, workers int, fn func(i int)) {
	runWorkStealing(ctx, n, workers, func(_, i int) { fn(i) })
}
