package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Sweep state persists to a versioned JSON file so an interrupted or
// re-invoked sweep resumes from its completed cells instead of recomputing
// them. The file is self-describing: it records the identity key (core,
// metric, target, seed, sampling) plus the exact combination and benchmark
// lists, and a loaded file is only trusted when all of them match the
// running sweep — a state file from a different configuration is discarded,
// never silently mixed in.

// StateVersion is the schema version written to (and required from) sweep
// state files.
const StateVersion = 1

// F64 is a float64 that survives JSON round-trips losslessly: regular
// values marshal as shortest-round-trip numbers (bit-identical after
// decode), and ±Inf/NaN — which encoding/json rejects — marshal as the
// strings "+inf", "-inf", "nan". Improvements are +Inf for a fully
// protected design ("max"), so sweep outcomes need this.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+inf":
			*f = F64(math.Inf(1))
		case "-inf":
			*f = F64(math.Inf(-1))
		case "nan":
			*f = F64(math.NaN())
		default:
			return fmt.Errorf("sweep: bad float literal %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = F64(v)
	return nil
}

// Key identifies a sweep for persistence: two runs share saved cells only
// when every field matches.
type Key struct {
	Core        string `json:"core"`
	Metric      string `json:"metric"`
	Target      F64    `json:"target"` // "+inf" for the max design point
	Seed        uint64 `json:"seed"`
	SamplesBase int    `json:"samples_base"`
	SamplesTech int    `json:"samples_tech"`
	// Techniques is the canonical technique-filter spec the sweep's
	// enumeration was built under ("" = full enumeration). A resumed sweep
	// with a different filter has a different combination grid, so its state
	// must be rejected, not silently mixed. omitempty keeps pre-filter state
	// files decoding (and matching) as the empty spec.
	Techniques string `json:"techniques,omitempty"`
	// FaultModel is the fault model the sweep's campaigns run under
	// (inject.ModelNames). The ssb default is normalized to "" so legacy
	// state files — written before fault models existed, all implicitly
	// single-bit — keep decoding and matching; any other model changes
	// every campaign in the grid, so resuming under a different model is
	// rejected like a technique-filter mismatch.
	FaultModel string `json:"fault_model,omitempty"`
}

// CellOutcome is the persisted result of one (combination, benchmark) cell.
// A non-empty Err marks a failed evaluation; failed cells are re-run on
// resume. Kind and Attempts record the failure classification and the
// attempt budget spent (panic stacks are kept in memory only — they are
// worthless to a resume and would bloat the state file).
type CellOutcome struct {
	SDCImp    F64    `json:"sdc_imp"`
	DUEImp    F64    `json:"due_imp"`
	Energy    F64    `json:"energy"`
	Area      F64    `json:"area"`
	TargetMet bool   `json:"target_met"`
	Err       string `json:"err,omitempty"`
	Kind      string `json:"kind,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
}

// stateFile is the on-disk schema (see DESIGN.md §7).
type stateFile struct {
	Version int                    `json:"version"`
	Key     Key                    `json:"key"`
	Combos  []string               `json:"combos"`
	Benches []string               `json:"benches"`
	Cells   map[string]CellOutcome `json:"cells"` // "comboIdx:benchIdx"
}

func cellKey(ci, bi int) string {
	return strconv.Itoa(ci) + ":" + strconv.Itoa(bi)
}

func parseCellKey(s string) (ci, bi int, ok bool) {
	a, b, found := strings.Cut(s, ":")
	if !found {
		return 0, 0, false
	}
	ci, err1 := strconv.Atoi(a)
	bi, err2 := strconv.Atoi(b)
	return ci, bi, err1 == nil && err2 == nil
}

// loadState reads a state file and returns the completed cells indexed as
// combo*len(benches)+bench. A missing, unreadable, mismatched-version, or
// mismatched-identity file yields (nil, false): the sweep starts fresh and
// overwrites it.
func loadState(path string, sw Sweep) (map[int]CellOutcome, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return decodeState(data, sw)
}

// decodeState parses and validates a state file body against the running
// sweep's identity. It is the trust boundary for resumable state — fuzzed
// directly (FuzzStateDecode), it must never panic on arbitrary bytes.
func decodeState(data []byte, sw Sweep) (map[int]CellOutcome, bool) {
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, false
	}
	if st.Version != StateVersion || st.Key != sw.Key {
		return nil, false
	}
	if len(st.Combos) != len(sw.Combos) || len(st.Benches) != len(sw.Benches) {
		return nil, false
	}
	for i, c := range sw.Combos {
		if st.Combos[i] != c.Name() {
			return nil, false
		}
	}
	for i, b := range sw.Benches {
		if st.Benches[i] != b.Name {
			return nil, false
		}
	}
	nB := len(sw.Benches)
	cells := make(map[int]CellOutcome, len(st.Cells))
	for k, v := range st.Cells {
		ci, bi, ok := parseCellKey(k)
		if !ok || ci < 0 || ci >= len(sw.Combos) || bi < 0 || bi >= nB {
			continue
		}
		if v.Err != "" {
			continue // failed cells are retried on resume
		}
		cells[ci*nB+bi] = v
	}
	return cells, true
}

// saveState writes the sweep state atomically (temp file + rename in the
// destination directory), so a crash mid-write never corrupts a resumable
// file.
func saveState(path string, sw Sweep, cells []*CellOutcome) error {
	st := stateFile{
		Version: StateVersion,
		Key:     sw.Key,
		Combos:  make([]string, len(sw.Combos)),
		Benches: make([]string, len(sw.Benches)),
		Cells:   make(map[string]CellOutcome),
	}
	for i, c := range sw.Combos {
		st.Combos[i] = c.Name()
	}
	for i, b := range sw.Benches {
		st.Benches[i] = b.Name
	}
	nB := len(sw.Benches)
	for idx, co := range cells {
		if co == nil {
			continue
		}
		st.Cells[cellKey(idx/nB, idx%nB)] = *co
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".sweep-state-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
