package sweep

import (
	"fmt"
	"time"

	"clear/internal/core"
)

// EventType classifies a sweep progress event.
type EventType int

// Event kinds emitted during a sweep run.
const (
	// EventStart fires once before any cell runs; Total and Restored
	// describe the cell grid and how many cells were resumed from disk.
	EventStart EventType = iota
	// EventCellDone fires after each successfully evaluated cell.
	EventCellDone
	// EventCellFailed fires after a cell whose evaluation failed for good
	// (attempt budget exhausted or permanent failure); the sweep records
	// the classified failure and keeps going.
	EventCellFailed
	// EventCellRetry fires when a transiently failed cell (watchdog
	// timeout, cache IO) is about to be retried after a backoff.
	EventCellRetry
	// EventDone fires once after the last cell (or after cancellation).
	EventDone
)

func (t EventType) String() string {
	switch t {
	case EventStart:
		return "start"
	case EventCellDone:
		return "cell-done"
	case EventCellFailed:
		return "cell-failed"
	case EventCellRetry:
		return "cell-retry"
	case EventDone:
		return "done"
	}
	return "?"
}

// Event is one structured progress report. Cell events carry the cell's
// coordinates plus cumulative progress, timing, and engine counters, so an
// observer can render throughput, cache effectiveness, prune rate, and ETA
// without polling anything itself.
type Event struct {
	Type  EventType
	Combo string // cell events: combination name
	Bench string // cell events: benchmark name
	Err   string // EventCellFailed/EventCellRetry: the evaluation error
	Kind  string // failure classification ("panic", "timeout", "io", "error")

	Done     int // cells evaluated so far this run
	Failed   int // cells failed so far this run
	Total    int // cells in the grid
	Restored int // cells resumed from the state file (not re-run)

	// Attempt counts evaluations of the event's cell (EventCellRetry: the
	// attempt that just failed; EventCellDone/Failed: total attempts).
	Attempt int
	// RetryDelay is the backoff before the next attempt (EventCellRetry).
	RetryDelay time.Duration
	// Quarantined counts corrupt campaign cache entries renamed aside and
	// recomputed (monotonic), scoped to the sweep's engine when the sweep
	// knows one (Sweep.Inject), else process-wide — degradation made
	// visible as it happens.
	Quarantined int64

	Elapsed time.Duration
	ETA     time.Duration // estimated time to finish remaining cells (0 if unknown)

	// Engine holds the evaluation engine's memoization counters (campaigns
	// run vs. memo-cached vs. singleflight-joined) when the sweep knows its
	// engine; nil otherwise.
	Engine *core.EngineStats

	// Injection-level prune counters (monotonic; engine-scoped when the
	// sweep knows its engine, process-wide otherwise).
	PrunedInjections, TotalInjections int64
}

// Observer consumes sweep progress events. Events are delivered serially,
// under the sweep's progress lock, in strict Done order: a cell event's
// Done/Failed counts, engine counters, and injection counters are all
// sampled in the same critical section that advanced Done, so successive
// events never run backwards and their counters never mix progress points.
// The flip side: a slow Event implementation backpressures the worker
// pool, so observers should hand expensive work off rather than doing it
// inline.
type Observer interface {
	Event(Event)
}

// NopObserver discards all events.
type NopObserver struct{}

// Event implements Observer.
func (NopObserver) Event(Event) {}

// LogObserver renders events through a printf-style function (log.Printf
// fits), throttling cell events to one line every Every cells. It replaces
// the ad-hoc progress printing the sweep command used to do inline.
type LogObserver struct {
	Printf func(format string, args ...any)
	Every  int // cells between progress lines (default 50)
}

// Event implements Observer.
func (o LogObserver) Event(ev Event) {
	if o.Printf == nil {
		return
	}
	every := o.Every
	if every <= 0 {
		every = 50
	}
	switch ev.Type {
	case EventStart:
		if ev.Restored > 0 {
			o.Printf("sweep: %d cells (%d restored from state, %d to run)",
				ev.Total, ev.Restored, ev.Total-ev.Restored)
		} else {
			o.Printf("sweep: %d cells to run", ev.Total)
		}
	case EventCellFailed:
		o.Printf("sweep: cell %s/%s failed [%s, %d attempt(s)]: %s",
			ev.Combo, ev.Bench, ev.Kind, ev.Attempt, ev.Err)
	case EventCellRetry:
		o.Printf("sweep: cell %s/%s attempt %d failed [%s]: %s — retrying in %s",
			ev.Combo, ev.Bench, ev.Attempt, ev.Kind, ev.Err, ev.RetryDelay.Round(time.Millisecond))
	case EventCellDone:
		if ev.Done%every != 0 {
			return
		}
		line := ""
		if ev.Engine != nil {
			pruneRate := 0.0
			if ev.TotalInjections > 0 {
				pruneRate = float64(ev.PrunedInjections) / float64(ev.TotalInjections)
			}
			line = renderStats(ev.Engine, pruneRate)
		}
		if ev.Quarantined > 0 {
			line += fmt.Sprintf(" [%d cache entries quarantined]", ev.Quarantined)
		}
		o.Printf("sweep: %d/%d cells (%s elapsed, ETA %s)%s",
			ev.Done+ev.Restored, ev.Total, ev.Elapsed.Round(time.Second),
			ev.ETA.Round(time.Second), line)
	case EventDone:
		o.Printf("sweep: finished %d cells in %s (%d failed)",
			ev.Done, ev.Elapsed.Round(time.Second), ev.Failed)
	}
}

func renderStats(s *core.EngineStats, pruneRate float64) string {
	return fmt.Sprintf(" [campaigns: %d run, %d cached, %d joined; prune %.0f%%]",
		s.CampaignsRun, s.CampaignsCached, s.CampaignsJoined, 100*pruneRate)
}
