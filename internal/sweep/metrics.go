package sweep

import (
	"clear/internal/core"
	"clear/internal/obs"
)

// runInstruments holds one Run's registered instruments. Built from
// Options.Metrics; a nil registry yields nil instruments whose updates
// no-op (see internal/obs), so the uninstrumented path pays one nil check
// per update and allocates nothing.
//
// Instrument names (the observability contract, DESIGN.md §10):
//
//	sweep.cells.total      gauge     cells in the grid
//	sweep.cells.restored   gauge     cells resumed from the state file
//	sweep.cells.done       counter   cells evaluated successfully this run
//	sweep.cells.failed     counter   cells failed for good this run
//	sweep.cells.retried    counter   transient-failure retries
//	sweep.cell.latency_ns  histogram per-cell wall time (ns, log-scale)
//	sweep.workers.active   gauge     workers currently evaluating a cell
//	sweep.failures.<kind>  counter   failures by classification
type runInstruments struct {
	reg           *obs.Registry
	cellsTotal    *obs.Gauge
	cellsRestored *obs.Gauge
	cellsDone     *obs.Counter
	cellsFailed   *obs.Counter
	retries       *obs.Counter
	cellLatency   *obs.Histogram
	workersActive *obs.Gauge
}

func newRunInstruments(reg *obs.Registry) runInstruments {
	return runInstruments{
		reg:           reg,
		cellsTotal:    reg.Gauge("sweep.cells.total"),
		cellsRestored: reg.Gauge("sweep.cells.restored"),
		cellsDone:     reg.Counter("sweep.cells.done"),
		cellsFailed:   reg.Counter("sweep.cells.failed"),
		retries:       reg.Counter("sweep.cells.retried"),
		cellLatency:   reg.Histogram("sweep.cell.latency_ns"),
		workersActive: reg.Gauge("sweep.workers.active"),
	}
}

// failureKind returns the per-classification failure counter
// ("sweep.failures.panic", ".timeout", ".io", ".error"). Kinds are a
// small closed set, so get-or-create per failure is cheap — and failures
// are never the hot path.
func (ins *runInstruments) failureKind(kind string) *obs.Counter {
	return ins.reg.Counter("sweep.failures." + kind)
}

// eventRecord is the JSONL trace schema of one sweep event, emitted by
// TraceObserver with type "sweep.<event>" ("sweep.start",
// "sweep.cell-done", "sweep.cell-failed", "sweep.cell-retry",
// "sweep.done"). Counters mirror the Event; the *_ms fields are the only
// ones expected to differ between two otherwise identical runs.
type eventRecord struct {
	Type     string `json:"type"`
	Combo    string `json:"combo,omitempty"`
	Bench    string `json:"bench,omitempty"`
	Err      string `json:"err,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Total    int    `json:"total"`
	Restored int    `json:"restored"`
	Attempt  int    `json:"attempt,omitempty"`

	Quarantined      int64 `json:"quarantined,omitempty"`
	PrunedInjections int64 `json:"pruned_injections"`
	TotalInjections  int64 `json:"total_injections"`

	Engine *core.EngineStats `json:"engine,omitempty"`

	ElapsedMS    int64 `json:"elapsed_ms"`
	ETAMS        int64 `json:"eta_ms,omitempty"`
	RetryDelayMS int64 `json:"retry_delay_ms,omitempty"`
}

// TraceObserver writes every sweep event as one JSONL record to a tracer —
// the sweep half of the -trace-out file (campaign records are emitted by
// the engine's injector into the same tracer). Events arrive serialized in
// Done order, so the trace is an ordered replay of the run's progress.
type TraceObserver struct {
	T *obs.Tracer
}

// Event implements Observer.
func (o TraceObserver) Event(ev Event) {
	if o.T == nil {
		return
	}
	o.T.Emit(eventRecord{
		Type:             "sweep." + ev.Type.String(),
		Combo:            ev.Combo,
		Bench:            ev.Bench,
		Err:              ev.Err,
		Kind:             ev.Kind,
		Done:             ev.Done,
		Failed:           ev.Failed,
		Total:            ev.Total,
		Restored:         ev.Restored,
		Attempt:          ev.Attempt,
		Quarantined:      ev.Quarantined,
		PrunedInjections: ev.PrunedInjections,
		TotalInjections:  ev.TotalInjections,
		Engine:           ev.Engine,
		ElapsedMS:        ev.Elapsed.Milliseconds(),
		ETAMS:            ev.ETA.Milliseconds(),
		RetryDelayMS:     ev.RetryDelay.Milliseconds(),
	})
}

// MultiObserver fans each event out to every non-nil observer in order —
// the way a command combines progress logging with event tracing.
type MultiObserver []Observer

// Event implements Observer.
func (m MultiObserver) Event(ev Event) {
	for _, o := range m {
		if o != nil {
			o.Event(ev)
		}
	}
}
