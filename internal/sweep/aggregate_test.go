package sweep

import (
	"context"
	"math"
	"testing"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
)

// oldInv is the historical cmd/clearsweep aggregation helper, reproduced
// verbatim: it mapped a worse-than-baseline improvement (v <= 0) to the
// same near-zero reciprocal as near-perfect protection, reporting the
// combination as a near-infinite improvement.
func oldInv(v float64) float64 {
	if math.IsInf(v, 1) || v <= 0 {
		return 1e-9
	}
	return 1 / v
}

// TestInvRegression pins the fix: a non-positive improvement must dominate
// the harmonic mean (huge reciprocal), not vanish from it.
func TestInvRegression(t *testing.T) {
	// The old helper made the zero-improvement mean astronomically large —
	// the bug this PR removes.
	if old := 1 / oldInv(0); old < 1e8 {
		t.Fatalf("test premise wrong: old helper maps 0 to %.3g, expected ~1e9", old)
	}
	if Inv(0) < 1e6 {
		t.Fatalf("Inv(0) = %g, want a dominating (huge) reciprocal", Inv(0))
	}
	if Inv(-3) < 1e6 {
		t.Fatalf("Inv(-3) = %g, want a dominating reciprocal", Inv(-3))
	}
	if got := Inv(2); got != 0.5 {
		t.Fatalf("Inv(2) = %g, want 0.5", got)
	}
	if got := Inv(math.Inf(1)); got != 0 {
		t.Fatalf("Inv(+Inf) = %g, want 0 (zero residual)", got)
	}
	if Inv(math.NaN()) < 1e6 {
		t.Fatalf("Inv(NaN) = %g, want a dominating reciprocal", Inv(math.NaN()))
	}

	// Aggregated: one zero-improvement benchmark among good ones drags the
	// mean to ~0 instead of being ignored.
	sum := Inv(0) + Inv(50) + Inv(50)
	if m := HarmonicImp(sum, 3); m > 0.001 {
		t.Fatalf("mean with a worse-than-baseline cell = %g, want ~0", m)
	}
	// All-protected benchmarks aggregate to +Inf ("max").
	if m := HarmonicImp(Inv(math.Inf(1))+Inv(math.Inf(1)), 2); !math.IsInf(m, 1) {
		t.Fatalf("all-Inf mean = %g, want +Inf", m)
	}
}

// TestZeroImpRanksBelowTwoX runs the acceptance scenario end-to-end: a
// combination with zero SDC improvement must rank below (worse than) a
// combination with a 2x improvement — under the old helper it ranked as
// near-infinite.
func TestZeroImpRanksBelowTwoX(t *testing.T) {
	combos := core.Enumerate(inject.InO)[:2]
	zeroName, twoName := combos[0].Name(), combos[1].Name()
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		imp := 2.0
		if c.Name() == zeroName {
			imp = 0 // no better than baseline
		}
		return core.Outcome{SDCImp: imp, DUEImp: 1, Cost: power.Cost{}, TargetMet: true}, nil
	}
	sw := Sweep{
		Key:     Key{Core: "InO", Metric: "SDC", Target: 2, Seed: 1, SamplesBase: 1, SamplesTech: 1},
		Combos:  combos,
		Benches: bench.All()[:4],
		Eval:    eval,
	}
	res, err := Run(context.Background(), sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var zero, two Row
	for _, r := range res.Rows {
		switch r.Name {
		case zeroName:
			zero = r
		case twoName:
			two = r
		}
	}
	if !(zero.SDCImp < two.SDCImp) {
		t.Fatalf("zero-improvement combo (%.3g) must rank below the 2x combo (%.3g)",
			zero.SDCImp, two.SDCImp)
	}
	if zero.SDCImp > 0.001 {
		t.Fatalf("zero-improvement combo reports %.3g, want ~0 (old bug reported ~1e9)", zero.SDCImp)
	}
	if math.Abs(two.SDCImp-2) > 1e-12 {
		t.Fatalf("2x combo aggregates to %.3g, want 2", two.SDCImp)
	}
}
