package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/resilient"
)

// retryFast is a retry policy with sub-millisecond backoff for tests.
func retryFast(attempts int) resilient.Policy {
	return resilient.Policy{MaxAttempts: attempts, BaseDelay: time.Millisecond, Seed: 1}
}

// stripPanicked removes the named combination's row so surviving rows can
// be compared bit-for-bit across runs that disagree only on that combo.
func stripRow(rows []Row, name string) []Row {
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

// TestPanicIsolation injects panics into specific cells: the sweep must
// complete, record those cells in Failures with kind "panic" and the stack
// captured, keep the surviving cells' rows bit-identical to a clean run,
// and a resume must retry only the panicked cells.
func TestPanicIsolation(t *testing.T) {
	state := filepath.Join(t.TempDir(), "sweep.json")
	panicCombo := core.Enumerate(inject.InO)[2].Name()
	clean := arithEval(0)
	evil := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if c.Name() == panicCombo {
			panic(fmt.Sprintf("injected worker panic on %s/%s", c.Name(), b.Name))
		}
		return clean(c, b)
	}

	sw := fakeSweep(10, 3, evil)
	res, err := Run(context.Background(), sw, Options{Workers: 4, StatePath: state, FlushEvery: 1})
	if err != nil {
		t.Fatalf("panicking cells aborted the sweep: %v", err)
	}
	if len(res.Failures) != 3 {
		t.Fatalf("failures = %d, want 3 (one per benchmark of the panicking combo)", len(res.Failures))
	}
	for _, f := range res.Failures {
		if f.Combo != panicCombo {
			t.Fatalf("unexpected failed combo %s", f.Combo)
		}
		if f.Kind != "panic" {
			t.Fatalf("failure kind = %q, want panic", f.Kind)
		}
		if f.Attempts != 1 {
			t.Fatalf("panic retried in-run: attempts = %d, want 1 (permanent failure)", f.Attempts)
		}
		if !strings.Contains(f.Stack, "resilience_test.go") {
			t.Fatalf("stack not captured or does not reach the panic site:\n%s", f.Stack)
		}
		if !strings.Contains(f.Err, "injected worker panic") {
			t.Fatalf("failure err = %q", f.Err)
		}
	}

	// Surviving rows are bit-identical to an undisturbed run.
	ref, err := Run(context.Background(), fakeSweep(10, 3, clean), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripRow(res.Rows, panicCombo), stripRow(ref.Rows, panicCombo)) {
		t.Fatal("surviving rows differ from the undisturbed reference")
	}

	// Resume retries exactly the panicked cells and heals the sweep.
	var evals atomic.Int64
	sw.Eval = func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		evals.Add(1)
		return clean(c, b)
	}
	res2, err := Run(context.Background(), sw, Options{Workers: 4, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != 3 {
		t.Fatalf("resume evaluated %d cells, want only the 3 panicked ones", got)
	}
	if len(res2.Failures) != 0 {
		t.Fatalf("resume failures = %v, want none", res2.Failures)
	}
	if !reflect.DeepEqual(res2.Rows, ref.Rows) {
		t.Fatal("healed rows differ from the undisturbed reference")
	}
}

// TestWatchdogTimeoutRetries checks the deadline + retry pillar: a cell
// that hangs on its first attempt is abandoned by the watchdog, classified
// transient, retried, and succeeds — no failure recorded, retry observed.
func TestWatchdogTimeoutRetries(t *testing.T) {
	hangRelease := make(chan struct{})
	defer close(hangRelease)
	hangCombo := core.Enumerate(inject.InO)[1].Name()
	var hung atomic.Bool
	clean := arithEval(0)
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if c.Name() == hangCombo && b.Name == bench.All()[0].Name && hung.CompareAndSwap(false, true) {
			<-hangRelease // hung variant program
		}
		return clean(c, b)
	}

	var retries atomic.Int64
	obs := observerFunc(func(ev Event) {
		if ev.Type == EventCellRetry {
			retries.Add(1)
			if ev.Kind != "timeout" {
				t.Errorf("retry kind = %q, want timeout", ev.Kind)
			}
		}
	})
	res, err := Run(context.Background(), fakeSweep(6, 2, eval), Options{
		Workers:     2,
		Observer:    obs,
		CellTimeout: 50 * time.Millisecond,
		Retry:       retryFast(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures = %v, want none (timeout is transient, retry must heal it)", res.Failures)
	}
	if retries.Load() == 0 {
		t.Fatal("no EventCellRetry observed")
	}
	ref, err := Run(context.Background(), fakeSweep(6, 2, clean), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, ref.Rows) {
		t.Fatal("rows after a retried timeout differ from the reference")
	}
}

// TestWatchdogPermanentTimeout: a cell that hangs on every attempt
// exhausts the budget and is recorded as a timeout failure with its
// attempt count.
func TestWatchdogPermanentTimeout(t *testing.T) {
	hangRelease := make(chan struct{})
	defer close(hangRelease)
	hangCombo := core.Enumerate(inject.InO)[0].Name()
	clean := arithEval(0)
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if c.Name() == hangCombo {
			<-hangRelease
		}
		return clean(c, b)
	}
	res, err := Run(context.Background(), fakeSweep(3, 1, eval), Options{
		Workers:     2,
		CellTimeout: 30 * time.Millisecond,
		Retry:       retryFast(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v, want the one permanently hung cell", res.Failures)
	}
	f := res.Failures[0]
	if f.Kind != "timeout" || f.Attempts != 2 {
		t.Fatalf("failure = %+v, want kind=timeout attempts=2", f)
	}
}

// observerFunc adapts a function to the Observer interface.
type observerFunc func(Event)

func (f observerFunc) Event(ev Event) { f(ev) }

// TestStateLockExcludesConcurrentSweep is the regression test for the
// state-file race: a second Run pointed at the same -state file must fail
// fast with a lock error while the first holds it, and succeed after.
func TestStateLockExcludesConcurrentSweep(t *testing.T) {
	state := filepath.Join(t.TempDir(), "sweep.json")
	started := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	slowEval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
		return arithEval(0)(c, b)
	}

	runA := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), fakeSweep(4, 2, slowEval), Options{Workers: 1, StatePath: state})
		runA <- err
	}()
	<-started

	_, err := Run(context.Background(), fakeSweep(4, 2, arithEval(0)), Options{Workers: 1, StatePath: state})
	if !IsLocked(err) {
		t.Fatalf("concurrent run err = %v, want a lock error", err)
	}
	if !errors.Is(err, resilient.ErrLocked) {
		t.Fatalf("lock error does not wrap resilient.ErrLocked: %v", err)
	}

	close(release)
	if err := <-runA; err != nil {
		t.Fatalf("first run: %v", err)
	}
	// Lock released: the state file is reusable.
	res, err := Run(context.Background(), fakeSweep(4, 2, arithEval(0)), Options{Workers: 1, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored != 8 {
		t.Fatalf("restored = %d, want all 8 cells", res.Restored)
	}
}

// TestAdaptiveWatchdogDeadline exercises the deadline derivation rules:
// fixed timeout wins, the adaptive deadline needs an observation and never
// drops below the floor, and negative disables.
func TestAdaptiveWatchdogDeadline(t *testing.T) {
	fixed := &watchdog{fixed: 5 * time.Second, factor: 100}
	if d := fixed.deadline(); d != 5*time.Second {
		t.Fatalf("fixed deadline = %s", d)
	}
	adaptive := &watchdog{factor: 20}
	if d := adaptive.deadline(); d != 0 {
		t.Fatalf("unobserved adaptive deadline = %s, want 0 (unbounded)", d)
	}
	adaptive.observe(3 * time.Millisecond)
	if d := adaptive.deadline(); d != AdaptiveTimeoutFloor {
		t.Fatalf("adaptive deadline = %s, want the %s floor", d, AdaptiveTimeoutFloor)
	}
	adaptive.observe(time.Minute)
	if d := adaptive.deadline(); d != 20*time.Minute {
		t.Fatalf("adaptive deadline = %s, want 20m", d)
	}
	adaptive.observe(time.Second) // slower observation never shrinks it
	if d := adaptive.deadline(); d != 20*time.Minute {
		t.Fatalf("deadline shrank to %s", d)
	}
	off := &watchdog{fixed: -1}
	if d := off.deadline(); d >= 0 {
		t.Fatalf("disabled watchdog deadline = %s, want negative (no deadline)", d)
	}
}

// TestChaosSweepSurvivesEverything is the acceptance chaos test: one
// engine-backed sweep suffers an injected worker panic, a hung
// (watchdog-tripping) cell, a corrupt campaign cache entry, and a mid-run
// SIGINT — and after one resume ends with Failures empty, rankings
// bit-identical to an undisturbed serial run, and exactly one .corrupt
// quarantine file on disk.
func TestChaosSweepSurvivesEverything(t *testing.T) {
	cacheDir := t.TempDir()
	t.Setenv("CLEAR_CACHE_DIR", cacheDir)
	state := filepath.Join(t.TempDir(), "sweep.json")

	mkSweep := func() Sweep {
		e := core.NewEngine(inject.InO)
		e.SamplesBase, e.SamplesTech = 1, 1
		sw := New(e, e.Benchmarks()[:2], core.SDC, 5)
		sw.Combos = sw.Combos[:6] // hardware-only head of the enumeration
		return sw
	}

	// Undisturbed serial reference (also warms the disk cache).
	refSw := mkSweep()
	ref, err := Run(context.Background(), refSw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Failures) != 0 {
		t.Fatalf("reference run failed: %v", ref.Failures)
	}

	// Chaos ingredient 1: corrupt one cached campaign (truncate mid-file).
	gobs, _ := filepath.Glob(filepath.Join(cacheDir, "*.gob"))
	if len(gobs) == 0 {
		t.Fatal("reference run produced no cache entries")
	}
	data, err := os.ReadFile(gobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gobs[0], data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, stop := resilient.WithSignals(context.Background())
	defer stop()

	// Chaos ingredients 2-4: a panicking cell, a hung cell, and a SIGINT
	// after five cells. The gate makes the interrupt deterministic: once
	// the signal is sent, new evaluations wait for the cancellation to
	// propagate, so some cells always remain pending for the resume.
	hangRelease := make(chan struct{})
	defer close(hangRelease)
	chaosSw := mkSweep()
	panicCombo := chaosSw.Combos[0].Name()
	hangCombo := chaosSw.Combos[1].Name()
	benches := chaosSw.Benches
	var paniced, hung, sigSent atomic.Bool
	realEval := chaosSw.Eval
	chaosSw.Eval = func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		for sigSent.Load() && ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
		if c.Name() == panicCombo && b.Name == benches[0].Name && paniced.CompareAndSwap(false, true) {
			panic("chaos: injected worker panic")
		}
		if c.Name() == hangCombo && b.Name == benches[1].Name && hung.CompareAndSwap(false, true) {
			<-hangRelease
		}
		time.Sleep(10 * time.Millisecond) // pace the sweep so the signal lands mid-run
		return realEval(c, b)
	}
	var cellsSeen atomic.Int64
	obs := observerFunc(func(ev Event) {
		if ev.Type != EventCellDone && ev.Type != EventCellFailed {
			return
		}
		if cellsSeen.Add(1) == 5 && sigSent.CompareAndSwap(false, true) {
			syscall.Kill(os.Getpid(), syscall.SIGINT)
		}
	})
	_, err = Run(ctx, chaosSw, Options{
		Workers:     2,
		Observer:    obs,
		StatePath:   state,
		FlushEvery:  1,
		CellTimeout: 2 * time.Second,
		Retry:       retryFast(2),
	})
	if err != context.Canceled {
		t.Fatalf("chaos run err = %v, want context.Canceled (mid-run SIGINT)", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file not flushed on interrupt: %v", err)
	}

	// Resume undisturbed and heal. The watchdog is disabled here: under
	// the race detector legitimate cold campaigns can outlast any deadline
	// tight enough to make the chaos run's injected hang affordable, and a
	// cell the chaos run recorded as a timeout would then time out again.
	resumeSw := mkSweep()
	res, err := Run(context.Background(), resumeSw, Options{
		Workers:     2,
		StatePath:   state,
		CellTimeout: -1,
		Retry:       retryFast(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures after resume = %+v, want none", res.Failures)
	}
	if res.Restored == 0 || res.Evaluated == 0 || res.Restored+res.Evaluated != 12 {
		t.Fatalf("restored=%d evaluated=%d, want a genuine split of 12", res.Restored, res.Evaluated)
	}
	if !reflect.DeepEqual(res.Rows, ref.Rows) {
		t.Fatalf("healed rankings differ from the undisturbed serial run\nref: %+v\ngot: %+v", ref.Rows, res.Rows)
	}
	if !reflect.DeepEqual(res.Frontier, ref.Frontier) {
		t.Fatal("healed frontier differs from the undisturbed serial run")
	}
	corrupt, _ := filepath.Glob(filepath.Join(cacheDir, "*.corrupt"))
	if len(corrupt) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", corrupt)
	}
}
