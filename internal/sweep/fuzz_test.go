package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzStateDecode attacks the resumable-state decoder with arbitrary
// bytes: it must never panic, and anything it does accept must index
// inside the running sweep's cell grid.
func FuzzStateDecode(f *testing.F) {
	sw := fakeSweep(5, 2, arithEval(0))
	dir, err := os.MkdirTemp("", "sweep-fuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.json")
	cells := make([]*CellOutcome, 10)
	cells[3] = &CellOutcome{SDCImp: 2, DUEImp: 1, Energy: 0.1, TargetMet: true}
	cells[7] = &CellOutcome{Err: "boom", Kind: "panic", Attempts: 1}
	if err := saveState(path, sw, cells); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"cells":{"9999:9999":{}}}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("cap adversarial allocation")
		}
		cellsIn, ok := decodeState(data, sw)
		if !ok {
			return
		}
		for idx := range cellsIn {
			if idx < 0 || idx >= len(sw.Combos)*len(sw.Benches) {
				t.Fatalf("decoded cell index %d outside the grid", idx)
			}
		}
	})
}
