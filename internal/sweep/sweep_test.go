package sweep

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
)

// fakeSweep builds a synthetic sweep over real combo/bench identities with
// a deterministic arithmetic evaluation — no campaigns, so scheduler and
// aggregation behavior is isolated from simulation time.
func fakeSweep(nCombos, nBenches int, eval EvalFunc) Sweep {
	combos := core.Enumerate(inject.InO)[:nCombos]
	benches := bench.All()[:nBenches]
	return Sweep{
		Key:     Key{Core: "InO", Metric: "SDC", Target: 50, Seed: 1, SamplesBase: 1, SamplesTech: 1},
		Combos:  combos,
		Benches: benches,
		Eval:    eval,
	}
}

// arithEval returns a deterministic EvalFunc whose outputs exercise the
// interesting float cases: finite improvements, +Inf (fully protected),
// and distinct costs per cell.
func arithEval(delay time.Duration) EvalFunc {
	return func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		h := 0.0
		for _, r := range c.Name() + "|" + b.Name {
			h = math.Mod(h*31+float64(r), 1e6)
		}
		out := core.Outcome{
			SDCImp:    1 + math.Mod(h, 97),
			DUEImp:    1 + math.Mod(h, 31),
			Cost:      power.Cost{Area: math.Mod(h, 7) / 100, Power: math.Mod(h, 13) / 100, ExecTime: math.Mod(h, 3) / 100},
			TargetMet: math.Mod(h, 5) != 0,
		}
		if math.Mod(h, 11) == 0 {
			out.SDCImp = math.Inf(1) // fully protected cell
		}
		return out, nil
	}
}

// TestParallelMatchesSerial is the determinism guarantee: a sweep with
// many workers produces exactly the same ranked rows as the same sweep run
// serially.
func TestParallelMatchesSerial(t *testing.T) {
	sw := fakeSweep(40, 5, arithEval(0))
	serial, err := Run(context.Background(), sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), sw, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("parallel rows differ from serial rows")
	}
	if !reflect.DeepEqual(serial.Frontier, parallel.Frontier) {
		t.Fatalf("parallel frontier differs from serial frontier")
	}
	if len(serial.Rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(serial.Rows))
	}
}

// TestEngineSweepParallelMatchesSerial runs a real engine-backed sweep
// (small grid, tiny sampling) with 1 and 4 workers and requires identical
// ranked rows — the end-to-end determinism the resumable sweep promises.
func TestEngineSweepParallelMatchesSerial(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	run := func(workers int) *Result {
		e := core.NewEngine(inject.InO)
		e.SamplesBase, e.SamplesTech = 1, 1
		sw := New(e, e.Benchmarks()[:2], core.SDC, 5)
		sw.Combos = sw.Combos[:6] // hardware-only head of the enumeration
		res, err := Run(context.Background(), sw, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("engine sweep: parallel rows differ from serial\nserial:   %+v\nparallel: %+v",
			serial.Rows, parallel.Rows)
	}
	if serial.Evaluated != 12 || parallel.Evaluated != 12 {
		t.Fatalf("evaluated %d/%d cells, want 12", serial.Evaluated, parallel.Evaluated)
	}
}

// TestFailuresDoNotAbort checks graceful degradation: failing cells are
// recorded, the rest of the sweep completes, and the failures surface in
// the result.
func TestFailuresDoNotAbort(t *testing.T) {
	inner := arithEval(0)
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if b.Name == bench.All()[1].Name && c.Name() == core.Enumerate(inject.InO)[2].Name() {
			return core.Outcome{}, fmt.Errorf("synthetic failure")
		}
		return inner(c, b)
	}
	sw := fakeSweep(10, 3, eval)
	res, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly 1", res.Failures)
	}
	if res.Failures[0].Err != "synthetic failure" {
		t.Fatalf("failure err = %q", res.Failures[0].Err)
	}
	if res.Evaluated != 30 {
		t.Fatalf("evaluated %d cells, want 30 (sweep must continue past the failure)", res.Evaluated)
	}
	// The failed combo's row is flagged and excluded from Met.
	for _, r := range res.Rows {
		if r.Name == res.Failures[0].Combo {
			if r.Failed != 1 || r.Met {
				t.Fatalf("failed combo row = %+v, want Failed=1 Met=false", r)
			}
		}
	}
}

// cancelAfter cancels a context after n cell completions.
type cancelAfter struct {
	n      int64
	seen   atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfter) Event(ev Event) {
	if ev.Type != EventCellDone && ev.Type != EventCellFailed {
		return
	}
	if c.seen.Add(1) == c.n {
		c.cancel()
	}
}

// TestResumeSkipsCompletedCells kills a sweep mid-run (context cancel
// after a few cells) and resumes it from the JSON state file: the resumed
// run must evaluate exactly the cells the first run did not complete, and
// the final rows must match an uninterrupted reference run.
func TestResumeSkipsCompletedCells(t *testing.T) {
	state := filepath.Join(t.TempDir(), "sweep.json")
	var evals atomic.Int64
	counting := func(inner EvalFunc) EvalFunc {
		return func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
			evals.Add(1)
			return inner(c, b)
		}
	}
	sw := fakeSweep(10, 3, counting(arithEval(time.Millisecond)))
	total := 30

	ctx, cancel := context.WithCancel(context.Background())
	obs := &cancelAfter{n: 5, cancel: cancel}
	_, err := Run(ctx, sw, Options{Workers: 4, Observer: obs, StatePath: state, FlushEvery: 1})
	if err != context.Canceled {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	first := int(evals.Load())
	if first >= total || first < 5 {
		t.Fatalf("interrupted run evaluated %d of %d cells; want a strict subset of at least 5", first, total)
	}

	res, err := Run(context.Background(), sw, Options{Workers: 4, StatePath: state, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(evals.Load()); got != total {
		t.Fatalf("total evaluations %d, want %d (completed cells must not re-run)", got, total)
	}
	if res.Restored != first {
		t.Fatalf("resumed run restored %d cells, want %d", res.Restored, first)
	}
	if res.Evaluated != total-first {
		t.Fatalf("resumed run evaluated %d cells, want %d", res.Evaluated, total-first)
	}

	// The resumed result equals an uninterrupted reference run.
	ref, err := Run(context.Background(), fakeSweep(10, 3, arithEval(0)), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, ref.Rows) {
		t.Fatalf("resumed rows differ from uninterrupted reference")
	}
}

// TestStateMismatchedKeyIgnored verifies a state file from a different
// sweep configuration is discarded rather than mixed in.
func TestStateMismatchedKeyIgnored(t *testing.T) {
	state := filepath.Join(t.TempDir(), "sweep.json")
	sw := fakeSweep(5, 2, arithEval(0))
	if _, err := Run(context.Background(), sw, Options{Workers: 2, StatePath: state}); err != nil {
		t.Fatal(err)
	}

	other := fakeSweep(5, 2, arithEval(0))
	other.Key.Seed = 999 // different campaign seed: saved cells invalid
	var evals atomic.Int64
	other.Eval = func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		evals.Add(1)
		return arithEval(0)(c, b)
	}
	res, err := Run(context.Background(), other, Options{Workers: 2, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored != 0 || evals.Load() != 10 {
		t.Fatalf("mismatched state reused: restored=%d evals=%d, want 0/10", res.Restored, evals.Load())
	}
}

// TestForEachCoversAllIndices checks the work-stealing parallel-for runs
// every index exactly once for assorted worker counts.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 257
		counts := make([]atomic.Int64, n)
		ForEach(context.Background(), n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}
