package sweep

import "math"

// Row is one combination aggregated across its benchmark cells: harmonic
// improvement means plus arithmetic cost means, matching how the paper
// averages per-benchmark designs.
type Row struct {
	Name    string
	SDCImp  float64
	DUEImp  float64
	Energy  float64
	Area    float64
	Met     bool // every cell met the target
	Benches int  // cells aggregated
	Failed  int  // cells whose evaluation errored (excluded from means)
}

// worseThanBaseInv is the reciprocal contributed by a non-positive
// "improvement" (a combination that left the benchmark no better — or
// worse — than baseline). It must be huge so the bad benchmark dominates
// the harmonic mean: a single worse-than-baseline cell drags the
// aggregated improvement to ~0 instead of vanishing from the average.
const worseThanBaseInv = 1e9

// Inv maps an improvement factor to its harmonic-mean reciprocal. +Inf (a
// fully protected benchmark, zero residual errors) contributes zero;
// non-positive or NaN improvements contribute worseThanBaseInv.
//
// The historical clearsweep helper mapped v <= 0 to 1e-9 — the same tiny
// reciprocal as near-perfect protection — so a combination that made a
// benchmark *worse* was reported as a near-infinite improvement. A bad
// cell must dominate the mean, not vanish from it.
func Inv(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0
	}
	if math.IsNaN(v) || v <= 0 {
		return worseThanBaseInv
	}
	return 1 / v
}

// HarmonicImp folds a reciprocal sum over n cells back into an improvement
// factor: n/sum, +Inf when every cell was fully protected (sum == 0).
func HarmonicImp(invSum float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return float64(n) / invSum
}

// buildRows aggregates the cell grid into one ranked row per combination.
// Cells are visited in (combination, benchmark) index order, so the
// floating-point folds — and therefore the rows — are bit-identical for
// any worker count or completion order. nil cells (possible only after a
// canceled run) and failed cells are excluded from the means and counted
// in Failed/Benches instead.
func buildRows(sw Sweep, cells []*CellOutcome) []Row {
	nB := len(sw.Benches)
	rows := make([]Row, 0, len(sw.Combos))
	for ci, c := range sw.Combos {
		row := Row{Name: c.Name(), Met: true}
		var sdcInv, dueInv, energy, area float64
		for bi := 0; bi < nB; bi++ {
			co := cells[ci*nB+bi]
			if co == nil {
				row.Met = false
				continue
			}
			if co.Err != "" {
				row.Failed++
				row.Met = false
				continue
			}
			sdcInv += Inv(float64(co.SDCImp))
			dueInv += Inv(float64(co.DUEImp))
			energy += float64(co.Energy)
			area += float64(co.Area)
			row.Met = row.Met && co.TargetMet
			row.Benches++
		}
		if row.Benches > 0 {
			fn := float64(row.Benches)
			row.SDCImp = HarmonicImp(sdcInv, row.Benches)
			row.DUEImp = HarmonicImp(dueInv, row.Benches)
			row.Energy = energy / fn
			row.Area = area / fn
		} else {
			row.SDCImp, row.DUEImp = math.NaN(), math.NaN()
			row.Met = false
		}
		rows = append(rows, row)
	}
	rankRows(rows)
	return rows
}
