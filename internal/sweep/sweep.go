// Package sweep is the parallel, resumable exploration engine behind the
// paper's headline result: evaluating every cross-layer combination ×
// benchmark cell to find minimum-cost resilient designs (Fig. 1d, Tables
// 5/6). It schedules cells over a work-stealing worker pool, relies on
// core.Engine's singleflight deduplication so concurrent cells never run
// the same campaign twice, streams structured progress through a pluggable
// Observer, and persists completed cells to a versioned JSON state file so
// an interrupted sweep resumes where it stopped.
//
// Parallel and serial sweeps produce bit-identical aggregates: cell results
// are stored by (combination, benchmark) index and aggregated in index
// order, so worker count and scheduling order never reach the arithmetic.
package sweep

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
)

// EvalFunc evaluates one (combination, benchmark) cell.
type EvalFunc func(c core.Combo, b *bench.Benchmark) (core.Outcome, error)

// Sweep describes one exploration: the cell grid (combinations ×
// benchmarks), the evaluation function, and the identity key used for
// persistence.
type Sweep struct {
	Key     Key
	Combos  []core.Combo
	Benches []*bench.Benchmark
	Eval    EvalFunc
	// Stats, when non-nil, supplies engine memoization counters for
	// progress events (set by New; optional for custom sweeps).
	Stats func() core.EngineStats
}

// New builds the standard full-enumeration sweep for an engine: every
// valid combination of the core against the given benchmarks (nil means
// the core's full suite) at one (metric, target) design point.
func New(e *core.Engine, benches []*bench.Benchmark, metric core.Metric, target float64) Sweep {
	if benches == nil {
		benches = e.Benchmarks()
	}
	return Sweep{
		Key: Key{
			Core:        e.Kind.String(),
			Metric:      metric.String(),
			Target:      F64(target),
			Seed:        e.Seed,
			SamplesBase: e.SamplesBase,
			SamplesTech: e.SamplesTech,
		},
		Combos:  core.Enumerate(e.Kind),
		Benches: benches,
		Eval: func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
			return e.EvalCombo(b, c, metric, target)
		},
		Stats: e.Stats,
	}
}

// Options tunes a sweep run.
type Options struct {
	// Workers is the number of concurrent cell evaluations; <= 0 uses one
	// per available CPU. Workers == 1 is the serial reference order.
	Workers int
	// Observer receives progress events (nil discards them).
	Observer Observer
	// StatePath, when non-empty, enables persistence: completed cells are
	// flushed to this JSON file and restored by the next run with a
	// matching Key.
	StatePath string
	// FlushEvery is the number of completed cells between state flushes
	// (default 16; lower is safer against kills, higher is less IO).
	FlushEvery int
}

// CellFailure records one cell whose evaluation returned an error.
type CellFailure struct {
	Combo string
	Bench string
	Err   string
}

// Result is a finished sweep.
type Result struct {
	// Rows holds one aggregated row per combination, ranked by increasing
	// energy (ties broken by name, so the ranking is total and
	// deterministic).
	Rows []Row
	// Frontier is the Pareto-optimal subset of complete rows in the
	// (improvement-at-metric, energy) plane.
	Frontier []core.ParetoPoint
	// Evaluated and Restored count cells computed this run vs. resumed
	// from the state file; Failures lists cells whose evaluation errored.
	Evaluated int
	Restored  int
	Failures  []CellFailure
}

// Run executes a sweep. Cell evaluations run on a work-stealing pool;
// failures are recorded and skipped rather than aborting the run. On a
// canceled context the completed cells are flushed to the state file (when
// persistence is on) and ctx.Err() is returned.
func Run(ctx context.Context, sw Sweep, opt Options) (*Result, error) {
	obs := opt.Observer
	if obs == nil {
		obs = NopObserver{}
	}
	flushEvery := opt.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 16
	}
	nB := len(sw.Benches)
	total := len(sw.Combos) * nB

	cells := make([]*CellOutcome, total)
	restored := 0
	if opt.StatePath != "" {
		if saved, ok := loadState(opt.StatePath, sw); ok {
			for idx, co := range saved {
				c := co
				cells[idx] = &c
				restored++
			}
		}
	}

	var pending []int
	for i := range cells {
		if cells[i] == nil {
			pending = append(pending, i)
		}
	}

	obs.Event(Event{Type: EventStart, Total: total, Restored: restored})

	start := time.Now()
	var mu sync.Mutex // guards done/failed counts and state flushes
	done, failed := 0, 0
	sinceFlush := 0

	flushLocked := func() {
		if opt.StatePath != "" {
			// Flushing is best-effort: a failed write only costs resume
			// coverage, never the in-memory sweep.
			_ = saveState(opt.StatePath, sw, cells)
		}
		sinceFlush = 0
	}

	runWorkStealing(ctx, len(pending), opt.Workers, func(_, k int) {
		idx := pending[k]
		ci, bi := idx/nB, idx%nB
		out, err := sw.Eval(sw.Combos[ci], sw.Benches[bi])
		co := CellOutcome{
			SDCImp:    F64(out.SDCImp),
			DUEImp:    F64(out.DUEImp),
			Energy:    F64(out.Cost.Energy()),
			Area:      F64(out.Cost.Area),
			TargetMet: out.TargetMet,
		}
		if err != nil {
			co = CellOutcome{Err: err.Error()}
		}

		mu.Lock()
		cells[idx] = &co
		done++
		if err != nil {
			failed++
		}
		sinceFlush++
		if sinceFlush >= flushEvery {
			flushLocked()
		}
		ev := Event{
			Type:     EventCellDone,
			Combo:    sw.Combos[ci].Name(),
			Bench:    sw.Benches[bi].Name,
			Done:     done,
			Failed:   failed,
			Total:    total,
			Restored: restored,
			Elapsed:  time.Since(start),
		}
		if done > 0 {
			remaining := len(pending) - done
			ev.ETA = time.Duration(float64(ev.Elapsed) / float64(done) * float64(remaining))
		}
		mu.Unlock()

		if err != nil {
			ev.Type = EventCellFailed
			ev.Err = err.Error()
		}
		if sw.Stats != nil {
			s := sw.Stats()
			ev.Engine = &s
		}
		ev.PrunedInjections, ev.TotalInjections = inject.PruneStats()
		obs.Event(ev)
	})

	mu.Lock()
	flushLocked()
	evaluated, nFailed := done, failed
	mu.Unlock()

	if err := ctx.Err(); err != nil {
		obs.Event(Event{Type: EventDone, Done: evaluated, Failed: nFailed,
			Total: total, Restored: restored, Elapsed: time.Since(start)})
		return nil, err
	}

	res := &Result{
		Rows:      buildRows(sw, cells),
		Evaluated: evaluated,
		Restored:  restored,
	}
	for idx, co := range cells {
		if co != nil && co.Err != "" {
			res.Failures = append(res.Failures, CellFailure{
				Combo: sw.Combos[idx/nB].Name(),
				Bench: sw.Benches[idx%nB].Name,
				Err:   co.Err,
			})
		}
	}
	res.Frontier = frontierOf(res.Rows, sw.Key.Metric)

	obs.Event(Event{Type: EventDone, Done: evaluated, Failed: nFailed,
		Total: total, Restored: restored, Elapsed: time.Since(start)})
	return res, nil
}

// frontierOf projects complete rows onto the (improvement, energy) plane of
// the sweep's target metric and returns the shared Pareto frontier.
func frontierOf(rows []Row, metric string) []core.ParetoPoint {
	var pts []core.ParetoPoint
	for _, r := range rows {
		if r.Failed > 0 || r.Benches == 0 {
			continue
		}
		imp := r.SDCImp
		if metric == core.DUE.String() {
			imp = r.DUEImp
		}
		if math.IsNaN(imp) {
			continue
		}
		pts = append(pts, core.ParetoPoint{Name: r.Name, Improvement: imp, Energy: r.Energy})
	}
	return core.ParetoFrontier(pts)
}

// rankRows sorts rows by increasing energy, breaking ties by name so the
// order is total (required for the parallel-equals-serial guarantee).
func rankRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Energy != rows[j].Energy {
			return rows[i].Energy < rows[j].Energy
		}
		return rows[i].Name < rows[j].Name
	})
}
