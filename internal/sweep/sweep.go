// Package sweep is the parallel, resumable exploration engine behind the
// paper's headline result: evaluating every cross-layer combination ×
// benchmark cell to find minimum-cost resilient designs (Fig. 1d, Tables
// 5/6). It schedules cells over a work-stealing worker pool, relies on
// core.Engine's singleflight deduplication so concurrent cells never run
// the same campaign twice, streams structured progress through a pluggable
// Observer, and persists completed cells to a versioned JSON state file so
// an interrupted sweep resumes where it stopped.
//
// Parallel and serial sweeps produce bit-identical aggregates: cell results
// are stored by (combination, benchmark) index and aggregated in index
// order, so worker count and scheduling order never reach the arithmetic.
//
// Long sweeps are fault-tolerant (see DESIGN.md §8): every cell evaluation
// runs under panic isolation and an optional watchdog deadline, transient
// failures retry with backoff, a canceled context (e.g. SIGINT) drains
// in-flight cells and flushes state, and the state file is guarded by a
// pid lock so two sweeps cannot clobber each other's resumable progress.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/obs"
	"clear/internal/resilient"
	"clear/internal/technique"
)

// EvalFunc evaluates one (combination, benchmark) cell.
type EvalFunc func(c core.Combo, b *bench.Benchmark) (core.Outcome, error)

// Sweep describes one exploration: the cell grid (combinations ×
// benchmarks), the evaluation function, and the identity key used for
// persistence.
type Sweep struct {
	Key     Key
	Combos  []core.Combo
	Benches []*bench.Benchmark
	Eval    EvalFunc
	// Stats, when non-nil, supplies engine memoization counters for
	// progress events (set by New; optional for custom sweeps).
	Stats func() core.EngineStats
	// Inject, when non-nil, supplies the injection-level counters (prune,
	// quarantine, cache) scoped to the engine behind Eval (set by New).
	// When nil, events fall back to the process-wide aggregate — correct
	// for a single sweep, conflated when two sweeps share the process.
	Inject func() inject.Snapshot
}

// New builds the standard full-enumeration sweep for an engine: every
// valid combination of the core against the given benchmarks (nil means
// the core's full suite) at one (metric, target) design point.
func New(e *core.Engine, benches []*bench.Benchmark, metric core.Metric, target float64) Sweep {
	if benches == nil {
		benches = e.Benchmarks()
	}
	return Sweep{
		Key: Key{
			Core:        e.Kind.String(),
			Metric:      metric.String(),
			Target:      F64(target),
			Seed:        e.Seed,
			SamplesBase: e.SamplesBase,
			SamplesTech: e.SamplesTech,
			FaultModel:  normalizeModel(e.FaultModel),
		},
		Combos:  core.EnumerateForModel(e.Kind, nil, e.FaultModel),
		Benches: benches,
		Eval: func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
			return e.EvalCombo(b, c, metric, target)
		},
		Stats:  e.Stats,
		Inject: e.Inj.Snapshot,
	}
}

// ApplyFilter restricts the sweep's combination grid to the techniques a
// filter admits (nil restores the full enumeration) and keys the persisted
// state on the filter's canonical spec, so state saved under one
// -techniques selection is rejected — never silently mixed — when resumed
// under another.
func (s *Sweep) ApplyFilter(e *core.Engine, f *technique.Filter) {
	s.Combos = core.EnumerateForModel(e.Kind, f, e.FaultModel)
	s.Key.Techniques = f.Spec()
}

// normalizeModel maps the ssb default (and "") to the empty string so
// legacy state files — which predate fault models and carry no
// "fault_model" key — keep matching single-bit sweeps.
func normalizeModel(model string) string {
	if model == inject.DefaultModel {
		return ""
	}
	return model
}

// Options tunes a sweep run.
type Options struct {
	// Workers is the number of concurrent cell evaluations; <= 0 uses one
	// per available CPU. Workers == 1 is the serial reference order.
	Workers int
	// Observer receives progress events (nil discards them).
	Observer Observer
	// StatePath, when non-empty, enables persistence: completed cells are
	// flushed to this JSON file and restored by the next run with a
	// matching Key. The file is guarded by StatePath+".lock" — a second
	// sweep pointed at the same file fails fast with resilient.ErrLocked.
	StatePath string
	// FlushEvery is the number of completed cells between state flushes
	// (default 16; lower is safer against kills, higher is less IO).
	FlushEvery int
	// CellTimeout bounds each cell evaluation: > 0 is a fixed per-cell
	// watchdog deadline, 0 derives one adaptively (CellTimeoutFactor ×
	// the slowest successful cell observed so far, never below
	// AdaptiveTimeoutFloor), and < 0 disables the watchdog entirely.
	CellTimeout time.Duration
	// CellTimeoutFactor is the adaptive watchdog's safety factor over the
	// slowest observed cell (<= 0 disables adaptive deadlines; 0 with
	// CellTimeout 0 therefore means no watchdog).
	CellTimeoutFactor float64
	// Retry controls re-evaluation of transiently failing cells (watchdog
	// timeouts, cache IO). Permanent failures — panics, deterministic eval
	// errors — are never retried in-run; they are recorded and re-run on
	// the next resume. The zero value evaluates each cell once.
	Retry resilient.Policy
	// Metrics, when non-nil, receives the sweep's instruments (cell latency
	// histogram, done/failed/retry counters, failure-kind counters, worker
	// utilization gauge — DESIGN.md §10 lists the names). Instrument
	// updates are single atomic operations and never influence evaluation:
	// a sweep with Metrics set produces bit-identical results to one
	// without.
	Metrics *obs.Registry
}

// AdaptiveTimeoutFloor is the minimum adaptive watchdog deadline. Memoized
// cells finish in microseconds; without a floor the first cold multi-second
// campaign behind them would be condemned by a deadline derived from cache
// hits.
const AdaptiveTimeoutFloor = 2 * time.Minute

// watchdog derives per-cell deadlines. A fixed timeout wins; otherwise the
// deadline adapts to factor × the slowest successful cell seen so far.
// Cells before the first completion run unbounded — there is nothing yet to
// derive a nominal duration from.
type watchdog struct {
	fixed   time.Duration
	factor  float64
	slowest atomic.Int64 // nanoseconds of the slowest successful cell
}

func (w *watchdog) deadline() time.Duration {
	if w.fixed != 0 {
		return w.fixed
	}
	if w.factor <= 0 {
		return 0
	}
	s := w.slowest.Load()
	if s == 0 {
		return 0
	}
	d := time.Duration(w.factor * float64(s))
	if d < AdaptiveTimeoutFloor {
		d = AdaptiveTimeoutFloor
	}
	return d
}

func (w *watchdog) observe(d time.Duration) {
	for {
		cur := w.slowest.Load()
		if int64(d) <= cur {
			return
		}
		if w.slowest.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// CellFailure records one cell whose evaluation failed after exhausting
// its attempt budget.
type CellFailure struct {
	Combo string
	Bench string
	Err   string
	// Kind classifies the failure ("panic", "timeout", "io", "error");
	// see resilient.KindOf.
	Kind string
	// Attempts counts evaluations of the cell this run, retries included.
	Attempts int
	// Stack is the captured goroutine stack when the failure was a panic.
	Stack string
}

// Result is a finished sweep.
type Result struct {
	// Rows holds one aggregated row per combination, ranked by increasing
	// energy (ties broken by name, so the ranking is total and
	// deterministic).
	Rows []Row
	// Frontier is the Pareto-optimal subset of complete rows in the
	// (improvement-at-metric, energy) plane.
	Frontier []core.ParetoPoint
	// Evaluated and Restored count cells computed this run vs. resumed
	// from the state file; Failures lists cells whose evaluation failed.
	Evaluated int
	Restored  int
	Failures  []CellFailure
}

// Run executes a sweep. Cell evaluations run on a work-stealing pool under
// panic isolation, per-cell watchdog deadlines, and a transient-failure
// retry policy; failures are classified and recorded rather than aborting
// the run. On a canceled context the in-flight cells drain, completed
// cells are flushed to the state file (when persistence is on), and
// ctx.Err() is returned.
func Run(ctx context.Context, sw Sweep, opt Options) (*Result, error) {
	observer := opt.Observer
	if observer == nil {
		observer = NopObserver{}
	}
	flushEvery := opt.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 16
	}
	if opt.StatePath != "" {
		lock, err := resilient.Acquire(opt.StatePath + ".lock")
		if err != nil {
			return nil, fmt.Errorf("sweep: state file %q unavailable: %w (another sweep appears to own it; remove the .lock file if that process is gone)",
				opt.StatePath, err)
		}
		defer lock.Release()
	}
	nB := len(sw.Benches)
	total := len(sw.Combos) * nB

	cells := make([]*CellOutcome, total)
	restored := 0
	if opt.StatePath != "" {
		if saved, ok := loadState(opt.StatePath, sw); ok {
			for idx, co := range saved {
				c := co
				cells[idx] = &c
				restored++
			}
		}
	}

	var pending []int
	for i := range cells {
		if cells[i] == nil {
			pending = append(pending, i)
		}
	}

	observer.Event(Event{Type: EventStart, Total: total, Restored: restored})

	ins := newRunInstruments(opt.Metrics)
	ins.cellsTotal.Set(int64(total))
	ins.cellsRestored.Set(int64(restored))

	// injSnap reads the injection counters scoped to this sweep's engine
	// (falling back to the process aggregate for engine-less sweeps).
	injSnap := func() inject.Snapshot {
		if sw.Inject != nil {
			return sw.Inject()
		}
		pruned, totalInj := inject.PruneStats()
		return inject.Snapshot{
			PrunedInjections: pruned,
			TotalInjections:  totalInj,
			Quarantined:      inject.QuarantineStats(),
		}
	}

	wd := &watchdog{fixed: opt.CellTimeout, factor: opt.CellTimeoutFactor}

	start := time.Now()
	// mu guards done/failed counts, stacks, state flushes, AND event
	// delivery: cell events are built and dispatched inside the same
	// critical section that advances Done, so observers see events in
	// strict Done order with engine/prune counters sampled consistently
	// with that Done count. (Delivering after unlocking — the old way —
	// let a Done=51 event overtake Done=50 under parallel workers and
	// paired counters with the wrong progress line.)
	var mu sync.Mutex
	done, failed := 0, 0
	sinceFlush := 0
	stacks := make(map[int]string) // idx -> panic stack (this run only)

	flushLocked := func() {
		if opt.StatePath != "" {
			// Flushing is best-effort: a failed write only costs resume
			// coverage, never the in-memory sweep.
			_ = saveState(opt.StatePath, sw, cells)
		}
		sinceFlush = 0
	}

	runWorkStealing(ctx, len(pending), opt.Workers, func(_, k int) {
		idx := pending[k]
		ci, bi := idx/nB, idx%nB
		comboName, benchName := sw.Combos[ci].Name(), sw.Benches[bi].Name

		policy := opt.Retry
		policy.OnRetry = func(attempt int, err error, delay time.Duration) {
			ins.retries.Inc()
			// Retry events take the same lock as cell events so all
			// delivery is serialized through one order.
			mu.Lock()
			observer.Event(Event{
				Type: EventCellRetry, Combo: comboName, Bench: benchName,
				Err: err.Error(), Kind: resilient.KindOf(err),
				Attempt: attempt, RetryDelay: delay,
				Quarantined: injSnap().Quarantined,
			})
			mu.Unlock()
		}

		ins.workersActive.Add(1)
		cellStart := time.Now()
		out, attempts, err := resilient.Do(ctx, policy, func() (core.Outcome, error) {
			return resilient.WithWatchdog(wd.deadline(), func() (core.Outcome, error) {
				return sw.Eval(sw.Combos[ci], sw.Benches[bi])
			})
		})
		cellDur := time.Since(cellStart)
		ins.workersActive.Add(-1)
		ins.cellLatency.Observe(int64(cellDur))

		co := CellOutcome{
			SDCImp:    F64(out.SDCImp),
			DUEImp:    F64(out.DUEImp),
			Energy:    F64(out.Cost.Energy()),
			Area:      F64(out.Cost.Area),
			TargetMet: out.TargetMet,
		}
		if err != nil {
			co = CellOutcome{Err: err.Error(), Kind: resilient.KindOf(err), Attempts: attempts}
			ins.cellsFailed.Inc()
			ins.failureKind(resilient.KindOf(err)).Inc()
		} else {
			wd.observe(cellDur)
			ins.cellsDone.Inc()
		}

		// Everything the event reports — the Done/Failed counts, the
		// engine and injection counters, the flush — is read and the event
		// delivered inside one critical section (see mu above).
		mu.Lock()
		cells[idx] = &co
		done++
		if err != nil {
			failed++
			if st := resilient.StackOf(err); st != "" {
				stacks[idx] = st
			}
		}
		sinceFlush++
		if sinceFlush >= flushEvery {
			flushLocked()
		}
		ev := Event{
			Type:     EventCellDone,
			Combo:    comboName,
			Bench:    benchName,
			Done:     done,
			Failed:   failed,
			Total:    total,
			Restored: restored,
			Elapsed:  time.Since(start),
			Attempt:  attempts,
		}
		if err != nil {
			ev.Type = EventCellFailed
			ev.Err = err.Error()
			ev.Kind = resilient.KindOf(err)
		}
		if done > 0 {
			remaining := len(pending) - done
			ev.ETA = time.Duration(float64(ev.Elapsed) / float64(done) * float64(remaining))
		}
		if sw.Stats != nil {
			s := sw.Stats()
			ev.Engine = &s
		}
		snap := injSnap()
		ev.Quarantined = snap.Quarantined
		ev.PrunedInjections, ev.TotalInjections = snap.PrunedInjections, snap.TotalInjections
		observer.Event(ev)
		mu.Unlock()
	})

	mu.Lock()
	flushLocked()
	evaluated, nFailed := done, failed
	mu.Unlock()

	// The closing event carries the run's final counters, so a trace's last
	// record is a self-contained summary.
	doneEvent := func() Event {
		ev := Event{Type: EventDone, Done: evaluated, Failed: nFailed,
			Total: total, Restored: restored, Elapsed: time.Since(start)}
		if sw.Stats != nil {
			s := sw.Stats()
			ev.Engine = &s
		}
		snap := injSnap()
		ev.Quarantined = snap.Quarantined
		ev.PrunedInjections, ev.TotalInjections = snap.PrunedInjections, snap.TotalInjections
		return ev
	}

	if err := ctx.Err(); err != nil {
		observer.Event(doneEvent())
		return nil, err
	}

	res := &Result{
		Rows:      buildRows(sw, cells),
		Evaluated: evaluated,
		Restored:  restored,
	}
	for idx, co := range cells {
		if co != nil && co.Err != "" {
			res.Failures = append(res.Failures, CellFailure{
				Combo:    sw.Combos[idx/nB].Name(),
				Bench:    sw.Benches[idx%nB].Name,
				Err:      co.Err,
				Kind:     co.Kind,
				Attempts: co.Attempts,
				Stack:    stacks[idx],
			})
		}
	}
	res.Frontier = frontierOf(res.Rows, sw.Key.Metric)

	observer.Event(doneEvent())
	return res, nil
}

// IsLocked reports whether a Run error means another sweep holds the state
// file's lock.
func IsLocked(err error) bool {
	return errors.Is(err, resilient.ErrLocked)
}

// frontierOf projects complete rows onto the (improvement, energy) plane of
// the sweep's target metric and returns the shared Pareto frontier.
func frontierOf(rows []Row, metric string) []core.ParetoPoint {
	var pts []core.ParetoPoint
	for _, r := range rows {
		if r.Failed > 0 || r.Benches == 0 {
			continue
		}
		imp := r.SDCImp
		if metric == core.DUE.String() {
			imp = r.DUEImp
		}
		if math.IsNaN(imp) {
			continue
		}
		pts = append(pts, core.ParetoPoint{Name: r.Name, Improvement: imp, Energy: r.Energy})
	}
	return core.ParetoFrontier(pts)
}

// rankRows sorts rows by increasing energy, breaking ties by name so the
// order is total (required for the parallel-equals-serial guarantee).
func rankRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Energy != rows[j].Energy {
			return rows[i].Energy < rows[j].Energy
		}
		return rows[i].Name < rows[j].Name
	})
}
