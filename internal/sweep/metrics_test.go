package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/obs"
)

// recordingObserver captures the cell-event sequence exactly as delivered,
// adding scheduling jitter to provoke the pre-fix race: when events were
// dispatched after the progress lock was released, a worker that built
// Done=n could be overtaken by the worker that built Done=n+1, so the
// observer saw progress run backwards. With ordered dispatch under the
// lock the jitter only slows delivery, never reorders it.
type recordingObserver struct {
	mu     sync.Mutex
	dones  []int
	engine []int64 // ev.Engine.CampaignsRun per cell event, in delivery order
}

func (o *recordingObserver) Event(ev Event) {
	if ev.Type != EventCellDone && ev.Type != EventCellFailed {
		return
	}
	if ev.Done%2 == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	o.mu.Lock()
	o.dones = append(o.dones, ev.Done)
	if ev.Engine != nil {
		o.engine = append(o.engine, ev.Engine.CampaignsRun)
	}
	o.mu.Unlock()
}

// TestCellEventsMonotonicDone is the regression test for the racy event
// dispatch: at -workers=8 every cell event must arrive in strict Done
// order (1, 2, 3, ...), and the engine counters attached to each event
// must never run backwards in delivery order — both fail against the
// pre-fix code that delivered events outside the lock.
func TestCellEventsMonotonicDone(t *testing.T) {
	var evals atomic.Int64
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		evals.Add(1)
		return arithEval(0)(c, b)
	}
	sw := fakeSweep(50, 3, eval)
	// A synthetic engine-stats source backed by the eval counter: sampled
	// inside the event's critical section it is non-decreasing across
	// delivered events; sampled late (the old bug) it goes backwards
	// whenever events reorder.
	sw.Stats = func() core.EngineStats {
		return core.EngineStats{CampaignsRun: evals.Load()}
	}
	obsv := &recordingObserver{}
	if _, err := Run(context.Background(), sw, Options{Workers: 8, Observer: obsv}); err != nil {
		t.Fatal(err)
	}
	if len(obsv.dones) != 150 {
		t.Fatalf("saw %d cell events, want 150", len(obsv.dones))
	}
	for i, d := range obsv.dones {
		if d != i+1 {
			t.Fatalf("event %d carries Done=%d, want %d (events reordered)", i, d, i+1)
		}
	}
	for i := 1; i < len(obsv.engine); i++ {
		if obsv.engine[i] < obsv.engine[i-1] {
			t.Fatalf("engine counters ran backwards between events %d and %d (%d -> %d)",
				i-1, i, obsv.engine[i-1], obsv.engine[i])
		}
	}
	// Counters are sampled in the same critical section that advanced
	// Done: at that instant every completed eval has finished, so the
	// sampled counter can never lag the Done count it ships with.
	for i, v := range obsv.engine {
		if v < int64(obsv.dones[i]) {
			t.Fatalf("event Done=%d shipped a counter of %d sampled before its own completion",
				obsv.dones[i], v)
		}
	}
}

// TestSweepInstruments checks the registry wiring: a run with Metrics set
// registers the contract's instrument names and tallies cells, failures,
// retries-free latencies, and worker occupancy.
func TestSweepInstruments(t *testing.T) {
	eval := func(c core.Combo, b *bench.Benchmark) (core.Outcome, error) {
		if c.Name() == core.Enumerate(inject.InO)[1].Name() && b.Name == bench.All()[0].Name {
			return core.Outcome{}, errSynthetic
		}
		return arithEval(0)(c, b)
	}
	sw := fakeSweep(8, 2, eval)
	reg := obs.NewRegistry()
	if _, err := Run(context.Background(), sw, Options{Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"sweep.cells.total", "sweep.cells.restored", "sweep.cells.done",
		"sweep.cells.failed", "sweep.cells.retried", "sweep.cell.latency_ns",
		"sweep.workers.active",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("instrument %q missing from registry: %v", name, reg.Names())
		}
	}
	if snap["sweep.cells.total"] != int64(16) || snap["sweep.cells.done"] != int64(15) ||
		snap["sweep.cells.failed"] != int64(1) {
		t.Fatalf("cell counters wrong: %v", snap)
	}
	if snap["sweep.failures.error"] != int64(1) {
		t.Fatalf("failure-kind counter wrong: %v", snap)
	}
	if snap["sweep.workers.active"] != int64(0) {
		t.Fatalf("workers.active = %v after the run, want 0", snap["sweep.workers.active"])
	}
	if reg.Histogram("sweep.cell.latency_ns").Count() != 16 {
		t.Fatalf("latency histogram holds %d observations, want 16",
			reg.Histogram("sweep.cell.latency_ns").Count())
	}
}

var errSynthetic = errSyntheticType{}

type errSyntheticType struct{}

func (errSyntheticType) Error() string { return "synthetic failure" }

// TestMetricsAndTraceDoNotChangeResults is the acceptance guarantee: an
// engine-backed sweep run with metrics, event tracing, and campaign
// tracing enabled produces bit-identical state files and rows to the same
// sweep with observability off.
func TestMetricsAndTraceDoNotChangeResults(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	dir := t.TempDir()

	run := func(state string, instrumented bool) *Result {
		e := core.NewEngine(inject.InO)
		e.SamplesBase, e.SamplesTech = 1, 1
		sw := New(e, e.Benchmarks()[:2], core.SDC, 5)
		sw.Combos = sw.Combos[:6]
		opt := Options{Workers: 4, StatePath: state}
		var tr *obs.Tracer
		if instrumented {
			f, err := os.Create(filepath.Join(dir, "trace.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			tr = obs.NewTracer(f)
			e.Inj.Tracer = tr
			reg := obs.NewRegistry()
			e.Instrument(reg)
			opt.Metrics = reg
			opt.Observer = MultiObserver{TraceObserver{T: tr}}
		}
		res, err := Run(context.Background(), sw, opt)
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return res
	}

	statePlain := filepath.Join(dir, "plain.json")
	stateObs := filepath.Join(dir, "instrumented.json")
	plain := run(statePlain, false)
	instrumented := run(stateObs, true)

	if !reflect.DeepEqual(plain.Rows, instrumented.Rows) {
		t.Fatal("instrumented sweep rows differ from plain rows")
	}
	if !reflect.DeepEqual(plain.Frontier, instrumented.Frontier) {
		t.Fatal("instrumented sweep frontier differs from plain frontier")
	}
	b1, err := os.ReadFile(statePlain)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(stateObs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("state files differ between plain and instrumented runs:\n%s\n---\n%s", b1, b2)
	}

	// The trace itself must be an ordered, parseable JSONL replay: sweep
	// records in Done order interleaved with campaign records.
	data, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	types := map[string]int{}
	lastDone := 0
	for _, l := range lines {
		var rec struct {
			Type string `json:"type"`
			Done int    `json:"done"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("trace line %q is not JSON: %v", l, err)
		}
		types[rec.Type]++
		if rec.Type == "sweep.cell-done" || rec.Type == "sweep.cell-failed" {
			if rec.Done != lastDone+1 {
				t.Fatalf("trace cell records out of order: Done=%d after %d", rec.Done, lastDone)
			}
			lastDone = rec.Done
		}
	}
	if types["sweep.start"] != 1 || types["sweep.done"] != 1 {
		t.Fatalf("trace record types = %v, want one sweep.start and one sweep.done", types)
	}
	if types["sweep.cell-done"] != 12 {
		t.Fatalf("trace holds %d cell records, want 12", types["sweep.cell-done"])
	}
	if types["campaign"] == 0 {
		t.Fatalf("trace holds no campaign records: %v", types)
	}
}

// TestEventInjectScopedToEngine verifies events report the sweep engine's
// own injection counters, not another engine's: a second engine doing
// unrelated campaign work in the same process must not leak into this
// sweep's prune numbers.
func TestEventInjectScopedToEngine(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())

	// Foreign engine does inject work first: its counters are nonzero.
	foreign := core.NewEngine(inject.InO)
	foreign.SamplesBase, foreign.SamplesTech = 1, 1
	if _, err := foreign.Base(foreign.Benchmarks()[0]); err != nil {
		t.Fatal(err)
	}
	if _, total := foreign.Inj.PruneStats(); total == 0 {
		t.Fatal("foreign engine performed no injections; test premise broken")
	}

	e := core.NewEngine(inject.InO)
	e.SamplesBase, e.SamplesTech = 1, 1
	sw := New(e, e.Benchmarks()[:1], core.SDC, 5)
	sw.Combos = sw.Combos[:2]

	var first Event
	got := false
	obsv := observerFunc(func(ev Event) {
		if !got && ev.Type == EventCellDone {
			first, got = ev, true
		}
	})
	if _, err := Run(context.Background(), sw, Options{Workers: 2, Observer: obsv}); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("no cell event observed")
	}
	_, ownTotal := e.Inj.PruneStats()
	if first.TotalInjections > ownTotal {
		t.Fatalf("event reports %d injections but the sweep's engine only ran %d — foreign engine leaked in",
			first.TotalInjections, ownTotal)
	}
	if first.TotalInjections == 0 {
		t.Fatal("event reports zero injections for an engine-backed sweep")
	}
}
