package resilient

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// Lock is a held exclusive lock file: a file created with O_EXCL whose
// body is the holder's pid. It serializes access to shared mutable files —
// two sweeps pointed at the same -state file would otherwise race through
// atomic renames and silently drop each other's completed cells.
type Lock struct {
	path string
}

// ErrLocked reports that a live process already holds the lock.
var ErrLocked = errors.New("lock held")

// Acquire takes the lock at path, failing fast with an ErrLocked-wrapping
// error when a live process holds it. A stale lock — its recorded pid no
// longer runs, or its content is unreadable — is removed and re-acquired.
// (Steal-then-create is not atomic: two processes racing over the same
// stale lock can both observe it stale, but only one wins the O_EXCL
// re-creation; the loser reports ErrLocked.)
func Acquire(path string) (*Lock, error) {
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return nil, cerr
			}
			return &Lock{path: path}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // released between the create and the read: retry
			}
			return nil, rerr
		}
		if pid, ok := parseLockPid(data); ok && processAlive(pid) {
			return nil, fmt.Errorf("%w by pid %d (%s)", ErrLocked, pid, path)
		}
		// Dead holder or unparseable content: stale, steal it.
		os.Remove(path)
	}
	return nil, fmt.Errorf("%w (%s): lost the race re-acquiring a stale lock", ErrLocked, path)
}

// Release removes the lock file. Safe to call once per successful Acquire.
func (l *Lock) Release() error {
	return os.Remove(l.path)
}

func parseLockPid(data []byte) (int, bool) {
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	return pid, err == nil && pid > 0
}

// processAlive probes pid with signal 0: delivery (or EPERM — it exists
// but belongs to someone else) means alive.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	serr := p.Signal(syscall.Signal(0))
	return serr == nil || errors.Is(serr, syscall.EPERM)
}
