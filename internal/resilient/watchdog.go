package resilient

import "time"

// WithWatchdog runs fn under panic isolation with a wall-clock deadline.
// When the deadline expires before fn returns, the call returns a
// *TimeoutError and the worker goroutine running fn is abandoned: it keeps
// running to completion in the background and its eventual result is
// discarded. Abandonment (rather than killing) is deliberate — simulator
// inner loops have no cancellation points, but every campaign run is
// bounded by a cycle budget (inject.HangFactor × nominal), so an abandoned
// evaluation always terminates eventually and leaks no goroutine forever.
//
// d <= 0 disables the deadline: fn runs inline (still panic-isolated).
func WithWatchdog[T any](d time.Duration, fn func() (T, error)) (T, error) {
	if d <= 0 {
		return Safe(fn)
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := Safe(fn)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, &TimeoutError{After: d.String()}
	}
}
