package resilient

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Exit statuses of signal-aware commands. ExitResumable is distinct from
// plain failure (1) and usage errors (2) so wrappers and schedulers can
// tell "interrupted mid-sweep, state flushed, rerun to resume" from "the
// sweep itself is broken".
const (
	// ExitResumable: interrupted by SIGINT/SIGTERM after draining in-flight
	// work and flushing resumable state; rerunning the same command resumes.
	ExitResumable = 3
	// ExitHardKill: the second-signal escape hatch fired — the process
	// exited immediately without draining (128+SIGINT by convention).
	ExitHardKill = 130
)

// exitFn is swapped by tests; production code exits the process.
var exitFn = os.Exit

// WithSignals returns a context canceled on the first SIGINT/SIGTERM, so
// long-running work can drain in-flight cells and flush state. A second
// signal is the escape hatch for operators who meant it: the process exits
// immediately with ExitHardKill, no draining. The returned stop function
// unregisters the handlers (call it once the guarded work is done, before
// any interactive teardown).
func WithSignals(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "\nreceived %v: draining in-flight work and flushing state (send again to exit immediately)\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "second %v: hard exit without draining\n", sig)
			exitFn(ExitHardKill)
		case <-done:
		}
	}()
	return ctx, stop
}
