// Package resilient is the fault-tolerance layer around campaign and sweep
// execution. A framework whose subject is graceful tolerance of rare faults
// should itself tolerate them: one panicking worker, one hung variant
// program, or one corrupt cache entry must degrade a multi-hour exploration,
// not kill it. The package provides four mechanisms, composed by
// internal/sweep and the long-running commands:
//
//   - isolation:  Safe runs a function under recover(), converting panics
//     into classified errors carrying the goroutine stack;
//   - deadlines:  WithWatchdog bounds a computation with a wall-clock
//     deadline, abandoning (not killing) the runaway goroutine;
//   - retry:      Policy/Do re-run transiently failing work with
//     exponential backoff and deterministic jitter, while permanent
//     failures (panics, invalid configs) fail immediately;
//   - exclusion:  Acquire/Release guard shared mutable files (sweep state)
//     with a pid lock file including stale-lock detection, and
//     WithSignals turns SIGINT/SIGTERM into context cancellation with a
//     second-signal hard-exit escape hatch.
package resilient

import (
	"errors"
	"fmt"
	"io/fs"
	"runtime/debug"
)

// PanicError is a recovered panic converted into an error: the panic value
// plus the goroutine stack at the recovery point. Panics are classified as
// permanent — retrying a deterministic crash only repeats it.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// TimeoutError reports a computation abandoned by WithWatchdog after its
// deadline expired. Timeouts are classified as transient: a cell that hung
// on scheduler pathology or cache contention may well complete on retry.
type TimeoutError struct {
	After string // rendered deadline, e.g. "30s"
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("watchdog: no result within %s (evaluation abandoned)", e.After)
}

// Timeout implements the conventional net.Error-style probe.
func (e *TimeoutError) Timeout() bool { return true }

// Safe runs fn under panic isolation: a panic inside fn is recovered and
// returned as a *PanicError with the stack captured, instead of unwinding
// the caller's goroutine (and, in a worker pool, the whole process).
func Safe[T any](fn func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Transient reports whether err is worth retrying. Panics and canceled
// contexts are permanent; watchdog timeouts, explicit Transient() errors,
// and filesystem IO failures (cache and state files live on disks that
// hiccup) are transient.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return false
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return true
	}
	var tp interface{ Transient() bool }
	if errors.As(err, &tp) {
		return tp.Transient()
	}
	var pathErr *fs.PathError
	return errors.As(err, &pathErr)
}

// KindOf names the failure class of err for reports and observers:
// "panic", "timeout", "io", or "error".
func KindOf(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return "timeout"
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) {
		return "io"
	}
	return "error"
}

// StackOf returns the captured goroutine stack when err wraps a recovered
// panic, and "" otherwise.
func StackOf(err error) string {
	var pe *PanicError
	if errors.As(err, &pe) {
		return string(pe.Stack)
	}
	return ""
}
