package resilient

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
	"time"
)

func TestSafeRecoversPanic(t *testing.T) {
	_, err := Safe(func() (int, error) {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "resilient_test.go") {
		t.Fatalf("stack does not point at the panic site:\n%s", pe.Stack)
	}
	if StackOf(err) == "" {
		t.Fatal("StackOf returned empty for a panic error")
	}
}

func TestSafePassesThrough(t *testing.T) {
	v, err := Safe(func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Fatalf("got (%d, %v)", v, err)
	}
	want := errors.New("plain")
	_, err = Safe(func() (int, error) { return 0, want })
	if err != want {
		t.Fatalf("err = %v, want pass-through", err)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
		kind string
	}{
		{nil, false, ""},
		{&PanicError{Value: "x"}, false, "panic"},
		{&TimeoutError{After: "1s"}, true, "timeout"},
		{&fs.PathError{Op: "open", Path: "f", Err: errors.New("io")}, true, "io"},
		{fmt.Errorf("wrapped: %w", &TimeoutError{After: "2s"}), true, "timeout"},
		{errors.New("deterministic eval error"), false, "error"},
		{context.Canceled, false, "error"},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
		if got := KindOf(tc.err); got != tc.kind {
			t.Errorf("KindOf(%v) = %q, want %q", tc.err, got, tc.kind)
		}
	}
}

func TestWithWatchdogTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	_, err := WithWatchdog(20*time.Millisecond, func() (int, error) {
		<-release // hung evaluation
		return 1, nil
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %s to trip", elapsed)
	}
	if !Transient(err) {
		t.Fatal("watchdog timeout must classify as transient")
	}
}

func TestWithWatchdogCompletes(t *testing.T) {
	v, err := WithWatchdog(time.Minute, func() (string, error) { return "ok", nil })
	if v != "ok" || err != nil {
		t.Fatalf("got (%q, %v)", v, err)
	}
	// Disabled deadline still isolates panics.
	_, err = WithWatchdog(0, func() (string, error) { panic("inline") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	sleeps := 0
	p := Policy{
		MaxAttempts: 4,
		Seed:        7,
		Sleep:       func(context.Context, time.Duration) { sleeps++ },
	}
	// Transient failure resolving on the third attempt.
	calls := 0
	v, attempts, err := Do(context.Background(), p, func() (int, error) {
		calls++
		if calls < 3 {
			return 0, &TimeoutError{After: "1ms"}
		}
		return 99, nil
	})
	if err != nil || v != 99 || attempts != 3 || sleeps != 2 {
		t.Fatalf("got v=%d attempts=%d sleeps=%d err=%v", v, attempts, sleeps, err)
	}

	// Permanent failure (panic) returns immediately, budget untouched.
	calls = 0
	_, attempts, err = Do(context.Background(), p, func() (int, error) {
		calls++
		panic("deterministic crash")
	})
	if calls != 1 || attempts != 1 {
		t.Fatalf("panic retried: calls=%d attempts=%d", calls, attempts)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}

	// Budget exhaustion surfaces the last transient error with its count.
	calls = 0
	_, attempts, err = Do(context.Background(), p, func() (int, error) {
		calls++
		return 0, &TimeoutError{After: "1ms"}
	})
	if calls != 4 || attempts != 4 {
		t.Fatalf("budget: calls=%d attempts=%d", calls, attempts)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
}

func TestDoStopsOnCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, attempts, err := Do(ctx, Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) {}},
		func() (int, error) {
			calls++
			return 0, &TimeoutError{After: "1ms"}
		})
	if calls != 1 || attempts != 1 {
		t.Fatalf("canceled ctx still retried: calls=%d attempts=%d", calls, attempts)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want the transient eval error", err)
	}
}

func TestBackoffDeterministicBoundedGrowing(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Seed: 42}
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := p.Backoff(attempt)
		d2 := p.Backoff(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter nondeterministic (%s vs %s)", attempt, d1, d2)
		}
		ceil := time.Duration(float64(10*time.Millisecond) * float64(int(1)<<(attempt-1)))
		if ceil > time.Second {
			ceil = time.Second
		}
		if d1 < ceil/2 || d1 >= ceil {
			t.Fatalf("attempt %d: delay %s outside [%s, %s)", attempt, d1, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Fatalf("backoff ceiling shrank")
		}
		prevCeil = ceil
	}
	// Different seeds yield different jitter (spread, not lockstep).
	q := p
	q.Seed = 43
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if p.Backoff(attempt) == q.Backoff(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("two seeds produced identical jitter streams")
	}
}
