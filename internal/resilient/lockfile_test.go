package resilient

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestLockExcludesSecondHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json.lock")
	l1, err := Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Acquire(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire: err = %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := Acquire(path)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
}

func TestLockStealsStaleLock(t *testing.T) {
	dir := t.TempDir()

	// Dead pid: pick a huge pid that cannot exist.
	dead := filepath.Join(dir, "dead.lock")
	if err := os.WriteFile(dead, []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Acquire(dead)
	if err != nil {
		t.Fatalf("stale (dead pid) lock not stolen: %v", err)
	}
	l.Release()

	// Corrupt content: unparseable pid is stale too.
	garbage := filepath.Join(dir, "garbage.lock")
	if err := os.WriteFile(garbage, []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Acquire(garbage)
	if err != nil {
		t.Fatalf("corrupt lock not stolen: %v", err)
	}
	l.Release()
}

func TestLockFileRecordsPid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	l, err := Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pid, ok := parseLockPid(data)
	if !ok || pid != os.Getpid() {
		t.Fatalf("lock body %q, want our pid %d", data, os.Getpid())
	}
	if !processAlive(pid) {
		t.Fatal("processAlive(self) = false")
	}
}

func TestWithSignalsCancelsOnFirstSignal(t *testing.T) {
	ctx, stop := WithSignals(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled after SIGINT")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

func TestWithSignalsSecondSignalHardExits(t *testing.T) {
	exited := make(chan int, 1)
	old := exitFn
	exitFn = func(code int) {
		exited <- code
		select {} // emulate os.Exit never returning (goroutine parks)
	}
	defer func() { exitFn = old }()

	ctx, stop := WithSignals(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	<-ctx.Done()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != ExitHardKill {
			t.Fatalf("hard exit code = %d, want %d", code, ExitHardKill)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not trigger the hard-exit path")
	}
}
