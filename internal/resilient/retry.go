package resilient

import (
	"context"
	"math"
	"time"
)

// Policy tunes retry behavior for Do. The zero value evaluates once with
// no retries; setting MaxAttempts > 1 enables exponential backoff with
// deterministic jitter between attempts.
type Policy struct {
	// MaxAttempts is the total evaluation budget (first try included);
	// values below 1 behave as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 10s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Seed makes the jitter stream deterministic: the same (Seed, attempt)
	// always yields the same delay, so retrying sweeps stay reproducible.
	Seed uint64
	// OnRetry, when non-nil, observes each retry decision before the
	// backoff sleep: the attempt that failed, its error, and the delay.
	OnRetry func(attempt int, err error, delay time.Duration)
	// Sleep overrides the backoff sleep (tests); nil sleeps on a timer,
	// returning early if ctx is canceled.
	Sleep func(ctx context.Context, d time.Duration)
}

// splitmix64 is the jitter hash (same mixer the injection engine uses for
// deterministic per-sample randomness).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Backoff returns the jittered delay before attempt+1 given that `attempt`
// (1-based) just failed: min(MaxDelay, BaseDelay·Multiplier^(attempt-1)),
// then scaled into [d/2, d) by the deterministic jitter stream so
// concurrent retriers spread out instead of thundering together.
func (p Policy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 10 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(maxD) {
		d = float64(maxD)
	}
	frac := float64(splitmix64(p.Seed^uint64(attempt)*0x9E3779B97F4A7C15)>>11) / float64(uint64(1)<<53)
	return time.Duration(d/2 + d/2*frac)
}

// Do runs fn under panic isolation and the retry policy. Transient
// failures (see Transient) are retried with backoff until the attempt
// budget is spent or ctx is canceled; permanent failures — panics,
// deterministic evaluation errors — return immediately. It reports the
// final value, the number of attempts made, and the last error.
func Do[T any](ctx context.Context, p Policy, fn func() (T, error)) (T, int, error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var zero T
	for attempt := 1; ; attempt++ {
		v, err := Safe(fn)
		if err == nil {
			return v, attempt, nil
		}
		if attempt >= maxAttempts || !Transient(err) || ctx.Err() != nil {
			return zero, attempt, err
		}
		delay := p.Backoff(attempt)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if p.Sleep != nil {
			p.Sleep(ctx, delay)
		} else {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return zero, attempt, err
			}
		}
	}
}
