// Boundary-bit coverage for the space accessors on the two real core
// spaces. The external test package lets this file import the cores (which
// themselves import ff) without a cycle.
package ff_test

import (
	"testing"

	"clear/internal/ff"
	"clear/internal/ino"
	"clear/internal/ooo"
)

func spaces() map[string]*ff.Space {
	return map[string]*ff.Space{
		"InO": ino.Space(),
		"OoO": ooo.Space(),
	}
}

// TestNameOfBoundaryBits checks the first and last bit of every field
// resolve to that field's name and unit — the sort.Search in NameOf is
// exactly wrong-by-one territory.
func TestNameOfBoundaryBits(t *testing.T) {
	for label, s := range spaces() {
		for _, name := range s.FieldNames() {
			bits := s.BitsOf(name)
			if len(bits) == 0 {
				t.Fatalf("%s: BitsOf(%q) empty", label, name)
			}
			for _, bit := range []int{bits[0], bits[len(bits)-1]} {
				got, unit := s.NameOf(bit)
				if got != name {
					t.Fatalf("%s: NameOf(%d) = %q, want %q", label, bit, got, name)
				}
				if unit == "" || s.UnitOf(bit) != unit {
					t.Fatalf("%s: unit of bit %d inconsistent (%q vs %q)", label, bit, unit, s.UnitOf(bit))
				}
			}
			// Fields tile the space contiguously: the bit list must be the
			// dense range [bits[0], bits[0]+len).
			for i, b := range bits {
				if b != bits[0]+i {
					t.Fatalf("%s: BitsOf(%q) not contiguous at %d", label, name, i)
				}
			}
		}
	}
}

// TestSpaceEdges checks the very first and very last bit of each space and
// the out-of-range behavior of every accessor.
func TestSpaceEdges(t *testing.T) {
	for label, s := range spaces() {
		n := s.NumBits()
		if n == 0 {
			t.Fatalf("%s: empty space", label)
		}
		if name, unit := s.NameOf(0); name == "" || unit == "" {
			t.Fatalf("%s: NameOf(0) = (%q, %q)", label, name, unit)
		}
		if name, unit := s.NameOf(n - 1); name == "" || unit == "" {
			t.Fatalf("%s: NameOf(%d) = (%q, %q)", label, n-1, name, unit)
		}
		for _, bad := range []int{-1, n, n + 1000} {
			if name, unit := s.NameOf(bad); name != "" || unit != "" {
				t.Fatalf("%s: NameOf(%d) = (%q, %q), want empty", label, bad, name, unit)
			}
			if u := s.UnitOf(bad); u != "" {
				t.Fatalf("%s: UnitOf(%d) = %q, want empty", label, bad, u)
			}
		}
		if bits := s.BitsOf("no-such-field"); bits != nil {
			t.Fatalf("%s: BitsOf(no-such-field) = %v, want nil", label, bits)
		}
		// Every unit reported by Units() must own at least one bit.
		counts := map[string]int{}
		for bit := 0; bit < n; bit++ {
			counts[s.UnitOf(bit)]++
		}
		for _, u := range s.Units() {
			if counts[u] == 0 {
				t.Fatalf("%s: unit %q owns no bits", label, u)
			}
		}
	}
}
