// Package ff models processor state at flip-flop granularity.
//
// Every piece of sequential state in a simulated core (pipeline registers,
// status registers, microarchitectural tables built from flip-flops) is
// allocated as a named Field inside a Space. A Field is a contiguous run of
// bits in a flat bit array, so a soft error is exactly "flip bit i of the
// space" — the same abstraction the CLEAR paper uses for its RTL-level
// injection campaigns.
//
// The Space also carries per-bit protection attributes (circuit hardening,
// parity group membership, EDS) so resilience techniques can be applied at
// individual flip-flop granularity, mirroring the paper's selective
// circuit/logic-level insertion.
package ff

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Space is a registry of named flip-flop fields plus their backing bits.
// A Space is built once per core design (the "layout" of sequential state);
// per-simulation bit values live in a State obtained from NewState.
type Space struct {
	fields []fieldInfo
	byName map[string]int
	nbits  int
	// frozen flips exactly once, at the first NewState/Freeze; it is
	// atomic because shared spaces hand out states from many goroutines.
	frozen atomic.Bool
}

type fieldInfo struct {
	name  string
	unit  string // functional unit / structure the field belongs to
	off   int
	width int
}

// NewSpace returns an empty flip-flop space.
func NewSpace() *Space {
	return &Space{byName: make(map[string]int)}
}

// Field identifies a named run of bits inside a Space.
type Field struct {
	off   int
	width int
}

// Alloc registers a field of the given width (1..64 bits) under name,
// belonging to the named functional unit, and returns its handle.
// Alloc panics on duplicate names, invalid widths, or if the space is
// frozen: core construction is programmer-controlled, so these are bugs.
func (s *Space) Alloc(unit, name string, width int) Field {
	if s.frozen.Load() {
		panic("ff: Alloc after Freeze")
	}
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("ff: field %q has invalid width %d", name, width))
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("ff: duplicate field %q", name))
	}
	f := Field{off: s.nbits, width: width}
	s.byName[name] = len(s.fields)
	s.fields = append(s.fields, fieldInfo{name: name, unit: unit, off: s.nbits, width: width})
	s.nbits += width
	return f
}

// Freeze marks the space complete; further Alloc calls panic.
func (s *Space) Freeze() { s.frozen.Store(true) }

// NumBits reports the total number of flip-flops (bits) in the space.
func (s *Space) NumBits() int { return s.nbits }

// NumFields reports the number of named fields.
func (s *Space) NumFields() int { return len(s.fields) }

// FieldNames returns all field names in allocation order.
func (s *Space) FieldNames() []string {
	names := make([]string, len(s.fields))
	for i, f := range s.fields {
		names[i] = f.name
	}
	return names
}

// Lookup returns the field registered under name.
func (s *Space) Lookup(name string) (Field, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Field{}, false
	}
	return Field{off: s.fields[i].off, width: s.fields[i].width}, true
}

// NameOf returns the name and functional unit of the field containing bit.
func (s *Space) NameOf(bit int) (name, unit string) {
	i := sort.Search(len(s.fields), func(i int) bool {
		return s.fields[i].off+s.fields[i].width > bit
	})
	if i >= len(s.fields) || bit < s.fields[i].off {
		return "", ""
	}
	return s.fields[i].name, s.fields[i].unit
}

// UnitOf returns the functional unit of the field containing bit.
func (s *Space) UnitOf(bit int) string {
	_, u := s.NameOf(bit)
	return u
}

// Units returns the distinct functional-unit names, sorted.
func (s *Space) Units() []string {
	seen := make(map[string]bool)
	var units []string
	for _, f := range s.fields {
		if !seen[f.unit] {
			seen[f.unit] = true
			units = append(units, f.unit)
		}
	}
	sort.Strings(units)
	return units
}

// BitsOf returns the bit indices covered by the named field.
func (s *Space) BitsOf(name string) []int {
	f, ok := s.Lookup(name)
	if !ok {
		return nil
	}
	bits := make([]int, f.width)
	for i := range bits {
		bits[i] = f.off + i
	}
	return bits
}

// Width returns a field's width in bits.
func (f Field) Width() int { return f.width }

// Offset returns a field's first bit index.
func (f Field) Offset() int { return f.off }

// State holds the bit values for one simulation instance of a Space.
type State struct {
	words []uint64
}

// NewState returns an all-zero state sized for the space. The space is
// frozen as a side effect: states must never be outlived by new fields.
func (s *Space) NewState() *State {
	s.frozen.Store(true)
	return &State{words: make([]uint64, (s.nbits+63)/64)}
}

// Reset zeroes all bits.
func (st *State) Reset() {
	for i := range st.words {
		st.words[i] = 0
	}
}

// CopyFrom copies the contents of src (same space) into st.
func (st *State) CopyFrom(src *State) {
	copy(st.words, src.words)
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	w := make([]uint64, len(st.words))
	copy(w, st.words)
	return &State{words: w}
}

// Equal reports whether two states hold identical bits.
func (st *State) Equal(other *State) bool {
	if len(st.words) != len(other.words) {
		return false
	}
	for i, w := range st.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// FlipBit inverts a single flip-flop: the soft-error primitive.
func (st *State) FlipBit(bit int) {
	st.words[bit>>6] ^= 1 << (uint(bit) & 63)
}

// Bit reads one bit.
func (st *State) Bit(bit int) uint64 {
	return (st.words[bit>>6] >> (uint(bit) & 63)) & 1
}

// Get reads a field's value.
func (f Field) Get(st *State) uint64 {
	lo := f.off >> 6
	sh := uint(f.off) & 63
	var v uint64
	if sh+uint(f.width) <= 64 {
		v = st.words[lo] >> sh
	} else {
		v = st.words[lo]>>sh | st.words[lo+1]<<(64-sh)
	}
	if f.width == 64 {
		return v
	}
	return v & (1<<uint(f.width) - 1)
}

// Set writes a field's value (truncated to the field width).
func (f Field) Set(st *State, v uint64) {
	var mask uint64 = 1<<uint(f.width) - 1
	if f.width == 64 {
		mask = ^uint64(0)
	}
	v &= mask
	lo := f.off >> 6
	sh := uint(f.off) & 63
	st.words[lo] = st.words[lo]&^(mask<<sh) | v<<sh
	if sh+uint(f.width) > 64 {
		hi := lo + 1
		rem := uint(f.width) - (64 - sh)
		hiMask := uint64(1)<<rem - 1
		st.words[hi] = st.words[hi]&^hiMask | v>>(64-sh)
	}
}

// GetSigned reads a field and sign-extends it to 64 bits.
func (f Field) GetSigned(st *State) int64 {
	v := f.Get(st)
	if f.width < 64 && v&(1<<uint(f.width-1)) != 0 {
		v |= ^uint64(0) << uint(f.width)
	}
	return int64(v)
}
