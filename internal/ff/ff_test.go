package ff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAndLookup(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("decode", "d.inst", 32)
	b := s.Alloc("execute", "e.y", 32)
	c := s.Alloc("write", "w.s.icc", 4)
	if s.NumBits() != 68 {
		t.Fatalf("NumBits = %d, want 68", s.NumBits())
	}
	if s.NumFields() != 3 {
		t.Fatalf("NumFields = %d, want 3", s.NumFields())
	}
	if a.Offset() != 0 || b.Offset() != 32 || c.Offset() != 64 {
		t.Fatalf("offsets wrong: %d %d %d", a.Offset(), b.Offset(), c.Offset())
	}
	f, ok := s.Lookup("e.y")
	if !ok || f.Offset() != 32 || f.Width() != 32 {
		t.Fatalf("Lookup(e.y) = %+v, %v", f, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup of missing field succeeded")
	}
}

func TestAllocPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Space)
	}{
		{"duplicate", func(s *Space) { s.Alloc("u", "x", 1); s.Alloc("u", "x", 1) }},
		{"zero width", func(s *Space) { s.Alloc("u", "x", 0) }},
		{"too wide", func(s *Space) { s.Alloc("u", "x", 65) }},
		{"after freeze", func(s *Space) { s.Freeze(); s.Alloc("u", "x", 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f(NewSpace())
		})
	}
}

func TestNameOf(t *testing.T) {
	s := NewSpace()
	s.Alloc("decode", "d.inst", 32)
	s.Alloc("execute", "e.y", 32)
	name, unit := s.NameOf(0)
	if name != "d.inst" || unit != "decode" {
		t.Fatalf("NameOf(0) = %q/%q", name, unit)
	}
	name, unit = s.NameOf(31)
	if name != "d.inst" || unit != "decode" {
		t.Fatalf("NameOf(31) = %q/%q", name, unit)
	}
	name, _ = s.NameOf(32)
	if name != "e.y" {
		t.Fatalf("NameOf(32) = %q", name)
	}
	if u := s.UnitOf(63); u != "execute" {
		t.Fatalf("UnitOf(63) = %q", u)
	}
}

func TestUnitsAndBitsOf(t *testing.T) {
	s := NewSpace()
	s.Alloc("b", "x", 3)
	s.Alloc("a", "y", 2)
	s.Alloc("b", "z", 1)
	units := s.Units()
	if len(units) != 2 || units[0] != "a" || units[1] != "b" {
		t.Fatalf("Units = %v", units)
	}
	bits := s.BitsOf("y")
	if len(bits) != 2 || bits[0] != 3 || bits[1] != 4 {
		t.Fatalf("BitsOf(y) = %v", bits)
	}
	if s.BitsOf("missing") != nil {
		t.Fatal("BitsOf(missing) should be nil")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	// Fields straddling word boundaries must round-trip correctly.
	s := NewSpace()
	var fields []Field
	widths := []int{1, 7, 32, 64, 5, 33, 64, 13, 64, 3}
	for i, w := range widths {
		fields = append(fields, s.Alloc("u", string(rune('a'+i)), w))
	}
	st := s.NewState()
	rng := rand.New(rand.NewSource(1))
	want := make([]uint64, len(fields))
	for iter := 0; iter < 200; iter++ {
		i := rng.Intn(len(fields))
		v := rng.Uint64()
		fields[i].Set(st, v)
		if fields[i].Width() < 64 {
			v &= 1<<uint(fields[i].Width()) - 1
		}
		want[i] = v
		for j, f := range fields {
			if got := f.Get(st); got != want[j] {
				t.Fatalf("iter %d: field %d = %#x, want %#x", iter, j, got, want[j])
			}
		}
	}
}

func TestGetSigned(t *testing.T) {
	s := NewSpace()
	f := s.Alloc("u", "x", 16)
	g := s.Alloc("u", "y", 64)
	st := s.NewState()
	f.Set(st, 0xFFFF)
	if got := f.GetSigned(st); got != -1 {
		t.Fatalf("GetSigned(0xFFFF) = %d, want -1", got)
	}
	f.Set(st, 0x7FFF)
	if got := f.GetSigned(st); got != 32767 {
		t.Fatalf("GetSigned(0x7FFF) = %d, want 32767", got)
	}
	g.Set(st, ^uint64(0))
	if got := g.GetSigned(st); got != -1 {
		t.Fatalf("64-bit GetSigned = %d, want -1", got)
	}
}

func TestFlipBit(t *testing.T) {
	s := NewSpace()
	f := s.Alloc("u", "x", 32)
	st := s.NewState()
	f.Set(st, 0)
	st.FlipBit(f.Offset() + 5)
	if got := f.Get(st); got != 32 {
		t.Fatalf("after flip bit 5: %d, want 32", got)
	}
	st.FlipBit(f.Offset() + 5)
	if got := f.Get(st); got != 0 {
		t.Fatalf("double flip should restore: got %d", got)
	}
}

func TestStateCloneEqualReset(t *testing.T) {
	s := NewSpace()
	f := s.Alloc("u", "x", 40)
	st := s.NewState()
	f.Set(st, 0xABCDE12345)
	cl := st.Clone()
	if !st.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.FlipBit(3)
	if st.Equal(cl) {
		t.Fatal("flip not detected by Equal")
	}
	other := s.NewState()
	other.CopyFrom(st)
	if !st.Equal(other) {
		t.Fatal("CopyFrom not equal")
	}
	st.Reset()
	if f.Get(st) != 0 {
		t.Fatal("Reset did not zero")
	}
}

// Property: a double flip of any bit is the identity, and a single flip
// changes exactly the targeted field.
func TestFlipProperty(t *testing.T) {
	s := NewSpace()
	var fields []Field
	for i := 0; i < 10; i++ {
		fields = append(fields, s.Alloc("u", string(rune('a'+i)), 17))
	}
	prop := func(vals [10]uint16, bitSel uint16) bool {
		st := s.NewState()
		for i, f := range fields {
			f.Set(st, uint64(vals[i])|uint64(vals[i]&1)<<16)
		}
		before := st.Clone()
		bit := int(bitSel) % s.NumBits()
		st.FlipBit(bit)
		// Exactly one field differs, and it is the one containing bit.
		name, _ := s.NameOf(bit)
		diffs := 0
		for i, f := range fields {
			if f.Get(st) != f.Get(before) {
				diffs++
				fname := string(rune('a' + i))
				if fname != name {
					return false
				}
			}
		}
		if diffs != 1 {
			return false
		}
		st.FlipBit(bit)
		return st.Equal(before)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFieldGetSet(b *testing.B) {
	s := NewSpace()
	f := s.Alloc("u", "x", 33) // straddles a word boundary after padding
	s.Alloc("u", "pad", 40)
	g := s.Alloc("u", "y", 32)
	st := s.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Set(st, uint64(i))
		g.Set(st, f.Get(st))
	}
}
