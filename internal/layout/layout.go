// Package layout is the physical-design model: it assigns every flip-flop a
// placement (in units of one flip-flop length), a timing slack (in gate
// delays), and enforces the SEMU minimum-spacing constraint for parity
// groups. It substitutes for the paper's Synopsys IC Compiler place-and-
// route flow; its outputs are the spacing distributions (Tables 5 and 6)
// and the slack data that drives pipelined-vs-unpipelined parity selection
// (Fig. 3) and EDS hold-buffer insertion.
package layout

import (
	"math"

	"clear/internal/ff"
)

// Profile captures core-specific placement statistics: how tightly the
// synthesis flow packs flip-flops, and which functional units are timing
// critical. The two profiles are calibrated so the baseline
// nearest-neighbor distributions resemble the paper's Table 5.
type Profile struct {
	// GapWeights is the discrete distribution of extra horizontal gaps
	// (in FF lengths: +0, +0.7, +1.7, +2.7, +4.2) inserted after a cell.
	GapWeights [5]int
	// TightUnits lists functional units whose flip-flops sit on critical
	// paths (small timing slack).
	TightUnits map[string]bool
	// SlackBase and SlackSpread parameterize the per-FF slack model, in
	// gate delays.
	SlackBase, SlackSpread int
	// TightBase and TightSpread apply to flip-flops in TightUnits.
	TightBase, TightSpread int
}

// InOProfile models the small, densely packed in-order core.
func InOProfile() Profile {
	return Profile{
		GapWeights:  [5]int{41, 35, 15, 6, 3},
		TightUnits:  map[string]bool{"execute": true},
		SlackBase:   6,
		SlackSpread: 24,
		TightBase:   2,
		TightSpread: 7,
	}
}

// OoOProfile models the larger out-of-order core, whose big regular
// structures leave more whitespace between cells.
func OoOProfile() Profile {
	return Profile{
		GapWeights:  [5]int{24, 38, 24, 8, 6},
		TightUnits:  map[string]bool{"sched": true, "rename": true, "branchunit": true},
		SlackBase:   6,
		SlackSpread: 28,
		TightBase:   2,
		TightSpread: 8,
	}
}

// basePitch is the horizontal pitch between abutting flip-flops, in FF
// lengths (abutting cells are closer than one length center-to-center of
// the paper's "one flip-flop length" SEMU radius).
const basePitch = 0.8

// SEMURadius is the single-event multiple-upset strike radius in FF
// lengths: one particle upsets every flip-flop within one FF length of the
// struck cell (the paper's Table 5/6 spacing constraint exists to push
// same-parity-group members beyond this radius).
const SEMURadius = 1.0

// rowPitch is the vertical distance between placement rows.
const rowPitch = 1.4

// unitMargin separates functional-unit placement blocks.
const unitMargin = 5.0

// Placement is the physical-design view of a flip-flop space.
type Placement struct {
	Space *ff.Space
	X, Y  []float64
	// Slack is the per-flip-flop timing slack in gate delays (one 2-input
	// XOR ≈ 1 gate delay).
	Slack []int
}

func hash2(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	return x
}

// Place produces the baseline (unconstrained) placement of a core's
// flip-flops under the given profile.
func Place(space *ff.Space, prof Profile) *Placement {
	n := space.NumBits()
	p := &Placement{
		Space: space,
		X:     make([]float64, n),
		Y:     make([]float64, n),
		Slack: make([]int, n),
	}
	totalW := 0
	for _, w := range prof.GapWeights {
		totalW += w
	}
	gapSizes := [5]float64{0, 0.7, 1.7, 2.7, 4.2}

	// Group bits by functional unit, preserving allocation order.
	unitOf := make([]string, n)
	for bit := 0; bit < n; bit++ {
		unitOf[bit] = space.UnitOf(bit)
	}
	var unitOrder []string
	unitBits := map[string][]int{}
	for bit := 0; bit < n; bit++ {
		u := unitOf[bit]
		if _, seen := unitBits[u]; !seen {
			unitOrder = append(unitOrder, u)
		}
		unitBits[u] = append(unitBits[u], bit)
	}

	originX := 0.0
	for _, u := range unitOrder {
		bits := unitBits[u]
		cols := int(math.Ceil(math.Sqrt(float64(len(bits))) * 1.3))
		if cols < 4 {
			cols = 4
		}
		x, row := 0.0, 0
		col := 0
		for _, bit := range bits {
			h := hash2(uint64(bit), 0xA11CE)
			// extra gap from the profile distribution
			pick := int(h % uint64(totalW))
			gap := 0.0
			for gi, w := range prof.GapWeights {
				if pick < w {
					gap = gapSizes[gi]
					break
				}
				pick -= w
			}
			p.X[bit] = originX + x
			p.Y[bit] = float64(row) * rowPitch
			x += basePitch + gap
			col++
			if col >= cols {
				col = 0
				x = 0
				row++
			}
			// timing slack
			hs := hash2(uint64(bit), 0x51ACC)
			if prof.TightUnits[u] {
				p.Slack[bit] = prof.TightBase + int(hs%uint64(prof.TightSpread))
			} else {
				p.Slack[bit] = prof.SlackBase + int(hs%uint64(prof.SlackSpread))
			}
		}
		width := float64(cols)*basePitch*1.6 + unitMargin
		originX += width
	}
	return p
}

// NearestNeighbor returns, per flip-flop, the distance to its nearest
// neighbor in FF lengths.
func (p *Placement) NearestNeighbor() []float64 {
	n := len(p.X)
	out := make([]float64, n)
	// spatial hash with cell size 5
	const cell = 5.0
	type key struct{ cx, cy int }
	grid := map[key][]int{}
	for i := 0; i < n; i++ {
		k := key{int(p.X[i] / cell), int(p.Y[i] / cell)}
		grid[k] = append(grid[k], i)
	}
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		cx, cy := int(p.X[i]/cell), int(p.Y[i]/cell)
		for r := 0; ; r++ {
			// scan the ring of cells at Chebyshev radius r
			found := false
			for dx := -r; dx <= r; dx++ {
				for dy := -r; dy <= r; dy++ {
					if r > 0 && abs(dx) != r && abs(dy) != r {
						continue
					}
					for _, j := range grid[key{cx + dx, cy + dy}] {
						if j == i {
							continue
						}
						found = true
						d := math.Hypot(p.X[i]-p.X[j], p.Y[i]-p.Y[j])
						if d < best {
							best = d
						}
					}
				}
			}
			// Stop once the ring is beyond the best distance found.
			if best < float64(r)*cell {
				break
			}
			if r > 0 && !found && best < math.Inf(1) {
				break
			}
			if r > 40 {
				break
			}
		}
		out[i] = best
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SpacingBuckets are the Table 5/6 histogram bucket labels.
var SpacingBuckets = []string{"< 1", "1 - 2", "2 - 3", "3 - 4", "> 4"}

// Histogram buckets distances into the paper's Table 5/6 bins, returning
// fractions.
func Histogram(d []float64) [5]float64 {
	var counts [5]int
	for _, v := range d {
		switch {
		case v < 1:
			counts[0]++
		case v < 2:
			counts[1]++
		case v < 3:
			counts[2]++
		case v < 4:
			counts[3]++
		default:
			counts[4]++
		}
	}
	var out [5]float64
	if len(d) == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(len(d))
	}
	return out
}

// ParityPlacement re-places the flip-flops of each parity group under the
// SEMU minimum-spacing constraint (at least one FF length between members
// of the same group) and returns, for every grouped flip-flop, the distance
// to the nearest member of its own group. Interleaving members of different
// groups (as the layout constraint does) naturally provides the spacing.
func (p *Placement) ParityPlacement(groups [][]int) []float64 {
	var out []float64
	// Collect groups by functional unit to model interleaving: groups
	// placed in the same unit region share rows, so the achievable
	// same-group stride is the number of co-located groups (minimum 2,
	// enforced by the placement constraint).
	unitGroups := map[string]int{}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		u := p.Space.UnitOf(g[0])
		unitGroups[u]++
	}
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		u := p.Space.UnitOf(g[0])
		stride := unitGroups[u]
		if stride < 2 {
			stride = 2
		}
		// same-group members sit stride slots apart along a row
		sameGroupGap := float64(stride) * basePitch
		if sameGroupGap < 1.05 {
			sameGroupGap = 1.05 // explicit min-spacing fixup
		}
		// members near row ends wrap to the next row: slightly larger
		for i := range g {
			d := sameGroupGap
			if i%7 == 6 { // row-wrap member: diagonal distance
				d = math.Hypot(sameGroupGap, rowPitch)
			}
			out = append(out, d)
		}
	}
	return out
}

// MeanSlack reports the average timing slack over a set of bits.
func (p *Placement) MeanSlack(bits []int) float64 {
	if len(bits) == 0 {
		return 0
	}
	s := 0
	for _, b := range bits {
		s += p.Slack[b]
	}
	return float64(s) / float64(len(bits))
}

// AdjacentPairs returns flip-flop pairs within the SEMU strike radius (one
// FF length): the pairs a single particle can upset together in this
// placement (paper Table 5's "vulnerable to a SEMU" population).
func (p *Placement) AdjacentPairs() [][2]int {
	var pairs [][2]int
	for i, nbrs := range p.NeighborLists(SEMURadius) {
		for _, j := range nbrs {
			if j > i {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// WithinRadius returns the flip-flops strictly within r FF lengths of bit
// (bit itself excluded), in ascending bit order: the cluster one particle
// strike at bit reaches. Out-of-range bits return nil.
func (p *Placement) WithinRadius(bit int, r float64) []int {
	if bit < 0 || bit >= len(p.X) {
		return nil
	}
	var out []int
	r2 := r * r
	for j := range p.X {
		if j == bit {
			continue
		}
		dx, dy := p.X[bit]-p.X[j], p.Y[bit]-p.Y[j]
		if dx*dx+dy*dy < r2 {
			out = append(out, j)
		}
	}
	return out
}

// NeighborLists returns, for every flip-flop, the bits strictly within r FF
// lengths of it (self excluded) in ascending bit order — WithinRadius for
// the whole space in one grid pass. The lists are symmetric: j appears in
// lists[i] iff i appears in lists[j].
func (p *Placement) NeighborLists(r float64) [][]int {
	n := len(p.X)
	cell := r
	if cell < 1 {
		cell = 1
	}
	type key struct{ cx, cy int }
	grid := map[key][]int{}
	for i := 0; i < n; i++ {
		k := key{int(p.X[i] / cell), int(p.Y[i] / cell)}
		grid[k] = append(grid[k], i)
	}
	lists := make([][]int, n)
	r2 := r * r
	for i := 0; i < n; i++ {
		cx, cy := int(p.X[i]/cell), int(p.Y[i]/cell)
		var nbrs []int
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[key{cx + dx, cy + dy}] {
					if j == i {
						continue
					}
					dxf, dyf := p.X[i]-p.X[j], p.Y[i]-p.Y[j]
					if dxf*dxf+dyf*dyf < r2 {
						nbrs = append(nbrs, j)
					}
				}
			}
		}
		sortInts(nbrs)
		lists[i] = nbrs
	}
	return lists
}

// sortInts is an insertion sort for the short neighbour lists (typically
// 0-6 entries; avoids pulling package sort into the hot build path).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
