package layout

import (
	"math"
	"reflect"
	"testing"

	"clear/internal/ino"
	"clear/internal/ooo"
)

// corePlacements enumerates both core profiles for the table-driven
// neighbour-query tests.
func corePlacements() []struct {
	name string
	pl   *Placement
} {
	return []struct {
		name string
		pl   *Placement
	}{
		{"InO", Place(ino.Space(), InOProfile())},
		{"OoO", Place(ooo.Space(), OoOProfile())},
	}
}

// TestNearestNeighborGoldens pins the Table 5/6 baseline nearest-neighbour
// distributions of both core profiles. The placement is deterministic, so
// any drift here is a real physical-model change — the SEMU pair
// population, the MBU cluster population, and the paper-comparison tables
// all derive from these distances.
func TestNearestNeighborGoldens(t *testing.T) {
	golden := map[string][5]float64{
		"InO": {0.6699201419698314, 0.3220940550133097, 0.00709849157054126, 0.0008873114463176575, 0},
		"OoO": {0.5678493210687692, 0.42917214191852826, 0.002715724923346474, 0.00026281208935611036, 0},
	}
	goldenPairs := map[string]int{"InO": 510, "OoO": 4593}
	for _, tc := range corePlacements() {
		h := Histogram(tc.pl.NearestNeighbor())
		want := golden[tc.name]
		for i := range h {
			if math.Abs(h[i]-want[i]) > 1e-12 {
				t.Errorf("%s %s bucket: %.16f, want %.16f", tc.name, SpacingBuckets[i], h[i], want[i])
			}
		}
		if got := len(tc.pl.AdjacentPairs()); got != goldenPairs[tc.name] {
			t.Errorf("%s SEMU-adjacent pairs: %d, want %d", tc.name, got, goldenPairs[tc.name])
		}
	}
}

// bruteWithin is the O(n) reference for the neighbour queries.
func bruteWithin(pl *Placement, bit int, r float64) []int {
	var out []int
	for j := range pl.X {
		if j == bit {
			continue
		}
		dx, dy := pl.X[bit]-pl.X[j], pl.Y[bit]-pl.Y[j]
		if dx*dx+dy*dy < r*r {
			out = append(out, j)
		}
	}
	return out
}

// TestWithinRadiusClusters is the table-driven within-radius cluster
// lookup over both core profiles: a spread of strike bits and radii,
// checked against the brute-force reference, plus the out-of-range
// contract.
func TestWithinRadiusClusters(t *testing.T) {
	for _, tc := range corePlacements() {
		n := len(tc.pl.X)
		bits := []int{0, 1, 7, n / 3, n / 2, n - 2, n - 1}
		for _, r := range []float64{0.5, SEMURadius, 2.5} {
			for _, bit := range bits {
				got := tc.pl.WithinRadius(bit, r)
				want := bruteWithin(tc.pl, bit, r)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s WithinRadius(%d, %g) = %v, want %v", tc.name, bit, r, got, want)
				}
				for _, j := range got {
					if j == bit {
						t.Fatalf("%s WithinRadius(%d, %g) contains the bit itself", tc.name, bit, r)
					}
				}
			}
		}
		if tc.pl.WithinRadius(-1, 1) != nil || tc.pl.WithinRadius(n, 1) != nil {
			t.Fatalf("%s WithinRadius out-of-range bit should return nil", tc.name)
		}
	}
}

// TestNeighborListsMatchWithinRadius checks the grid-accelerated bulk
// query against the per-bit query on every flip-flop, and the symmetry
// contract (j in lists[i] iff i in lists[j]).
func TestNeighborListsMatchWithinRadius(t *testing.T) {
	for _, tc := range corePlacements() {
		lists := tc.pl.NeighborLists(SEMURadius)
		if len(lists) != len(tc.pl.X) {
			t.Fatalf("%s: %d lists for %d bits", tc.name, len(lists), len(tc.pl.X))
		}
		for i, l := range lists {
			if want := tc.pl.WithinRadius(i, SEMURadius); !reflect.DeepEqual(l, want) {
				t.Fatalf("%s bit %d: NeighborLists %v != WithinRadius %v", tc.name, i, l, want)
			}
			for _, j := range l {
				sym := false
				for _, k := range lists[j] {
					if k == i {
						sym = true
						break
					}
				}
				if !sym {
					t.Fatalf("%s: %d in lists[%d] but not vice versa", tc.name, j, i)
				}
			}
		}
	}
}

// TestAdjacentPairsFromNeighborLists checks the SEMU pair population is
// exactly the deduplicated neighbour relation: each unordered pair once,
// in ascending (i, j) order with i < j.
func TestAdjacentPairsFromNeighborLists(t *testing.T) {
	for _, tc := range corePlacements() {
		pairs := tc.pl.AdjacentPairs()
		seen := map[[2]int]bool{}
		for _, pr := range pairs {
			if pr[0] >= pr[1] {
				t.Fatalf("%s: pair %v not ascending", tc.name, pr)
			}
			if seen[pr] {
				t.Fatalf("%s: pair %v duplicated", tc.name, pr)
			}
			seen[pr] = true
		}
		total := 0
		for i, l := range tc.pl.NeighborLists(SEMURadius) {
			for _, j := range l {
				if j > i && !seen[[2]int{i, j}] {
					t.Fatalf("%s: neighbour pair (%d,%d) missing from AdjacentPairs", tc.name, i, j)
				}
				if j > i {
					total++
				}
			}
		}
		if total != len(pairs) {
			t.Fatalf("%s: %d pairs, neighbour relation has %d", tc.name, len(pairs), total)
		}
	}
}

// TestClusterSizesBounded sanity-checks the MBU cluster population the mbu
// fault model injects: clusters exist (the cores are dense enough that most
// bits have a neighbour inside the SEMU radius) but stay small — a single
// particle reaches a handful of flip-flops, not a whole unit.
func TestClusterSizesBounded(t *testing.T) {
	for _, tc := range corePlacements() {
		lists := tc.pl.NeighborLists(SEMURadius)
		withNbr, max := 0, 0
		for _, l := range lists {
			if len(l) > 0 {
				withNbr++
			}
			if len(l) > max {
				max = len(l)
			}
		}
		if frac := float64(withNbr) / float64(len(lists)); frac < 0.3 {
			t.Errorf("%s: only %.0f%% of flip-flops have a SEMU neighbour", tc.name, 100*frac)
		}
		if max > 8 {
			t.Errorf("%s: a cluster has %d neighbours — implausibly dense", tc.name, max)
		}
	}
}
