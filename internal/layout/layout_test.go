package layout

import (
	"testing"

	"clear/internal/ino"
	"clear/internal/ooo"
)

func TestPlaceInO(t *testing.T) {
	p := Place(ino.Space(), InOProfile())
	n := ino.Space().NumBits()
	if len(p.X) != n || len(p.Slack) != n {
		t.Fatalf("placement sizes wrong")
	}
	for i := 0; i < n; i++ {
		if p.Slack[i] <= 0 {
			t.Fatalf("bit %d has nonpositive slack", i)
		}
	}
}

func TestBaselineSpacingShape(t *testing.T) {
	// Table 5 shape: most flip-flops adjacent (vulnerable to SEMU) in the
	// baseline placement, with the InO core denser than the OoO core.
	ih := Histogram(Place(ino.Space(), InOProfile()).NearestNeighbor())
	oh := Histogram(Place(ooo.Space(), OoOProfile()).NearestNeighbor())
	t.Logf("InO baseline spacing: %v", ih)
	t.Logf("OoO baseline spacing: %v", oh)
	if ih[0] < 0.4 {
		t.Fatalf("InO adjacent fraction %.2f too low; paper ~0.65", ih[0])
	}
	if oh[0] >= ih[0] {
		t.Fatalf("OoO (%.2f) should be less densely packed than InO (%.2f)", oh[0], ih[0])
	}
	if oh[0] < 0.2 || oh[0] > 0.7 {
		t.Fatalf("OoO adjacent fraction %.2f implausible; paper ~0.42", oh[0])
	}
}

func TestParityPlacementMeetsMinSpacing(t *testing.T) {
	// Table 6: after the layout constraint, NO same-group pair may sit
	// within one FF length.
	space := ino.Space()
	p := Place(space, InOProfile())
	// locality-style groups of 16 in allocation order
	var groups [][]int
	n := space.NumBits()
	for lo := 0; lo < n; lo += 16 {
		hi := lo + 16
		if hi > n {
			hi = n
		}
		g := make([]int, 0, 16)
		for b := lo; b < hi; b++ {
			g = append(g, b)
		}
		groups = append(groups, g)
	}
	d := p.ParityPlacement(groups)
	if len(d) == 0 {
		t.Fatal("no distances returned")
	}
	h := Histogram(d)
	if h[0] != 0 {
		t.Fatalf("%.1f%% of same-group flip-flops within 1 FF length; constraint violated", 100*h[0])
	}
	t.Logf("InO parity-group spacing: %v", h)
}

func TestHistogramBuckets(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 2.5, 3.5, 9})
	for i := 0; i < 5; i++ {
		if h[i] != 0.2 {
			t.Fatalf("bucket %d = %f", i, h[i])
		}
	}
	if z := Histogram(nil); z != [5]float64{} {
		t.Fatal("empty histogram should be zero")
	}
}

func TestSlackTightUnits(t *testing.T) {
	space := ino.Space()
	p := Place(space, InOProfile())
	tight := p.MeanSlack(space.BitsOf("e.op1"))
	loose := p.MeanSlack(space.BitsOf("w.s.tba"))
	if tight >= loose {
		t.Fatalf("execute-stage slack (%.1f) should be tighter than status regs (%.1f)", tight, loose)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	p1 := Place(ino.Space(), InOProfile())
	p2 := Place(ino.Space(), InOProfile())
	for i := range p1.X {
		if p1.X[i] != p2.X[i] || p1.Y[i] != p2.Y[i] || p1.Slack[i] != p2.Slack[i] {
			t.Fatalf("nondeterministic placement at bit %d", i)
		}
	}
}
