package prog

import "clear/internal/isa"

// Status describes how a functional run ended.
type Status int

// Run outcomes of the functional simulator (and, by shared convention, the
// cycle-level cores).
const (
	StatusHalted   Status = iota // HALT executed: normal termination
	StatusTrap                   // illegal op / bad memory access / div0
	StatusDetected               // TRAPD executed: software check fired
	StatusMaxSteps               // step budget exhausted (hang)
)

func (s Status) String() string {
	switch s {
	case StatusHalted:
		return "halted"
	case StatusTrap:
		return "trap"
	case StatusDetected:
		return "detected"
	case StatusMaxSteps:
		return "maxsteps"
	}
	return "unknown"
}

// Result is the outcome of a functional run.
type Result struct {
	Status Status
	Output []uint32
	Steps  int
}

// ISS is a functional (instruction-at-a-time) CRV32 simulator. It defines
// the architectural reference semantics: the cycle-level cores must produce
// identical architectural results on fault-free runs. It is also the
// platform for the paper's architecture-register and program-variable
// injection modes (Tables 11 and 14), which operate above the
// microarchitecture.
type ISS struct {
	P   *Program
	PC  int
	R   [32]uint32
	Mem []uint32
	Out []uint32

	// Hook, when non-nil, runs before each instruction executes; it is the
	// injection point for architecture-level error models.
	Hook func(s *ISS, step int)
}

// NewISS returns a fresh functional simulator for p.
func NewISS(p *Program) *ISS {
	s := &ISS{P: p, Mem: make([]uint32, p.MemWords)}
	copy(s.Mem, p.Data)
	return s
}

// Run executes up to maxSteps instructions.
func (s *ISS) Run(maxSteps int) Result {
	for step := 0; step < maxSteps; step++ {
		if s.Hook != nil {
			s.Hook(s, step)
		}
		if s.PC < 0 || s.PC >= len(s.P.Code) {
			return Result{Status: StatusTrap, Output: s.Out, Steps: step}
		}
		in := s.P.Code[s.PC]
		st := s.step(in)
		if st >= 0 {
			return Result{Status: st, Output: s.Out, Steps: step + 1}
		}
		s.R[0] = 0
	}
	return Result{Status: StatusMaxSteps, Output: s.Out, Steps: maxSteps}
}

// step executes one instruction; it returns -1 to continue or a final Status.
func (s *ISS) step(in isa.Inst) Status {
	rs1 := s.R[in.Rs1]
	rs2 := s.R[in.Rs2]
	next := s.PC + 1
	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		return StatusHalted
	case isa.TRAPD:
		return StatusDetected
	case isa.OUT:
		s.Out = append(s.Out, rs1)
	case isa.ADD:
		s.R[in.Rd] = rs1 + rs2
	case isa.SUB:
		s.R[in.Rd] = rs1 - rs2
	case isa.AND:
		s.R[in.Rd] = rs1 & rs2
	case isa.OR:
		s.R[in.Rd] = rs1 | rs2
	case isa.XOR:
		s.R[in.Rd] = rs1 ^ rs2
	case isa.SLL:
		s.R[in.Rd] = rs1 << (rs2 & 31)
	case isa.SRL:
		s.R[in.Rd] = rs1 >> (rs2 & 31)
	case isa.SRA:
		s.R[in.Rd] = uint32(int32(rs1) >> (rs2 & 31))
	case isa.SLT:
		s.R[in.Rd] = b2u(int32(rs1) < int32(rs2))
	case isa.SLTU:
		s.R[in.Rd] = b2u(rs1 < rs2)
	case isa.MUL:
		s.R[in.Rd] = uint32(int64(int32(rs1)) * int64(int32(rs2)))
	case isa.MULH:
		s.R[in.Rd] = uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
	case isa.DIV:
		if rs2 == 0 {
			return StatusTrap
		}
		s.R[in.Rd] = uint32(int32(rs1) / int32(rs2))
	case isa.REM:
		if rs2 == 0 {
			return StatusTrap
		}
		s.R[in.Rd] = uint32(int32(rs1) % int32(rs2))
	case isa.ADDI:
		s.R[in.Rd] = rs1 + uint32(in.Imm)
	case isa.ANDI:
		s.R[in.Rd] = rs1 & uint32(in.Imm)
	case isa.ORI:
		s.R[in.Rd] = rs1 | uint32(in.Imm)
	case isa.XORI:
		s.R[in.Rd] = rs1 ^ uint32(in.Imm)
	case isa.SLLI:
		s.R[in.Rd] = rs1 << (uint32(in.Imm) & 31)
	case isa.SRLI:
		s.R[in.Rd] = rs1 >> (uint32(in.Imm) & 31)
	case isa.SRAI:
		s.R[in.Rd] = uint32(int32(rs1) >> (uint32(in.Imm) & 31))
	case isa.SLTI:
		s.R[in.Rd] = b2u(int32(rs1) < in.Imm)
	case isa.LUI:
		s.R[in.Rd] = uint32(in.Imm) << 16
	case isa.LW:
		addr := int32(rs1) + in.Imm
		if addr < 0 || int(addr) >= len(s.Mem) {
			return StatusTrap
		}
		s.R[in.Rd] = s.Mem[addr]
	case isa.SW:
		addr := int32(rs1) + in.Imm
		if addr < 0 || int(addr) >= len(s.Mem) {
			return StatusTrap
		}
		s.Mem[addr] = rs2
	case isa.BEQ:
		if rs1 == rs2 {
			next = s.PC + int(in.Imm)
		}
	case isa.BNE:
		if rs1 != rs2 {
			next = s.PC + int(in.Imm)
		}
	case isa.BLT:
		if int32(rs1) < int32(rs2) {
			next = s.PC + int(in.Imm)
		}
	case isa.BGE:
		if int32(rs1) >= int32(rs2) {
			next = s.PC + int(in.Imm)
		}
	case isa.BLTU:
		if rs1 < rs2 {
			next = s.PC + int(in.Imm)
		}
	case isa.BGEU:
		if rs1 >= rs2 {
			next = s.PC + int(in.Imm)
		}
	case isa.JAL:
		s.R[in.Rd] = uint32(s.PC + 1)
		next = s.PC + int(in.Imm)
	case isa.JALR:
		s.R[in.Rd] = uint32(s.PC + 1)
		next = int(int32(rs1) + in.Imm)
	default:
		return StatusTrap
	}
	s.PC = next
	return -1
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Run executes p functionally from a fresh state.
func Run(p *Program, maxSteps int) Result {
	return NewISS(p).Run(maxSteps)
}

// OutputsEqual compares an observed output stream to the program's golden
// output.
func (p *Program) OutputsEqual(out []uint32) bool {
	if len(out) != len(p.Expected) {
		return false
	}
	for i, v := range out {
		if v != p.Expected[i] {
			return false
		}
	}
	return true
}
