package prog

import (
	"math/rand"
	"testing"

	"clear/internal/isa"
)

// randomCFGProgram builds a random but assemble-able program with heavy
// control flow for exercising the basic-block partitioner.
func randomCFGProgram(rng *rand.Rand) []isa.Item {
	b := isa.NewBuilder()
	nBlocks := 4 + rng.Intn(6)
	labels := make([]string, nBlocks)
	for i := range labels {
		labels[i] = string(rune('A' + i))
	}
	for i := 0; i < nBlocks; i++ {
		b.Label(labels[i])
		for k := 0; k < 1+rng.Intn(4); k++ {
			b.Addi(uint8(1+rng.Intn(5)), uint8(1+rng.Intn(5)), int32(rng.Intn(9)))
		}
		// terminator: fallthrough, branch or jump to a random block
		switch rng.Intn(3) {
		case 0:
			// fallthrough
		case 1:
			b.Beq(uint8(rng.Intn(6)), uint8(rng.Intn(6)), labels[rng.Intn(nBlocks)])
		case 2:
			if i < nBlocks-1 {
				b.Jmp(labels[i+1+rng.Intn(nBlocks-i-1)])
			}
		}
	}
	b.Halt()
	return b.Items()
}

// Property: blocks partition the instruction space; every branch/jump
// target is a block leader; successor edges point at real blocks.
func TestBlockPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		items := randomCFGProgram(rng)
		p, err := New("cfg", items, nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		// partition
		covered := 0
		last := 0
		for i, blk := range p.Blocks {
			if blk.Start != last {
				t.Fatalf("iter %d: block %d starts at %d, want %d", iter, i, blk.Start, last)
			}
			if blk.End <= blk.Start {
				t.Fatalf("iter %d: empty block %d", iter, i)
			}
			covered += blk.End - blk.Start
			last = blk.End
		}
		if covered != len(p.Code) {
			t.Fatalf("iter %d: blocks cover %d of %d instructions", iter, covered, len(p.Code))
		}
		// leaders
		starts := map[int]bool{}
		for _, blk := range p.Blocks {
			starts[blk.Start] = true
		}
		for pc, in := range p.Code {
			if in.Op.IsBranch() || in.Op == isa.JAL {
				tgt := pc + int(in.Imm)
				if tgt >= 0 && tgt < len(p.Code) && !starts[tgt] {
					t.Fatalf("iter %d: target %d of pc %d not a leader", iter, tgt, pc)
				}
			}
		}
		// successors
		for i, blk := range p.Blocks {
			for _, s := range blk.Succs {
				if s < 0 || s >= len(p.Blocks) {
					t.Fatalf("iter %d: block %d has bad succ %d", iter, i, s)
				}
			}
			// non-control, non-final blocks must have a fallthrough succ
			lastIn := p.Code[blk.End-1]
			if !lastIn.Op.IsControl() && lastIn.Op != isa.HALT && lastIn.Op != isa.TRAPD && blk.End < len(p.Code) {
				if len(blk.Succs) == 0 {
					t.Fatalf("iter %d: fallthrough block %d has no successors", iter, i)
				}
			}
		}
	}
}

func TestBlockSignaturesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomCFGProgram(rng)
	p, err := New("cfg", items, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, blk := range p.Blocks {
		if seen[blk.Sig] {
			t.Fatal("duplicate signature")
		}
		seen[blk.Sig] = true
	}
}
