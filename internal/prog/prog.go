// Package prog represents executable CRV32 programs: assembled code, the
// initial data-memory image, golden outputs, named program variables (used
// by program-variable-level fault injection), and basic-block structure
// (used by control-flow/dataflow signature checkers).
package prog

import (
	"fmt"
	"sort"
	"sync"

	"clear/internal/isa"
	"clear/internal/tcode"
)

// Var names a program variable's location in data memory, so the harness can
// reproduce the paper's program-variable-level injection modes (varU/varW).
type Var struct {
	Name string
	Addr int // first word address
	Len  int // length in words
}

// Block is a basic block of the assembled program. Sig is the static
// control-flow signature assigned to the block (used by CFCSS and DFC).
type Block struct {
	Start int // pc of first instruction
	End   int // pc one past the last instruction
	Succs []int
	Sig   uint32
}

// Program is an assembled CRV32 program plus everything the evaluation
// harness needs to judge a run.
type Program struct {
	Name     string
	Items    []isa.Item // symbolic form, kept for software transforms
	Code     []isa.Inst
	Words    []uint32
	Labels   map[string]int
	Data     []uint32 // initial data image, loaded at address 0
	MemWords int      // total data memory size in words
	Expected []uint32 // golden output stream
	Vars     []Var
	Blocks   []Block

	// threaded-code translation of Words, built on first use. Words is
	// assigned once at assembly time and never mutated, so the translation
	// can never go stale.
	tcOnce sync.Once
	tc     *tcode.Program
}

// Threaded returns the program's threaded-code translation, compiling it on
// first call. The translation is memoized on the Program, so everything that
// shares a *Program — notably every campaign of a sweep, via core.Engine's
// per-(benchmark, variant) program memo — pays translation exactly once.
func (p *Program) Threaded() *tcode.Program {
	p.tcOnce.Do(func() { p.tc = tcode.Translate(p.Words) })
	return p.tc
}

// New assembles items into a Program. MemWords must cover the data image.
// Expected output is left nil; callers either set it directly or derive it
// with ComputeExpected.
func New(name string, items []isa.Item, data []uint32, memWords int) (*Program, error) {
	code, labels, err := isa.Assemble(items)
	if err != nil {
		return nil, fmt.Errorf("prog %s: %w", name, err)
	}
	if memWords < len(data) {
		return nil, fmt.Errorf("prog %s: memWords %d < data image %d", name, memWords, len(data))
	}
	p := &Program{
		Name:     name,
		Items:    items,
		Code:     code,
		Words:    isa.EncodeAll(code),
		Labels:   labels,
		Data:     data,
		MemWords: memWords,
	}
	p.Blocks = findBlocks(code)
	return p, nil
}

// MustNew is New, panicking on error; benchmark construction is static.
func MustNew(name string, items []isa.Item, data []uint32, memWords int) *Program {
	p, err := New(name, items, data, memWords)
	if err != nil {
		panic(err)
	}
	return p
}

// ComputeExpected runs the program functionally and records its output as the
// golden reference. It returns an error if the program does not terminate
// normally within maxSteps.
func (p *Program) ComputeExpected(maxSteps int) error {
	res := Run(p, maxSteps)
	if res.Status != StatusHalted {
		return fmt.Errorf("prog %s: golden run ended with %v after %d steps", p.Name, res.Status, res.Steps)
	}
	p.Expected = res.Output
	return nil
}

// BlockOf returns the index of the basic block containing pc, or -1.
func (p *Program) BlockOf(pc int) int {
	i := sort.Search(len(p.Blocks), func(i int) bool { return p.Blocks[i].End > pc })
	if i < len(p.Blocks) && pc >= p.Blocks[i].Start {
		return i
	}
	return -1
}

// findBlocks partitions code into basic blocks and assigns each a distinct
// static signature. Successors of a block ending in JALR are unknown (empty).
func findBlocks(code []isa.Inst) []Block {
	if len(code) == 0 {
		return nil
	}
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		switch {
		case in.Op.IsBranch():
			t := pc + int(in.Imm)
			if t >= 0 && t < len(code) {
				leader[t] = true
			}
			leader[pc+1] = true
		case in.Op == isa.JAL:
			t := pc + int(in.Imm)
			if t >= 0 && t < len(code) {
				leader[t] = true
			}
			leader[pc+1] = true
		case in.Op == isa.JALR || in.Op == isa.HALT || in.Op == isa.TRAPD:
			leader[pc+1] = true
		}
	}
	var blocks []Block
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if leader[pc] {
			blocks = append(blocks, Block{Start: start, End: pc})
			start = pc
		}
	}
	// Assign signatures: a simple multiplicative hash of the block index
	// keeps signatures distinct and well-spread.
	startIdx := make(map[int]int, len(blocks))
	for i := range blocks {
		blocks[i].Sig = uint32(i+1) * 2654435761
		startIdx[blocks[i].Start] = i
	}
	for i := range blocks {
		last := blocks[i].End - 1
		in := code[last]
		addSucc := func(pc int) {
			if j, ok := startIdx[pc]; ok {
				blocks[i].Succs = append(blocks[i].Succs, j)
			}
		}
		switch {
		case in.Op.IsBranch():
			addSucc(last + int(in.Imm))
			addSucc(last + 1)
		case in.Op == isa.JAL:
			addSucc(last + int(in.Imm))
		case in.Op == isa.JALR, in.Op == isa.HALT, in.Op == isa.TRAPD:
			// unknown or none
		default:
			addSucc(blocks[i].End)
		}
	}
	return blocks
}
