package prog

import (
	"testing"

	"clear/internal/isa"
)

// sumProgram builds: sum 1..n, OUT sum, HALT.
func sumProgram(t *testing.T, n int32) *Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(1, 0) // sum
	b.Li(2, 0) // i
	b.Li(3, n)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p, err := New("sum", b.Items(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFuncSimSum(t *testing.T) {
	p := sumProgram(t, 100)
	res := Run(p, 10000)
	if res.Status != StatusHalted {
		t.Fatalf("status %v", res.Status)
	}
	if len(res.Output) != 1 || res.Output[0] != 5050 {
		t.Fatalf("output %v, want [5050]", res.Output)
	}
}

func TestComputeExpected(t *testing.T) {
	p := sumProgram(t, 10)
	if err := p.ComputeExpected(1000); err != nil {
		t.Fatal(err)
	}
	if len(p.Expected) != 1 || p.Expected[0] != 55 {
		t.Fatalf("expected %v", p.Expected)
	}
	if !p.OutputsEqual([]uint32{55}) {
		t.Fatal("OutputsEqual false negative")
	}
	if p.OutputsEqual([]uint32{54}) || p.OutputsEqual(nil) {
		t.Fatal("OutputsEqual false positive")
	}
}

func TestMemoryAndData(t *testing.T) {
	// Sum a 5-element array placed in the data image.
	data := []uint32{3, 1, 4, 1, 5}
	b := isa.NewBuilder()
	b.Li(1, 0) // sum
	b.Li(2, 0) // addr
	b.Li(3, int32(len(data)))
	b.Label("loop")
	b.Lw(4, 2, 0)
	b.Add(1, 1, 4)
	b.Addi(2, 2, 1)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p, err := New("arrsum", b.Items(), data, 64)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, 1000)
	if res.Status != StatusHalted || res.Output[0] != 14 {
		t.Fatalf("got %v %v", res.Status, res.Output)
	}
}

func TestTrapOnBadAccess(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 9999)
	b.Lw(2, 1, 0)
	b.Halt()
	p, _ := New("bad", b.Items(), nil, 16)
	if res := Run(p, 100); res.Status != StatusTrap {
		t.Fatalf("status %v, want trap", res.Status)
	}

	b = isa.NewBuilder()
	b.Li(1, -1)
	b.Sw(1, 1, 0)
	b.Halt()
	p, _ = New("badsw", b.Items(), nil, 16)
	if res := Run(p, 100); res.Status != StatusTrap {
		t.Fatalf("sw status %v, want trap", res.Status)
	}
}

func TestTrapOnDivZero(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 5)
	b.Li(2, 0)
	b.Div(3, 1, 2)
	b.Halt()
	p, _ := New("div0", b.Items(), nil, 16)
	if res := Run(p, 100); res.Status != StatusTrap {
		t.Fatalf("status %v, want trap", res.Status)
	}
}

func TestTrapdStatus(t *testing.T) {
	b := isa.NewBuilder()
	b.Trapd()
	p, _ := New("td", b.Items(), nil, 16)
	if res := Run(p, 100); res.Status != StatusDetected {
		t.Fatalf("status %v, want detected", res.Status)
	}
}

func TestHangStatus(t *testing.T) {
	b := isa.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	p, _ := New("spin", b.Items(), nil, 16)
	if res := Run(p, 50); res.Status != StatusMaxSteps || res.Steps != 50 {
		t.Fatalf("got %v after %d", res.Status, res.Steps)
	}
}

func TestR0Hardwired(t *testing.T) {
	b := isa.NewBuilder()
	b.Addi(0, 0, 7) // attempt to write r0
	b.Out(0)
	b.Halt()
	p, _ := New("r0", b.Items(), nil, 16)
	res := Run(p, 100)
	if res.Output[0] != 0 {
		t.Fatalf("r0 = %d, want 0", res.Output[0])
	}
}

func TestJalrCallReturn(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(5, 3)
	b.Jal(31, "fn") // call
	b.Out(5)
	b.Halt()
	b.Label("fn")
	b.Addi(5, 5, 39)
	b.Ret(31)
	p, _ := New("call", b.Items(), nil, 16)
	res := Run(p, 100)
	if res.Status != StatusHalted || res.Output[0] != 42 {
		t.Fatalf("got %v %v", res.Status, res.Output)
	}
}

func TestBasicBlocks(t *testing.T) {
	p := sumProgram(t, 5)
	// Expect blocks: [entry .. loop), [loop .. after-branch), [out/halt ..]
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %+v, want 3", p.Blocks)
	}
	loop := p.Labels["loop"]
	if p.Blocks[1].Start != loop {
		t.Fatalf("block1 start %d, want %d", p.Blocks[1].Start, loop)
	}
	// Loop block has two successors: itself and fallthrough.
	if len(p.Blocks[1].Succs) != 2 {
		t.Fatalf("loop succs = %v", p.Blocks[1].Succs)
	}
	// Signatures distinct.
	sigs := map[uint32]bool{}
	for _, blk := range p.Blocks {
		if sigs[blk.Sig] {
			t.Fatal("duplicate block signature")
		}
		sigs[blk.Sig] = true
	}
	// BlockOf maps each pc to the containing block.
	for pc := range p.Code {
		i := p.BlockOf(pc)
		if i < 0 || pc < p.Blocks[i].Start || pc >= p.Blocks[i].End {
			t.Fatalf("BlockOf(%d) = %d (%+v)", pc, i, p.Blocks[i])
		}
	}
	if p.BlockOf(len(p.Code)) != -1 {
		t.Fatal("BlockOf past end should be -1")
	}
}

func TestNewErrors(t *testing.T) {
	b := isa.NewBuilder()
	b.Jmp("missing")
	if _, err := New("x", b.Items(), nil, 4); err == nil {
		t.Fatal("expected assemble error")
	}
	b = isa.NewBuilder()
	b.Halt()
	if _, err := New("x", b.Items(), make([]uint32, 10), 4); err == nil {
		t.Fatal("expected memWords error")
	}
}

func TestISSHook(t *testing.T) {
	p := sumProgram(t, 10)
	if err := p.ComputeExpected(1000); err != nil {
		t.Fatal(err)
	}
	// Corrupt r1 mid-run via the hook: output must mismatch (OMM-like).
	s := NewISS(p)
	fired := false
	s.Hook = func(s *ISS, step int) {
		if step == 12 && !fired {
			s.R[1] ^= 1 << 20
			fired = true
		}
	}
	res := s.Run(1000)
	if res.Status != StatusHalted {
		t.Fatalf("status %v", res.Status)
	}
	if p.OutputsEqual(res.Output) {
		t.Fatal("corruption should change the output")
	}
}
