package bench

import (
	"clear/internal/isa"
	"clear/internal/prog"
)

// The 11 SPECINT2000-like kernels. Each reproduces the algorithmic character
// of its namesake (compression, graph optimization, search, parsing, ...)
// at a scale that keeps a fault-injection run in the low thousands of
// cycles. Inputs are deterministic; golden outputs come from the functional
// simulator.

func init() {
	register("gzip", "SPEC", ABFTNone, true, buildGzip)
	register("bzip2", "SPEC", ABFTNone, true, buildBzip2)
	register("mcf", "SPEC", ABFTNone, true, buildMcf)
	register("crafty", "SPEC", ABFTNone, true, buildCrafty)
	register("parser", "SPEC", ABFTNone, true, buildParser)
	register("gcc", "SPEC", ABFTNone, true, buildGcc)
	register("vpr", "SPEC", ABFTNone, false, buildVpr)
	register("vortex", "SPEC", ABFTNone, true, buildVortex)
	register("gap", "SPEC", ABFTNone, true, buildGap)
	register("perlbmk", "SPEC", ABFTNone, false, buildPerlbmk)
	register("eon", "SPEC", ABFTNone, false, buildEon)
}

// gzip: run-length compression of a low-entropy buffer, decompression, and
// verification checksum — the compress/expand/verify loop structure of gzip.
func buildGzip(seed uint32) (*prog.Program, error) {
	const n = 96
	x := xorshift32(0x9E11 ^ seed)
	input := make([]uint32, n)
	v := uint32(3)
	for i := range input {
		if x.intn(3) == 0 {
			v = x.intn(8)
		}
		input[i] = v
	}
	const enc = 128 // encoded stream: (value, runlen) pairs
	const dec = 384 // decoded output

	b := isa.NewBuilder()
	// ---- encode ----
	b.Li(1, 1)     // i
	b.Li(4, enc)   // encode ptr
	b.Li(6, n)     // limit
	b.Li(13, 0)    // base
	b.Lw(2, 13, 0) // cur = in[0]
	b.Li(3, 1)     // run
	b.Label("eloop")
	b.Beq(1, 6, "eflush")
	b.Lw(5, 1, 0) // in[i]
	b.Beq(5, 2, "same")
	b.Sw(2, 4, 0) // emit (cur, run)
	b.Sw(3, 4, 1)
	b.Addi(4, 4, 2)
	b.Mv(2, 5)
	b.Li(3, 1)
	b.Jmp("enext")
	b.Label("same")
	b.Addi(3, 3, 1)
	b.Label("enext")
	b.Addi(1, 1, 1)
	b.Jmp("eloop")
	b.Label("eflush")
	b.Sw(2, 4, 0)
	b.Sw(3, 4, 1)
	b.Addi(4, 4, 2)
	// ---- decode ----
	b.Li(7, enc) // read ptr
	b.Li(8, dec) // write ptr
	b.Label("dloop")
	b.Beq(7, 4, "ddone")
	b.Lw(2, 7, 0) // value
	b.Lw(3, 7, 1) // run
	b.Label("expand")
	b.Sw(2, 8, 0)
	b.Addi(8, 8, 1)
	b.Addi(3, 3, -1)
	b.Bne(3, 0, "expand")
	b.Addi(7, 7, 2)
	b.Jmp("dloop")
	b.Label("ddone")
	// ---- verify: checksum decoded = checksum input ----
	b.Li(1, 0)
	b.Li(9, 0)  // checksum
	b.Li(10, 3) // multiplier
	b.Label("vloop")
	b.Lw(5, 1, dec)
	b.Mul(9, 9, 10)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 6, "vloop")
	b.Out(9)
	b.Li(5, enc)
	b.Sub(5, 4, 5)
	b.Out(5) // encoded length
	b.Halt()
	return finish("gzip", b, input, 512,
		prog.Var{Name: "input", Addr: 0, Len: n},
		prog.Var{Name: "encoded", Addr: enc, Len: 128},
		prog.Var{Name: "decoded", Addr: dec, Len: n})
}

// bzip2: move-to-front transform (the heart of bzip2's entropy stage) over a
// 16-symbol alphabet, accumulating the rank stream checksum.
func buildBzip2(seed uint32) (*prog.Program, error) {
	const n = 44
	const tbl = 96 // MTF table, 16 entries
	input := words(0xB210^seed, n, 16)
	b := isa.NewBuilder()
	// init table[j] = j
	b.Li(1, 0)
	b.Li(2, 16)
	b.Label("init")
	b.Sw(1, 1, tbl)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "init")
	// MTF loop
	b.Li(1, 0)  // i
	b.Li(9, 0)  // checksum
	b.Li(10, n) // limit
	b.Label("mtf")
	b.Lw(3, 1, 0) // s = in[i]
	// find j with table[j] == s
	b.Li(4, 0) // j
	b.Label("find")
	b.Lw(5, 4, tbl)
	b.Beq(5, 3, "found")
	b.Addi(4, 4, 1)
	b.Jmp("find")
	b.Label("found")
	// checksum = checksum*5 + j
	b.Slli(6, 9, 2)
	b.Add(9, 6, 9)
	b.Add(9, 9, 4)
	// move to front: shift table[0..j-1] up by one
	b.Label("shift")
	b.Beq(4, 0, "place")
	b.Lw(5, 4, tbl-1)
	b.Sw(5, 4, tbl)
	b.Addi(4, 4, -1)
	b.Jmp("shift")
	b.Label("place")
	b.Sw(3, 0, tbl) // table[0] = s
	b.Addi(1, 1, 1)
	b.Bne(1, 10, "mtf")
	b.Out(9)
	// final table state checksum
	b.Li(1, 0)
	b.Li(9, 0)
	b.Label("tc")
	b.Lw(5, 1, tbl)
	b.Slli(9, 9, 1)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "tc")
	b.Out(9)
	b.Halt()
	return finish("bzip2", b, input, 256,
		prog.Var{Name: "input", Addr: 0, Len: n},
		prog.Var{Name: "mtf_table", Addr: tbl, Len: 16})
}

// mcf: Bellman-Ford single-source shortest paths — the network-simplex
// flavor of mcf's repeated edge relaxations.
func buildMcf(seed uint32) (*prog.Program, error) {
	const nodes = 10
	const edges = 20
	x := xorshift32(0x3CF0 ^ seed)
	// edge arrays: from, to, weight
	data := make([]uint32, 3*edges+nodes)
	for e := 0; e < edges; e++ {
		data[e] = x.intn(nodes)
		data[edges+e] = x.intn(nodes)
		data[2*edges+e] = 1 + x.intn(20)
	}
	// connect sequentially so everything is reachable
	for i := 0; i < nodes-1; i++ {
		data[i] = uint32(i)
		data[edges+i] = uint32(i + 1)
	}
	const distBase = 3 * edges // dist array after edges
	const inf = 1 << 20

	b := isa.NewBuilder()
	// init dist
	b.Li(1, 0)
	b.Li(2, nodes)
	b.Li(3, inf)
	b.Label("init")
	b.Sw(3, 1, distBase)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "init")
	b.Li(3, 0)
	b.Sw(3, 0, distBase) // dist[0] = 0
	// relax |V|-1 times
	b.Li(8, 0) // pass
	b.Li(9, nodes-1)
	b.Label("pass")
	b.Li(1, 0) // edge idx
	b.Li(2, edges)
	b.Label("edge")
	b.Lw(4, 1, 0)            // u
	b.Lw(5, 1, edges)        // v
	b.Lw(6, 1, 2*edges)      // w
	b.Add(7, 4, 0)           // u
	b.Lw(10, 7, distBase)    // dist[u]
	b.Add(11, 10, 6)         // cand = dist[u] + w
	b.Add(7, 5, 0)           // v
	b.Lw(12, 7, distBase)    // dist[v]
	b.Bge(11, 12, "norelax") // if cand >= dist[v] skip
	b.Sw(11, 7, distBase)
	b.Label("norelax")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "edge")
	b.Addi(8, 8, 1)
	b.Bne(8, 9, "pass")
	// output sum of distances (mod inf contributions)
	b.Li(1, 0)
	b.Li(2, nodes)
	b.Li(9, 0)
	b.Li(3, inf)
	b.Label("sum")
	b.Lw(5, 1, distBase)
	b.Beq(5, 3, "skip") // unreachable
	b.Add(9, 9, 5)
	b.Label("skip")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "sum")
	b.Out(9)
	b.Halt()
	return finish("mcf", b, data, 256,
		prog.Var{Name: "weights", Addr: 2 * edges, Len: edges},
		prog.Var{Name: "dist", Addr: distBase, Len: nodes})
}

// crafty: fixed-depth minimax over a 4-ary game tree plus bitboard-style
// mobility counting — the search/evaluate structure of a chess engine.
func buildCrafty(seed uint32) (*prog.Program, error) {
	const leaves = 64 // depth-3, branching 4
	vals := words(0xC4AF^seed, leaves, 2000)
	const minBuf = 64 // 16 first-level minima
	const maxBuf = 80 // 4 second-level maxima

	b := isa.NewBuilder()
	// level 1: min over each group of 4 leaves
	b.Li(1, 0)  // group
	b.Li(2, 16) // groups
	b.Label("l1")
	b.Slli(3, 1, 2) // base = g*4
	b.Lw(4, 3, 0)   // best = leaf[base]
	b.Li(5, 1)
	b.Label("l1k")
	b.Add(6, 3, 5)
	b.Lw(7, 6, 0)
	b.Bge(7, 4, "l1skip")
	b.Mv(4, 7)
	b.Label("l1skip")
	b.Addi(5, 5, 1)
	b.Slti(8, 5, 4)
	b.Bne(8, 0, "l1k")
	b.Sw(4, 1, minBuf)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "l1")
	// level 2: max over groups of 4 minima
	b.Li(1, 0)
	b.Li(2, 4)
	b.Label("l2")
	b.Slli(3, 1, 2)
	b.Lw(4, 3, minBuf)
	b.Li(5, 1)
	b.Label("l2k")
	b.Add(6, 3, 5)
	b.Lw(7, 6, minBuf)
	b.Blt(7, 4, "l2skip")
	b.Mv(4, 7)
	b.Label("l2skip")
	b.Addi(5, 5, 1)
	b.Slti(8, 5, 4)
	b.Bne(8, 0, "l2k")
	b.Sw(4, 1, maxBuf)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "l2")
	// root: min over the 4 maxima
	b.Lw(4, 0, maxBuf)
	b.Li(5, 1)
	b.Label("root")
	b.Lw(7, 5, maxBuf)
	b.Bge(7, 4, "rskip")
	b.Mv(4, 7)
	b.Label("rskip")
	b.Addi(5, 5, 1)
	b.Slti(8, 5, 4)
	b.Bne(8, 0, "root")
	b.Out(4)
	// mobility: popcount of two board words derived from the leaf values
	b.Lw(9, 0, 0)
	b.Lw(10, 0, 1)
	b.Xor(9, 9, 10)
	b.Li(10, 0) // popcount
	b.Li(11, 32)
	b.Label("pop")
	b.Andi(12, 9, 1)
	b.Add(10, 10, 12)
	b.Srli(9, 9, 1)
	b.Addi(11, 11, -1)
	b.Bne(11, 0, "pop")
	b.Out(10)
	b.Halt()
	return finish("crafty", b, vals, 256,
		prog.Var{Name: "leaves", Addr: 0, Len: leaves},
		prog.Var{Name: "minima", Addr: minBuf, Len: 16})
}

// parser: tokenizer/grammar pass — bracket balance, maximum nesting depth
// and bigram counting over a token stream.
func buildParser(seed uint32) (*prog.Program, error) {
	const n = 100
	x := xorshift32(0x9A25 ^ seed)
	toks := make([]uint32, n)
	depth := 0
	for i := range toks {
		t := x.intn(8)
		if t == 1 {
			depth++
		}
		if t == 2 {
			if depth == 0 {
				t = 3
			} else {
				depth--
			}
		}
		toks[i] = t
	}
	b := isa.NewBuilder()
	b.Li(1, 0)  // i
	b.Li(2, n)  // limit
	b.Li(3, 0)  // depth
	b.Li(4, 0)  // maxdepth
	b.Li(5, 0)  // bigram count (3 followed by 4)
	b.Li(6, 0)  // prev token
	b.Li(13, 0) // unbalanced flag
	b.Label("loop")
	b.Lw(7, 1, 0)
	b.Li(8, 1)
	b.Bne(7, 8, "notopen")
	b.Addi(3, 3, 1)
	b.Blt(4, 3, "newmax")
	b.Jmp("next")
	b.Label("newmax")
	b.Mv(4, 3)
	b.Jmp("next")
	b.Label("notopen")
	b.Li(8, 2)
	b.Bne(7, 8, "notclose")
	b.Addi(3, 3, -1)
	b.Bge(3, 0, "next")
	b.Li(13, 1) // underflow
	b.Li(3, 0)
	b.Jmp("next")
	b.Label("notclose")
	// bigram: prev==3 && cur==4
	b.Li(8, 3)
	b.Bne(6, 8, "next")
	b.Li(8, 4)
	b.Bne(7, 8, "next")
	b.Addi(5, 5, 1)
	b.Label("next")
	b.Mv(6, 7)
	b.Sw(3, 1, 128) // depth trace (parse-state variable)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Out(4)  // max depth
	b.Out(5)  // bigrams
	b.Out(3)  // final depth (balance)
	b.Out(13) // underflow flag
	b.Halt()
	return finish("parser", b, toks, 256,
		prog.Var{Name: "tokens", Addr: 0, Len: n},
		prog.Var{Name: "depth_trace", Addr: 128, Len: n})
}

// gcc: stack-machine evaluation of RPN expression streams — the constant
// folding / expression evaluation inner loops of a compiler.
func buildGcc(seed uint32) (*prog.Program, error) {
	// opcodes: 0..999 push literal; 1001 add; 1002 sub; 1003 mul; 1004 dup
	sx := xorshift32(0x6CC5) // structure rng: fixed so code is seed-invariant
	vx := xorshift32(0x6CC5 ^ seed)
	var rpn []uint32
	stack := 0
	for len(rpn) < 90 {
		if stack >= 2 && sx.intn(2) == 0 {
			rpn = append(rpn, 1001+sx.intn(3))
			stack--
		} else if stack >= 1 && sx.intn(4) == 0 {
			rpn = append(rpn, 1004)
			stack++
		} else {
			rpn = append(rpn, vx.intn(1000))
			stack++
		}
	}
	// fold everything down to one value
	for stack > 1 {
		rpn = append(rpn, 1001)
		stack--
	}
	n := len(rpn)
	const stk = 128
	b := isa.NewBuilder()
	b.Li(1, 0) // ip
	b.Li(2, int32(n))
	b.Li(3, stk) // sp (grows up)
	b.Label("loop")
	b.Beq(1, 2, "done")
	b.Lw(4, 1, 0) // op
	b.Li(5, 1000)
	b.Blt(4, 5, "push")
	b.Li(5, 1001)
	b.Beq(4, 5, "add")
	b.Li(5, 1002)
	b.Beq(4, 5, "sub")
	b.Li(5, 1003)
	b.Beq(4, 5, "mul")
	// dup
	b.Lw(6, 3, -1)
	b.Sw(6, 3, 0)
	b.Addi(3, 3, 1)
	b.Jmp("next")
	b.Label("push")
	b.Sw(4, 3, 0)
	b.Addi(3, 3, 1)
	b.Jmp("next")
	b.Label("add")
	b.Lw(6, 3, -1)
	b.Lw(7, 3, -2)
	b.Add(6, 7, 6)
	b.Sw(6, 3, -2)
	b.Addi(3, 3, -1)
	b.Jmp("next")
	b.Label("sub")
	b.Lw(6, 3, -1)
	b.Lw(7, 3, -2)
	b.Sub(6, 7, 6)
	b.Sw(6, 3, -2)
	b.Addi(3, 3, -1)
	b.Jmp("next")
	b.Label("mul")
	b.Lw(6, 3, -1)
	b.Lw(7, 3, -2)
	b.Mul(6, 7, 6)
	b.Sw(6, 3, -2)
	b.Addi(3, 3, -1)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Lw(6, 3, -1)
	b.Out(6) // expression value
	b.Li(5, stk+1)
	b.Sub(5, 3, 5)
	b.Out(5) // stack balance check (0)
	b.Halt()
	return finish("gcc", b, rpn, 256,
		prog.Var{Name: "rpn", Addr: 0, Len: n},
		prog.Var{Name: "stack", Addr: stk, Len: 32})
}

// vpr: wirelength cost of a placement plus greedy improvement passes — the
// inner loop of simulated-annealing placement.
func buildVpr(seed uint32) (*prog.Program, error) {
	const cells = 12
	const nets = 14
	x := xorshift32(0x7B90 ^ seed)
	data := make([]uint32, cells+2*nets)
	perm := make([]uint32, cells)
	for i := range perm {
		perm[i] = uint32(i * 4)
	}
	for i := range perm {
		j := x.intn(uint32(len(perm)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	copy(data, perm)
	for e := 0; e < nets; e++ {
		a := x.intn(cells)
		bb := x.intn(cells)
		if a == bb {
			bb = (bb + 1) % cells
		}
		data[cells+2*e] = a
		data[cells+2*e+1] = bb
	}
	const netBase = cells
	// cost subroutine: r10 <- total cost; clobbers r1,r4..r9
	costFn := func(b *isa.Builder, tag string) {
		b.Li(10, 0)
		b.Li(1, 0)
		b.Li(2, nets)
		b.Label("c" + tag)
		b.Slli(4, 1, 1)
		b.Lw(5, 4, netBase)   // a
		b.Lw(6, 4, netBase+1) // b
		b.Lw(7, 5, 0)         // pos[a]
		b.Lw(8, 6, 0)         // pos[b]
		b.Sub(9, 7, 8)
		b.Srai(4, 9, 31)
		b.Xor(9, 9, 4)
		b.Sub(9, 9, 4) // abs
		b.Add(10, 10, 9)
		b.Addi(1, 1, 1)
		b.Bne(1, 2, "c"+tag)
	}
	b := isa.NewBuilder()
	costFn(b, "0")
	b.Out(10)    // initial cost
	b.Mv(13, 10) // best cost
	// two greedy passes of adjacent swaps
	b.Li(11, 0) // pass
	b.Label("pass")
	b.Li(12, 0) // cell i
	b.Label("swp")
	// swap pos[i], pos[i+1]
	b.Lw(4, 12, 0)
	b.Lw(5, 12, 1)
	b.Sw(5, 12, 0)
	b.Sw(4, 12, 1)
	costFn(b, "s")
	b.Blt(10, 13, "keep")
	// revert
	b.Lw(4, 12, 0)
	b.Lw(5, 12, 1)
	b.Sw(5, 12, 0)
	b.Sw(4, 12, 1)
	b.Jmp("nosave")
	b.Label("keep")
	b.Mv(13, 10)
	b.Label("nosave")
	b.Addi(12, 12, 1)
	b.Slti(4, 12, cells-1)
	b.Bne(4, 0, "swp")
	b.Addi(11, 11, 1)
	b.Slti(4, 11, 2)
	b.Bne(4, 0, "pass")
	b.Out(13) // improved cost
	b.Halt()
	return finish("vpr", b, data, 256,
		prog.Var{Name: "pos", Addr: 0, Len: cells})
}

// vortex: open-addressing hash-table inserts and probes — the in-memory
// object-database access pattern of vortex.
func buildVortex(seed uint32) (*prog.Program, error) {
	const tblSize = 32
	const nKeys = 20
	const keys = 64 // key array base
	const tbl = 96  // hash table base
	x := xorshift32(0x50F7 ^ seed)
	data := make([]uint32, keys+nKeys*2)
	for i := 0; i < nKeys; i++ {
		data[keys+i] = 1 + x.intn(4000) // insert set (nonzero)
	}
	for i := 0; i < nKeys; i++ {
		if i%2 == 0 {
			data[keys+nKeys+i] = data[keys+i] // present
		} else {
			data[keys+nKeys+i] = 1 + x.intn(4000)
		}
	}
	b := isa.NewBuilder()
	// clear table
	b.Li(1, 0)
	b.Li(2, tblSize)
	b.Label("clr")
	b.Sw(0, 1, tbl)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "clr")
	// insert keys
	b.Li(1, 0)
	b.Li(2, nKeys)
	b.Label("ins")
	b.Lw(3, 1, keys)
	b.Andi(4, 3, tblSize-1) // slot = key & 31
	b.Label("probe")
	b.Add(5, 4, 0)
	b.Lw(6, 5, tbl)
	b.Beq(6, 0, "empty")
	b.Beq(6, 3, "dupdone") // already inserted
	b.Addi(4, 4, 1)
	b.Andi(4, 4, tblSize-1)
	b.Jmp("probe")
	b.Label("empty")
	b.Sw(3, 5, tbl)
	b.Label("dupdone")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "ins")
	// lookups
	b.Li(1, 0)
	b.Li(9, 0)  // hits
	b.Li(10, 0) // probes
	b.Label("lkp")
	b.Lw(3, 1, keys+nKeys)
	b.Andi(4, 3, tblSize-1)
	b.Li(7, 0) // probe count for this key
	b.Label("lprobe")
	b.Addi(7, 7, 1)
	b.Li(8, tblSize)
	b.Bge(7, 8, "miss") // table scanned
	b.Add(5, 4, 0)
	b.Lw(6, 5, tbl)
	b.Beq(6, 0, "miss")
	b.Beq(6, 3, "hit")
	b.Addi(4, 4, 1)
	b.Andi(4, 4, tblSize-1)
	b.Jmp("lprobe")
	b.Label("hit")
	b.Addi(9, 9, 1)
	b.Label("miss")
	b.Add(10, 10, 7)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "lkp")
	b.Out(9)
	b.Out(10)
	b.Halt()
	return finish("vortex", b, data, 256,
		prog.Var{Name: "keys", Addr: keys, Len: nKeys},
		prog.Var{Name: "table", Addr: tbl, Len: tblSize})
}

// gap: modular exponentiation and gcd chains — computational group theory's
// arithmetic kernels.
func buildGap(seed uint32) (*prog.Program, error) {
	const pairs = 10
	x := xorshift32(0x6A90 ^ seed)
	data := make([]uint32, 2*pairs)
	for i := 0; i < pairs; i++ {
		data[2*i] = 2 + x.intn(500)
		data[2*i+1] = 1 + x.intn(120)
	}
	const mod = 9973
	b := isa.NewBuilder()
	b.Li(1, 0) // pair idx
	b.Li(2, pairs)
	b.Li(9, 0)  // modexp accumulator
	b.Li(10, 0) // gcd accumulator
	b.Li(11, mod)
	b.Label("pair")
	b.Slli(3, 1, 1)
	b.Lw(4, 3, 0) // base
	b.Lw(5, 3, 1) // exp
	// modexp: r6 = base^exp mod m (square and multiply, LSB first)
	b.Li(6, 1)
	b.Rem(4, 4, 11)
	b.Label("sq")
	b.Beq(5, 0, "sqdone")
	b.Andi(7, 5, 1)
	b.Beq(7, 0, "nomul")
	b.Mul(6, 6, 4)
	b.Rem(6, 6, 11)
	b.Label("nomul")
	b.Mul(4, 4, 4)
	b.Rem(4, 4, 11)
	b.Srli(5, 5, 1)
	b.Jmp("sq")
	b.Label("sqdone")
	b.Add(9, 9, 6)
	// gcd(base0, exp0) via Euclid on the original pair
	b.Lw(4, 3, 0)
	b.Lw(5, 3, 1)
	b.Label("gcd")
	b.Beq(5, 0, "gdone")
	b.Rem(7, 4, 5)
	b.Mv(4, 5)
	b.Mv(5, 7)
	b.Jmp("gcd")
	b.Label("gdone")
	b.Add(10, 10, 4)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "pair")
	b.Out(9)
	b.Out(10)
	b.Halt()
	return finish("gap", b, data, 128,
		prog.Var{Name: "pairs", Addr: 0, Len: 2 * pairs})
}

// perlbmk: string hashing and pattern counting — the interpreter's hash and
// match primitives.
func buildPerlbmk(seed uint32) (*prog.Program, error) {
	const n = 120
	text := words(0x9E71^seed, n, 26)
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, n)
	b.Li(9, 5381) // djb2 seed
	b.Li(10, 0)   // pattern count: 'a'(0) followed by 'b'(1)
	b.Li(6, 99)   // prev
	b.Label("loop")
	b.Lw(5, 1, 0)
	// h = h*33 + c
	b.Slli(7, 9, 5)
	b.Add(9, 7, 9)
	b.Add(9, 9, 5)
	// pattern
	b.Bne(6, 0, "nopat")
	b.Li(7, 1)
	b.Bne(5, 7, "nopat")
	b.Addi(10, 10, 1)
	b.Label("nopat")
	b.Mv(6, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Out(9)
	b.Out(10)
	b.Halt()
	return finish("perlbmk", b, text, 256,
		prog.Var{Name: "text", Addr: 0, Len: n})
}

// eon: fixed-point 8.8 lighting — dot products and clamping over a vertex
// array, the integer analog of eon's ray tracing arithmetic.
func buildEon(seed uint32) (*prog.Program, error) {
	const verts = 14
	x := xorshift32(0xE0E0 ^ seed)
	data := make([]uint32, 3*verts+3)
	for i := range data {
		data[i] = x.intn(512) // 8.8 fixed point in [0,2)
	}
	const light = 3 * verts
	b := isa.NewBuilder()
	b.Li(1, 0) // vertex idx
	b.Li(2, verts)
	b.Li(9, 0) // intensity accumulator
	b.Lw(10, 0, light)
	b.Lw(11, 0, light+1)
	b.Lw(12, 0, light+2)
	b.Label("vloop")
	b.Slli(3, 1, 1)
	b.Add(3, 3, 1) // 3*i
	b.Lw(4, 3, 0)
	b.Lw(5, 3, 1)
	b.Lw(6, 3, 2)
	b.Mul(4, 4, 10)
	b.Mul(5, 5, 11)
	b.Mul(6, 6, 12)
	b.Add(4, 4, 5)
	b.Add(4, 4, 6)
	b.Srai(4, 4, 8) // back to 8.8
	b.Bge(4, 0, "pos")
	b.Li(4, 0) // clamp negatives
	b.Label("pos")
	b.Add(9, 9, 4)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "vloop")
	b.Out(9)
	b.Halt()
	return finish("eon", b, data, 128,
		prog.Var{Name: "verts", Addr: 0, Len: 3 * verts})
}
