package bench

import (
	"testing"

	"clear/internal/ino"
	"clear/internal/ooo"
	"clear/internal/prog"
)

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("expected 18 benchmarks, got %d", len(all))
	}
	spec, perfect := 0, 0
	for _, b := range all {
		switch b.Suite {
		case "SPEC":
			spec++
		case "PERFECT":
			perfect++
		default:
			t.Fatalf("%s: bad suite %q", b.Name, b.Suite)
		}
	}
	if spec != 11 || perfect != 7 {
		t.Fatalf("suite split %d SPEC / %d PERFECT, want 11/7", spec, perfect)
	}
	oSpec, oPerf := 0, 0
	for _, b := range ForOoO() {
		if b.Suite == "SPEC" {
			oSpec++
		} else {
			oPerf++
		}
	}
	if oSpec != 8 || oPerf != 3 {
		t.Fatalf("OoO split %d/%d, want 8/3", oSpec, oPerf)
	}
	corr := 0
	for _, b := range all {
		if b.ABFT == ABFTCorrection {
			corr++
		}
	}
	if corr != 3 {
		t.Fatalf("ABFT-correction benchmarks = %d, want 3", corr)
	}
}

func TestAllBenchmarksGolden(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Expected) == 0 {
				t.Fatal("no golden output")
			}
			// functional sanity: bounded dynamic length
			res := prog.Run(p, 4_000_000)
			if res.Status != prog.StatusHalted {
				t.Fatalf("ISS status %v", res.Status)
			}
			if res.Steps < 200 {
				t.Fatalf("benchmark too short: %d instructions", res.Steps)
			}
			if res.Steps > 100_000 {
				t.Fatalf("benchmark too long for injection campaigns: %d instructions", res.Steps)
			}
			t.Logf("%s: %d instructions, %d outputs", b.Name, res.Steps, len(p.Expected))
		})
	}
}

func TestAllBenchmarksOnInO(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.MustProgram()
			c := ino.New(p)
			res := c.Run(2_000_000)
			if res.Status != prog.StatusHalted {
				t.Fatalf("InO status %v after %d cycles", res.Status, res.Steps)
			}
			if !p.OutputsEqual(res.Output) {
				t.Fatalf("InO output %v != golden %v", res.Output, p.Expected)
			}
			ipc := float64(c.Retired()) / float64(c.Cycles())
			t.Logf("%s: %d cycles, IPC %.2f", b.Name, c.Cycles(), ipc)
		})
	}
}

func TestOoOBenchmarksOnOoO(t *testing.T) {
	for _, b := range ForOoO() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.MustProgram()
			c := ooo.New(p)
			res := c.Run(2_000_000)
			if res.Status != prog.StatusHalted {
				t.Fatalf("OoO status %v after %d cycles", res.Status, res.Steps)
			}
			if !p.OutputsEqual(res.Output) {
				t.Fatalf("OoO output %v != golden %v", res.Output, p.Expected)
			}
			ipc := float64(c.Retired()) / float64(c.Cycles())
			t.Logf("%s: %d cycles, IPC %.2f", b.Name, c.Cycles(), ipc)
		})
	}
}

func TestVarsWithinMemory(t *testing.T) {
	for _, b := range All() {
		p := b.MustProgram()
		for _, v := range p.Vars {
			if v.Addr < 0 || v.Addr+v.Len > p.MemWords {
				t.Errorf("%s: var %s [%d,%d) outside memory %d",
					b.Name, v.Name, v.Addr, v.Addr+v.Len, p.MemWords)
			}
		}
	}
}

func TestDeterministicGolden(t *testing.T) {
	// Rebuild a benchmark from scratch: identical program and golden output.
	p1, err := buildGzip(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := buildGzip(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Words) != len(p2.Words) {
		t.Fatal("nondeterministic build")
	}
	for i := range p1.Words {
		if p1.Words[i] != p2.Words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
	r1 := prog.Run(p1, 1_000_000)
	r2 := prog.Run(p2, 1_000_000)
	if len(r1.Output) != len(r2.Output) {
		t.Fatal("nondeterministic output")
	}
}

func TestByName(t *testing.T) {
	if ByName("gzip") == nil || ByName("fft") == nil {
		t.Fatal("ByName lookup failed")
	}
	if ByName("nonexistent") != nil {
		t.Fatal("ByName false positive")
	}
	names := Names()
	if len(names) != 18 {
		t.Fatalf("Names() = %d entries", len(names))
	}
}

// Benchmarks must only use registers r1..r13 and r31, leaving r14..r30 for
// the software resilience transforms.
func TestRegisterDiscipline(t *testing.T) {
	for _, b := range All() {
		p := b.MustProgram()
		for pc, in := range p.Code {
			for _, r := range []uint8{in.Rd, in.Rs1, in.Rs2} {
				if r > 13 && r != 31 {
					t.Errorf("%s pc %d (%v): uses reserved register r%d",
						b.Name, pc, in, r)
				}
			}
		}
	}
}

// Alternate inputs must keep the code identical (data-only variation) so
// trained-assertion sites line up between training and evaluation inputs.
func TestAltProgramCodeInvariant(t *testing.T) {
	for _, b := range All() {
		p := b.MustProgram()
		alt, err := b.AltProgram()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(alt.Words) != len(p.Words) {
			t.Fatalf("%s: alt code length %d != %d", b.Name, len(alt.Words), len(p.Words))
		}
		for i := range p.Words {
			if p.Words[i] != alt.Words[i] {
				t.Fatalf("%s: instruction %d differs between input sets", b.Name, i)
			}
		}
		dataDiff := false
		for i := range p.Data {
			if i < len(alt.Data) && p.Data[i] != alt.Data[i] {
				dataDiff = true
				break
			}
		}
		if !dataDiff {
			t.Errorf("%s: alternate input identical to canonical", b.Name)
		}
		res := prog.Run(alt, 4_000_000)
		if res.Status != prog.StatusHalted {
			t.Fatalf("%s: alt input run %v", b.Name, res.Status)
		}
	}
}
