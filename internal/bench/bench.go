// Package bench provides the 18 application benchmarks used for reliability
// evaluation: 11 SPECINT2000-like integer kernels and 7 DARPA-PERFECT-like
// signal/image-processing kernels, all written for the CRV32 ISA with
// deterministic inputs and golden outputs computed by the functional
// simulator.
//
// The paper evaluates the in-order core on 11 SPEC + 7 PERFECT benchmarks
// and the out-of-order core on 8 SPEC + 3 PERFECT (its RTL model could not
// execute the rest); the same split is reproduced here.
//
// Benchmarks use only registers r1..r13 (plus r31 as the link register):
// the upper registers are reserved for the software resilience transforms
// (EDDI shadow registers, CFCSS signature registers, assertion scratch).
package bench

import (
	"fmt"
	"sort"
	"sync"

	"clear/internal/isa"
	"clear/internal/prog"
)

// ABFTKind classifies how a benchmark's algorithm can be protected by
// algorithm-based fault tolerance.
type ABFTKind int

// ABFT applicability classes (paper Sec. 3.2: correction for the matrix-like
// kernels, detection for the rest of PERFECT, none for SPEC).
const (
	ABFTNone ABFTKind = iota
	ABFTCorrection
	ABFTDetection
)

// Benchmark is one application benchmark.
type Benchmark struct {
	Name  string
	Suite string // "SPEC" or "PERFECT"
	ABFT  ABFTKind
	OnOoO bool // part of the OoO core's benchmark subset

	build func(seed uint32) (*prog.Program, error)

	once sync.Once
	p    *prog.Program
	err  error

	altOnce sync.Once
	alt     *prog.Program
	altErr  error
}

// Program builds (once) and returns the benchmark program with its golden
// output computed.
func (b *Benchmark) Program() (*prog.Program, error) {
	b.once.Do(func() {
		b.p, b.err = b.build(0)
		if b.err == nil {
			b.err = b.p.ComputeExpected(4_000_000)
		}
	})
	return b.p, b.err
}

// AltProgram builds the benchmark with an alternate input set: identical
// code, different data. It models the training-vs-field input mismatch the
// paper's Sec 2.4 discusses for trained assertions (false positives).
func (b *Benchmark) AltProgram() (*prog.Program, error) {
	b.altOnce.Do(func() {
		b.alt, b.altErr = b.build(0xA17)
		if b.altErr == nil {
			b.altErr = b.alt.ComputeExpected(4_000_000)
		}
	})
	return b.alt, b.altErr
}

// MustProgram is Program, panicking on error (benchmarks are static).
func (b *Benchmark) MustProgram() *prog.Program {
	p, err := b.Program()
	if err != nil {
		panic(fmt.Sprintf("bench %s: %v", b.Name, err))
	}
	return p
}

var registry []*Benchmark

func register(name, suite string, abft ABFTKind, onOoO bool, build func(seed uint32) (*prog.Program, error)) {
	registry = append(registry, &Benchmark{
		Name: name, Suite: suite, ABFT: abft, OnOoO: onOoO, build: build,
	})
}

// All returns every benchmark (the in-order core's suite), sorted by name.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ForOoO returns the out-of-order core's benchmark subset (8 SPEC + 3
// PERFECT, mirroring the paper).
func ForOoO() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.OnOoO {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns all benchmark names sorted.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// xorshift32 is the deterministic input generator shared by all benchmarks.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

func (x *xorshift32) intn(n uint32) uint32 { return x.next() % n }

// words produces n pseudo-random words bounded by lim.
func words(seed uint32, n int, lim uint32) []uint32 {
	x := xorshift32(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = x.intn(lim)
	}
	return out
}

// finish assembles a builder into a named program with vars attached.
func finish(name string, b *isa.Builder, data []uint32, memWords int, vars ...prog.Var) (*prog.Program, error) {
	p, err := prog.New(name, b.Items(), data, memWords)
	if err != nil {
		return nil, err
	}
	p.Vars = vars
	return p, nil
}
