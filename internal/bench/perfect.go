package bench

import (
	"math"

	"clear/internal/isa"
	"clear/internal/prog"
)

// The 7 DARPA-PERFECT-like signal/image-processing kernels. The three
// matrix-structured kernels (2d_convolution, debayer_filter, inner_product)
// are the ones the paper protects with ABFT correction; the rest admit only
// ABFT detection. All arithmetic is fixed point (integer), as is standard
// for embedded ports of these kernels.

// reseed perturbs an input buffer for alternate-input builds (seed 0 is
// the identity, preserving the canonical inputs).
func reseed(buf []uint32, seed uint32) {
	if seed == 0 {
		return
	}
	x := xorshift32(seed)
	for i := range buf {
		buf[i] = (buf[i] + x.next()) & 0xFF
	}
}

// reseedMod perturbs within [0, lim).
func reseedMod(buf []uint32, seed uint32, lim uint32) {
	if seed == 0 {
		return
	}
	x := xorshift32(seed)
	for i := range buf {
		buf[i] = (buf[i] + x.next()) % lim
	}
}

func init() {
	register("2d_convolution", "PERFECT", ABFTCorrection, true, buildConv2D)
	register("debayer_filter", "PERFECT", ABFTCorrection, true, buildDebayer)
	register("inner_product", "PERFECT", ABFTCorrection, true, buildInnerProduct)
	register("fft", "PERFECT", ABFTDetection, false, buildFFT)
	register("histogram_eq", "PERFECT", ABFTDetection, false, buildHistEq)
	register("interpolate", "PERFECT", ABFTDetection, false, buildInterp)
	register("outer_product", "PERFECT", ABFTDetection, false, buildOuterProduct)
}

// Conv2DInput returns the deterministic image and kernel used by the
// 2d_convolution benchmark (exported for the ABFT-protected variant).
func Conv2DInput() (img []uint32, ker []uint32, w, h int) {
	return words(0xC02D, 64, 256), []uint32{1, 2, 1, 2, 4, 2, 1, 2, 1}, 8, 8
}

// buildConv2D: 3x3 convolution over an 8x8 image (valid region 6x6).
func buildConv2D(seed uint32) (*prog.Program, error) {
	img, ker, w, h := Conv2DInput()
	reseed(img, seed)
	data := append(append([]uint32{}, img...), ker...)
	const kerBase = 64
	const outBase = 80 // 6x6 output

	b := isa.NewBuilder()
	b.Li(1, 0) // oy
	b.Label("oy")
	b.Li(2, 0) // ox
	b.Label("ox")
	b.Li(9, 0) // acc
	b.Li(3, 0) // ky
	b.Label("ky")
	b.Li(4, 0) // kx
	b.Label("kx")
	// img[(oy+ky)*8 + ox+kx]
	b.Add(5, 1, 3)
	b.Slli(5, 5, 3)
	b.Add(5, 5, 2)
	b.Add(5, 5, 4)
	b.Lw(6, 5, 0)
	// ker[ky*3+kx]
	b.Slli(7, 3, 1)
	b.Add(7, 7, 3)
	b.Add(7, 7, 4)
	b.Lw(8, 7, kerBase)
	b.Mul(6, 6, 8)
	b.Add(9, 9, 6)
	b.Addi(4, 4, 1)
	b.Slti(10, 4, 3)
	b.Bne(10, 0, "kx")
	b.Addi(3, 3, 1)
	b.Slti(10, 3, 3)
	b.Bne(10, 0, "ky")
	b.Srli(9, 9, 4) // normalize by 16
	// out[oy*6+ox]
	b.Slli(5, 1, 2)
	b.Add(5, 5, 1)
	b.Add(5, 5, 1) // oy*6
	b.Add(5, 5, 2)
	b.Sw(9, 5, outBase)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, int32(w-2))
	b.Bne(10, 0, "ox")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, int32(h-2))
	b.Bne(10, 0, "oy")
	// checksum
	b.Li(1, 0)
	b.Li(2, 36)
	b.Li(9, 0)
	b.Li(10, 7)
	b.Label("cs")
	b.Lw(5, 1, outBase)
	b.Mul(9, 9, 10)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finish("2d_convolution", b, data, 256,
		prog.Var{Name: "image", Addr: 0, Len: 64},
		prog.Var{Name: "output", Addr: outBase, Len: 36})
}

// DebayerInput returns the deterministic 8x8 RGGB mosaic (exported for the
// ABFT-protected variant).
func DebayerInput() []uint32 { return words(0xDEBA, 64, 256) }

// buildDebayer: bilinear green-channel demosaic of an RGGB mosaic. Interior
// pixels where green is not sampled get the average of the 4 neighbors.
func buildDebayer(seed uint32) (*prog.Program, error) {
	mosaic := DebayerInput()
	reseed(mosaic, seed)
	const outBase = 64 // 8x8 green plane

	b := isa.NewBuilder()
	b.Li(1, 1) // y (interior only)
	b.Label("y")
	b.Li(2, 1) // x
	b.Label("x")
	// green sampled at (y+x) odd in RGGB
	b.Add(5, 1, 2)
	b.Andi(5, 5, 1)
	b.Slli(6, 1, 3)
	b.Add(6, 6, 2) // idx = y*8+x
	b.Bne(5, 0, "sampled")
	// interpolate: (up + down + left + right) / 4
	b.Lw(7, 6, -8)
	b.Lw(8, 6, 8)
	b.Add(7, 7, 8)
	b.Lw(8, 6, -1)
	b.Add(7, 7, 8)
	b.Lw(8, 6, 1)
	b.Add(7, 7, 8)
	b.Srli(7, 7, 2)
	b.Jmp("store")
	b.Label("sampled")
	b.Lw(7, 6, 0)
	b.Label("store")
	b.Sw(7, 6, outBase)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 7)
	b.Bne(10, 0, "x")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, 7)
	b.Bne(10, 0, "y")
	// checksum of the interior green plane
	b.Li(1, 1)
	b.Li(9, 0)
	b.Li(11, 5)
	b.Label("csy")
	b.Li(2, 1)
	b.Label("csx")
	b.Slli(6, 1, 3)
	b.Add(6, 6, 2)
	b.Lw(5, 6, outBase)
	b.Mul(9, 9, 11)
	b.Add(9, 9, 5)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 7)
	b.Bne(10, 0, "csx")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, 7)
	b.Bne(10, 0, "csy")
	b.Out(9)
	b.Halt()
	return finish("debayer_filter", b, mosaic, 256,
		prog.Var{Name: "mosaic", Addr: 0, Len: 64},
		prog.Var{Name: "green", Addr: outBase, Len: 64})
}

// InnerProductInput returns the two deterministic vectors (exported for the
// ABFT-protected variant).
func InnerProductInput() (a, b []uint32, n int) {
	return words(0x1A2B, 48, 1000), words(0x3C4D, 48, 1000), 48
}

// buildInnerProduct: dot product of two 48-element vectors.
func buildInnerProduct(seed uint32) (*prog.Program, error) {
	av, bv, n := InnerProductInput()
	data := append(append([]uint32{}, av...), bv...)
	reseed(data, seed)
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, int32(n))
	b.Li(9, 0)
	b.Label("loop")
	b.Lw(4, 1, 0)
	b.Lw(5, 1, int32(n))
	b.Mul(4, 4, 5)
	b.Add(9, 9, 4)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Out(9)
	b.Halt()
	return finish("inner_product", b, data, 128,
		prog.Var{Name: "a", Addr: 0, Len: n},
		prog.Var{Name: "b", Addr: n, Len: n})
}

// FFTInput returns the 16-point input signal, the twiddle tables (Q8 fixed
// point) and the bit-reversal permutation (exported for the ABFT-detection
// variant).
func FFTInput() (re []uint32, cos, sin, brev []uint32) {
	re = words(0xFF70, 16, 256)
	cos = make([]uint32, 8)
	sin = make([]uint32, 8)
	for i := 0; i < 8; i++ {
		ang := 2 * math.Pi * float64(i) / 16
		cos[i] = uint32(int32(math.Round(256 * math.Cos(ang))))
		sin[i] = uint32(int32(math.Round(256 * math.Sin(ang))))
	}
	brev = make([]uint32, 16)
	for i := 0; i < 16; i++ {
		r := 0
		for b := 0; b < 4; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (3 - b)
			}
		}
		brev[i] = uint32(r)
	}
	return re, cos, sin, brev
}

// buildFFT: 16-point radix-2 decimation-in-time FFT in Q8 fixed point.
// Memory: re[16]@0, im[16]@16, cos[8]@32, sin[8]@40, brev[16]@48.
func buildFFT(seed uint32) (*prog.Program, error) {
	re, cosT, sinT, brev := FFTInput()
	data := make([]uint32, 64)
	copy(data[0:], re)
	reseed(data[0:16], seed)
	for i := 0; i < 16; i++ {
		data[i] &= 0xFF // keep Q8 input range
	}
	copy(data[32:], cosT)
	copy(data[40:], sinT)
	copy(data[48:], brev)
	const reB, imB, cosB, sinB, brB = 0, 16, 32, 40, 48

	b := isa.NewBuilder()
	// bit-reverse permutation (swap when i < j)
	b.Li(1, 0)
	b.Li(2, 16)
	b.Label("br")
	b.Lw(3, 1, brB)
	b.Bge(1, 3, "noswap")
	b.Lw(4, 1, reB)
	b.Lw(5, 3, reB)
	b.Sw(5, 1, reB)
	b.Sw(4, 3, reB)
	b.Label("noswap")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "br")
	// stages: s = half-size in {1,2,4,8}
	b.Li(1, 1) // s
	b.Label("stage")
	b.Li(2, 0) // k
	b.Label("grp")
	b.Li(3, 0) // j
	b.Label("bfy")
	// twiddle index t = j * (8/s)
	b.Li(4, 8)
	b.Div(4, 4, 1)
	b.Mul(4, 4, 3)
	b.Lw(5, 4, cosB) // wr
	b.Lw(6, 4, sinB) // wi (use w = wr - i*wi)
	// indices: lo = k+j, hi = lo+s
	b.Add(7, 2, 3)
	b.Add(8, 7, 1)
	// tr = (wr*re[hi] + wi*im[hi]) >> 8 ; ti = (wr*im[hi] - wi*re[hi]) >> 8
	b.Lw(9, 8, reB)
	b.Lw(10, 8, imB)
	b.Mul(11, 5, 9)
	b.Mul(12, 6, 10)
	b.Add(11, 11, 12)
	b.Srai(11, 11, 8) // tr
	b.Mul(12, 5, 10)
	b.Mul(13, 6, 9)
	b.Sub(12, 12, 13)
	b.Srai(12, 12, 8) // ti
	// hi = lo - t ; lo = lo + t
	b.Lw(9, 7, reB)
	b.Lw(10, 7, imB)
	b.Sub(13, 9, 11)
	b.Sw(13, 8, reB)
	b.Add(13, 9, 11)
	b.Sw(13, 7, reB)
	b.Sub(13, 10, 12)
	b.Sw(13, 8, imB)
	b.Add(13, 10, 12)
	b.Sw(13, 7, imB)
	b.Addi(3, 3, 1)
	b.Blt(3, 1, "bfy")
	// k += 2s
	b.Slli(4, 1, 1)
	b.Add(2, 2, 4)
	b.Slti(4, 2, 16)
	b.Bne(4, 0, "grp")
	b.Slli(1, 1, 1)
	b.Slti(4, 1, 16)
	b.Bne(4, 0, "stage")
	// output checksums of re and im
	for _, base := range []int32{reB, imB} {
		b.Li(1, 0)
		b.Li(2, 16)
		b.Li(9, 0)
		lbl := "csre"
		if base == imB {
			lbl = "csim"
		}
		b.Label(lbl)
		b.Lw(5, 1, base)
		b.Slli(9, 9, 1)
		b.Add(9, 9, 5)
		b.Addi(1, 1, 1)
		b.Bne(1, 2, lbl)
		b.Out(9)
	}
	b.Halt()
	return finish("fft", b, data, 128,
		prog.Var{Name: "re", Addr: reB, Len: 16},
		prog.Var{Name: "im", Addr: imB, Len: 16})
}

// HistEqInput returns the deterministic pixel buffer (exported for the
// ABFT-detection variant).
func HistEqInput() []uint32 { return words(0x4157, 64, 64) }

// buildHistEq: 16-bin histogram equalization of 64 pixels.
func buildHistEq(seed uint32) (*prog.Program, error) {
	pix := HistEqInput()
	reseedMod(pix, seed, 64)
	const histB = 64 // 16 bins
	const cdfB = 80  // 16 entries
	const outB = 96  // remapped pixels

	b := isa.NewBuilder()
	// clear histogram
	b.Li(1, 0)
	b.Li(2, 16)
	b.Label("clr")
	b.Sw(0, 1, histB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "clr")
	// build histogram: bin = pix >> 2
	b.Li(1, 0)
	b.Li(2, 64)
	b.Label("hist")
	b.Lw(3, 1, 0)
	b.Srli(3, 3, 2)
	b.Add(4, 3, 0)
	b.Lw(5, 4, histB)
	b.Addi(5, 5, 1)
	b.Sw(5, 4, histB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "hist")
	// prefix sum -> CDF
	b.Li(1, 0)
	b.Li(2, 16)
	b.Li(9, 0)
	b.Label("cdf")
	b.Lw(5, 1, histB)
	b.Add(9, 9, 5)
	b.Sw(9, 1, cdfB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cdf")
	// remap: out = cdf[bin] * 63 / 64
	b.Li(1, 0)
	b.Li(2, 64)
	b.Label("map")
	b.Lw(3, 1, 0)
	b.Srli(3, 3, 2)
	b.Lw(5, 3, cdfB)
	b.Li(6, 63)
	b.Mul(5, 5, 6)
	b.Srli(5, 5, 6)
	b.Sw(5, 1, outB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "map")
	// checksum
	b.Li(1, 0)
	b.Li(9, 0)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Slli(9, 9, 1)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finish("histogram_eq", b, pix, 256,
		prog.Var{Name: "pixels", Addr: 0, Len: 64},
		prog.Var{Name: "hist", Addr: histB, Len: 16})
}

// InterpInput returns the deterministic sample buffer (exported for the
// ABFT-detection variant).
func InterpInput() []uint32 { return words(0x1291, 32, 1024) }

// buildInterp: 2x linear interpolation of 32 samples to 63.
func buildInterp(seed uint32) (*prog.Program, error) {
	samples := InterpInput()
	reseedMod(samples, seed, 1024)
	const outB = 64

	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 31)
	b.Label("loop")
	b.Lw(3, 1, 0) // s[i]
	b.Lw(4, 1, 1) // s[i+1]
	b.Slli(5, 1, 1)
	b.Sw(3, 5, outB) // out[2i] = s[i]
	b.Add(6, 3, 4)
	b.Srli(6, 6, 1)
	b.Sw(6, 5, outB+1) // out[2i+1] = avg
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Lw(3, 2, 0)
	b.Slli(5, 2, 1)
	b.Sw(3, 5, outB) // out[62] = s[31]
	// checksum
	b.Li(1, 0)
	b.Li(2, 63)
	b.Li(9, 0)
	b.Li(10, 3)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Mul(9, 9, 10)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finish("interpolate", b, samples, 256,
		prog.Var{Name: "samples", Addr: 0, Len: 32})
}

// OuterProductInput returns the two deterministic vectors (exported for the
// ABFT-detection variant).
func OuterProductInput() (u, v []uint32, n int) {
	return words(0x0672, 8, 200), words(0x0673, 8, 200), 8
}

// buildOuterProduct: 8x8 outer product accumulated into a matrix.
func buildOuterProduct(seed uint32) (*prog.Program, error) {
	u, v, n := OuterProductInput()
	data := append(append([]uint32{}, u...), v...)
	reseedMod(data, seed, 200)
	const outB = 16 // 64-entry matrix

	b := isa.NewBuilder()
	b.Li(1, 0) // i
	b.Label("i")
	b.Li(2, 0) // j
	b.Lw(4, 1, 0)
	b.Label("j")
	b.Lw(5, 2, int32(n))
	b.Mul(6, 4, 5)
	b.Slli(7, 1, 3)
	b.Add(7, 7, 2)
	b.Lw(8, 7, outB)
	b.Add(8, 8, 6)
	b.Sw(8, 7, outB)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, int32(n))
	b.Bne(10, 0, "j")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, int32(n))
	b.Bne(10, 0, "i")
	// checksum
	b.Li(1, 0)
	b.Li(2, 64)
	b.Li(9, 0)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Slli(9, 9, 1)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finish("outer_product", b, data, 128,
		prog.Var{Name: "u", Addr: 0, Len: n},
		prog.Var{Name: "v", Addr: n, Len: n})
}
