package recovery

import (
	"testing"

	"clear/internal/ino"
	"clear/internal/ooo"
)

func TestValidity(t *testing.T) {
	cases := []struct {
		k    Kind
		core string
		ok   bool
	}{
		{None, "InO", true}, {None, "OoO", true},
		{Flush, "InO", true}, {Flush, "OoO", false},
		{RoB, "OoO", true}, {RoB, "InO", false},
		{IR, "InO", true}, {IR, "OoO", true},
		{EIR, "InO", true}, {EIR, "OoO", true},
	}
	for _, c := range cases {
		if Valid(c.k, c.core) != c.ok {
			t.Errorf("Valid(%v,%s) = %v, want %v", c.k, c.core, !c.ok, c.ok)
		}
	}
}

func TestCostsMatchPaperOrdering(t *testing.T) {
	// Table 15: recovery is expensive on the small core, nearly free on
	// the big one; EIR > IR > flush on InO.
	irI := Cost(IR, "InO")
	eirI := Cost(EIR, "InO")
	flI := Cost(Flush, "InO")
	if !(eirI.Area > irI.Area && irI.Area > flI.Area) {
		t.Fatalf("InO area ordering broken: %v %v %v", eirI.Area, irI.Area, flI.Area)
	}
	irO := Cost(IR, "OoO")
	robO := Cost(RoB, "OoO")
	if irO.Area >= irI.Area/10 {
		t.Fatalf("OoO IR (%v) should be far cheaper than InO IR (%v)", irO.Area, irI.Area)
	}
	if robO.Area > irO.Area {
		t.Fatal("RoB should be the cheapest OoO recovery")
	}
	if flI.ExecTime <= 0 {
		t.Fatal("flush recovery has a pipeline-refill execution cost")
	}
}

func TestLatencies(t *testing.T) {
	if Latency(Flush, "InO") >= Latency(IR, "InO") {
		t.Fatal("flush should be faster than replay")
	}
	if Latency(RoB, "OoO") >= Latency(IR, "OoO") {
		t.Fatal("RoB flush should be faster than instruction replay")
	}
	for _, c := range []struct {
		k    Kind
		core string
		want int
	}{
		{IR, "InO", 47}, {Flush, "InO", 7}, {IR, "OoO", 104}, {RoB, "OoO", 64},
	} {
		if got := Latency(c.k, c.core); got != c.want {
			t.Errorf("Latency(%v,%s) = %d, want %d", c.k, c.core, got, c.want)
		}
	}
}

func TestRecoverabilityInO(t *testing.T) {
	space := ino.Space()
	// flush cannot recover post-memory-write flip-flops
	post := space.BitsOf("w.result")[0]
	pre := space.BitsOf("d.inst")[0]
	if Recoverable(Flush, "InO", space, post) {
		t.Fatal("writeback FFs must be flush-unrecoverable")
	}
	if !Recoverable(Flush, "InO", space, pre) {
		t.Fatal("decode FFs must be flush-recoverable")
	}
	// IR recovers everything
	if !Recoverable(IR, "InO", space, post) || !Recoverable(EIR, "InO", space, post) {
		t.Fatal("IR/EIR must recover any pipeline FF")
	}
	// flush on the wrong core
	if Recoverable(Flush, "OoO", ooo.Space(), 0) {
		t.Fatal("flush is not an OoO mechanism")
	}
}

func TestRecoverabilityOoO(t *testing.T) {
	space := ooo.Space()
	stq := space.BitsOf("mem.stq.data0")[0]
	rob := space.BitsOf("rob.val0")[0]
	if Recoverable(RoB, "OoO", space, stq) {
		t.Fatal("committed-store-path FFs must be RoB-unrecoverable")
	}
	if !Recoverable(RoB, "OoO", space, rob) {
		t.Fatal("ROB FFs must be RoB-recoverable")
	}
	if !Recoverable(IR, "OoO", space, stq) {
		t.Fatal("IR must recover the store queue")
	}
	if Recoverable(None, "OoO", space, rob) {
		t.Fatal("no recovery recovers nothing")
	}
}

func TestUnrecoverableUnits(t *testing.T) {
	if len(UnrecoverableUnits(Flush, "InO")) == 0 {
		t.Fatal("flush must list unrecoverable units")
	}
	if len(UnrecoverableUnits(RoB, "OoO")) == 0 {
		t.Fatal("RoB must list unrecoverable units")
	}
	if UnrecoverableUnits(IR, "InO") != nil {
		t.Fatal("IR recovers everything")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Flush: "flush", RoB: "RoB", IR: "IR", EIR: "EIR"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
