// Package recovery models the four hardware error recovery techniques
// (paper Table 15, Figs 4/5): instruction replay (IR), extended instruction
// replay (EIR, with the extra buffers DFC needs), pipeline flush, and
// reorder-buffer (RoB) flush. Each has a hardware cost, a recovery latency,
// and a recoverability predicate — flush/RoB recovery cannot recover errors
// in flip-flops past the commit point, which is why Heuristic 1 hardens
// those flip-flops with LEAP-DICE instead.
package recovery

import (
	"clear/internal/ff"
	"clear/internal/power"
)

// Kind identifies a recovery technique.
type Kind int

// Recovery techniques. None means unconstrained recovery (errors are
// detected but corrected externally; detected errors count as DUE).
const (
	None Kind = iota
	Flush
	RoB
	IR
	EIR
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Flush:
		return "flush"
	case RoB:
		return "RoB"
	case IR:
		return "IR"
	case EIR:
		return "EIR"
	}
	return "?"
}

// CoreName selects the recovery cost table ("InO" or "OoO").
//
// The constants reproduce the paper's Table 15: recovery hardware for the
// in-order core is relatively expensive (shadow register file and replay
// buffers are large next to a small core), while the same structures are
// negligible next to the out-of-order core.
var costs = map[string]map[Kind]power.Cost{
	"InO": {
		IR:    {Area: 0.16, Power: 0.21},
		EIR:   {Area: 0.34, Power: 0.32},
		Flush: {Area: 0.006, Power: 0.009, ExecTime: 0.009},
	},
	"OoO": {
		IR:  {Area: 0.001, Power: 0.001},
		EIR: {Area: 0.002, Power: 0.001},
		RoB: {Area: 0.0001, Power: 0.0001},
	},
}

// latencies in cycles (Table 15).
var latencies = map[string]map[Kind]int{
	"InO": {IR: 47, EIR: 47, Flush: 7},
	"OoO": {IR: 104, EIR: 104, RoB: 64},
}

// Valid reports whether k exists for the given core.
func Valid(k Kind, core string) bool {
	if k == None {
		return true
	}
	_, ok := costs[core][k]
	return ok
}

// Cost returns the hardware cost of recovery k on the given core.
func Cost(k Kind, core string) power.Cost {
	return costs[core][k]
}

// Latency returns the recovery latency in cycles.
func Latency(k Kind, core string) int {
	return latencies[core][k]
}

// flushUnrecoverableInO lists in-order pipeline units whose flip-flops sit
// past the memory-write stage (the paper: "errors detected after the memory
// write stage" escape flush recovery). The memory-stage input latch itself
// is recoverable: detection fires before its access commits.
var flushUnrecoverableInO = map[string]bool{
	"exception": true, "write": true, "dcache": true,
}

// robUnrecoverableOoO lists out-of-order units past the reorder buffer
// (the committed-store path).
var robUnrecoverableOoO = map[string]bool{
	"stq": true,
}

// Recoverable reports whether an error detected in the given flip-flop can
// be recovered by technique k. IR and EIR recover any pipeline flip-flop;
// flush and RoB cannot recover past the commit point.
func Recoverable(k Kind, core string, space *ff.Space, bit int) bool {
	switch k {
	case IR, EIR:
		return true
	case Flush:
		if core != "InO" {
			return false
		}
		return !flushUnrecoverableInO[space.UnitOf(bit)]
	case RoB:
		if core != "OoO" {
			return false
		}
		return !robUnrecoverableOoO[space.UnitOf(bit)]
	}
	return false
}

// UnrecoverableUnits returns the unit names k cannot recover on the core.
func UnrecoverableUnits(k Kind, core string) []string {
	switch {
	case k == Flush && core == "InO":
		return []string{"exception", "write", "dcache"}
	case k == RoB && core == "OoO":
		return []string{"stq"}
	}
	return nil
}
