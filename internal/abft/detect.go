package abft

import (
	"clear/internal/bench"
	"clear/internal/isa"
	"clear/internal/prog"
)

// fftGoModel replicates the benchmark's fixed-point FFT bit-exactly so the
// Parseval tolerance can be trained at build time (the paper trains ABFT
// detection thresholds the same way: from error-free runs).
func fftGoModel() (re, im []int32) {
	reIn, cosT, sinT, brev := bench.FFTInput()
	re = make([]int32, 16)
	im = make([]int32, 16)
	for i, v := range reIn {
		re[i] = int32(v)
	}
	for i := 0; i < 16; i++ {
		j := int(brev[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
		}
	}
	for s := 1; s < 16; s <<= 1 {
		for k := 0; k < 16; k += 2 * s {
			for j := 0; j < s; j++ {
				t := j * (8 / s)
				wr := int32(cosT[t])
				wi := int32(sinT[t])
				hi := k + j + s
				lo := k + j
				tr := (wr*re[hi] + wi*im[hi]) >> 8
				ti := (wr*im[hi] - wi*re[hi]) >> 8
				re[hi] = re[lo] - tr
				im[hi] = im[lo] - ti
				re[lo] = re[lo] + tr
				im[lo] = im[lo] + ti
			}
		}
	}
	return re, im
}

// fftDetect: the FFT kernel followed by a Parseval-theorem energy check
// (Σ|x|² vs Σ|X|²/N within a trained fixed-point tolerance). Expensive, as
// the paper notes for FFT ABFT detection: it needs a full extra pass of
// multiplies.
func fftDetect(Mode) (*prog.Program, error) {
	reIn, cosT, sinT, brev := bench.FFTInput()
	data := make([]uint32, 64)
	copy(data[0:], reIn)
	copy(data[32:], cosT)
	copy(data[40:], sinT)
	copy(data[48:], brev)
	const reB, imB, cosB, sinB, brB = 0, 16, 32, 40, 48

	// Train the tolerance from the bit-exact model.
	inEnergy := int64(0)
	for _, v := range reIn {
		inEnergy += int64(int32(v)) * int64(int32(v))
	}
	reOut, imOut := fftGoModel()
	outEnergy := int64(0)
	for i := 0; i < 16; i++ {
		outEnergy += int64(reOut[i])*int64(reOut[i]) + int64(imOut[i])*int64(imOut[i])
	}
	diff := inEnergy - outEnergy/16
	if diff < 0 {
		diff = -diff
	}
	tol := int32(diff + diff/4 + 64) // trained bound with margin

	b := isa.NewBuilder()
	// input energy before the transform destroys the input
	b.Li(1, 0)
	b.Li(2, 16)
	b.Li(12, 0)
	b.Label("ein")
	b.Lw(3, 1, reB)
	b.Mul(3, 3, 3)
	b.Add(12, 12, 3)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "ein")
	b.Sw(12, 0, 100) // stash input energy (above the tables)

	// ---- the FFT proper (identical to the benchmark kernel) ----
	b.Li(1, 0)
	b.Li(2, 16)
	b.Label("br")
	b.Lw(3, 1, brB)
	b.Bge(1, 3, "noswap")
	b.Lw(4, 1, reB)
	b.Lw(5, 3, reB)
	b.Sw(5, 1, reB)
	b.Sw(4, 3, reB)
	b.Label("noswap")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "br")
	b.Li(1, 1)
	b.Label("stage")
	b.Li(2, 0)
	b.Label("grp")
	b.Li(3, 0)
	b.Label("bfy")
	b.Li(4, 8)
	b.Div(4, 4, 1)
	b.Mul(4, 4, 3)
	b.Lw(5, 4, cosB)
	b.Lw(6, 4, sinB)
	b.Add(7, 2, 3)
	b.Add(8, 7, 1)
	b.Lw(9, 8, reB)
	b.Lw(10, 8, imB)
	b.Mul(11, 5, 9)
	b.Mul(12, 6, 10)
	b.Add(11, 11, 12)
	b.Srai(11, 11, 8)
	b.Mul(12, 5, 10)
	b.Mul(13, 6, 9)
	b.Sub(12, 12, 13)
	b.Srai(12, 12, 8)
	b.Lw(9, 7, reB)
	b.Lw(10, 7, imB)
	b.Sub(13, 9, 11)
	b.Sw(13, 8, reB)
	b.Add(13, 9, 11)
	b.Sw(13, 7, reB)
	b.Sub(13, 10, 12)
	b.Sw(13, 8, imB)
	b.Add(13, 10, 12)
	b.Sw(13, 7, imB)
	b.Addi(3, 3, 1)
	b.Blt(3, 1, "bfy")
	b.Slli(4, 1, 1)
	b.Add(2, 2, 4)
	b.Slti(4, 2, 16)
	b.Bne(4, 0, "grp")
	b.Slli(1, 1, 1)
	b.Slti(4, 1, 16)
	b.Bne(4, 0, "stage")

	// ---- Parseval check ----
	b.Li(1, 0)
	b.Li(2, 16)
	b.Li(11, 0)
	b.Label("eout")
	b.Lw(3, 1, reB)
	b.Mul(4, 3, 3)
	b.Lw(3, 1, imB)
	b.Mul(5, 3, 3)
	b.Add(11, 11, 4)
	b.Add(11, 11, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "eout")
	b.Srai(11, 11, 4) // /16
	b.Lw(12, 0, 100)
	b.Sub(11, 12, 11)
	b.Srai(4, 11, 31)
	b.Xor(11, 11, 4)
	b.Sub(11, 11, 4) // abs
	b.Li(4, tol)
	b.Blt(11, 4, "ok")
	b.Trapd()
	b.Label("ok")
	// the benchmark's original output checksums
	for _, base := range []int32{reB, imB} {
		b.Li(1, 0)
		b.Li(2, 16)
		b.Li(9, 0)
		lbl := "csre"
		if base == imB {
			lbl = "csim"
		}
		b.Label(lbl)
		b.Lw(5, 1, base)
		b.Slli(9, 9, 1)
		b.Add(9, 9, 5)
		b.Addi(1, 1, 1)
		b.Bne(1, 2, lbl)
		b.Out(9)
	}
	b.Halt()
	return finishP("fft+abftd", b, data, 128)
}

// histEqDetect: the histogram-equalization kernel with exact invariant
// checks — histogram mass must equal the pixel count, and the CDF must be
// monotone with final value equal to the pixel count.
func histEqDetect(Mode) (*prog.Program, error) {
	pix := bench.HistEqInput()
	const histB = 64
	const cdfB = 80
	const outB = 96

	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 16)
	b.Label("clr")
	b.Sw(0, 1, histB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "clr")
	b.Li(1, 0)
	b.Li(2, 64)
	b.Label("hist")
	b.Lw(3, 1, 0)
	b.Srli(3, 3, 2)
	b.Add(4, 3, 0)
	b.Lw(5, 4, histB)
	b.Addi(5, 5, 1)
	b.Sw(5, 4, histB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "hist")
	// invariant 1: sum(hist) == 64
	b.Li(1, 0)
	b.Li(2, 16)
	b.Li(9, 0)
	b.Label("mass")
	b.Lw(5, 1, histB)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "mass")
	b.Li(5, 64)
	b.Beq(9, 5, "massok")
	b.Trapd()
	b.Label("massok")
	// CDF
	b.Li(1, 0)
	b.Li(2, 16)
	b.Li(9, 0)
	b.Label("cdf")
	b.Lw(5, 1, histB)
	b.Add(9, 9, 5)
	b.Sw(9, 1, cdfB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cdf")
	// invariant 2: cdf[15] == 64 and cdf monotone
	b.Lw(5, 0, cdfB+15)
	b.Li(6, 64)
	b.Beq(5, 6, "cdfok")
	b.Trapd()
	b.Label("cdfok")
	b.Li(1, 1)
	b.Label("mono")
	b.Lw(5, 1, cdfB-1)
	b.Lw(6, 1, cdfB)
	b.Bge(6, 5, "monok")
	b.Trapd()
	b.Label("monok")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "mono")
	// remap + checksum (as in the benchmark)
	b.Li(1, 0)
	b.Li(2, 64)
	b.Label("map")
	b.Lw(3, 1, 0)
	b.Srli(3, 3, 2)
	b.Lw(5, 3, cdfB)
	b.Li(6, 63)
	b.Mul(5, 5, 6)
	b.Srli(5, 5, 6)
	b.Sw(5, 1, outB)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "map")
	b.Li(1, 0)
	b.Li(9, 0)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Slli(9, 9, 1)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finishP("histogram_eq+abftd", b, pix, 256)
}

// interpDetect: interpolation followed by a full recompute-and-compare
// verification pass — the expensive style of ABFT detection the paper
// observes (up to ~57% execution-time impact).
func interpDetect(Mode) (*prog.Program, error) {
	samples := bench.InterpInput()
	const outB = 64

	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 31)
	b.Label("loop")
	b.Lw(3, 1, 0)
	b.Lw(4, 1, 1)
	b.Slli(5, 1, 1)
	b.Sw(3, 5, outB)
	b.Add(6, 3, 4)
	b.Srli(6, 6, 1)
	b.Sw(6, 5, outB+1)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Lw(3, 2, 0)
	b.Slli(5, 2, 1)
	b.Sw(3, 5, outB)
	// verification pass: recompute every output from the input and compare
	b.Li(1, 0)
	b.Label("verify")
	b.Lw(3, 1, 0)
	b.Lw(4, 1, 1)
	b.Slli(5, 1, 1)
	b.Lw(7, 5, outB)
	b.Beq(7, 3, "v1ok")
	b.Trapd()
	b.Label("v1ok")
	b.Add(6, 3, 4)
	b.Srli(6, 6, 1)
	b.Lw(7, 5, outB+1)
	b.Beq(7, 6, "v2ok")
	b.Trapd()
	b.Label("v2ok")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "verify")
	// checksum (as in the benchmark)
	b.Li(1, 0)
	b.Li(2, 63)
	b.Li(9, 0)
	b.Li(10, 3)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Mul(9, 9, 10)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finishP("interpolate+abftd", b, samples, 256)
}

// outerDetect: the classical Huang-Abraham check — every output row's sum
// must equal u[i]·Σv (exact in integer arithmetic).
func outerDetect(Mode) (*prog.Program, error) {
	u, v, n := bench.OuterProductInput()
	data := append(append([]uint32{}, u...), v...)
	const outB = 16

	b := isa.NewBuilder()
	// Σv
	b.Li(1, 0)
	b.Li(2, int32(n))
	b.Li(12, 0)
	b.Label("sv")
	b.Lw(5, 1, int32(n))
	b.Add(12, 12, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "sv")
	// outer product (as in the benchmark)
	b.Li(1, 0)
	b.Label("i")
	b.Li(2, 0)
	b.Lw(4, 1, 0)
	b.Label("j")
	b.Lw(5, 2, int32(n))
	b.Mul(6, 4, 5)
	b.Slli(7, 1, 3)
	b.Add(7, 7, 2)
	b.Lw(8, 7, outB)
	b.Add(8, 8, 6)
	b.Sw(8, 7, outB)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, int32(n))
	b.Bne(10, 0, "j")
	// row checksum: Σ_j out[i][j] == u[i]·Σv
	b.Li(2, 0)
	b.Li(11, 0)
	b.Label("rc")
	b.Slli(7, 1, 3)
	b.Add(7, 7, 2)
	b.Lw(8, 7, outB)
	b.Add(11, 11, 8)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, int32(n))
	b.Bne(10, 0, "rc")
	b.Mul(9, 4, 12)
	b.Beq(11, 9, "rowok")
	b.Trapd()
	b.Label("rowok")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, int32(n))
	b.Bne(10, 0, "i")
	// checksum (as in the benchmark)
	b.Li(1, 0)
	b.Li(2, 64)
	b.Li(9, 0)
	b.Label("cs")
	b.Lw(5, 1, outB)
	b.Slli(9, 9, 1)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	return finishP("outer_product+abftd", b, data, 128)
}
