// Package abft implements algorithm-based fault tolerance (paper Sec 2.4
// "Algorithm", Sec 3.2): protected variants of the PERFECT kernels.
//
// The three matrix-structured kernels (inner_product, 2d_convolution,
// debayer_filter) get ABFT *correction*: cheap running checksums verified
// against the produced outputs, with in-place recomputation on mismatch
// (and TRAPD only if recomputation disagrees again). The remaining kernels
// get ABFT *detection*: invariant checks (histogram mass, Parseval energy
// with a trained tolerance, row checksums, recompute-and-compare) that
// TRAPD on violation — detection-only, which is why the paper finds these
// cannot improve DUE and often cost much more execution time.
package abft

import (
	"fmt"

	"clear/internal/bench"
	"clear/internal/isa"
	"clear/internal/prog"
)

// Mode selects the ABFT flavor of a protected kernel.
type Mode int

// ABFT modes.
const (
	Correction Mode = iota
	Detection
)

func (m Mode) String() string {
	if m == Correction {
		return "abft-correction"
	}
	return "abft-detection"
}

// Supports reports whether the named benchmark has an ABFT variant in the
// given mode. Correction exists only for the matrix-structured kernels;
// every correction-capable kernel can also run detection-only.
func Supports(name string, m Mode) bool {
	b := bench.ByName(name)
	if b == nil {
		return false
	}
	switch b.ABFT {
	case bench.ABFTCorrection:
		return true
	case bench.ABFTDetection:
		return m == Detection
	}
	return false
}

// CorrectionKernels lists the benchmarks with ABFT-correction variants.
func CorrectionKernels() []string {
	return []string{"2d_convolution", "debayer_filter", "inner_product"}
}

// DetectionKernels lists the benchmarks with detection-only ABFT variants.
func DetectionKernels() []string {
	return []string{"fft", "histogram_eq", "interpolate", "outer_product"}
}

// Program builds the ABFT-protected variant of the named benchmark. The
// protected program produces the same outputs as the original.
func Program(name string, m Mode) (*prog.Program, error) {
	var build func(Mode) (*prog.Program, error)
	switch name {
	case "inner_product":
		build = innerProduct
	case "2d_convolution":
		build = conv2D
	case "debayer_filter":
		build = debayer
	case "fft":
		if m == Correction {
			return nil, fmt.Errorf("abft: fft supports detection only")
		}
		build = fftDetect
	case "histogram_eq":
		if m == Correction {
			return nil, fmt.Errorf("abft: histogram_eq supports detection only")
		}
		build = histEqDetect
	case "interpolate":
		if m == Correction {
			return nil, fmt.Errorf("abft: interpolate supports detection only")
		}
		build = interpDetect
	case "outer_product":
		if m == Correction {
			return nil, fmt.Errorf("abft: outer_product supports detection only")
		}
		build = outerDetect
	default:
		return nil, fmt.Errorf("abft: %s has no ABFT variant", name)
	}
	p, err := build(m)
	if err != nil {
		return nil, err
	}
	if err := p.ComputeExpected(8_000_000); err != nil {
		return nil, err
	}
	orig := bench.ByName(name).MustProgram()
	if !orig.OutputsEqual(p.Expected) {
		return nil, fmt.Errorf("abft: %s variant changed outputs", name)
	}
	return p, nil
}

// finishP assembles with error context.
func finishP(name string, b *isa.Builder, data []uint32, mem int) (*prog.Program, error) {
	return prog.New(name, b.Items(), data, mem)
}

// innerProduct: dual-accumulation checksum. The dot product is accumulated
// twice into independent registers; a mismatch triggers one in-place
// recomputation (correction); persistent mismatch detects.
func innerProduct(m Mode) (*prog.Program, error) {
	av, bv, n := bench.InnerProductInput()
	data := append(append([]uint32{}, av...), bv...)
	b := isa.NewBuilder()
	b.Li(6, 0) // retry count
	b.Label("compute")
	b.Li(1, 0)
	b.Li(2, int32(n))
	b.Li(9, 0)  // primary accumulator
	b.Li(10, 0) // checksum accumulator
	b.Label("loop")
	b.Lw(4, 1, 0)
	b.Lw(5, 1, int32(n))
	b.Mul(4, 4, 5)
	b.Add(9, 9, 4)
	b.Add(10, 10, 4) // checksum duplicate
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Beq(9, 10, "good")
	// mismatch: correct by recomputation (once)
	b.Addi(6, 6, 1)
	b.Li(5, 2)
	b.Blt(6, 5, "compute")
	b.Trapd() // correction failed
	b.Label("good")
	b.Out(9)
	b.Halt()
	name := "inner_product+abftc"
	if m == Detection {
		name = "inner_product+abftd"
	}
	return finishP(name, b, data, 128)
}

// conv2D: per-row running checksums verified against a re-scan of the
// output row; mismatching rows are recomputed in place.
func conv2D(m Mode) (*prog.Program, error) {
	img, ker, w, h := bench.Conv2DInput()
	data := append(append([]uint32{}, img...), ker...)
	const kerBase = 64
	const outBase = 80
	const rowSum = 120 // 6 row checksums

	b := isa.NewBuilder()
	b.Li(1, 0) // oy
	b.Label("oy")
	b.Li(13, 0) // row retry count
	b.Label("rowstart")
	b.Li(2, 0)  // ox
	b.Li(12, 0) // row running checksum
	b.Label("ox")
	b.Li(9, 0)  // primary accumulator
	b.Li(11, 0) // independent check accumulator (the ABFT data path)
	b.Li(3, 0)
	b.Label("ky")
	b.Li(4, 0)
	b.Label("kx")
	b.Add(5, 1, 3)
	b.Slli(5, 5, 3)
	b.Add(5, 5, 2)
	b.Add(5, 5, 4)
	b.Lw(6, 5, 0)
	b.Slli(7, 3, 1)
	b.Add(7, 7, 3)
	b.Add(7, 7, 4)
	b.Lw(8, 7, kerBase)
	b.Mul(6, 6, 8)
	b.Add(9, 9, 6)
	b.Add(11, 11, 6) // duplicate accumulation
	b.Addi(4, 4, 1)
	b.Slti(10, 4, 3)
	b.Bne(10, 0, "kx")
	b.Addi(3, 3, 1)
	b.Slti(10, 3, 3)
	b.Bne(10, 0, "ky")
	b.Srli(9, 9, 4)
	b.Srli(11, 11, 4)
	// per-pixel check: accumulators must agree; mismatch -> recompute row
	b.Beq(9, 11, "pixok")
	b.Addi(13, 13, 1)
	b.Li(5, 3)
	b.Blt(13, 5, "rowstart")
	b.Trapd()
	b.Label("pixok")
	b.Add(12, 12, 9) // running row checksum
	b.Slli(5, 1, 2)
	b.Add(5, 5, 1)
	b.Add(5, 5, 1)
	b.Add(5, 5, 2)
	b.Sw(9, 5, outBase)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, int32(w-2))
	b.Bne(10, 0, "ox")
	// verify row: re-sum stored outputs
	b.Slli(5, 1, 2)
	b.Add(5, 5, 1)
	b.Add(5, 5, 1) // oy*6
	b.Li(2, 0)
	b.Li(11, 0)
	b.Label("vrow")
	b.Add(6, 5, 2)
	b.Lw(7, 6, outBase)
	b.Add(11, 11, 7)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 6)
	b.Bne(10, 0, "vrow")
	b.Sw(12, 1, rowSum)
	b.Beq(11, 12, "rowok")
	// checksum mismatch: recompute this row once, then give up
	b.Addi(13, 13, 1)
	b.Li(5, 2)
	b.Blt(13, 5, "rowstart")
	b.Trapd()
	b.Label("rowok")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, int32(h-2))
	b.Bne(10, 0, "oy")
	// original output checksum
	b.Li(1, 0)
	b.Li(2, 36)
	b.Li(9, 0)
	b.Li(10, 7)
	b.Label("cs")
	b.Lw(5, 1, outBase)
	b.Mul(9, 9, 10)
	b.Add(9, 9, 5)
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "cs")
	b.Out(9)
	b.Halt()
	name := "2d_convolution+abftc"
	if m == Detection {
		name = "2d_convolution+abftd"
	}
	return finishP(name, b, data, 256)
}

// debayer: per-row running checksum with re-scan verification and in-place
// row recomputation, like conv2D.
func debayer(m Mode) (*prog.Program, error) {
	mosaic := bench.DebayerInput()
	const outBase = 64

	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Label("y")
	b.Li(13, 0)
	b.Label("rowstart")
	b.Li(2, 1)
	b.Li(12, 0) // running checksum
	b.Label("x")
	b.Add(5, 1, 2)
	b.Andi(5, 5, 1)
	b.Slli(6, 1, 3)
	b.Add(6, 6, 2)
	b.Bne(5, 0, "sampled")
	b.Lw(7, 6, -8)
	b.Lw(8, 6, 8)
	b.Add(7, 7, 8)
	b.Lw(8, 6, -1)
	b.Add(7, 7, 8)
	b.Lw(8, 6, 1)
	b.Add(7, 7, 8)
	b.Srli(7, 7, 2)
	// independent recomputation of the interpolation (ABFT check path)
	b.Lw(9, 6, -8)
	b.Lw(8, 6, 8)
	b.Add(9, 9, 8)
	b.Lw(8, 6, -1)
	b.Add(9, 9, 8)
	b.Lw(8, 6, 1)
	b.Add(9, 9, 8)
	b.Srli(9, 9, 2)
	b.Beq(7, 9, "store")
	b.Addi(13, 13, 1)
	b.Li(5, 3)
	b.Blt(13, 5, "rowstart")
	b.Trapd()
	b.Jmp("store")
	b.Label("sampled")
	b.Lw(7, 6, 0)
	b.Label("store")
	b.Sw(7, 6, outBase)
	b.Add(12, 12, 7)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 7)
	b.Bne(10, 0, "x")
	// verify row
	b.Li(2, 1)
	b.Li(11, 0)
	b.Label("vx")
	b.Slli(6, 1, 3)
	b.Add(6, 6, 2)
	b.Lw(7, 6, outBase)
	b.Add(11, 11, 7)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 7)
	b.Bne(10, 0, "vx")
	b.Beq(11, 12, "rowok")
	b.Addi(13, 13, 1)
	b.Li(5, 2)
	b.Blt(13, 5, "rowstart")
	b.Trapd()
	b.Label("rowok")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, 7)
	b.Bne(10, 0, "y")
	// original checksum output
	b.Li(1, 1)
	b.Li(9, 0)
	b.Li(11, 5)
	b.Label("csy")
	b.Li(2, 1)
	b.Label("csx")
	b.Slli(6, 1, 3)
	b.Add(6, 6, 2)
	b.Lw(5, 6, outBase)
	b.Mul(9, 9, 11)
	b.Add(9, 9, 5)
	b.Addi(2, 2, 1)
	b.Slti(10, 2, 7)
	b.Bne(10, 0, "csx")
	b.Addi(1, 1, 1)
	b.Slti(10, 1, 7)
	b.Bne(10, 0, "csy")
	b.Out(9)
	b.Halt()
	name := "debayer_filter+abftc"
	if m == Detection {
		name = "debayer_filter+abftd"
	}
	return finishP(name, b, mosaic, 256)
}
