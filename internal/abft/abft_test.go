package abft

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/ino"
	"clear/internal/ooo"
	"clear/internal/prog"
)

func TestAllVariantsGolden(t *testing.T) {
	for _, name := range CorrectionKernels() {
		p, err := Program(name, Correction)
		if err != nil {
			t.Fatalf("%s correction: %v", name, err)
		}
		res := ino.New(p).Run(5_000_000)
		if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
			t.Fatalf("%s correction: pipeline run failed (%v)", name, res.Status)
		}
		// correction kernels also run on the OoO core (paper Sec 3.2)
		res = ooo.New(p).Run(5_000_000)
		if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
			t.Fatalf("%s correction on OoO: %v", name, res.Status)
		}
	}
	for _, name := range DetectionKernels() {
		p, err := Program(name, Detection)
		if err != nil {
			t.Fatalf("%s detection: %v", name, err)
		}
		res := ino.New(p).Run(5_000_000)
		if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
			t.Fatalf("%s detection: pipeline run failed (%v)", name, res.Status)
		}
	}
}

func TestSupportsMatrix(t *testing.T) {
	if !Supports("inner_product", Correction) || !Supports("inner_product", Detection) {
		t.Fatal("inner_product should support both modes")
	}
	if Supports("fft", Correction) {
		t.Fatal("fft must not support correction")
	}
	if !Supports("fft", Detection) {
		t.Fatal("fft should support detection")
	}
	if Supports("gzip", Detection) || Supports("gzip", Correction) {
		t.Fatal("SPEC kernels have no ABFT")
	}
	if Supports("nonexistent", Detection) {
		t.Fatal("unknown benchmark")
	}
}

func TestExecOverheads(t *testing.T) {
	// Correction variants should be much cheaper than the expensive
	// recompute-style detection variants (the paper's Sec 2.4 point).
	overhead := func(name string, m Mode) float64 {
		t.Helper()
		orig := bench.ByName(name).MustProgram()
		p, err := Program(name, m)
		if err != nil {
			t.Fatal(err)
		}
		base := ino.New(orig).Run(5_000_000)
		prot := ino.New(p).Run(5_000_000)
		return float64(prot.Steps)/float64(base.Steps) - 1
	}
	corr := overhead("2d_convolution", Correction)
	det := overhead("interpolate", Detection)
	t.Logf("conv2d correction overhead %.1f%%, interpolate detection overhead %.1f%%",
		100*corr, 100*det)
	if corr < 0 || corr > 0.6 {
		t.Fatalf("correction overhead %.2f out of expected band", corr)
	}
	if det < corr {
		t.Fatal("recompute-style detection should cost more than checksum correction")
	}
}

// Correction must actually correct: corrupt a freshly computed output value
// in memory between compute and verify; the run must still produce golden
// output (corrected), not TRAPD.
func TestCorrectionCorrects(t *testing.T) {
	p, err := Program("2d_convolution", Correction)
	if err != nil {
		t.Fatal(err)
	}
	corrected, detected, omm := 0, 0, 0
	for step := 200; step < 2000; step += 50 {
		s := prog.NewISS(p)
		fired := false
		at := step
		s.Hook = func(s *prog.ISS, st int) {
			if !fired && st == at {
				s.Mem[85] ^= 1 << 7 // corrupt an output word (outBase=80..115)
				fired = true
			}
		}
		res := s.Run(8_000_000)
		switch {
		case res.Status == prog.StatusHalted && p.OutputsEqual(res.Output):
			corrected++
		case res.Status == prog.StatusDetected:
			detected++
		case res.Status == prog.StatusHalted:
			omm++
		}
	}
	t.Logf("ABFT correction: %d corrected/benign, %d detected, %d escaped", corrected, detected, omm)
	if corrected == 0 {
		t.Fatal("no corruption was corrected")
	}
}

// Detection must catch corrupted outputs.
func TestDetectionDetects(t *testing.T) {
	p, err := Program("outer_product", Detection)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for step := 100; step < 1500; step += 40 {
		s := prog.NewISS(p)
		fired := false
		at := step
		s.Hook = func(s *prog.ISS, st int) {
			if !fired && st == at {
				s.Mem[20] ^= 1 << 9 // corrupt an output matrix word
				fired = true
			}
		}
		res := s.Run(8_000_000)
		if res.Status == prog.StatusDetected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("outer-product row checksums detected nothing")
	}
	t.Logf("ABFT detection caught %d corruptions", detected)
}

func TestProgramErrors(t *testing.T) {
	if _, err := Program("gzip", Correction); err == nil {
		t.Fatal("gzip should have no ABFT variant")
	}
	if _, err := Program("fft", Correction); err == nil {
		t.Fatal("fft correction should be rejected")
	}
}
