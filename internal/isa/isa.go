// Package isa defines CRV32, the 32-bit RISC instruction set executed by the
// simulated processor cores.
//
// CRV32 is a word-addressed load/store ISA with 32 general registers
// (r0 hardwired to zero). It is deliberately small but complete enough to
// express the 18 application benchmarks, and — critically for fault
// injection — it has a fixed 32-bit binary encoding, so a bit flip in a
// pipeline register that holds an instruction word re-decodes downstream
// exactly as corrupted RTL state would: into a different instruction, a
// different register, or an illegal opcode that traps.
//
// Software-level resilience techniques (EDDI, CFCSS, assertions, ABFT) are
// implemented as rewrites of CRV32 programs; the TRAPD instruction is the
// architected "software detected an error" exit used by their checks.
package isa

import "fmt"

// Op is a CRV32 opcode.
type Op uint8

// Opcode space. The numeric values are part of the binary encoding.
const (
	NOP Op = iota
	HALT
	TRAPD // software error detection trap (classified as ED by the harness)
	OUT   // emit R[rs1] to the program output stream

	ADD // R-type: rd = rs1 op rs2
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	MULH
	DIV
	REM

	ADDI // I-type: rd = rs1 op imm16 (sign-extended)
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI

	LUI // rd = imm16 << 16

	LW // rd = mem[rs1 + imm16]
	SW // mem[rs1 + imm16] = rs2

	BEQ // pc-relative branch by imm16 instructions
	BNE
	BLT
	BGE
	BLTU
	BGEU

	JAL  // rd = pc+1; pc += imm21
	JALR // rd = pc+1; pc = rs1 + imm16

	numOps
)

// NumOps is the number of defined opcodes; encodings with op >= NumOps are
// illegal and trap.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", TRAPD: "trapd", OUT: "out",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	MUL: "mul", MULH: "mulh", DIV: "div", REM: "rem",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti",
	LUI: "lui", LW: "lw", SW: "sw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("illegal(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < NumOps }

// Format classes; used by decoders and program transforms.
const (
	FmtNone   = iota // nop, halt, trapd
	FmtOut           // out rs1
	FmtR             // rd, rs1, rs2
	FmtI             // rd, rs1, imm16
	FmtLUI           // rd, imm16
	FmtLoad          // rd, imm16(rs1)
	FmtStore         // rs2, imm16(rs1)
	FmtBranch        // rs1, rs2, imm16
	FmtJAL           // rd, imm21
	FmtJALR          // rd, rs1, imm16
)

// Fmt returns the operand format class of o.
func (o Op) Fmt() int {
	switch o {
	case NOP, HALT, TRAPD:
		return FmtNone
	case OUT:
		return FmtOut
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU, MUL, MULH, DIV, REM:
		return FmtR
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return FmtI
	case LUI:
		return FmtLUI
	case LW:
		return FmtLoad
	case SW:
		return FmtStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return FmtBranch
	case JAL:
		return FmtJAL
	case JALR:
		return FmtJALR
	}
	return FmtNone
}

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGEU }

// IsJump reports whether o is an unconditional control transfer.
func (o Op) IsJump() bool { return o == JAL || o == JALR }

// IsControl reports whether o can redirect the PC.
func (o Op) IsControl() bool { return o.IsBranch() || o.IsJump() }

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool { return o == LW || o == SW }

// WritesReg reports whether o writes a destination register.
func (o Op) WritesReg() bool {
	switch o.Fmt() {
	case FmtR, FmtI, FmtLUI, FmtLoad, FmtJAL, FmtJALR:
		return true
	}
	return false
}

// Inst is a decoded CRV32 instruction.
//
// Field usage by format:
//
//	FmtR:      Rd, Rs1, Rs2
//	FmtI:      Rd, Rs1, Imm
//	FmtLUI:    Rd, Imm
//	FmtLoad:   Rd, Rs1 (base), Imm
//	FmtStore:  Rs1 (base), Rs2 (source), Imm
//	FmtBranch: Rs1, Rs2, Imm (instruction offset)
//	FmtJAL:    Rd, Imm (instruction offset, 21-bit)
//	FmtJALR:   Rd, Rs1, Imm
//	FmtOut:    Rs1
type Inst struct {
	Op   Op
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int32
	Meta uint32 // basic-block or transform metadata; not encoded
}

// Encoding layout (32 bits):
//
//	[31:26] opcode
//	[25:21] field A (rd, or rs1 for stores/branches)
//	[20:16] field B (rs1, or rs2 for stores/branches)
//	[15:0]  imm16   (R-type: rs2 lives in [15:11])
//	JAL:    [20:0] imm21
const (
	opShift = 26
	aShift  = 21
	bShift  = 16
	cShift  = 11
	regMask = 31
)

// Encode packs an instruction into its 32-bit binary form. Meta is not
// encoded. Immediates out of range are truncated, matching hardware.
func Encode(in Inst) uint32 {
	w := uint32(in.Op) << opShift
	switch in.Op.Fmt() {
	case FmtNone:
	case FmtOut:
		w |= uint32(in.Rs1&regMask) << aShift
	case FmtR:
		w |= uint32(in.Rd&regMask)<<aShift | uint32(in.Rs1&regMask)<<bShift |
			uint32(in.Rs2&regMask)<<cShift
	case FmtI, FmtLoad, FmtJALR:
		w |= uint32(in.Rd&regMask)<<aShift | uint32(in.Rs1&regMask)<<bShift |
			uint32(uint16(in.Imm))
	case FmtLUI:
		w |= uint32(in.Rd&regMask)<<aShift | uint32(uint16(in.Imm))
	case FmtStore:
		w |= uint32(in.Rs1&regMask)<<aShift | uint32(in.Rs2&regMask)<<bShift |
			uint32(uint16(in.Imm))
	case FmtBranch:
		w |= uint32(in.Rs1&regMask)<<aShift | uint32(in.Rs2&regMask)<<bShift |
			uint32(uint16(in.Imm))
	case FmtJAL:
		w |= uint32(in.Rd&regMask)<<aShift | uint32(in.Imm)&0x1FFFFF
	}
	return w
}

// Decode unpacks a 32-bit word. Illegal opcodes decode with Op preserved so
// the pipeline can carry them to the trap point; callers must check
// Op.Valid().
func Decode(w uint32) Inst {
	op := Op(w >> opShift)
	a := uint8(w >> aShift & regMask)
	b := uint8(w >> bShift & regMask)
	in := Inst{Op: op}
	if !op.Valid() {
		return in
	}
	switch op.Fmt() {
	case FmtNone:
	case FmtOut:
		in.Rs1 = a
	case FmtR:
		in.Rd, in.Rs1, in.Rs2 = a, b, uint8(w>>cShift&regMask)
	case FmtI, FmtLoad, FmtJALR:
		if op == ANDI || op == ORI || op == XORI {
			// Logical immediates zero-extend so LUI+ORI can build any
			// 32-bit constant.
			in.Rd, in.Rs1, in.Imm = a, b, int32(uint16(w))
		} else {
			in.Rd, in.Rs1, in.Imm = a, b, int32(int16(uint16(w)))
		}
	case FmtLUI:
		in.Rd, in.Imm = a, int32(int16(uint16(w)))
	case FmtStore:
		in.Rs1, in.Rs2, in.Imm = a, b, int32(int16(uint16(w)))
	case FmtBranch:
		in.Rs1, in.Rs2, in.Imm = a, b, int32(int16(uint16(w)))
	case FmtJAL:
		imm := w & 0x1FFFFF
		if imm&0x100000 != 0 {
			imm |= 0xFFE00000
		}
		in.Rd, in.Imm = a, int32(imm)
	}
	return in
}

// String renders the instruction in assembly syntax.
func (in Inst) String() string {
	switch in.Op.Fmt() {
	case FmtNone:
		return in.Op.String()
	case FmtOut:
		return fmt.Sprintf("out r%d", in.Rs1)
	case FmtR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FmtI, FmtJALR:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FmtLUI:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case FmtLoad:
		return fmt.Sprintf("lw r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case FmtStore:
		return fmt.Sprintf("sw r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case FmtBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case FmtJAL:
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	}
	return fmt.Sprintf("illegal(%#08x)", Encode(in))
}
