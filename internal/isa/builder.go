package isa

import "fmt"

// Item is one instruction in a symbolic (pre-assembly) program. Labels are
// bound to the instruction they precede; Target, when non-empty, names the
// label a branch or jump resolves to at assembly time. Software resilience
// transforms (EDDI, CFCSS, assertions) rewrite []Item streams and reassemble,
// so control-flow offsets stay correct as instructions are inserted.
type Item struct {
	Labels []string
	Inst   Inst
	Target string
}

// Builder constructs symbolic CRV32 programs. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	items   []Item
	pending []string // labels waiting for the next instruction
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Items returns the symbolic program built so far. Pending labels (a Label
// call with no following instruction) are bound to an appended NOP.
func (b *Builder) Items() []Item {
	b.flushPending()
	return b.items
}

func (b *Builder) flushPending() {
	if len(b.pending) > 0 {
		b.emit(Inst{Op: NOP}, "")
	}
}

// Label binds a label to the next emitted instruction.
func (b *Builder) Label(name string) {
	b.pending = append(b.pending, name)
}

func (b *Builder) emit(in Inst, target string) {
	b.items = append(b.items, Item{Labels: b.pending, Inst: in, Target: target})
	b.pending = nil
}

// Raw appends an already-formed instruction with no symbolic target.
func (b *Builder) Raw(in Inst) { b.emit(in, "") }

// --- no-operand and unary forms ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Inst{Op: NOP}, "") }

// Halt emits a normal program termination.
func (b *Builder) Halt() { b.emit(Inst{Op: HALT}, "") }

// Trapd emits the software-error-detected trap.
func (b *Builder) Trapd() { b.emit(Inst{Op: TRAPD}, "") }

// Out emits R[rs] to the program output stream.
func (b *Builder) Out(rs uint8) { b.emit(Inst{Op: OUT, Rs1: rs}, "") }

// --- R-type ---

// R emits an R-type instruction rd = rs1 op rs2.
func (b *Builder) R(op Op, rd, rs1, rs2 uint8) {
	b.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, "")
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) { b.R(ADD, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 uint8) { b.R(SUB, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 uint8) { b.R(AND, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 uint8) { b.R(OR, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 uint8) { b.R(XOR, rd, rs1, rs2) }

// Sll emits rd = rs1 << (rs2 & 31).
func (b *Builder) Sll(rd, rs1, rs2 uint8) { b.R(SLL, rd, rs1, rs2) }

// Srl emits rd = rs1 >> (rs2 & 31) (logical).
func (b *Builder) Srl(rd, rs1, rs2 uint8) { b.R(SRL, rd, rs1, rs2) }

// Sra emits rd = rs1 >> (rs2 & 31) (arithmetic).
func (b *Builder) Sra(rd, rs1, rs2 uint8) { b.R(SRA, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 uint8) { b.R(SLT, rd, rs1, rs2) }

// Sltu emits rd = (rs1 < rs2) unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 uint8) { b.R(SLTU, rd, rs1, rs2) }

// Mul emits rd = low32(rs1 * rs2).
func (b *Builder) Mul(rd, rs1, rs2 uint8) { b.R(MUL, rd, rs1, rs2) }

// Mulh emits rd = high32(rs1 * rs2) (signed).
func (b *Builder) Mulh(rd, rs1, rs2 uint8) { b.R(MULH, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (signed; divide by zero traps).
func (b *Builder) Div(rd, rs1, rs2 uint8) { b.R(DIV, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2 (signed; divide by zero traps).
func (b *Builder) Rem(rd, rs1, rs2 uint8) { b.R(REM, rd, rs1, rs2) }

// --- I-type ---

// I emits an I-type instruction rd = rs1 op imm.
func (b *Builder) I(op Op, rd, rs1 uint8, imm int32) {
	b.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, "")
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 uint8, imm int32) { b.I(ADDI, rd, rs1, imm) }

// Andi emits rd = rs1 & uimm16.
func (b *Builder) Andi(rd, rs1 uint8, imm int32) { b.I(ANDI, rd, rs1, imm) }

// Ori emits rd = rs1 | uimm16.
func (b *Builder) Ori(rd, rs1 uint8, imm int32) { b.I(ORI, rd, rs1, imm) }

// Xori emits rd = rs1 ^ uimm16.
func (b *Builder) Xori(rd, rs1 uint8, imm int32) { b.I(XORI, rd, rs1, imm) }

// Slli emits rd = rs1 << (imm & 31).
func (b *Builder) Slli(rd, rs1 uint8, imm int32) { b.I(SLLI, rd, rs1, imm) }

// Srli emits rd = rs1 >> (imm & 31) (logical).
func (b *Builder) Srli(rd, rs1 uint8, imm int32) { b.I(SRLI, rd, rs1, imm) }

// Srai emits rd = rs1 >> (imm & 31) (arithmetic).
func (b *Builder) Srai(rd, rs1 uint8, imm int32) { b.I(SRAI, rd, rs1, imm) }

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 uint8, imm int32) { b.I(SLTI, rd, rs1, imm) }

// Lui emits rd = imm << 16.
func (b *Builder) Lui(rd uint8, imm int32) { b.emit(Inst{Op: LUI, Rd: rd, Imm: imm}, "") }

// Li loads an arbitrary 32-bit constant, using one instruction when it fits
// in a signed 16-bit immediate and LUI+ORI otherwise.
func (b *Builder) Li(rd uint8, v int32) {
	if v >= -32768 && v < 32768 {
		b.Addi(rd, 0, v)
		return
	}
	b.Lui(rd, int32(uint32(v)>>16))
	if lo := int32(uint32(v) & 0xFFFF); lo != 0 {
		b.Ori(rd, rd, lo)
	}
}

// Mv emits rd = rs.
func (b *Builder) Mv(rd, rs uint8) { b.Addi(rd, rs, 0) }

// --- memory ---

// Lw emits rd = mem[rs1+imm].
func (b *Builder) Lw(rd, rs1 uint8, imm int32) {
	b.emit(Inst{Op: LW, Rd: rd, Rs1: rs1, Imm: imm}, "")
}

// Sw emits mem[rs1+imm] = rs2.
func (b *Builder) Sw(rs2, rs1 uint8, imm int32) {
	b.emit(Inst{Op: SW, Rs1: rs1, Rs2: rs2, Imm: imm}, "")
}

// --- control flow ---

// Br emits a conditional branch to a label.
func (b *Builder) Br(op Op, rs1, rs2 uint8, target string) {
	b.emit(Inst{Op: op, Rs1: rs1, Rs2: rs2}, target)
}

// Beq branches to target when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 uint8, target string) { b.Br(BEQ, rs1, rs2, target) }

// Bne branches to target when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 uint8, target string) { b.Br(BNE, rs1, rs2, target) }

// Blt branches to target when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 uint8, target string) { b.Br(BLT, rs1, rs2, target) }

// Bge branches to target when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 uint8, target string) { b.Br(BGE, rs1, rs2, target) }

// Bltu branches to target when rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 uint8, target string) { b.Br(BLTU, rs1, rs2, target) }

// Bgeu branches to target when rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 uint8, target string) { b.Br(BGEU, rs1, rs2, target) }

// Jal emits a jump-and-link to a label.
func (b *Builder) Jal(rd uint8, target string) {
	b.emit(Inst{Op: JAL, Rd: rd}, target)
}

// Jmp emits an unconditional jump to a label (JAL r0).
func (b *Builder) Jmp(target string) { b.Jal(0, target) }

// Jalr emits an indirect jump rd = pc+1; pc = rs1+imm.
func (b *Builder) Jalr(rd, rs1 uint8, imm int32) {
	b.emit(Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: imm}, "")
}

// Ret emits a return through the link register.
func (b *Builder) Ret(rs1 uint8) { b.Jalr(0, rs1, 0) }

// Assemble resolves symbolic targets in items and returns the final
// instruction sequence plus the label→pc map. It fails on duplicate or
// undefined labels and on branch offsets that do not fit their immediate.
func Assemble(items []Item) ([]Inst, map[string]int, error) {
	labels := make(map[string]int)
	for pc, it := range items {
		for _, l := range it.Labels {
			if _, dup := labels[l]; dup {
				return nil, nil, fmt.Errorf("isa: duplicate label %q", l)
			}
			labels[l] = pc
		}
	}
	out := make([]Inst, len(items))
	for pc, it := range items {
		in := it.Inst
		if it.Target != "" {
			t, ok := labels[it.Target]
			if !ok {
				return nil, nil, fmt.Errorf("isa: undefined label %q at pc %d", it.Target, pc)
			}
			off := int32(t - pc)
			switch in.Op.Fmt() {
			case FmtBranch:
				if off < -32768 || off > 32767 {
					return nil, nil, fmt.Errorf("isa: branch to %q out of range (%d)", it.Target, off)
				}
			case FmtJAL:
				if off < -(1<<20) || off >= 1<<20 {
					return nil, nil, fmt.Errorf("isa: jump to %q out of range (%d)", it.Target, off)
				}
			default:
				return nil, nil, fmt.Errorf("isa: %s cannot take label target", in.Op)
			}
			in.Imm = off
		}
		out[pc] = in
	}
	return out, labels, nil
}

// EncodeAll encodes a resolved instruction sequence into binary words.
func EncodeAll(insts []Inst) []uint32 {
	words := make([]uint32, len(insts))
	for i, in := range insts {
		words[i] = Encode(in)
	}
	return words
}
