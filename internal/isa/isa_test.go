package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: HALT},
		{Op: TRAPD},
		{Op: OUT, Rs1: 7},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: MULH, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: -1},
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: 32767},
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: -32768},
		{Op: ORI, Rd: 5, Rs1: 6, Imm: 0xFFFF},
		{Op: ANDI, Rd: 1, Rs1: 1, Imm: 0x8000},
		{Op: LUI, Rd: 9, Imm: -4},
		{Op: LW, Rd: 4, Rs1: 8, Imm: 100},
		{Op: SW, Rs1: 8, Rs2: 4, Imm: -100},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -20},
		{Op: BGEU, Rs1: 31, Rs2: 0, Imm: 300},
		{Op: JAL, Rd: 1, Imm: -1000},
		{Op: JAL, Rd: 0, Imm: (1 << 20) - 1},
		{Op: JALR, Rd: 0, Rs1: 1, Imm: 0},
	}
	for _, in := range cases {
		got := Decode(Encode(in))
		if got != in {
			t.Errorf("round trip %v: got %v", in, got)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	w := uint32(uint32(NumOps) << 26)
	in := Decode(w)
	if in.Op.Valid() {
		t.Fatalf("opcode %d should be illegal", NumOps)
	}
	in = Decode(0xFFFFFFFF)
	if in.Op.Valid() {
		t.Fatal("0xFFFFFFFF should decode illegal")
	}
}

func TestOpPredicates(t *testing.T) {
	if !BEQ.IsBranch() || !BGEU.IsBranch() || ADD.IsBranch() {
		t.Fatal("IsBranch wrong")
	}
	if !JAL.IsJump() || !JALR.IsJump() || BEQ.IsJump() {
		t.Fatal("IsJump wrong")
	}
	if !LW.IsMem() || !SW.IsMem() || ADD.IsMem() {
		t.Fatal("IsMem wrong")
	}
	if !ADD.WritesReg() || !LW.WritesReg() || !JAL.WritesReg() {
		t.Fatal("WritesReg false negative")
	}
	if SW.WritesReg() || BEQ.WritesReg() || HALT.WritesReg() || OUT.WritesReg() {
		t.Fatal("WritesReg false positive")
	}
}

// Property: Decode(Encode(x)) is idempotent under re-encode for arbitrary words
// with a valid opcode: Encode(Decode(w)) re-decodes to the same instruction.
func TestDecodeEncodeProperty(t *testing.T) {
	prop := func(w uint32) bool {
		in := Decode(w)
		if !in.Op.Valid() {
			return true
		}
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleBranches(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 0)
	b.Li(2, 10)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Halt()
	insts, labels, err := Assemble(b.Items())
	if err != nil {
		t.Fatal(err)
	}
	if labels["loop"] != 2 {
		t.Fatalf("label loop at %d, want 2", labels["loop"])
	}
	br := insts[3]
	if br.Op != BNE || br.Imm != -1 {
		t.Fatalf("branch = %v, want bne offset -1", br)
	}
}

func TestAssembleErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, _, err := Assemble(b.Items()); err == nil {
		t.Fatal("undefined label not reported")
	}

	b = NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Nop()
	if _, _, err := Assemble(b.Items()); err == nil {
		t.Fatal("duplicate label not reported")
	}
}

func TestPendingLabelAtEnd(t *testing.T) {
	b := NewBuilder()
	b.Beq(0, 0, "end")
	b.Label("end")
	items := b.Items()
	insts, labels, err := Assemble(items)
	if err != nil {
		t.Fatal(err)
	}
	if labels["end"] != 1 || insts[1].Op != NOP {
		t.Fatalf("trailing label should bind to synthesized NOP: %v %v", labels, insts)
	}
}

func TestLiMacro(t *testing.T) {
	cases := []int32{0, 1, -1, 32767, -32768, 32768, -32769, 0x12340000, -559038737, 1 << 30}
	for _, v := range cases {
		b := NewBuilder()
		b.Li(3, v)
		b.Halt()
		insts, _, err := Assemble(b.Items())
		if err != nil {
			t.Fatal(err)
		}
		// Interpret the Li sequence.
		var r3 uint32
		for _, in := range insts {
			switch in.Op {
			case ADDI:
				r3 = uint32(in.Imm)
			case LUI:
				r3 = uint32(in.Imm) << 16
			case ORI:
				r3 |= uint32(in.Imm)
			}
		}
		if int32(r3) != v {
			t.Errorf("Li(%d) produced %d", v, int32(r3))
		}
	}
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		"lw r4, 8(r2)":    {Op: LW, Rd: 4, Rs1: 2, Imm: 8},
		"sw r4, -8(r2)":   {Op: SW, Rs1: 2, Rs2: 4, Imm: -8},
		"beq r1, r2, 5":   {Op: BEQ, Rs1: 1, Rs2: 2, Imm: 5},
		"jal r1, -7":      {Op: JAL, Rd: 1, Imm: -7},
		"halt":            {Op: HALT},
		"out r9":          {Op: OUT, Rs1: 9},
		"addi r1, r0, -3": {Op: ADDI, Rd: 1, Rs1: 0, Imm: -3},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", in.Op, got, want)
		}
	}
}
