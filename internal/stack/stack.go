// Package stack defines the cross-layer resilience vocabulary: the system
// stack layers, the ten detection/correction techniques, the γ correction
// factor of [Schirmeier 15] (Sec 2.1 of the paper), and the SDC/DUE
// improvement arithmetic of Eq. 1a/1b.
package stack

import "math"

// Layer is an abstraction layer of the system stack.
type Layer int

// Stack layers, bottom to top. Recovery is the pseudo-layer of the four
// hardware recovery mechanisms (Table 15): they attach to detection
// techniques rather than occupying a stack layer of their own.
const (
	Circuit Layer = iota
	Logic
	Architecture
	Software
	Algorithm
	Recovery
)

func (l Layer) String() string {
	switch l {
	case Circuit:
		return "Circuit"
	case Logic:
		return "Logic"
	case Architecture:
		return "Architecture"
	case Software:
		return "Software"
	case Algorithm:
		return "Algorithm"
	case Recovery:
		return "Recovery"
	}
	return "?"
}

// Technique identifies one of the ten error detection/correction techniques
// in the resilience library (Fig 1c).
type Technique int

// The resilience library.
const (
	LEAPDICE Technique = iota
	EDS
	Parity
	DFC
	MonitorCore
	Assertions
	CFCSS
	EDDI
	ABFTCorrection
	ABFTDetection
	NumTechniques
)

var techNames = [...]string{
	"LEAP-DICE", "EDS", "Parity", "DFC", "Monitor core",
	"Assertions", "CFCSS", "EDDI", "ABFT correction", "ABFT detection",
}

func (t Technique) String() string {
	if int(t) < len(techNames) {
		return techNames[t]
	}
	return "?"
}

// Layer returns the stack layer a technique belongs to.
func (t Technique) Layer() Layer {
	switch t {
	case LEAPDICE, EDS:
		return Circuit
	case Parity:
		return Logic
	case DFC, MonitorCore:
		return Architecture
	case Assertions, CFCSS, EDDI:
		return Software
	default:
		return Algorithm
	}
}

// Detects reports whether the technique only detects errors (needing a
// recovery mechanism for correction).
func (t Technique) Detects() bool {
	switch t {
	case LEAPDICE, ABFTCorrection:
		return false
	}
	return true
}

// Gamma computes the susceptibility correction factor: techniques that add
// flip-flops or execution time enlarge the design's exposure to soft
// errors. Overheads multiply: a design with 20% more flip-flops running
// 6.2% longer has γ = 1.2 × 1.062 (the paper's DFC example).
func Gamma(ffOverheads, timeOverheads []float64) float64 {
	g := 1.0
	for _, v := range ffOverheads {
		g *= 1 + v
	}
	for _, v := range timeOverheads {
		g *= 1 + v
	}
	return g
}

// Improvement implements Eq. 1a/1b: original error count over new error
// count, discounted by γ. A zero new count is a genuine "max" point and
// returns +Inf; a zero original count returns 1 (nothing to improve).
func Improvement(orig, new, gamma float64) float64 {
	if orig <= 0 {
		return 1
	}
	if new <= 0 {
		return math.Inf(1)
	}
	return orig / new / gamma
}
