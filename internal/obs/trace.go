package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Tracer is a JSONL event-trace sink: every Emit appends one JSON record
// and a newline in a single write, so the file is an ordered, replayable
// log of what the run did — one record per sweep event or campaign — that
// can be parsed line-by-line and diffed across runs (timing fields aside,
// two identical runs produce identical traces; see DESIGN.md §10 for the
// record schema).
//
// A nil *Tracer discards records without marshaling anything, so hot paths
// guard with a single nil check. Methods are safe for concurrent use: the
// sweep's serialized event dispatch already orders cell records, and
// records emitted by other goroutines (campaign completions) interleave
// atomically between them.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error // first write/marshal error, latched; later Emits are dropped
}

// NewTracer returns a tracer writing JSONL records to w. The caller owns
// w's lifetime; Close flushes nothing (every record is written eagerly)
// but latches the tracer shut and closes w when it is an io.Closer.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// OpenTrace creates (truncating) the named file and returns a tracer
// writing to it — the convenience behind the commands' -trace-out flag.
// Closing the tracer closes the file.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Emit appends one record. Marshal or write failures are latched into
// Err and silently drop subsequent records: tracing must never take down
// the run it observes.
func (t *Tracer) Emit(rec any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.w == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	data = append(data, '\n')
	if _, err := t.w.Write(data); err != nil {
		t.err = err
	}
}

// Err returns the first error the tracer hit (nil while healthy).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close stops the tracer and closes the underlying writer when it is an
// io.Closer. It returns the latched emit error, if any, else the close
// error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.w
	t.w = nil
	var cerr error
	if c, ok := w.(io.Closer); ok {
		cerr = c.Close()
	}
	if t.err != nil {
		return t.err
	}
	return cerr
}
