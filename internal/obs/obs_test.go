package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("a.b.count"); again != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a different instrument")
	}
	g := r.Gauge("a.b.gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

// TestHistogramBuckets pins the log-scale bucketing contract: a value
// v > 0 lands in the bucket labeled 2^bits.Len64(v), i.e. the bucket
// labeled B counts values in [B/2, B); values <= 0 land in bucket "0".
func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 1023, 1024, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	s := h.snapshot()
	want := map[string]int64{
		"0":             2, // -3, 0
		"2":             1, // 1
		"4":             2, // 2, 3
		"8":             1, // 4
		"1024":          1, // 1023
		"2048":          1, // 1024
		"2199023255552": 1, // 1<<40 in [2^40, 2^41)
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Sum != -3+1+2+3+4+1023+1024+(1<<40) {
		t.Fatalf("sum = %d", s.Sum)
	}
}

// TestNilInstrumentsNoOp is the zero-overhead-when-disabled contract: all
// instrument and registry methods on nil receivers are safe no-ops.
func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
	var tr *Tracer
	tr.Emit(struct{}{})
	if tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer errored")
	}
}

// TestHotPathAllocationFree is the tentpole's hot-path guarantee: counter
// adds, gauge moves, histogram observations — registered or nil — and the
// nil-tracer guard allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var nilC *Counter
	var nilH *Histogram
	var nilT *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Add(1)
		h.Observe(12345)
		nilC.Add(1)
		nilH.Observe(1)
		if nilT != nil {
			nilT.Emit(nil)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", allocs)
	}
}

func TestRegistryKindConflictDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	g := r.Gauge("name") // conflicting kind: must not panic, must detach
	if g == nil {
		t.Fatal("conflicting Gauge returned nil")
	}
	g.Set(9)
	snap := r.Snapshot()
	if v, ok := snap["name"].(int64); !ok || v != 0 {
		t.Fatalf("registered counter clobbered by conflicting gauge: snapshot[name] = %v", snap["name"])
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(-1)
	r.Histogram("c.hist").Observe(3)
	if got, want := r.Names(), []string{"a.gauge", "b.count", "c.hist"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not JSON: %v\n%s", err, buf.String())
	}
	if decoded["b.count"].(float64) != 2 || decoded["a.gauge"].(float64) != -1 {
		t.Fatalf("snapshot values wrong: %v", decoded)
	}
	hist := decoded["c.hist"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 3 {
		t.Fatalf("histogram snapshot wrong: %v", hist)
	}
}

func TestRegistryAttach(t *testing.T) {
	r := NewRegistry()
	owned := new(Counter)
	owned.Add(41)
	r.Attach("ext.count", owned)
	owned.Inc()
	if v := r.Snapshot()["ext.count"]; v != int64(42) {
		t.Fatalf("attached counter exports %v, want 42", v)
	}
	r.Attach("ext.count", new(Gauge)) // replace: last attach wins
	if v := r.Snapshot()["ext.count"]; v != int64(0) {
		t.Fatalf("re-attached instrument exports %v, want 0", v)
	}
	r.Attach("bogus", 17) // unsupported kind: ignored
	if _, ok := r.Snapshot()["bogus"]; ok {
		t.Fatal("unsupported Attach kind was registered")
	}
}

func TestTracerWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	type rec struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Emit(rec{Type: "t", N: i})
		}(i)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("trace holds %d lines, want 20", len(lines))
	}
	seen := map[int]bool{}
	for _, l := range lines {
		var r rec
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %q is not JSON: %v", l, err)
		}
		seen[r.N] = true
	}
	if len(seen) != 20 {
		t.Fatalf("records lost or duplicated: %v", seen)
	}
	tr.Emit(rec{}) // after Close: dropped, no panic
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestTracerLatchesWriteError(t *testing.T) {
	want := errors.New("disk full")
	tr := NewTracer(failWriter{err: want})
	tr.Emit(map[string]int{"a": 1})
	if !errors.Is(tr.Err(), want) {
		t.Fatalf("Err = %v, want %v", tr.Err(), want)
	}
	tr.Emit(map[string]int{"b": 2}) // dropped silently
	if !errors.Is(tr.Close(), want) {
		t.Fatal("Close lost the latched error")
	}
}

func TestTracerRejectsUnmarshalable(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(func() {}) // not marshalable
	if tr.Err() == nil {
		t.Fatal("unmarshalable record did not latch an error")
	}
	if buf.Len() != 0 {
		t.Fatalf("partial record written: %q", buf.String())
	}
}

// TestServe spins up the debug endpoint on a free port and checks the
// three surfaces: /metrics JSON, expvar, and a pprof handler.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep.cells.done").Add(3)
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var metrics map[string]any
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if metrics["sweep.cells.done"].(float64) != 3 {
		t.Fatalf("/metrics = %v", metrics)
	}
	if body := get("/debug/vars"); !bytes.Contains(body, []byte(`"cmdline"`)) {
		t.Fatalf("/debug/vars missing expvar defaults:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}
