// Package obs is the observability layer for long-running campaigns and
// sweeps: typed counters, gauges, and log-scale histograms behind a named
// registry, a JSONL event-trace sink, and a debug HTTP endpoint exposing
// the registry as JSON (plus expvar and net/http/pprof) so an operator can
// watch — and profile — an hours-long exploration while it runs.
//
// Design constraints (DESIGN.md §10):
//
//   - Hot-path updates are single atomic operations and never allocate.
//     Every instrument method is also safe on a nil receiver (a no-op), so
//     instrumented code needs no "is observability on?" branches: code
//     built against a nil *Registry gets nil instruments and all updates
//     vanish.
//   - Observability must never change results. Instruments only ever
//     export derived counts; nothing reads them back into a computation.
//   - Instrument names are flat dotted paths, lowercase, with snake_case
//     leaves ("sweep.cells.done", "inject.ino.injections.pruned"). The
//     name is the contract: dashboards and the CI smoke test key on it.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 instrument.
// The zero value is ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 instrument (worker counts, queue depths).
// The zero value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: one power-of-two bucket
// per possible bit length of a non-negative int64, plus bucket 0 for
// values <= 0.
const histBuckets = 64

// Histogram is a log-scale (power-of-two buckets) distribution of int64
// observations — latencies in nanoseconds, cycle counts, sizes. Bucket i
// (i >= 1) counts values v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i); bucket 0 counts values <= 0. Log-scale buckets make the
// histogram fixed-size and allocation-free while still separating a 2 µs
// memoized cell from a 20 s cold campaign.
// The zero value is ready to use; a nil *Histogram discards observations.
type Histogram struct {
	count, sum atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
}

// ObserveSince records the elapsed time since t0 in nanoseconds — the
// idiomatic latency observation.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// histSnapshot is the JSON shape of a histogram in a registry snapshot:
// counts per power-of-two upper bound, plus totals.
type histSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper bound -> count
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.Buckets = make(map[string]int64)
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			s.Buckets[bucketLabel(i)] = n
		}
	}
	return s
}

// bucketLabel names bucket i by its exclusive upper bound ("0" for the
// non-positive bucket): the bucket labeled "4096" counts values in
// [2048, 4096).
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return strconv.FormatUint(uint64(1)<<uint(i), 10)
}

// Registry is a named collection of instruments. Instruments are either
// owned by the registry (created by Counter/Gauge/Histogram, get-or-create
// by name) or owned elsewhere and published into it (Attach) — the engine
// and injector own their counters so per-instance semantics survive, and a
// command attaches them to its registry for export.
//
// All methods are safe on a nil *Registry: creation methods return nil
// instruments (whose updates no-op), so a code path instrumented against
// an optional registry pays one nil check per update and nothing else.
type Registry struct {
	mu   sync.Mutex
	vars map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on first
// use. A name already holding a different instrument kind yields a fresh
// detached counter (updates work, export skips it) — observability must
// degrade, never panic, mid-sweep.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if c, ok := v.(*Counter); ok {
			return c
		}
		return new(Counter) // kind conflict: detached
	}
	c := new(Counter)
	r.vars[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use
// (same conflict policy as Counter).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if g, ok := v.(*Gauge); ok {
			return g
		}
		return new(Gauge)
	}
	g := new(Gauge)
	r.vars[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use (same conflict policy as Counter).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		if h, ok := v.(*Histogram); ok {
			return h
		}
		return new(Histogram)
	}
	h := new(Histogram)
	r.vars[name] = h
	return h
}

// Attach publishes an externally owned instrument (*Counter, *Gauge, or
// *Histogram) under name, replacing any previous registration of that
// name. Other kinds are ignored.
func (r *Registry) Attach(name string, instrument any) {
	if r == nil {
		return
	}
	switch instrument.(type) {
	case *Counter, *Gauge, *Histogram:
	default:
		return
	}
	r.mu.Lock()
	r.vars[name] = instrument
	r.mu.Unlock()
}

// Names returns the sorted registered instrument names.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a JSON-marshalable view of every instrument: counters
// and gauges as int64, histograms as {count, sum, mean, buckets}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.vars {
		switch i := v.(type) {
		case *Counter:
			out[name] = i.Value()
		case *Gauge:
			out[name] = i.Value()
		case *Histogram:
			out[name] = i.snapshot()
		}
	}
	return out
}

// WriteJSON writes the snapshot as a single sorted-key JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
