package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The debug endpoint makes a running sweep inspectable from the outside:
//
//	/metrics      — the registry as one JSON object (instrument name -> value)
//	/debug/vars   — standard expvar output; the first served registry is
//	                additionally published there under "clear"
//	/debug/pprof/ — live CPU/heap/goroutine profiling (net/http/pprof)
//
// The pprof handlers are registered on the server's own mux, not
// http.DefaultServeMux, so importing this package never changes the
// process-global mux.

// expvarOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, so only the first Serve publishes its
// registry there. /metrics always serves the registry passed to it.
var expvarOnce sync.Once

// Serve starts the debug HTTP server on addr (host:port; port 0 picks a
// free one) exposing reg. It returns the bound address and a shutdown
// function that stops the server and waits briefly for in-flight scrapes.
func Serve(addr string, reg *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener on %q: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	expvarOnce.Do(func() {
		expvar.Publish("clear", expvar.Func(func() any { return reg.Snapshot() }))
	})

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()

	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}
