// Package circuitlib is the resilient flip-flop library (paper Table 4):
// LEAP-DICE, Light Hardened LEAP, LEAP-ctrl and EDS cells with their soft
// error rate and area/power/delay/energy ratios relative to a baseline
// flip-flop. These ratios are radiation-test-calibrated inputs to CLEAR
// (not outputs), so they are taken directly from the paper.
package circuitlib

// FFType identifies a flip-flop cell in the library.
type FFType int

// Library cells. Baseline is the unhardened flip-flop.
const (
	Baseline FFType = iota
	LHL             // Light Hardened LEAP
	LEAPDICE
	LEAPCtrlEconomy   // LEAP-ctrl operating in economy (low-power) mode
	LEAPCtrlResilient // LEAP-ctrl operating in resilient mode
	EDS               // Error Detection Sequential (detects, does not correct)
)

// Cell describes one library flip-flop.
type Cell struct {
	Name string
	// SERRatio is the soft error rate relative to baseline (1.0). For EDS
	// errors are detected rather than suppressed: SERRatio stays 1 and
	// Detects is true.
	SERRatio float64
	Area     float64
	Power    float64
	Delay    float64
	Energy   float64
	Detects  bool
}

var cells = map[FFType]Cell{
	Baseline:          {Name: "Baseline", SERRatio: 1, Area: 1, Power: 1, Delay: 1, Energy: 1},
	LHL:               {Name: "Light Hardened LEAP (LHL)", SERRatio: 2.5e-1, Area: 1.2, Power: 1.1, Delay: 1.2, Energy: 1.3},
	LEAPDICE:          {Name: "LEAP-DICE", SERRatio: 2.0e-4, Area: 2.0, Power: 1.8, Delay: 1, Energy: 1.8},
	LEAPCtrlEconomy:   {Name: "LEAP-ctrl (economy mode)", SERRatio: 1, Area: 3.1, Power: 1.2, Delay: 1, Energy: 1.2},
	LEAPCtrlResilient: {Name: "LEAP-ctrl (resilient mode)", SERRatio: 2.0e-4, Area: 3.1, Power: 2.2, Delay: 1, Energy: 2.2},
	EDS:               {Name: "EDS", SERRatio: 1, Area: 1.5, Power: 1.4, Delay: 1, Energy: 1.4, Detects: true},
}

// Get returns the library cell for t.
func Get(t FFType) Cell { return cells[t] }

// All returns the library in display order (Table 4).
func All() []Cell {
	order := []FFType{Baseline, LHL, LEAPDICE, LEAPCtrlEconomy, LEAPCtrlResilient, EDS}
	out := make([]Cell, len(order))
	for i, t := range order {
		out[i] = cells[t]
	}
	return out
}
