package circuitlib

import "testing"

func TestTable4Values(t *testing.T) {
	d := Get(LEAPDICE)
	if d.SERRatio != 2.0e-4 || d.Area != 2.0 || d.Energy != 1.8 || d.Delay != 1 {
		t.Fatalf("LEAP-DICE cell wrong: %+v", d)
	}
	l := Get(LHL)
	if l.SERRatio != 0.25 || l.Area != 1.2 {
		t.Fatalf("LHL cell wrong: %+v", l)
	}
	e := Get(EDS)
	if !e.Detects || e.SERRatio != 1 || e.Area != 1.5 {
		t.Fatalf("EDS cell wrong: %+v", e)
	}
	b := Get(Baseline)
	if b.Area != 1 || b.Power != 1 || b.SERRatio != 1 {
		t.Fatalf("baseline not unity: %+v", b)
	}
}

func TestLEAPCtrlModes(t *testing.T) {
	eco := Get(LEAPCtrlEconomy)
	res := Get(LEAPCtrlResilient)
	if eco.Area != res.Area {
		t.Fatal("LEAP-ctrl is one cell: same area in both modes")
	}
	if !(eco.Power < res.Power) {
		t.Fatal("economy mode must draw less power")
	}
	if !(eco.SERRatio > res.SERRatio) {
		t.Fatal("economy mode sacrifices resilience")
	}
	if res.SERRatio != Get(LEAPDICE).SERRatio {
		t.Fatal("resilient mode should match LEAP-DICE hardness")
	}
}

func TestHardnessCostMonotonicity(t *testing.T) {
	// more soft-error protection must not come for free
	lhl, dice := Get(LHL), Get(LEAPDICE)
	if !(dice.SERRatio < lhl.SERRatio) {
		t.Fatal("DICE must be harder than LHL")
	}
	if !(dice.Energy > lhl.Energy) {
		t.Fatal("DICE must cost more energy than LHL")
	}
}

func TestAllOrderAndCount(t *testing.T) {
	cells := All()
	if len(cells) != 6 {
		t.Fatalf("library has %d cells, want 6", len(cells))
	}
	if cells[0].Name != "Baseline" || cells[2].Name != "LEAP-DICE" {
		t.Fatalf("display order wrong: %v, %v", cells[0].Name, cells[2].Name)
	}
	for _, c := range cells {
		if c.Name == "" || c.Area <= 0 || c.Power <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
}
