package analysis

// Attribution analysis: turn a campaign's per-flip-flop tallies and the
// per-injection Records of an attached inject.RecordSink into the rankings
// an architect acts on — which pipeline structure is most vulnerable
// (UnitRanking) and which static instructions' in-flight state soaks up the
// failing strikes (InstRanking). Both are pure functions of already-measured
// data; they run no simulation.

import (
	"sort"

	"clear/internal/ff"
	"clear/internal/inject"
	"clear/internal/prog"
	"clear/internal/stats"
)

// UnitAVF is one functional unit's aggregated vulnerability: outcome
// counts over every injection into the unit's flip-flops, the resulting
// architectural vulnerability factor (fraction of strikes that caused any
// failure), and its binomial confidence interval.
type UnitAVF struct {
	Unit string
	Bits int // flip-flops in the unit
	N    int // injections sampled into the unit

	Vanished int
	OMM      int
	UT       int
	Hang     int
	ED       int

	AVF     float64 // (OMM+UT+Hang+ED)/N
	SDCFrac float64 // OMM/N
	DUEFrac float64 // (UT+Hang+ED)/N
	CILo    float64 // binomial CI on AVF
	CIHi    float64
}

// Failures returns the unit's total failing strikes (everything but
// Vanished).
func (u UnitAVF) Failures() int { return u.OMM + u.UT + u.Hang + u.ED }

// UnitRanking groups a campaign's per-flip-flop statistics by functional
// unit and ranks units by decreasing AVF (ties broken by unit name). The
// space must be the one the campaign injected into — each PerFF index is
// resolved through space.UnitOf. Confidence intervals are normal-
// approximation binomial bounds at the given z (stats.BinomialCI); units
// that received no samples report AVF 0 with the vacuous (0,1) interval.
func UnitRanking(space *ff.Space, r *inject.Result, z float64) []UnitAVF {
	byUnit := make(map[string]*UnitAVF)
	order := space.Units()
	for _, u := range order {
		byUnit[u] = &UnitAVF{Unit: u}
	}
	for bit, st := range r.PerFF {
		u := byUnit[space.UnitOf(bit)]
		if u == nil {
			continue // bit beyond the space (mismatched result); skip
		}
		u.Bits++
		u.N += int(st.N)
		u.OMM += int(st.OMM)
		u.UT += int(st.UT)
		u.Hang += int(st.Hang)
		u.ED += int(st.ED)
	}
	out := make([]UnitAVF, 0, len(order))
	for _, name := range order {
		u := byUnit[name]
		// FFStats re-aggregated with AddSat can saturate outcome counters
		// independently of N, making the summed failures exceed the summed
		// samples. Clamp failures to N so Vanished stays non-negative and
		// every fraction (and its CI) stays in [0, 1] — the saturated input
		// is already a conservative upper bound, and unsaturated inputs are
		// unaffected.
		failures := u.Failures()
		if failures > u.N {
			failures = u.N
		}
		u.Vanished = u.N - failures
		if u.N > 0 {
			n := float64(u.N)
			u.AVF = float64(failures) / n
			u.SDCFrac = clampFrac(float64(u.OMM) / n)
			u.DUEFrac = clampFrac(float64(u.UT+u.Hang+u.ED) / n)
		}
		u.CILo, u.CIHi = stats.BinomialCI(u.AVF, u.N, z)
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AVF != out[j].AVF {
			return out[i].AVF > out[j].AVF
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// clampFrac caps a tally-derived fraction at 1.0 (saturated counters can
// push a numerator past its denominator; negative is impossible).
func clampFrac(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// InstContribution is one static instruction's share of a campaign's
// failures: over every attributed injection whose struck structure held
// this instruction's state, how many strikes it absorbed and how many
// failed. PCs are word indices into the program; Word is the instruction
// encoding when the PC is in range (corrupted pointers can reference
// out-of-range PCs — those entries keep Word 0 and InRange false).
type InstContribution struct {
	PC      uint32
	Word    uint32
	InRange bool
	N       int // attributed injections
	SDC     int // OMM outcomes
	DUE     int // UT+Hang+ED outcomes
	Share   float64
}

// InstRanking ranks static instructions by the failures attributed to them,
// from the per-injection records of a campaign run with a RecordSink.
// Records without a root instruction (RootPC == inject.NoRootPC — the
// struck structure was empty) are excluded; Share is each instruction's
// fraction of ALL failing records, attributed or not, so the shares sum to
// the attributed fraction of failures rather than a misleading 1.0.
// Ordering is by decreasing failures, ties by decreasing N, then PC.
func InstRanking(recs []inject.Record, p *prog.Program) []InstContribution {
	byPC := make(map[uint32]*InstContribution)
	totalFail := 0
	for _, rec := range recs {
		fail := rec.Outcome != inject.Vanished
		if fail {
			totalFail++
		}
		if rec.RootPC == inject.NoRootPC {
			continue
		}
		c := byPC[rec.RootPC]
		if c == nil {
			c = &InstContribution{PC: rec.RootPC}
			if int64(rec.RootPC) < int64(len(p.Words)) {
				c.Word = p.Words[rec.RootPC]
				c.InRange = true
			}
			byPC[rec.RootPC] = c
		}
		c.N++
		switch rec.Outcome {
		case inject.OMM:
			c.SDC++
		case inject.UT, inject.Hang, inject.ED:
			c.DUE++
		}
	}
	out := make([]InstContribution, 0, len(byPC))
	for _, c := range byPC {
		if totalFail > 0 {
			c.Share = float64(c.SDC+c.DUE) / float64(totalFail)
		}
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].SDC+out[i].DUE, out[j].SDC+out[j].DUE
		if fi != fj {
			return fi > fj
		}
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].PC < out[j].PC
	})
	return out
}
