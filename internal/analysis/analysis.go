// Package analysis implements the application-benchmark-dependence study
// (paper Sec 4): train/validate splits over the benchmark suite, validated
// improvements of trained designs (Tables 23-26), the LHL augmentation
// that restores resilience targets for unseen applications, and the
// subset-similarity analysis of Eq. 2 (Table 27).
package analysis

import (
	"math"
	"sort"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/stack"
	"clear/internal/stats"
)

// Aggregate sums per-flip-flop campaign statistics across benchmarks. The
// per-flip-flop counters saturate at their uint16 bound when many merged
// campaigns exceed it (inject.FFStats.AddSat) instead of wrapping around.
// Detection-latency sums and the nominal cycle/retirement totals are
// carried through, so aggregated mean detection latency and per-cycle
// normalizations read correctly (they used to silently sum to zero).
func Aggregate(results []*inject.Result) *inject.Result {
	if len(results) == 0 {
		return nil
	}
	agg := &inject.Result{PerFF: make([]inject.FFStats, len(results[0].PerFF))}
	for _, r := range results {
		for i, st := range r.PerFF {
			agg.PerFF[i].AddSat(st)
		}
		agg.Totals.Merge(r.Totals)
		agg.DetLatSum += r.DetLatSum
		agg.DetN += r.DetN
		agg.NomCycles += r.NomCycles
		agg.NomRet += r.NomRet
	}
	return agg
}

// Rates returns SDC and DUE error rates per sample of a campaign result.
func Rates(r *inject.Result) (sdc, due float64) {
	n := float64(r.Totals.N)
	if n == 0 {
		return 0, 0
	}
	return float64(r.Totals.SDC()) / n, float64(r.Totals.UT+r.Totals.Hang) / n
}

// Study holds the per-benchmark baseline campaigns of one core.
type Study struct {
	Engine  *core.Engine
	Benches []*bench.Benchmark
	Base    []*inject.Result
}

// NewStudy loads baseline campaigns for every benchmark of the engine's
// core.
func NewStudy(e *core.Engine) (*Study, error) {
	s := &Study{Engine: e, Benches: e.Benchmarks()}
	for _, b := range s.Benches {
		r, err := e.Base(b)
		if err != nil {
			return nil, err
		}
		s.Base = append(s.Base, r)
	}
	return s, nil
}

// pick returns the aggregate result over the benchmark subset.
func (s *Study) pick(idx []int) *inject.Result {
	var rs []*inject.Result
	for _, i := range idx {
		rs = append(rs, s.Base[i])
	}
	return Aggregate(rs)
}

// TrainValidate is one split's outcome: the improvement the trained design
// promises on the training set, and what it actually delivers on the
// validation set.
type TrainValidate struct {
	Train    float64
	Validate float64
}

// TrainedDesign builds a selective plan from the training subset at the
// given target and evaluates it on both subsets.
func (s *Study) TrainedDesign(trainIdx, valIdx []int, opt core.HardenOptions,
	metric core.Metric, target float64) (TrainValidate, *core.Plan) {
	trainAgg := s.pick(trainIdx)
	valAgg := s.pick(valIdx)
	tSDC, tDUE := Rates(trainAgg)
	opt.BaseSDCRate, opt.BaseDUERate = tSDC, tDUE
	plan := s.Engine.SelectiveHarden(trainAgg, opt, metric, target)

	imp := func(agg *inject.Result) float64 {
		base := core.BaseRate(agg, metric)
		resid := s.Engine.Evaluate(agg, plan)
		var rate float64
		if metric == core.SDC {
			rate = resid.SDC / float64(agg.Totals.N)
		} else {
			rate = resid.DUE / float64(agg.Totals.N)
		}
		gamma := opt.FixedGamma * (1 + s.Engine.PlanFFOverhead(plan))
		return stack.Improvement(base, rate, gamma)
	}
	return TrainValidate{Train: imp(trainAgg), Validate: imp(valAgg)}, plan
}

// ApplyLHL returns a copy of the plan with every unprotected flip-flop
// implemented as Light Hardened LEAP — the paper's Sec 4 mitigation for
// benchmark dependence.
func ApplyLHL(plan *core.Plan) *core.Plan {
	out := &core.Plan{Assign: append([]core.CellKind{}, plan.Assign...), Recovery: plan.Recovery}
	for i, c := range out.Assign {
		if c == core.CellNone {
			out.Assign[i] = core.CellLHL
		}
	}
	return out
}

// EvaluatePlan computes the improvement a fixed plan delivers on a
// benchmark subset.
func (s *Study) EvaluatePlan(plan *core.Plan, idx []int, metric core.Metric, fixedGamma float64) float64 {
	agg := s.pick(idx)
	base := core.BaseRate(agg, metric)
	resid := s.Engine.Evaluate(agg, plan)
	var rate float64
	if metric == core.SDC {
		rate = resid.SDC / float64(agg.Totals.N)
	} else {
		rate = resid.DUE / float64(agg.Totals.N)
	}
	gamma := fixedGamma * (1 + s.Engine.PlanFFOverhead(plan))
	return stack.Improvement(base, rate, gamma)
}

// Splits generates n deterministic train/validate partitions choosing k
// training benchmarks from the SPEC subset (the paper trains on 4 of 11
// SPEC benchmarks).
func (s *Study) Splits(n, k int, seed int64) (trains, validates [][]int) {
	// SPEC indices only for training, validation = remaining SPEC
	var specIdx []int
	for i, b := range s.Benches {
		if b.Suite == "SPEC" {
			specIdx = append(specIdx, i)
		}
	}
	rng := stats.New(seed)
	for i := 0; i < n; i++ {
		tr, va := stats.SampleSplit(len(specIdx), k, rng)
		var trainIdx, valIdx []int
		for _, t := range tr {
			trainIdx = append(trainIdx, specIdx[t])
		}
		for _, v := range va {
			valIdx = append(valIdx, specIdx[v])
		}
		trains = append(trains, trainIdx)
		validates = append(validates, valIdx)
	}
	return trains, validates
}

// HighLevelTV evaluates a standalone high-level technique's trained vs
// validated improvement (Tables 23/24): the technique's improvement
// measured on the training subset vs the validation subset.
type HighLevelTV struct {
	Technique     string
	Train         float64
	Validate      float64
	Underestimate float64 // (validate-train)/train
	PValue        float64
}

// TechniqueTV computes train/validate improvements of a measured technique
// campaign set (per-benchmark) against the matching baselines.
func TechniqueTV(name string, baseByBench, techByBench []*inject.Result,
	gammaByBench []float64, metric core.Metric,
	trains, validates [][]int, seed int64) HighLevelTV {
	imp := func(idx []int) float64 {
		base := Aggregate(sub(baseByBench, idx))
		tech := Aggregate(sub(techByBench, idx))
		origRate := core.BaseRate(base, metric)
		var newRate float64
		n := float64(tech.Totals.N)
		if metric == core.SDC {
			newRate = float64(tech.Totals.SDC()) / n
		} else {
			newRate = float64(tech.Totals.DUE()) / n
		}
		g := 0.0
		for _, i := range idx {
			g += gammaByBench[i]
		}
		g /= float64(len(idx))
		return stack.Improvement(origRate, newRate, g)
	}
	var diffs []float64
	var trainSum, valSum float64
	infs := 0
	for k := range trains {
		tr := imp(trains[k])
		va := imp(validates[k])
		if math.IsInf(tr, 1) || math.IsInf(va, 1) {
			// the technique left zero residual errors on this split
			infs++
			continue
		}
		trainSum += tr
		valSum += va
		diffs = append(diffs, va-tr)
	}
	n := float64(len(diffs))
	out := HighLevelTV{Technique: name}
	if n == 0 {
		if infs > 0 {
			// every split saturated: the technique's improvement exceeds
			// what this campaign's sampling can resolve, on training and
			// validation alike
			out.Train = math.Inf(1)
			out.Validate = math.Inf(1)
			out.PValue = 1
		}
		return out
	}
	out.Train = trainSum / n
	out.Validate = valSum / n
	if out.Train != 0 {
		out.Underestimate = (out.Validate - out.Train) / out.Train
	}
	out.PValue = stats.PairedPermutationP(diffs, 2000, stats.New(seed))
	return out
}

func sub(rs []*inject.Result, idx []int) []*inject.Result {
	var out []*inject.Result
	for _, i := range idx {
		out = append(out, rs[i])
	}
	return out
}

// SubsetSimilarity implements Table 27: per benchmark, rank flip-flops by
// decreasing SDC+DUE vulnerability and split into deciles; the similarity
// of decile d across benchmarks is Eq. 2's intersection-over-union.
func (s *Study) SubsetSimilarity() []float64 {
	nBits := len(s.Base[0].PerFF)
	decilesPerBench := make([][][]int, len(s.Base))
	for bi, r := range s.Base {
		_ = bi
		order := make([]int, nBits)
		for i := range order {
			order[i] = i
		}
		vuln := func(bit int) float64 {
			st := r.PerFF[bit]
			if st.N == 0 {
				return 0
			}
			return (float64(st.OMM) + float64(st.UT) + float64(st.Hang) + float64(st.ED)) / float64(st.N)
		}
		// Ties are broken by a benchmark-independent hash: tied flip-flops
		// are genuinely indistinguishable (the always-vanish tail is the
		// SAME set in every benchmark), so their order must agree across
		// benchmarks; a per-benchmark order would destroy the tail's true
		// similarity, while a shared one cannot invent similarity between
		// flip-flops whose measured vulnerabilities differ.
		tie := func(bit int) uint32 {
			h := uint32(bit) * 2654435761
			h ^= h >> 15
			return h * 2246822519
		}
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := vuln(order[a]), vuln(order[b])
			if va != vb {
				return va > vb
			}
			return tie(order[a]) < tie(order[b])
		})
		deciles := make([][]int, 10)
		for d := 0; d < 10; d++ {
			lo := d * nBits / 10
			hi := (d + 1) * nBits / 10
			deciles[d] = order[lo:hi]
		}
		decilesPerBench[bi] = deciles
	}
	out := make([]float64, 10)
	for d := 0; d < 10; d++ {
		sets := make([][]int, len(decilesPerBench))
		for bi := range decilesPerBench {
			sets[bi] = decilesPerBench[bi][d]
		}
		out[d] = stats.Similarity(sets)
	}
	return out
}
