package analysis

import (
	"math"
	"sync"
	"testing"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
)

var (
	studyOnce sync.Once
	studyVal  *Study
	studyErr  error
)

// testStudy loads (once per process) a low-sample study for unit tests.
func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		e := core.NewEngine(inject.InO)
		e.SamplesBase = 1
		e.SamplesTech = 1
		studyVal, studyErr = NewStudy(e)
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return studyVal
}

func TestAggregate(t *testing.T) {
	a := &inject.Result{PerFF: []inject.FFStats{{N: 2, OMM: 1}, {N: 2}}}
	a.Totals = inject.Counts{N: 4, OMM: 1, Vanished: 3}
	b := &inject.Result{PerFF: []inject.FFStats{{N: 2, UT: 2}, {N: 2, Hang: 1}}}
	b.Totals = inject.Counts{N: 4, UT: 2, Hang: 1, Vanished: 1}
	agg := Aggregate([]*inject.Result{a, b})
	if agg.PerFF[0].N != 4 || agg.PerFF[0].OMM != 1 || agg.PerFF[0].UT != 2 {
		t.Fatalf("agg[0] = %+v", agg.PerFF[0])
	}
	if agg.Totals.N != 8 || agg.Totals.DUE() != 3 {
		t.Fatalf("totals %+v", agg.Totals)
	}
	if Aggregate(nil) != nil {
		t.Fatal("empty aggregate")
	}
}

func TestSplitsAreSPECOnly(t *testing.T) {
	s := testStudy(t)
	trains, vals := s.Splits(50, 4, 99)
	if len(trains) != 50 || len(vals) != 50 {
		t.Fatalf("%d/%d splits", len(trains), len(vals))
	}
	for k := range trains {
		if len(trains[k]) != 4 || len(vals[k]) != 7 {
			t.Fatalf("split %d sizes %d/%d", k, len(trains[k]), len(vals[k]))
		}
		for _, i := range append(append([]int{}, trains[k]...), vals[k]...) {
			if s.Benches[i].Suite != "SPEC" {
				t.Fatalf("non-SPEC benchmark %s in split", s.Benches[i].Name)
			}
		}
	}
}

func TestTrainedDesignValidation(t *testing.T) {
	s := testStudy(t)
	trains, vals := s.Splits(5, 4, 7)
	opt := core.HardenOptions{DICE: true, FixedGamma: 1}
	for k := range trains {
		tv, plan := s.TrainedDesign(trains[k], vals[k], opt, core.SDC, 10)
		if plan == nil {
			t.Fatal("no plan")
		}
		if tv.Train < 10 && !math.IsInf(tv.Train, 1) {
			t.Fatalf("split %d: trained improvement %.1f below target", k, tv.Train)
		}
		if tv.Validate <= 0 {
			t.Fatalf("split %d: validated improvement %.2f", k, tv.Validate)
		}
	}
}

func TestLHLRestoresTarget(t *testing.T) {
	s := testStudy(t)
	trains, vals := s.Splits(3, 4, 13)
	opt := core.HardenOptions{DICE: true, FixedGamma: 1}
	for k := range trains {
		_, plan := s.TrainedDesign(trains[k], vals[k], opt, core.SDC, 20)
		before := s.EvaluatePlan(plan, vals[k], core.SDC, 1)
		after := s.EvaluatePlan(ApplyLHL(plan), vals[k], core.SDC, 1)
		if !(after > before) && !math.IsInf(before, 1) {
			t.Fatalf("LHL did not help: %.1f -> %.1f", before, after)
		}
	}
}

func TestApplyLHLCoversEverything(t *testing.T) {
	plan := core.NewPlan(10, 0)
	plan.Assign[3] = core.CellDICE
	out := ApplyLHL(plan)
	for i, c := range out.Assign {
		if i == 3 && c != core.CellDICE {
			t.Fatal("existing assignment overwritten")
		}
		if i != 3 && c != core.CellLHL {
			t.Fatal("unprotected FF not LHL")
		}
	}
	// original untouched
	if plan.Assign[0] != core.CellNone {
		t.Fatal("ApplyLHL mutated its input")
	}
}

func TestSubsetSimilarityShape(t *testing.T) {
	s := testStudy(t)
	sim := s.SubsetSimilarity()
	if len(sim) != 10 {
		t.Fatalf("%d deciles", len(sim))
	}
	for d, v := range sim {
		if v < 0 || v > 1 {
			t.Fatalf("decile %d similarity %f out of range", d, v)
		}
	}
	// With single-sample campaigns the ranking is too coarse to assert the
	// paper's Table 27 structure here (the benchmark harness does, with
	// full campaigns); sanity-check the bottom decile, which is dominated
	// by always-vanish flip-flops even at one sample per FF.
	mid := (sim[3] + sim[4] + sim[5]) / 3
	if !(sim[9] >= mid) {
		t.Fatalf("bottom decile similarity %.2f below middle %.2f", sim[9], mid)
	}
	t.Logf("subset similarity per decile: %v", sim)
}

func TestTechniqueTV(t *testing.T) {
	s := testStudy(t)
	// synthesize a "technique" that halves SDC uniformly: validate ≈ train
	var tech []*inject.Result
	var gammas []float64
	for _, r := range s.Base {
		tr := &inject.Result{PerFF: append([]inject.FFStats{}, r.PerFF...)}
		tr.Totals = r.Totals
		tr.Totals.OMM = r.Totals.OMM / 2
		tr.Totals.Vanished += r.Totals.OMM - tr.Totals.OMM
		tech = append(tech, tr)
		gammas = append(gammas, 1.1)
	}
	trains, vals := s.Splits(10, 4, 3)
	tv := TechniqueTV("halver", s.Base, tech, gammas, core.SDC, trains, vals, 5)
	if tv.Train < 1.2 || tv.Train > 3 {
		t.Fatalf("train improvement %.2f (expected ~2/1.1)", tv.Train)
	}
	if math.Abs(tv.Underestimate) > 0.4 {
		t.Fatalf("uniform technique should validate close to training: %f", tv.Underestimate)
	}
	if tv.PValue <= 0 || tv.PValue > 1 {
		t.Fatalf("p-value %f", tv.PValue)
	}
	_ = bench.All
}
