package analysis

import (
	"math"
	"testing"

	"clear/internal/ff"
	"clear/internal/inject"
	"clear/internal/isa"
	"clear/internal/prog"
)

// testSpace builds a tiny two-unit space: alpha holds 4 bits, beta 4 bits.
func testSpace() *ff.Space {
	s := ff.NewSpace()
	s.Alloc("alpha", "a.x", 2)
	s.Alloc("alpha", "a.y", 2)
	s.Alloc("beta", "b.z", 4)
	s.Freeze()
	return s
}

// TestUnitRankingSaturatedStats is the regression for saturated merged
// inputs: FFStats re-aggregated via AddSat can carry outcome counters that
// sum past N, which once drove Vanished negative and AVF beyond 1.0. The
// ranking must clamp failures to the sample count and keep every fraction
// and confidence bound inside [0, 1].
func TestUnitRankingSaturatedStats(t *testing.T) {
	s := testSpace()
	r := &inject.Result{PerFF: make([]inject.FFStats, s.NumBits())}
	// alpha bit 0: fully saturated counters — Failures() = 4*MaxUint16 >> N.
	r.PerFF[0] = inject.FFStats{
		N:    math.MaxUint16,
		OMM:  math.MaxUint16,
		UT:   math.MaxUint16,
		Hang: math.MaxUint16,
		ED:   math.MaxUint16,
	}
	// alpha bit 1: saturated OMM alone already exceeds the bit's samples.
	r.PerFF[1] = inject.FFStats{N: 10, OMM: math.MaxUint16}
	// beta: ordinary unsaturated tallies must be untouched by the clamp.
	r.PerFF[4] = inject.FFStats{N: 8, OMM: 2}
	ranked := UnitRanking(s, r, 1.96)
	for _, u := range ranked {
		if u.Vanished < 0 {
			t.Fatalf("%s: Vanished = %d, want >= 0", u.Unit, u.Vanished)
		}
		if u.AVF < 0 || u.AVF > 1 {
			t.Fatalf("%s: AVF = %v outside [0,1]", u.Unit, u.AVF)
		}
		if u.SDCFrac < 0 || u.SDCFrac > 1 || u.DUEFrac < 0 || u.DUEFrac > 1 {
			t.Fatalf("%s: fractions (%v, %v) outside [0,1]", u.Unit, u.SDCFrac, u.DUEFrac)
		}
		if u.CILo < 0 || u.CIHi > 1 || u.CILo > u.CIHi {
			t.Fatalf("%s: CI [%v, %v] outside [0,1]", u.Unit, u.CILo, u.CIHi)
		}
	}
	if a := ranked[0]; a.Unit != "alpha" || a.AVF != 1.0 || a.Vanished != 0 {
		t.Fatalf("saturated alpha = %+v; want AVF 1.0, Vanished 0", a)
	}
	var beta UnitAVF
	for _, u := range ranked {
		if u.Unit == "beta" {
			beta = u
		}
	}
	if beta.AVF != 0.25 || beta.Vanished != 6 || beta.SDCFrac != 0.25 {
		t.Fatalf("unsaturated beta changed: %+v", beta)
	}
}

func TestUnitRanking(t *testing.T) {
	s := testSpace()
	r := &inject.Result{PerFF: make([]inject.FFStats, s.NumBits())}
	// alpha: 8 samples, 4 failures (2 OMM + 1 UT + 1 ED). beta: 8 samples,
	// 1 failure (Hang).
	r.PerFF[0] = inject.FFStats{N: 2, OMM: 1}
	r.PerFF[1] = inject.FFStats{N: 2, OMM: 1, UT: 1}
	r.PerFF[2] = inject.FFStats{N: 2, ED: 1}
	r.PerFF[3] = inject.FFStats{N: 2}
	r.PerFF[4] = inject.FFStats{N: 2, Hang: 1}
	for i := 5; i < 8; i++ {
		r.PerFF[i] = inject.FFStats{N: 2}
	}
	ranked := UnitRanking(s, r, 1.96)
	if len(ranked) != 2 {
		t.Fatalf("units = %d, want 2", len(ranked))
	}
	a, b := ranked[0], ranked[1]
	if a.Unit != "alpha" || b.Unit != "beta" {
		t.Fatalf("order = %s, %s; want alpha first", a.Unit, b.Unit)
	}
	if a.Bits != 4 || a.N != 8 || a.OMM != 2 || a.UT != 1 || a.ED != 1 || a.Vanished != 4 {
		t.Fatalf("alpha = %+v", a)
	}
	if got, want := a.AVF, 0.5; got != want {
		t.Fatalf("alpha AVF = %v, want %v", got, want)
	}
	if a.CILo >= a.AVF || a.CIHi <= a.AVF {
		t.Fatalf("alpha CI [%v, %v] does not bracket AVF %v", a.CILo, a.CIHi, a.AVF)
	}
	if b.AVF != 0.125 || b.Hang != 1 {
		t.Fatalf("beta = %+v", b)
	}
	if a.SDCFrac != 0.25 || a.DUEFrac != 0.25 {
		t.Fatalf("alpha fracs = %v, %v", a.SDCFrac, a.DUEFrac)
	}
}

func TestUnitRankingEmpty(t *testing.T) {
	s := testSpace()
	r := &inject.Result{PerFF: make([]inject.FFStats, s.NumBits())}
	for _, u := range UnitRanking(s, r, 1.96) {
		if u.AVF != 0 || u.CILo != 0 || u.CIHi != 1 {
			t.Fatalf("unsampled unit %s = %+v, want AVF 0 with vacuous CI", u.Unit, u)
		}
	}
}

func testProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(1, 7)
	b.Out(1)
	b.Halt()
	p, err := prog.New("attrib", b.Items(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstRanking(t *testing.T) {
	p := testProgram(t)
	recs := []inject.Record{
		{Bit: 0, Outcome: inject.OMM, RootPC: 1},
		{Bit: 1, Outcome: inject.UT, RootPC: 1},
		{Bit: 2, Outcome: inject.Vanished, RootPC: 1},
		{Bit: 3, Outcome: inject.OMM, RootPC: 0},
		{Bit: 4, Outcome: inject.Hang, RootPC: inject.NoRootPC}, // unattributed failure
		{Bit: 5, Outcome: inject.ED, RootPC: 999},               // out-of-range root
	}
	ranked := InstRanking(recs, p)
	if len(ranked) != 3 {
		t.Fatalf("instructions = %d, want 3", len(ranked))
	}
	top := ranked[0]
	if top.PC != 1 || top.N != 3 || top.SDC != 1 || top.DUE != 1 || !top.InRange {
		t.Fatalf("top = %+v", top)
	}
	// 5 failing records total; pc 1 contributed 2.
	if math.Abs(top.Share-0.4) > 1e-12 {
		t.Fatalf("top share = %v, want 0.4", top.Share)
	}
	if top.Word != p.Words[1] {
		t.Fatalf("top word = %#x, want %#x", top.Word, p.Words[1])
	}
	for _, c := range ranked {
		if c.PC == 999 {
			if c.InRange || c.Word != 0 {
				t.Fatalf("out-of-range root = %+v", c)
			}
		}
	}
}

// TestAggregateCarriesAllFields is the regression for the Aggregate bug
// that dropped detection-latency sums and the nominal run totals.
func TestAggregateCarriesAllFields(t *testing.T) {
	a := &inject.Result{
		NomCycles: 100, NomRet: 50,
		PerFF:     []inject.FFStats{{N: 2, OMM: 1}},
		Totals:    inject.Counts{N: 2, Vanished: 1, OMM: 1},
		DetLatSum: 30, DetN: 2,
	}
	b := &inject.Result{
		NomCycles: 200, NomRet: 80,
		PerFF:     []inject.FFStats{{N: 2, UT: 1}},
		Totals:    inject.Counts{N: 2, Vanished: 1, UT: 1},
		DetLatSum: 12, DetN: 1,
	}
	agg := Aggregate([]*inject.Result{a, b})
	if agg.DetLatSum != 42 || agg.DetN != 3 {
		t.Fatalf("detection latency dropped: sum %d n %d", agg.DetLatSum, agg.DetN)
	}
	if agg.NomCycles != 300 || agg.NomRet != 130 {
		t.Fatalf("nominal totals dropped: cycles %d ret %d", agg.NomCycles, agg.NomRet)
	}
	if agg.Totals.N != 4 || agg.PerFF[0].N != 4 || agg.PerFF[0].OMM != 1 || agg.PerFF[0].UT != 1 {
		t.Fatalf("per-FF merge wrong: %+v / %+v", agg.Totals, agg.PerFF[0])
	}
}

// TestAggregateSaturates checks that re-aggregating near-full per-FF
// counters clamps instead of wrapping.
func TestAggregateSaturates(t *testing.T) {
	full := &inject.Result{PerFF: []inject.FFStats{{N: math.MaxUint16, OMM: math.MaxUint16}}}
	agg := Aggregate([]*inject.Result{full, full, full})
	if agg.PerFF[0].N != math.MaxUint16 || agg.PerFF[0].OMM != math.MaxUint16 {
		t.Fatalf("counters wrapped: %+v", agg.PerFF[0])
	}
}
