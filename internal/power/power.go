// Package power is the synthesis/power-analysis cost model: it converts
// resilience implementation plans (hardened-cell swaps, parity trees, EDS
// insertion, recovery hardware, checker hardware) into area, power, energy
// and execution-time overheads relative to the unprotected core — the role
// Synopsys Design Compiler/PrimeTime play in the paper's flow.
//
// Cost units: one baseline flip-flop has area 1 and power 1. A core's total
// area/power is derived from its flip-flop count and the fraction of the
// core budget that flip-flops occupy; those fractions are calibrated so the
// protect-everything corner cases land near the paper's Table 17 (LEAP-DICE
// "max": 9.3% area / 22.4% energy on the InO core, 6.5% / 9.4% on OoO).
package power

import (
	"clear/internal/circuitlib"
	"clear/internal/ino"
	"clear/internal/layout"
	"clear/internal/ooo"
	"clear/internal/parity"
)

// Model captures a core design's cost structure.
type Model struct {
	Name        string
	NumFFs      int
	FFAreaFrac  float64 // fraction of core area occupied by flip-flops
	FFPowerFrac float64 // fraction of core power consumed by flip-flops
	ClockMHz    float64
}

// InO returns the in-order core's cost model.
func InO() Model {
	return Model{
		Name:        "InO",
		NumFFs:      ino.Space().NumBits(),
		FFAreaFrac:  0.093,
		FFPowerFrac: 0.28,
		ClockMHz:    2000,
	}
}

// OoO returns the out-of-order core's cost model.
func OoO() Model {
	return Model{
		Name:        "OoO",
		NumFFs:      ooo.Space().NumBits(),
		FFAreaFrac:  0.065,
		FFPowerFrac: 0.117,
		ClockMHz:    600,
	}
}

// CoreAreaUnits is the core's total area in baseline-FF units.
func (m Model) CoreAreaUnits() float64 { return float64(m.NumFFs) / m.FFAreaFrac }

// CorePowerUnits is the core's total power in baseline-FF units.
func (m Model) CorePowerUnits() float64 { return float64(m.NumFFs) / m.FFPowerFrac }

// Gate-level cost constants, in baseline-FF units (28nm-class standard
// cells: a 2-input XOR is roughly 40% of a flip-flop's area).
const (
	xorArea  = 0.40
	xorPower = 0.27
	orArea   = 0.25
	orPower  = 0.12
	bufArea  = 0.35
	bufPower = 0.28
	// wire cost per FF-length of routing
	wireAreaPerLen  = 0.010
	wirePowerPerLen = 0.012
)

// Cost is a set of fractional overheads relative to the unprotected design
// (0.093 == 9.3%). Energy is derived: (1+Power)·(1+ExecTime)−1.
type Cost struct {
	Area     float64
	Power    float64
	ExecTime float64
}

// Energy returns the fractional energy overhead implied by power and
// execution-time overheads.
func (c Cost) Energy() float64 {
	return (1+c.Power)*(1+c.ExecTime) - 1
}

// Plus composes two overheads: area/power add, execution-time impacts
// compound.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		Area:     c.Area + o.Area,
		Power:    c.Power + o.Power,
		ExecTime: (1+c.ExecTime)*(1+o.ExecTime) - 1,
	}
}

// HardenFFs returns the cost of swapping flip-flops for library cells.
// counts maps cell type to the number of flip-flops implemented with it
// (unlisted flip-flops stay baseline).
func (m Model) HardenFFs(counts map[circuitlib.FFType]int) Cost {
	var dA, dP float64
	for t, n := range counts {
		cell := circuitlib.Get(t)
		dA += float64(n) * (cell.Area - 1)
		dP += float64(n) * (cell.Power - 1)
	}
	return Cost{
		Area:  dA / m.CoreAreaUnits(),
		Power: dP / m.CorePowerUnits(),
	}
}

// ParityCost returns the cost of a parity implementation plan: XOR trees,
// pipeline flip-flops, and routing.
func (m Model) ParityCost(g parity.Grouping, pl *layout.Placement) Cost {
	nx := float64(g.NumXORs())
	cg := float64(g.ConstGates())
	ef := float64(g.ErrorFFs())
	pf := float64(g.NumPipelineFFs())
	wl := g.WireLength(pl)
	dA := nx*xorArea + cg*orArea + (pf+ef)*1.0 + wl*wireAreaPerLen
	dP := nx*xorPower + cg*orPower + (pf+ef)*1.0 + wl*wirePowerPerLen
	return Cost{
		Area:  dA / m.CoreAreaUnits(),
		Power: dP / m.CorePowerUnits(),
	}
}

// EDSCost returns the cost of protecting bits with error-detection
// sequentials: the cell swap plus hold-fix delay buffers on short paths and
// the error-signal aggregation (OR tree) routed to the recovery module.
func (m Model) EDSCost(bits []int, pl *layout.Placement) Cost {
	cell := circuitlib.Get(circuitlib.EDS)
	n := float64(len(bits))
	// Hold buffers: EDS extends the hold window; paths with generous slack
	// need min-delay padding. The slack model marks roughly half the
	// flip-flops as needing one buffer, plus a second on the loosest.
	bufs := 0.0
	for _, b := range bits {
		if pl.Slack[b] > 8 {
			bufs++
		}
		if pl.Slack[b] > 20 {
			bufs++
		}
	}
	// OR-tree aggregation of error signals + routing to a central point.
	ors := n - 1
	if ors < 0 {
		ors = 0
	}
	wire := 0.0
	// routing estimated as mean distance to core center times fanin count
	if len(bits) > 0 {
		var cx, cy float64
		for _, b := range bits {
			cx += pl.X[b]
			cy += pl.Y[b]
		}
		cx /= n
		cy /= n
		for _, b := range bits {
			dx, dy := pl.X[b]-cx, pl.Y[b]-cy
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			wire += (dx + dy) * 0.25 // shared trunk routing discount
		}
	}
	dA := n*(cell.Area-1) + bufs*bufArea + ors*orArea + wire*wireAreaPerLen
	dP := n*(cell.Power-1) + bufs*bufPower + ors*orPower + wire*wirePowerPerLen
	return Cost{
		Area:  dA / m.CoreAreaUnits(),
		Power: dP / m.CorePowerUnits(),
	}
}

// ExtraFFCost converts a count of added flip-flops (checker state, shadow
// registers) into fractional cost.
func (m Model) ExtraFFCost(n int, logicAreaUnits, logicPowerUnits float64) Cost {
	return Cost{
		Area:  (float64(n) + logicAreaUnits) / m.CoreAreaUnits(),
		Power: (float64(n) + logicPowerUnits) / m.CorePowerUnits(),
	}
}
