package power

import (
	"math"
	"testing"

	"clear/internal/circuitlib"
	"clear/internal/ino"
	"clear/internal/layout"
	"clear/internal/ooo"
	"clear/internal/parity"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want ~%.3f (tol %.3f)", name, got, want, tol)
	} else {
		t.Logf("%s = %.3f (paper ~%.3f)", name, got, want)
	}
}

// Protect-everything corner cases must land near the paper's Table 17 "max"
// column (the model's calibration anchors).
func TestHardenAllWithDICE(t *testing.T) {
	mi := InO()
	c := mi.HardenFFs(map[circuitlib.FFType]int{circuitlib.LEAPDICE: mi.NumFFs})
	near(t, "InO DICE-max area", c.Area, 0.093, 0.02)
	near(t, "InO DICE-max energy", c.Energy(), 0.224, 0.04)

	mo := OoO()
	c = mo.HardenFFs(map[circuitlib.FFType]int{circuitlib.LEAPDICE: mo.NumFFs})
	near(t, "OoO DICE-max area", c.Area, 0.065, 0.02)
	near(t, "OoO DICE-max energy", c.Energy(), 0.094, 0.02)
}

func TestParityAllOptimized(t *testing.T) {
	space := ino.Space()
	pl := layout.Place(space, layout.InOProfile())
	bits := make([]int, space.NumBits())
	for i := range bits {
		bits[i] = i
	}
	g := parity.Group(parity.OptimizedH, 16, space, pl, nil, bits)
	c := InO().ParityCost(g, pl)
	near(t, "InO parity-max area", c.Area, 0.109, 0.05)
	near(t, "InO parity-max energy", c.Energy(), 0.231, 0.08)
}

func TestParityHeuristicOrdering(t *testing.T) {
	// Table 7: optimized must beat vulnerability-4 substantially; small
	// vulnerability groups are the most expensive configuration.
	space := ino.Space()
	pl := layout.Place(space, layout.InOProfile())
	n := space.NumBits()
	bits := make([]int, n)
	vuln := make([]float64, n)
	for i := range bits {
		bits[i] = i
		vuln[i] = float64((i*2654435761)%1000) / 1000
	}
	m := InO()
	cost := func(h parity.Heuristic, size int) Cost {
		g := parity.Group(h, size, space, pl, vuln, bits)
		if h != parity.OptimizedH {
			g = g.ForcePipelined() // Table 7 compares pipelined variants
		}
		return m.ParityCost(g, pl)
	}
	v4 := cost(parity.VulnerabilityH, 4)
	v16 := cost(parity.VulnerabilityH, 16)
	loc16 := cost(parity.LocalityH, 16)
	opt := cost(parity.OptimizedH, 16)
	t.Logf("vuln4 %.3f vuln16 %.3f loc16 %.3f opt %.3f (energy)",
		v4.Energy(), v16.Energy(), loc16.Energy(), opt.Energy())
	if !(v4.Energy() > v16.Energy()) {
		t.Error("4-bit vulnerability groups should cost more than 16-bit")
	}
	if !(loc16.Energy() <= v16.Energy()) {
		t.Error("locality should not cost more than vulnerability grouping")
	}
	if !(opt.Energy() <= loc16.Energy()+0.001) {
		t.Error("optimized heuristic should be the cheapest")
	}
}

func TestEDSCorner(t *testing.T) {
	space := ino.Space()
	pl := layout.Place(space, layout.InOProfile())
	bits := make([]int, space.NumBits())
	for i := range bits {
		bits[i] = i
	}
	c := InO().EDSCost(bits, pl)
	near(t, "InO EDS-max area", c.Area, 0.107, 0.05)
	near(t, "InO EDS-max energy", c.Energy(), 0.229, 0.08)

	// EDS on the OoO core
	spaceO := ooo.Space()
	plO := layout.Place(spaceO, layout.OoOProfile())
	bitsO := make([]int, spaceO.NumBits())
	for i := range bitsO {
		bitsO[i] = i
	}
	c = OoO().EDSCost(bitsO, plO)
	near(t, "OoO EDS-max area", c.Area, 0.122, 0.06)
	near(t, "OoO EDS-max energy", c.Energy(), 0.115, 0.06)
}

func TestCostComposition(t *testing.T) {
	a := Cost{Area: 0.10, Power: 0.20, ExecTime: 0.10}
	b := Cost{Area: 0.05, Power: 0.10, ExecTime: 0.20}
	c := a.Plus(b)
	if math.Abs(c.Area-0.15) > 1e-9 || math.Abs(c.Power-0.30) > 1e-9 {
		t.Fatalf("Plus area/power wrong: %+v", c)
	}
	wantExec := 1.1*1.2 - 1
	if math.Abs(c.ExecTime-wantExec) > 1e-9 {
		t.Fatalf("Plus exec wrong: %f want %f", c.ExecTime, wantExec)
	}
	wantEnergy := (1+0.3)*(1+wantExec) - 1
	if math.Abs(c.Energy()-wantEnergy) > 1e-9 {
		t.Fatalf("Energy wrong")
	}
	var zero Cost
	if zero.Energy() != 0 {
		t.Fatal("zero cost should have zero energy")
	}
}

func TestSelectiveScalesDown(t *testing.T) {
	// Hardening 10% of flip-flops must cost ~10% of hardening all.
	m := InO()
	all := m.HardenFFs(map[circuitlib.FFType]int{circuitlib.LEAPDICE: m.NumFFs})
	tenth := m.HardenFFs(map[circuitlib.FFType]int{circuitlib.LEAPDICE: m.NumFFs / 10})
	ratio := tenth.Area / all.Area
	if ratio < 0.08 || ratio > 0.12 {
		t.Fatalf("selective scaling ratio %.3f", ratio)
	}
}
