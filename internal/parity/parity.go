// Package parity implements logic-level parity checking (paper Sec 2.4,
// Fig 2/3, Table 7): XOR-tree predictor/checker pairs over groups of
// flip-flops, with the grouping heuristics the paper compares (group-size,
// vulnerability, locality, timing, and the optimized heuristic) and
// automatic pipelining of the predictor tree when timing slack is
// insufficient.
package parity

import (
	"sort"

	"clear/internal/ff"
	"clear/internal/layout"
)

// Heuristic selects a flip-flop grouping strategy.
type Heuristic int

// Grouping heuristics evaluated in the paper (Table 7).
const (
	GroupSizeH Heuristic = iota
	VulnerabilityH
	LocalityH
	TimingH
	OptimizedH
)

func (h Heuristic) String() string {
	switch h {
	case GroupSizeH:
		return "group-size"
	case VulnerabilityH:
		return "vulnerability"
	case LocalityH:
		return "locality"
	case TimingH:
		return "timing"
	case OptimizedH:
		return "optimized"
	}
	return "?"
}

// Grouping is a concrete parity implementation plan: which flip-flops are
// checked together, and which groups need a pipelined predictor tree.
type Grouping struct {
	Groups    [][]int
	Pipelined []bool
}

// NumPipelineFFs returns the pipeline flip-flops added by pipelined groups
// (Fig 2): roughly one per predictor subtree plus the staged parity bit.
func (g Grouping) NumPipelineFFs() int {
	n := 0
	for i, grp := range g.Groups {
		if g.Pipelined[i] {
			n += pipelineFFs(len(grp))
		}
	}
	return n
}

func pipelineFFs(groupSize int) int {
	n := groupSize/8 + 2
	return n
}

// treeDepth returns the XOR-tree depth (gate delays) for a group size.
func treeDepth(groupSize int) int {
	d := 0
	for s := 1; s < groupSize; s <<= 1 {
		d++
	}
	return d + 1 // +1 for the final compare
}

// slackMargin is the extra slack (gate delays) required beyond the tree
// depth for an unpipelined implementation.
const slackMargin = 1

// needsPipeline reports whether a group must pipeline its predictor.
func needsPipeline(pl *layout.Placement, group []int) bool {
	depth := treeDepth(len(group))
	for _, b := range group {
		if pl.Slack[b] < depth+slackMargin {
			return true
		}
	}
	return false
}

func chunk(bits []int, size int) [][]int {
	var groups [][]int
	for lo := 0; lo < len(bits); lo += size {
		hi := lo + size
		if hi > len(bits) {
			hi = len(bits)
		}
		g := make([]int, hi-lo)
		copy(g, bits[lo:hi])
		groups = append(groups, g)
	}
	return groups
}

// Group forms parity groups over the given flip-flops using heuristic h
// with the given nominal group size (ignored by OptimizedH, which picks
// 32-bit unpipelined or 16-bit pipelined groups per Fig 3). vuln gives the
// per-flip-flop fraction of errors causing SDC or DUE (used by
// VulnerabilityH); it may be nil for other heuristics.
func Group(h Heuristic, size int, space *ff.Space, pl *layout.Placement, vuln []float64, bits []int) Grouping {
	sorted := make([]int, len(bits))
	copy(sorted, bits)
	var groups [][]int
	switch h {
	case GroupSizeH:
		sort.Ints(sorted)
		groups = chunk(sorted, size)
	case VulnerabilityH:
		sort.SliceStable(sorted, func(i, j int) bool {
			return vuln[sorted[i]] > vuln[sorted[j]]
		})
		groups = chunk(sorted, size)
	case LocalityH:
		groups = localityGroups(space, sorted, size)
	case TimingH:
		sort.SliceStable(sorted, func(i, j int) bool {
			return pl.Slack[sorted[i]] < pl.Slack[sorted[j]]
		})
		groups = chunk(sorted, size)
	case OptimizedH:
		return optimized(space, pl, sorted)
	}
	g := Grouping{Groups: groups, Pipelined: make([]bool, len(groups))}
	for i, grp := range groups {
		g.Pipelined[i] = needsPipeline(pl, grp)
	}
	return g
}

// Interleave forms parity groups by round-robin dealing over the
// index-sorted flip-flops: the i-th bit lands in group i%n, where n is the
// group count needed for the nominal size. The placement assigns
// consecutive bit indices to adjacent sites, so index order is placement
// order. Physically adjacent flip-flops
// therefore land in different parity groups, which is the classic defense
// against spatial multi-bit upsets — a cluster of flips from one particle
// intersects each group at most once (odd overlap), so every affected
// group's XOR tree fires, whereas contiguous grouping can take an even
// number of hits in one group and cancel. The cost is wire length: each
// group spans the whole sequence instead of one neighbourhood.
func Interleave(bits []int, size int) Grouping {
	sorted := make([]int, len(bits))
	copy(sorted, bits)
	sort.Ints(sorted)
	if size < 1 {
		size = 1
	}
	n := (len(sorted) + size - 1) / size
	if n == 0 {
		return Grouping{}
	}
	groups := make([][]int, n)
	for i, b := range sorted {
		groups[i%n] = append(groups[i%n], b)
	}
	return Grouping{Groups: groups, Pipelined: make([]bool, n)}
}

// localityGroups orders flip-flops by functional unit and chunks the
// ordered sequence into full-size groups. Groups prefer to stay within one
// unit (minimal predictor/checker wiring) but small per-unit remainders
// merge with the next unit rather than forming under-amortized fragments —
// the cross-unit wiring penalty is charged by the wire-length model.
func localityGroups(space *ff.Space, bits []int, size int) [][]int {
	byUnit := map[string][]int{}
	var order []string
	for _, b := range bits {
		u := space.UnitOf(b)
		if _, ok := byUnit[u]; !ok {
			order = append(order, u)
		}
		byUnit[u] = append(byUnit[u], b)
	}
	var seq []int
	for _, u := range order {
		seq = append(seq, byUnit[u]...)
	}
	return chunk(seq, size)
}

// optimized implements the Fig 3 heuristic: flip-flops with enough slack for
// an unpipelined 32-bit predictor tree form 32-bit locality groups; the rest
// form 16-bit pipelined locality groups.
func optimized(space *ff.Space, pl *layout.Placement, bits []int) Grouping {
	need := treeDepth(32) + slackMargin
	var fast, slow []int
	for _, b := range bits {
		if pl.Slack[b] >= need {
			fast = append(fast, b)
		} else {
			slow = append(slow, b)
		}
	}
	var g Grouping
	for _, grp := range localityGroups(space, fast, 32) {
		g.Groups = append(g.Groups, grp)
		g.Pipelined = append(g.Pipelined, false)
	}
	for _, grp := range localityGroups(space, slow, 16) {
		g.Groups = append(g.Groups, grp)
		g.Pipelined = append(g.Pipelined, true)
	}
	return g
}

// NumXORs returns the total XOR gates across all groups: predictor tree
// (g-1) + checker tree (g-1) + final compare.
func (g Grouping) NumXORs() int {
	n := 0
	for _, grp := range g.Groups {
		if len(grp) > 1 {
			n += 2*(len(grp)-1) + 1
		} else if len(grp) == 1 {
			n += 2
		}
	}
	return n
}

// groupConstGates is the per-group fixed control overhead (error latch
// driver, enable gating): the cost component that larger groups amortize.
const groupConstGates = 3

// NumGroups returns the number of non-empty groups.
func (g Grouping) NumGroups() int {
	n := 0
	for _, grp := range g.Groups {
		if len(grp) > 0 {
			n++
		}
	}
	return n
}

// ConstGates returns the total per-group constant gate overhead.
func (g Grouping) ConstGates() int { return g.NumGroups() * groupConstGates }

// ErrorFFs returns the per-group error-indication flip-flops.
func (g Grouping) ErrorFFs() int { return g.NumGroups() }

// ForcePipelined returns a copy of the grouping with every group pipelined
// (the configuration compared in the paper's Table 7).
func (g Grouping) ForcePipelined() Grouping {
	out := Grouping{Groups: g.Groups, Pipelined: make([]bool, len(g.Groups))}
	for i := range out.Pipelined {
		out.Pipelined[i] = true
	}
	return out
}

// WireLength estimates total predictor/checker routing as the sum of
// member-to-centroid distances (in FF lengths) over all groups.
func (g Grouping) WireLength(pl *layout.Placement) float64 {
	total := 0.0
	for _, grp := range g.Groups {
		if len(grp) == 0 {
			continue
		}
		var cx, cy float64
		for _, b := range grp {
			cx += pl.X[b]
			cy += pl.Y[b]
		}
		cx /= float64(len(grp))
		cy /= float64(len(grp))
		for _, b := range grp {
			dx, dy := pl.X[b]-cx, pl.Y[b]-cy
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			total += dx + dy
		}
	}
	return total
}

// Bits returns all flip-flops covered by the grouping.
func (g Grouping) Bits() []int {
	var out []int
	for _, grp := range g.Groups {
		out = append(out, grp...)
	}
	return out
}
