package parity

import (
	"testing"
	"testing/quick"
)

func TestMod3(t *testing.T) {
	for v := uint64(0); v < 1000; v++ {
		if uint64(Mod3(v)) != v%3 {
			t.Fatalf("Mod3(%d) = %d, want %d", v, Mod3(v), v%3)
		}
	}
	if uint64(Mod3(0xFFFFFFFFFFFFFFFF)) != 0xFFFFFFFFFFFFFFFF%3 {
		t.Fatal("Mod3 max")
	}
}

// Property: residue checking accepts every correct product and rejects
// every single-bit-corrupted product (2^k mod 3 is never 0, so all
// single-bit flips change the residue).
func TestResidueCheckProperty(t *testing.T) {
	prop := func(a, b uint32, bit uint8) bool {
		p := uint64(a) * uint64(b)
		if !ResidueCheck(a, b, p) {
			return false
		}
		corrupted := p ^ (1 << (bit % 64))
		return !ResidueCheck(a, b, corrupted)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The paper's claim: residue codes cost more than XOR-tree parity for
// protecting the same flip-flops.
func TestResidueCostlierThanParity(t *testing.T) {
	bits := make([]int, 96) // a multiplier's two operand + result registers
	for i := range bits {
		bits[i] = i
	}
	rp := NewResiduePlan(bits, 32)
	// a 32-bit parity grouping over the same bits
	var g Grouping
	for lo := 0; lo < len(bits); lo += 32 {
		g.Groups = append(g.Groups, bits[lo:lo+32])
		g.Pipelined = append(g.Pipelined, false)
	}
	parityGates := g.NumXORs() + g.ConstGates()
	if rp.GateCount() <= parityGates {
		t.Fatalf("residue (%d gates) should cost more than parity (%d gates)",
			rp.GateCount(), parityGates)
	}
	if rp.ExtraFFs() <= 0 {
		t.Fatal("residue staging FFs missing")
	}
	t.Logf("residue %d gates vs parity %d gates for 96 FFs (paper Sec 2.4: residue costlier)",
		rp.GateCount(), parityGates)
}
