package parity

import (
	"testing"

	"clear/internal/ff"
	"clear/internal/ino"
	"clear/internal/layout"
)

func setup() (space *ff.Space, pl *layout.Placement, bits []int, vuln []float64) {
	s := ino.Space()
	p := layout.Place(s, layout.InOProfile())
	b := make([]int, s.NumBits())
	v := make([]float64, s.NumBits())
	for i := range b {
		b[i] = i
		v[i] = float64((i*2654435761)%997) / 997
	}
	return s, p, b, v
}

func TestGroupingCoversAllBitsExactlyOnce(t *testing.T) {
	space, pl, bits, vuln := setup()
	for _, h := range []Heuristic{GroupSizeH, VulnerabilityH, LocalityH, TimingH, OptimizedH} {
		g := Group(h, 16, space, pl, vuln, bits)
		seen := map[int]int{}
		for _, grp := range g.Groups {
			for _, b := range grp {
				seen[b]++
			}
		}
		if len(seen) != len(bits) {
			t.Fatalf("%v: covered %d of %d bits", h, len(seen), len(bits))
		}
		for b, n := range seen {
			if n != 1 {
				t.Fatalf("%v: bit %d in %d groups", h, b, n)
			}
		}
		if len(g.Pipelined) != len(g.Groups) {
			t.Fatalf("%v: pipelined flags mismatch", h)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	space, pl, bits, vuln := setup()
	for _, size := range []int{4, 8, 16, 32} {
		g := Group(VulnerabilityH, size, space, pl, vuln, bits)
		for i, grp := range g.Groups {
			if len(grp) > size {
				t.Fatalf("size %d: group %d has %d members", size, i, len(grp))
			}
		}
	}
}

func TestVulnerabilityOrdering(t *testing.T) {
	space, pl, bits, vuln := setup()
	g := Group(VulnerabilityH, 16, space, pl, vuln, bits)
	// the first group must contain strictly higher-vulnerability bits than
	// the last full group's minimum
	first := g.Groups[0]
	last := g.Groups[len(g.Groups)-2]
	minFirst, maxLast := 2.0, -1.0
	for _, b := range first {
		if vuln[b] < minFirst {
			minFirst = vuln[b]
		}
	}
	for _, b := range last {
		if vuln[b] > maxLast {
			maxLast = vuln[b]
		}
	}
	if minFirst < maxLast {
		t.Fatalf("vulnerability sort broken: first-group min %.3f < last-group max %.3f", minFirst, maxLast)
	}
}

func TestLocalityOrdersByUnit(t *testing.T) {
	space, pl, bits, _ := setup()
	g := Group(LocalityH, 16, space, pl, nil, bits)
	// groups are full-size (amortized) except the final remainder ...
	for i, grp := range g.Groups[:len(g.Groups)-1] {
		if len(grp) != 16 {
			t.Fatalf("group %d has %d members; locality must fill groups", i, len(grp))
		}
	}
	// ... and most groups stay within one unit (cross-unit merges happen
	// only at unit boundaries)
	mixed := 0
	for _, grp := range g.Groups {
		u := space.UnitOf(grp[0])
		for _, b := range grp {
			if space.UnitOf(b) != u {
				mixed++
				break
			}
		}
	}
	if mixed > len(g.Groups)/2 {
		t.Fatalf("%d of %d locality groups cross units", mixed, len(g.Groups))
	}
}

func TestOptimizedUsesBothModes(t *testing.T) {
	space, pl, bits, _ := setup()
	g := Group(OptimizedH, 16, space, pl, nil, bits)
	unp, pip := 0, 0
	for i, grp := range g.Groups {
		if g.Pipelined[i] {
			pip++
			if len(grp) > 16 {
				t.Fatalf("pipelined group of %d (>16)", len(grp))
			}
		} else {
			unp++
			if len(grp) > 32 {
				t.Fatalf("unpipelined group of %d (>32)", len(grp))
			}
		}
	}
	if unp == 0 || pip == 0 {
		t.Fatalf("Fig 3 heuristic should mix modes: %d unpipelined, %d pipelined", unp, pip)
	}
}

func TestTimingGroupsShareSlackClass(t *testing.T) {
	space, pl, bits, _ := setup()
	g := Group(TimingH, 16, space, pl, nil, bits)
	// slack within the first group must be <= slack in the last group
	maxFirst, minLast := -1, 1<<30
	for _, b := range g.Groups[0] {
		if pl.Slack[b] > maxFirst {
			maxFirst = pl.Slack[b]
		}
	}
	for _, b := range g.Groups[len(g.Groups)-1] {
		if pl.Slack[b] < minLast {
			minLast = pl.Slack[b]
		}
	}
	if maxFirst > minLast {
		t.Fatalf("timing sort broken: %d > %d", maxFirst, minLast)
	}
}

func TestCostAccessors(t *testing.T) {
	space, pl, bits, _ := setup()
	g := Group(LocalityH, 16, space, pl, nil, bits)
	if g.NumXORs() <= len(bits) {
		t.Fatalf("XOR count %d implausibly low", g.NumXORs())
	}
	if g.NumGroups() == 0 || g.ConstGates() != g.NumGroups()*groupConstGates {
		t.Fatal("group gate accounting broken")
	}
	if g.ErrorFFs() != g.NumGroups() {
		t.Fatal("error FF accounting broken")
	}
	if g.WireLength(pl) <= 0 {
		t.Fatal("no wire length")
	}
	if len(g.Bits()) != len(bits) {
		t.Fatal("Bits() lost members")
	}
	fp := g.ForcePipelined()
	if fp.NumPipelineFFs() < g.NumPipelineFFs() {
		t.Fatal("ForcePipelined reduced pipeline FFs")
	}
	for _, p := range fp.Pipelined {
		if !p {
			t.Fatal("ForcePipelined left an unpipelined group")
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	space, pl, _, _ := setup()
	g := Group(GroupSizeH, 16, space, pl, nil, nil)
	if len(g.Groups) != 0 || g.NumXORs() != 0 || g.NumPipelineFFs() != 0 {
		t.Fatal("empty grouping should be free")
	}
	g = Group(GroupSizeH, 16, space, pl, nil, []int{5})
	if len(g.Groups) != 1 || g.NumXORs() == 0 {
		t.Fatal("singleton group mishandled")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 3, 16: 5, 32: 6}
	for size, want := range cases {
		if got := treeDepth(size); got != want {
			t.Errorf("treeDepth(%d) = %d, want %d", size, got, want)
		}
	}
}
