package parity

// Residue codes (paper Sec 2.4, "Additional Techniques"): mod-3 residue
// checking detects errors in arithmetic functional units (notably
// multipliers, where parity prediction is impractical) by verifying
// res3(a) op res3(b) == res3(result). The paper rules them out for general
// flip-flop protection because the residue generators and the checking
// adder tree cost more than a simple XOR tree per protected bit; this
// model exists to let the framework quantify that claim (see the cost
// comparison test and the power package's gate constants).

// ResiduePlan is a residue-code implementation plan over operand/result
// flip-flops of an arithmetic unit.
type ResiduePlan struct {
	// Bits is the protected flip-flop set (operand and result registers).
	Bits []int
	// Operands is the number of residue generators needed (one per
	// operand/result bus).
	Operands int
}

// NewResiduePlan covers the given flip-flops, assuming busWidth-bit buses.
func NewResiduePlan(bits []int, busWidth int) ResiduePlan {
	n := len(bits)
	ops := (n + busWidth - 1) / busWidth
	if ops < 1 && n > 0 {
		ops = 1
	}
	return ResiduePlan{Bits: bits, Operands: ops}
}

// Mod-3 residue generator structure: a tree of 2-bit full adders over bit
// pairs. Per protected bit this costs roughly one adder cell (~2 XOR
// equivalents), against parity's ~2 XOR per bit shared across
// predictor+checker — plus per-bus residue arithmetic and compare.
const (
	// residueGatesPerBit is the XOR-equivalent gate count per protected
	// flip-flop in the residue generator tree.
	residueGatesPerBit = 3
	// residueGatesPerBus is the checking arithmetic (mod-3 adder,
	// comparator) per operand/result bus.
	residueGatesPerBus = 14
	// residueFFsPerBus holds the staged residues.
	residueFFsPerBus = 2
)

// GateCount returns the XOR-equivalent gates of the plan.
func (r ResiduePlan) GateCount() int {
	return len(r.Bits)*residueGatesPerBit + r.Operands*residueGatesPerBus
}

// ExtraFFs returns the residue staging flip-flops.
func (r ResiduePlan) ExtraFFs() int { return r.Operands * residueFFsPerBus }

// Mod3 computes a value's mod-3 residue as the checker hardware does:
// folding 2-bit digits (4 ≡ 1 mod 3).
func Mod3(v uint64) uint32 {
	for v > 3 {
		s := uint64(0)
		for v > 0 {
			s += v & 3
			v >>= 2
		}
		v = s
	}
	if v == 3 {
		return 0
	}
	return uint32(v)
}

// ResidueCheck verifies a multiplication through mod-3 residues: returns
// true when the full product is consistent (res3(a)·res3(b) ≡ res3(p)).
// Hardware checks the untruncated product — the multiplier array produces
// both halves before the writeback mux truncates.
func ResidueCheck(a, b uint32, p uint64) bool {
	return Mod3(uint64(Mod3(uint64(a))*Mod3(uint64(b)))) == Mod3(p)
}
