// Package stats provides the small statistical toolkit the evaluation
// harness needs: deterministic sampling, binomial confidence intervals for
// injection campaigns, permutation-test p-values for the train/validate
// study, and the subset-similarity metric of the paper's Eq. 2.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a deterministic RNG for a named experiment.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// BinomialCI returns the normal-approximation confidence interval for an
// observed proportion p over n samples at the given z (1.96 ≈ 95%).
func BinomialCI(p float64, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	half := z * math.Sqrt(p*(1-p)/float64(n))
	lo = p - half
	hi = p + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MarginOfError returns the half-width of the binomial CI at proportion p
// over n samples (the paper reports <0.1% at 95% for its campaigns).
func MarginOfError(p float64, n int, z float64) float64 {
	if n == 0 {
		return 1
	}
	return z * math.Sqrt(p*(1-p)/float64(n))
}

// PairedPermutationP returns the two-sided p-value of the hypothesis that
// paired differences are centered at zero, via a sign-flip permutation test.
func PairedPermutationP(diffs []float64, iters int, rng *rand.Rand) float64 {
	if len(diffs) == 0 {
		return 1
	}
	obs := math.Abs(mean(diffs))
	count := 0
	flipped := make([]float64, len(diffs))
	for it := 0; it < iters; it++ {
		for i, d := range diffs {
			if rng.Intn(2) == 0 {
				flipped[i] = -d
			} else {
				flipped[i] = d
			}
		}
		if math.Abs(mean(flipped)) >= obs-1e-15 {
			count++
		}
	}
	return float64(count+1) / float64(iters+1)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Mean exposes the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return mean(xs)
}

// RelStdDev returns standard deviation over mean (the paper reports
// 0.6-3.1% across its per-benchmark physical-design runs).
func RelStdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	if m == 0 {
		return 0
	}
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs) - 1)
	return math.Sqrt(v) / m
}

// Similarity implements Eq. 2: |intersection| / |union| over sets of
// flip-flop indices.
func Similarity(sets [][]int) float64 {
	if len(sets) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, s := range sets {
		seen := map[int]bool{}
		for _, x := range s {
			if !seen[x] {
				seen[x] = true
				counts[x]++
			}
		}
	}
	union := len(counts)
	inter := 0
	for _, c := range counts {
		if c == len(sets) {
			inter++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SampleSplit partitions indices 0..n-1 into a training set of size k and
// the complementary validation set, deterministically for the given RNG.
func SampleSplit(n, k int, rng *rand.Rand) (train, validate []int) {
	perm := rng.Perm(n)
	train = append(train, perm[:k]...)
	validate = append(validate, perm[k:]...)
	sort.Ints(train)
	sort.Ints(validate)
	return train, validate
}
