package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(0.5, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%f,%f] must bracket 0.5", lo, hi)
	}
	if hi-lo > 0.3 {
		t.Fatalf("CI too wide: %f", hi-lo)
	}
	lo, hi = BinomialCI(0, 10, 1.96)
	if lo != 0 {
		t.Fatalf("lo clamped: %f", lo)
	}
	lo, hi = BinomialCI(1, 10, 1.96)
	if hi != 1 {
		t.Fatalf("hi clamped: %f", hi)
	}
	if lo, hi := BinomialCI(0.5, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatal("n=0 should be vacuous")
	}
}

func TestMarginShrinksWithN(t *testing.T) {
	prop := func(seed uint8) bool {
		p := float64(seed%99+1) / 100
		return MarginOfError(p, 10000, 1.96) < MarginOfError(p, 100, 1.96)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationP(t *testing.T) {
	rng := New(1)
	// strong consistent effect: tiny p
	big := []float64{-1, -1.1, -0.9, -1, -1.05, -0.95, -1, -1, -1, -1}
	p := PairedPermutationP(big, 2000, rng)
	if p > 0.05 {
		t.Fatalf("consistent effect p=%f", p)
	}
	// symmetric noise: large p
	noise := []float64{1, -1, 0.5, -0.5, 0.2, -0.2, 0.8, -0.8}
	p = PairedPermutationP(noise, 2000, New(2))
	if p < 0.2 {
		t.Fatalf("noise p=%f too small", p)
	}
	if PairedPermutationP(nil, 100, rng) != 1 {
		t.Fatal("empty diffs should be p=1")
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity([][]int{{1, 2, 3}, {1, 2, 3}}); s != 1 {
		t.Fatalf("identical sets: %f", s)
	}
	if s := Similarity([][]int{{1, 2}, {3, 4}}); s != 0 {
		t.Fatalf("disjoint sets: %f", s)
	}
	if s := Similarity([][]int{{1, 2, 3}, {2, 3, 4}}); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("half overlap: %f", s)
	}
	if Similarity(nil) != 0 {
		t.Fatal("no sets")
	}
	// duplicates within a set must not inflate intersection
	if s := Similarity([][]int{{1, 1, 2}, {1, 3}}); math.Abs(s-1.0/3) > 1e-9 {
		t.Fatalf("dup handling: %f", s)
	}
}

func TestSampleSplit(t *testing.T) {
	rng := New(7)
	train, val := SampleSplit(11, 4, rng)
	if len(train) != 4 || len(val) != 7 {
		t.Fatalf("sizes %d/%d", len(train), len(val))
	}
	seen := map[int]bool{}
	for _, x := range append(append([]int{}, train...), val...) {
		if seen[x] || x < 0 || x >= 11 {
			t.Fatalf("bad partition element %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 11 {
		t.Fatal("not a partition")
	}
}

func TestRelStdDev(t *testing.T) {
	if RelStdDev([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant data should have zero rsd")
	}
	r := RelStdDev([]float64{9, 10, 11})
	if r < 0.05 || r > 0.15 {
		t.Fatalf("rsd %f", r)
	}
	if RelStdDev([]float64{1}) != 0 {
		t.Fatal("single sample")
	}
}
