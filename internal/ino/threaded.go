package ino

import (
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/tcode"
)

// This file is the compiled-execution twin of Step in ino.go: the same
// pipeline, cycle for cycle and bit for bit, but every isa.Decode call and
// execute-stage switch is replaced by a pre-translated tcode.DInst lookup,
// and the latches live in the unpacked mirror (unpacked.go) instead of the
// packed bit array — packed state is materialized only at observation
// points. The interpreter in ino.go is deliberately left untouched so the
// two paths stay independently checkable (FuzzThreadedEquivalence pins them
// to each other) and `-compiled=false` falls back to genuinely different
// code.

// dec returns the translation of latch word w whose stage believes it sits
// at pc. The per-PC table hits whenever the latch is uncorrupted program
// text (virtually every decode of a fault-free run); anything else —
// injected flips, bubbles, out-of-range fetch words — compiles through the
// core's decode cache. Both paths are pure functions of w, so corrupted
// words behave exactly as under isa.Decode.
func (c *Core) dec(pc, w uint32) *tcode.DInst {
	if d := c.tp.AtPC(pc, w); d != nil {
		return d
	}
	return c.dcache.Decode(w)
}

// stepThreaded advances the pipeline by one clock cycle, mirroring Step
// stage for stage on the unpacked latch mirror.
func (c *Core) stepThreaded() {
	if c.done {
		return
	}
	if !c.uValid {
		c.unpackU()
		c.uValid = true
	}
	c.cycles++
	u := &c.u

	// ---- Snapshot current latches (the "clock edge" read). ----
	fPC := u.fPC

	dInst := u.dInst
	dPC := u.dPC
	dValid := u.dValid

	aInstW := u.aInst
	aPC := u.aPC
	aValid := u.aValid
	aRs1 := u.aRs1
	aRs2 := u.aRs2

	eInstW := u.eInst
	ePC := u.ePC
	eValid := u.eValid
	eOp1 := u.eOp1
	eOp2 := u.eOp2

	mInstW := u.mInst
	mPC := u.mPC
	mValid := u.mValid
	mResult := u.mResult
	mStoreVal := u.mStoreVal
	mTrap := u.mTrap
	mICC := u.mICC
	mY := u.mY

	xInstW := u.xInst
	xPC := u.xPC
	xValid := u.xValid
	xResult := u.xResult
	xTrap := u.xTrap
	xTT := u.xTT
	xICC := u.xICC
	xAddr := u.xAddr
	xStoreVal := u.xStoreVal

	wInstW := u.wInst
	wPC := u.wPC
	wValid := u.wValid
	wResult := u.wResult
	wTrap := u.wTrap
	wAddr := u.wAddr
	wStoreVal := u.wStoreVal

	eD := c.dec(ePC, eInstW)
	mD := c.dec(mPC, mInstW)
	xD := c.dec(xPC, xInstW)
	wD := c.dec(wPC, wInstW)
	aD := c.dec(aPC, aInstW)

	// ---- W: writeback / commit. ----
	if wValid {
		c.retired++
		if wTrap || !wD.Valid {
			c.done = true
			c.status = prog.StatusTrap
			u.wSTT = u.wTT // trap type to status reg
			return
		}
		switch wD.In.Op {
		case isa.HALT:
			c.done = true
			c.status = prog.StatusHalted
			return
		case isa.TRAPD:
			c.done = true
			c.status = prog.StatusDetected
			return
		case isa.OUT:
			c.out = append(c.out, wResult)
		default:
			if wD.WritesReg && wD.In.Rd != 0 {
				c.regfile[wD.In.Rd] = wResult
			}
		}
		// Status-register side effects (condition codes, Y): architectural
		// state that these workloads never read back.
		u.wSICC = xICC
		if wD.In.Op == isa.MULH {
			u.wSY = wResult
		}
		if c.hook != nil {
			ev := sim.CommitEvent{PC: wPC, Word: wInstW, Result: wResult,
				StoreVal: wStoreVal, Addr: wAddr}
			if c.hook(ev) {
				c.done = true
				c.status = prog.StatusDetected
				return
			}
		}
	}

	// ---- X: exception stage (pass-through, trap priority resolution). ----
	u.wInst = xInstW
	u.wPC = xPC
	u.wValid = xValid
	u.wResult = xResult
	u.wTrap = xTrap
	u.wTT = xTT
	u.wAddr = xAddr
	u.wStoreVal = xStoreVal
	u.wSCWP = u.eCWP // window pointer shadow (unused)

	// ---- M: memory access. ----
	{
		if mValid {
			// the instruction in M completes its access this cycle: it is
			// now beyond the flush-recovery window
			c.recoveryNext = c.nextAtM
		}
		trap := mTrap
		tt := u.mTT
		result := mResult
		addr := mResult
		if mValid && !trap && mD.Valid {
			switch mD.In.Op {
			case isa.LW:
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					trap = true
					tt = 9 // data access exception
				} else {
					result = c.mem[int32(addr)]
				}
			case isa.SW:
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					trap = true
					tt = 9
				} else {
					c.mem[int32(addr)] = mStoreVal
				}
			}
		}
		u.xInst = mInstW
		u.xPC = mPC
		u.xValid = mValid
		u.xResult = result
		u.xTrap = trap
		u.xTT = tt
		u.xICC = mICC
		u.xY = mY
		u.xAddr = addr
		u.xStoreVal = mStoreVal
		u.xNPC = mPC + 1
	}

	// ---- E: execute, branch resolution, forwarding. ----
	redirect := false
	var redirectPC uint32
	var stall bool

	// forward returns the freshest in-flight value of register idx, falling
	// back to the register file. Bypass sources are the E/M, M/X and X/W
	// latches — exactly the wires a hardware bypass network taps.
	forward := func(idx uint8, raw uint32) uint32 {
		if idx == 0 {
			return 0
		}
		if mValid && mD.Valid && mD.WritesReg && mD.In.Rd == idx {
			return mResult
		}
		if xValid && xD.Valid && xD.WritesReg && xD.In.Rd == idx {
			return xResult
		}
		if wValid && wD.Valid && wD.WritesReg && wD.In.Rd == idx {
			return wResult
		}
		return raw
	}

	{
		trap := false
		var tt uint64
		var result, storeVal uint32
		var y uint32
		icc := uint8(0)
		if eValid {
			if !eD.Valid {
				trap = true
				tt = 2 // illegal instruction
			} else {
				op1 := forward(eD.In.Rs1, eOp1)
				var op2 uint32
				if eD.NeedsRs2 {
					op2 = forward(eD.In.Rs2, eOp2)
				} else {
					op2 = eOp2
				}
				result, storeVal, y, trap, tt = eD.Exec(op1, op2, ePC)
				if !trap && eD.IsControl {
					taken, target := eD.Br(op1, op2, ePC)
					if taken {
						redirect = true
						redirectPC = target
					}
				}
				if !trap {
					// stage the refetch point for when this instruction
					// finishes its memory access
					if redirect {
						c.nextAtM = redirectPC
					} else {
						c.nextAtM = ePC + 1
					}
				}
				// condition codes (unread by these workloads)
				if result == 0 {
					icc |= 4 // Z
				}
				if int32(result) < 0 {
					icc |= 8 // N
				}
			}
		}
		u.mInst = eInstW
		u.mPC = ePC
		u.mValid = eValid
		u.mResult = result
		u.mStoreVal = storeVal
		u.mTrap = trap
		u.mTT = uint8(tt)
		u.mY = y
		u.mICC = icc
	}

	// ---- A: register access + load-use interlock. ----
	// Stall when the instruction entering execute needs a register that the
	// load currently in execute will only produce at the end of memory.
	if aValid && eValid && eD.In.Op == isa.LW && eD.In.Rd != 0 {
		if (aD.NeedsRs1 && aD.In.Rs1 == eD.In.Rd) || (aD.NeedsRs2 && aD.In.Rs2 == eD.In.Rd) {
			stall = true
		}
	}

	if redirect || !stall {
		valid := aValid && !redirect
		u.eInst = aInstW
		u.ePC = aPC
		u.eValid = valid
		u.eOp1 = c.regfile[aRs1]
		u.eOp2 = c.regfile[aRs2]
		u.eY = u.mY
		u.eCWP = u.aCWP
	} else {
		// Bubble into execute; hold younger stages.
		u.eValid = false
	}

	// ---- D: decode. ----
	if redirect {
		u.aValid = false
	} else if !stall {
		dD := c.dec(dPC, dInst)
		u.aInst = dInst
		u.aPC = dPC
		u.aValid = dValid
		u.aRs1 = dD.In.Rs1
		u.aRs2 = dD.In.Rs2
	}

	// ---- F: fetch. ----
	if redirect {
		u.dValid = false
		u.fPC = redirectPC
	} else if !stall {
		var word uint32 = illegalWord
		if int(fPC) < len(c.program.Words) {
			word = c.program.Words[fPC]
		}
		u.dInst = word
		u.dPC = fPC
		u.dValid = true
		u.fPC = fPC + 1
	}
}
