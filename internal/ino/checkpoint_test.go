package ino

import (
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
)

func checkpointProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 40)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Sw(1, 0, 4)
	b.Lw(4, 0, 4)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p, err := prog.New("ckpt", b.Items(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeExpected(10000); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSnapshotRestoreRoundTrip runs to a mid-point, snapshots, finishes, then
// restores and finishes again: both futures must be identical, and the
// restored state must match its own checkpoint.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := checkpointProgram(t)
	c := New(p)
	for i := 0; i < 50; i++ {
		c.Step()
	}
	ck := c.Snapshot()
	if !c.Matches(ck) {
		t.Fatal("fresh snapshot does not match its own core")
	}
	r1 := c.Run(100000)
	cyc1, ret1 := c.Cycles(), c.Retired()

	c.Restore(ck)
	if !c.Matches(ck) {
		t.Fatal("restored core does not match the checkpoint")
	}
	if c.Cycles() != 50 {
		t.Fatalf("restored cycle counter %d, want 50", c.Cycles())
	}
	r2 := c.Run(100000)
	if r1.Status != r2.Status || r1.Steps != r2.Steps {
		t.Fatalf("replay diverged: %+v vs %+v", r1, r2)
	}
	if len(r1.Output) != len(r2.Output) {
		t.Fatalf("output length diverged: %d vs %d", len(r1.Output), len(r2.Output))
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatalf("output[%d] diverged", i)
		}
	}
	if c.Cycles() != cyc1 || c.Retired() != ret1 {
		t.Fatalf("counters diverged: (%d,%d) vs (%d,%d)", c.Cycles(), c.Retired(), cyc1, ret1)
	}
}

// TestMatchesDetectsDivergence flips one bit and requires Matches to fail,
// then verifies that memory and output divergence are also caught.
func TestMatchesDetectsDivergence(t *testing.T) {
	p := checkpointProgram(t)
	c := New(p)
	for i := 0; i < 30; i++ {
		c.Step()
	}
	ck := c.Snapshot()
	c.State().FlipBit(3)
	if c.Matches(ck) {
		t.Fatal("Matches missed a flipped flip-flop")
	}
	c.State().FlipBit(3)
	if !c.Matches(ck) {
		t.Fatal("Matches false negative after undoing the flip")
	}
	c.Restore(ck)
	c.Step()
	if c.Matches(ck) {
		t.Fatal("Matches missed a cycle-count difference")
	}
}
