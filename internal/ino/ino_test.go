package ino

import (
	"math/rand"
	"testing"

	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
)

func mustProg(t testing.TB, name string, b *isa.Builder, data []uint32, mem int) *prog.Program {
	t.Helper()
	p, err := prog.New(name, b.Items(), data, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeExpected(2_000_000); err != nil {
		t.Fatal(err)
	}
	return p
}

// runBoth runs p on the ISS and the pipeline and checks architectural
// equivalence of outputs and termination status.
func runBoth(t *testing.T, p *prog.Program) prog.Result {
	t.Helper()
	c := New(p)
	res := c.Run(5_000_000)
	if res.Status != prog.StatusHalted {
		t.Fatalf("%s: pipeline status %v after %d cycles", p.Name, res.Status, res.Steps)
	}
	if !p.OutputsEqual(res.Output) {
		t.Fatalf("%s: pipeline output %v != golden %v", p.Name, res.Output, p.Expected)
	}
	return res
}

func TestSumLoop(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 200)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p := mustProg(t, "sum", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 20100 {
		t.Fatalf("sum = %d", res.Output[0])
	}
}

func TestLoadUseHazard(t *testing.T) {
	// lw immediately followed by use: interlock must stall correctly.
	data := []uint32{7, 35}
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Lw(2, 1, 0) // r2 = 7
	b.Addi(3, 2, 1)
	b.Lw(4, 1, 1) // r4 = 35
	b.Add(5, 4, 3)
	b.Out(5) // 43
	b.Lw(6, 1, 0)
	b.Sw(6, 1, 1) // mem[1] = 7 (store data hazard)
	b.Lw(7, 1, 1)
	b.Out(7) // 7
	b.Halt()
	p := mustProg(t, "loaduse", b, data, 16)
	res := runBoth(t, p)
	if res.Output[0] != 43 || res.Output[1] != 7 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestForwardingChain(t *testing.T) {
	// Dependent ALU ops back to back exercise E->E, M->E, X->E bypasses.
	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Add(2, 1, 1) // 2
	b.Add(3, 2, 2) // 4
	b.Add(4, 3, 3) // 8
	b.Add(5, 4, 4) // 16
	b.Add(6, 5, 4) // 24
	b.Out(6)
	b.Halt()
	p := mustProg(t, "fwd", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 24 {
		t.Fatalf("got %d", res.Output[0])
	}
}

func TestBranchFlush(t *testing.T) {
	// Taken branches must squash wrong-path instructions (incl. OUT/SW).
	b := isa.NewBuilder()
	b.Li(1, 5)
	b.Li(2, 5)
	b.Beq(1, 2, "taken")
	b.Out(1) // wrong path: must not emit
	b.Li(3, 99)
	b.Label("taken")
	b.Li(4, 1)
	b.Out(4)
	b.Halt()
	p := mustProg(t, "brflush", b, nil, 16)
	res := runBoth(t, p)
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestCallReturn(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(5, 10)
	b.Jal(31, "double")
	b.Jal(31, "double")
	b.Out(5) // 40
	b.Halt()
	b.Label("double")
	b.Add(5, 5, 5)
	b.Ret(31)
	p := mustProg(t, "call", b, nil, 16)
	res := runBoth(t, p)
	if res.Output[0] != 40 {
		t.Fatalf("got %d", res.Output[0])
	}
}

func TestMulDiv(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, -7)
	b.Li(2, 9)
	b.Mul(3, 1, 2)
	b.Out(3) // -63
	b.Li(1, 100000)
	b.Mulh(3, 1, 1)
	b.Out(3) // high word of 1e10
	b.Li(2, 3)
	b.Div(4, 1, 2)
	b.Out(4)
	b.Rem(5, 1, 2)
	b.Out(5)
	b.Halt()
	p := mustProg(t, "muldiv", b, nil, 16)
	res := runBoth(t, p)
	if int32(res.Output[0]) != -63 {
		t.Fatalf("mul got %d", int32(res.Output[0]))
	}
	if res.Output[1] != uint32(uint64(10_000_000_000)>>32) {
		t.Fatalf("mulh got %d", res.Output[1])
	}
	if res.Output[2] != 33333 || res.Output[3] != 1 {
		t.Fatalf("div/rem got %v", res.Output[2:])
	}
}

func TestTrapOnIllegalAndOOB(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 1<<20)
	b.Lw(2, 1, 0)
	b.Halt()
	p, err := prog.New("oob", b.Items(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	res := c.Run(10000)
	if res.Status != prog.StatusTrap {
		t.Fatalf("status %v, want trap", res.Status)
	}

	b = isa.NewBuilder()
	b.Li(1, 3)
	b.Li(2, 0)
	b.Div(3, 1, 2)
	b.Halt()
	p, _ = prog.New("div0", b.Items(), nil, 16)
	res = New(p).Run(10000)
	if res.Status != prog.StatusTrap {
		t.Fatalf("div0 status %v", res.Status)
	}
}

func TestTrapd(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 1)
	b.Trapd()
	b.Halt()
	p, _ := prog.New("td", b.Items(), nil, 16)
	res := New(p).Run(10000)
	if res.Status != prog.StatusDetected {
		t.Fatalf("status %v", res.Status)
	}
}

func TestHangCutoff(t *testing.T) {
	b := isa.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	p, _ := prog.New("spin", b.Items(), nil, 16)
	res := New(p).Run(500)
	if res.Status != prog.StatusMaxSteps {
		t.Fatalf("status %v", res.Status)
	}
}

// randomProgram generates a random but well-formed straight-line-plus-loops
// program and cross-checks pipeline vs functional semantics.
func randomProgram(rng *rand.Rand) *isa.Builder {
	b := isa.NewBuilder()
	// init registers r1..r8 with random values
	for r := uint8(1); r <= 8; r++ {
		b.Li(r, int32(rng.Uint32()))
	}
	nBlocks := 3 + rng.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rd := uint8(1 + rng.Intn(8))
			rs1 := uint8(1 + rng.Intn(8))
			rs2 := uint8(1 + rng.Intn(8))
			switch rng.Intn(8) {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Sub(rd, rs1, rs2)
			case 2:
				b.Xor(rd, rs1, rs2)
			case 3:
				b.Mul(rd, rs1, rs2)
			case 4:
				b.Sw(rs1, 0, int32(rng.Intn(16)))
				b.Lw(rd, 0, int32(rng.Intn(16)))
			case 5:
				b.Slt(rd, rs1, rs2)
			case 6:
				b.Srl(rd, rs1, rs2)
			case 7:
				b.Addi(rd, rs1, int32(rng.Intn(100)-50))
			}
		}
		b.Out(uint8(1 + rng.Intn(8)))
	}
	b.Halt()
	return b
}

func TestRandomProgramsMatchISS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		b := randomProgram(rng)
		p, err := prog.New("rand", b.Items(), nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ComputeExpected(100000); err != nil {
			t.Fatal(err)
		}
		res := New(p).Run(1_000_000)
		if res.Status != prog.StatusHalted {
			t.Fatalf("prog %d: status %v", i, res.Status)
		}
		if !p.OutputsEqual(res.Output) {
			t.Fatalf("prog %d: output mismatch\n got %v\nwant %v", i, res.Output, p.Expected)
		}
	}
}

func TestSpaceProperties(t *testing.T) {
	s := Space()
	if s.NumBits() < 900 || s.NumBits() > 2000 {
		t.Fatalf("InO flip-flop count %d outside the Leon3-like range", s.NumBits())
	}
	if _, ok := s.Lookup("e.ctrl.inst"); !ok {
		t.Fatal("missing e.ctrl.inst")
	}
	if _, ok := s.Lookup("w.s.icc"); !ok {
		t.Fatal("missing w.s.icc")
	}
	t.Logf("InO core: %d flip-flops in %d structures", s.NumBits(), s.NumFields())
}

func TestCommitHookSeesRetiredStream(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 3)
	b.Li(2, 4)
	b.Add(3, 1, 2)
	b.Out(3)
	b.Halt()
	p := mustProg(t, "hook", b, nil, 16)
	c := New(p)
	var pcs []uint32
	c.SetCommitHook(func(ev sim.CommitEvent) bool {
		pcs = append(pcs, ev.PC)
		return false
	})
	c.Run(1000)
	// Commit PCs must be exactly program order 0..4.
	if len(pcs) < 4 {
		t.Fatalf("commits: %v", pcs)
	}
	for i, pc := range pcs {
		if int(pc) != i {
			t.Fatalf("commit %d at pc %d", i, pc)
		}
	}
}

func TestCommitHookDetectStops(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 3)
	b.Out(1)
	b.Halt()
	p := mustProg(t, "hookdet", b, nil, 16)
	c := New(p)
	c.SetCommitHook(func(ev sim.CommitEvent) bool { return true })
	res := c.Run(1000)
	if res.Status != prog.StatusDetected {
		t.Fatalf("status %v, want detected", res.Status)
	}
}

func TestInjectionChangesOutcome(t *testing.T) {
	// Flipping a bit of the latched operand mid-run should eventually
	// produce an output mismatch for this data-dependent program.
	b := isa.NewBuilder()
	b.Li(1, 0)
	b.Li(2, 0)
	b.Li(3, 50)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.Add(1, 1, 2)
	b.Bne(2, 3, "loop")
	b.Out(1)
	b.Halt()
	p := mustProg(t, "inj", b, nil, 16)

	f, _ := Space().Lookup("e.op1")
	mismatches := 0
	for cyc := 20; cyc < 40; cyc++ {
		c := New(p)
		for i := 0; i < cyc; i++ {
			c.Step()
		}
		c.State().FlipBit(f.Offset() + 16)
		res := c.Run(100000)
		if res.Status == prog.StatusHalted && !p.OutputsEqual(res.Output) {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Fatal("no injection produced an output mismatch; injection plumbing broken?")
	}
}

func TestResetReuse(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(1, 11)
	b.Out(1)
	b.Halt()
	p := mustProg(t, "r1", b, nil, 16)
	c := New(p)
	res1 := c.Run(1000)
	c.Reset(p)
	res2 := c.Run(1000)
	if res1.Status != res2.Status || len(res2.Output) != 1 || res2.Output[0] != 11 {
		t.Fatalf("reset run differs: %v vs %v", res1, res2)
	}
}

func BenchmarkPipelineCycles(b *testing.B) {
	bb := isa.NewBuilder()
	bb.Li(1, 0)
	bb.Li(2, 0)
	bb.Li(3, 1000000)
	bb.Label("loop")
	bb.Addi(2, 2, 1)
	bb.Add(1, 1, 2)
	bb.Bne(2, 3, "loop")
	bb.Out(1)
	bb.Halt()
	p, _ := prog.New("bench", bb.Items(), nil, 16)
	c := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		if c.Done() {
			c.Reset(p)
		}
	}
}
