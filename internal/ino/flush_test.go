package ino_test

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/ino"
	"clear/internal/prog"
	"clear/internal/recovery"
)

// flipAndFlush injects a flip and immediately invokes flush recovery (the
// parity checker detects the corrupted latch before it is consumed).
func flipAndFlush(p *prog.Program, bit, cycle, nom int) (prog.Result, bool) {
	c := ino.New(p)
	for i := 0; i < cycle && !c.Done(); i++ {
		c.Step()
	}
	if c.Done() {
		return c.Result(), true
	}
	c.State().FlipBit(bit)
	c.FlushRecover()
	return c.Run(3 * nom), false
}

// Simulated flush recovery must actually correct every detected error in
// the recoverable stages — validating the analytic model that treats
// parity+flush-protected flip-flops as fully suppressed.
func TestFlushRecoveryCorrectsRecoverableStages(t *testing.T) {
	for _, bname := range []string{"gap", "vortex", "inner_product"} {
		p := bench.ByName(bname).MustProgram()
		nom := ino.New(p).Run(1_000_000).Steps
		space := ino.Space()
		checked := 0
		for bit := 0; bit < space.NumBits(); bit += 5 {
			if !recovery.Recoverable(recovery.Flush, "InO", space, bit) {
				continue
			}
			for _, cycle := range []int{nom / 4, nom / 2, 3 * nom / 4} {
				res, late := flipAndFlush(p, bit, cycle, nom)
				if late {
					continue
				}
				if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
					name, _ := space.NameOf(bit)
					t.Fatalf("%s: flush failed to recover flip in %s (bit %d, cycle %d): %v",
						bname, name, bit, cycle, res.Status)
				}
				checked++
			}
		}
		if checked < 100 {
			t.Fatalf("%s: only %d recoverable flips exercised", bname, checked)
		}
	}
}

// The flush-recovery penalty must be small (pipeline refill), on the order
// of the paper's 7-cycle latency.
func TestFlushRecoveryLatency(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := ino.New(p).Run(1_000_000).Steps
	f, _ := ino.Space().Lookup("e.op1")
	res, _ := flipAndFlush(p, f.Offset()+3, nom/2, nom)
	if res.Status != prog.StatusHalted {
		t.Fatalf("status %v", res.Status)
	}
	penalty := res.Steps - nom
	if penalty < 0 || penalty > 3*recovery.Latency(recovery.Flush, "InO") {
		t.Fatalf("flush penalty %d cycles (expected ~%d)", penalty, recovery.Latency(recovery.Flush, "InO"))
	}
	t.Logf("flush recovery penalty: %d cycles (paper: %d)", penalty, recovery.Latency(recovery.Flush, "InO"))
}

// Errors past the memory-write stage must escape flush recovery at least
// sometimes — empirically validating the Heuristic-1 partition.
func TestFlushCannotRecoverPostCommitStages(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := ino.New(p).Run(1_000_000).Steps
	space := ino.Space()
	escaped := 0
	for _, name := range []string{"w.result", "x.result", "x.storeval", "w.ctrl.inst"} {
		for i, bit := range space.BitsOf(name) {
			if i%2 != 0 {
				continue
			}
			for cycle := nom / 8; cycle < nom; cycle += nom / 8 {
				res, late := flipAndFlush(p, bit, cycle, nom)
				if late {
					continue
				}
				if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
					escaped++
				}
			}
		}
	}
	if escaped == 0 {
		t.Fatal("no post-commit flip escaped flush recovery; the recoverability partition would be vacuous")
	}
	t.Logf("%d post-commit flips escaped flush recovery, as the paper's model requires", escaped)
}

// Flush recovery during normal (error-free) operation must be harmless:
// it only discards uncommitted work that gets refetched.
func TestFlushRecoveryIsIdempotentOnCleanRuns(t *testing.T) {
	p := bench.ByName("parser").MustProgram()
	nom := ino.New(p).Run(1_000_000).Steps
	for _, cycle := range []int{17, nom / 3, nom / 2, nom - 5} {
		c := ino.New(p)
		for i := 0; i < cycle && !c.Done(); i++ {
			c.Step()
		}
		c.FlushRecover()
		res := c.Run(3 * nom)
		if res.Status != prog.StatusHalted || !p.OutputsEqual(res.Output) {
			t.Fatalf("clean flush at cycle %d broke execution: %v", cycle, res.Status)
		}
	}
}
