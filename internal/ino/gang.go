package ino

import "clear/internal/sim"

// Gang hooks for the packed fault-injection engine (sim.GangCore,
// DESIGN.md §14): lane forking via core-to-core state cloning and the
// per-cycle classified divergence check against the fault-free carrier.

var _ sim.GangCore = (*Core)(nil)

// CopyStateFrom makes the core's state bit-for-bit identical to src, a
// second in-order core bound to the same program. Both state
// representations are copied — the packed ff.State and the unpacked latch
// mirror with its validity flag — so the copy is exact in either execution
// mode without forcing a pack/unpack round trip. The decode cache and
// threaded translation are shared/memoized derivations of the program, not
// state; the commit hook is left untouched, like Restore.
func (c *Core) CopyStateFrom(src sim.Core) {
	s := src.(*Core)
	c.program = s.program
	c.tp = s.tp
	c.st.CopyFrom(s.st)
	c.u = s.u
	c.uValid = s.uValid
	c.regfile = s.regfile
	if cap(c.mem) >= len(s.mem) {
		c.mem = c.mem[:len(s.mem)]
	} else {
		c.mem = make([]uint32, len(s.mem))
	}
	copy(c.mem, s.mem)
	c.out = append(c.out[:0], s.out...)
	c.cycles = s.cycles
	c.retired = s.retired
	c.done = s.done
	c.status = s.status
	c.recoveryNext = s.recoveryNext
	c.nextAtM = s.nextAtM
}

// pcView reads the fetch PC from whichever state representation is
// authoritative, without synchronizing them.
func (c *Core) pcView() uint32 {
	if c.uValid {
		return c.u.fPC
	}
	return uint32(c.r.fPC.Get(c.st))
}

// DiffFrom compares the core's full state against ref (a second in-order
// core bound to the same program) and returns the first divergence class
// found: control path, then latch/register state, then memory/output side
// state. A zero result certifies bit-for-bit identical full state — the
// same guarantee Matches gives against a checkpoint. When both cores run
// compiled, the latch comparison is a single struct equality over the
// unpacked mirrors; mixed representations are packed first (the mirror
// stays live, exactly as in Matches).
func (c *Core) DiffFrom(ref sim.Core) uint8 {
	o := ref.(*Core)
	if c.done != o.done || c.status != o.status || c.cycles != o.cycles ||
		c.retired != o.retired || c.pcView() != o.pcView() {
		return sim.DiffCtl
	}
	if c.regfile != o.regfile || c.recoveryNext != o.recoveryNext || c.nextAtM != o.nextAtM {
		return sim.DiffState
	}
	if c.uValid && o.uValid {
		if c.u != o.u {
			return sim.DiffState
		}
	} else {
		if c.uValid {
			c.packU()
		}
		if o.uValid {
			o.packU()
		}
		if !c.st.Equal(o.st) {
			return sim.DiffState
		}
	}
	if !wordsEqual(c.out, o.out) || !wordsEqual(c.mem, o.mem) {
		return sim.DiffAux
	}
	return 0
}
