package ino

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/prog"
)

// classify runs an injection at (bit, cycle) against b's golden output.
func classify(t *testing.T, p *prog.Program, bit, cycle, nom int) string {
	t.Helper()
	c := New(p)
	for i := 0; i < cycle && !c.Done(); i++ {
		c.Step()
	}
	c.State().FlipBit(bit)
	res := c.Run(2 * nom)
	switch {
	case res.Status == prog.StatusHalted && p.OutputsEqual(res.Output):
		return "vanish"
	case res.Status == prog.StatusHalted:
		return "omm"
	case res.Status == prog.StatusTrap:
		return "ut"
	case res.Status == prog.StatusDetected:
		return "ed"
	default:
		return "hang"
	}
}

// The paper's Appendix A: errors in certain structures ALWAYS vanish
// because nothing architecturally reads them. Our equivalents must behave
// the same.
func TestAlwaysVanishStructures(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	for _, name := range []string{
		"w.s.tba", "w.s.wim", "w.s.pil", "x.debug", "x.ipend", "m.y",
		"m.irqen", "m.dci.asi", "e.cwp", "a.rfe1", "d.pv", "ic.cfg",
	} {
		bits := Space().BitsOf(name)
		if bits == nil {
			t.Fatalf("missing structure %s", name)
		}
		for i, bit := range bits {
			if i%4 != 0 { // sample every 4th bit to bound runtime
				continue
			}
			for _, cycle := range []int{nom / 7, nom / 3, nom / 2, 2 * nom / 3} {
				if got := classify(t, p, bit, cycle, nom); got != "vanish" {
					t.Fatalf("%s bit %d at cycle %d: %s, want vanish", name, bit, cycle, got)
				}
			}
		}
	}
}

// Data-path structures must produce non-vanished outcomes at meaningful
// rates — if they never do, the injection plumbing is broken.
func TestVulnerableStructures(t *testing.T) {
	p := bench.ByName("gap").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	for _, name := range []string{"f.pc", "e.op1", "m.result", "a.ctrl.inst"} {
		bits := Space().BitsOf(name)
		bad := 0
		total := 0
		for i := 0; i < len(bits); i += 3 {
			for _, cycle := range []int{nom / 5, nom / 2, 4 * nom / 5} {
				if classify(t, p, bits[i], cycle, nom) != "vanish" {
					bad++
				}
				total++
			}
		}
		if bad == 0 {
			t.Errorf("%s: all %d injections vanished; structure should be vulnerable", name, total)
		}
	}
}

// Injection at a cycle past the end of the run is harmless (the machine
// has halted).
func TestLateInjectionVanishes(t *testing.T) {
	p := bench.ByName("eon").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	f, _ := Space().Lookup("e.op1")
	if got := classify(t, p, f.Offset()+5, nom+100, nom); got != "vanish" {
		t.Fatalf("post-halt injection: %s", got)
	}
}

// Determinism: the same (bit, cycle) always produces the same outcome.
func TestInjectionDeterminism(t *testing.T) {
	p := bench.ByName("parser").MustProgram()
	nom := New(p).Run(1_000_000).Steps
	for bit := 0; bit < Space().NumBits(); bit += 131 {
		a := classify(t, p, bit, nom/3, nom)
		b := classify(t, p, bit, nom/3, nom)
		if a != b {
			t.Fatalf("bit %d: %s then %s", bit, a, b)
		}
	}
}
