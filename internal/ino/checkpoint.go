package ino

import "clear/internal/sim"

// extra is the in-order core's non-flip-flop state: the flush-recovery
// control's hardened shadow registers (see the Core field comments).
type extra struct {
	recoveryNext uint32
	nextAtM      uint32
}

// Snapshot captures the full simulation state at the current cycle.
func (c *Core) Snapshot() *sim.Checkpoint {
	if c.uValid {
		c.packU() // materialize the compiled path's latches; mirror stays current
	}
	return &sim.Checkpoint{
		FF:      c.st.Clone(),
		Regs:    c.regfile,
		Mem:     append([]uint32(nil), c.mem...),
		Out:     append([]uint32(nil), c.out...),
		Cycles:  c.cycles,
		Retired: c.retired,
		Done:    c.done,
		Status:  c.status,
		Extra:   extra{c.recoveryNext, c.nextAtM},
	}
}

// Restore rewinds the core to ck, which must have been taken from an
// in-order core bound to the same program.
func (c *Core) Restore(ck *sim.Checkpoint) {
	c.uValid = false // packed state becomes authoritative
	c.st.CopyFrom(ck.FF)
	c.regfile = ck.Regs
	if cap(c.mem) >= len(ck.Mem) {
		c.mem = c.mem[:len(ck.Mem)]
	} else {
		c.mem = make([]uint32, len(ck.Mem))
	}
	copy(c.mem, ck.Mem)
	c.out = append(c.out[:0], ck.Out...)
	c.cycles = ck.Cycles
	c.retired = ck.Retired
	c.done = ck.Done
	c.status = ck.Status
	e := ck.Extra.(extra)
	c.recoveryNext = e.recoveryNext
	c.nextAtM = e.nextAtM
}

// Matches reports whether the core's current state equals ck bit-for-bit.
func (c *Core) Matches(ck *sim.Checkpoint) bool {
	e, ok := ck.Extra.(extra)
	if !ok {
		return false
	}
	if c.uValid {
		c.packU() // materialize the compiled path's latches; mirror stays current
	}
	return c.cycles == ck.Cycles &&
		c.retired == ck.Retired &&
		c.done == ck.Done &&
		c.status == ck.Status &&
		c.recoveryNext == e.recoveryNext &&
		c.nextAtM == e.nextAtM &&
		c.regfile == ck.Regs &&
		c.st.Equal(ck.FF) &&
		wordsEqual(c.out, ck.Out) &&
		wordsEqual(c.mem, ck.Mem)
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
