// Package ino implements the in-order processor core (the paper's SPARC
// Leon3 stand-in): a 7-stage pipeline — fetch (F), decode (D), register
// access (A), execute (E), memory (M), exception (X), writeback (W) — with
// full forwarding, load-use interlock, and branch resolution in execute.
//
// Every inter-stage latch, status register and control register is a named
// field in a ff.Space, using the structure names of the paper's Appendix A
// (e.ctrl.inst, m.y, w.s.icc, ...). A soft error is a single bit flip in
// that space between two clock cycles; outcomes (vanish, output mismatch,
// trap, hang) emerge from ordinary pipeline execution of the corrupted
// state, exactly as in the paper's RTL-level injection.
//
// The register file and memories are explicitly NOT part of the flip-flop
// space: the paper protects RAMs with coding techniques and targets
// flip-flops only.
package ino

import (
	"clear/internal/ff"
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/tcode"
)

// illegalWord is the instruction word returned for out-of-range fetches; its
// opcode field decodes as illegal and traps at execute.
const illegalWord = 0xFFFFFFFF

// regs holds the flip-flop field handles of the core. Names follow the
// paper's Appendix A conventions for the Leon3.
type regs struct {
	// fetch
	fPC ff.Field
	// decode latch (F/D)
	dInst, dPC  ff.Field
	dValid, dPV ff.Field
	dMexc, dCnt ff.Field
	// register-access latch (D/A)
	aInst, aPC         ff.Field
	aValid             ff.Field
	aRs1, aRs2         ff.Field
	aCWP, aRFE1, aRFE2 ff.Field
	aTT, aWY           ff.Field
	// execute latch (A/E)
	eInst, ePC     ff.Field
	eValid         ff.Field
	eOp1, eOp2     ff.Field
	eY             ff.Field
	eTT, eCWP      ff.Field
	eET, eMAC      ff.Field
	eMul, eMulstep ff.Field
	eSU, eYMSB     ff.Field
	// memory latch (E/M)
	mInst, mPC         ff.Field
	mValid             ff.Field
	mResult, mStoreVal ff.Field
	mTrap, mTT         ff.Field
	mY, mICC           ff.Field
	mWICC, mWY         ff.Field
	mDciASI            ff.Field
	mDciLock, mDciSign ff.Field
	mIrqen, mIrqen2    ff.Field
	// exception latch (M/X)
	xInst, xPC      ff.Field
	xValid          ff.Field
	xResult         ff.Field
	xTrap, xTT      ff.Field
	xY, xICC        ff.Field
	xNPC            ff.Field
	xAddr           ff.Field
	xStoreVal       ff.Field
	xWICC, xWY      ff.Field
	xRETT, xPV      ff.Field
	xDebug          ff.Field
	xIntack, xIpend ff.Field
	xAnnul          ff.Field
	// writeback latch (X/W) and architectural status (w.s.*)
	wInst, wPC   ff.Field
	wValid       ff.Field
	wResult      ff.Field
	wTrap, wTT   ff.Field
	wAddr        ff.Field
	wStoreVal    ff.Field
	wSICC, wSY   ff.Field
	wSTT, wSTBA  ff.Field
	wSWIM, wSPIL ff.Field
	wSEC, wSEF   ff.Field
	wSPS, wSET   ff.Field
	wSCWP, wSDWT ff.Field
	// cache/control structures (present in Leon3; exercised but output-
	// neutral for these workloads, like the paper's always-vanish FFs)
	icCfg, dcCfg ff.Field
}

var _ sim.Core = (*Core)(nil)

// Core is an instance of the in-order core bound to a program.
type Core struct {
	space *ff.Space
	r     regs
	st    *ff.State

	program *prog.Program
	regfile [32]uint32
	mem     []uint32
	out     []uint32

	cycles  int
	retired int64
	done    bool
	status  prog.Status

	// recoveryNext is the flush-recovery refetch point: the next PC in
	// program order after the newest instruction that has completed its
	// memory access. nextAtM stages that value alongside the instruction
	// currently in the memory stage. Both model the recovery control's
	// hardened shadow registers (Fig 5) and are therefore not part of the
	// injectable flip-flop space.
	recoveryNext uint32
	nextAtM      uint32

	// tp is the program's threaded-code translation when compiled execution
	// is enabled (nil runs the decode-switch interpreter); dcache memoizes
	// decodes of words that miss the per-PC translation (corrupted latches,
	// bubbles, out-of-range fetches).
	tp     *tcode.Program
	dcache tcode.Cache

	// u is the unpacked latch mirror the compiled path executes on; uValid
	// marks it current. Observation points (State, Snapshot, Matches,
	// Restore, Reset, FlushRecover) synchronize it with the packed st so
	// external code always sees the interpreter's exact bit layout.
	u      uLatches
	uValid bool

	hook sim.CommitHook
}

// NewSpace builds the flip-flop space of the in-order core. The same space
// (and therefore the same bit numbering) is shared by every Core instance,
// so injection targets and protection maps are stable across runs.
func NewSpace() *ff.Space {
	s := ff.NewSpace()
	var r regs
	allocInto(s, &r)
	s.Freeze()
	return s
}

func allocInto(s *ff.Space, r *regs) {
	// fetch
	r.fPC = s.Alloc("fetch", "f.pc", 32)
	// decode
	r.dInst = s.Alloc("decode", "d.inst", 32)
	r.dPC = s.Alloc("decode", "d.pc", 32)
	r.dValid = s.Alloc("decode", "d.valid", 1)
	r.dPV = s.Alloc("decode", "d.pv", 1)
	r.dMexc = s.Alloc("decode", "d.mexc", 1)
	r.dCnt = s.Alloc("decode", "d.cnt", 2)
	// register access
	r.aInst = s.Alloc("regacc", "a.ctrl.inst", 32)
	r.aPC = s.Alloc("regacc", "a.ctrl.pc", 32)
	r.aValid = s.Alloc("regacc", "a.ctrl.valid", 1)
	r.aRs1 = s.Alloc("regacc", "a.rs1", 5)
	r.aRs2 = s.Alloc("regacc", "a.rs2", 5)
	r.aCWP = s.Alloc("regacc", "a.cwp", 3)
	r.aRFE1 = s.Alloc("regacc", "a.rfe1", 1)
	r.aRFE2 = s.Alloc("regacc", "a.rfe2", 1)
	r.aTT = s.Alloc("regacc", "a.ctrl.tt", 8)
	r.aWY = s.Alloc("regacc", "a.ctrl.wy", 1)
	// execute
	r.eInst = s.Alloc("execute", "e.ctrl.inst", 32)
	r.ePC = s.Alloc("execute", "e.ctrl.pc", 32)
	r.eValid = s.Alloc("execute", "e.ctrl.valid", 1)
	r.eOp1 = s.Alloc("execute", "e.op1", 32)
	r.eOp2 = s.Alloc("execute", "e.op2", 32)
	r.eY = s.Alloc("execute", "e.y", 32)
	r.eTT = s.Alloc("execute", "e.ctrl.tt", 8)
	r.eCWP = s.Alloc("execute", "e.cwp", 3)
	r.eET = s.Alloc("execute", "e.et", 1)
	r.eMAC = s.Alloc("execute", "e.mac", 1)
	r.eMul = s.Alloc("execute", "e.mul", 1)
	r.eMulstep = s.Alloc("execute", "e.mulstep", 6)
	r.eSU = s.Alloc("execute", "e.su", 1)
	r.eYMSB = s.Alloc("execute", "e.ymsb", 1)
	// memory
	r.mInst = s.Alloc("memory", "m.ctrl.inst", 32)
	r.mPC = s.Alloc("memory", "m.ctrl.pc", 32)
	r.mValid = s.Alloc("memory", "m.ctrl.valid", 1)
	r.mResult = s.Alloc("memory", "m.result", 32)
	r.mStoreVal = s.Alloc("memory", "m.storeval", 32)
	r.mTrap = s.Alloc("memory", "m.trap", 1)
	r.mTT = s.Alloc("memory", "m.ctrl.tt", 8)
	r.mY = s.Alloc("memory", "m.y", 32)
	r.mICC = s.Alloc("memory", "m.icc", 4)
	r.mWICC = s.Alloc("memory", "m.ctrl.wicc", 1)
	r.mWY = s.Alloc("memory", "m.ctrl.wy", 1)
	r.mDciASI = s.Alloc("memory", "m.dci.asi", 8)
	r.mDciLock = s.Alloc("memory", "m.dci.lock", 1)
	r.mDciSign = s.Alloc("memory", "m.dci.signed", 1)
	r.mIrqen = s.Alloc("memory", "m.irqen", 1)
	r.mIrqen2 = s.Alloc("memory", "m.irqen2", 1)
	// exception
	r.xInst = s.Alloc("exception", "x.ctrl.inst", 32)
	r.xPC = s.Alloc("exception", "x.ctrl.pc", 32)
	r.xValid = s.Alloc("exception", "x.ctrl.valid", 1)
	r.xResult = s.Alloc("exception", "x.result", 32)
	r.xTrap = s.Alloc("exception", "x.trap", 1)
	r.xTT = s.Alloc("exception", "x.ctrl.tt", 8)
	r.xY = s.Alloc("exception", "x.y", 32)
	r.xICC = s.Alloc("exception", "x.icc", 4)
	r.xNPC = s.Alloc("exception", "x.npc", 32)
	r.xAddr = s.Alloc("exception", "x.addr", 32)
	r.xStoreVal = s.Alloc("exception", "x.storeval", 32)
	r.xWICC = s.Alloc("exception", "x.ctrl.wicc", 1)
	r.xWY = s.Alloc("exception", "x.ctrl.wy", 1)
	r.xRETT = s.Alloc("exception", "x.ctrl.rett", 1)
	r.xPV = s.Alloc("exception", "x.ctrl.pv", 1)
	r.xDebug = s.Alloc("exception", "x.debug", 32)
	r.xIntack = s.Alloc("exception", "x.intack", 1)
	r.xIpend = s.Alloc("exception", "x.ipend", 4)
	r.xAnnul = s.Alloc("exception", "x.annul", 1)
	// writeback + status
	r.wInst = s.Alloc("write", "w.ctrl.inst", 32)
	r.wPC = s.Alloc("write", "w.ctrl.pc", 32)
	r.wValid = s.Alloc("write", "w.ctrl.valid", 1)
	r.wResult = s.Alloc("write", "w.result", 32)
	r.wTrap = s.Alloc("write", "w.trap", 1)
	r.wTT = s.Alloc("write", "w.ctrl.tt", 8)
	r.wAddr = s.Alloc("write", "w.addr", 32)
	r.wStoreVal = s.Alloc("write", "w.storeval", 32)
	r.wSICC = s.Alloc("write", "w.s.icc", 4)
	r.wSY = s.Alloc("write", "w.s.y", 32)
	r.wSTT = s.Alloc("write", "w.s.tt", 8)
	r.wSTBA = s.Alloc("write", "w.s.tba", 20)
	r.wSWIM = s.Alloc("write", "w.s.wim", 8)
	r.wSPIL = s.Alloc("write", "w.s.pil", 4)
	r.wSEC = s.Alloc("write", "w.s.ec", 1)
	r.wSEF = s.Alloc("write", "w.s.ef", 1)
	r.wSPS = s.Alloc("write", "w.s.ps", 1)
	r.wSET = s.Alloc("write", "w.s.et", 1)
	r.wSCWP = s.Alloc("write", "w.s.cwp", 3)
	r.wSDWT = s.Alloc("write", "w.s.dwt", 1)
	// cache control
	r.icCfg = s.Alloc("icache", "ic.cfg", 16)
	r.dcCfg = s.Alloc("dcache", "dc.cfg", 16)
}

// shared space: built once, reused by every core instance.
var sharedSpace = NewSpace()
var sharedRegs = func() regs {
	s := ff.NewSpace()
	var r regs
	allocInto(s, &r)
	return r
}()

// Space returns the core's flip-flop space (shared across instances).
func Space() *ff.Space { return sharedSpace }

// New returns a core reset to run p.
func New(p *prog.Program) *Core {
	c := &Core{space: sharedSpace, r: sharedRegs}
	c.st = c.space.NewState()
	c.Reset(p)
	return c
}

// Reset rebinds the core to p and clears all state.
func (c *Core) Reset(p *prog.Program) {
	c.program = p
	c.st.Reset()
	c.regfile = [32]uint32{}
	if cap(c.mem) >= p.MemWords {
		c.mem = c.mem[:p.MemWords]
		for i := range c.mem {
			c.mem[i] = 0
		}
	} else {
		c.mem = make([]uint32, p.MemWords)
	}
	copy(c.mem, p.Data)
	c.out = c.out[:0]
	c.cycles = 0
	c.retired = 0
	c.done = false
	c.status = prog.StatusHalted
	c.recoveryNext = 0
	c.nextAtM = 0
	c.tp = nil
	if tcode.Enabled() {
		c.tp = p.Threaded()
	}
	c.uValid = false
}

// State exposes the flip-flop state for fault injection. Compiled
// execution flushes its unpacked mirror first and re-unpacks on the next
// step, so callers may freely flip bits in the returned state.
func (c *Core) State() *ff.State {
	c.syncU()
	return c.st
}

// SpaceOf returns the core's flip-flop space.
func (c *Core) SpaceOf() *ff.Space { return c.space }

// SetCommitHook installs an architecture-level commit observer.
func (c *Core) SetCommitHook(h sim.CommitHook) { c.hook = h }

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// Cycles returns the number of cycles simulated so far.
func (c *Core) Cycles() int { return c.cycles }

// Retired returns the number of committed instructions.
func (c *Core) Retired() int64 { return c.retired }

// Output returns the output stream emitted so far.
func (c *Core) Output() []uint32 { return c.out }

// Result summarizes a finished run. Valid once Done is true (or after a
// cycle-budget cutoff, in which case callers treat it as a hang).
func (c *Core) Result() prog.Result {
	return prog.Result{Status: c.status, Output: c.out, Steps: c.cycles}
}

// Run steps the core until completion or until the cycle budget is
// exhausted; in the latter case the status is StatusMaxSteps (hang).
func (c *Core) Run(maxCycles int) prog.Result {
	for !c.done && c.cycles < maxCycles {
		c.Step()
	}
	if !c.done {
		return prog.Result{Status: prog.StatusMaxSteps, Output: c.out, Steps: c.cycles}
	}
	return c.Result()
}

// needsRs reports which source registers an instruction format reads.
func needsRs(op isa.Op) (rs1, rs2 bool) {
	switch op.Fmt() {
	case isa.FmtR, isa.FmtStore, isa.FmtBranch:
		return true, true
	case isa.FmtI, isa.FmtLoad, isa.FmtJALR, isa.FmtOut:
		return true, false
	}
	return false, false
}

// Step advances the pipeline by one clock cycle.
func (c *Core) Step() {
	if c.tp != nil {
		c.stepThreaded()
		return
	}
	if c.done {
		return
	}
	c.cycles++
	st := c.st
	r := &c.r

	// ---- Snapshot current latches (the "clock edge" read). ----
	fPC := uint32(r.fPC.Get(st))

	dInst := uint32(r.dInst.Get(st))
	dPC := uint32(r.dPC.Get(st))
	dValid := r.dValid.Get(st) == 1

	aInstW := uint32(r.aInst.Get(st))
	aPC := uint32(r.aPC.Get(st))
	aValid := r.aValid.Get(st) == 1
	aRs1 := uint8(r.aRs1.Get(st))
	aRs2 := uint8(r.aRs2.Get(st))

	eInstW := uint32(r.eInst.Get(st))
	ePC := uint32(r.ePC.Get(st))
	eValid := r.eValid.Get(st) == 1
	eOp1 := uint32(r.eOp1.Get(st))
	eOp2 := uint32(r.eOp2.Get(st))

	mInstW := uint32(r.mInst.Get(st))
	mPC := uint32(r.mPC.Get(st))
	mValid := r.mValid.Get(st) == 1
	mResult := uint32(r.mResult.Get(st))
	mStoreVal := uint32(r.mStoreVal.Get(st))
	mTrap := r.mTrap.Get(st) == 1
	mICC := r.mICC.Get(st)
	mY := uint32(r.mY.Get(st))

	xInstW := uint32(r.xInst.Get(st))
	xPC := uint32(r.xPC.Get(st))
	xValid := r.xValid.Get(st) == 1
	xResult := uint32(r.xResult.Get(st))
	xTrap := r.xTrap.Get(st) == 1
	xTT := r.xTT.Get(st)
	xICC := r.xICC.Get(st)
	xAddr := uint32(r.xAddr.Get(st))
	xStoreVal := uint32(r.xStoreVal.Get(st))

	wInstW := uint32(r.wInst.Get(st))
	wPC := uint32(r.wPC.Get(st))
	wValid := r.wValid.Get(st) == 1
	wResult := uint32(r.wResult.Get(st))
	wTrap := r.wTrap.Get(st) == 1
	wAddr := uint32(r.wAddr.Get(st))
	wStoreVal := uint32(r.wStoreVal.Get(st))

	eInst := isa.Decode(eInstW)
	mInst := isa.Decode(mInstW)
	xInst := isa.Decode(xInstW)
	wInst := isa.Decode(wInstW)
	aInst := isa.Decode(aInstW)

	// ---- W: writeback / commit. ----
	if wValid {
		c.retired++
		if wTrap || !wInst.Op.Valid() {
			c.done = true
			c.status = prog.StatusTrap
			r.wSTT.Set(st, r.wTT.Get(st)) // trap type to status reg
			return
		}
		switch wInst.Op {
		case isa.HALT:
			c.done = true
			c.status = prog.StatusHalted
			return
		case isa.TRAPD:
			c.done = true
			c.status = prog.StatusDetected
			return
		case isa.OUT:
			c.out = append(c.out, wResult)
		default:
			if wInst.Op.WritesReg() && wInst.Rd != 0 {
				c.regfile[wInst.Rd] = wResult
			}
		}
		// Status-register side effects (condition codes, Y): architectural
		// state that these workloads never read back.
		r.wSICC.Set(st, xICC)
		if wInst.Op == isa.MULH {
			r.wSY.Set(st, uint64(wResult))
		}
		if c.hook != nil {
			ev := sim.CommitEvent{PC: wPC, Word: wInstW, Result: wResult,
				StoreVal: wStoreVal, Addr: wAddr}
			if c.hook(ev) {
				c.done = true
				c.status = prog.StatusDetected
				return
			}
		}
	}

	// ---- X: exception stage (pass-through, trap priority resolution). ----
	r.wInst.Set(st, uint64(xInstW))
	r.wPC.Set(st, uint64(xPC))
	r.wValid.Set(st, b2u(xValid))
	r.wResult.Set(st, uint64(xResult))
	r.wTrap.Set(st, b2u(xTrap))
	r.wTT.Set(st, xTT)
	r.wAddr.Set(st, uint64(xAddr))
	r.wStoreVal.Set(st, uint64(xStoreVal))
	r.wSCWP.Set(st, r.eCWP.Get(st)) // window pointer shadow (unused)

	// ---- M: memory access. ----
	{
		if mValid {
			// the instruction in M completes its access this cycle: it is
			// now beyond the flush-recovery window
			c.recoveryNext = c.nextAtM
		}
		trap := mTrap
		tt := r.mTT.Get(st)
		result := mResult
		addr := mResult
		if mValid && !trap && mInst.Op.Valid() {
			switch mInst.Op {
			case isa.LW:
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					trap = true
					tt = 9 // data access exception
				} else {
					result = c.mem[int32(addr)]
				}
			case isa.SW:
				if int(int32(addr)) < 0 || int(int32(addr)) >= len(c.mem) {
					trap = true
					tt = 9
				} else {
					c.mem[int32(addr)] = mStoreVal
				}
			}
		}
		r.xInst.Set(st, uint64(mInstW))
		r.xPC.Set(st, uint64(mPC))
		r.xValid.Set(st, b2u(mValid))
		r.xResult.Set(st, uint64(result))
		r.xTrap.Set(st, b2u(trap))
		r.xTT.Set(st, tt)
		r.xICC.Set(st, mICC)
		r.xY.Set(st, uint64(mY))
		r.xAddr.Set(st, uint64(addr))
		r.xStoreVal.Set(st, uint64(mStoreVal))
		r.xNPC.Set(st, uint64(mPC+1))
	}

	// ---- E: execute, branch resolution, forwarding. ----
	redirect := false
	var redirectPC uint32
	var stall bool

	// forward returns the freshest in-flight value of register idx, falling
	// back to the register file. Bypass sources are the E/M, M/X and X/W
	// latches — exactly the wires a hardware bypass network taps.
	forward := func(idx uint8, raw uint32) uint32 {
		if idx == 0 {
			return 0
		}
		if mValid && mInst.Op.Valid() && mInst.Op.WritesReg() && mInst.Rd == idx {
			return mResult
		}
		if xValid && xInst.Op.Valid() && xInst.Op.WritesReg() && xInst.Rd == idx {
			return xResult
		}
		if wValid && wInst.Op.Valid() && wInst.Op.WritesReg() && wInst.Rd == idx {
			return wResult
		}
		return raw
	}

	{
		trap := false
		var tt uint64
		var result, storeVal uint32
		var y uint32
		icc := uint64(0)
		if eValid {
			if !eInst.Op.Valid() {
				trap = true
				tt = 2 // illegal instruction
			} else {
				op1 := forward(eInst.Rs1, eOp1)
				op2raw := eOp2
				var op2 uint32
				switch eInst.Op.Fmt() {
				case isa.FmtR, isa.FmtStore, isa.FmtBranch:
					op2 = forward(eInst.Rs2, op2raw)
				default:
					op2 = op2raw
				}
				result, storeVal, y, trap, tt = execALU(eInst, op1, op2, ePC)
				if !trap && eInst.Op.IsControl() {
					taken, target := resolveBranch(eInst, op1, op2, ePC)
					if taken {
						redirect = true
						redirectPC = target
					}
				}
				if !trap {
					// stage the refetch point for when this instruction
					// finishes its memory access
					if redirect {
						c.nextAtM = redirectPC
					} else {
						c.nextAtM = ePC + 1
					}
				}
				// condition codes (unread by these workloads)
				if result == 0 {
					icc |= 4 // Z
				}
				if int32(result) < 0 {
					icc |= 8 // N
				}
			}
		}
		r.mInst.Set(st, uint64(eInstW))
		r.mPC.Set(st, uint64(ePC))
		r.mValid.Set(st, b2u(eValid))
		r.mResult.Set(st, uint64(result))
		r.mStoreVal.Set(st, uint64(storeVal))
		r.mTrap.Set(st, b2u(trap))
		r.mTT.Set(st, tt)
		r.mY.Set(st, uint64(y))
		r.mICC.Set(st, icc)
	}

	// ---- A: register access + load-use interlock. ----
	// Stall when the instruction entering execute needs a register that the
	// load currently in execute will only produce at the end of memory.
	if aValid && eValid && eInst.Op == isa.LW && eInst.Rd != 0 {
		n1, n2 := needsRs(aInst.Op)
		if (n1 && aInst.Rs1 == eInst.Rd) || (n2 && aInst.Rs2 == eInst.Rd) {
			stall = true
		}
	}

	if redirect || !stall {
		valid := aValid && !redirect
		r.eInst.Set(st, uint64(aInstW))
		r.ePC.Set(st, uint64(aPC))
		r.eValid.Set(st, b2u(valid))
		r.eOp1.Set(st, uint64(c.regfile[aRs1]))
		r.eOp2.Set(st, uint64(c.regfile[aRs2]))
		r.eY.Set(st, r.mY.Get(st))
		r.eCWP.Set(st, r.aCWP.Get(st))
	} else {
		// Bubble into execute; hold younger stages.
		r.eValid.Set(st, 0)
	}

	// ---- D: decode. ----
	if redirect {
		r.aValid.Set(st, 0)
	} else if !stall {
		in := isa.Decode(dInst)
		r.aInst.Set(st, uint64(dInst))
		r.aPC.Set(st, uint64(dPC))
		r.aValid.Set(st, b2u(dValid))
		r.aRs1.Set(st, uint64(in.Rs1))
		r.aRs2.Set(st, uint64(in.Rs2))
	}

	// ---- F: fetch. ----
	if redirect {
		r.dValid.Set(st, 0)
		r.fPC.Set(st, uint64(redirectPC))
	} else if !stall {
		var word uint32 = illegalWord
		if int(fPC) < len(c.program.Words) {
			word = c.program.Words[fPC]
		}
		r.dInst.Set(st, uint64(word))
		r.dPC.Set(st, uint64(fPC))
		r.dValid.Set(st, 1)
		r.fPC.Set(st, uint64(fPC+1))
	}
}

// FlushRecover models micro-architectural flush recovery (paper Fig 5):
// squash every instruction that has not completed its memory access (fetch
// through the memory-stage input latch) and refetch from the recovery
// control's shadow PC. Instructions in the exception/writeback stages
// continue — errors detected after the memory write stage have escaped the
// flushable window, which is exactly why Heuristic 1 hardens those
// flip-flops with LEAP-DICE instead.
//
// Calling this immediately after a detected flip discards the corrupted
// pre-commit state; the pipeline-refill penalty (about the Table 15 flush
// latency) is paid in simulated cycles.
func (c *Core) FlushRecover() {
	c.syncU()
	st := c.st
	r := &c.r
	r.dValid.Set(st, 0)
	r.aValid.Set(st, 0)
	r.eValid.Set(st, 0)
	r.mValid.Set(st, 0)
	r.mTrap.Set(st, 0)
	r.fPC.Set(st, uint64(c.recoveryNext))
}

// execALU computes the execute-stage result for in. It returns the ALU
// result, the store value, the Y byproduct, and trap information.
func execALU(in isa.Inst, op1, op2, pc uint32) (result, storeVal, y uint32, trap bool, tt uint64) {
	switch in.Op {
	case isa.ADD:
		result = op1 + op2
	case isa.SUB:
		result = op1 - op2
	case isa.AND:
		result = op1 & op2
	case isa.OR:
		result = op1 | op2
	case isa.XOR:
		result = op1 ^ op2
	case isa.SLL:
		result = op1 << (op2 & 31)
	case isa.SRL:
		result = op1 >> (op2 & 31)
	case isa.SRA:
		result = uint32(int32(op1) >> (op2 & 31))
	case isa.SLT:
		result = b2u32(int32(op1) < int32(op2))
	case isa.SLTU:
		result = b2u32(op1 < op2)
	case isa.MUL:
		p := int64(int32(op1)) * int64(int32(op2))
		result = uint32(p)
		y = uint32(uint64(p) >> 32)
	case isa.MULH:
		p := int64(int32(op1)) * int64(int32(op2))
		result = uint32(uint64(p) >> 32)
		y = result
	case isa.DIV:
		if op2 == 0 {
			return 0, 0, 0, true, 10
		}
		result = uint32(int32(op1) / int32(op2))
	case isa.REM:
		if op2 == 0 {
			return 0, 0, 0, true, 10
		}
		result = uint32(int32(op1) % int32(op2))
	case isa.ADDI:
		result = op1 + uint32(in.Imm)
	case isa.ANDI:
		result = op1 & uint32(in.Imm)
	case isa.ORI:
		result = op1 | uint32(in.Imm)
	case isa.XORI:
		result = op1 ^ uint32(in.Imm)
	case isa.SLLI:
		result = op1 << (uint32(in.Imm) & 31)
	case isa.SRLI:
		result = op1 >> (uint32(in.Imm) & 31)
	case isa.SRAI:
		result = uint32(int32(op1) >> (uint32(in.Imm) & 31))
	case isa.SLTI:
		result = b2u32(int32(op1) < in.Imm)
	case isa.LUI:
		result = uint32(in.Imm) << 16
	case isa.LW:
		result = uint32(int32(op1) + in.Imm) // effective address
	case isa.SW:
		result = uint32(int32(op1) + in.Imm)
		storeVal = op2
	case isa.JAL, isa.JALR:
		result = pc + 1
	case isa.OUT:
		result = op1
	}
	return result, storeVal, y, trap, tt
}

// resolveBranch decides taken/target for control instructions at execute.
func resolveBranch(in isa.Inst, op1, op2, pc uint32) (taken bool, target uint32) {
	switch in.Op {
	case isa.BEQ:
		taken = op1 == op2
	case isa.BNE:
		taken = op1 != op2
	case isa.BLT:
		taken = int32(op1) < int32(op2)
	case isa.BGE:
		taken = int32(op1) >= int32(op2)
	case isa.BLTU:
		taken = op1 < op2
	case isa.BGEU:
		taken = op1 >= op2
	case isa.JAL:
		return true, pc + uint32(in.Imm)
	case isa.JALR:
		return true, uint32(int32(op1) + in.Imm)
	}
	return taken, pc + uint32(in.Imm)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
