package ino

// uLatches mirrors every flip-flop field of regs as a plain machine word.
// Compiled execution (threaded.go) runs the pipeline on this struct and
// touches the packed ff.State only at observation points: State(),
// Snapshot(), Matches(), Restore() and Reset() synchronize the two
// representations, so every external view of the core — fault injection,
// checkpointing, convergence pruning, state-equality tests — still sees the
// exact bit layout the interpreter maintains. The round trip is lossless
// because the ff.Space allocates fields back to back with no padding bits,
// and all values stored here are kept within their field widths (unpack
// masks through ff.Field.Get; every pipeline write below either copies an
// already-masked value or computes one that fits by construction).
type uLatches struct {
	// fetch
	fPC uint32
	// decode latch (F/D)
	dInst, dPC  uint32
	dValid, dPV bool
	dMexc       bool
	dCnt        uint8 // 2 bits
	// register-access latch (D/A)
	aInst, aPC   uint32
	aValid       bool
	aRs1, aRs2   uint8 // 5 bits
	aCWP         uint8 // 3 bits
	aRFE1, aRFE2 bool
	aTT          uint8
	aWY          bool
	// execute latch (A/E)
	eInst, ePC uint32
	eValid     bool
	eOp1, eOp2 uint32
	eY         uint32
	eTT        uint8
	eCWP       uint8 // 3 bits
	eET, eMAC  bool
	eMul       bool
	eMulstep   uint8 // 6 bits
	eSU, eYMSB bool
	// memory latch (E/M)
	mInst, mPC         uint32
	mValid             bool
	mResult, mStoreVal uint32
	mTrap              bool
	mTT                uint8
	mY                 uint32
	mICC               uint8 // 4 bits
	mWICC, mWY         bool
	mDciASI            uint8
	mDciLock, mDciSign bool
	mIrqen, mIrqen2    bool
	// exception latch (M/X)
	xInst, xPC uint32
	xValid     bool
	xResult    uint32
	xTrap      bool
	xTT        uint8
	xY         uint32
	xICC       uint8 // 4 bits
	xNPC       uint32
	xAddr      uint32
	xStoreVal  uint32
	xWICC, xWY bool
	xRETT, xPV bool
	xDebug     uint32
	xIntack    bool
	xIpend     uint8 // 4 bits
	xAnnul     bool
	// writeback latch (X/W) and architectural status (w.s.*)
	wInst, wPC uint32
	wValid     bool
	wResult    uint32
	wTrap      bool
	wTT        uint8
	wAddr      uint32
	wStoreVal  uint32
	wSICC      uint8 // 4 bits
	wSY        uint32
	wSTT       uint8
	wSTBA      uint32 // 20 bits
	wSWIM      uint8
	wSPIL      uint8 // 4 bits
	wSEC, wSEF bool
	wSPS, wSET bool
	wSCWP      uint8 // 3 bits
	wSDWT      bool
	// cache control
	icCfg, dcCfg uint16
}

// unpackU loads the unpacked mirror from the packed flip-flop state.
func (c *Core) unpackU() {
	st := c.st
	r := &c.r
	u := &c.u
	u.fPC = uint32(r.fPC.Get(st))
	u.dInst = uint32(r.dInst.Get(st))
	u.dPC = uint32(r.dPC.Get(st))
	u.dValid = r.dValid.Get(st) == 1
	u.dPV = r.dPV.Get(st) == 1
	u.dMexc = r.dMexc.Get(st) == 1
	u.dCnt = uint8(r.dCnt.Get(st))
	u.aInst = uint32(r.aInst.Get(st))
	u.aPC = uint32(r.aPC.Get(st))
	u.aValid = r.aValid.Get(st) == 1
	u.aRs1 = uint8(r.aRs1.Get(st))
	u.aRs2 = uint8(r.aRs2.Get(st))
	u.aCWP = uint8(r.aCWP.Get(st))
	u.aRFE1 = r.aRFE1.Get(st) == 1
	u.aRFE2 = r.aRFE2.Get(st) == 1
	u.aTT = uint8(r.aTT.Get(st))
	u.aWY = r.aWY.Get(st) == 1
	u.eInst = uint32(r.eInst.Get(st))
	u.ePC = uint32(r.ePC.Get(st))
	u.eValid = r.eValid.Get(st) == 1
	u.eOp1 = uint32(r.eOp1.Get(st))
	u.eOp2 = uint32(r.eOp2.Get(st))
	u.eY = uint32(r.eY.Get(st))
	u.eTT = uint8(r.eTT.Get(st))
	u.eCWP = uint8(r.eCWP.Get(st))
	u.eET = r.eET.Get(st) == 1
	u.eMAC = r.eMAC.Get(st) == 1
	u.eMul = r.eMul.Get(st) == 1
	u.eMulstep = uint8(r.eMulstep.Get(st))
	u.eSU = r.eSU.Get(st) == 1
	u.eYMSB = r.eYMSB.Get(st) == 1
	u.mInst = uint32(r.mInst.Get(st))
	u.mPC = uint32(r.mPC.Get(st))
	u.mValid = r.mValid.Get(st) == 1
	u.mResult = uint32(r.mResult.Get(st))
	u.mStoreVal = uint32(r.mStoreVal.Get(st))
	u.mTrap = r.mTrap.Get(st) == 1
	u.mTT = uint8(r.mTT.Get(st))
	u.mY = uint32(r.mY.Get(st))
	u.mICC = uint8(r.mICC.Get(st))
	u.mWICC = r.mWICC.Get(st) == 1
	u.mWY = r.mWY.Get(st) == 1
	u.mDciASI = uint8(r.mDciASI.Get(st))
	u.mDciLock = r.mDciLock.Get(st) == 1
	u.mDciSign = r.mDciSign.Get(st) == 1
	u.mIrqen = r.mIrqen.Get(st) == 1
	u.mIrqen2 = r.mIrqen2.Get(st) == 1
	u.xInst = uint32(r.xInst.Get(st))
	u.xPC = uint32(r.xPC.Get(st))
	u.xValid = r.xValid.Get(st) == 1
	u.xResult = uint32(r.xResult.Get(st))
	u.xTrap = r.xTrap.Get(st) == 1
	u.xTT = uint8(r.xTT.Get(st))
	u.xY = uint32(r.xY.Get(st))
	u.xICC = uint8(r.xICC.Get(st))
	u.xNPC = uint32(r.xNPC.Get(st))
	u.xAddr = uint32(r.xAddr.Get(st))
	u.xStoreVal = uint32(r.xStoreVal.Get(st))
	u.xWICC = r.xWICC.Get(st) == 1
	u.xWY = r.xWY.Get(st) == 1
	u.xRETT = r.xRETT.Get(st) == 1
	u.xPV = r.xPV.Get(st) == 1
	u.xDebug = uint32(r.xDebug.Get(st))
	u.xIntack = r.xIntack.Get(st) == 1
	u.xIpend = uint8(r.xIpend.Get(st))
	u.xAnnul = r.xAnnul.Get(st) == 1
	u.wInst = uint32(r.wInst.Get(st))
	u.wPC = uint32(r.wPC.Get(st))
	u.wValid = r.wValid.Get(st) == 1
	u.wResult = uint32(r.wResult.Get(st))
	u.wTrap = r.wTrap.Get(st) == 1
	u.wTT = uint8(r.wTT.Get(st))
	u.wAddr = uint32(r.wAddr.Get(st))
	u.wStoreVal = uint32(r.wStoreVal.Get(st))
	u.wSICC = uint8(r.wSICC.Get(st))
	u.wSY = uint32(r.wSY.Get(st))
	u.wSTT = uint8(r.wSTT.Get(st))
	u.wSTBA = uint32(r.wSTBA.Get(st))
	u.wSWIM = uint8(r.wSWIM.Get(st))
	u.wSPIL = uint8(r.wSPIL.Get(st))
	u.wSEC = r.wSEC.Get(st) == 1
	u.wSEF = r.wSEF.Get(st) == 1
	u.wSPS = r.wSPS.Get(st) == 1
	u.wSET = r.wSET.Get(st) == 1
	u.wSCWP = uint8(r.wSCWP.Get(st))
	u.wSDWT = r.wSDWT.Get(st) == 1
	u.icCfg = uint16(r.icCfg.Get(st))
	u.dcCfg = uint16(r.dcCfg.Get(st))
}

// packU stores the unpacked mirror back into the packed flip-flop state.
func (c *Core) packU() {
	st := c.st
	r := &c.r
	u := &c.u
	r.fPC.Set(st, uint64(u.fPC))
	r.dInst.Set(st, uint64(u.dInst))
	r.dPC.Set(st, uint64(u.dPC))
	r.dValid.Set(st, b2u(u.dValid))
	r.dPV.Set(st, b2u(u.dPV))
	r.dMexc.Set(st, b2u(u.dMexc))
	r.dCnt.Set(st, uint64(u.dCnt))
	r.aInst.Set(st, uint64(u.aInst))
	r.aPC.Set(st, uint64(u.aPC))
	r.aValid.Set(st, b2u(u.aValid))
	r.aRs1.Set(st, uint64(u.aRs1))
	r.aRs2.Set(st, uint64(u.aRs2))
	r.aCWP.Set(st, uint64(u.aCWP))
	r.aRFE1.Set(st, b2u(u.aRFE1))
	r.aRFE2.Set(st, b2u(u.aRFE2))
	r.aTT.Set(st, uint64(u.aTT))
	r.aWY.Set(st, b2u(u.aWY))
	r.eInst.Set(st, uint64(u.eInst))
	r.ePC.Set(st, uint64(u.ePC))
	r.eValid.Set(st, b2u(u.eValid))
	r.eOp1.Set(st, uint64(u.eOp1))
	r.eOp2.Set(st, uint64(u.eOp2))
	r.eY.Set(st, uint64(u.eY))
	r.eTT.Set(st, uint64(u.eTT))
	r.eCWP.Set(st, uint64(u.eCWP))
	r.eET.Set(st, b2u(u.eET))
	r.eMAC.Set(st, b2u(u.eMAC))
	r.eMul.Set(st, b2u(u.eMul))
	r.eMulstep.Set(st, uint64(u.eMulstep))
	r.eSU.Set(st, b2u(u.eSU))
	r.eYMSB.Set(st, b2u(u.eYMSB))
	r.mInst.Set(st, uint64(u.mInst))
	r.mPC.Set(st, uint64(u.mPC))
	r.mValid.Set(st, b2u(u.mValid))
	r.mResult.Set(st, uint64(u.mResult))
	r.mStoreVal.Set(st, uint64(u.mStoreVal))
	r.mTrap.Set(st, b2u(u.mTrap))
	r.mTT.Set(st, uint64(u.mTT))
	r.mY.Set(st, uint64(u.mY))
	r.mICC.Set(st, uint64(u.mICC))
	r.mWICC.Set(st, b2u(u.mWICC))
	r.mWY.Set(st, b2u(u.mWY))
	r.mDciASI.Set(st, uint64(u.mDciASI))
	r.mDciLock.Set(st, b2u(u.mDciLock))
	r.mDciSign.Set(st, b2u(u.mDciSign))
	r.mIrqen.Set(st, b2u(u.mIrqen))
	r.mIrqen2.Set(st, b2u(u.mIrqen2))
	r.xInst.Set(st, uint64(u.xInst))
	r.xPC.Set(st, uint64(u.xPC))
	r.xValid.Set(st, b2u(u.xValid))
	r.xResult.Set(st, uint64(u.xResult))
	r.xTrap.Set(st, b2u(u.xTrap))
	r.xTT.Set(st, uint64(u.xTT))
	r.xY.Set(st, uint64(u.xY))
	r.xICC.Set(st, uint64(u.xICC))
	r.xNPC.Set(st, uint64(u.xNPC))
	r.xAddr.Set(st, uint64(u.xAddr))
	r.xStoreVal.Set(st, uint64(u.xStoreVal))
	r.xWICC.Set(st, b2u(u.xWICC))
	r.xWY.Set(st, b2u(u.xWY))
	r.xRETT.Set(st, b2u(u.xRETT))
	r.xPV.Set(st, b2u(u.xPV))
	r.xDebug.Set(st, uint64(u.xDebug))
	r.xIntack.Set(st, b2u(u.xIntack))
	r.xIpend.Set(st, uint64(u.xIpend))
	r.xAnnul.Set(st, b2u(u.xAnnul))
	r.wInst.Set(st, uint64(u.wInst))
	r.wPC.Set(st, uint64(u.wPC))
	r.wValid.Set(st, b2u(u.wValid))
	r.wResult.Set(st, uint64(u.wResult))
	r.wTrap.Set(st, b2u(u.wTrap))
	r.wTT.Set(st, uint64(u.wTT))
	r.wAddr.Set(st, uint64(u.wAddr))
	r.wStoreVal.Set(st, uint64(u.wStoreVal))
	r.wSICC.Set(st, uint64(u.wSICC))
	r.wSY.Set(st, uint64(u.wSY))
	r.wSTT.Set(st, uint64(u.wSTT))
	r.wSTBA.Set(st, uint64(u.wSTBA))
	r.wSWIM.Set(st, uint64(u.wSWIM))
	r.wSPIL.Set(st, uint64(u.wSPIL))
	r.wSEC.Set(st, b2u(u.wSEC))
	r.wSEF.Set(st, b2u(u.wSEF))
	r.wSPS.Set(st, b2u(u.wSPS))
	r.wSET.Set(st, b2u(u.wSET))
	r.wSCWP.Set(st, uint64(u.wSCWP))
	r.wSDWT.Set(st, b2u(u.wSDWT))
	r.icCfg.Set(st, uint64(u.icCfg))
	r.dcCfg.Set(st, uint64(u.dcCfg))
}

// syncU flushes the unpacked mirror into the packed state and invalidates
// the mirror, so the caller (or external code holding the *ff.State) may
// mutate packed bits freely; the next compiled step re-unpacks.
func (c *Core) syncU() {
	if c.uValid {
		c.packU()
		c.uValid = false
	}
}
