package ino

import "clear/internal/sim"

// InFlight reports the instructions occupying the in-order pipeline at the
// current clock boundary: the fetch PC plus one entry per stage latch whose
// valid bit is set (decode through writeback). Each stage holds at most one
// instruction, so every entry uses Slot -1 and the unit name alone
// identifies the structure.
//
// The observation goes through syncU like State(): compiled execution
// flushes its unpacked mirror first, so both execution modes report the
// exact packed-state occupancy and the call is safe at any observation
// point (including right before a fault is injected).
func (c *Core) InFlight(dst []sim.InFlightInst) []sim.InFlightInst {
	c.syncU()
	st := c.st
	r := &c.r
	dst = append(dst, sim.InFlightInst{Unit: "fetch", Slot: -1, PC: uint32(r.fPC.Get(st))})
	if r.dValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "decode", Slot: -1, PC: uint32(r.dPC.Get(st))})
	}
	if r.aValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "regacc", Slot: -1, PC: uint32(r.aPC.Get(st))})
	}
	if r.eValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "execute", Slot: -1, PC: uint32(r.ePC.Get(st))})
	}
	if r.mValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "memory", Slot: -1, PC: uint32(r.mPC.Get(st))})
	}
	if r.xValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "exception", Slot: -1, PC: uint32(r.xPC.Get(st))})
	}
	if r.wValid.Get(st) == 1 {
		dst = append(dst, sim.InFlightInst{Unit: "write", Slot: -1, PC: uint32(r.wPC.Get(st))})
	}
	return dst
}
