package experiments

import (
	"math"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/swres"
	"clear/internal/technique"
)

// Table 3 (standalone techniques) is derived from the technique registry:
// every registered non-recovery technique yields its row specs through
// layer-based presentation rules, so a newly registered technique appears
// in the cost table without touching this package — and cmd/techlint can
// assert the table covers the whole registry.

// TechniqueRowSpec describes one standalone-technique row: which registered
// technique, on which core, evaluated how.
type TechniqueRowSpec struct {
	Technique string          // registry name
	Label     string          // display label (name + presentation notes)
	Layer     string          // short layer label
	Core      inject.CoreKind // core the row is measured on
	Recovery  recovery.Kind   // attached recovery (None = standalone)
	RecoverED bool            // treat detected errors as recovered
	MaxPoint  bool            // tunable per-FF technique: report the max design point
	// Benches selects the benchmark set (nil = the core's full suite);
	// algorithm techniques measure on the kernels that admit them.
	Benches func(e *core.Engine) []*bench.Benchmark
}

func shortLayer(l technique.Layer) string {
	switch l {
	case technique.Circuit:
		return "Circuit"
	case technique.Logic:
		return "Logic"
	case technique.Architecture:
		return "Arch."
	case technique.Software:
		return "SW"
	case technique.Algorithm:
		return "Alg."
	}
	return l.String()
}

// TechniqueRowSpecs derives the Table 3 row list from the registry, in
// canonical registry order.
func TechniqueRowSpecs() []TechniqueRowSpec {
	var rows []TechniqueRowSpec
	for _, t := range technique.Default().Techniques() {
		name := t.Name()
		layer := shortLayer(t.Layer())
		label := name
		if n := technique.NoteOf(t); n != "" {
			label += " " + n
		}
		for _, coreName := range technique.CoreKinds {
			if !t.AppliesTo(coreName) {
				continue
			}
			kind := inject.InO
			if coreName == "OoO" {
				kind = inject.OoO
			}
			switch {
			case isFFProtector(t):
				// tunable per-flip-flop insertion: max design point; detectors
				// need a bounded-latency recovery to be meaningful standalone
				spec := TechniqueRowSpec{
					Technique: name, Layer: layer, Core: kind, MaxPoint: true,
				}
				if p, _ := t.(technique.FFProtector); p.Corrects() {
					spec.Label = label + " (no recovery needed)"
				} else {
					spec.Label = label + " (with IR recovery)"
					spec.Recovery = recovery.IR
				}
				rows = append(rows, spec)
			case technique.AffectsCampaign(t) && t.Layer() == technique.Algorithm:
				rows = append(rows, algorithmRowSpecs(t, label, layer, kind)...)
			case technique.AffectsCampaign(t):
				// architecture/software checkers: measured by campaign
				pair, hasPair := t.(technique.Pairing)
				standsAlone := !hasPair || pair.StandsAlone()
				if standsAlone {
					spec := TechniqueRowSpec{
						Technique: name, Layer: layer, Core: kind, Label: label,
					}
					if hasPair {
						spec.Label = label + " (without recovery)"
					} else if t.Layer() == technique.Software {
						spec.Label = label + " (unconstrained)"
					}
					rows = append(rows, spec)
				}
				if hasPair {
					if rk := pair.PairsWith(coreName); rk != recovery.None {
						rows = append(rows, TechniqueRowSpec{
							Technique: name, Layer: layer, Core: kind,
							Label:    label + " (with " + rk.String() + " recovery)",
							Recovery: rk, RecoverED: true,
						})
					}
				}
			default:
				// cost-only technique with no campaign effect: still surfaces
				// so the table covers the registry
				rows = append(rows, TechniqueRowSpec{
					Technique: name, Layer: layer, Core: kind, Label: label,
				})
			}
		}
	}
	return rows
}

// algorithmRowSpecs applies the algorithm-layer presentation rules: ABFT
// rows measure on the kernels admitting each mode (correction on both
// cores; detection, unconstrained-latency, on the in-order core as in the
// paper). Other registered algorithm techniques measure on the full suite.
func algorithmRowSpecs(t technique.Technique, label, layer string, kind inject.CoreKind) []TechniqueRowSpec {
	switch t.Name() {
	case technique.NameABFTCorrection:
		return []TechniqueRowSpec{{
			Technique: t.Name(), Layer: layer, Core: kind, Label: label,
			Benches: func(*core.Engine) []*bench.Benchmark { return ABFTCorrBenchmarks() },
		}}
	case technique.NameABFTDetection:
		if kind != inject.InO {
			return nil
		}
		return []TechniqueRowSpec{{
			Technique: t.Name(), Layer: layer, Core: kind, Label: label + " (unconstrained)",
			Benches: func(*core.Engine) []*bench.Benchmark { return ABFTDetBenchmarks() },
		}}
	}
	return []TechniqueRowSpec{{Technique: t.Name(), Layer: layer, Core: kind, Label: label}}
}

func isFFProtector(t technique.Technique) bool {
	_, ok := t.(technique.FFProtector)
	return ok
}

// TechniqueRowNames returns the set of registered technique names covered
// by the Table 3 row specs (consumed by cmd/techlint's coverage check).
func TechniqueRowNames() map[string]bool {
	out := map[string]bool{}
	for _, r := range TechniqueRowSpecs() {
		out[r.Technique] = true
	}
	return out
}

// rowVariant builds the campaign variant measuring a technique standalone
// (software options at their table defaults: combined assertions,
// store-readback EDDI).
func rowVariant(name string) (core.Variant, error) {
	c, err := core.ComboFor([]string{name}, recovery.None)
	if err != nil {
		return core.Variant{}, err
	}
	v := c.Variant
	v.AssertK = swres.AssertCombined
	v.EDDISrb = true
	return v, nil
}

func table3(ctx *Ctx) (string, error) {
	t := newTable("Table 3: standalone techniques (measured on this reproduction's cores)",
		"Layer", "Technique", "Core", "Area", "Energy", "Exec", "SDC imp", "DUE imp", "Det. latency", "γ")
	for _, spec := range TechniqueRowSpecs() {
		e := ctx.Engine(spec.Core)
		if spec.MaxPoint {
			combo, err := core.ComboFor([]string{spec.Technique}, spec.Recovery)
			if err != nil {
				return "", err
			}
			avg, err := e.EvalComboAvg(combo, core.SDC, math.Inf(1))
			if err != nil {
				return "", err
			}
			t.row(spec.Layer, spec.Label, spec.Core.String(),
				"0-"+pct(avg.Cost.Area), "0-"+pct(avg.Cost.Energy()), "0%",
				"1x-"+imp(avg.SDCImp), "1x-"+imp(avg.DUEImp), "1 cycle",
				f2(1+technique.RecoveryFFOverhead(spec.Recovery, spec.Core.String())))
			continue
		}
		v, err := rowVariant(spec.Technique)
		if err != nil {
			return "", err
		}
		benches := e.Benchmarks()
		if spec.Benches != nil {
			benches = spec.Benches(e)
		}
		var extraFFOv float64
		var extraCost power.Cost
		if spec.Recovery != recovery.None {
			extraFFOv = technique.RecoveryFFOverhead(spec.Recovery, spec.Core.String())
			extraCost = recovery.Cost(spec.Recovery, spec.Core.String())
		}
		s, err := summarize(e, benches, v, extraFFOv, extraCost, spec.RecoverED)
		if err != nil {
			return "", err
		}
		area := pct(s.Cost.Area)
		if s.Cost.Area == 0 {
			area = "0%"
		}
		t.row(spec.Layer, spec.Label, spec.Core.String(),
			area, pct(s.Cost.Energy()), pct(s.ExecImpact),
			imp(s.SDCImp), imp(s.DUEImp), latStr(s.DetLatency), f2(s.Gamma))
	}
	return t.String(), nil
}
