// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulators, campaigns and cost models. Each
// experiment is registered under its paper id ("table3", "fig9", ...) and
// renders an ASCII table comparable side-by-side with the publication.
package experiments

import (
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/swres"
)

// The campaign plan: which (benchmark, variant) pairs the experiments rely
// on. cmd/precompute warms exactly these.

// InOFullVariants are the technique campaigns run on the full 18-benchmark
// suite of the in-order core.
func InOFullVariants() []core.Variant {
	return []core.Variant{
		{DFC: true},
		{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertCombined},
		{SW: []core.SWTechnique{core.SWCFCSS}},
		{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true},
	}
}

// SubsetBenchmarks is the five-application subset the paper uses for the
// assertion and EDDI deep-dives (Tables 10/11/13/14/16).
func SubsetBenchmarks() []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, name := range []string{"bzip2", "crafty", "gzip", "mcf", "parser"} {
		out = append(out, bench.ByName(name))
	}
	return out
}

// InOSubsetVariants are the campaigns run only on SubsetBenchmarks.
func InOSubsetVariants() []core.Variant {
	return []core.Variant{
		{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertData},
		{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertControl},
		{SW: []core.SWTechnique{core.SWEDDI}}, // without store-readback
		{SW: []core.SWTechnique{core.SWEDDI}, SelEDDI: true},
	}
}

// OoOVariants are the technique campaigns of the out-of-order core.
func OoOVariants() []core.Variant {
	return []core.Variant{
		{DFC: true},
		{Monitor: true},
	}
}

// ABFTCorrBenchmarks are the three correction-amenable PERFECT kernels.
func ABFTCorrBenchmarks() []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, name := range []string{"2d_convolution", "debayer_filter", "inner_product"} {
		out = append(out, bench.ByName(name))
	}
	return out
}

// ABFTDetBenchmarks are the detection-only PERFECT kernels.
func ABFTDetBenchmarks() []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, name := range []string{"fft", "histogram_eq", "interpolate", "outer_product"} {
		out = append(out, bench.ByName(name))
	}
	return out
}

// ABFTCorrVariants is the ABFT-correction campaign variant.
func ABFTCorrVariants() []core.Variant { return []core.Variant{{ABFT: core.ABFTCorr}} }

// ABFTDetVariants is the ABFT-detection campaign variant.
func ABFTDetVariants() []core.Variant { return []core.Variant{{ABFT: core.ABFTDet}} }
