package experiments

import (
	"math"

	"clear/internal/analysis"
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/swres"
)

// Figure 1d machinery: placing all 586 combinations on the
// (%SDC-causing errors protected, energy cost) plane.
//
// Exactly measuring every combination would need a campaign per distinct
// program/checker stack (dozens per benchmark); instead the sweep composes
// the measured per-flip-flop residuals of the single-technique campaigns,
// assuming independent detection across techniques. The headline tables
// (19/21) use exact measured stacks; this composition is only used for the
// 586-point scatter.

// techPart is one high-level technique's measured effect for composition.
type techPart struct {
	sdcFrac []float64 // per-FF residual fraction of SDC-causing errors
	dueFrac []float64
	cost    power.Cost
	gamma   float64
}

type fig1dParts map[string]*techPart

// partKeys returns the composition keys of a combination's high layers.
func partKeys(c core.Combo) []string {
	var keys []string
	switch c.Variant.ABFT {
	case core.ABFTCorr:
		keys = append(keys, "abftc")
	case core.ABFTDet:
		keys = append(keys, "abftd")
	}
	for _, s := range c.Variant.SW {
		switch s {
		case core.SWAssertions:
			keys = append(keys, "assert")
		case core.SWCFCSS:
			keys = append(keys, "cfcss")
		case core.SWEDDI:
			keys = append(keys, "eddi")
		}
	}
	if c.Variant.DFC {
		keys = append(keys, "dfc")
	}
	if c.Variant.Monitor {
		keys = append(keys, "mon")
	}
	return keys
}

// fig1dData aggregates the base campaigns and builds per-technique parts.
func fig1dData(e *core.Engine) (*inject.Result, fig1dParts, error) {
	var baseResults []*inject.Result
	benches := e.Benchmarks()
	for _, b := range benches {
		r, err := e.Base(b)
		if err != nil {
			return nil, nil, err
		}
		baseResults = append(baseResults, r)
	}
	agg := analysis.Aggregate(baseResults)

	parts := fig1dParts{}
	mk := func(key string, v core.Variant, subset []*bench.Benchmark) error {
		// aggregate the technique campaigns over its applicable benchmarks
		var techResults, baseSubset []*inject.Result
		var execSum float64
		list := benches
		if subset != nil {
			list = subset
		}
		for _, b := range list {
			tr, err := e.Campaign(b, v)
			if err != nil {
				return err
			}
			br, err := e.Base(b)
			if err != nil {
				return err
			}
			techResults = append(techResults, tr)
			baseSubset = append(baseSubset, br)
			ov, err := e.ExecOverhead(b, v)
			if err != nil {
				return err
			}
			execSum += ov
		}
		ta := analysis.Aggregate(techResults)
		ba := analysis.Aggregate(baseSubset)
		n := len(agg.PerFF)
		p := &techPart{sdcFrac: make([]float64, n), dueFrac: make([]float64, n)}
		// dilution: techniques that only apply to a benchmark subset leave
		// the rest of the workload unprotected
		w := float64(ba.Totals.N) / float64(agg.Totals.N)
		for bit := 0; bit < n; bit++ {
			bs, ts := ba.PerFF[bit], ta.PerFF[bit]
			sf, df := 1.0, 1.0
			if bs.OMM > 0 && ts.N > 0 {
				sf = math.Min(1, (float64(ts.OMM)/float64(ts.N))/(float64(bs.OMM)/float64(bs.N)))
			}
			bd := float64(bs.UT + bs.Hang)
			if bd > 0 && ts.N > 0 {
				df = math.Min(1, (float64(ts.UT+ts.Hang+ts.ED)/float64(ts.N))/(bd/float64(bs.N)))
			}
			p.sdcFrac[bit] = 1 - w*(1-sf)
			p.dueFrac[bit] = 1 - w*(1-df)
		}
		exec := execSum / float64(len(list)) * w
		combo := core.Combo{Variant: v}
		p.cost = e.HighLevelCost(combo, exec)
		p.gamma = e.HighLevelGamma(combo, exec)
		parts[key] = p
		return nil
	}

	if e.Kind == inject.InO {
		if err := mk("assert", core.Variant{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertCombined}, nil); err != nil {
			return nil, nil, err
		}
		if err := mk("cfcss", core.Variant{SW: []core.SWTechnique{core.SWCFCSS}}, nil); err != nil {
			return nil, nil, err
		}
		if err := mk("eddi", core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true}, nil); err != nil {
			return nil, nil, err
		}
		if err := mk("abftd", core.Variant{ABFT: core.ABFTDet}, ABFTDetBenchmarks()); err != nil {
			return nil, nil, err
		}
	} else {
		if err := mk("mon", core.Variant{Monitor: true}, nil); err != nil {
			return nil, nil, err
		}
	}
	if err := mk("dfc", core.Variant{DFC: true}, nil); err != nil {
		return nil, nil, err
	}
	if err := mk("abftc", core.Variant{ABFT: core.ABFTCorr}, ABFTCorrBenchmarks()); err != nil {
		return nil, nil, err
	}
	return agg, parts, nil
}

// fig1dPoint composes a combination at a target and returns
// (%SDC-causing errors protected, fractional energy cost).
func fig1dPoint(e *core.Engine, agg *inject.Result, parts fig1dParts, c core.Combo, target float64) (float64, float64) {
	keys := partKeys(c)
	// synthesize the composed residual campaign
	synth := &inject.Result{PerFF: make([]inject.FFStats, len(agg.PerFF))}
	var totOMM, totDUE, totN float64
	for bit, st := range agg.PerFF {
		sf, df := 1.0, 1.0
		for _, k := range keys {
			if p, ok := parts[k]; ok {
				sf *= p.sdcFrac[bit]
				df *= p.dueFrac[bit]
			}
		}
		omm := uint16(math.Round(float64(st.OMM) * sf))
		due := uint16(math.Round((float64(st.UT) + float64(st.Hang)) * df))
		synth.PerFF[bit] = inject.FFStats{N: st.N, OMM: omm, UT: due}
		totOMM += float64(omm)
		totDUE += float64(due)
		totN += float64(st.N)
	}
	synth.Totals.N = int(totN)
	synth.Totals.OMM = int(totOMM)
	synth.Totals.UT = int(totDUE)

	baseSDC := float64(agg.Totals.SDC())
	if baseSDC == 0 {
		return 0, 0
	}
	fixedGamma := 1.0
	cost := power.Cost{}
	for _, k := range keys {
		if p, ok := parts[k]; ok {
			fixedGamma *= p.gamma
			cost = cost.Plus(p.cost)
		}
	}
	opt := core.HardenOptions{
		DICE: c.DICE, Parity: c.Parity, EDS: c.EDS,
		Recovery:    c.Recovery,
		FixedGamma:  fixedGamma,
		BaseSDCRate: baseSDC / totN,
		BaseDUERate: float64(agg.Totals.UT+agg.Totals.Hang) / totN,
	}
	plan := e.SelectiveHarden(synth, opt, core.SDC, target)
	resid := e.Evaluate(synth, plan)
	protected := 1 - resid.SDC/baseSDC
	if protected < 0 {
		protected = 0
	}
	cost = cost.Plus(e.PlanCost(plan))
	return protected, cost.Energy()
}
