package experiments

import (
	"fmt"

	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/stack"
)

// Ablations of CLEAR's own design choices (not paper tables): what the
// vulnerability-guided ordering and Heuristic 1's HARDEN predicate are
// actually worth.

func init() {
	register("ablation1", "Ablation: vulnerability-guided vs naive flip-flop ordering", ablation1)
	register("ablation2", "Ablation: Heuristic 1's HARDEN predicate under flush recovery", ablation2)
}

// ablation1 compares the selective-hardening cost of reaching SDC targets
// when flip-flops are protected in measured-vulnerability order (CLEAR)
// versus naive allocation order — quantifying the value of
// injection-guided selection (the paper's "guided by error injection"
// refrain).
func ablation1(ctx *Ctx) (string, error) {
	t := newTable("Ablation 1: energy% to reach an SDC target, guided vs naive ordering",
		"Core", "Target", "Guided (CLEAR)", "Naive order", "Penalty")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		results, err := baseAll(e)
		if err != nil {
			return "", err
		}
		agg := aggregateAll(results)
		baseSDC := float64(agg.Totals.SDC()) / float64(agg.Totals.N)
		for _, tgt := range []float64{5, 50} {
			opt := core.HardenOptions{DICE: true, FixedGamma: 1, BaseSDCRate: baseSDC}
			guided := e.SelectiveHarden(agg, opt, core.SDC, tgt)
			gCost := e.PlanCost(guided)

			// naive: protect flip-flops in allocation order until the
			// target is met
			naive := core.NewPlan(len(agg.PerFF), recovery.None)
			met := false
			for bit := range naive.Assign {
				naive.Assign[bit] = core.CellDICE
				resid := e.Evaluate(agg, naive)
				imp := stack.Improvement(baseSDC, resid.SDC/float64(agg.Totals.N), 1)
				if imp >= tgt {
					met = true
					break
				}
			}
			nCost := e.PlanCost(naive)
			pen := "-"
			if met && gCost.Energy() > 0 {
				pen = fmt.Sprintf("%.1fx", nCost.Energy()/gCost.Energy())
			}
			t.row(kind.String(), targetTimes(tgt),
				pct(gCost.Energy()), pct(nCost.Energy()), pen)
		}
	}
	return t.String(), nil
}

// aggregateAll sums campaigns (local helper mirroring analysis.Aggregate to
// avoid an import cycle in this file's context).
func aggregateAll(results []*inject.Result) *inject.Result {
	agg := &inject.Result{PerFF: make([]inject.FFStats, len(results[0].PerFF))}
	for _, r := range results {
		for i, st := range r.PerFF {
			agg.PerFF[i].N += st.N
			agg.PerFF[i].OMM += st.OMM
			agg.PerFF[i].UT += st.UT
			agg.PerFF[i].Hang += st.Hang
			agg.PerFF[i].ED += st.ED
		}
		agg.Totals.Merge(r.Totals)
	}
	return agg
}

// ablation2 removes Heuristic 1's HARDEN predicate: every selected
// flip-flop gets parity, even past the commit point where flush recovery
// cannot replay — the detected-but-unrecoverable errors then surface as
// DUE. The predicate is what makes the bounded combination deliver DUE
// improvement.
func ablation2(ctx *Ctx) (string, error) {
	e := ctx.InO
	results, err := baseAll(e)
	if err != nil {
		return "", err
	}
	agg := aggregateAll(results)
	totalN := float64(agg.Totals.N)
	baseSDC := float64(agg.Totals.SDC()) / totalN
	baseDUE := float64(agg.Totals.UT+agg.Totals.Hang) / totalN

	opt := core.HardenOptions{DICE: true, Parity: true, Recovery: recovery.Flush,
		FixedGamma: 1, BaseSDCRate: baseSDC, BaseDUERate: baseDUE}
	withH := e.SelectiveHarden(agg, opt, core.SDC, 50)

	// ablated: same flip-flop set, but parity everywhere
	ablated := core.NewPlan(len(agg.PerFF), recovery.Flush)
	for bit, c := range withH.Assign {
		if c != core.CellNone {
			ablated.Assign[bit] = core.CellParity
		}
	}

	eval := func(p *core.Plan) (sdcImp, dueImp float64) {
		resid := e.Evaluate(agg, p)
		gamma := 1 + e.PlanFFOverhead(p)
		return stack.Improvement(baseSDC, resid.SDC/totalN, gamma),
			stack.Improvement(baseDUE, resid.DUE/totalN, gamma)
	}
	s1, d1 := eval(withH)
	s2, d2 := eval(ablated)

	t := newTable("Ablation 2: Heuristic 1's HARDEN predicate (InO, 50x SDC set, flush recovery)",
		"Plan", "SDC improvement", "DUE improvement")
	t.row("Heuristic 1 (DICE past commit point)", imp(s1), imp(d1))
	t.row("Ablated (parity everywhere)", imp(s2), imp(d2))
	// count how many protected FFs sit past the commit point
	unrec := 0
	for bit, c := range withH.Assign {
		if c != core.CellNone && !recovery.Recoverable(recovery.Flush, "InO", e.Space, bit) {
			unrec++
		}
	}
	t.row(fmt.Sprintf("(%d of the protected flip-flops are flush-unrecoverable)", unrec), "", "")
	return t.String(), nil
}
