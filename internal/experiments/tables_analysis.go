package experiments

import (
	"fmt"
	"math"

	"clear/internal/analysis"
	"clear/internal/archres"
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/stats"
	"clear/internal/swres"
)

func init() {
	register("table23", "Trained vs validated SDC improvement, high-level techniques", table23)
	register("table24", "Trained vs validated DUE improvement, high-level techniques", table24)
	register("table25", "SDC improvement and cost before/after LHL augmentation", table25)
	register("table26", "DUE improvement and cost before/after LHL augmentation", table26)
	register("table27", "Flip-flop subset similarity across benchmarks (Eq. 2)", table27)
}

const nSplits = 50

// techniqueRows lists the standalone high-level techniques of Tables 23/24.
func techniqueRows(kind inject.CoreKind) []struct {
	name string
	v    core.Variant
} {
	if kind == inject.InO {
		return []struct {
			name string
			v    core.Variant
		}{
			{"DFC", core.Variant{DFC: true}},
			{"Assertions", core.Variant{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertCombined}},
			{"CFCSS", core.Variant{SW: []core.SWTechnique{core.SWCFCSS}}},
			{"EDDI", core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true}},
		}
	}
	return []struct {
		name string
		v    core.Variant
	}{
		{"DFC", core.Variant{DFC: true}},
		{"Monitor core", core.Variant{Monitor: true}},
	}
}

func trainValidateTable(ctx *Ctx, title string, metric core.Metric) (string, error) {
	t := newTable(title, "Core", "Technique", "Train", "Validate", "Underestimate", "p-value")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		study, err := analysis.NewStudy(e)
		if err != nil {
			return "", err
		}
		trains, vals := study.Splits(nSplits, 4, 0x5EED)
		for _, row := range techniqueRows(kind) {
			techRes := make([]*inject.Result, len(study.Benches))
			gammas := make([]float64, len(study.Benches))
			for i, b := range study.Benches {
				tr, err := e.Campaign(b, row.v)
				if err != nil {
					return "", err
				}
				techRes[i] = tr
				ov, err := e.ExecOverhead(b, row.v)
				if err != nil {
					return "", err
				}
				gammas[i] = e.HighLevelGamma(core.Combo{Variant: row.v}, ov)
			}
			tv := analysis.TechniqueTV(row.name, study.Base, techRes, gammas, metric, trains, vals, 0xA11)
			t.row(kind.String(), row.name, imp(tv.Train), imp(tv.Validate),
				pct(tv.Underestimate), fmt.Sprintf("%.2g", tv.PValue))
		}
		// ABFT correction: leave-one-out over the three amenable kernels.
		tv, err := abftTV(e, metric)
		if err != nil {
			return "", err
		}
		t.row(kind.String(), "ABFT correction", imp(tv.Train), imp(tv.Validate),
			pct(tv.Underestimate), fmt.Sprintf("%.2g", tv.PValue))
	}
	return t.String(), nil
}

// abftTV evaluates ABFT correction's benchmark dependence with
// leave-one-out splits over its three kernels.
func abftTV(e *core.Engine, metric core.Metric) (analysis.HighLevelTV, error) {
	kernels := ABFTCorrBenchmarks()
	var baseRes, techRes []*inject.Result
	var gammas []float64
	for _, b := range kernels {
		br, err := e.Base(b)
		if err != nil {
			return analysis.HighLevelTV{}, err
		}
		tr, err := e.Campaign(b, core.Variant{ABFT: core.ABFTCorr})
		if err != nil {
			return analysis.HighLevelTV{}, err
		}
		ov, err := e.ExecOverhead(b, core.Variant{ABFT: core.ABFTCorr})
		if err != nil {
			return analysis.HighLevelTV{}, err
		}
		baseRes = append(baseRes, br)
		techRes = append(techRes, tr)
		gammas = append(gammas, 1+ov)
	}
	var trains, vals [][]int
	for leave := 0; leave < len(kernels); leave++ {
		var tr []int
		for i := range kernels {
			if i != leave {
				tr = append(tr, i)
			}
		}
		trains = append(trains, tr)
		vals = append(vals, []int{leave})
	}
	return analysis.TechniqueTV("ABFT correction", baseRes, techRes, gammas, metric, trains, vals, 0xABF7), nil
}

func table23(ctx *Ctx) (string, error) {
	return trainValidateTable(ctx,
		"Table 23: trained vs validated SDC improvement", core.SDC)
}

func table24(ctx *Ctx) (string, error) {
	return trainValidateTable(ctx,
		"Table 24: trained vs validated DUE improvement", core.DUE)
}

// lhlTable implements Tables 25/26: trained selective designs, their
// validated improvement, and the LHL fallback for unseen applications.
func lhlTable(ctx *Ctx, title string, metric core.Metric) (string, error) {
	t := newTable(title,
		"Core", "Target", "Train", "Validate", "After LHL",
		"Area before", "Energy before", "Area after", "Energy after")
	lhTargets := []float64{5, 10, 20, 30, 40, 50, 500, math.Inf(1)}
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		study, err := analysis.NewStudy(e)
		if err != nil {
			return "", err
		}
		nTrainSplits := 12 // 50 in the paper; bounded here for runtime
		trains, vals := study.Splits(nTrainSplits, 4, 0x1DEA)
		rec := recovery.Flush
		if kind == inject.OoO {
			rec = recovery.RoB
		}
		opt := core.HardenOptions{DICE: true, Parity: true, Recovery: rec, FixedGamma: 1}
		for _, tgt := range lhTargets {
			var trainS, valS, lhlS float64
			var aB, eB, aA, eA float64
			n := 0
			for k := range trains {
				tv, plan := study.TrainedDesign(trains[k], vals[k], opt, metric, tgt)
				lhlPlan := analysis.ApplyLHL(plan)
				after := study.EvaluatePlan(lhlPlan, vals[k], metric, opt.FixedGamma)
				cB := e.PlanCost(plan).Plus(recovery.Cost(rec, kind.String()))
				cA := e.PlanCost(lhlPlan).Plus(recovery.Cost(rec, kind.String()))
				trainS += invCap(tv.Train)
				valS += invCap(tv.Validate)
				lhlS += invCap(after)
				aB += cB.Area
				eB += cB.Energy()
				aA += cA.Area
				eA += cA.Energy()
				n++
			}
			fn := float64(n)
			t.row(kind.String(), targetTimes(tgt),
				imp(fn/trainS), imp(fn/valS), imp(fn/lhlS),
				pct(aB/fn), pct(eB/fn), pct(aA/fn), pct(eA/fn))
		}
	}
	return t.String(), nil
}

func table25(ctx *Ctx) (string, error) {
	return lhlTable(ctx, "Table 25: SDC improvement before/after LHL", core.SDC)
}

func table26(ctx *Ctx) (string, error) {
	return lhlTable(ctx, "Table 26: DUE improvement before/after LHL", core.DUE)
}

func table27(ctx *Ctx) (string, error) {
	study, err := analysis.NewStudy(ctx.InO)
	if err != nil {
		return "", err
	}
	sim := study.SubsetSimilarity()
	t := newTable("Table 27: subset similarity across all 18 benchmarks (InO)",
		"Subset (by decreasing SDC+DUE vulnerability)", "Similarity (Eq. 2)")
	for d, v := range sim {
		t.row(fmt.Sprintf("%d: %d-%d%%", d+1, d*10, (d+1)*10), fmt.Sprintf("%.2f", v))
	}
	_ = stats.Mean
	_ = archres.MonitorFFOverhead
	_ = bench.All
	return t.String(), nil
}
