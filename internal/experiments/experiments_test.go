package experiments

import (
	"strings"
	"testing"

	"clear/internal/core"
	"clear/internal/inject"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12", "table13",
		"table14", "table15", "table16", "table17", "table18", "table19",
		"table20", "table21", "table22", "table23", "table24", "table25",
		"table26", "table27", "fig1d", "fig8", "fig9", "fig10",
		"ablation1", "ablation2",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// ordering: tables before figures, numerically
	ids := All()
	if ids[0].ID != "table1" || ids[len(ids)-1].ID != "ablation2" {
		t.Fatalf("ordering wrong: first %s last %s", ids[0].ID, ids[len(ids)-1].ID)
	}
	if _, ok := Get("table99"); ok {
		t.Fatal("nonexistent experiment found")
	}
}

// quickCtx uses minimal sampling so campaign-free experiments run fast.
func quickCtx() *Ctx {
	ctx := NewCtx()
	ctx.InO.SamplesBase = 1
	ctx.InO.SamplesTech = 1
	ctx.OoO.SamplesBase = 1
	ctx.OoO.SamplesTech = 1
	return ctx
}

func TestCampaignFreeExperiments(t *testing.T) {
	ctx := quickCtx()
	for _, id := range []string{"table4", "table5", "table6", "table15", "table18"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "==") || len(out) < 100 {
			t.Fatalf("%s: implausible output:\n%s", id, out)
		}
		t.Logf("%s ok (%d bytes)", id, len(out))
	}
}

func TestTable18Exact(t *testing.T) {
	e, _ := Get("table18")
	out, err := e.Run(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"127", "417", "169", "586"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table18 missing %q:\n%s", want, out)
		}
	}
}

func TestVariantPlanShape(t *testing.T) {
	if len(InOFullVariants()) != 4 || len(InOSubsetVariants()) != 4 || len(OoOVariants()) != 2 {
		t.Fatal("variant plan changed unexpectedly; update precompute docs")
	}
	if len(SubsetBenchmarks()) != 5 {
		t.Fatal("subset must be the paper's 5 applications")
	}
	for _, b := range SubsetBenchmarks() {
		if b == nil {
			t.Fatal("nil subset benchmark")
		}
	}
	if len(ABFTCorrBenchmarks()) != 3 || len(ABFTDetBenchmarks()) != 4 {
		t.Fatal("ABFT kernel sets wrong")
	}
}

func TestPartKeys(t *testing.T) {
	c := core.Combo{
		Variant: core.Variant{
			ABFT: core.ABFTCorr,
			SW:   []core.SWTechnique{core.SWCFCSS, core.SWEDDI},
			DFC:  true,
		},
	}
	keys := partKeys(c)
	want := []string{"abftc", "cfcss", "eddi", "dfc"}
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
	if len(partKeys(core.Combo{DICE: true})) != 0 {
		t.Fatal("low-level-only combo should have no part keys")
	}
	_ = inject.InO
}

func TestFormatting(t *testing.T) {
	if imp(37.84) != "37.8x" || imp(2.345) != "2.35x" || imp(1234) != "1234x" {
		t.Fatal("imp formatting")
	}
	if pct(0.109) != "10.9%" || pct(0.021) != "2.10%" || pct(0) != "0%" {
		t.Fatalf("pct formatting: %s %s %s", pct(0.109), pct(0.021), pct(0))
	}
}
