package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"clear/internal/core"
	"clear/internal/inject"
)

// Ctx carries the evaluation engines shared by all experiments. Campaign
// results come from the on-disk cache (run cmd/precompute to warm it; any
// missing campaign is computed on demand).
type Ctx struct {
	InO *core.Engine
	OoO *core.Engine
}

// NewCtx returns the default evaluation context.
func NewCtx() *Ctx {
	return &Ctx{InO: core.NewEngine(inject.InO), OoO: core.NewEngine(inject.OoO)}
}

// Engine returns the context's engine for a core kind.
func (c *Ctx) Engine(kind inject.CoreKind) *core.Engine {
	if kind == inject.InO {
		return c.InO
	}
	return c.OoO
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // "table3", "fig9", ...
	Title string // paper caption summary
	Run   func(*Ctx) (string, error)
}

var registry []Experiment

func register(id, title string, run func(*Ctx) (string, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment sorted by id (tables first, then figures).
func All() []Experiment {
	out := append([]Experiment{}, registry...)
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

func lessID(a, b string) bool {
	rank := func(s string) (int, int) {
		kind := 0
		switch {
		case strings.HasPrefix(s, "fig"):
			kind = 1
			s = strings.TrimPrefix(s, "fig")
		case strings.HasPrefix(s, "ablation"):
			kind = 2
			s = strings.TrimPrefix(s, "ablation")
		default:
			s = strings.TrimPrefix(s, "table")
		}
		n := 0
		fmt.Sscanf(s, "%d", &n)
		return kind, n
	}
	ka, na := rank(a)
	kb, nb := rank(b)
	if ka != kb {
		return ka < kb
	}
	return na < nb
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- rendering helpers ----

// table renders rows with aligned columns and a title banner.
type table struct {
	title string
	buf   bytes.Buffer
	tw    *tabwriter.Writer
}

func newTable(title string, headers ...string) *table {
	t := &table{title: title}
	t.tw = tabwriter.NewWriter(&t.buf, 2, 4, 2, ' ', 0)
	if len(headers) > 0 {
		fmt.Fprintln(t.tw, strings.Join(headers, "\t"))
		sep := make([]string, len(headers))
		for i, h := range headers {
			sep[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(t.tw, strings.Join(sep, "\t"))
	}
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(t.tw, format+"\n", args...)
}

func (t *table) String() string {
	t.tw.Flush()
	return "== " + t.title + " ==\n" + t.buf.String()
}

// imp formats an improvement factor ("37.8x", "max" for +Inf).
func imp(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0fx", v)
	case v >= 10:
		return fmt.Sprintf("%.1fx", v)
	default:
		return fmt.Sprintf("%.2fx", v)
	}
}

// pct formats a fraction as a percentage.
func pct(v float64) string {
	switch {
	case math.Abs(v) >= 0.10:
		return fmt.Sprintf("%.1f%%", 100*v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.2f%%", 100*v)
	case v == 0:
		return "0%"
	default:
		return fmt.Sprintf("%.3f%%", 100*v)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
