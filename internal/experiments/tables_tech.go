package experiments

import (
	"fmt"
	"math"

	"clear/internal/archres"
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/stack"
	"clear/internal/swres"
)

func init() {
	register("table3", "Standalone resilience techniques: costs and improvements", table3)
	register("table8", "DFC error coverage", table8)
	register("table10", "Assertions: data vs control variable checks", table10)
	register("table11", "Assertions: SDC improvement across injection levels", table11)
	register("table12", "CFCSS error coverage", table12)
	register("table13", "EDDI: importance of store-readback", table13)
	register("table14", "EDDI: SDC improvement across injection levels", table14)
	register("table16", "Selective EDDI variants vs full EDDI", table16)
}

// techSummary aggregates a technique's measured effect across a benchmark
// set. recoverED treats detected errors as recovered (a bounded-latency
// recovery unit is attached).
type techSummary struct {
	SDCImp, DUEImp float64
	ExecImpact     float64
	DetLatency     float64 // avg cycles, -1 if no detections
	Gamma          float64
	Cost           power.Cost
}

func summarize(e *core.Engine, benches []*bench.Benchmark, v core.Variant,
	extraFFOv float64, extraCost power.Cost, recoverED bool) (techSummary, error) {
	var baseSDC, baseDUE, baseN float64
	var newSDC, newDUE, newN float64
	var execSum float64
	var latSum, latN float64
	for _, b := range benches {
		br, err := e.Base(b)
		if err != nil {
			return techSummary{}, err
		}
		tr, err := e.Campaign(b, v)
		if err != nil {
			return techSummary{}, err
		}
		baseSDC += float64(br.Totals.SDC())
		baseDUE += float64(br.Totals.UT + br.Totals.Hang)
		baseN += float64(br.Totals.N)
		newSDC += float64(tr.Totals.SDC())
		if recoverED {
			newDUE += float64(tr.Totals.UT + tr.Totals.Hang)
		} else {
			newDUE += float64(tr.Totals.DUE())
		}
		newN += float64(tr.Totals.N)
		ov, err := e.ExecOverhead(b, v)
		if err != nil {
			return techSummary{}, err
		}
		execSum += ov
		latSum += float64(tr.DetLatSum)
		latN += float64(tr.DetN)
	}
	n := float64(len(benches))
	exec := execSum / n
	combo := core.Combo{Variant: v}
	gamma := e.HighLevelGamma(combo, exec)
	if extraFFOv > 0 {
		gamma *= 1 + extraFFOv
	}
	out := techSummary{
		ExecImpact: exec,
		Gamma:      gamma,
		DetLatency: -1,
		Cost:       e.HighLevelCost(combo, exec).Plus(extraCost),
	}
	if latN > 0 {
		out.DetLatency = latSum / latN
	}
	out.SDCImp = stack.Improvement(baseSDC/baseN, newSDC/newN, gamma)
	out.DUEImp = stack.Improvement(baseDUE/baseN, newDUE/newN, gamma)
	return out, nil
}

func latStr(v float64) string {
	if v < 0 {
		return "n/a"
	}
	if v >= 10000 {
		return fmt.Sprintf("%.1fK cycles", v/1000)
	}
	return fmt.Sprintf("%.0f cycles", v)
}

// coverage computes the Table 8/12-style checker coverage breakdown.
func coverage(e *core.Engine, v core.Variant) (ffSDC, ffDUE, perFFSDC, perFFDUE, allSDC, allDUE, impSDC, impDUE float64, err error) {
	var baseSDCcov, baseDUEcov, detSDCcov, detDUEcov float64
	var nFFSDC, nFFDUE, hitSDC, hitDUE float64
	var baseSDC, baseDUE, newSDC, newDUE, baseN, newN, execSum float64
	benches := e.Benchmarks()
	for _, b := range benches {
		br, e1 := e.Base(b)
		if e1 != nil {
			return 0, 0, 0, 0, 0, 0, 0, 0, e1
		}
		tr, e2 := e.Campaign(b, v)
		if e2 != nil {
			return 0, 0, 0, 0, 0, 0, 0, 0, e2
		}
		for bit := range br.PerFF {
			bs, ts := br.PerFF[bit], tr.PerFF[bit]
			if bs.OMM > 0 {
				nFFSDC++
				if ts.ED > 0 {
					hitSDC++
					baseSDCcov += float64(bs.OMM) / float64(bs.N)
					r := float64(ts.OMM) / float64(ts.N)
					detSDCcov += math.Max(0, float64(bs.OMM)/float64(bs.N)-r)
				}
			}
			if bs.UT+bs.Hang > 0 {
				nFFDUE++
				if ts.ED > 0 {
					hitDUE++
					baseDUEcov += float64(bs.UT+bs.Hang) / float64(bs.N)
					r := float64(ts.UT+ts.Hang) / float64(ts.N)
					detDUEcov += math.Max(0, float64(bs.UT+bs.Hang)/float64(bs.N)-r)
				}
			}
		}
		baseSDC += float64(br.Totals.SDC())
		baseDUE += float64(br.Totals.UT + br.Totals.Hang)
		baseN += float64(br.Totals.N)
		newSDC += float64(tr.Totals.SDC())
		newDUE += float64(tr.Totals.DUE())
		newN += float64(tr.Totals.N)
		ov, e3 := e.ExecOverhead(b, v)
		if e3 != nil {
			return 0, 0, 0, 0, 0, 0, 0, 0, e3
		}
		execSum += ov
	}
	gamma := e.HighLevelGamma(core.Combo{Variant: v}, execSum/float64(len(benches)))
	ffSDC = safeDiv(hitSDC, nFFSDC)
	ffDUE = safeDiv(hitDUE, nFFDUE)
	perFFSDC = safeDiv(detSDCcov, baseSDCcov)
	perFFDUE = safeDiv(detDUEcov, baseDUEcov)
	allSDC = math.Max(0, 1-(newSDC/newN)/(baseSDC/baseN))
	allDUE = math.Max(0, 1-(newDUE/newN)/(baseDUE/baseN))
	impSDC = stack.Improvement(baseSDC/baseN, newSDC/newN, gamma)
	impDUE = stack.Improvement(baseDUE/baseN, newDUE/newN, gamma)
	return ffSDC, ffDUE, perFFSDC, perFFDUE, allSDC, allDUE, impSDC, impDUE, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func coverageTable(ctx *Ctx, title string, v core.Variant, kinds []inject.CoreKind) (string, error) {
	header := []string{"Metric"}
	for _, k := range kinds {
		header = append(header, k.String()+" SDC", k.String()+" DUE")
	}
	t := newTable(title, header...)
	rows := [][]string{
		{"% FFs with SDC-/DUE-causing error detected by checker"},
		{"% of SDC-/DUE-causing errors detected (per covered FF)"},
		{"overall % of SDC-/DUE-causing errors detected"},
		{"resulting improvement (Eq. 1)"},
	}
	for _, kind := range kinds {
		e := ctx.Engine(kind)
		ffS, ffD, pfS, pfD, aS, aD, iS, iD, err := coverage(e, v)
		if err != nil {
			return "", err
		}
		rows[0] = append(rows[0], pct(ffS), pct(ffD))
		rows[1] = append(rows[1], pct(pfS), pct(pfD))
		rows[2] = append(rows[2], pct(aS), pct(aD))
		rows[3] = append(rows[3], imp(iS), imp(iD))
	}
	for _, r := range rows {
		t.row(r...)
	}
	return t.String(), nil
}

func table8(ctx *Ctx) (string, error) {
	return coverageTable(ctx, "Table 8: DFC error coverage",
		core.Variant{DFC: true}, []inject.CoreKind{inject.InO, inject.OoO})
}

func table12(ctx *Ctx) (string, error) {
	return coverageTable(ctx, "Table 12: CFCSS error coverage",
		core.Variant{SW: []core.SWTechnique{core.SWCFCSS}}, []inject.CoreKind{inject.InO})
}

func table10(ctx *Ctx) (string, error) {
	e := ctx.InO
	t := newTable("Table 10: assertions checking data vs control variables",
		"Metric", "Data checks", "Control checks", "Combined")
	var sums [3]techSummary
	for i, k := range []swres.AssertKind{swres.AssertData, swres.AssertControl, swres.AssertCombined} {
		v := core.Variant{SW: []core.SWTechnique{core.SWAssertions}, AssertK: k}
		s, err := summarize(e, SubsetBenchmarks(), v, 0, power.Cost{}, false)
		if err != nil {
			return "", err
		}
		sums[i] = s
	}
	t.row("Execution time impact", pct(sums[0].ExecImpact), pct(sums[1].ExecImpact), pct(sums[2].ExecImpact))
	t.row("SDC improvement", imp(sums[0].SDCImp), imp(sums[1].SDCImp), imp(sums[2].SDCImp))
	t.row("DUE improvement", imp(sums[0].DUEImp), imp(sums[1].DUEImp), imp(sums[2].DUEImp))
	// False positives: measured by training on the alternate input set and
	// running the canonical input error-free (margin 8x the trained width).
	fpCells := make([]string, 3)
	for i, k := range []swres.AssertKind{swres.AssertData, swres.AssertControl, swres.AssertCombined} {
		fired, checks := 0, 0
		for _, b := range SubsetBenchmarks() {
			eval := b.MustProgram()
			alt, err := b.AltProgram()
			if err != nil {
				return "", err
			}
			fp, err := swres.MeasureFalsePositives(eval, alt, k, 8, 1)
			if err != nil {
				return "", err
			}
			if fp.Fired {
				fired++
			}
			checks += fp.ChecksExecuted
		}
		if checks == 0 {
			fpCells[i] = "n/a"
		} else {
			fpCells[i] = pct(float64(fired) / float64(checks))
		}
	}
	t.row("False positive rate (per dynamic check, alt-input training)",
		fpCells[0], fpCells[1], fpCells[2])
	t.row("False positive rate (eval input folded into training)", "0%", "0%", "0%")
	return t.String(), nil
}

// highLevelImprovement computes the SDC improvement a software technique
// shows under one of the naive injection models.
func highLevelImprovement(base, prot *prog.Program, mode inject.Mode, samples int, gamma float64) (float64, error) {
	cb, err := inject.RunHighLevel(base, mode, samples, 0xAB1)
	if err != nil {
		return 0, err
	}
	cp, err := inject.RunHighLevel(prot, mode, samples, 0xAB1)
	if err != nil {
		return 0, err
	}
	baseRate := float64(cb.SDC()) / float64(cb.N)
	protRate := float64(cp.SDC()) / float64(cp.N)
	return stack.Improvement(baseRate, protRate, gamma), nil
}

func injectionLevelTable(ctx *Ctx, title string, build func(*prog.Program) (*prog.Program, error)) (string, error) {
	e := ctx.InO
	t := newTable(title,
		"App", "Flip-flop (ground truth)", "regU", "regW", "varU", "varW")
	const samples = 400
	sums := make(map[string]float64)
	n := 0
	for _, b := range SubsetBenchmarks() {
		base := b.MustProgram()
		prot, err := build(base)
		if err != nil {
			return "", err
		}
		// ground truth: flip-flop campaigns
		br, err := e.Base(b)
		if err != nil {
			return "", err
		}
		tag := prot.Name[len(base.Name)+1:]
		v, err := variantForTag(tag)
		if err != nil {
			return "", err
		}
		tr, err := e.Campaign(b, v)
		if err != nil {
			return "", err
		}
		ov, err := e.ExecOverhead(b, v)
		if err != nil {
			return "", err
		}
		gamma := 1 + ov
		ffImp := stack.Improvement(
			float64(br.Totals.SDC())/float64(br.Totals.N),
			float64(tr.Totals.SDC())/float64(tr.Totals.N), gamma)
		row := []string{b.Name, imp(ffImp)}
		sums["ff"] += invCap(ffImp)
		for _, mode := range []inject.Mode{inject.RegUniform, inject.RegWrite, inject.VarUniform, inject.VarWrite} {
			hi, err := highLevelImprovement(base, prot, mode, samples, gamma)
			if err != nil {
				return "", err
			}
			row = append(row, imp(hi))
			sums[mode.String()] += invCap(hi)
		}
		t.row(row...)
		n++
	}
	t.row("avg",
		imp(float64(n)/sums["ff"]),
		imp(float64(n)/sums["regU"]), imp(float64(n)/sums["regW"]),
		imp(float64(n)/sums["varU"]), imp(float64(n)/sums["varW"]))
	return t.String(), nil
}

func invCap(v float64) float64 {
	if math.IsInf(v, 1) || v <= 0 {
		return 1e-6
	}
	return 1 / v
}

// variantForTag reverses a transform suffix into a campaign variant.
func variantForTag(tag string) (core.Variant, error) {
	switch tag {
	case "assert-combined":
		return core.Variant{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertCombined}, nil
	case "eddi":
		return core.Variant{SW: []core.SWTechnique{core.SWEDDI}}, nil
	case "eddi-srb":
		return core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true}, nil
	case "seddi":
		return core.Variant{SW: []core.SWTechnique{core.SWEDDI}, SelEDDI: true}, nil
	}
	return core.Variant{}, fmt.Errorf("experiments: unknown tag %q", tag)
}

func table11(ctx *Ctx) (string, error) {
	return injectionLevelTable(ctx,
		"Table 11: assertions SDC improvement by injection level",
		func(p *prog.Program) (*prog.Program, error) {
			return swres.Assertions(p, swres.AssertCombined)
		})
}

func table14(ctx *Ctx) (string, error) {
	return injectionLevelTable(ctx,
		"Table 14: EDDI (no store-readback) SDC improvement by injection level",
		func(p *prog.Program) (*prog.Program, error) {
			return swres.EDDI(p, false)
		})
}

func table13(ctx *Ctx) (string, error) {
	e := ctx.InO
	t := newTable("Table 13: EDDI with and without store-readback",
		"Variant", "SDC imp", "% SDC detected", "SDC escapes", "DUE imp", "DUE escapes")
	for _, srb := range []bool{false, true} {
		v := core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: srb}
		var baseSDC, baseDUE, baseN, newSDC, newDUE, newN, execSum float64
		var escapesSDC, escapesDUE int
		for _, b := range SubsetBenchmarks() {
			br, err := e.Base(b)
			if err != nil {
				return "", err
			}
			tr, err := e.Campaign(b, v)
			if err != nil {
				return "", err
			}
			baseSDC += float64(br.Totals.SDC())
			baseDUE += float64(br.Totals.UT + br.Totals.Hang)
			baseN += float64(br.Totals.N)
			newSDC += float64(tr.Totals.SDC())
			newDUE += float64(tr.Totals.DUE())
			newN += float64(tr.Totals.N)
			escapesSDC += tr.Totals.SDC()
			escapesDUE += tr.Totals.UT + tr.Totals.Hang
			ov, err := e.ExecOverhead(b, v)
			if err != nil {
				return "", err
			}
			execSum += ov
		}
		gamma := 1 + execSum/float64(len(SubsetBenchmarks()))
		name := "Without store-readback"
		if srb {
			name = "With store-readback"
		}
		detFrac := math.Max(0, 1-(newSDC/newN)/(baseSDC/baseN))
		t.row(name,
			imp(stack.Improvement(baseSDC/baseN, newSDC/newN, gamma)),
			pct(detFrac),
			fmt.Sprintf("%d", escapesSDC),
			imp(stack.Improvement(baseDUE/baseN, newDUE/newN, gamma)),
			fmt.Sprintf("%d", escapesDUE))
	}
	return t.String(), nil
}

func table16(ctx *Ctx) (string, error) {
	e := ctx.InO
	t := newTable("Table 16: selective EDDI variants",
		"Technique", "Error injection", "SDC imp", "Exec impact")
	for _, row := range []struct {
		name string
		v    core.Variant
	}{
		{"EDDI with store-readback (implemented)", core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true}},
		{"Selective EDDI / error detectors (implemented)", core.Variant{SW: []core.SWTechnique{core.SWEDDI}, SelEDDI: true}},
	} {
		s, err := summarize(e, SubsetBenchmarks(), row.v, 0, power.Cost{}, false)
		if err != nil {
			return "", err
		}
		t.row(row.name, "Flip-flop", imp(s.SDCImp), fmt.Sprintf("%.2fx", 1+s.ExecImpact))
	}
	// literature rows, quoted from the paper for comparison
	t.row("Reliability-aware transforms (published)", "Arch. reg.", "1.8x", "1.05x")
	t.row("Shoestring (published)", "Arch. reg.", "5.1x", "1.15x")
	t.row("SWIFT (published)", "Arch. reg.", "13.7x", "1.41x")
	_ = archres.MonitorFFOverhead
	_ = bench.All
	return t.String(), nil
}
