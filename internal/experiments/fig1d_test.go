package experiments

import (
	"math"
	"testing"

	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/recovery"
)

// fabricated aggregate + parts for unit-testing the composition math
func fabricate(e *core.Engine) (*inject.Result, fig1dParts) {
	n := e.Space.NumBits()
	agg := &inject.Result{PerFF: make([]inject.FFStats, n)}
	for bit := 0; bit < n; bit++ {
		st := inject.FFStats{N: 10}
		if bit%3 == 0 {
			st.OMM = 4
		}
		if bit%5 == 0 {
			st.UT = 2
		}
		agg.PerFF[bit] = st
		agg.Totals.N += 10
		agg.Totals.OMM += int(st.OMM)
		agg.Totals.UT += int(st.UT)
	}
	// a technique that halves SDC everywhere
	half := &techPart{
		sdcFrac: make([]float64, n),
		dueFrac: make([]float64, n),
		cost:    power.Cost{ExecTime: 0.2},
		gamma:   1.2,
	}
	for i := range half.sdcFrac {
		half.sdcFrac[i] = 0.5
		half.dueFrac[i] = 1
	}
	return agg, fig1dParts{"dfc": half}
}

func TestFig1dPointComposition(t *testing.T) {
	e := core.NewEngine(inject.InO)
	agg, parts := fabricate(e)

	// no techniques at all: nothing protected, zero cost
	p0, e0 := fig1dPoint(e, agg, parts, core.Combo{}, 2)
	if p0 != 0 || e0 != 0 {
		t.Fatalf("empty combo: %.2f %.4f", p0, e0)
	}

	// the fabricated high-level technique alone: ~50% SDC protected
	dfcCombo := core.Combo{Variant: core.Variant{DFC: true}}
	p1, e1 := fig1dPoint(e, agg, parts, dfcCombo, 2)
	if math.Abs(p1-0.5) > 0.05 {
		t.Fatalf("half-technique protection = %.2f, want ~0.5", p1)
	}
	if e1 <= 0.19 {
		t.Fatalf("technique energy %.3f should include its 20%% exec overhead", e1)
	}

	// adding selective DICE at a max target: everything protected, higher cost
	full := core.Combo{DICE: true, Variant: core.Variant{DFC: true}}
	p2, e2 := fig1dPoint(e, agg, parts, full, math.Inf(1))
	if p2 < 0.999 {
		t.Fatalf("max plan protection = %.4f", p2)
	}
	if e2 <= e1 {
		t.Fatalf("max plan should cost more: %.3f vs %.3f", e2, e1)
	}

	// protection is monotone in the target
	c := core.Combo{DICE: true, Parity: true, Recovery: recovery.Flush}
	prev := -1.0
	for _, tgt := range []float64{2, 5, 50, 500} {
		p, _ := fig1dPoint(e, agg, parts, c, tgt)
		if p+1e-9 < prev {
			t.Fatalf("protection not monotone at target %v: %.3f < %.3f", tgt, p, prev)
		}
		prev = p
	}
}
