package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/sweep"
	"clear/internal/swres"
)

func init() {
	register("table17", "Tunable circuit/logic techniques: cost vs improvement", table17)
	register("table19", "Cross-layer combinations for general-purpose processors", table19)
	register("table20", "Joint SDC/DUE improvement (LEAP-DICE + parity + flush/RoB)", table20)
	register("table21", "Cross-layer combinations involving ABFT", table21)
	register("table22", "Impact of ABFT correction on flip-flops", table22)
	register("fig1d", "Energy cost vs %SDC-causing errors protected, 586 combinations", fig1d)
	register("fig8", "ABFT correction vs detection benchmarks", fig8)
	register("fig9", "Bound region: LEAP-DICE + parity + recovery", fig9)
	register("fig10", "Bound region: standalone LEAP-DICE", fig10)
}

// targets is the improvement sweep of Tables 17/19/21 and Figs 9/10.
var targets = []float64{2, 5, 50, 500, math.Inf(1)}

func targetLabel(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.0f", v)
}

// targetTimes renders "50x" for finite targets and "max" for +Inf.
func targetTimes(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.0fx", v)
}

// sweepRow renders "area/energy" cells for a combo across targets.
func sweepRow(e *core.Engine, c core.Combo, metric core.Metric, benches []*bench.Benchmark) ([]string, error) {
	var cells []string
	for _, tgt := range targets {
		var area, energy float64
		n := 0
		for _, b := range benches {
			out, err := e.EvalCombo(b, c, metric, tgt)
			if err != nil {
				return nil, err
			}
			area += out.Cost.Area
			energy += out.Cost.Energy()
			n++
		}
		cells = append(cells, fmt.Sprintf("%.1f/%.1f", 100*area/float64(n), 100*energy/float64(n)))
	}
	return cells, nil
}

func table17(ctx *Ctx) (string, error) {
	t := newTable("Table 17: tunable techniques, area%/energy% per improvement target",
		"Core", "Technique", "Metric", "2x", "5x", "50x", "500x", "max")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		benches := e.Benchmarks()
		rows := []struct {
			name string
			c    core.Combo
		}{
			{"LEAP-DICE only", core.Combo{DICE: true}},
			{"Logic parity only (+IR)", core.Combo{Parity: true, Recovery: recovery.IR}},
			{"EDS only (+IR)", core.Combo{EDS: true, Recovery: recovery.IR}},
			{"Logic parity only (unconstr.)", core.Combo{Parity: true}},
			{"EDS only (unconstr.)", core.Combo{EDS: true}},
		}
		for _, r := range rows {
			for _, metric := range []core.Metric{core.SDC, core.DUE} {
				if r.c.Recovery == recovery.None && !r.c.DICE && metric == core.DUE {
					t.row(kind.String(), r.name, "DUE", "-", "-", "-", "-", "-")
					continue
				}
				cells, err := sweepRow(e, r.c, metric, benches)
				if err != nil {
					return "", err
				}
				t.row(append([]string{kind.String(), r.name, metric.String()}, cells...)...)
			}
		}
	}
	return t.String(), nil
}

// headlineCombos returns the Table 19 combinations per core.
func headlineCombos(kind inject.CoreKind) []struct {
	name string
	c    core.Combo
} {
	if kind == inject.InO {
		return []struct {
			name string
			c    core.Combo
		}{
			{"LEAP-DICE + parity (+flush)", core.Combo{DICE: true, Parity: true, Recovery: recovery.Flush}},
			{"EDS + LEAP-DICE + parity (+flush)", core.Combo{DICE: true, Parity: true, EDS: true, Recovery: recovery.Flush}},
			{"DFC + LEAP-DICE + parity (+EIR)", core.Combo{DICE: true, Parity: true, Variant: core.Variant{DFC: true}, Recovery: recovery.EIR}},
			{"Assertions + LEAP-DICE + parity", core.Combo{DICE: true, Parity: true, Variant: core.Variant{SW: []core.SWTechnique{core.SWAssertions}, AssertK: swres.AssertCombined}}},
			{"CFCSS + LEAP-DICE + parity", core.Combo{DICE: true, Parity: true, Variant: core.Variant{SW: []core.SWTechnique{core.SWCFCSS}}}},
			{"EDDI + LEAP-DICE + parity", core.Combo{DICE: true, Parity: true, Variant: core.Variant{SW: []core.SWTechnique{core.SWEDDI}, EDDISrb: true}}},
		}
	}
	return []struct {
		name string
		c    core.Combo
	}{
		{"LEAP-DICE + parity (+RoB)", core.Combo{DICE: true, Parity: true, Recovery: recovery.RoB}},
		{"EDS + LEAP-DICE + parity (+RoB)", core.Combo{DICE: true, Parity: true, EDS: true, Recovery: recovery.RoB}},
		{"DFC + LEAP-DICE + parity (+EIR)", core.Combo{DICE: true, Parity: true, Variant: core.Variant{DFC: true}, Recovery: recovery.EIR}},
		{"Monitor + LEAP-DICE + parity (+RoB)", core.Combo{DICE: true, Parity: true, Variant: core.Variant{Monitor: true}, Recovery: recovery.RoB}},
	}
}

func table19(ctx *Ctx) (string, error) {
	t := newTable("Table 19: cross-layer combinations, area%/energy% per target",
		"Core", "Combination", "Metric", "2x", "5x", "50x", "500x", "max")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		benches := e.Benchmarks()
		for _, r := range headlineCombos(kind) {
			for _, metric := range []core.Metric{core.SDC, core.DUE} {
				if r.c.Recovery == recovery.None && metric == core.DUE {
					// unconstrained detection cannot improve DUE; the
					// paper reports "-" for these columns
					t.row(kind.String(), r.name, "DUE", "-", "-", "-", "-", "-")
					continue
				}
				cells, err := sweepRow(e, r.c, metric, benches)
				if err != nil {
					return "", err
				}
				t.row(append([]string{kind.String(), r.name, metric.String()}, cells...)...)
			}
		}
	}
	return t.String(), nil
}

func table20(ctx *Ctx) (string, error) {
	t := newTable("Table 20: joint SDC/DUE targets (LEAP-DICE + parity + flush/RoB)",
		"Target", "InO area", "InO energy", "OoO area", "OoO energy")
	jointTargets := []float64{2, 5, 50, 500, math.Inf(1)}
	type cell struct{ area, energy float64 }
	cells := map[string]map[float64]cell{"InO": {}, "OoO": {}}
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		c := core.Combo{DICE: true, Parity: true, Recovery: recovery.Flush}
		if kind == inject.OoO {
			c.Recovery = recovery.RoB
		}
		for _, tgt := range jointTargets {
			var area, energy float64
			n := 0
			for _, b := range e.Benchmarks() {
				out, err := e.EvalComboJoint(b, c, tgt)
				if err != nil {
					return "", err
				}
				area += out.Cost.Area
				energy += out.Cost.Energy()
				n++
			}
			cells[kind.String()][tgt] = cell{area / float64(n), energy / float64(n)}
		}
	}
	for _, tgt := range jointTargets {
		i := cells["InO"][tgt]
		o := cells["OoO"][tgt]
		t.row(targetTimes(tgt), pct(i.area), pct(i.energy), pct(o.area), pct(o.energy))
	}
	return t.String(), nil
}

// abftCovered returns the flip-flops whose errors the ABFT-correction
// variant of a benchmark eliminates.
func abftCovered(e *core.Engine, b *bench.Benchmark) (map[int]bool, error) {
	br, err := e.Base(b)
	if err != nil {
		return nil, err
	}
	ar, err := e.Campaign(b, core.Variant{ABFT: core.ABFTCorr})
	if err != nil {
		return nil, err
	}
	covered := map[int]bool{}
	for bit := range br.PerFF {
		bs, as := br.PerFF[bit], ar.PerFF[bit]
		if bs.OMM+bs.UT+bs.Hang > 0 && as.OMM+as.UT+as.Hang+as.ED == 0 && as.N > 0 {
			covered[bit] = true
		}
	}
	return covered, nil
}

func table21(ctx *Ctx) (string, error) {
	t := newTable("Table 21: ABFT cross-layer combinations, area%/energy% per SDC target",
		"Core", "Combination", "2x", "5x", "50x", "500x", "max")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		rec := recovery.Flush
		if kind == inject.OoO {
			rec = recovery.RoB
		}
		corrCombo := core.Combo{DICE: true, Parity: true, Recovery: rec,
			Variant: core.Variant{ABFT: core.ABFTCorr}}
		cells, err := sweepRow(e, corrCombo, core.SDC, ABFTCorrBenchmarks())
		if err != nil {
			return "", err
		}
		t.row(append([]string{kind.String(), "ABFT corr + LEAP-DICE + parity (+" + rec.String() + ")"}, cells...)...)

		if kind == inject.InO {
			detCombo := core.Combo{DICE: true, Parity: true,
				Variant: core.Variant{ABFT: core.ABFTDet}}
			cells, err = sweepRow(e, detCombo, core.SDC, ABFTDetBenchmarks())
			if err != nil {
				return "", err
			}
			t.row(append([]string{kind.String(), "ABFT det + LEAP-DICE + parity (no rec)"}, cells...)...)
		}

		// LEAP-ctrl augmentation: ABFT-covered flip-flops also get a
		// mode-switchable cell so non-ABFT applications stay protected.
		var ctrlCells []string
		for _, tgt := range targets {
			var area, energy float64
			n := 0
			for _, b := range ABFTCorrBenchmarks() {
				_, plan, err := e.PlanCombo(b, corrCombo, core.SDC, tgt)
				if err != nil {
					return "", err
				}
				covered, err := abftCovered(e, b)
				if err != nil {
					return "", err
				}
				aug := &core.Plan{Assign: append([]core.CellKind{}, plan.Assign...), Recovery: plan.Recovery}
				for bit := range covered {
					if aug.Assign[bit] == core.CellNone {
						aug.Assign[bit] = core.CellCtrlEco
					}
				}
				out, err := e.OutcomeForPlan(b, corrCombo, aug)
				if err != nil {
					return "", err
				}
				area += out.Cost.Area
				energy += out.Cost.Energy()
				n++
			}
			ctrlCells = append(ctrlCells, fmt.Sprintf("%.1f/%.1f", 100*area/float64(n), 100*energy/float64(n)))
		}
		t.row(append([]string{kind.String(), "ABFT corr + LEAP-ctrl + LEAP-DICE + parity (+" + rec.String() + ")"}, ctrlCells...)...)
	}
	return t.String(), nil
}

func table22(ctx *Ctx) (string, error) {
	t := newTable("Table 22: flip-flops with errors corrected by ABFT",
		"Core", "% FFs corrected by ANY algorithm (∪)", "% FFs corrected by EVERY algorithm (∩)")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		var sets []map[int]bool
		for _, b := range ABFTCorrBenchmarks() {
			cov, err := abftCovered(e, b)
			if err != nil {
				return "", err
			}
			sets = append(sets, cov)
		}
		union := map[int]bool{}
		for _, s := range sets {
			for bit := range s {
				union[bit] = true
			}
		}
		inter := 0
		for bit := range union {
			all := true
			for _, s := range sets {
				if !s[bit] {
					all = false
					break
				}
			}
			if all {
				inter++
			}
		}
		n := float64(e.Space.NumBits())
		t.row(kind.String(), pct(float64(len(union))/n), pct(float64(inter)/n))
	}
	return t.String(), nil
}

func fig8(ctx *Ctx) (string, error) {
	t := newTable("Figure 8: ABFT correction vs detection (per benchmark, InO)",
		"Benchmark", "Mode", "SDC improvement", "DUE improvement")
	e := ctx.InO
	emit := func(benches []*bench.Benchmark, ab core.ABFTMode, label string) error {
		for _, b := range benches {
			s, err := summarize(e, []*bench.Benchmark{b}, core.Variant{ABFT: ab}, 0, power.Cost{}, false)
			if err != nil {
				return err
			}
			t.row(b.Name, label, imp(s.SDCImp), imp(s.DUEImp))
		}
		return nil
	}
	if err := emit(ABFTCorrBenchmarks(), core.ABFTCorr, "correction"); err != nil {
		return "", err
	}
	if err := emit(ABFTDetBenchmarks(), core.ABFTDet, "detection"); err != nil {
		return "", err
	}
	return t.String(), nil
}

func boundFigure(ctx *Ctx, title string, mk func(kind inject.CoreKind) core.Combo) (string, error) {
	t := newTable(title, "Series", "2x", "5x", "50x", "500x", "max")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		for _, metric := range []core.Metric{core.SDC, core.DUE} {
			var cells []string
			for _, tgt := range targets {
				var energy float64
				n := 0
				for _, b := range e.Benchmarks() {
					out, err := e.EvalCombo(b, mk(kind), metric, tgt)
					if err != nil {
						return "", err
					}
					energy += out.Cost.Energy()
					n++
				}
				cells = append(cells, pct(energy/float64(n)))
			}
			t.row(append([]string{fmt.Sprintf("%s (%s) energy", metric, kind)}, cells...)...)
		}
	}
	return t.String(), nil
}

func fig9(ctx *Ctx) (string, error) {
	return boundFigure(ctx,
		"Figure 9: energy bound, LEAP-DICE + parity + micro-architectural recovery",
		func(kind inject.CoreKind) core.Combo {
			rec := recovery.Flush
			if kind == inject.OoO {
				rec = recovery.RoB
			}
			return core.Combo{DICE: true, Parity: true, Recovery: rec}
		})
}

func fig10(ctx *Ctx) (string, error) {
	return boundFigure(ctx,
		"Figure 10: energy bound, standalone LEAP-DICE",
		func(inject.CoreKind) core.Combo { return core.Combo{DICE: true} })
}

// ---- Figure 1d: the full 586-combination sweep ----

// fig1d composes per-technique campaign measurements to place all 586
// combinations on the (percent SDC-causing errors protected, energy cost)
// plane. Multi-technique high-layer coverage is composed per flip-flop
// assuming independent detection (documented approximation; the headline
// tables use exact measured stacks). The per-combination composition runs
// on the shared work-stealing pool (results stored by index, so the output
// is identical to the serial order).
func fig1d(ctx *Ctx) (string, error) {
	type point struct {
		name      string
		kind      inject.CoreKind
		protected float64
		energy    float64
	}
	var points []point
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		agg, parts, err := fig1dData(e)
		if err != nil {
			return "", err
		}
		combos := core.Enumerate(kind)
		pts := make([]point, len(combos)*len(targets))
		sweep.ForEach(context.Background(), len(combos), 0, func(i int) {
			c := combos[i]
			for j, tgt := range targets {
				p, en := fig1dPoint(e, agg, parts, c, tgt)
				pts[i*len(targets)+j] = point{c.Name(), kind, p, en}
			}
		})
		points = append(points, pts...)
	}
	// Summarize: per protection decile, the cheapest combinations.
	t := newTable("Figure 1d: 586 combinations x 5 targets (energy vs %SDC protected)",
		"Core", "%SDC protected band", "points", "min energy", "median energy", "cheapest combination")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		for lo := 0.0; lo < 1.0; lo += 0.2 {
			hi := lo + 0.2
			var es []float64
			best := ""
			bestE := math.Inf(1)
			for _, p := range points {
				if p.kind != kind || p.protected < lo || p.protected >= hi {
					continue
				}
				es = append(es, p.energy)
				if p.energy < bestE {
					bestE = p.energy
					best = p.name
				}
			}
			if len(es) == 0 {
				continue
			}
			sort.Float64s(es)
			t.row(kind.String(),
				fmt.Sprintf("%.0f-%.0f%%", 100*lo, 100*hi),
				fmt.Sprintf("%d", len(es)),
				pct(es[0]), pct(es[len(es)/2]), best)
		}
	}
	// Pareto frontier per core through the shared utility: the cheapest
	// combinations at each protection level (the boundary of the scatter).
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		var pp []core.ParetoPoint
		for _, p := range points {
			if p.kind == kind {
				pp = append(pp, core.ParetoPoint{Name: p.name, Improvement: p.protected, Energy: p.energy})
			}
		}
		frontier := core.ParetoFrontier(pp)
		t.row("", "", "", "", "", "")
		t.row(kind.String()+" Pareto frontier", fmt.Sprintf("%d points", len(frontier)), "", "", "", "")
		for _, f := range frontier {
			t.row("", pct(f.Improvement)+" protected", "", pct(f.Energy), "", f.Name)
		}
	}
	t.row("", "", "", "", "", "")
	t.row("total points", fmt.Sprintf("%d", len(points)), "", "", "", "")
	return t.String(), nil
}
