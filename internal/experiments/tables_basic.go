package experiments

import (
	"fmt"
	"strings"

	"clear/internal/archres"
	"clear/internal/bench"
	"clear/internal/circuitlib"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/layout"
	"clear/internal/parity"
	"clear/internal/recovery"
)

func init() {
	register("table1", "Processor designs studied", table1)
	register("table2", "Distribution of flip-flops with SDC/DUE-causing errors", table2)
	register("table4", "Resilient flip-flop library", table4)
	register("table5", "Baseline flip-flop spacing distribution", table5)
	register("table6", "Parity-group spacing under the SEMU constraint", table6)
	register("table7", "Parity grouping heuristics (pipelined, all InO flip-flops)", table7)
	register("table9", "Monitor core vs main core throughput", table9)
	register("table15", "Hardware error recovery costs", table15)
	register("table18", "Creating the 586 cross-layer combinations", table18)
}

// baseAll loads the baseline campaigns of every benchmark of a core.
func baseAll(e *core.Engine) ([]*inject.Result, error) {
	var out []*inject.Result
	for _, b := range e.Benchmarks() {
		r, err := e.Base(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func table1(ctx *Ctx) (string, error) {
	t := newTable("Table 1: processor designs studied",
		"Core", "Description", "Clk", "Flip-flops", "Injections", "IPC")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		results, err := baseAll(e)
		if err != nil {
			return "", err
		}
		totalInj := 0
		var ipcSum float64
		for _, r := range results {
			totalInj += r.Totals.N
			ipcSum += float64(r.NomRet) / float64(r.NomCycles)
		}
		desc := "Simple, in-order (CRV32 7-stage)"
		if kind == inject.OoO {
			desc = "Complex, 2-wide out-of-order (CRV32)"
		}
		t.row(kind.String(), desc,
			fmt.Sprintf("%.0f MHz", e.Model.ClockMHz),
			fmt.Sprintf("%d", e.Space.NumBits()),
			fmt.Sprintf("%d", totalInj),
			f2(ipcSum/float64(len(results))))
	}
	return t.String(), nil
}

func table2(ctx *Ctx) (string, error) {
	t := newTable("Table 2: flip-flops with SDC-/DUE-causing errors over all benchmarks",
		"Core", "% FFs w/ SDC errors", "% FFs w/ DUE errors", "% FFs w/ either", "% FFs always vanish")
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		e := ctx.Engine(kind)
		results, err := baseAll(e)
		if err != nil {
			return "", err
		}
		n := e.Space.NumBits()
		sdcFF := make([]bool, n)
		dueFF := make([]bool, n)
		for _, r := range results {
			for bit, st := range r.PerFF {
				if st.OMM > 0 {
					sdcFF[bit] = true
				}
				if st.UT+st.Hang+st.ED > 0 {
					dueFF[bit] = true
				}
			}
		}
		var cs, cd, ce int
		for bit := 0; bit < n; bit++ {
			if sdcFF[bit] {
				cs++
			}
			if dueFF[bit] {
				cd++
			}
			if sdcFF[bit] || dueFF[bit] {
				ce++
			}
		}
		t.row(kind.String(),
			pct(float64(cs)/float64(n)), pct(float64(cd)/float64(n)),
			pct(float64(ce)/float64(n)), pct(float64(n-ce)/float64(n)))
	}
	return t.String(), nil
}

func table4(*Ctx) (string, error) {
	t := newTable("Table 4: resilient flip-flop library",
		"Type", "Soft error rate", "Area", "Power", "Delay", "Energy")
	for _, c := range circuitlib.All() {
		ser := fmt.Sprintf("%.1e", c.SERRatio)
		if c.Detects {
			ser = "~100% detect"
		} else if c.SERRatio == 1 {
			ser = "1"
		}
		t.row(c.Name, ser, f2(c.Area), f2(c.Power), f2(c.Delay), f2(c.Energy))
	}
	return t.String(), nil
}

func table5(ctx *Ctx) (string, error) {
	t := newTable("Table 5: baseline nearest-neighbor flip-flop spacing",
		"Distance (FF lengths)", "InO-core", "OoO-core")
	ih := layout.Histogram(ctx.InO.Pl.NearestNeighbor())
	oh := layout.Histogram(ctx.OoO.Pl.NearestNeighbor())
	for i, b := range layout.SpacingBuckets {
		t.row(b, pct(ih[i]), pct(oh[i]))
	}
	return t.String(), nil
}

func table6(ctx *Ctx) (string, error) {
	t := newTable("Table 6: same-parity-group spacing after the min-spacing constraint",
		"Distance (FF lengths)", "InO-core", "OoO-core")
	hist := func(e *core.Engine) ([5]float64, float64) {
		bits := make([]int, e.Space.NumBits())
		for i := range bits {
			bits[i] = i
		}
		g := parity.Group(parity.OptimizedH, 16, e.Space, e.Pl, nil, bits)
		d := e.Pl.ParityPlacement(g.Groups)
		var sum float64
		for _, v := range d {
			sum += v
		}
		avg := 0.0
		if len(d) > 0 {
			avg = sum / float64(len(d))
		}
		return layout.Histogram(d), avg
	}
	ih, ia := hist(ctx.InO)
	oh, oa := hist(ctx.OoO)
	for i, b := range layout.SpacingBuckets {
		t.row(b, pct(ih[i]), pct(oh[i]))
	}
	t.row("Average distance", fmt.Sprintf("%.1f FF", ia), fmt.Sprintf("%.1f FF", oa))
	return t.String(), nil
}

func table7(ctx *Ctx) (string, error) {
	e := ctx.InO
	bits := make([]int, e.Space.NumBits())
	vuln := make([]float64, e.Space.NumBits())
	// vulnerability ordering from the aggregate baseline campaigns
	results, err := baseAll(e)
	if err != nil {
		return "", err
	}
	for i := range bits {
		bits[i] = i
	}
	for _, r := range results {
		for bit, st := range r.PerFF {
			vuln[bit] += float64(st.OMM) + float64(st.UT) + float64(st.Hang)
		}
	}
	t := newTable("Table 7: parity heuristics, protecting all InO flip-flops",
		"Heuristic", "Area cost", "Power cost", "Energy cost")
	type cfg struct {
		name string
		h    parity.Heuristic
		size int
	}
	for _, c := range []cfg{
		{"Vulnerability (4-bit groups)", parity.VulnerabilityH, 4},
		{"Vulnerability (8-bit groups)", parity.VulnerabilityH, 8},
		{"Vulnerability (16-bit groups)", parity.VulnerabilityH, 16},
		{"Vulnerability (32-bit groups)", parity.VulnerabilityH, 32},
		{"Locality (16-bit groups)", parity.LocalityH, 16},
		{"Timing (16-bit groups)", parity.TimingH, 16},
		{"Optimized (16/32-bit groups)", parity.OptimizedH, 16},
	} {
		g := parity.Group(c.h, c.size, e.Space, e.Pl, vuln, bits)
		if c.h != parity.OptimizedH {
			g = g.ForcePipelined()
		}
		cost := e.Model.ParityCost(g, e.Pl)
		t.row(c.name, pct(cost.Area), pct(cost.Power), pct(cost.Energy()))
	}
	return t.String(), nil
}

func table9(ctx *Ctx) (string, error) {
	e := ctx.OoO
	results, err := baseAll(e)
	if err != nil {
		return "", err
	}
	var ipcSum float64
	for _, r := range results {
		ipcSum += float64(r.NomRet) / float64(r.NomCycles)
	}
	mainIPC := ipcSum / float64(len(results))
	t := newTable("Table 9: monitor core vs main core",
		"Design", "Clk", "Average IPC")
	t.row("OoO-core", fmt.Sprintf("%.0f MHz", e.Model.ClockMHz), f2(mainIPC))
	t.row("Monitor core", fmt.Sprintf("%.0f MHz", float64(archres.MonitorClockMHz)), f2(archres.MonitorIPC))
	stall := "no"
	if archres.MonitorStallsMain(e.Model.ClockMHz, mainIPC) {
		stall = "YES"
	}
	t.row("Monitor stalls main core?", stall, "")
	return t.String(), nil
}

func table15(*Ctx) (string, error) {
	t := newTable("Table 15: hardware error recovery costs",
		"Core", "Type", "Area", "Power", "Energy", "Latency", "Unrecoverable FFs")
	rows := []struct {
		core string
		kind recovery.Kind
	}{
		{"InO", recovery.IR}, {"InO", recovery.EIR}, {"InO", recovery.Flush},
		{"OoO", recovery.IR}, {"OoO", recovery.EIR}, {"OoO", recovery.RoB},
	}
	for _, r := range rows {
		c := recovery.Cost(r.kind, r.core)
		unrec := recovery.UnrecoverableUnits(r.kind, r.core)
		desc := "none (all pipeline FFs recoverable)"
		if len(unrec) > 0 {
			desc = "FFs in " + strings.Join(unrec, ",")
		}
		t.row(r.core, r.kind.String(), pct(c.Area), pct(c.Power), pct(c.Energy()),
			fmt.Sprintf("%d cycles", recovery.Latency(r.kind, r.core)), desc)
	}
	return t.String(), nil
}

func table18(*Ctx) (string, error) {
	t := newTable("Table 18: creating the 586 cross-layer combinations",
		"Core", "Row", "No rec.", "Flush/RoB", "IR/EIR", "Total")
	grand := 0
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		c := core.CountCombos(kind)
		base := c.NoRec + c.QuickRec + c.Replay
		t.row(kind.String(), "Technique combinations",
			fmt.Sprintf("%d", c.NoRec), fmt.Sprintf("%d", c.QuickRec),
			fmt.Sprintf("%d", c.Replay), fmt.Sprintf("%d", base))
		t.row("", "ABFT correction/detection alone", "2", "0", "0", "2")
		t.row("", "ABFT correction + combinations", "", "", "", fmt.Sprintf("%d", c.ABFTCorrStack))
		t.row("", "ABFT detection + combinations", fmt.Sprintf("%d", c.ABFTDetStack), "0", "0", fmt.Sprintf("%d", c.ABFTDetStack))
		t.row("", kind.String()+" total", "", "", "", fmt.Sprintf("%d", c.Total))
		grand += c.Total
	}
	t.row("", "Combined total", "", "", "", fmt.Sprintf("%d", grand))
	if grand != 586 {
		return "", fmt.Errorf("experiments: enumeration produced %d combos, want 586", grand)
	}
	_ = bench.All
	return t.String(), nil
}
