package core

import (
	"sync"
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
)

// TestCampaignExactlyOnceConcurrent is the singleflight guarantee: N
// concurrent callers asking for the same (benchmark, variant) campaign
// must trigger exactly one computation — the others join it or hit the
// memo — and all observe the same result. Run under -race in CI.
func TestCampaignExactlyOnceConcurrent(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	v := Variant{}

	const n = 16
	var wg sync.WaitGroup
	results := make([]*inject.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Campaign(b, v)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d observed a different result pointer", i)
		}
	}
	st := e.Stats()
	if st.CampaignsRun != 1 {
		t.Fatalf("campaign ran %d times under %d concurrent callers, want exactly 1", st.CampaignsRun, n)
	}
	if st.CampaignsJoined+st.CampaignsCached != n-1 {
		t.Fatalf("joined=%d cached=%d, want them to account for the other %d callers",
			st.CampaignsJoined, st.CampaignsCached, n-1)
	}

	// A later caller is a pure memo hit.
	if _, err := e.Campaign(b, v); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.CampaignsRun != 1 {
		t.Fatalf("sequential re-request recomputed the campaign (run=%d)", st.CampaignsRun)
	}
}

// TestCampaignConcurrentDistinctVariants checks that dedup never conflates
// different campaigns: concurrent callers over distinct variants compute
// one campaign each.
func TestCampaignConcurrentDistinctVariants(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	variants := []Variant{
		{},
		{DFC: true},
	}
	const callersPer = 4
	var wg sync.WaitGroup
	for i := 0; i < callersPer*len(variants); i++ {
		v := variants[i%len(variants)]
		wg.Add(1)
		go func(v Variant) {
			defer wg.Done()
			if _, err := e.Campaign(b, v); err != nil {
				t.Errorf("campaign %q: %v", v.Tag(), err)
			}
		}(v)
	}
	wg.Wait()
	if st := e.Stats(); st.CampaignsRun != int64(len(variants)) {
		t.Fatalf("campaigns run = %d, want %d (one per distinct variant)", st.CampaignsRun, len(variants))
	}
}

// TestExecOverheadBaseCached pins the memoization of the untransformed
// variant's zero overhead: the historical code returned early without
// storing it, so every call re-entered BuildProgram.
func TestExecOverheadBaseCached(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	ov, err := e.ExecOverhead(b, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if ov != 0 {
		t.Fatalf("base variant overhead = %v, want 0", ov)
	}
	e.mu.Lock()
	_, cached := e.overheads[b.Name+"|base"]
	e.mu.Unlock()
	if !cached {
		t.Fatal("base-variant overhead not stored in the memo map")
	}
	if _, err := e.ExecOverhead(b, Variant{}); err != nil {
		t.Fatal(err)
	}
}
