package core

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/parity"
)

// groupIndex maps each bit to its parity group id (-1 when unprotected).
func groupIndex(n int, g parity.Grouping) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for gi, grp := range g.Groups {
		for _, b := range grp {
			idx[b] = gi
		}
	}
	return idx
}

// A SEMU striking two flip-flops of the SAME parity group flips two bits
// under one XOR tree: parity stays even and the detector is blind. This
// test validates the purpose of the paper's minimum-spacing constraint
// (Tables 5/6): under the baseline placement many adjacent pairs share a
// naive group, while the constrained (interleaved) grouping leaves no
// adjacent pair in the same group — so every SEMU hits two *different*
// checkers and is caught.
func TestSEMUSpacingConstraint(t *testing.T) {
	e := NewEngine(inject.InO)
	bits := make([]int, e.Space.NumBits())
	for i := range bits {
		bits[i] = i
	}
	pairs := e.Pl.AdjacentPairs()
	if len(pairs) < 100 {
		t.Fatalf("placement yields only %d adjacent pairs; SEMU study vacuous", len(pairs))
	}

	// Naive grouping: consecutive bit order == physical neighbors together.
	naive := parity.Group(parity.GroupSizeH, 16, e.Space, e.Pl, nil, bits)
	naiveIdx := groupIndex(len(bits), naive)
	blindNaive := 0
	for _, pr := range pairs {
		if naiveIdx[pr[0]] >= 0 && naiveIdx[pr[0]] == naiveIdx[pr[1]] {
			blindNaive++
		}
	}
	if blindNaive == 0 {
		t.Fatal("naive grouping has no SEMU-blind pairs; test premise broken")
	}

	// The constrained layout (ParityPlacement) guarantees >= 1 FF length
	// between same-group members, so no adjacent pair shares a group: this
	// is asserted by layout tests; here we confirm the blind-pair count
	// goes to zero under the re-placement's spacing guarantee.
	d := e.Pl.ParityPlacement(naive.Groups)
	for _, dist := range d {
		if dist < 1.0 {
			t.Fatalf("constrained placement left same-group FFs %0.2f apart", dist)
		}
	}
	t.Logf("%d adjacent pairs; naive grouping leaves %d SEMU-blind pairs; constrained placement leaves 0",
		len(pairs), blindNaive)
}

// End-to-end: simulate SEMUs on a protected design. Same-group double
// flips escape detection (and can corrupt outputs); split-group double
// flips are always detected or recovered.
func TestSEMUDoubleFlipSemantics(t *testing.T) {
	e := NewEngine(inject.InO)
	b := bench.ByName("gap")
	p := b.MustProgram()
	nom := inject.NewCore(inject.InO, p).Run(1_000_000)
	core := inject.NewCore(inject.InO, p)

	// Pick two bits of one 32-bit data latch: same naive parity group.
	f, _ := e.Space.Lookup("e.op1")
	bitA, bitB := f.Offset()+4, f.Offset()+9

	// An XOR tree over a group containing both bits cannot see the pair:
	// the flips must reach architectural state in simulation. Verify the
	// double flip really does corrupt some runs (it is not masked by
	// construction).
	corrupted := 0
	for cycle := 50; cycle < nom.Steps; cycle += nom.Steps / 40 {
		out, _ := inject.RunPair(core, p, bitA, bitB, cycle, nom.Steps, nil)
		if out != inject.Vanished {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no SEMU double flip had any effect; pair injection inert")
	}
	t.Logf("same-latch SEMU corrupted %d/40 sampled cycles (invisible to a shared parity group)", corrupted)

	// Single-bit flips in the same positions are what the constrained
	// grouping reduces a SEMU to (each group sees exactly one flip): those
	// are detectable by construction — the parity model's premise.
	single := 0
	for cycle := 50; cycle < nom.Steps; cycle += nom.Steps / 40 {
		o1, _ := inject.RunOne(core, p, bitA, cycle, nom.Steps, nil)
		if o1 != inject.Vanished {
			single++
		}
	}
	t.Logf("single-bit flips corrupted %d/40 (all detectable by per-group parity)", single)
}

// TestEngineSEMU drives the engine-level SEMU campaign: physically adjacent
// pairs from the layout, warm-started through the shared reference
// machinery, with all work attributed to the engine's own injection scope.
func TestEngineSEMU(t *testing.T) {
	e := NewEngine(inject.InO)
	pairs := e.Pl.AdjacentPairs()
	if len(pairs) > 8 {
		pairs = pairs[:8]
	}
	before := e.Inj.Snapshot().TotalInjections
	res, err := e.SEMU(bench.ByName("gap"), Variant{}, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pairs); res.Totals.N != want {
		t.Fatalf("SEMU totals.N = %d, want %d", res.Totals.N, want)
	}
	after := e.Inj.Snapshot().TotalInjections
	if got, want := after-before, int64(len(pairs)); got != want {
		t.Fatalf("engine injector tallied %d injections, want %d — SEMU work bypassed the scope", got, want)
	}
	if res.Config.Core != inject.InO || res.Config.Bench != "gap" {
		t.Fatalf("SEMU result carries wrong config: %+v", res.Config)
	}
}
