package core

import "sort"

// ParetoPoint is one evaluated design in the (improvement, energy) plane.
type ParetoPoint struct {
	Name        string
	Improvement float64
	Energy      float64
}

// ParetoFrontier returns the non-dominated subset: points for which no
// other point has both higher (or equal) improvement and lower (or equal)
// energy. The result is sorted by increasing improvement; it is the bound
// region of the paper's Figs 9/10 — a new technique must lie on or below
// this curve to be competitive (Sec 5).
func ParetoFrontier(points []ParetoPoint) []ParetoPoint {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]ParetoPoint{}, points...)
	// sort by improvement descending, energy ascending
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Improvement != sorted[j].Improvement {
			return sorted[i].Improvement > sorted[j].Improvement
		}
		return sorted[i].Energy < sorted[j].Energy
	})
	var frontier []ParetoPoint
	bestEnergy := sorted[0].Energy + 1
	for _, p := range sorted {
		if p.Energy < bestEnergy {
			frontier = append(frontier, p)
			bestEnergy = p.Energy
		}
	}
	// ascending improvement for presentation
	sort.Slice(frontier, func(i, j int) bool {
		return frontier[i].Improvement < frontier[j].Improvement
	})
	return frontier
}

// Competitive reports whether a candidate (improvement, energy) point beats
// the frontier: it is competitive if no frontier point achieves at least
// its improvement for no more energy.
func Competitive(frontier []ParetoPoint, improvement, energy float64) bool {
	for _, p := range frontier {
		if p.Improvement >= improvement && p.Energy <= energy {
			return false
		}
	}
	return true
}
