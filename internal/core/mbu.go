package core

import (
	"clear/internal/inject"
	"clear/internal/parity"
)

// MBU parity-coverage analysis: under the spatial multi-bit upset model
// ("mbu") one particle flips a whole cluster of physically adjacent
// flip-flops, and an XOR parity tree only sees the cluster when some group
// overlaps it an odd number of times — an even number of flips inside one
// group cancels in the tree and is invisible. Grouping geometry therefore
// decides detection: contiguous groups over placement-adjacent bits can
// swallow a two-flip cluster whole, while interleaved groups
// (parity.Interleave) guarantee adjacent bits sit in different groups and
// every hit group sees exactly one flip. This file quantifies that
// tradeoff against a measured mbu campaign, the LEAP-DICE-vs-interleaving
// comparison the fault-model layer exists to expose: LEAP-DICE hardens
// each cell individually and is indifferent to clustering, so its cost
// premium buys exactly the coverage that non-interleaved parity loses.

// MBUGroupingEval is the outcome of evaluating one parity grouping against
// an mbu-model campaign.
type MBUGroupingEval struct {
	Strikes  int // strike bits with campaign samples
	Detected int // strikes whose cluster the grouping detects
	// ResidualSDC is the expected SDC passthrough: the campaign's
	// silent-corruption count summed over the strikes whose clusters the
	// grouping misses (detected clusters become DUEs or recoveries, not
	// SDCs). BaseSDC is the same sum over all strikes — the unprotected
	// mbu SDC mass the grouping is defending.
	ResidualSDC float64
	BaseSDC     float64
}

// Coverage returns the fraction of strike clusters detected.
func (ev MBUGroupingEval) Coverage() float64 {
	if ev.Strikes == 0 {
		return 0
	}
	return float64(ev.Detected) / float64(ev.Strikes)
}

// groupOf maps every flip-flop to its ordinal in the grouping (-1 when
// ungrouped).
func groupOf(nBits int, g parity.Grouping) []int {
	idx := make([]int, nBits)
	for i := range idx {
		idx[i] = -1
	}
	for gi, grp := range g.Groups {
		for _, b := range grp {
			idx[b] = gi
		}
	}
	return idx
}

// clusterDetected reports whether a grouping detects a flip cluster: some
// parity group must hold an odd number of the cluster's bits.
func clusterDetected(groupIdx []int, cluster []int) bool {
	// Clusters are tiny (the struck bit plus its SEMU-radius neighbours),
	// so count parities in a scratch map sized for the cluster.
	par := make(map[int]bool, len(cluster))
	for _, b := range cluster {
		if gi := groupIdx[b]; gi >= 0 {
			par[gi] = !par[gi]
		}
	}
	for _, odd := range par {
		if odd {
			return true
		}
	}
	return false
}

// EvalMBUGrouping scores a parity grouping against an mbu-model campaign
// result: every sampled strike bit expands to its placement cluster
// (inject.ModelEnv.Cluster — the same expansion the campaign injected),
// and the strike's silent corruptions count as residual only when no
// parity group sees the cluster with odd multiplicity.
func EvalMBUGrouping(env *inject.ModelEnv, g parity.Grouping, r *inject.Result) MBUGroupingEval {
	groupIdx := groupOf(len(r.PerFF), g)
	var ev MBUGroupingEval
	for bit, st := range r.PerFF {
		if st.N == 0 {
			continue
		}
		ev.Strikes++
		sdc := float64(st.OMM)
		ev.BaseSDC += sdc
		if clusterDetected(groupIdx, env.Cluster(bit)) {
			ev.Detected++
		} else {
			ev.ResidualSDC += sdc
		}
	}
	return ev
}
