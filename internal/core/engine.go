// Package core is the CLEAR framework proper: the cross-layer design-space
// exploration engine. It drives fault-injection campaigns (reliability
// analysis), the layout and power models (physical design evaluation), and
// the resilience library into a single top-down methodology (paper Fig 6):
// high-level techniques (algorithm, software, architecture) are applied
// first and their residual per-flip-flop vulnerability measured; selective
// circuit/logic protection (Heuristic 1, Fig 7) then closes the gap to the
// SDC/DUE improvement target at minimum cost.
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clear/internal/abft"
	"clear/internal/archres"
	"clear/internal/bench"
	"clear/internal/ff"
	"clear/internal/inject"
	"clear/internal/ino"
	"clear/internal/layout"
	"clear/internal/ooo"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/resilient"
	"clear/internal/sim"
	"clear/internal/singleflight"
	"clear/internal/swres"
)

// SWTechnique is a software-layer technique selector inside a combination.
type SWTechnique int

// Software techniques available to combinations.
const (
	SWAssertions SWTechnique = iota
	SWCFCSS
	SWEDDI
)

func (s SWTechnique) String() string {
	switch s {
	case SWAssertions:
		return "Assertions"
	case SWCFCSS:
		return "CFCSS"
	case SWEDDI:
		return "EDDI"
	}
	return "?"
}

// ABFTMode selects the algorithm-layer technique of a combination.
type ABFTMode int

// Algorithm-layer choices.
const (
	ABFTNone ABFTMode = iota
	ABFTCorr
	ABFTDet
)

// Engine evaluates resilience configurations for one core design.
type Engine struct {
	Kind  inject.CoreKind
	Space *ff.Space
	Model power.Model
	Pl    *layout.Placement

	// Campaign sampling parameters (per flip-flop).
	SamplesBase int
	SamplesTech int
	Seed        uint64

	// Finished-result memo maps (guarded by mu) paired with singleflight
	// groups: concurrent callers asking for the same uncomputed campaign,
	// program, or overhead join one in-flight computation instead of
	// silently running the same multi-second work twice.
	mu        sync.Mutex
	campaigns map[string]*inject.Result
	overheads map[string]float64
	programs  map[string]*prog.Program

	campaignSF singleflight.Group[*inject.Result]
	programSF  singleflight.Group[*prog.Program]
	overheadSF singleflight.Group[float64]

	statCampaignsRun    atomic.Int64
	statCampaignsCached atomic.Int64
	statCampaignsJoined atomic.Int64
	statProgramsBuilt   atomic.Int64
	statOverheadsRun    atomic.Int64
}

// EngineStats is a snapshot of the engine's memoization counters: how many
// campaigns were actually computed, how many were served from the in-memory
// memo, and how many concurrent callers were deduplicated onto another
// caller's in-flight computation. A sweep observer reads successive
// snapshots to report cache effectiveness.
type EngineStats struct {
	CampaignsRun    int64 // campaigns computed (inject.Campaign invoked)
	CampaignsCached int64 // served from the in-memory memo map
	CampaignsJoined int64 // joined another caller's in-flight campaign
	ProgramsBuilt   int64 // transformed programs constructed
	OverheadsRun    int64 // exec-overhead measurements computed
}

// Stats returns a snapshot of the engine's memoization counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		CampaignsRun:    e.statCampaignsRun.Load(),
		CampaignsCached: e.statCampaignsCached.Load(),
		CampaignsJoined: e.statCampaignsJoined.Load(),
		ProgramsBuilt:   e.statProgramsBuilt.Load(),
		OverheadsRun:    e.statOverheadsRun.Load(),
	}
}

// NewEngine returns an engine for the given core with default sampling.
func NewEngine(kind inject.CoreKind) *Engine {
	e := &Engine{
		Kind:      kind,
		Seed:      0xC1EA5,
		campaigns: make(map[string]*inject.Result),
		overheads: make(map[string]float64),
		programs:  make(map[string]*prog.Program),
	}
	if kind == inject.InO {
		e.Space = ino.Space()
		e.Model = power.InO()
		e.Pl = layout.Place(e.Space, layout.InOProfile())
		e.SamplesBase = 24
		e.SamplesTech = 2
	} else {
		e.Space = ooo.Space()
		e.Model = power.OoO()
		e.Pl = layout.Place(e.Space, layout.OoOProfile())
		e.SamplesBase = 3
		e.SamplesTech = 2
	}
	return e
}

// Benchmarks returns the benchmark list for this core (the paper's 18 for
// the in-order core, 11 for the out-of-order core).
func (e *Engine) Benchmarks() []*bench.Benchmark {
	if e.Kind == inject.InO {
		return bench.All()
	}
	return bench.ForOoO()
}

// Variant describes the program/checker configuration of a campaign: the
// high layers of a combination.
type Variant struct {
	ABFT    ABFTMode
	SW      []SWTechnique // applied in canonical order: CFCSS, assertions, EDDI
	AssertK swres.AssertKind
	EDDISrb bool // store-readback
	SelEDDI bool
	DFC     bool
	Monitor bool
}

// Tag returns the cache tag of the variant ("base" when empty).
func (v Variant) Tag() string {
	var parts []string
	switch v.ABFT {
	case ABFTCorr:
		parts = append(parts, "abftc")
	case ABFTDet:
		parts = append(parts, "abftd")
	}
	for _, s := range v.SW {
		switch s {
		case SWAssertions:
			parts = append(parts, "assert-"+v.AssertK.String())
		case SWCFCSS:
			parts = append(parts, "cfcss")
		case SWEDDI:
			if v.SelEDDI {
				parts = append(parts, "seddi")
			} else if v.EDDISrb {
				parts = append(parts, "eddisrb")
			} else {
				parts = append(parts, "eddi")
			}
		}
	}
	if v.DFC {
		parts = append(parts, "dfc"+versionSuffix(archres.DFCVersion))
	}
	if v.Monitor {
		parts = append(parts, "mon"+versionSuffix(archres.MonitorVersion))
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, "+")
}

// versionSuffix renders a checker version into a cache-tag suffix; version
// 1 is the empty suffix so existing campaign caches stay valid.
func versionSuffix(v int) string {
	if v <= 1 {
		return ""
	}
	return fmt.Sprintf(".v%d", v)
}

func (v Variant) has(s SWTechnique) bool {
	for _, t := range v.SW {
		if t == s {
			return true
		}
	}
	return false
}

// BuildProgram constructs the transformed program of a variant for a
// benchmark. ABFT falls back to the unprotected kernel for benchmarks the
// algorithm technique does not apply to (the paper's Sec 3.2.1 situation).
func (e *Engine) BuildProgram(b *bench.Benchmark, v Variant) (*prog.Program, error) {
	key := b.Name + "|" + v.Tag()
	e.mu.Lock()
	if p, ok := e.programs[key]; ok {
		e.mu.Unlock()
		return p, nil
	}
	e.mu.Unlock()
	p, err, _ := e.programSF.Do(key, func() (*prog.Program, error) {
		// Re-check under the flight: a caller that missed the memo right
		// before another flight finished must not rebuild.
		e.mu.Lock()
		if p, ok := e.programs[key]; ok {
			e.mu.Unlock()
			return p, nil
		}
		e.mu.Unlock()
		p, err := e.buildProgramUncached(b, v)
		if err != nil {
			return nil, err
		}
		e.statProgramsBuilt.Add(1)
		e.mu.Lock()
		e.programs[key] = p
		e.mu.Unlock()
		return p, nil
	})
	return p, err
}

// buildProgramUncached performs the actual program transformation stack.
func (e *Engine) buildProgramUncached(b *bench.Benchmark, v Variant) (*prog.Program, error) {
	var p *prog.Program
	var err error
	switch {
	case v.ABFT == ABFTCorr && abft.Supports(b.Name, abft.Correction):
		p, err = abft.Program(b.Name, abft.Correction)
	case v.ABFT == ABFTDet && abft.Supports(b.Name, abft.Detection):
		p, err = abft.Program(b.Name, abft.Detection)
	default:
		p, err = b.Program()
	}
	if err != nil {
		return nil, err
	}
	// canonical transform order: control-flow signatures on the clean CFG,
	// then assertions, then duplication
	if v.has(SWCFCSS) {
		if p, err = swres.CFCSS(p); err != nil {
			return nil, err
		}
	}
	if v.has(SWAssertions) {
		// Assertion invariants train on the alternate input set as well
		// (the paper's multi-input training), tracked through the same
		// preceding transforms so check sites line up.
		var trainers []*prog.Program
		if v.ABFT == ABFTNone {
			if alt, err := b.AltProgram(); err == nil {
				altP := alt
				if v.has(SWCFCSS) {
					altP, err = swres.CFCSS(altP)
					if err != nil {
						return nil, err
					}
				}
				trainers = append(trainers, altP)
			}
		}
		if p, err = swres.AssertionsTrained(p, trainers, v.AssertK); err != nil {
			return nil, err
		}
	}
	if v.has(SWEDDI) {
		if v.SelEDDI {
			p, err = swres.SelectiveEDDI(p)
		} else {
			p, err = swres.EDDI(p, v.EDDISrb)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// hookFactory builds the architecture-level checker chain of a variant.
func (v Variant) hookFactory() func(*prog.Program) sim.CommitHook {
	if !v.DFC && !v.Monitor {
		return nil
	}
	return func(p *prog.Program) sim.CommitHook {
		var hooks []sim.CommitHook
		if v.DFC {
			hooks = append(hooks, archres.NewDFC(p))
		}
		if v.Monitor {
			hooks = append(hooks, archres.NewMonitor(p))
		}
		if len(hooks) == 1 {
			return hooks[0]
		}
		return func(ev sim.CommitEvent) bool {
			det := false
			for _, h := range hooks {
				if h(ev) {
					det = true
				}
			}
			return det
		}
	}
}

// Campaign runs (or loads) the injection campaign for a benchmark under a
// variant. Concurrent callers asking for the same (benchmark, variant) are
// deduplicated: the campaign is computed exactly once and shared.
func (e *Engine) Campaign(b *bench.Benchmark, v Variant) (*inject.Result, error) {
	key := b.Name + "|" + v.Tag()
	e.mu.Lock()
	if r, ok := e.campaigns[key]; ok {
		e.mu.Unlock()
		e.statCampaignsCached.Add(1)
		return r, nil
	}
	e.mu.Unlock()
	r, err, joined := e.campaignSF.Do(key, func() (*inject.Result, error) {
		e.mu.Lock()
		if r, ok := e.campaigns[key]; ok {
			e.mu.Unlock()
			return r, nil
		}
		e.mu.Unlock()
		p, err := e.BuildProgram(b, v)
		if err != nil {
			return nil, err
		}
		tag := v.Tag()
		samples := e.SamplesTech
		if tag == "base" {
			samples = e.SamplesBase
		}
		cfg := inject.Config{
			Core:         e.Kind,
			Bench:        b.Name,
			Tag:          tag,
			SamplesPerFF: samples,
			Seed:         e.Seed,
		}
		// Panic isolation: a crash deep in the simulator becomes a
		// classified *resilient.PanicError shared with every joined caller
		// instead of unwinding (and killing) whichever worker happened to
		// own the singleflight.
		r, err := resilient.Safe(func() (*inject.Result, error) {
			return inject.Campaign(cfg, p, v.hookFactory())
		})
		if err != nil {
			return nil, err
		}
		e.statCampaignsRun.Add(1)
		e.mu.Lock()
		e.campaigns[key] = r
		e.mu.Unlock()
		return r, nil
	})
	if joined {
		e.statCampaignsJoined.Add(1)
	}
	return r, err
}

// Base returns the baseline (unprotected) campaign for a benchmark.
func (e *Engine) Base(b *bench.Benchmark) (*inject.Result, error) {
	return e.Campaign(b, Variant{})
}

// ExecOverhead measures the error-free execution-time overhead of a variant
// relative to the unprotected benchmark on this core. Results — including
// the zero overhead of an untransformed variant — are memoized, and
// concurrent callers share one in-flight measurement.
func (e *Engine) ExecOverhead(b *bench.Benchmark, v Variant) (float64, error) {
	key := b.Name + "|" + v.Tag()
	e.mu.Lock()
	if ov, ok := e.overheads[key]; ok {
		e.mu.Unlock()
		return ov, nil
	}
	e.mu.Unlock()
	ov, err, _ := e.overheadSF.Do(key, func() (float64, error) {
		e.mu.Lock()
		if ov, ok := e.overheads[key]; ok {
			e.mu.Unlock()
			return ov, nil
		}
		e.mu.Unlock()
		base, err := b.Program()
		if err != nil {
			return 0, err
		}
		p, err := e.BuildProgram(b, v)
		if err != nil {
			return 0, err
		}
		ov := 0.0
		if p != base {
			r0 := inject.NewCore(e.Kind, base).Run(20_000_000)
			r1 := inject.NewCore(e.Kind, p).Run(20_000_000)
			if r0.Status != prog.StatusHalted || r1.Status != prog.StatusHalted {
				return 0, fmt.Errorf("core: exec overhead run failed for %s/%s", b.Name, v.Tag())
			}
			ov = float64(r1.Steps)/float64(r0.Steps) - 1
			e.statOverheadsRun.Add(1)
		}
		e.mu.Lock()
		e.overheads[key] = ov
		e.mu.Unlock()
		return ov, nil
	})
	return ov, err
}
