// Package core is the CLEAR framework proper: the cross-layer design-space
// exploration engine. It drives fault-injection campaigns (reliability
// analysis), the layout and power models (physical design evaluation), and
// the resilience library into a single top-down methodology (paper Fig 6):
// high-level techniques (algorithm, software, architecture) are applied
// first and their residual per-flip-flop vulnerability measured; selective
// circuit/logic protection (Heuristic 1, Fig 7) then closes the gap to the
// SDC/DUE improvement target at minimum cost.
package core

import (
	"fmt"
	"strings"
	"sync"

	"clear/internal/bench"
	"clear/internal/ff"
	"clear/internal/inject"
	"clear/internal/ino"
	"clear/internal/layout"
	"clear/internal/obs"
	"clear/internal/ooo"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/resilient"
	"clear/internal/sim"
	"clear/internal/singleflight"
	"clear/internal/swres"
	"clear/internal/tcode"
	"clear/internal/technique"
)

// SWTechnique is a software-layer technique selector inside a combination.
type SWTechnique int

// Software techniques available to combinations.
const (
	SWAssertions SWTechnique = iota
	SWCFCSS
	SWEDDI
)

func (s SWTechnique) String() string {
	switch s {
	case SWAssertions:
		return "Assertions"
	case SWCFCSS:
		return "CFCSS"
	case SWEDDI:
		return "EDDI"
	}
	return "?"
}

// ABFTMode selects the algorithm-layer technique of a combination.
type ABFTMode int

// Algorithm-layer choices.
const (
	ABFTNone ABFTMode = iota
	ABFTCorr
	ABFTDet
)

// Engine evaluates resilience configurations for one core design.
type Engine struct {
	Kind  inject.CoreKind
	Space *ff.Space
	Model power.Model
	Pl    *layout.Placement

	// Campaign sampling parameters (per flip-flop).
	SamplesBase int
	SamplesTech int
	Seed        uint64

	// FaultModel selects the registered fault model campaigns run under
	// (inject.ModelNames). Empty or "ssb" is the paper's single-bit upset
	// model and keeps every campaign tag, cache file, and sweep identity in
	// its legacy unprefixed form; any other model is folded into the
	// campaign tag as a "<model>/" prefix (inject.ModelTag).
	FaultModel string

	// Finished-result memo maps (guarded by mu) paired with singleflight
	// groups: concurrent callers asking for the same uncomputed campaign,
	// program, or overhead join one in-flight computation instead of
	// silently running the same multi-second work twice.
	mu        sync.Mutex
	campaigns map[string]*inject.Result
	overheads map[string]float64
	programs  map[string]*prog.Program

	campaignSF singleflight.Group[*inject.Result]
	programSF  singleflight.Group[*prog.Program]
	overheadSF singleflight.Group[float64]

	// Inj scopes the fault-injection engine's counters (prune rate, cache
	// hits, quarantines) to this engine, so two engines sweeping in one
	// process never conflate each other's numbers. Set by NewEngine.
	Inj *inject.Injector

	// Memoization counters as registry instruments (see Stats and
	// Instrument): single atomic adds on the hot path, per-engine scoped.
	statCampaignsRun    obs.Counter
	statCampaignsCached obs.Counter
	statCampaignsJoined obs.Counter
	statProgramsBuilt   obs.Counter
	statOverheadsRun    obs.Counter
}

// EngineStats is a snapshot of the engine's memoization counters: how many
// campaigns were actually computed, how many were served from the in-memory
// memo, and how many concurrent callers were deduplicated onto another
// caller's in-flight computation. A sweep observer reads successive
// snapshots to report cache effectiveness.
type EngineStats struct {
	CampaignsRun    int64 // campaigns computed (inject.Campaign invoked)
	CampaignsCached int64 // served from the in-memory memo map
	CampaignsJoined int64 // joined another caller's in-flight campaign
	ProgramsBuilt   int64 // transformed programs constructed
	OverheadsRun    int64 // exec-overhead measurements computed
}

// Stats returns a snapshot of the engine's memoization counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		CampaignsRun:    e.statCampaignsRun.Value(),
		CampaignsCached: e.statCampaignsCached.Value(),
		CampaignsJoined: e.statCampaignsJoined.Value(),
		ProgramsBuilt:   e.statProgramsBuilt.Value(),
		OverheadsRun:    e.statOverheadsRun.Value(),
	}
}

// Instrument publishes the engine's memoization counters and its injection
// scope's counters into reg, prefixed by the lowercase core kind:
// "core.ino.campaigns_run", "inject.ino.injections.pruned", and so on
// (DESIGN.md §10 lists the full instrument name contract).
func (e *Engine) Instrument(reg *obs.Registry) {
	kind := strings.ToLower(e.Kind.String())
	prefix := "core." + kind + "."
	reg.Attach(prefix+"campaigns_run", &e.statCampaignsRun)
	reg.Attach(prefix+"campaigns_cached", &e.statCampaignsCached)
	reg.Attach(prefix+"campaigns_joined", &e.statCampaignsJoined)
	reg.Attach(prefix+"programs_built", &e.statProgramsBuilt)
	reg.Attach(prefix+"overheads_run", &e.statOverheadsRun)
	e.Inj.Instrument(reg, "inject."+kind+".")
}

// NewEngine returns an engine for the given core with default sampling.
func NewEngine(kind inject.CoreKind) *Engine {
	e := &Engine{
		Kind:      kind,
		Seed:      0xC1EA5,
		Inj:       inject.NewInjector(),
		campaigns: make(map[string]*inject.Result),
		overheads: make(map[string]float64),
		programs:  make(map[string]*prog.Program),
	}
	if kind == inject.InO {
		e.Space = ino.Space()
		e.Model = power.InO()
		e.Pl = layout.Place(e.Space, layout.InOProfile())
		e.SamplesBase = 24
		e.SamplesTech = 2
	} else {
		e.Space = ooo.Space()
		e.Model = power.OoO()
		e.Pl = layout.Place(e.Space, layout.OoOProfile())
		e.SamplesBase = 3
		e.SamplesTech = 2
	}
	return e
}

// Benchmarks returns the benchmark list for this core (the paper's 18 for
// the in-order core, 11 for the out-of-order core).
func (e *Engine) Benchmarks() []*bench.Benchmark {
	if e.Kind == inject.InO {
		return bench.All()
	}
	return bench.ForOoO()
}

// Variant describes the program/checker configuration of a campaign: the
// high layers of a combination.
type Variant struct {
	ABFT    ABFTMode
	SW      []SWTechnique // canonicalized to registry order by Name/Tag
	AssertK swres.AssertKind
	EDDISrb bool // store-readback
	SelEDDI bool
	DFC     bool
	Monitor bool
	// Extra names third-party registered techniques active in the variant
	// (the built-ins use the concrete fields above).
	Extra []string
}

// Tag returns the campaign cache tag of the variant ("base" when empty):
// the frozen fragments of the active campaign-affecting techniques, in
// registry-derived canonical tag order.
func (v Variant) Tag() string { return v.tagOf() }

func (v Variant) has(s SWTechnique) bool {
	for _, t := range v.SW {
		if t == s {
			return true
		}
	}
	return false
}

// BuildProgram constructs the transformed program of a variant for a
// benchmark. ABFT falls back to the unprotected kernel for benchmarks the
// algorithm technique does not apply to (the paper's Sec 3.2.1 situation).
func (e *Engine) BuildProgram(b *bench.Benchmark, v Variant) (*prog.Program, error) {
	key := b.Name + "|" + v.Tag()
	e.mu.Lock()
	if p, ok := e.programs[key]; ok {
		e.mu.Unlock()
		return p, nil
	}
	e.mu.Unlock()
	p, err, _ := e.programSF.Do(key, func() (*prog.Program, error) {
		// Re-check under the flight: a caller that missed the memo right
		// before another flight finished must not rebuild.
		e.mu.Lock()
		if p, ok := e.programs[key]; ok {
			e.mu.Unlock()
			return p, nil
		}
		e.mu.Unlock()
		p, err := e.buildProgramUncached(b, v)
		if err != nil {
			return nil, err
		}
		if tcode.Enabled() {
			// Pre-warm the threaded-code translation inside the flight:
			// every campaign sharing this (benchmark, variant) program gets
			// compiled execution without paying translation again.
			p.Threaded()
		}
		e.statProgramsBuilt.Add(1)
		e.mu.Lock()
		e.programs[key] = p
		e.mu.Unlock()
		return p, nil
	})
	return p, err
}

// buildProgramUncached performs the actual program transformation stack:
// the variant's active Transformers apply in canonical registry order
// (algorithm kernels first, then control-flow signatures on the clean CFG,
// then assertions, then duplication).
func (e *Engine) buildProgramUncached(b *bench.Benchmark, v Variant) (*prog.Program, error) {
	p, err := b.Program()
	if err != nil {
		return nil, err
	}
	coreName := e.Kind.String()
	opt := v.options()
	reg := technique.Default()
	// Multi-input training (assertions) replays the transforms preceding the
	// current one on the alternate-input program so check sites line up; an
	// active algorithm-layer technique replaces the kernel, so no alternate
	// input exists for it and training is single-input.
	algActive := false
	for _, t := range reg.Techniques() {
		if t.Layer() == technique.Algorithm && v.activeName(t.Name()) {
			algActive = true
			break
		}
	}
	var applied []technique.Transformer
	for _, t := range reg.Techniques() {
		if !v.activeName(t.Name()) {
			continue
		}
		tr, ok := t.(technique.Transformer)
		if !ok {
			continue
		}
		env := &technique.Env{Core: coreName, Bench: b.Name, Opt: opt}
		if !algActive {
			prior := applied // snapshot: transforms preceding this one
			env.AltTrainer = func() (*prog.Program, error) {
				alt, err := b.AltProgram()
				if err != nil {
					return nil, nil // benchmark has no alternate input
				}
				for _, pt := range prior {
					alt, err = pt.Transform(alt, &technique.Env{Core: coreName, Bench: b.Name, Opt: opt})
					if err != nil {
						return nil, err
					}
				}
				return alt, nil
			}
		}
		if p, err = tr.Transform(p, env); err != nil {
			return nil, err
		}
		applied = append(applied, tr)
	}
	return p, nil
}

// hookFactory builds the architecture-level checker chain of a variant from
// the registry's Hookers: each active checker sees the full commit stream
// and detections are ORed.
func (v Variant) hookFactory() func(*prog.Program) sim.CommitHook {
	var hookers []technique.Hooker
	for _, t := range technique.Default().Techniques() {
		if !v.activeName(t.Name()) {
			continue
		}
		if h, ok := t.(technique.Hooker); ok {
			hookers = append(hookers, h)
		}
	}
	if len(hookers) == 0 {
		return nil
	}
	return func(p *prog.Program) sim.CommitHook {
		hooks := make([]sim.CommitHook, len(hookers))
		for i, h := range hookers {
			hooks[i] = h.Hook(p)
		}
		if len(hooks) == 1 {
			return hooks[0]
		}
		return func(ev sim.CommitEvent) bool {
			det := false
			for _, h := range hooks {
				if h(ev) {
					det = true
				}
			}
			return det
		}
	}
}

// Campaign runs (or loads) the injection campaign for a benchmark under a
// variant. Concurrent callers asking for the same (benchmark, variant) are
// deduplicated: the campaign is computed exactly once and shared.
func (e *Engine) Campaign(b *bench.Benchmark, v Variant) (*inject.Result, error) {
	key := b.Name + "|" + inject.ModelTag(e.FaultModel, v.Tag())
	e.mu.Lock()
	if r, ok := e.campaigns[key]; ok {
		e.mu.Unlock()
		e.statCampaignsCached.Add(1)
		return r, nil
	}
	e.mu.Unlock()
	r, err, joined := e.campaignSF.Do(key, func() (*inject.Result, error) {
		e.mu.Lock()
		if r, ok := e.campaigns[key]; ok {
			e.mu.Unlock()
			return r, nil
		}
		e.mu.Unlock()
		p, err := e.BuildProgram(b, v)
		if err != nil {
			return nil, err
		}
		tag := v.Tag()
		samples := e.SamplesTech
		if tag == "base" {
			samples = e.SamplesBase
		}
		cfg := inject.Config{
			Core:         e.Kind,
			Bench:        b.Name,
			Tag:          inject.ModelTag(e.FaultModel, tag),
			SamplesPerFF: samples,
			Seed:         e.Seed,
		}
		// Panic isolation: a crash deep in the simulator becomes a
		// classified *resilient.PanicError shared with every joined caller
		// instead of unwinding (and killing) whichever worker happened to
		// own the singleflight.
		r, err := resilient.Safe(func() (*inject.Result, error) {
			return e.Inj.Campaign(cfg, p, v.hookFactory())
		})
		if err != nil {
			return nil, err
		}
		e.statCampaignsRun.Add(1)
		e.mu.Lock()
		e.campaigns[key] = r
		e.mu.Unlock()
		return r, nil
	})
	if joined {
		e.statCampaignsJoined.Add(1)
	}
	return r, err
}

// Base returns the baseline (unprotected) campaign for a benchmark.
func (e *Engine) Base(b *bench.Benchmark) (*inject.Result, error) {
	return e.Campaign(b, Variant{})
}

// SEMU runs a pair-injection (single-event multiple-upset) campaign for a
// benchmark under a variant: samplesPerPair uniform-random cycles for every
// flip-flop pair in pairs (typically the layout's adjacent pairs — the ones
// a single particle can strike). The work runs through the engine's scoped
// injector, so SEMU campaigns appear in the per-engine inject.* counters
// exactly like single-flip campaigns.
func (e *Engine) SEMU(b *bench.Benchmark, v Variant, pairs [][2]int, samplesPerPair int) (*inject.PairResult, error) {
	p, err := e.BuildProgram(b, v)
	if err != nil {
		return nil, err
	}
	cfg := inject.PairConfig{
		Core:           e.Kind,
		Bench:          b.Name,
		Tag:            v.Tag(),
		SamplesPerPair: samplesPerPair,
		Seed:           e.Seed,
	}
	return resilient.Safe(func() (*inject.PairResult, error) {
		return e.Inj.RunPairs(cfg, p, pairs, v.hookFactory())
	})
}

// ExecOverhead measures the error-free execution-time overhead of a variant
// relative to the unprotected benchmark on this core. Results — including
// the zero overhead of an untransformed variant — are memoized, and
// concurrent callers share one in-flight measurement.
func (e *Engine) ExecOverhead(b *bench.Benchmark, v Variant) (float64, error) {
	key := b.Name + "|" + v.Tag()
	e.mu.Lock()
	if ov, ok := e.overheads[key]; ok {
		e.mu.Unlock()
		return ov, nil
	}
	e.mu.Unlock()
	ov, err, _ := e.overheadSF.Do(key, func() (float64, error) {
		e.mu.Lock()
		if ov, ok := e.overheads[key]; ok {
			e.mu.Unlock()
			return ov, nil
		}
		e.mu.Unlock()
		base, err := b.Program()
		if err != nil {
			return 0, err
		}
		p, err := e.BuildProgram(b, v)
		if err != nil {
			return 0, err
		}
		ov := 0.0
		if p != base {
			r0 := inject.NewCore(e.Kind, base).Run(20_000_000)
			r1 := inject.NewCore(e.Kind, p).Run(20_000_000)
			if r0.Status != prog.StatusHalted || r1.Status != prog.StatusHalted {
				return 0, fmt.Errorf("core: exec overhead run failed for %s/%s", b.Name, v.Tag())
			}
			ov = float64(r1.Steps)/float64(r0.Steps) - 1
			e.statOverheadsRun.Add(1)
		}
		e.mu.Lock()
		e.overheads[key] = ov
		e.mu.Unlock()
		return ov, nil
	})
	return ov, err
}
