package core

import (
	"fmt"
	"sort"
	"strings"

	"clear/internal/inject"
	"clear/internal/stack"
)

// Structure-granularity selective hardening: instead of the flip-flop-level
// Fig 7 loop (SelectiveHarden), protect whole pipeline structures — the
// units an attribution analysis ranks as most vulnerable. Hardening at
// structure granularity is what a designer can actually floorplan (swap the
// ROB's latch macro, parity-protect the store queue), and the resulting
// cost points let the sweep check whether unit-level insertion stays on or
// near the flip-flop-level Pareto frontier.

// SelectiveHardening protects every flip-flop of the topK most vulnerable
// functional units — ranked by the unit's summed failing-outcome count
// under the metric (SDC: OMM; DUE: UT+Hang+ED), ties broken by unit name —
// with the Heuristic 1 cell choice used by SelectiveHarden. It returns the
// evaluated cost point in the (improvement, energy) plane, the concrete
// plan, and the protected unit names in rank order. A topK at or beyond the
// unit count protects the whole core; topK <= 0 protects nothing (the
// baseline point, improvement 1 at the recovery unit's energy).
func (e *Engine) SelectiveHardening(res *inject.Result, opt HardenOptions, metric Metric, topK int) (ParetoPoint, *Plan, []string) {
	// Rank units by summed vulnerability under the metric.
	type unitVuln struct {
		name string
		fail float64
	}
	byUnit := map[string]*unitVuln{}
	units := e.Space.Units()
	for _, u := range units {
		byUnit[u] = &unitVuln{name: u}
	}
	for bit, st := range res.PerFF {
		u := byUnit[e.Space.UnitOf(bit)]
		if u == nil {
			continue
		}
		if metric == SDC {
			u.fail += float64(st.OMM)
		} else {
			u.fail += float64(st.UT) + float64(st.Hang) + float64(st.ED)
		}
	}
	ranked := make([]unitVuln, 0, len(units))
	for _, u := range units {
		ranked = append(ranked, *byUnit[u])
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].fail != ranked[j].fail {
			return ranked[i].fail > ranked[j].fail
		}
		return ranked[i].name < ranked[j].name
	})
	if topK < 0 {
		topK = 0
	}
	if topK > len(ranked) {
		topK = len(ranked)
	}
	chosen := make(map[string]bool, topK)
	names := make([]string, 0, topK)
	for _, u := range ranked[:topK] {
		chosen[u.name] = true
		names = append(names, u.name)
	}

	// Protect every flip-flop of the chosen units with the Heuristic 1 cell.
	plan := NewPlan(len(res.PerFF), opt.Recovery)
	if opt.DICE || opt.Parity || opt.EDS {
		for bit := range plan.Assign {
			if chosen[e.Space.UnitOf(bit)] {
				plan.Assign[bit] = e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
			}
		}
	}

	resid := e.Evaluate(res, plan)
	sdcR, dueR := rates(res, resid)
	gamma := opt.FixedGamma * (1 + e.PlanFFOverhead(plan))
	var imp float64
	if metric == SDC {
		imp = stack.Improvement(opt.BaseSDCRate, sdcR, gamma)
	} else {
		imp = stack.Improvement(opt.BaseDUERate, dueR, gamma)
	}
	pt := ParetoPoint{
		Name:        fmt.Sprintf("selective top-%d (%s)", topK, strings.Join(names, "+")),
		Improvement: imp,
		Energy:      e.PlanCost(plan).Energy(),
	}
	return pt, plan, names
}
