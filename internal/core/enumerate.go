package core

import (
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/swres"
)

// Enumeration of the 586 valid cross-layer combinations (paper Table 18).
//
// Per core, the library techniques form a base set; combinations are:
//   - no recovery: every non-empty subset of the base set;
//   - flush/RoB recovery: non-empty subsets of the techniques whose
//     detections that recovery can replay (circuit/logic detection, plus
//     the monitor core on OoO — LEAP-DICE is implicitly added by
//     Heuristic 1 for unrecoverable flip-flops);
//   - IR/EIR recovery: non-empty subsets of the detection techniques with
//     bounded latency (EDS, parity, DFC — and the monitor core on OoO);
//   - ABFT correction composes with all of the above; ABFT detection has
//     unbounded detection latency, so it only composes with the
//     no-recovery combinations; each ABFT flavor also stands alone.
//
// InO: 127 + 3 + 14 = 144; ×2 for ABFT-correction stacking + 127 ABFT-
// detection stacking + 2 standalone = 417. OoO: 31 + 7 + 30 = 68; ×2 + 31
// + 2 = 169. Total 586.

// baseTechnique is an element of the per-core base set.
type baseTechnique int

const (
	tDICE baseTechnique = iota
	tEDS
	tParity
	tDFC
	tMonitor
	tAssert
	tCFCSS
	tEDDI
)

func baseSet(kind inject.CoreKind) []baseTechnique {
	if kind == inject.InO {
		return []baseTechnique{tDICE, tEDS, tParity, tDFC, tAssert, tCFCSS, tEDDI}
	}
	return []baseTechnique{tDICE, tEDS, tParity, tDFC, tMonitor}
}

// comboFromSubset builds a Combo from a subset bitmask over set.
func comboFromSubset(set []baseTechnique, mask int, rec recovery.Kind, ab ABFTMode) Combo {
	c := Combo{Recovery: rec}
	c.Variant.ABFT = ab
	c.Variant.AssertK = swres.AssertCombined
	c.Variant.EDDISrb = true
	for i, t := range set {
		if mask&(1<<i) == 0 {
			continue
		}
		switch t {
		case tDICE:
			c.DICE = true
		case tEDS:
			c.EDS = true
		case tParity:
			c.Parity = true
		case tDFC:
			c.Variant.DFC = true
		case tMonitor:
			c.Variant.Monitor = true
		case tAssert:
			c.Variant.SW = append(c.Variant.SW, SWAssertions)
		case tCFCSS:
			c.Variant.SW = append(c.Variant.SW, SWCFCSS)
		case tEDDI:
			c.Variant.SW = append(c.Variant.SW, SWEDDI)
		}
	}
	// canonical software order: CFCSS, assertions, EDDI
	ordered := make([]SWTechnique, 0, len(c.Variant.SW))
	for _, want := range []SWTechnique{SWCFCSS, SWAssertions, SWEDDI} {
		for _, s := range c.Variant.SW {
			if s == want {
				ordered = append(ordered, s)
			}
		}
	}
	c.Variant.SW = ordered
	return c
}

func subsetsOf(set []baseTechnique, allowed map[baseTechnique]bool, rec recovery.Kind, ab ABFTMode) []Combo {
	// indices of allowed techniques
	var idx []int
	for i, t := range set {
		if allowed == nil || allowed[t] {
			idx = append(idx, i)
		}
	}
	var out []Combo
	for m := 1; m < 1<<len(idx); m++ {
		mask := 0
		for j, i := range idx {
			if m&(1<<j) != 0 {
				mask |= 1 << i
			}
		}
		out = append(out, comboFromSubset(set, mask, rec, ab))
	}
	return out
}

// Enumerate returns the valid cross-layer combinations for a core,
// reproducing the Table 18 counting.
func Enumerate(kind inject.CoreKind) []Combo {
	set := baseSet(kind)
	var combos []Combo

	// no recovery: all non-empty subsets
	noRec := subsetsOf(set, nil, recovery.None, ABFTNone)

	// flush (InO) / RoB (OoO): subsets of the replayable detectors
	var quickRec []Combo
	if kind == inject.InO {
		quickRec = subsetsOf(set, map[baseTechnique]bool{tEDS: true, tParity: true},
			recovery.Flush, ABFTNone)
	} else {
		quickRec = subsetsOf(set, map[baseTechnique]bool{tEDS: true, tParity: true, tMonitor: true},
			recovery.RoB, ABFTNone)
	}

	// IR / EIR: subsets of bounded-latency detectors
	var replay []Combo
	detectors := map[baseTechnique]bool{tEDS: true, tParity: true, tDFC: true}
	if kind == inject.OoO {
		detectors[tMonitor] = true
	}
	for _, rec := range []recovery.Kind{recovery.IR, recovery.EIR} {
		replay = append(replay, subsetsOf(set, detectors, rec, ABFTNone)...)
	}

	base := append(append(append([]Combo{}, noRec...), quickRec...), replay...)

	// ABFT standalone
	combos = append(combos,
		Combo{Variant: Variant{ABFT: ABFTCorr}},
		Combo{Variant: Variant{ABFT: ABFTDet}},
	)
	// plain combinations
	combos = append(combos, base...)
	// ABFT correction stacks on everything
	for _, c := range base {
		c.Variant.ABFT = ABFTCorr
		combos = append(combos, c)
	}
	// ABFT detection stacks only on the no-recovery combinations
	for _, c := range noRec {
		c.Variant.ABFT = ABFTDet
		combos = append(combos, c)
	}
	return combos
}

// EnumerationCounts reproduces the Table 18 row counts for a core.
type EnumerationCounts struct {
	NoRec, QuickRec, Replay int
	ABFTAlone               int
	ABFTCorrStack           int
	ABFTDetStack            int
	Total                   int
}

// CountCombos tallies the enumeration per Table 18's rows.
func CountCombos(kind inject.CoreKind) EnumerationCounts {
	set := baseSet(kind)
	noRec := len(subsetsOf(set, nil, recovery.None, ABFTNone))
	var quick int
	if kind == inject.InO {
		quick = len(subsetsOf(set, map[baseTechnique]bool{tEDS: true, tParity: true}, recovery.Flush, ABFTNone))
	} else {
		quick = len(subsetsOf(set, map[baseTechnique]bool{tEDS: true, tParity: true, tMonitor: true}, recovery.RoB, ABFTNone))
	}
	det := map[baseTechnique]bool{tEDS: true, tParity: true, tDFC: true}
	if kind == inject.OoO {
		det[tMonitor] = true
	}
	replay := 2 * len(subsetsOf(set, det, recovery.IR, ABFTNone))
	base := noRec + quick + replay
	c := EnumerationCounts{
		NoRec: noRec, QuickRec: quick, Replay: replay,
		ABFTAlone:     2,
		ABFTCorrStack: base,
		ABFTDetStack:  noRec,
	}
	c.Total = base + 2 + base + noRec
	return c
}
