package core

import (
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/swres"
	"clear/internal/technique"
)

// Enumeration of the 586 valid cross-layer combinations (paper Table 18),
// driven entirely by the technique registry.
//
// Per core, the registered non-algorithm techniques applicable to the core
// form a base set; combinations are:
//   - no recovery: every non-empty subset of the base set;
//   - each applicable recovery mechanism: non-empty subsets of the base
//     techniques whose detections that recovery can replay (the registry's
//     RecoveryCompat declarations — circuit/logic detection everywhere,
//     plus the monitor core for RoB/IR/EIR and DFC for IR/EIR; LEAP-DICE
//     is implicitly added by Heuristic 1 for unrecoverable flip-flops);
//   - each algorithm-layer technique stands alone and stacks on every base
//     combination whose recovery it is compatible with (ABFT correction:
//     all; ABFT detection has unbounded detection latency, so it stacks
//     only on the no-recovery combinations).
//
// InO: 127 + 3 + 14 = 144; ×2 for ABFT-correction stacking + 127 ABFT-
// detection stacking + 2 standalone = 417. OoO: 31 + 7 + 30 = 68; ×2 + 31
// + 2 = 169. Total 586. A third-party registered technique enlarges the
// base set (or the algorithm list) the same way.

// enumSets resolves the registry into the enumeration ingredients for a
// core under a filter: the algorithm-layer techniques, the base set, and
// the applicable recovery kinds, all in canonical registry order.
func enumSets(kind inject.CoreKind, f *technique.Filter) (algs, base []technique.Technique, recs []recovery.Kind) {
	coreName := kind.String()
	reg := technique.Default()
	for _, t := range reg.Techniques() {
		if !t.AppliesTo(coreName) || !f.Allows(t.Name()) {
			continue
		}
		if t.Layer() == technique.Algorithm {
			algs = append(algs, t)
		} else {
			base = append(base, t)
		}
	}
	for _, rt := range reg.Recoveries() {
		if rt.AppliesTo(coreName) {
			recs = append(recs, rt.Kind())
		}
	}
	return algs, base, recs
}

// comboFromMask builds a Combo from a subset bitmask over the base set,
// optionally stacking an algorithm-layer technique on top.
func comboFromMask(base []technique.Technique, mask int, rec recovery.Kind, alg technique.Technique) Combo {
	c := Combo{Recovery: rec}
	c.Variant.AssertK = swres.AssertCombined
	c.Variant.EDDISrb = true
	if alg != nil {
		c.addTechnique(alg)
	}
	for i, t := range base {
		if mask&(1<<i) != 0 {
			c.addTechnique(t)
		}
	}
	return c
}

// subsetMasks returns the non-empty subset bitmasks over the base
// techniques compatible with a recovery kind on a core.
func subsetMasks(base []technique.Technique, rec recovery.Kind, coreName string) []int {
	var idx []int
	for i, t := range base {
		if technique.CompatibleWith(t, rec, coreName) {
			idx = append(idx, i)
		}
	}
	var out []int
	for m := 1; m < 1<<len(idx); m++ {
		mask := 0
		for j, i := range idx {
			if m&(1<<j) != 0 {
				mask |= 1 << i
			}
		}
		out = append(out, mask)
	}
	return out
}

// Enumerate returns the valid cross-layer combinations for a core,
// reproducing the Table 18 counting.
func Enumerate(kind inject.CoreKind) []Combo { return EnumerateWith(kind, nil) }

// EnumerateWith enumerates the combinations buildable from the techniques a
// filter admits (nil filters nothing). Recovery mechanisms always
// participate; they attach to whichever admitted detectors drive them.
func EnumerateWith(kind inject.CoreKind, f *technique.Filter) []Combo {
	algs, base, recs := enumSets(kind, f)
	coreName := kind.String()

	type group struct {
		rec   recovery.Kind
		masks []int
	}
	groups := []group{{recovery.None, subsetMasks(base, recovery.None, coreName)}}
	for _, rk := range recs {
		groups = append(groups, group{rk, subsetMasks(base, rk, coreName)})
	}

	var combos []Combo
	// algorithm techniques standalone (zero Variant knobs, matching the
	// paper's bare ABFT design points)
	for _, a := range algs {
		c := Combo{}
		c.addTechnique(a)
		combos = append(combos, c)
	}
	// plain combinations over the base set
	for _, g := range groups {
		for _, m := range g.masks {
			combos = append(combos, comboFromMask(base, m, g.rec, nil))
		}
	}
	// algorithm techniques stack on the compatible-recovery combinations
	for _, a := range algs {
		for _, g := range groups {
			if !technique.CompatibleWith(a, g.rec, coreName) {
				continue
			}
			for _, m := range g.masks {
				combos = append(combos, comboFromMask(base, m, g.rec, a))
			}
		}
	}
	return combos
}

// EnumerateForModel enumerates the combinations a filter admits that
// remain meaningful under a fault model: a combination is dropped when any
// of its active techniques is declared ineffective against the model
// (technique.ModelCompat) — e.g. under "set", LEAP-DICE and parity latch
// the transient like an unprotected flip-flop, so the surviving design
// space is the Razor-like EDS plus the architecture/software/algorithm
// techniques (the Azambuja-style software-only detection study). The ssb
// default (or empty model) filters nothing.
func EnumerateForModel(kind inject.CoreKind, f *technique.Filter, model string) []Combo {
	all := EnumerateWith(kind, f)
	if model == "" || model == inject.DefaultModel {
		return all
	}
	out := all[:0]
	for _, c := range all {
		ok := true
		for _, t := range c.ActiveTechniques() {
			if !technique.AppliesToModel(t, model) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// EnumerationCounts reproduces the Table 18 row counts for a core.
type EnumerationCounts struct {
	NoRec, QuickRec, Replay int
	ABFTAlone               int
	ABFTCorrStack           int
	ABFTDetStack            int
	Total                   int
}

// CountCombos tallies the enumeration per Table 18's rows.
func CountCombos(kind inject.CoreKind) EnumerationCounts {
	algs, base, recs := enumSets(kind, nil)
	coreName := kind.String()
	c := EnumerationCounts{
		NoRec:     len(subsetMasks(base, recovery.None, coreName)),
		ABFTAlone: len(algs),
	}
	for _, rk := range recs {
		n := len(subsetMasks(base, rk, coreName))
		if rk == recovery.Flush || rk == recovery.RoB {
			c.QuickRec += n
		} else {
			c.Replay += n
		}
	}
	baseTotal := c.NoRec + c.QuickRec + c.Replay
	c.Total = baseTotal + c.ABFTAlone
	for _, a := range algs {
		stacked := 0
		for _, rk := range append([]recovery.Kind{recovery.None}, recs...) {
			if technique.CompatibleWith(a, rk, coreName) {
				stacked += len(subsetMasks(base, rk, coreName))
			}
		}
		switch a.Name() {
		case technique.NameABFTCorrection:
			c.ABFTCorrStack = stacked
		case technique.NameABFTDetection:
			c.ABFTDetStack = stacked
		}
		c.Total += stacked
	}
	return c
}
