package core

import (
	"clear/internal/circuitlib"
	"clear/internal/inject"
	"clear/internal/parity"
	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/technique"
)

// CellKind is the circuit/logic protection applied to one flip-flop.
type CellKind uint8

// Per-flip-flop protection choices.
const (
	CellNone CellKind = iota
	CellDICE
	CellLHL
	CellCtrlEco // LEAP-ctrl operating in economy mode
	CellCtrlRes // LEAP-ctrl operating in resilient mode
	CellParity
	CellEDS
)

// Plan is a concrete low-level implementation: a protection choice per
// flip-flop plus the attached hardware recovery.
type Plan struct {
	Assign   []CellKind
	Recovery recovery.Kind
}

// NewPlan returns an all-unprotected plan for n flip-flops.
func NewPlan(n int, rec recovery.Kind) *Plan {
	return &Plan{Assign: make([]CellKind, n), Recovery: rec}
}

// Residuals is the analytically composed outcome of a campaign under a
// plan: expected error counts in the protected design, per Sec 2.1
// semantics. Detection without recovery turns all errors in a protected
// flip-flop (even ones that would have vanished) into detected events.
type Residuals struct {
	SDC float64 // expected OMM count
	DUE float64 // expected UT+Hang+ED count
}

// serOf returns the soft-error-rate residual factor of a correcting cell.
func serOf(c CellKind) float64 {
	switch c {
	case CellDICE, CellCtrlRes:
		return circuitlib.Get(circuitlib.LEAPDICE).SERRatio
	case CellLHL:
		return circuitlib.Get(circuitlib.LHL).SERRatio
	}
	return 1
}

// ffProtector resolves a registered technique's FFProtector capability
// (nil when not registered or not a per-flip-flop technique).
func ffProtector(name string) technique.FFProtector {
	t, err := technique.Default().Lookup(name)
	if err != nil {
		return nil
	}
	p, _ := t.(technique.FFProtector)
	return p
}

// Evaluate composes per-flip-flop campaign statistics with a plan.
//
// The residual composition rules live on the registered techniques'
// FFProtector implementations (matching the paper's semantics):
//   - hardening cells scale every error class by the cell's SER ratio;
//   - parity/EDS with recovery that can recover the flip-flop suppress all
//     errors (detect + replay);
//   - parity/EDS without usable recovery detect every flip: SDC goes to
//     zero but every injected error becomes ED (a DUE);
//   - unprotected flip-flops contribute their measured counts.
//
// The LEAP-ctrl / LHL cell variants are plan-local alternatives of the
// LEAP-DICE technique and keep their SER-ratio math here.
func (e *Engine) Evaluate(res *inject.Result, plan *Plan) Residuals {
	var out Residuals
	coreName := e.Kind.String()
	prot := map[CellKind]technique.FFProtector{
		CellDICE:   ffProtector(technique.NameLEAPDICE),
		CellParity: ffProtector(technique.NameParity),
		CellEDS:    ffProtector(technique.NameEDS),
	}
	for bit, st := range res.PerFF {
		sdc := float64(st.OMM)
		due := float64(st.UT) + float64(st.Hang) + float64(st.ED)
		switch c := plan.Assign[bit]; c {
		case CellNone, CellCtrlEco:
			out.SDC += sdc
			out.DUE += due
		case CellLHL, CellCtrlRes:
			f := serOf(c)
			out.SDC += sdc * f
			out.DUE += due * f
		case CellDICE, CellParity, CellEDS:
			p := prot[c]
			if p == nil {
				// technique unregistered out from under the plan: count the
				// flip-flop as unprotected rather than guessing
				out.SDC += sdc
				out.DUE += due
				continue
			}
			recovered := !p.Corrects() && plan.Recovery != recovery.None &&
				recovery.Recoverable(plan.Recovery, coreName, e.Space, bit)
			rs, rd := p.Residual(float64(st.N), sdc, due, recovered)
			out.SDC += rs
			out.DUE += rd
		}
	}
	return out
}

// BaseRate returns a campaign's per-sample error rate for a metric in the
// unprotected design (the Eq. 1 numerator; for DUE this is UT+Hang, as no
// detection technique is present in the baseline).
func BaseRate(r *inject.Result, m Metric) float64 {
	n := float64(r.Totals.N)
	if n == 0 {
		return 0
	}
	if m == SDC {
		return float64(r.Totals.SDC()) / n
	}
	return float64(r.Totals.UT+r.Totals.Hang) / n
}

// counts tallies plan cells by kind.
func (p *Plan) counts() map[CellKind]int {
	m := map[CellKind]int{}
	for _, c := range p.Assign {
		if c != CellNone {
			m[c]++
		}
	}
	return m
}

// bitsOf returns the flip-flops assigned a given cell kind.
func (p *Plan) bitsOf(kind CellKind) []int {
	var out []int
	for bit, c := range p.Assign {
		if c == kind {
			out = append(out, bit)
		}
	}
	return out
}

// ParityGrouping forms the optimized parity implementation over the plan's
// parity-protected flip-flops.
func (e *Engine) ParityGrouping(p *Plan) parity.Grouping {
	bits := p.bitsOf(CellParity)
	if len(bits) == 0 {
		return parity.Grouping{}
	}
	return parity.Group(parity.OptimizedH, 16, e.Space, e.Pl, nil, bits)
}

// PlanCost returns the hardware cost of a plan: cell swaps, parity trees,
// EDS aggregation, and the recovery unit.
func (e *Engine) PlanCost(p *Plan) power.Cost {
	counts := p.counts()
	harden := map[circuitlib.FFType]int{}
	if n := counts[CellDICE]; n > 0 {
		harden[circuitlib.LEAPDICE] = n
	}
	if n := counts[CellLHL]; n > 0 {
		harden[circuitlib.LHL] = n
	}
	if n := counts[CellCtrlEco]; n > 0 {
		harden[circuitlib.LEAPCtrlEconomy] = n
	}
	if n := counts[CellCtrlRes]; n > 0 {
		harden[circuitlib.LEAPCtrlResilient] = n
	}
	cost := e.Model.HardenFFs(harden)
	if counts[CellParity] > 0 {
		cost = cost.Plus(e.Model.ParityCost(e.ParityGrouping(p), e.Pl))
	}
	if bits := p.bitsOf(CellEDS); len(bits) > 0 {
		cost = cost.Plus(e.Model.EDSCost(bits, e.Pl))
	}
	if p.Recovery != recovery.None {
		cost = cost.Plus(recovery.Cost(p.Recovery, e.Kind.String()))
	}
	return cost
}

// PlanFFOverhead returns the plan's γ flip-flop overhead: parity pipeline
// and error-indication flip-flops plus recovery buffers, relative to the
// core's flip-flop count.
func (e *Engine) PlanFFOverhead(p *Plan) float64 {
	over := technique.RecoveryFFOverhead(p.Recovery, e.Kind.String())
	if g := e.ParityGrouping(p); len(g.Groups) > 0 {
		over += float64(g.NumPipelineFFs()+g.ErrorFFs()) / float64(e.Model.NumFFs)
	}
	if n := len(p.bitsOf(CellEDS)); n > 0 {
		// EDS error aggregation registers
		over += float64(n/32+1) / float64(e.Model.NumFFs)
	}
	return over
}
