package core

import (
	"testing"
	"testing/quick"
)

func TestParetoFrontier(t *testing.T) {
	pts := []ParetoPoint{
		{"a", 2, 0.02},
		{"b", 5, 0.04},
		{"c", 5, 0.10}, // dominated by b
		{"d", 50, 0.06},
		{"e", 10, 0.08}, // dominated by d
		{"f", 500, 0.09},
	}
	fr := ParetoFrontier(pts)
	want := []string{"a", "b", "d", "f"}
	if len(fr) != len(want) {
		t.Fatalf("frontier %v", fr)
	}
	for i, w := range want {
		if fr[i].Name != w {
			t.Fatalf("frontier[%d] = %s, want %s", i, fr[i].Name, w)
		}
	}
	if ParetoFrontier(nil) != nil {
		t.Fatal("empty frontier")
	}
}

func TestCompetitive(t *testing.T) {
	fr := ParetoFrontier([]ParetoPoint{
		{"a", 2, 0.02}, {"b", 50, 0.06}, {"c", 500, 0.09},
	})
	if Competitive(fr, 10, 0.07) {
		t.Fatal("10x @ 7% is dominated by 50x @ 6%")
	}
	if !Competitive(fr, 50, 0.05) {
		t.Fatal("50x @ 5% beats the frontier")
	}
	if !Competitive(fr, 1000, 0.50) {
		t.Fatal("beyond-frontier improvement is competitive at any cost")
	}
}

// Properties: frontier members are non-dominated and come from the input;
// every input point is dominated by (or is) a frontier point.
func TestParetoProperties(t *testing.T) {
	prop := func(raw [12]struct {
		Imp uint8
		En  uint8
	}) bool {
		var pts []ParetoPoint
		for i, r := range raw {
			pts = append(pts, ParetoPoint{
				Name:        string(rune('a' + i)),
				Improvement: float64(r.Imp%50) + 1,
				Energy:      float64(r.En%100)/100 + 0.01,
			})
		}
		fr := ParetoFrontier(pts)
		// non-domination within the frontier
		for i, p := range fr {
			for j, q := range fr {
				if i == j {
					continue
				}
				if q.Improvement >= p.Improvement && q.Energy < p.Energy {
					return false
				}
			}
		}
		// coverage: every point weakly dominated by some frontier point
		for _, p := range pts {
			ok := false
			for _, q := range fr {
				if q.Improvement >= p.Improvement && q.Energy <= p.Energy {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
