package core

import (
	"math"
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/recovery"
)

// The paper's headline conclusion as an integration test: mixing selective
// LEAP-DICE with logic parity (Heuristic 1) costs less energy than
// LEAP-DICE alone for the same SDC target — parity absorbs the slack-rich
// flip-flops at a lower per-cell cost. The comparison is made without
// recovery hardware so the fixed flush cost (identical in both designs
// when attached) does not mask the hardening difference; see EXPERIMENTS.md
// for the bounded-recovery discussion.
func TestCrossLayerBeatsSingleLayer(t *testing.T) {
	e := NewEngine(inject.InO)
	// 4 samples/FF give the vulnerability tail enough mass for the
	// selective sets to be non-trivial (the paper's effect needs spread).
	e.SamplesBase = 4
	e.SamplesTech = 2
	wins := 0
	benches := []string{"inner_product", "gap", "perlbmk"}
	for _, name := range benches {
		b := bench.ByName(name)
		cross, err := e.EvalCombo(b, Combo{DICE: true, Parity: true}, SDC, 50)
		if err != nil {
			t.Fatal(err)
		}
		diceOnly, err := e.EvalCombo(b, Combo{DICE: true}, SDC, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !cross.TargetMet || !diceOnly.TargetMet {
			t.Fatalf("%s: target not met: cross %v dice %v", name, cross.TargetMet, diceOnly.TargetMet)
		}
		t.Logf("%s @50x SDC: DICE+parity %.2f%% energy vs DICE-only %.2f%%",
			name, 100*cross.Cost.Energy(), 100*diceOnly.Cost.Energy())
		if cross.Cost.Energy() < diceOnly.Cost.Energy() {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("cross-layer mix won on only %d of %d benchmarks", wins, len(benches))
	}
	// At the protect-everything point the mix must clearly win (the
	// Table 19 "max" column structure).
	b := bench.ByName("gap")
	cross, err := e.EvalCombo(b, Combo{DICE: true, Parity: true}, SDC, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	diceOnly, err := e.EvalCombo(b, Combo{DICE: true}, SDC, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("max: DICE+parity %.1f%% vs DICE-only %.1f%%",
		100*cross.Cost.Energy(), 100*diceOnly.Cost.Energy())
	if cross.Cost.Energy() >= diceOnly.Cost.Energy() {
		t.Fatalf("mix (%.1f%%) should beat DICE-only (%.1f%%) at max",
			100*cross.Cost.Energy(), 100*diceOnly.Cost.Energy())
	}
}

// Detection-only protection must not claim DUE improvement without
// recovery, but must with IR attached (the Table 17 structure).
func TestDetectionNeedsRecoveryForDUE(t *testing.T) {
	e := NewEngine(inject.InO)
	e.SamplesBase = 2
	e.SamplesTech = 2
	b := bench.ByName("gap")
	noRec, err := e.EvalCombo(b, Combo{Parity: true}, DUE, 5)
	if err != nil {
		t.Fatal(err)
	}
	if noRec.TargetMet {
		t.Fatalf("parity without recovery claimed %0.1fx DUE improvement", noRec.DUEImp)
	}
	withIR, err := e.EvalCombo(b, Combo{Parity: true, Recovery: recovery.IR}, DUE, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !withIR.TargetMet {
		t.Fatalf("parity+IR failed a 5x DUE target: %+v", withIR)
	}
}

// γ must bite: a technique with execution overhead reports a smaller
// improvement than the raw error-count ratio.
func TestGammaDiscountsImprovement(t *testing.T) {
	e := NewEngine(inject.InO)
	e.SamplesBase = 2
	e.SamplesTech = 2
	b := bench.ByName("inner_product")
	combo := Combo{Variant: Variant{SW: []SWTechnique{SWEDDI}, EDDISrb: true}}
	out, err := e.EvalCombo(b, combo, SDC, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Gamma <= 1.2 {
		t.Fatalf("EDDI gamma %.2f implausibly low", out.Gamma)
	}
	// raw ratio = improvement * gamma must exceed the reported improvement
	if out.SDCImp*out.Gamma <= out.SDCImp {
		t.Fatal("gamma accounting inverted")
	}
}
