package core

import (
	"math"
	"sort"

	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/stack"
	"clear/internal/technique"
)

// Metric selects which improvement a hardening pass targets.
type Metric int

// Improvement metrics.
const (
	SDC Metric = iota
	DUE
)

func (m Metric) String() string {
	if m == SDC {
		return "SDC"
	}
	return "DUE"
}

// parityTreeSlack is the slack (gate delays) needed for the unpipelined
// 32-bit predictor tree of Heuristic 1's PARITY() predicate.
const parityTreeSlack = 7

// chooseCell implements the paper's Heuristic 1: LEAP-DICE for flip-flops
// whose detected errors the attached recovery could not recover, parity
// when timing slack allows a 32-bit tree, and LEAP-DICE (or EDS, when the
// combination includes it) otherwise.
func (e *Engine) chooseCell(bit int, hasDICE, hasParity, hasEDS bool, rec recovery.Kind) CellKind {
	coreName := e.Kind.String()
	needHarden := false
	if rec == recovery.Flush || rec == recovery.RoB {
		needHarden = !recovery.Recoverable(rec, coreName, e.Space, bit)
	}
	if hasDICE && needHarden {
		return CellDICE
	}
	if hasParity && e.Pl.Slack[bit] >= parityTreeSlack {
		return CellParity
	}
	if hasEDS {
		return CellEDS
	}
	if hasParity && !hasDICE {
		return CellParity // pipelined parity (Fig 3) when DICE is absent
	}
	if hasDICE {
		return CellDICE
	}
	if hasParity {
		return CellParity
	}
	return CellNone
}

// HardenOptions parameterizes a selective-insertion pass.
type HardenOptions struct {
	DICE, Parity, EDS bool
	Recovery          recovery.Kind
	// FixedGamma multiplies the plan-dependent γ contribution: the high
	// layers' flip-flop and execution-time overheads.
	FixedGamma float64
	// Baseline error rates of the unprotected design (per sample).
	BaseSDCRate, BaseDUERate float64
}

// rates converts residual counts into per-sample rates.
func rates(res *inject.Result, r Residuals) (sdc, due float64) {
	n := float64(res.Totals.N)
	if n == 0 {
		return 0, 0
	}
	return r.SDC / n, r.DUE / n
}

// SelectiveHarden performs the Fig 7 loop: repeatedly protect the most
// vulnerable unprotected flip-flop (per the target metric) with the
// Heuristic 1 cell until the target improvement is met. A +Inf target
// protects every flip-flop (the paper's "max" design point). The returned
// plan achieves the target under the final γ, or protects everything it
// can.
func (e *Engine) SelectiveHarden(res *inject.Result, opt HardenOptions, metric Metric, target float64) *Plan {
	plan := NewPlan(len(res.PerFF), opt.Recovery)
	if !opt.DICE && !opt.Parity && !opt.EDS {
		return plan
	}
	// Detection without recovery turns every detected flip into a DUE, so a
	// DUE-targeting pass must only use correcting cells (the paper's
	// observation that no DUE improvement is achievable with unconstrained
	// detection-only protection).
	if metric == DUE && opt.Recovery == recovery.None {
		if !opt.DICE {
			return plan // nothing useful to insert
		}
		opt.Parity, opt.EDS = false, false
	}

	// Sort flip-flops by vulnerability under the target metric.
	order := make([]int, len(res.PerFF))
	for i := range order {
		order[i] = i
	}
	key := func(bit int) float64 {
		st := res.PerFF[bit]
		if metric == SDC {
			return float64(st.OMM)
		}
		return float64(st.UT) + float64(st.Hang) + float64(st.ED)
	}
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) > key(order[b]) })

	// Exact target check: full residual evaluation with the implemented
	// parity grouping's γ contribution.
	achieved := func() bool {
		if math.IsInf(target, 1) {
			return false // protect everything
		}
		resid := e.Evaluate(res, plan)
		sdcR, dueR := rates(res, resid)
		gamma := opt.FixedGamma * (1 + e.PlanFFOverhead(plan))
		var imp float64
		if metric == SDC {
			imp = stack.Improvement(opt.BaseSDCRate, sdcR, gamma)
		} else {
			imp = stack.Improvement(opt.BaseDUERate, dueR, gamma)
		}
		return imp >= target
	}

	// Greedy insertion with O(1) incremental residual tracking; the exact
	// evaluator confirms (γ included) whenever the cheap estimate says the
	// target is met, so the plan stops at the first sufficient flip-flop.
	totalN := float64(res.Totals.N)
	curSDC, curDUE := 0.0, 0.0
	for _, st := range res.PerFF {
		curSDC += float64(st.OMM)
		curDUE += float64(st.UT) + float64(st.Hang) + float64(st.ED)
	}
	parityish := 0
	coreName := e.Kind.String()
	serDICE := serOf(CellDICE)
	applyDelta := func(bit int, cell CellKind) {
		st := res.PerFF[bit]
		sdc := float64(st.OMM)
		due := float64(st.UT) + float64(st.Hang) + float64(st.ED)
		switch cell {
		case CellDICE, CellCtrlRes:
			curSDC -= sdc * (1 - serDICE)
			curDUE -= due * (1 - serDICE)
		case CellLHL:
			curSDC -= sdc * 0.75
			curDUE -= due * 0.75
		case CellParity, CellEDS:
			parityish++
			if plan.Recovery != recovery.None &&
				recovery.Recoverable(plan.Recovery, coreName, e.Space, bit) {
				curSDC -= sdc
				curDUE -= due
			} else {
				curSDC -= sdc
				curDUE += float64(st.N) - due
			}
		}
	}
	quickMet := func() bool {
		// approximate γ: recovery overhead plus ~0.3 added FFs per
		// parity/EDS cell (pipeline + error-indication flip-flops)
		gamma := opt.FixedGamma * (1 + technique.RecoveryFFOverhead(plan.Recovery, coreName) +
			0.3*float64(parityish)/float64(e.Model.NumFFs))
		var imp float64
		if metric == SDC {
			imp = stack.Improvement(opt.BaseSDCRate, curSDC/totalN, gamma)
		} else {
			imp = stack.Improvement(opt.BaseDUERate, curDUE/totalN, gamma)
		}
		return imp >= target
	}

	for _, bit := range order {
		if plan.Assign[bit] != CellNone {
			continue
		}
		if !math.IsInf(target, 1) && key(bit) == 0 {
			// remaining flip-flops have no observed errors under this
			// metric: protecting them cannot raise measured improvement
			break
		}
		cell := e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
		plan.Assign[bit] = cell
		applyDelta(bit, cell)
		if !math.IsInf(target, 1) && quickMet() && achieved() {
			return plan
		}
	}
	if math.IsInf(target, 1) {
		// max design point: protect every flip-flop
		for bit := range plan.Assign {
			if plan.Assign[bit] == CellNone {
				plan.Assign[bit] = e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
			}
		}
		return plan
	}
	if achieved() {
		return plan
	}
	// Target not reachable with measured-error flip-flops alone: extend to
	// every flip-flop (upper-bound design).
	sinceCheck := 0
	for _, bit := range order {
		if plan.Assign[bit] == CellNone {
			plan.Assign[bit] = e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
			sinceCheck++
			if sinceCheck >= 64 {
				sinceCheck = 0
				if achieved() {
					return plan
				}
			}
		}
	}
	return plan
}

// JointHarden meets an SDC and a DUE target simultaneously (paper Sec 3.1,
// Table 20): protect for SDC first, then keep protecting until the DUE
// target is also met.
func (e *Engine) JointHarden(res *inject.Result, opt HardenOptions, target float64) *Plan {
	plan := e.SelectiveHarden(res, opt, SDC, target)
	// continue with DUE ordering on the same plan
	order := make([]int, len(res.PerFF))
	for i := range order {
		order[i] = i
	}
	dueKey := func(bit int) float64 {
		st := res.PerFF[bit]
		return float64(st.UT) + float64(st.Hang) + float64(st.ED)
	}
	sort.SliceStable(order, func(a, b int) bool { return dueKey(order[a]) > dueKey(order[b]) })
	dueMet := func() bool {
		resid := e.Evaluate(res, plan)
		_, dueR := rates(res, resid)
		gamma := opt.FixedGamma * (1 + e.PlanFFOverhead(plan))
		return stack.Improvement(opt.BaseDUERate, dueR, gamma) >= target
	}
	if math.IsInf(target, 1) {
		for bit := range plan.Assign {
			if plan.Assign[bit] == CellNone {
				plan.Assign[bit] = e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
			}
		}
		return plan
	}
	if dueMet() {
		return plan
	}
	since := 0
	for _, bit := range order {
		if plan.Assign[bit] != CellNone {
			continue
		}
		plan.Assign[bit] = e.chooseCell(bit, opt.DICE, opt.Parity, opt.EDS, opt.Recovery)
		since++
		if since >= 16 {
			since = 0
			if dueMet() {
				return plan
			}
		}
	}
	return plan
}
