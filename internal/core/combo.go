package core

import (
	"math"
	"strings"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/stack"
	"clear/internal/technique"
)

// Combo is one cross-layer combination: a set of techniques spanning the
// stack plus a recovery choice.
type Combo struct {
	DICE, Parity, EDS bool
	Variant           Variant
	Recovery          recovery.Kind
}

// Name renders a readable combination label: the active techniques in
// canonical registry order (this is the single source of the display
// ordering that used to be duplicated here and in the enumeration).
func (c Combo) Name() string {
	var parts []string
	seen := map[string]bool{}
	for _, t := range technique.Default().Techniques() {
		seen[t.Name()] = true
		if c.Active(t.Name()) {
			parts = append(parts, t.Name())
		}
	}
	// extras whose technique has since been unregistered still label
	for _, x := range c.Variant.Extra {
		if !seen[x] {
			parts = append(parts, x)
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "unprotected")
	}
	s := strings.Join(parts, "+")
	if c.Recovery != recovery.None {
		s += " (+" + c.Recovery.String() + ")"
	}
	return s
}

// HasLowLevel reports whether selective circuit/logic insertion is part of
// the combination.
func (c Combo) HasLowLevel() bool { return c.DICE || c.Parity || c.EDS }

// Outcome is the evaluated result of a combination on one benchmark.
type Outcome struct {
	SDCImp    float64
	DUEImp    float64
	Cost      power.Cost
	Gamma     float64
	Protected int // flip-flops given circuit/logic protection
	TargetMet bool
}

// highLevelGamma returns the γ overhead factors contributed by the high
// layers of a combination: checker flip-flops and execution-time increase,
// gathered from the active techniques' GammaContributors. The recovery's
// flip-flop overhead is applied via PlanFFOverhead, not here; only its
// execution-time impact (pipeline flush) enters.
func (e *Engine) highLevelGamma(c Combo, execOverhead float64) float64 {
	var ffOv, timeOv []float64
	coreName := e.Kind.String()
	for _, t := range c.ActiveTechniques() {
		gc, ok := t.(technique.GammaContributor)
		if !ok {
			continue
		}
		if f := gc.GammaFF(coreName); f != 0 {
			ffOv = append(ffOv, f)
		}
		if x := gc.GammaExec(coreName); x != 0 {
			timeOv = append(timeOv, x)
		}
	}
	if execOverhead > 0 {
		timeOv = append(timeOv, execOverhead)
	}
	if rt := technique.Default().Recovery(c.Recovery); rt != nil {
		if gc, ok := rt.(technique.GammaContributor); ok {
			if x := gc.GammaExec(coreName); x != 0 {
				timeOv = append(timeOv, x)
			}
		}
	}
	return stack.Gamma(ffOv, timeOv)
}

// highLevelCost sums the hardware/execution costs of a combination's high
// layers (the software/algorithm execution overhead is measured): the fixed
// Cost contributions of the active techniques.
func (e *Engine) highLevelCost(c Combo, execOverhead float64) power.Cost {
	cost := power.Cost{ExecTime: execOverhead}
	coreName := e.Kind.String()
	for _, t := range c.ActiveTechniques() {
		if tc := t.Cost(e.Model, coreName); tc != (power.Cost{}) {
			cost = cost.Plus(tc)
		}
	}
	return cost
}

// EvalCombo evaluates a combination on one benchmark against a target
// improvement in the given metric (math.Inf(1) for the "max" design
// point). It implements the paper's top-down methodology: the high layers'
// residual vulnerability is measured by injection, then Heuristic 1 closes
// the remaining gap.
func (e *Engine) EvalCombo(b *bench.Benchmark, c Combo, metric Metric, target float64) (Outcome, error) {
	out, _, err := e.PlanCombo(b, c, metric, target)
	return out, err
}

// PlanCombo is EvalCombo returning the concrete implementation plan as well
// (used for plan post-processing such as LEAP-ctrl augmentation).
func (e *Engine) PlanCombo(b *bench.Benchmark, c Combo, metric Metric, target float64) (Outcome, *Plan, error) {
	baseRes, err := e.Base(b)
	if err != nil {
		return Outcome{}, nil, err
	}
	techRes := baseRes
	if c.Variant.Tag() != "base" {
		techRes, err = e.Campaign(b, c.Variant)
		if err != nil {
			return Outcome{}, nil, err
		}
	}
	execOv, err := e.ExecOverhead(b, c.Variant)
	if err != nil {
		return Outcome{}, nil, err
	}

	baseSDCRate := float64(baseRes.Totals.SDC()) / float64(baseRes.Totals.N)
	baseDUERate := float64(baseRes.Totals.UT+baseRes.Totals.Hang) / float64(baseRes.Totals.N)
	fixedGamma := e.highLevelGamma(c, execOv)

	opt := HardenOptions{
		DICE: c.DICE, Parity: c.Parity, EDS: c.EDS,
		Recovery:    c.Recovery,
		FixedGamma:  fixedGamma,
		BaseSDCRate: baseSDCRate,
		BaseDUERate: baseDUERate,
	}
	plan := e.SelectiveHarden(techRes, opt, metric, target)
	out, err := e.finishOutcome(c, techRes, plan, opt, execOv, target, metric)
	return out, plan, err
}

// OutcomeForPlan evaluates a fixed plan under a combination's high layers
// on one benchmark (used after plan post-processing).
func (e *Engine) OutcomeForPlan(b *bench.Benchmark, c Combo, plan *Plan) (Outcome, error) {
	baseRes, err := e.Base(b)
	if err != nil {
		return Outcome{}, err
	}
	techRes := baseRes
	if c.Variant.Tag() != "base" {
		techRes, err = e.Campaign(b, c.Variant)
		if err != nil {
			return Outcome{}, err
		}
	}
	execOv, err := e.ExecOverhead(b, c.Variant)
	if err != nil {
		return Outcome{}, err
	}
	opt := HardenOptions{
		Recovery:    c.Recovery,
		FixedGamma:  e.highLevelGamma(c, execOv),
		BaseSDCRate: float64(baseRes.Totals.SDC()) / float64(baseRes.Totals.N),
		BaseDUERate: float64(baseRes.Totals.UT+baseRes.Totals.Hang) / float64(baseRes.Totals.N),
	}
	return e.finishOutcome(c, techRes, plan, opt, execOv, math.Inf(1), SDC)
}

// EvalComboJoint meets SDC and DUE targets simultaneously (Table 20).
func (e *Engine) EvalComboJoint(b *bench.Benchmark, c Combo, target float64) (Outcome, error) {
	baseRes, err := e.Base(b)
	if err != nil {
		return Outcome{}, err
	}
	techRes := baseRes
	if c.Variant.Tag() != "base" {
		techRes, err = e.Campaign(b, c.Variant)
		if err != nil {
			return Outcome{}, err
		}
	}
	execOv, err := e.ExecOverhead(b, c.Variant)
	if err != nil {
		return Outcome{}, err
	}
	opt := HardenOptions{
		DICE: c.DICE, Parity: c.Parity, EDS: c.EDS,
		Recovery:    c.Recovery,
		FixedGamma:  e.highLevelGamma(c, execOv),
		BaseSDCRate: float64(baseRes.Totals.SDC()) / float64(baseRes.Totals.N),
		BaseDUERate: float64(baseRes.Totals.UT+baseRes.Totals.Hang) / float64(baseRes.Totals.N),
	}
	plan := e.JointHarden(techRes, opt, target)
	out, err := e.finishOutcome(c, techRes, plan, opt, execOv, target, SDC)
	if err != nil {
		return out, err
	}
	out.TargetMet = out.SDCImp >= target && out.DUEImp >= target ||
		math.IsInf(target, 1)
	return out, nil
}

func (e *Engine) finishOutcome(c Combo, techRes *inject.Result, plan *Plan,
	opt HardenOptions, execOv, target float64, metric Metric) (Outcome, error) {
	resid := e.Evaluate(techRes, plan)
	sdcR, dueR := rates(techRes, resid)
	gamma := opt.FixedGamma * (1 + e.PlanFFOverhead(plan))

	out := Outcome{
		SDCImp: stack.Improvement(opt.BaseSDCRate, sdcR, gamma),
		DUEImp: stack.Improvement(opt.BaseDUERate, dueR, gamma),
		Gamma:  gamma,
	}
	for _, a := range plan.Assign {
		if a != CellNone {
			out.Protected++
		}
	}
	// cost: high layers (with measured exec overhead) + implementation plan
	out.Cost = e.highLevelCost(c, execOv).Plus(e.PlanCost(plan))
	if math.IsInf(target, 1) {
		out.TargetMet = true
	} else if metric == SDC {
		out.TargetMet = out.SDCImp >= target
	} else {
		out.TargetMet = out.DUEImp >= target
	}
	return out, nil
}

// AvgOutcome averages a combination across benchmarks at a target: costs
// are averaged (the paper builds one design per benchmark and averages),
// improvements are computed from aggregate error counts.
type AvgOutcome struct {
	Combo    Combo
	Target   float64
	Metric   Metric
	SDCImp   float64
	DUEImp   float64
	Cost     power.Cost
	NBench   int
	TargetOK bool
}

// EvalComboAvg evaluates a combination over the core's full benchmark list.
func (e *Engine) EvalComboAvg(c Combo, metric Metric, target float64) (AvgOutcome, error) {
	bs := e.Benchmarks()
	avg := AvgOutcome{Combo: c, Target: target, Metric: metric, TargetOK: true}
	var sumSDC, sumDUE, sumGamma float64
	n := 0
	for _, b := range bs {
		out, err := e.EvalCombo(b, c, metric, target)
		if err != nil {
			return avg, err
		}
		avg.Cost.Area += out.Cost.Area
		avg.Cost.Power += out.Cost.Power
		avg.Cost.ExecTime += out.Cost.ExecTime
		sumSDC += invOrCap(out.SDCImp)
		sumDUE += invOrCap(out.DUEImp)
		sumGamma += out.Gamma
		if !out.TargetMet {
			avg.TargetOK = false
		}
		n++
	}
	if n == 0 {
		return avg, nil
	}
	avg.Cost.Area /= float64(n)
	avg.Cost.Power /= float64(n)
	avg.Cost.ExecTime /= float64(n)
	// harmonic-style average: mean of reciprocals, robust to +Inf points
	avg.SDCImp = float64(n) / sumSDC
	avg.DUEImp = float64(n) / sumDUE
	avg.NBench = n
	return avg, nil
}

// invOrCap maps an improvement to its reciprocal, treating +Inf (fully
// protected) as zero residual.
func invOrCap(imp float64) float64 {
	if math.IsInf(imp, 1) {
		return 0
	}
	if imp <= 0 {
		return 1
	}
	return 1 / imp
}

// HighLevelGamma exposes the γ contribution of a combination's high layers
// for external reporting (experiments harness).
func (e *Engine) HighLevelGamma(c Combo, execOverhead float64) float64 {
	return e.highLevelGamma(c, execOverhead)
}

// HighLevelCost exposes the high-layer cost of a combination for external
// reporting.
func (e *Engine) HighLevelCost(c Combo, execOverhead float64) power.Cost {
	return e.highLevelCost(c, execOverhead)
}
