package core

import (
	"sort"
	"strings"

	"clear/internal/recovery"
	"clear/internal/technique"
)

// The registry bridge: core.Combo and core.Variant predate the technique
// registry and keep their concrete fields (DICE/Parity/EDS bools, the
// SWTechnique slice, the DFC/Monitor flags) as a stable public surface,
// while every derived artifact — names, campaign tags, program transforms,
// checker hooks, γ and cost arithmetic, enumeration — is driven by the
// registry's canonical order. Third-party registrations map onto
// Variant.Extra.

// Active reports whether a registered technique participates in this
// combination.
func (c Combo) Active(name string) bool {
	switch name {
	case technique.NameLEAPDICE:
		return c.DICE
	case technique.NameParity:
		return c.Parity
	case technique.NameEDS:
		return c.EDS
	}
	return c.Variant.activeName(name)
}

// activeName reports whether a campaign-layer technique (algorithm,
// software, architecture, or a registered extra) is active in the variant.
func (v Variant) activeName(name string) bool {
	switch name {
	case technique.NameABFTCorrection:
		return v.ABFT == ABFTCorr
	case technique.NameABFTDetection:
		return v.ABFT == ABFTDet
	case technique.NameCFCSS:
		return v.has(SWCFCSS)
	case technique.NameAssertions:
		return v.has(SWAssertions)
	case technique.NameEDDI:
		return v.has(SWEDDI)
	case technique.NameMonitor:
		return v.Monitor
	case technique.NameDFC:
		return v.DFC
	case technique.NameLEAPDICE, technique.NameParity, technique.NameEDS:
		return false // circuit/logic insertion lives on Combo, not Variant
	}
	return v.hasExtra(name)
}

// addTechnique marks a registered technique active in the combination.
// Built-ins set their concrete fields; anything else lands in
// Variant.Extra. Software techniques append in call order, so adding in
// registry order yields the canonical SW slice.
func (c *Combo) addTechnique(t technique.Technique) {
	switch t.Name() {
	case technique.NameABFTCorrection:
		c.Variant.ABFT = ABFTCorr
	case technique.NameABFTDetection:
		c.Variant.ABFT = ABFTDet
	case technique.NameCFCSS:
		c.Variant.SW = append(c.Variant.SW, SWCFCSS)
	case technique.NameAssertions:
		c.Variant.SW = append(c.Variant.SW, SWAssertions)
	case technique.NameEDDI:
		c.Variant.SW = append(c.Variant.SW, SWEDDI)
	case technique.NameMonitor:
		c.Variant.Monitor = true
	case technique.NameDFC:
		c.Variant.DFC = true
	case technique.NameLEAPDICE:
		c.DICE = true
	case technique.NameParity:
		c.Parity = true
	case technique.NameEDS:
		c.EDS = true
	default:
		c.Variant.Extra = append(c.Variant.Extra, t.Name())
	}
}

// ComboFor builds the combination activating the named registered
// techniques (in any order — the result is canonical) with a recovery.
// Unknown names return an error.
func ComboFor(names []string, rec recovery.Kind) (Combo, error) {
	c := Combo{Recovery: rec}
	reg := technique.Default()
	// canonical order: walk the registry, not the argument list
	want := map[string]bool{}
	for _, n := range names {
		t, err := reg.Lookup(n)
		if err != nil {
			return Combo{}, err
		}
		want[t.Name()] = true
	}
	for _, t := range reg.Techniques() {
		if want[t.Name()] {
			c.addTechnique(t)
		}
	}
	return c, nil
}

// ActiveTechniques returns the combination's registered techniques in
// canonical registry order.
func (c Combo) ActiveTechniques() []technique.Technique {
	var out []technique.Technique
	for _, t := range technique.Default().Techniques() {
		if c.Active(t.Name()) {
			out = append(out, t)
		}
	}
	return out
}

// options projects the variant's software knobs for technique hooks.
func (v Variant) options() technique.Options {
	return technique.Options{AssertK: v.AssertK, EDDISrb: v.EDDISrb, SelEDDI: v.SelEDDI}
}

func (v Variant) hasExtra(name string) bool {
	for _, x := range v.Extra {
		if x == name {
			return true
		}
	}
	return false
}

// tagOf renders the variant's campaign cache tag from the registry: the
// campaign-affecting active techniques' frozen fragments sorted by
// (TagRank, registry order). Tag strings are on-disk campaign cache keys,
// so the fragment order is frozen independently of display order (DFC
// before Monitor, as the caches have always been keyed).
func (v Variant) tagOf() string {
	type frag struct {
		rank, idx int
		s         string
	}
	var frags []frag
	opt := v.options()
	for idx, t := range technique.Default().Techniques() {
		if !v.activeName(t.Name()) || !technique.AffectsCampaign(t) {
			continue
		}
		frags = append(frags, frag{technique.TagRankOf(t), idx, technique.CampaignTagOf(t, opt)})
	}
	if len(frags) == 0 {
		return "base"
	}
	sort.SliceStable(frags, func(a, b int) bool {
		if frags[a].rank != frags[b].rank {
			return frags[a].rank < frags[b].rank
		}
		return frags[a].idx < frags[b].idx
	})
	parts := make([]string, len(frags))
	for i, f := range frags {
		parts[i] = f.s
	}
	return strings.Join(parts, "+")
}
