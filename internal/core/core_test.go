package core

import (
	"math"
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/swres"
)

func TestEnumerationMatchesTable18(t *testing.T) {
	ino := CountCombos(inject.InO)
	if ino.NoRec != 127 || ino.QuickRec != 3 || ino.Replay != 14 {
		t.Fatalf("InO counts %+v, want 127/3/14", ino)
	}
	if ino.Total != 417 {
		t.Fatalf("InO total %d, want 417", ino.Total)
	}
	ooo := CountCombos(inject.OoO)
	if ooo.NoRec != 31 || ooo.QuickRec != 7 || ooo.Replay != 30 {
		t.Fatalf("OoO counts %+v, want 31/7/30", ooo)
	}
	if ooo.Total != 169 {
		t.Fatalf("OoO total %d, want 169", ooo.Total)
	}
	if ino.Total+ooo.Total != 586 {
		t.Fatalf("grand total %d, want 586", ino.Total+ooo.Total)
	}
	if got := len(Enumerate(inject.InO)); got != 417 {
		t.Fatalf("Enumerate(InO) = %d combos", got)
	}
	if got := len(Enumerate(inject.OoO)); got != 169 {
		t.Fatalf("Enumerate(OoO) = %d combos", got)
	}
}

func TestVariantTags(t *testing.T) {
	if (Variant{}).Tag() != "base" {
		t.Fatal("empty variant tag")
	}
	v := Variant{ABFT: ABFTCorr, SW: []SWTechnique{SWCFCSS, SWEDDI}, EDDISrb: true, DFC: true}
	if v.Tag() != "abftc+cfcss+eddisrb+dfc" {
		t.Fatalf("tag = %q", v.Tag())
	}
}

func TestComboNames(t *testing.T) {
	c := Combo{DICE: true, Parity: true, Recovery: recovery.Flush}
	if c.Name() != "LEAP-DICE+Parity (+flush)" {
		t.Fatalf("name = %q", c.Name())
	}
	if (Combo{}).Name() != "unprotected" {
		t.Fatalf("empty combo name = %q", (Combo{}).Name())
	}
}

// engine with tiny sampling for unit tests (full campaigns are exercised by
// the benchmark harness).
func testEngine(t *testing.T) *Engine {
	t.Helper()
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	e := NewEngine(inject.InO)
	e.SamplesBase = 1
	e.SamplesTech = 1
	return e
}

func TestSelectiveHardenDICE(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	res, err := e.Base(b)
	if err != nil {
		t.Fatal(err)
	}
	baseSDC := float64(res.Totals.SDC()) / float64(res.Totals.N)
	baseDUE := float64(res.Totals.UT+res.Totals.Hang) / float64(res.Totals.N)
	opt := HardenOptions{DICE: true, FixedGamma: 1, BaseSDCRate: baseSDC, BaseDUERate: baseDUE}

	p5 := e.SelectiveHarden(res, opt, SDC, 5)
	p50 := e.SelectiveHarden(res, opt, SDC, 50)
	n5, n50 := protectedCount(p5), protectedCount(p50)
	if n5 == 0 {
		t.Fatal("5x target protected nothing")
	}
	if n50 < n5 {
		t.Fatalf("50x target protected fewer FFs (%d) than 5x (%d)", n50, n5)
	}
	// verify achieved improvements
	r5 := e.Evaluate(res, p5)
	sdcR, _ := rates(res, r5)
	imp := baseSDC / sdcR
	if imp < 5 {
		t.Fatalf("5x plan only achieves %.1fx", imp)
	}
	// max plan protects everything
	pmax := e.SelectiveHarden(res, opt, SDC, math.Inf(1))
	if protectedCount(pmax) != len(res.PerFF) {
		t.Fatalf("max plan protected %d of %d", protectedCount(pmax), len(res.PerFF))
	}
	// cost ordering: 5x cheaper than 50x cheaper than max
	c5, c50, cmax := e.PlanCost(p5), e.PlanCost(p50), e.PlanCost(pmax)
	if !(c5.Energy() <= c50.Energy() && c50.Energy() <= cmax.Energy()) {
		t.Fatalf("cost ordering broken: %.4f %.4f %.4f", c5.Energy(), c50.Energy(), cmax.Energy())
	}
	t.Logf("DICE-only: 5x=%d FFs (%.2f%%E), 50x=%d (%.2f%%E), max=%d (%.2f%%E)",
		n5, 100*c5.Energy(), n50, 100*c50.Energy(), protectedCount(pmax), 100*cmax.Energy())
}

func protectedCount(p *Plan) int {
	n := 0
	for _, c := range p.Assign {
		if c != CellNone {
			n++
		}
	}
	return n
}

func TestHeuristic1CellChoice(t *testing.T) {
	e := NewEngine(inject.InO)
	// an unflushable FF (writeback stage) with flush recovery must be DICE
	wbBit := e.Space.BitsOf("w.result")[0]
	if got := e.chooseCell(wbBit, true, true, false, recovery.Flush); got != CellDICE {
		t.Fatalf("unflushable FF got %d, want DICE", got)
	}
	// a fetch-stage FF with plenty of slack should take parity
	fBit := e.Space.BitsOf("f.pc")[0]
	if e.Pl.Slack[fBit] >= parityTreeSlack {
		if got := e.chooseCell(fBit, true, true, false, recovery.Flush); got != CellParity {
			t.Fatalf("recoverable slack-rich FF got %d, want parity", got)
		}
	}
	// IR recovery: everything recoverable, parity preferred where slack
	if got := e.chooseCell(wbBit, true, true, false, recovery.IR); got == CellDICE &&
		e.Pl.Slack[wbBit] >= parityTreeSlack {
		t.Fatal("IR-recoverable FF with slack should prefer parity")
	}
	// no low-level technique
	if got := e.chooseCell(0, false, false, false, recovery.None); got != CellNone {
		t.Fatal("no technique should assign none")
	}
}

func TestEvaluateSemantics(t *testing.T) {
	e := NewEngine(inject.InO)
	res := &inject.Result{PerFF: make([]inject.FFStats, e.Space.NumBits())}
	res.Totals.N = 100
	// one FF with 10 samples: 4 OMM, 2 UT, 1 Hang
	bit := e.Space.BitsOf("e.op1")[0]
	res.PerFF[bit] = inject.FFStats{N: 10, OMM: 4, UT: 2, Hang: 1}

	// unprotected
	plan := NewPlan(e.Space.NumBits(), recovery.None)
	r := e.Evaluate(res, plan)
	if r.SDC != 4 || r.DUE != 3 {
		t.Fatalf("unprotected: %+v", r)
	}
	// DICE: scaled by 2e-4
	plan.Assign[bit] = CellDICE
	r = e.Evaluate(res, plan)
	if math.Abs(r.SDC-4*2e-4) > 1e-12 {
		t.Fatalf("DICE SDC %.6g", r.SDC)
	}
	// parity without recovery: SDC 0, all 10 samples become DUE
	plan.Assign[bit] = CellParity
	r = e.Evaluate(res, plan)
	if r.SDC != 0 || r.DUE != 10 {
		t.Fatalf("parity no-recovery: %+v", r)
	}
	// parity + IR: everything erased
	plan.Recovery = recovery.IR
	r = e.Evaluate(res, plan)
	if r.SDC != 0 || r.DUE != 0 {
		t.Fatalf("parity+IR: %+v", r)
	}
	// parity + flush on an unflushable FF: detected but unrecoverable
	wbBit := e.Space.BitsOf("w.result")[0]
	res.PerFF[wbBit] = inject.FFStats{N: 5, OMM: 2}
	plan2 := NewPlan(e.Space.NumBits(), recovery.Flush)
	plan2.Assign[wbBit] = CellParity
	r = e.Evaluate(res, plan2)
	if r.DUE < 5 {
		t.Fatalf("unflushable parity should yield ED: %+v", r)
	}
}

func TestEvalComboSmall(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	combo := Combo{DICE: true, Parity: true, Recovery: recovery.Flush}
	out, err := e.EvalCombo(b, combo, SDC, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.TargetMet {
		t.Fatalf("5x SDC not met: %+v", out)
	}
	if out.Cost.Energy() <= 0 || out.Cost.Energy() > 0.4 {
		t.Fatalf("energy cost %.3f implausible", out.Cost.Energy())
	}
	if out.Gamma < 1 {
		t.Fatalf("gamma %.3f < 1", out.Gamma)
	}
	t.Logf("DICE+parity+flush @5x: SDC %.1fx DUE %.1fx energy %.2f%% γ %.3f (%d FFs)",
		out.SDCImp, out.DUEImp, 100*out.Cost.Energy(), out.Gamma, out.Protected)
}

func TestEvalComboWithSoftware(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("inner_product")
	combo := Combo{
		DICE: true, Parity: true,
		Variant: Variant{SW: []SWTechnique{SWEDDI}, EDDISrb: true},
	}
	out, err := e.EvalCombo(b, combo, SDC, 5)
	if err != nil {
		t.Fatal(err)
	}
	// EDDI's execution-time overhead must show up in cost and gamma
	if out.Cost.ExecTime < 0.3 {
		t.Fatalf("EDDI exec overhead missing from cost: %+v", out.Cost)
	}
	if out.Gamma < 1.3 {
		t.Fatalf("EDDI gamma %.2f too small", out.Gamma)
	}
}

func TestBuildProgramVariants(t *testing.T) {
	e := testEngine(t)
	b := bench.ByName("2d_convolution")
	// ABFT correction applies
	p, err := e.BuildProgram(b, Variant{ABFT: ABFTCorr})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "2d_convolution+abftc" {
		t.Fatalf("got %s", p.Name)
	}
	// ABFT on a non-amenable benchmark falls back to the plain kernel
	g := bench.ByName("gzip")
	p, err = e.BuildProgram(g, Variant{ABFT: ABFTCorr})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gzip" {
		t.Fatalf("fallback got %s", p.Name)
	}
	// software stacking
	p, err = e.BuildProgram(g, Variant{SW: []SWTechnique{SWCFCSS, SWEDDI}, EDDISrb: true,
		AssertK: swres.AssertCombined})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gzip+cfcss+eddi-srb" {
		t.Fatalf("stacked name %s", p.Name)
	}
}

func TestVariantTagsExhaustive(t *testing.T) {
	cases := map[string]Variant{
		"abftd":                        {ABFT: ABFTDet},
		"assert-data":                  {SW: []SWTechnique{SWAssertions}, AssertK: swres.AssertData},
		"seddi":                        {SW: []SWTechnique{SWEDDI}, SelEDDI: true},
		"eddi":                         {SW: []SWTechnique{SWEDDI}},
		"mon.v2":                       {Monitor: true},
		"cfcss+dfc":                    {SW: []SWTechnique{SWCFCSS}, DFC: true},
		"abftc+assert-combined+mon.v2": {ABFT: ABFTCorr, SW: []SWTechnique{SWAssertions}, AssertK: swres.AssertCombined, Monitor: true},
	}
	for want, v := range cases {
		if got := v.Tag(); got != want {
			t.Errorf("Tag() = %q, want %q", got, want)
		}
	}
}

func TestEnumerateCombosAreDistinct(t *testing.T) {
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		seen := map[string]bool{}
		for _, c := range Enumerate(kind) {
			key := c.Name()
			if seen[key] {
				t.Fatalf("%v: duplicate combination %q", kind, key)
			}
			seen[key] = true
		}
	}
}

func TestEnumerateRespectsValidity(t *testing.T) {
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		coreName := kind.String()
		for _, c := range Enumerate(kind) {
			if !recovery.Valid(c.Recovery, coreName) {
				t.Fatalf("%v: combo %q uses invalid recovery %v", kind, c.Name(), c.Recovery)
			}
			if kind == inject.InO && c.Variant.Monitor {
				t.Fatalf("monitor core on InO: %q", c.Name())
			}
			if kind == inject.OoO && len(c.Variant.SW) > 0 {
				t.Fatalf("software techniques on OoO: %q", c.Name())
			}
			// ABFT detection never pairs with hardware recovery
			if c.Variant.ABFT == ABFTDet && c.Recovery != recovery.None {
				t.Fatalf("ABFT detection with recovery: %q", c.Name())
			}
		}
	}
}
