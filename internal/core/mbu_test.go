package core

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/parity"
	"clear/internal/technique"
)

// TestMBUInterleavedParityGap is the fault-model layer's acceptance
// demonstration: under the mbu model a parity tree over contiguous
// placement-adjacent groups swallows even-sized cluster overlaps, while
// interleaved groups (parity.Interleave) see every cluster — so the
// interleaved grouping must detect strictly more clusters and pass
// through strictly less SDC on a measured InO campaign.
func TestMBUInterleavedParityGap(t *testing.T) {
	e := testEngine(t)
	e.FaultModel = "mbu"
	b := bench.ByName("inner_product")
	e.SamplesBase = 2

	res, err := e.Base(b)
	if err != nil {
		t.Fatal(err)
	}
	wantTag := inject.ModelTag("mbu", "base")
	if res.Config.Tag != wantTag {
		t.Fatalf("mbu campaign ran under tag %q, want %q", res.Config.Tag, wantTag)
	}
	if res.Totals.N == 0 {
		t.Fatal("mbu campaign ran no injections")
	}

	env := inject.EnvFor(inject.InO)
	allBits := make([]int, len(res.PerFF))
	for i := range allBits {
		allBits[i] = i
	}
	const groupSize = 8
	contiguous := parity.Group(parity.GroupSizeH, groupSize, e.Space, e.Pl, nil, allBits)
	interleaved := parity.Interleave(allBits, groupSize)

	evC := EvalMBUGrouping(env, contiguous, res)
	evI := EvalMBUGrouping(env, interleaved, res)
	t.Logf("contiguous:  coverage %.3f residual SDC %.1f of %.1f",
		evC.Coverage(), evC.ResidualSDC, evC.BaseSDC)
	t.Logf("interleaved: coverage %.3f residual SDC %.1f of %.1f",
		evI.Coverage(), evI.ResidualSDC, evI.BaseSDC)

	if evC.BaseSDC == 0 {
		t.Fatal("mbu campaign produced no SDC mass to defend")
	}
	if evI.Detected <= evC.Detected {
		t.Fatalf("interleaving detected %d clusters, contiguous %d — no coverage gap",
			evI.Detected, evC.Detected)
	}
	if evI.ResidualSDC >= evC.ResidualSDC {
		t.Fatalf("interleaved residual SDC %.1f is not below contiguous %.1f",
			evI.ResidualSDC, evC.ResidualSDC)
	}
}

// TestEvalMBUGroupingOddOverlap pins the detection rule on a synthetic
// grid: a group sees a cluster iff it holds an odd number of its bits.
func TestEvalMBUGroupingOddOverlap(t *testing.T) {
	// Grouping {0,1}, {2,3}: cluster {0,1} is a hidden even overlap,
	// cluster {0,1,2} is caught by the second group's single bit.
	g := parity.Grouping{Groups: [][]int{{0, 1}, {2, 3}}, Pipelined: []bool{false, false}}
	idx := groupOf(4, g)
	if clusterDetected(idx, []int{0, 1}) {
		t.Fatal("even overlap inside one group must be invisible to parity")
	}
	if !clusterDetected(idx, []int{0, 1, 2}) {
		t.Fatal("odd overlap in any group must be detected")
	}
	if !clusterDetected(idx, []int{3}) {
		t.Fatal("single flip must be detected")
	}
	if clusterDetected(idx, []int{0, 1, 2, 3}) {
		t.Fatal("even overlap in every group must be invisible")
	}
}

// TestInterleaveGrouping checks the grouping helper's shape: every bit
// exactly once, groups within one of the nominal size, adjacent indices
// never sharing a group (for spaces larger than one group).
func TestInterleaveGrouping(t *testing.T) {
	bits := make([]int, 37)
	for i := range bits {
		bits[i] = i
	}
	g := parity.Interleave(bits, 8)
	idx := map[int]int{}
	for gi, grp := range g.Groups {
		if len(grp) > 8+1 || len(grp) == 0 {
			t.Fatalf("group %d has %d members", gi, len(grp))
		}
		for _, b := range grp {
			if _, dup := idx[b]; dup {
				t.Fatalf("bit %d grouped twice", b)
			}
			idx[b] = gi
		}
	}
	if len(idx) != len(bits) {
		t.Fatalf("grouping covers %d of %d bits", len(idx), len(bits))
	}
	for i := 0; i+1 < len(bits); i++ {
		if idx[i] == idx[i+1] {
			t.Fatalf("adjacent bits %d,%d share group %d", i, i+1, idx[i])
		}
	}
}

// TestEnumerateForModel checks the per-model design-space restriction: the
// ssb default keeps the full Table 18 enumeration, while "set" drops every
// combination carrying a technique that latches transients (LEAP-DICE,
// parity) and keeps the Razor-like EDS ones.
func TestEnumerateForModel(t *testing.T) {
	full := Enumerate(inject.InO)
	if got := EnumerateForModel(inject.InO, nil, "ssb"); len(got) != len(full) {
		t.Fatalf("ssb enumeration %d combos, want the full %d", len(got), len(full))
	}
	set := EnumerateForModel(inject.InO, nil, "set")
	if len(set) == 0 || len(set) >= len(full) {
		t.Fatalf("set enumeration has %d combos of %d — expected a strict non-empty subset",
			len(set), len(full))
	}
	eds := 0
	for _, c := range set {
		for _, tech := range c.ActiveTechniques() {
			switch tech.Name() {
			case technique.NameLEAPDICE, technique.NameParity:
				t.Fatalf("set enumeration contains %s in %q", tech.Name(), c.Name())
			case technique.NameEDS:
				eds++
			}
		}
	}
	if eds == 0 {
		t.Fatal("set enumeration lost EDS — Razor-like detection should survive")
	}
	// mbu keeps the full space: every technique still observes mbu flips.
	if got := EnumerateForModel(inject.InO, nil, "mbu"); len(got) != len(full) {
		t.Fatalf("mbu enumeration %d combos, want %d", len(got), len(full))
	}
}

// TestTechniqueModelCompat pins the registry's per-model applicability
// declarations behind EnumerateForModel.
func TestTechniqueModelCompat(t *testing.T) {
	byName := map[string]technique.Technique{}
	for _, tech := range technique.Default().Techniques() {
		byName[tech.Name()] = tech
	}
	cases := []struct {
		name, model string
		want        bool
	}{
		{technique.NameLEAPDICE, "set", false},
		{technique.NameParity, "set", false},
		{technique.NameEDS, "set", true},
		{technique.NameLEAPDICE, "mbu", true},
		{technique.NameParity, "uncore", true},
		{technique.NameEDDI, "set", true},
		{technique.NameLEAPDICE, "ssb", true},
		{technique.NameLEAPDICE, "", true},
	}
	for _, tc := range cases {
		if got := technique.AppliesToModel(byName[tc.name], tc.model); got != tc.want {
			t.Errorf("AppliesToModel(%s, %q) = %v, want %v", tc.name, tc.model, got, tc.want)
		}
	}
}
