package core

import (
	"strings"
	"testing"

	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/recovery"
	"clear/internal/swres"
	"clear/internal/technique"
)

// Satellite: Name and Tag are membership-driven off the registry, so a
// variant whose SW slice arrives in any order canonicalizes to the same
// label and the same campaign cache key.
func TestShuffledSWOrderCanonicalizes(t *testing.T) {
	orders := [][]SWTechnique{
		{SWCFCSS, SWAssertions, SWEDDI},
		{SWEDDI, SWCFCSS, SWAssertions},
		{SWAssertions, SWEDDI, SWCFCSS},
		{SWEDDI, SWAssertions, SWCFCSS},
	}
	wantName := "CFCSS+Assertions+EDDI+LEAP-DICE"
	wantTag := "cfcss+assert-combined+eddisrb"
	for _, sw := range orders {
		c := Combo{DICE: true}
		c.Variant.SW = append([]SWTechnique(nil), sw...)
		c.Variant.AssertK = swres.AssertCombined
		c.Variant.EDDISrb = true
		if got := c.Name(); got != wantName {
			t.Errorf("SW order %v: Name = %q, want %q", sw, got, wantName)
		}
		if got := c.Variant.Tag(); got != wantTag {
			t.Errorf("SW order %v: Tag = %q, want %q", sw, got, wantTag)
		}
	}
}

// Tag order is frozen independently of display order: DFC sorts before the
// monitor core in cache keys while Name shows Monitor first.
func TestTagOrderFrozenAgainstDisplayOrder(t *testing.T) {
	v := Variant{DFC: true, Monitor: true}
	if got := v.Tag(); got != "dfc+mon.v2" {
		t.Errorf("Tag = %q, want %q (frozen on-disk cache key order)", got, "dfc+mon.v2")
	}
	c := Combo{Variant: v}
	if got := c.Name(); got != "Monitor+DFC" {
		t.Errorf("Name = %q, want %q (display order)", got, "Monitor+DFC")
	}
}

func TestComboForCanonicalizesArgumentOrder(t *testing.T) {
	a, err := ComboFor([]string{"Parity", "LEAP-DICE", "DFC"}, recovery.None)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComboFor([]string{"DFC", "Parity", "LEAP-DICE"}, recovery.None)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != b.Name() || a.Name() != "DFC+LEAP-DICE+Parity" {
		t.Errorf("ComboFor not canonical: %q vs %q", a.Name(), b.Name())
	}
	if _, err := ComboFor([]string{"Nope"}, recovery.None); err == nil {
		t.Error("unknown name should error")
	}
}

// testShield is a third-party architecture-layer technique used to prove
// the registry is genuinely pluggable: registering it must surface it in
// enumeration without touching the engine.
type testShield struct{ technique.Info }

func (testShield) Cost(m power.Model, core string) power.Cost {
	return power.Cost{Area: 0.01, Power: 0.02}
}
func (testShield) GammaFF(core string) float64   { return 0.005 }
func (testShield) GammaExec(core string) float64 { return 0 }
func (testShield) CompatibleWith(k recovery.Kind, core string) bool {
	return k == recovery.IR
}

func TestThirdPartyTechniqueEnumerates(t *testing.T) {
	reg := technique.Default()
	shield := testShield{technique.Info{
		TechName: "Shield", TechLayer: technique.Architecture, Cores: []string{"InO"},
	}}
	if err := reg.Register(shield); err != nil {
		t.Fatalf("register: %v", err)
	}
	defer reg.Unregister("Shield")

	combos := Enumerate(inject.InO)
	var alone, stacked, withIR, withEIR int
	for _, c := range combos {
		if !c.Active("Shield") {
			continue
		}
		name := c.Name()
		if !strings.Contains(name, "Shield") {
			t.Fatalf("active Shield missing from name %q", name)
		}
		switch {
		case name == "Shield":
			alone++
		case c.Recovery == recovery.IR:
			withIR++
		case c.Recovery == recovery.EIR:
			withEIR++
		default:
			stacked++
		}
	}
	if alone != 1 {
		t.Errorf("Shield standalone combos = %d, want 1", alone)
	}
	if withIR == 0 {
		t.Error("Shield should enumerate with IR recovery (declared compatible)")
	}
	if withEIR != 0 {
		t.Error("Shield must not enumerate with EIR recovery (not compatible)")
	}
	if stacked == 0 {
		t.Error("Shield should stack with other techniques")
	}
	// the OoO enumeration must not see the InO-only technique
	for _, c := range Enumerate(inject.OoO) {
		if c.Active("Shield") {
			t.Fatal("InO-only technique leaked into the OoO enumeration")
		}
	}
	// and after unregistration the baseline 417 returns
	reg.Unregister("Shield")
	if n := len(Enumerate(inject.InO)); n != 417 {
		t.Errorf("post-unregister enumeration = %d combos, want 417", n)
	}
}

func TestEnumerateWithFilter(t *testing.T) {
	reg := technique.Default()
	f, err := technique.ParseFilter("LEAP-DICE,Parity", reg)
	if err != nil {
		t.Fatal(err)
	}
	combos := EnumerateWith(inject.InO, f)
	// base set {LEAP-DICE, Parity}: 3 no-recovery subsets + Parity with
	// each of flush/IR/EIR = 6 combinations, no ABFT.
	if len(combos) != 6 {
		names := make([]string, len(combos))
		for i, c := range combos {
			names[i] = c.Name()
		}
		t.Fatalf("filtered enumeration = %d combos %v, want 6", len(combos), names)
	}
	for _, c := range combos {
		if c.EDS || c.Variant.DFC || c.Variant.ABFT != ABFTNone || len(c.Variant.SW) != 0 {
			t.Errorf("combo %q contains a filtered-out technique", c.Name())
		}
	}

	ex, err := technique.ParseFilter("-EDS,-ABFT-c,-ABFT-d", reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range EnumerateWith(inject.InO, ex) {
		if c.EDS || c.Variant.ABFT != ABFTNone {
			t.Errorf("combo %q contains an excluded technique", c.Name())
		}
	}
}
