package core

import (
	"strings"
	"testing"

	"clear/internal/inject"
)

// syntheticResult concentrates every failure in one unit: each of the
// unit's flip-flops takes 2 samples with 1 OMM; every other flip-flop
// takes 2 clean samples.
func syntheticResult(e *Engine, hotUnit string) *inject.Result {
	n := e.Space.NumBits()
	r := &inject.Result{PerFF: make([]inject.FFStats, n)}
	for bit := 0; bit < n; bit++ {
		st := inject.FFStats{N: 2}
		if e.Space.UnitOf(bit) == hotUnit {
			st.OMM = 1
		}
		r.PerFF[bit] = st
		r.Totals.N += int(st.N)
		r.Totals.OMM += int(st.OMM)
		r.Totals.Vanished += int(st.N) - int(st.OMM)
	}
	return r
}

func TestSelectiveHardeningRanksAndProtects(t *testing.T) {
	e := NewEngine(inject.InO)
	res := syntheticResult(e, "memory")
	opt := HardenOptions{
		DICE:        true,
		FixedGamma:  1,
		BaseSDCRate: float64(res.Totals.OMM) / float64(res.Totals.N),
	}

	pt0, plan0, units0 := e.SelectiveHardening(res, opt, SDC, 0)
	if len(units0) != 0 || pt0.Improvement != 1 {
		t.Fatalf("top-0 = %+v, units %v; want baseline (improvement 1, no units)", pt0, units0)
	}
	for _, c := range plan0.Assign {
		if c != CellNone {
			t.Fatal("top-0 protected a flip-flop")
		}
	}

	pt1, plan1, units1 := e.SelectiveHardening(res, opt, SDC, 1)
	if len(units1) != 1 || units1[0] != "memory" {
		t.Fatalf("top-1 units = %v, want the injected hot unit [memory]", units1)
	}
	if pt1.Improvement <= 1 {
		t.Fatalf("top-1 improvement = %v, want > 1", pt1.Improvement)
	}
	if pt1.Energy <= 0 {
		t.Fatalf("top-1 energy = %v, want > 0", pt1.Energy)
	}
	if !strings.Contains(pt1.Name, "top-1") || !strings.Contains(pt1.Name, "memory") {
		t.Fatalf("top-1 name = %q", pt1.Name)
	}
	// Every memory bit protected, nothing else.
	for bit, c := range plan1.Assign {
		hot := e.Space.UnitOf(bit) == "memory"
		if hot && c == CellNone {
			t.Fatalf("hot bit %d unprotected", bit)
		}
		if !hot && c != CellNone {
			t.Fatalf("cold bit %d protected", bit)
		}
	}

	// More units cannot lower improvement but must cost more energy; a
	// beyond-the-space k clamps to the full core.
	prevEnergy := pt1.Energy
	for _, k := range []int{2, 4, 8, 1000} {
		pt, _, units := e.SelectiveHardening(res, opt, SDC, k)
		if pt.Improvement < pt1.Improvement {
			t.Fatalf("top-%d improvement %v below top-1's %v", k, pt.Improvement, pt1.Improvement)
		}
		if pt.Energy < prevEnergy {
			t.Fatalf("top-%d energy %v below top-%s", k, pt.Energy, "smaller k")
		}
		prevEnergy = pt.Energy
		if k == 1000 && len(units) != len(e.Space.Units()) {
			t.Fatalf("top-1000 protected %d units, want all %d", len(units), len(e.Space.Units()))
		}
	}
}

// TestSelectivePointOnFrontier is the exploration-layer acceptance: at
// least one top-k structure-granularity point must survive Pareto pruning
// against the other top-k points and a deliberately dominated combination.
func TestSelectivePointOnFrontier(t *testing.T) {
	e := NewEngine(inject.InO)
	res := syntheticResult(e, "memory")
	opt := HardenOptions{
		DICE:        true,
		FixedGamma:  1,
		BaseSDCRate: float64(res.Totals.OMM) / float64(res.Totals.N),
	}
	var pts []ParetoPoint
	var selNames []string
	for _, k := range []int{1, 2, 4, 8} {
		pt, _, _ := e.SelectiveHardening(res, opt, SDC, k)
		pts = append(pts, pt)
		selNames = append(selNames, pt.Name)
	}
	// A dominated competitor: less improvement than top-1 at more energy
	// than any selective point.
	pts = append(pts, ParetoPoint{Name: "dominated-combo", Improvement: 1.0001, Energy: pts[len(pts)-1].Energy + 1})
	frontier := ParetoFrontier(pts)
	onFrontier := 0
	for _, p := range frontier {
		for _, n := range selNames {
			if p.Name == n {
				onFrontier++
			}
		}
	}
	if onFrontier == 0 {
		t.Fatalf("no selective point on the frontier: %+v", frontier)
	}
}
