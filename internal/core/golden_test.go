package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clear/internal/inject"
	"clear/internal/recovery"
)

// The golden fixtures in testdata/ were generated from the pre-registry
// engine (hardcoded technique library): the full sorted enumeration name
// lists per core and a set of EvalCombo outcomes at fixed seed/sampling.
// These tests prove the registry re-expression is behaviorally identical —
// same 586 combinations, same names, bit-identical Outcome floats.

func readGoldenNames(t *testing.T, file string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("read golden %s: %v", file, err)
	}
	var names []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names
}

func TestEnumerationMatchesGoldenNames(t *testing.T) {
	cases := []struct {
		kind inject.CoreKind
		file string
		n    int
	}{
		{inject.InO, "enum_names_ino.txt", 417},
		{inject.OoO, "enum_names_ooo.txt", 169},
	}
	total := 0
	for _, tc := range cases {
		want := readGoldenNames(t, tc.file)
		if len(want) != tc.n {
			t.Fatalf("%s: golden has %d names, want %d", tc.file, len(want), tc.n)
		}
		combos := Enumerate(tc.kind)
		if len(combos) != tc.n {
			t.Errorf("%v: enumerated %d combos, want %d", tc.kind, len(combos), tc.n)
		}
		got := make([]string, len(combos))
		for i, c := range combos {
			got[i] = c.Name()
		}
		sort.Strings(got)
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				g := "<missing>"
				if i < len(got) {
					g = got[i]
				}
				t.Fatalf("%v: sorted name %d = %q, golden %q", tc.kind, i, g, want[i])
			}
		}
		total += len(combos)
	}
	if total != 586 {
		t.Errorf("total combinations = %d, want 586", total)
	}
}

// comboFromLabel rebuilds a Combo from its display label through the
// registry ("A+B (+rec)" → ComboFor).
func comboFromLabel(label string) (Combo, error) {
	rec := recovery.None
	if i := strings.Index(label, " (+"); i >= 0 {
		recName := strings.TrimSuffix(label[i+3:], ")")
		for _, k := range []recovery.Kind{recovery.Flush, recovery.RoB, recovery.IR, recovery.EIR} {
			if k.String() == recName {
				rec = k
			}
		}
		label = label[:i]
	}
	return ComboFor(strings.Split(label, "+"), rec)
}

type goldenOutcome struct {
	Combo        string `json:"combo"`
	Core         string `json:"core"`
	Bench        string `json:"bench"`
	Metric       string `json:"metric"`
	Target       string `json:"target"`
	SDCImpBits   uint64 `json:"sdc_imp_bits"`
	DUEImpBits   uint64 `json:"due_imp_bits"`
	AreaBits     uint64 `json:"area_bits"`
	PowerBits    uint64 `json:"power_bits"`
	ExecTimeBits uint64 `json:"exec_time_bits"`
	GammaBits    uint64 `json:"gamma_bits"`
	Protected    int    `json:"protected"`
	TargetMet    bool   `json:"target_met"`
}

func (g goldenOutcome) target() float64 {
	if g.Target == "inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(g.Target, 64)
	if err != nil {
		panic("bad golden target " + g.Target)
	}
	return v
}

// TestEvalComboMatchesGolden replays the golden EvalCombo cases on the
// registry-driven engine and requires bit-identical floats. Combos are
// located by Name within the fresh enumeration, so the whole
// name→combo→campaign→plan→outcome path is exercised.
func TestEvalComboMatchesGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "evalcombo_golden.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var cases []goldenOutcome
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("golden file is empty")
	}

	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	engines := map[string]*Engine{}
	byName := map[string]map[string]Combo{}
	for _, coreName := range []string{"InO", "OoO"} {
		kind := inject.InO
		if coreName == "OoO" {
			kind = inject.OoO
		}
		e := NewEngine(kind)
		e.SamplesBase = 1
		e.SamplesTech = 1
		engines[coreName] = e
		m := map[string]Combo{}
		for _, c := range Enumerate(kind) {
			m[c.Name()] = c
		}
		byName[coreName] = m
	}

	for _, g := range cases {
		g := g
		t.Run(g.Core+"/"+g.Combo+"/"+g.Metric+g.Target, func(t *testing.T) {
			e := engines[g.Core]
			// Prefer the combo as enumerated (exercises the registry
			// enumeration end to end); golden cases outside the enumeration
			// (e.g. LEAP-DICE explicitly paired with a recovery) rebuild
			// from the label via the registry.
			c, ok := byName[g.Core][g.Combo]
			if !ok {
				var err error
				c, err = comboFromLabel(g.Combo)
				if err != nil {
					t.Fatalf("combo %q: %v", g.Combo, err)
				}
				if c.Name() != g.Combo {
					t.Fatalf("rebuilt combo names %q, want %q", c.Name(), g.Combo)
				}
			}
			var found bool
			for _, bb := range e.Benchmarks() {
				if bb.Name == g.Bench {
					found = true
					metric := SDC
					if g.Metric == "DUE" {
						metric = DUE
					}
					out, err := e.EvalCombo(bb, c, metric, g.target())
					if err != nil {
						t.Fatalf("EvalCombo: %v", err)
					}
					check := func(field string, got float64, wantBits uint64) {
						if math.Float64bits(got) != wantBits {
							t.Errorf("%s: got %v (bits %d), golden bits %d (%v)",
								field, got, math.Float64bits(got), wantBits,
								math.Float64frombits(wantBits))
						}
					}
					check("SDCImp", out.SDCImp, g.SDCImpBits)
					check("DUEImp", out.DUEImp, g.DUEImpBits)
					check("Cost.Area", out.Cost.Area, g.AreaBits)
					check("Cost.Power", out.Cost.Power, g.PowerBits)
					check("Cost.ExecTime", out.Cost.ExecTime, g.ExecTimeBits)
					check("Gamma", out.Gamma, g.GammaBits)
					if out.Protected != g.Protected {
						t.Errorf("Protected: got %d, golden %d", out.Protected, g.Protected)
					}
					if out.TargetMet != g.TargetMet {
						t.Errorf("TargetMet: got %v, golden %v", out.TargetMet, g.TargetMet)
					}
				}
			}
			if !found {
				t.Fatalf("benchmark %q not in %s list", g.Bench, g.Core)
			}
		})
	}
}
