// Package lanes provides the 64-lane occupancy bookkeeping of the packed
// fault-injection engine (internal/inject, DESIGN.md §14): a gang batches up
// to 64 fault scenarios of one checkpoint window, and a Mask tracks which of
// the gang's lane slots currently hold a live (undecided) scenario. The
// operations are thin wrappers over single-word bit arithmetic so the
// engine's inner loop — fork into the lowest free slot, iterate the live
// set, retire a decided lane — stays branch-light and allocation-free.
package lanes

import "math/bits"

// Width is the gang width: the number of fault scenarios one packed batch
// can carry, matching the lanes of one machine word.
const Width = 64

// Mask is a 64-lane occupancy set; bit i set means lane slot i is live.
type Mask uint64

// Has reports whether lane slot i is set.
func (m Mask) Has(i int) bool { return m>>uint(i)&1 != 0 }

// Set marks lane slot i live.
func (m *Mask) Set(i int) { *m |= 1 << uint(i) }

// Clear retires lane slot i.
func (m *Mask) Clear(i int) { *m &^= 1 << uint(i) }

// Empty reports whether no lane is live.
func (m Mask) Empty() bool { return m == 0 }

// Full reports whether every lane slot is live.
func (m Mask) Full() bool { return m == ^Mask(0) }

// Count returns the number of live lanes.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// FirstFree returns the lowest free lane slot, or Width when the mask is
// full.
func (m Mask) FirstFree() int { return bits.TrailingZeros64(^uint64(m)) }

// PopLowest clears and returns the lowest live lane slot; it must not be
// called on an empty mask (it would return Width and clear nothing).
func (m *Mask) PopLowest() int {
	i := bits.TrailingZeros64(uint64(*m))
	*m &= *m - 1
	return i
}
