package lanes

import "testing"

func TestMaskBasics(t *testing.T) {
	var m Mask
	if !m.Empty() || m.Count() != 0 || m.Full() {
		t.Fatalf("zero mask: Empty=%v Count=%d Full=%v", m.Empty(), m.Count(), m.Full())
	}
	if got := m.FirstFree(); got != 0 {
		t.Fatalf("FirstFree on empty = %d, want 0", got)
	}
	m.Set(0)
	m.Set(5)
	m.Set(63)
	if m.Empty() || m.Count() != 3 {
		t.Fatalf("after 3 sets: Empty=%v Count=%d", m.Empty(), m.Count())
	}
	for _, i := range []int{0, 5, 63} {
		if !m.Has(i) {
			t.Fatalf("Has(%d) = false after Set", i)
		}
	}
	if m.Has(1) || m.Has(62) {
		t.Fatal("Has reports unset slots")
	}
	if got := m.FirstFree(); got != 1 {
		t.Fatalf("FirstFree = %d, want 1", got)
	}
	m.Clear(5)
	if m.Has(5) || m.Count() != 2 {
		t.Fatalf("Clear(5): Has=%v Count=%d", m.Has(5), m.Count())
	}
}

func TestMaskPopLowest(t *testing.T) {
	var m Mask
	for _, i := range []int{3, 17, 63} {
		m.Set(i)
	}
	var got []int
	for !m.Empty() {
		got = append(got, m.PopLowest())
	}
	want := []int{3, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("PopLowest drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopLowest order %v, want %v", got, want)
		}
	}
}

func TestMaskFullAndFirstFree(t *testing.T) {
	var m Mask
	for i := 0; i < Width; i++ {
		if m.Full() {
			t.Fatalf("Full at %d live lanes", i)
		}
		if got := m.FirstFree(); got != i {
			t.Fatalf("FirstFree = %d with slots [0,%d) set", got, i)
		}
		m.Set(i)
	}
	if !m.Full() || m.Count() != Width {
		t.Fatalf("all set: Full=%v Count=%d", m.Full(), m.Count())
	}
	if got := m.FirstFree(); got != Width {
		t.Fatalf("FirstFree on full = %d, want %d", got, Width)
	}
}
