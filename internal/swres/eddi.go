// Package swres implements the software-level resilience techniques as real
// program transformations over CRV32 programs: EDDI (error detection by
// duplicated instructions, with and without store-readback), a selective
// EDDI variant, CFCSS (control-flow checking by software signatures), and
// likely-invariant software assertions with data/control variants. Each
// transform rewrites the symbolic instruction stream, reassembles, and
// verifies that the protected program still produces the golden output;
// execution-time overheads (and therefore γ) are measured, not assumed.
package swres

import (
	"fmt"

	"clear/internal/isa"
	"clear/internal/prog"
)

// Register convention (see internal/bench): benchmarks use r1..r13 and r31.
// The transforms own the rest:
//
//	r14      CFCSS run-time signature G
//	r15      CFCSS adjuster D / assertion scratch
//	r16      compare scratch (EDDI readback, CFCSS expected signature)
//	r17..r29 EDDI shadows of r1..r13
const (
	shadowOff  = 16
	maxBenchRg = 13
	sigReg     = 14
	adjReg     = 15
	scratchReg = 16
	// assertScratch is the assertion transform's scratch register; it must
	// not alias the CFCSS adjuster (r15), which is live across blocks.
	assertScratch = 30
)

func shadow(r uint8) uint8 {
	if r >= 1 && r <= maxBenchRg {
		return r + shadowOff
	}
	return r
}

// rebuild assembles transformed items and verifies semantic preservation:
// the protected program must still produce the original golden output (no
// false positives on the error-free run).
func rebuild(orig *prog.Program, suffix string, items []isa.Item) (*prog.Program, error) {
	p, err := prog.New(orig.Name+"+"+suffix, items, orig.Data, orig.MemWords)
	if err != nil {
		return nil, err
	}
	p.Vars = orig.Vars
	if err := p.ComputeExpected(16_000_000); err != nil {
		return nil, fmt.Errorf("swres %s: %w", p.Name, err)
	}
	if len(p.Expected) != len(orig.Expected) {
		return nil, fmt.Errorf("swres %s: transform changed output length", p.Name)
	}
	for i := range p.Expected {
		if p.Expected[i] != orig.Expected[i] {
			return nil, fmt.Errorf("swres %s: transform changed output", p.Name)
		}
	}
	return p, nil
}

// uniqueLabeler mints fresh labels that cannot collide with program labels.
type uniqueLabeler struct {
	prefix string
	n      int
}

func (u *uniqueLabeler) next() string {
	u.n++
	return fmt.Sprintf("__%s%d", u.prefix, u.n)
}

// failLabel names the shared detection exit appended to every transformed
// program: checks branch there on mismatch, so each check costs a single
// branch instruction on the error-free path.
const failLabel = "__swfail"

// appendFail terminates a transformed program with the shared TRAPD block.
// Stacked transforms reuse the block a previous transform appended.
func appendFail(items []isa.Item) []isa.Item {
	for _, it := range items {
		for _, l := range it.Labels {
			if l == failLabel {
				return items
			}
		}
	}
	return append(items, isa.Item{Labels: []string{failLabel}, Inst: isa.Inst{Op: isa.TRAPD}})
}

// cmpTrap emits: if a != b goto the shared TRAPD block. Comparing a
// register against itself (unduplicated registers) emits nothing.
func cmpTrap(items []isa.Item, a, b uint8, lbl *uniqueLabeler) []isa.Item {
	if a == b {
		return items
	}
	return append(items,
		isa.Item{Inst: isa.Inst{Op: isa.BNE, Rs1: a, Rs2: b}, Target: failLabel})
}

// EDDI applies error detection by duplicated instructions: every
// computational instruction is duplicated into shadow registers, and
// shadows are compared against primaries before stores, outputs and
// branches. With storeReadback, every store is read back and compared
// against the stored value (the [Lin 14] enhancement the paper shows is
// worth an order of magnitude in SDC improvement).
func EDDI(p *prog.Program, storeReadback bool) (*prog.Program, error) {
	return eddi(p, storeReadback, false)
}

// SelectiveEDDI is an "error detectors"-style variant that keeps the
// duplicated computation but places comparisons only at program outputs
// (end results), dropping the store/branch checks: cheaper in checks,
// markedly lower coverage (corrupted stores and control flow escape).
func SelectiveEDDI(p *prog.Program) (*prog.Program, error) {
	return eddi(p, false, true)
}

func eddi(p *prog.Program, storeReadback, selective bool) (*prog.Program, error) {
	lbl := &uniqueLabeler{prefix: "ed"}

	var out []isa.Item
	for _, it := range p.Items {
		in := it.Inst
		dup := func() {
			// Only benchmark data registers are duplicated; instructions
			// written by other transforms (CFCSS signatures, assertion
			// scratch) must not be re-executed.
			if in.Op.WritesReg() && (in.Rd < 1 || in.Rd > maxBenchRg) {
				return
			}
			d := in
			d.Rd = shadow(in.Rd)
			d.Rs1 = shadow(in.Rs1)
			d.Rs2 = shadow(in.Rs2)
			out = append(out, isa.Item{Inst: d})
		}
		// When checks are inserted before a labeled instruction, anchor
		// the labels on a NOP so jump entries execute the checks too.
		anchor := func() {
			if len(it.Labels) > 0 {
				out = append(out, isa.Item{Labels: it.Labels, Inst: isa.Inst{Op: isa.NOP}})
				it.Labels = nil
			}
		}
		switch in.Op.Fmt() {
		case isa.FmtR, isa.FmtI, isa.FmtLUI, isa.FmtLoad:
			out = append(out, it)
			dup()
		case isa.FmtStore:
			// compare address base and data against shadows, then store
			if !selective {
				anchor()
				out = cmpTrap(out, in.Rs1, shadow(in.Rs1), lbl)
				out = cmpTrap(out, in.Rs2, shadow(in.Rs2), lbl)
			}
			out = append(out, isa.Item{Labels: it.Labels, Inst: in, Target: it.Target})
			if storeReadback {
				out = append(out, isa.Item{Inst: isa.Inst{
					Op: isa.LW, Rd: scratchReg, Rs1: in.Rs1, Imm: in.Imm}})
				out = cmpTrap(out, scratchReg, in.Rs2, lbl)
			}
		case isa.FmtOut:
			anchor()
			out = cmpTrap(out, in.Rs1, shadow(in.Rs1), lbl)
			out = append(out, isa.Item{Inst: in, Target: it.Target})
		case isa.FmtBranch:
			if !selective {
				anchor()
				out = cmpTrap(out, in.Rs1, shadow(in.Rs1), lbl)
				out = cmpTrap(out, in.Rs2, shadow(in.Rs2), lbl)
				out = append(out, isa.Item{Inst: in, Target: it.Target})
			} else {
				out = append(out, it)
			}
		default:
			out = append(out, it)
		}
	}
	suffix := "eddi"
	switch {
	case selective:
		suffix = "seddi"
	case storeReadback:
		suffix = "eddi-srb"
	}
	return rebuild(p, suffix, appendFail(out))
}
