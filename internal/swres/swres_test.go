package swres

import (
	"testing"

	"clear/internal/bench"
	"clear/internal/ino"
	"clear/internal/isa"
	"clear/internal/prog"
)

// execCycles measures in-order-core execution time.
func execCycles(t *testing.T, p *prog.Program) int {
	t.Helper()
	c := ino.New(p)
	res := c.Run(20_000_000)
	if res.Status != prog.StatusHalted {
		t.Fatalf("%s: status %v", p.Name, res.Status)
	}
	if !p.OutputsEqual(res.Output) {
		t.Fatalf("%s: wrong output on pipeline", p.Name)
	}
	return res.Steps
}

func TestEDDIAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.MustProgram()
			tp, err := EDDI(p, true)
			if err != nil {
				t.Fatal(err)
			}
			base := execCycles(t, p)
			prot := execCycles(t, tp)
			overhead := float64(prot)/float64(base) - 1
			t.Logf("%s: EDDI-srb exec overhead %.0f%%", b.Name, 100*overhead)
			if overhead < 0.3 {
				t.Errorf("EDDI overhead %.2f suspiciously low", overhead)
			}
			if overhead > 3.5 {
				t.Errorf("EDDI overhead %.2f suspiciously high", overhead)
			}
		})
	}
}

func TestCFCSSAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.MustProgram()
			tp, err := CFCSS(p)
			if err != nil {
				t.Fatal(err)
			}
			base := execCycles(t, p)
			prot := execCycles(t, tp)
			overhead := float64(prot)/float64(base) - 1
			t.Logf("%s: CFCSS exec overhead %.0f%%", b.Name, 100*overhead)
			if overhead <= 0 {
				t.Errorf("CFCSS added no overhead?")
			}
		})
	}
}

func TestAssertionsAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.MustProgram()
			for _, kind := range []AssertKind{AssertData, AssertControl, AssertCombined} {
				tp, err := Assertions(p, kind)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				base := execCycles(t, p)
				prot := execCycles(t, tp)
				// control checks guard loop back-edges only; programs whose
				// loops close with unconditional jumps legitimately get none
				if prot <= base && kind != AssertControl {
					t.Errorf("%v: no overhead added", kind)
				}
			}
		})
	}
}

func TestSelectiveEDDICheaper(t *testing.T) {
	p := bench.ByName("gzip").MustProgram()
	full, err := EDDI(p, false)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectiveEDDI(p)
	if err != nil {
		t.Fatal(err)
	}
	cf := execCycles(t, full)
	cs := execCycles(t, sel)
	if cs >= cf {
		t.Fatalf("selective EDDI (%d) should be cheaper than full EDDI (%d)", cs, cf)
	}
}

// EDDI must detect a corrupted register value that would otherwise cause an
// output mismatch.
func TestEDDIDetectsRegisterCorruption(t *testing.T) {
	p := bench.ByName("inner_product").MustProgram()
	tp, err := EDDI(p, true)
	if err != nil {
		t.Fatal(err)
	}
	detected, omm := 0, 0
	for step := 40; step < 400; step += 7 {
		s := prog.NewISS(tp)
		fired := false
		at := step
		s.Hook = func(s *prog.ISS, st int) {
			if !fired && st == at {
				s.R[9] ^= 1 << 13 // corrupt the accumulator (primary copy)
				fired = true
			}
		}
		res := s.Run(8_000_000)
		switch res.Status {
		case prog.StatusDetected:
			detected++
		case prog.StatusHalted:
			if !tp.OutputsEqual(res.Output) {
				omm++
			}
		}
	}
	t.Logf("EDDI: %d detected, %d escaped as OMM", detected, omm)
	if detected == 0 {
		t.Fatal("EDDI detected nothing")
	}
	if omm > detected {
		t.Fatalf("EDDI escaped more than it caught (%d vs %d)", omm, detected)
	}
}

// CFCSS must detect control-flow corruption (a wild PC change).
func TestCFCSSDetectsControlFlowError(t *testing.T) {
	p := bench.ByName("parser").MustProgram()
	tp, err := CFCSS(p)
	if err != nil {
		t.Fatal(err)
	}
	detected, other := 0, 0
	for step := 50; step < 500; step += 9 {
		s := prog.NewISS(tp)
		fired := false
		at := step
		s.Hook = func(s *prog.ISS, st int) {
			if !fired && st == at {
				s.PC += 17 // wild jump
				fired = true
			}
		}
		res := s.Run(8_000_000)
		if res.Status == prog.StatusDetected {
			detected++
		} else {
			other++
		}
	}
	t.Logf("CFCSS: %d detected, %d undetected", detected, other)
	if detected == 0 {
		t.Fatal("CFCSS detected no control-flow errors")
	}
}

// Assertions must detect out-of-range data corruption at output sites.
func TestAssertionsDetectRangeViolation(t *testing.T) {
	p := bench.ByName("perlbmk").MustProgram()
	tp, err := Assertions(p, AssertCombined)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for step := 30; step < 600; step += 11 {
		s := prog.NewISS(tp)
		fired := false
		at := step
		s.Hook = func(s *prog.ISS, st int) {
			if !fired && st == at {
				s.R[9] ^= 1 << 30 // blow the hash accumulator out of range
				fired = true
			}
		}
		res := s.Run(8_000_000)
		if res.Status == prog.StatusDetected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("assertions detected nothing")
	}
	t.Logf("assertions detected %d corruptions", detected)
}

// Transforms must compose: CFCSS then assertions then EDDI, still golden.
func TestTransformComposition(t *testing.T) {
	p := bench.ByName("mcf").MustProgram()
	tp, err := CFCSS(p)
	if err != nil {
		t.Fatal(err)
	}
	tp, err = Assertions(tp, AssertData)
	if err != nil {
		t.Fatal(err)
	}
	tp, err = EDDI(tp, true)
	if err != nil {
		t.Fatal(err)
	}
	execCycles(t, tp) // verifies golden output on the pipeline
}

func TestCFCSSRejectsCalls(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(5, 1)
	b.Jal(31, "fn")
	b.Halt()
	b.Label("fn")
	b.Ret(31)
	p, err := prog.New("call", b.Items(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeExpected(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := CFCSS(p); err == nil {
		t.Fatal("CFCSS should reject programs with calls")
	}
}

// False positives: assertions trained on one input and run on another can
// fire on an error-free run; a generous margin suppresses them; training on
// the evaluation input itself never fires (the paper's final analysis).
func TestAssertionFalsePositives(t *testing.T) {
	var tightFired, wideFired int
	var checks int
	for _, name := range []string{"bzip2", "crafty", "gzip", "mcf", "parser"} {
		b := bench.ByName(name)
		eval := b.MustProgram()
		alt, err := b.AltProgram()
		if err != nil {
			t.Fatal(err)
		}
		tight, err := MeasureFalsePositives(eval, alt, AssertCombined, 0, 64)
		if err != nil {
			t.Fatalf("%s tight: %v", name, err)
		}
		wide, err := MeasureFalsePositives(eval, alt, AssertCombined, 32, 1)
		if err != nil {
			t.Fatalf("%s wide: %v", name, err)
		}
		self, err := MeasureFalsePositives(eval, eval, AssertCombined, 0, 64)
		if err != nil {
			t.Fatalf("%s self: %v", name, err)
		}
		if self.Fired {
			t.Fatalf("%s: self-trained assertions fired on a clean run", name)
		}
		if tight.ChecksExecuted == 0 {
			t.Fatalf("%s: no checks executed", name)
		}
		checks += tight.ChecksExecuted
		if tight.Fired {
			tightFired++
		}
		if wide.Fired {
			wideFired++
		}
	}
	t.Logf("tight margins: %d/5 benchmarks fired (%d dynamic checks); wide margins: %d/5",
		tightFired, checks, wideFired)
	if tightFired == 0 {
		t.Error("no false positives under tight margins and mismatched inputs; FP machinery inert?")
	}
	if wideFired > tightFired {
		t.Error("widening margins should not increase false positives")
	}
}
