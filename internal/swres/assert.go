package swres

import (
	"fmt"

	"clear/internal/isa"
	"clear/internal/prog"
)

// AssertKind selects which likely-invariant assertion checks are inserted
// (paper Table 10 compares data-variable and control-variable checks).
type AssertKind int

// Assertion variants.
const (
	AssertData     AssertKind = iota // value-range checks on stored/output data
	AssertControl                    // range checks on branch/loop control variables
	AssertCombined                   // both
)

func (k AssertKind) String() string {
	switch k {
	case AssertData:
		return "data"
	case AssertControl:
		return "control"
	case AssertCombined:
		return "combined"
	}
	return "?"
}

// siteRange is a trained likely invariant: the observed value range at one
// static program point.
type siteRange struct {
	min, max int32
	seen     bool
}

func (r *siteRange) observe(v int32) {
	if !r.seen {
		r.min, r.max, r.seen = v, v, true
		return
	}
	if v < r.min {
		r.min = v
	}
	if v > r.max {
		r.max = v
	}
}

// train profiles the program to learn per-site value ranges: stored values
// and outputs (data variables) and first branch operands (control
// variables). The paper trains on representative inputs and folds the
// evaluation input into training for its final analysis; with our
// deterministic inputs this yields zero false positives by construction.
func train(p *prog.Program) (data, control map[int]*siteRange, err error) {
	data = map[int]*siteRange{}
	control = map[int]*siteRange{}
	s := prog.NewISS(p)
	s.Hook = func(s *prog.ISS, step int) {
		if s.PC < 0 || s.PC >= len(p.Code) {
			return
		}
		in := p.Code[s.PC]
		switch {
		case in.Op == isa.SW:
			r := data[s.PC]
			if r == nil {
				r = &siteRange{}
				data[s.PC] = r
			}
			r.observe(int32(s.R[in.Rs2]))
		case in.Op == isa.OUT:
			r := data[s.PC]
			if r == nil {
				r = &siteRange{}
				data[s.PC] = r
			}
			r.observe(int32(s.R[in.Rs1]))
		case in.Op.IsBranch():
			r := control[s.PC]
			if r == nil {
				r = &siteRange{}
				control[s.PC] = r
			}
			r.observe(int32(s.R[in.Rs1]))
		}
	}
	res := s.Run(8_000_000)
	if res.Status != prog.StatusHalted {
		return nil, nil, fmt.Errorf("swres assert: training run of %s: %v", p.Name, res.Status)
	}
	return data, control, nil
}

// emitLi loads an arbitrary 32-bit constant into rd at the item level.
func emitLi(items []isa.Item, rd uint8, v int32) []isa.Item {
	if v >= -32768 && v < 32768 {
		return append(items, isa.Item{Inst: isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: v}})
	}
	items = append(items, isa.Item{Inst: isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(uint32(v) >> 16)}})
	if lo := int32(uint32(v) & 0xFFFF); lo != 0 {
		items = append(items, isa.Item{Inst: isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: lo}})
	}
	return items
}

// rangeCheck emits: if val < min or val > max, branch to the shared TRAPD
// block (signed bounds from training).
func rangeCheck(items []isa.Item, val uint8, r *siteRange, lbl *uniqueLabeler) []isa.Item {
	items = emitLi(items, assertScratch, r.min)
	items = append(items,
		isa.Item{Inst: isa.Inst{Op: isa.BLT, Rs1: val, Rs2: assertScratch}, Target: failLabel})
	items = emitLi(items, assertScratch, r.max)
	items = append(items,
		isa.Item{Inst: isa.Inst{Op: isa.BLT, Rs1: assertScratch, Rs2: val}, Target: failLabel})
	return items
}

// instrument inserts the range checks into p's item stream using the given
// trained site ranges.
func instrument(p *prog.Program, data, control map[int]*siteRange, kind AssertKind) []isa.Item {
	lbl := &uniqueLabeler{prefix: "as"}
	var out []isa.Item
	for pc, it := range p.Items {
		in := it.Inst
		wantData := kind != AssertControl
		wantCtl := kind != AssertData
		anchor := func() {
			if len(it.Labels) > 0 {
				out = append(out, isa.Item{Labels: it.Labels, Inst: isa.Inst{Op: isa.NOP}})
				it.Labels = nil
			}
		}
		switch {
		case wantData && in.Op == isa.SW && data[pc] != nil:
			anchor()
			out = rangeCheck(out, in.Rs2, data[pc], lbl)
			out = append(out, isa.Item{Inst: in, Target: it.Target})
		case wantData && in.Op == isa.OUT && data[pc] != nil:
			anchor()
			out = rangeCheck(out, in.Rs1, data[pc], lbl)
			out = append(out, isa.Item{Inst: in, Target: it.Target})
		case wantCtl && in.Op.IsBranch() && control[pc] != nil && in.Rs1 != 0 &&
			isBackward(p, pc, it.Target):
			// control-variable checks guard loop back-edges (loop indices,
			// pointers) — the paper's hand-picked control sites
			anchor()
			out = rangeCheck(out, in.Rs1, control[pc], lbl)
			out = append(out, isa.Item{Inst: in, Target: it.Target})
		default:
			out = append(out, it)
		}
	}
	return appendFail(out)
}

// isBackward reports whether a branch at pc targets an earlier pc (a loop
// back-edge).
func isBackward(p *prog.Program, pc int, target string) bool {
	t, ok := p.Labels[target]
	return ok && t <= pc
}

// mergeRanges widens dst site ranges to cover src observations.
func mergeRanges(dst, src map[int]*siteRange) {
	for pc, r := range src {
		if d, ok := dst[pc]; ok {
			if r.min < d.min {
				d.min = r.min
			}
			if r.max > d.max {
				d.max = r.max
			}
		} else {
			dst[pc] = r
		}
	}
}

// Assertions inserts likely-invariant checks trained by profiling:
// data-variable checks guard values flowing to memory and output;
// control-variable checks guard branch operands (loop indices, pointers).
// Training uses p's own input (the paper's final-analysis setting: zero
// false positives by construction). Use AssertionsTrained to also fold in
// representative training inputs, which loosens the invariants the way the
// paper's multi-input training does.
func Assertions(p *prog.Program, kind AssertKind) (*prog.Program, error) {
	return AssertionsTrained(p, nil, kind)
}

// AssertionsTrained trains on p plus additional same-code programs with
// different inputs (the paper trains on representative inputs and folds the
// evaluation input in for its final analysis), then instruments p.
func AssertionsTrained(p *prog.Program, extraTrainers []*prog.Program, kind AssertKind) (*prog.Program, error) {
	data, control, err := train(p)
	if err != nil {
		return nil, err
	}
	for _, tp := range extraTrainers {
		if len(tp.Code) != len(p.Code) {
			return nil, fmt.Errorf("swres: trainer %s code differs from %s", tp.Name, p.Name)
		}
		d2, c2, err := train(tp)
		if err != nil {
			return nil, err
		}
		mergeRanges(data, d2)
		mergeRanges(control, c2)
	}
	return rebuild(p, "assert-"+kind.String(), instrument(p, data, control, kind))
}

// widen expands a trained range by width*num/den plus a constant slack,
// modeling the margins a deployment would add around training observations.
func widen(r *siteRange, num, den int32) *siteRange {
	w := int64(r.max) - int64(r.min)
	pad := int64(num)*(w+1)/int64(den) + 1
	lo := int64(r.min) - pad
	hi := int64(r.max) + pad
	clamp := func(v int64) int32 {
		if v < -(1 << 31) {
			return -(1 << 31)
		}
		if v > (1<<31)-1 {
			return (1 << 31) - 1
		}
		return int32(v)
	}
	return &siteRange{min: clamp(lo), max: clamp(hi), seen: true}
}

// FPResult reports an assertion false-positive measurement: checks trained
// on one input set and executed on another (paper Sec 2.4: "it is possible
// to encounter false positives").
type FPResult struct {
	Fired          bool // the error-free run tripped a check
	ChecksExecuted int  // dynamic range-check branch executions
}

// MeasureFalsePositives trains assertion ranges on trainP (with the given
// widening margin num/den), instruments evalP with them, and runs the
// error-free evaluation input: any detection is a false positive. evalP
// and trainP must share code (data-only input variation).
func MeasureFalsePositives(evalP, trainP *prog.Program, kind AssertKind, num, den int32) (FPResult, error) {
	if len(evalP.Code) != len(trainP.Code) {
		return FPResult{}, fmt.Errorf("swres: train/eval programs differ in code")
	}
	data, control, err := train(trainP)
	if err != nil {
		return FPResult{}, err
	}
	for pc, r := range data {
		data[pc] = widen(r, num, den)
	}
	for pc, r := range control {
		control[pc] = widen(r, num, den)
	}
	items := instrument(evalP, data, control, kind)
	tp, err := prog.New(evalP.Name+"+assert-fp", items, evalP.Data, evalP.MemWords)
	if err != nil {
		return FPResult{}, err
	}
	// count dynamic executions of the check branches (BLT targeting the
	// shared fail block)
	failPC, ok := tp.Labels[failLabel]
	if !ok {
		return FPResult{}, fmt.Errorf("swres: no fail label")
	}
	checkPC := map[int]bool{}
	for pc, in := range tp.Code {
		if in.Op == isa.BLT && pc+int(in.Imm) == failPC {
			checkPC[pc] = true
		}
	}
	s := prog.NewISS(tp)
	executed := 0
	s.Hook = func(s *prog.ISS, step int) {
		if checkPC[s.PC] {
			executed++
		}
	}
	res := s.Run(16_000_000)
	out := FPResult{ChecksExecuted: executed}
	switch res.Status {
	case prog.StatusDetected:
		out.Fired = true
	case prog.StatusHalted:
	default:
		return out, fmt.Errorf("swres: FP run ended with %v", res.Status)
	}
	return out, nil
}
