package swres

import (
	"fmt"

	"clear/internal/isa"
	"clear/internal/prog"
)

// CFCSS applies control-flow checking by software signatures [Oh 02a]:
// every basic block gets a static signature; a run-time signature register
// G is updated at block entry with the XOR difference from the designated
// predecessor and compared against the block's static signature. Blocks
// with multiple predecessors use the adjuster register D, set on each
// non-designated incoming edge (fall-through edges set D in the
// predecessor; taken edges are split through a stub that sets D and jumps).
//
// Programs containing indirect jumps (JALR) or linking JALs cannot be
// instrumented (their CFG edges are not static); plain gotos (JAL r0) are
// supported.
func CFCSS(p *prog.Program) (*prog.Program, error) {
	for _, it := range p.Items {
		if it.Inst.Op == isa.JALR || (it.Inst.Op == isa.JAL && it.Inst.Rd != 0) {
			return nil, fmt.Errorf("swres cfcss: %s contains calls/indirect jumps", p.Name)
		}
	}
	nb := len(p.Blocks)
	if nb == 0 {
		return nil, fmt.Errorf("swres cfcss: %s has no blocks", p.Name)
	}

	// Signatures: small distinct constants that fit a single Li.
	sig := make([]int32, nb)
	for j := range sig {
		sig[j] = int32((j*2131 + 977) % 32000)
	}

	// Predecessor lists from the CFG.
	preds := make([][]int, nb)
	for i, blk := range p.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], i)
		}
	}
	// The entry block has a virtual predecessor with signature 0.
	multiPred := func(j int) bool {
		n := len(preds[j])
		if j == 0 {
			n++
		}
		return n > 1
	}
	desigSig := func(j int) int32 {
		if j == 0 {
			return 0 // virtual entry predecessor
		}
		if len(preds[j]) == 0 {
			return 0 // unreachable statically; keep a defined value
		}
		return sig[preds[j][0]]
	}
	isDesig := func(pred, j int) bool {
		if j == 0 {
			return false
		}
		return len(preds[j]) > 0 && preds[j][0] == pred
	}

	lbl := &uniqueLabeler{prefix: "cf"}
	// Pre-mint one label per block so forward edges can be retargeted to
	// block entry instrumentation before that block is emitted.
	blockLabel := make([]string, nb)
	for j := range blockLabel {
		blockLabel[j] = lbl.next()
	}
	var out []isa.Item
	var stubs []isa.Item

	// emitLi emits a single-instruction load of a small constant.
	emitLi := func(items []isa.Item, rd uint8, v int32) []isa.Item {
		return append(items, isa.Item{Inst: isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: 0, Imm: v}})
	}

	// Prologue: G starts at the virtual entry signature 0, D cleared.
	out = emitLi(out, sigReg, 0)
	out = emitLi(out, adjReg, 0)

	for j, blk := range p.Blocks {
		// Block-entry instrumentation, carrying the block's labels so that
		// jump entries pass through the check.
		entryLabels := append([]string{}, p.Items[blk.Start].Labels...)
		entryLabels = append(entryLabels, blockLabel[j])

		d := desigSig(j) ^ sig[j]
		out = append(out, isa.Item{Labels: entryLabels,
			Inst: isa.Inst{Op: isa.XORI, Rd: sigReg, Rs1: sigReg, Imm: d}})
		if multiPred(j) {
			out = append(out, isa.Item{
				Inst: isa.Inst{Op: isa.XOR, Rd: sigReg, Rs1: sigReg, Rs2: adjReg}})
			// reset D so the designated path needs no adjustment next time
			out = emitLi(out, adjReg, 0)
		}
		out = emitLi(out, scratchReg, sig[j])
		out = append(out,
			isa.Item{Inst: isa.Inst{Op: isa.BNE, Rs1: sigReg, Rs2: scratchReg}, Target: failLabel})

		// Body. Labels of the first item were consumed by the entry code.
		for pc := blk.Start; pc < blk.End; pc++ {
			it := p.Items[pc]
			if pc == blk.Start {
				it.Labels = nil
			}
			isTerm := pc == blk.End-1
			in := it.Inst
			if !isTerm || !in.Op.IsControl() {
				// Before falling through into a multi-pred successor on a
				// non-designated edge, set D.
				if isTerm {
					if ft := blockIndexAt(p, blk.End); ft >= 0 && multiPred(ft) && !isDesig(j, ft) {
						out = emitLi(out, adjReg, sig[j]^desigSig(ft))
					}
				}
				out = append(out, it)
				continue
			}
			// Terminator is a branch or goto.
			switch {
			case in.Op == isa.JAL: // goto
				t := targetBlock(p, it)
				if t >= 0 && multiPred(t) && !isDesig(j, t) {
					out = emitLi(out, adjReg, sig[j]^desigSig(t))
				}
				out = append(out, it)
			default: // conditional branch: taken edge may need a stub
				ft := blockIndexAt(p, blk.End)
				if ft >= 0 && multiPred(ft) && !isDesig(j, ft) {
					out = emitLi(out, adjReg, sig[j]^desigSig(ft))
				}
				t := targetBlock(p, it)
				if t >= 0 && multiPred(t) && !isDesig(j, t) {
					// split the taken edge: stub sets D then jumps on
					stub := lbl.next()
					stubs = append(stubs, isa.Item{Labels: []string{stub},
						Inst: isa.Inst{Op: isa.ADDI, Rd: adjReg, Rs1: 0, Imm: sig[j] ^ desigSig(t)}})
					stubs = append(stubs, isa.Item{
						Inst: isa.Inst{Op: isa.JAL, Rd: 0}, Target: labelForBlock(p, blockLabel, t, it.Target)})
					it.Target = stub
				}
				out = append(out, it)
			}
		}
	}
	out = append(out, stubs...)
	return rebuild(p, "cfcss", appendFail(out))
}

// blockIndexAt maps an original pc to its block index (or -1 past the end).
func blockIndexAt(p *prog.Program, pc int) int {
	return p.BlockOf(pc)
}

// targetBlock resolves a symbolic branch target to its block index.
func targetBlock(p *prog.Program, it isa.Item) int {
	if it.Target == "" {
		return -1
	}
	pc, ok := p.Labels[it.Target]
	if !ok {
		return -1
	}
	return p.BlockOf(pc)
}

// labelForBlock returns a label that lands on block t's entry
// instrumentation. The original target label also lands there (entry code
// carries it), so it is always safe to reuse.
func labelForBlock(p *prog.Program, blockLabel []string, t int, origTarget string) string {
	if t >= 0 && t < len(blockLabel) && blockLabel[t] != "" {
		return blockLabel[t]
	}
	return origTarget
}
