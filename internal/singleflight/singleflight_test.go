package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedExecution checks that N concurrent callers of the same key run
// the function exactly once and all observe its value, with every caller
// but the executor reporting joined.
func TestSharedExecution(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	joins := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, joined := g.Do("k", func() (int, error) {
				calls.Add(1)
				close(started)
				<-release // hold the call open so every goroutine piles up
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: unexpected error %v", i, err)
			}
			vals[i] = v
			joins[i] = joined
		}(i)
	}
	// Hold the single execution open long enough for every goroutine to
	// reach Do and join the in-flight call before it completes.
	<-started
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("function ran %d times, want 1", got)
	}
	joined := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, vals[i])
		}
		if joins[i] {
			joined++
		}
	}
	if joined != n-1 {
		t.Errorf("%d callers joined, want %d", joined, n-1)
	}
}

// TestErrorNotRetained checks that a failed call is forgotten: the next
// sequential call re-executes instead of replaying the error.
func TestErrorNotRetained(t *testing.T) {
	var g Group[string]
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (string, error) { return "", boom })
	if err != boom {
		t.Fatalf("first call: err = %v, want boom", err)
	}
	v, err, joined := g.Do("k", func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" || joined {
		t.Fatalf("second call = (%q, %v, joined=%v), want (ok, nil, false)", v, err, joined)
	}
}

// TestDistinctKeysIndependent checks that different keys never share.
func TestDistinctKeysIndependent(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _ := g.Do(string(rune('a'+i)), func() (int, error) {
				calls.Add(1)
				return i, nil
			})
			if v != i {
				t.Errorf("key %d got %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("calls = %d, want 8", calls.Load())
	}
}
