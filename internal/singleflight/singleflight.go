// Package singleflight deduplicates concurrent calls that compute the same
// keyed value: while one caller runs the computation, every other caller
// with the same key blocks and shares the first caller's result instead of
// recomputing it. It is the mechanism behind core.Engine's exactly-once
// campaign guarantee under a parallel sweep.
//
// Unlike a memo cache, a Group forgets a key as soon as its in-flight call
// finishes; long-term memoization is the caller's job (the Engine stores
// finished results in its own maps inside the in-flight function, which
// closes the window between "not yet memoized" and "call forgotten").
package singleflight

import "sync"

// call is one in-flight computation.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group deduplicates concurrent calls by key. The zero value is ready to
// use. V is the computed value type.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do runs fn exactly once per key among concurrent callers: the first
// caller executes fn while later callers with the same key wait for and
// share its return values. joined reports whether this caller shared
// another caller's execution instead of running fn itself. Errors are
// shared like values and never retained past the in-flight call.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, joined bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
