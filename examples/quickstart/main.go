// Quickstart: inject soft errors into the in-order core running the gzip
// benchmark and classify the outcomes — the raw reliability-analysis step
// at the bottom of the CLEAR framework.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"clear"
)

func main() {
	b := clear.BenchmarkByName("gzip")
	p, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	// fault-free run: nominal execution time
	c := clear.NewCore(clear.InO, p)
	nominal := c.Run(1_000_000)
	fmt.Printf("gzip on the in-order core: %d cycles fault-free, output %v\n",
		nominal.Steps, nominal.Output)

	// inject 400 uniform random (flip-flop, cycle) soft errors
	nBits := c.SpaceOf().NumBits()
	rng := rand.New(rand.NewSource(1))
	counts := map[clear.InjectionOutcome]int{}
	const n = 400
	for i := 0; i < n; i++ {
		bit := rng.Intn(nBits)
		cycle := rng.Intn(nominal.Steps)
		out := clear.InjectOne(clear.InO, p, bit, cycle, nominal.Steps)
		counts[out]++
	}

	fmt.Printf("\noutcomes of %d injections into %d flip-flops:\n", n, nBits)
	for _, o := range []clear.InjectionOutcome{clear.Vanished, clear.OMM, clear.UT, clear.Hang} {
		fmt.Printf("  %-9v %4d  (%.1f%%)\n", o, counts[o], 100*float64(counts[o])/n)
	}
	fmt.Printf("\nSDC-causing: %.1f%%   DUE-causing: %.1f%%\n",
		100*float64(counts[clear.OMM])/n,
		100*float64(counts[clear.UT]+counts[clear.Hang])/n)
	fmt.Println("\n(most errors vanish — that asymmetry is what selective protection exploits)")
}
