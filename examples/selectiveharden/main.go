// Selectiveharden: the paper's headline result in one program. Reach a 50x
// SDC improvement on the in-order core with the cross-layer combination of
// selective LEAP-DICE hardening, logic parity checking and micro-
// architectural flush recovery, and compare its cost against hardening
// alone — then show the "max" design point that protects every flip-flop.
package main

import (
	"fmt"
	"log"
	"math"

	"clear"
)

func main() {
	eng := clear.NewEngine(clear.InO)
	// Small campaigns keep this example interactive; cmd/precompute +
	// cmd/tables reproduce the full-resolution numbers.
	eng.SamplesBase, eng.SamplesTech = 4, 2
	b := clear.BenchmarkByName("gap")

	evaluate := func(name string, combo clear.Combo, target float64) {
		out, err := eng.EvalCombo(b, combo, clear.SDC, target)
		if err != nil {
			log.Fatal(err)
		}
		tgt := fmt.Sprintf("%.0fx", target)
		if math.IsInf(target, 1) {
			tgt = "max"
		}
		fmt.Printf("%-34s @%-4s  SDC %-8s DUE %-8s  area %5.2f%%  energy %5.2f%%  γ %.3f  (%d FFs protected)\n",
			name, tgt, impStr(out.SDCImp), impStr(out.DUEImp),
			100*out.Cost.Area, 100*out.Cost.Energy(), out.Gamma, out.Protected)
	}

	fmt.Println("cross-layer mix vs single-layer at a 50x SDC target (gap, InO core):")
	mix := clear.Combo{DICE: true, Parity: true}
	diceOnly := clear.Combo{DICE: true}
	bounded := clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}
	evaluate("LEAP-DICE + parity", mix, 50)
	evaluate("LEAP-DICE only", diceOnly, 50)
	evaluate("LEAP-DICE + parity + flush", bounded, 50)

	fmt.Println("\nsweeping the target for the bounded combination:")
	for _, tgt := range []float64{2, 5, 50, 500, math.Inf(1)} {
		evaluate("LEAP-DICE + parity + flush", bounded, tgt)
	}
	fmt.Println("\n(the DICE+parity mix beats DICE-only wherever timing slack lets the")
	fmt.Println(" cheaper parity cells carry the protection; attaching flush recovery")
	fmt.Println(" adds its fixed hardware cost but turns every detection into a")
	fmt.Println(" correction, buying DUE improvement as well — compare the DUE columns)")
}

func impStr(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.1fx", v)
}
