// Newtechnique: the paper's Sec 5 use of CLEAR — evaluating whether a NEW
// soft-error resilience technique is competitive before it is built. Where
// the paper compares a proposal's reported numbers against the cross-layer
// bound, the technique registry lets us go further: register the proposal
// as a first-class technique and let CLEAR itself enumerate it, combine it
// with the existing library and recovery mechanisms, measure it by fault
// injection, and Pareto-rank the results — all through the public clear
// API, without touching any internal package.
//
// The hypothetical technique here is "FlowGuard", a lightweight
// architecture-layer commit-PC checker: it flags commits that leave the
// program image or jump to a target that is neither sequential nor a basic
// -block entry. It is a cheaper, weaker cousin of DFC (no signatures), with
// bounded detection latency, so it can drive the IR and EIR recovery
// mechanisms.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"clear"
)

// flowGuard is the proposed technique. Embedding clear.TechniqueInfo
// supplies identity (name, layer, applicable cores) and a zero base cost;
// the methods below add the capabilities the engine probes for.
type flowGuard struct {
	clear.TechniqueInfo
}

// Cost declares the checker's fixed hardware contribution (estimated from
// a comparator tree plus a block-start lookup table).
func (flowGuard) Cost(m clear.CostModel, core string) clear.Cost {
	return clear.Cost{Area: 0.004, Power: 0.005}
}

// GammaFF / GammaExec: the checker adds a few pipeline-tracking flip-flops
// (more raw state exposed to strikes) and no execution-time overhead.
func (flowGuard) GammaFF(core string) float64   { return 0.004 }
func (flowGuard) GammaExec(core string) float64 { return 0 }

// CompatibleWith: detection at commit has bounded latency, so FlowGuard
// can drive the instruction-replay recoveries (like DFC, unlike software
// detectors).
func (flowGuard) CompatibleWith(k clear.RecoveryKind, core string) bool {
	return k == clear.RecIR || k == clear.RecEIR
}

// Hook is the checker itself, observing the commit stream of an injection
// run: any commit outside the program image, or a non-sequential transfer
// to something that is not a basic-block entry, is a detection.
func (flowGuard) Hook(p *clear.Program) clear.CommitHook {
	starts := make(map[uint32]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		starts[uint32(b.Start)] = true
	}
	limit := uint32(len(p.Code))
	prev, seen := uint32(0), false
	return func(ev clear.CommitEvent) bool {
		pc := ev.PC
		if pc >= limit {
			return true
		}
		if seen && pc != prev+1 && !starts[pc] {
			return true
		}
		prev, seen = pc, true
		return false
	}
}

// The compiler checks that flowGuard exposes what the engine will probe.
var _ interface {
	clear.Technique
	clear.GammaContributor
	clear.CommitHooker
	clear.TechniqueRecoveryCompat
} = flowGuard{}

func main() {
	fg := flowGuard{clear.TechniqueInfo{
		TechName:  "FlowGuard",
		TechLayer: clear.LayerArchitecture,
	}}
	if err := clear.RegisterTechnique(fg); err != nil {
		log.Fatal(err)
	}

	eng := clear.NewEngine(clear.InO)
	eng.SamplesBase, eng.SamplesTech = 1, 1 // quick sampling for the demo

	// 1. The cost-table surface: the registry now lists FlowGuard alongside
	// the built-in library, with its declared hardware cost.
	fmt.Println("registered techniques (InO cost model):")
	for _, t := range clear.Techniques() {
		c := t.Cost(eng.Model, "InO")
		marker := ""
		if t.Name() == fg.Name() {
			marker = "   <- newly registered"
		}
		fmt.Printf("  %-12s %-14s area %5.2f%%  power %5.2f%%%s\n",
			t.Name(), t.Layer(), 100*c.Area, 100*c.Power, marker)
	}

	// 2. The enumeration surface: restrict the cross-layer space to the
	// techniques under study and FlowGuard shows up combined with the
	// circuit/logic library and its compatible recoveries.
	filter, err := clear.ParseTechniqueFilter("LEAP-DICE,Parity," + fg.Name())
	if err != nil {
		log.Fatal(err)
	}
	combos := clear.EnumerateWith(clear.InO, filter)
	fmt.Printf("\nenumerated combinations under filter %q (%d):\n", "LEAP-DICE,Parity,FlowGuard", len(combos))
	for _, c := range combos {
		marker := ""
		if strings.Contains(c.Name(), fg.Name()) {
			marker = "   <- contains the new technique"
		}
		fmt.Printf("  %s%s\n", c.Name(), marker)
	}

	// 3. The evaluation + Pareto surface: measure every combination by
	// fault injection on one benchmark and rank energy vs improvement.
	b := clear.BenchmarkByName("gzip")
	type point struct {
		name   string
		sdcImp float64
		energy float64
		isNew  bool
	}
	var pts []point
	fmt.Printf("\nevaluating %d combinations on %s (quick sampling, 50x SDC target)...\n", len(combos), b.Name)
	for _, c := range combos {
		out, err := eng.EvalCombo(b, c, clear.SDC, 50)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{c.Name(), out.SDCImp, out.Cost.Energy(),
			strings.Contains(c.Name(), fg.Name())})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].energy < pts[j].energy })
	fmt.Println("\nPareto frontier (SDC improvement vs energy):")
	best := 0.0
	for _, p := range pts {
		if p.sdcImp <= best { // dominated: something cheaper improves as much
			continue
		}
		best = p.sdcImp
		marker := ""
		if p.isNew {
			marker = "   <- new technique on the frontier"
		}
		fmt.Printf("  %-42s %8.1fx SDC  %5.2f%% energy%s\n",
			p.name, p.sdcImp, 100*p.energy, marker)
	}
}
