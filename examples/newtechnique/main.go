// Newtechnique: the paper's Sec 5 use of CLEAR — deriving the bound that a
// NEW soft-error resilience technique must beat to be competitive. The
// LEAP-DICE + parity + recovery combination defines an energy-vs-
// improvement frontier (Fig 9); a proposed technique whose (cost,
// improvement) point lies above that frontier is dominated before it is
// even built.
package main

import (
	"fmt"
	"log"
	"math"

	"clear"
)

// proposed is a hypothetical new technique as its authors might report it.
type proposed struct {
	name       string
	sdcImp     float64
	energyCost float64 // fractional
}

func main() {
	eng := clear.NewEngine(clear.InO)
	eng.SamplesBase, eng.SamplesTech = 2, 2
	b := clear.BenchmarkByName("gzip")
	combo := clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}

	// Build the frontier: energy cost of the best known combination at a
	// range of SDC improvement targets.
	targets := []float64{2, 5, 10, 20, 50, 100, 500}
	frontier := map[float64]float64{}
	fmt.Println("bound: LEAP-DICE + parity + flush on the InO core (gzip)")
	for _, tgt := range targets {
		out, err := eng.EvalCombo(b, combo, clear.SDC, tgt)
		if err != nil {
			log.Fatal(err)
		}
		frontier[tgt] = out.Cost.Energy()
		fmt.Printf("  %5.0fx SDC improvement costs %5.2f%% energy\n", tgt, 100*out.Cost.Energy())
	}

	candidates := []proposed{
		{"razor-like detector, cheap but weak", 4, 0.02},
		{"published software scheme", 10, 0.25},
		{"novel hybrid checker", 100, 0.035},
	}
	fmt.Println("\njudging proposed techniques against the bound:")
	for _, c := range candidates {
		bound := interpolate(targets, frontier, c.sdcImp)
		verdict := "COMPETITIVE (beats the cross-layer bound)"
		if c.energyCost >= bound {
			verdict = fmt.Sprintf("dominated (bound reaches %.0fx for %.2f%%)", c.sdcImp, 100*bound)
		}
		fmt.Printf("  %-38s %5.0fx @ %5.2f%% energy -> %s\n",
			c.name, c.sdcImp, 100*c.energyCost, verdict)
	}
}

// interpolate returns the frontier energy at an improvement level.
func interpolate(targets []float64, frontier map[float64]float64, x float64) float64 {
	prev := targets[0]
	for _, t := range targets {
		if x <= t {
			// log-linear between the two surrounding targets
			if t == prev {
				return frontier[t]
			}
			f := (math.Log(x) - math.Log(prev)) / (math.Log(t) - math.Log(prev))
			return frontier[prev] + f*(frontier[t]-frontier[prev])
		}
		prev = t
	}
	return frontier[targets[len(targets)-1]]
}
